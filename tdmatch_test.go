package tdmatch

import (
	"strings"
	"testing"
)

// fixtureCorpora reproduces the paper's running example (Figures 1 and 4).
func fixtureCorpora(t *testing.T) (*Corpus, *Corpus) {
	t.Helper()
	movies, err := NewTable("movies",
		[]string{"title", "director", "star", "rating", "genre"},
		[][]string{
			{"The Sixth Sense", "Shyamalan", "Bruce Willis", "PG", "Thriller"},
			{"Pulp Fiction", "Tarantino", "Bruce Willis", "R", "Drama"},
			{"The Godfather", "Coppola", "Marlon Brando", "R", "Crime"},
			{"Alien", "Ridley Scott", "Sigourney Weaver", "R", "Horror"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := NewText("reviews", []string{
		"a comedy by Tarantino starring Willis with unforgettable dialogue",
		"Willis sees dead people in this Shyamalan thriller about a sixth sense",
		"Brando leads the godfather crime family in Coppola's masterpiece",
		"Weaver fights the alien in deep space horror",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return movies, reviews
}

func smallConfig() Config {
	cfg := Defaults()
	cfg.Seed = 42
	cfg.NumWalks = 30
	cfg.WalkLength = 12
	cfg.Dim = 32
	cfg.Epochs = 3
	cfg.Workers = 2
	return cfg
}

func TestBuildAndTopK(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats()
	if st.GraphNodes == 0 || st.GraphEdges == 0 {
		t.Fatalf("empty graph: %+v", st)
	}
	if st.Walks == 0 || st.TrainTime <= 0 || st.BuildTime < st.TrainTime {
		t.Errorf("stats wrong: %+v", st)
	}

	// Reviews 1-3 are lexically anchored; review 0 is the hard one (genre
	// mismatch). Expect at least 3 of 4 correct at rank 1.
	want := map[string]string{
		"reviews:p0": "movies:t1",
		"reviews:p1": "movies:t0",
		"reviews:p2": "movies:t2",
		"reviews:p3": "movies:t3",
	}
	correct := 0
	for q, target := range want {
		got, err := model.TopK(q, 1)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		if len(got) == 1 && got[0].ID == target {
			correct++
		}
	}
	if correct < 3 {
		t.Errorf("only %d/4 reviews matched correctly", correct)
	}
}

func TestTopKFromFirstCorpus(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.TopK("movies:t2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("TopK = %v", got)
	}
	for _, m := range got {
		if !strings.HasPrefix(m.ID, "reviews:") {
			t.Errorf("tuple query returned non-review %s", m.ID)
		}
	}
}

func TestTopKUnknownDoc(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.TopK("ghost:p0", 3); err == nil {
		t.Error("want error for unknown document")
	}
}

func TestMatchAll(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := model.MatchAll(true, 2)
	if len(all) != 4 {
		t.Fatalf("MatchAll = %d queries", len(all))
	}
	for q, ms := range all {
		if len(ms) != 2 {
			t.Errorf("%s: %d matches", q, len(ms))
		}
	}
}

func TestBuildWithExpansion(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	// The paper's §III-A example triple: style(Tarantino, Comedy) connects
	// review p0's "comedy" to tuple t1 via Tarantino.
	cfg.Resource = NewMemoryResource([][3]string{
		{"tarantino", "style", "comedi"},
		{"willi", "starring", "pulp fiction"},
	})
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats()
	if st.ExpandedEdges <= st.GraphEdges-2 {
		t.Errorf("expansion added no edges: %+v", st)
	}
}

func TestBuildWithCompression(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Compression = CompressMSP
	cfg.CompressionRatio = 0.5
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats()
	if st.CompressedNodes > st.ExpandedNodes {
		t.Errorf("compression grew the graph: %+v", st)
	}
	// All metadata documents must still be matchable.
	for _, q := range []string{"reviews:p0", "reviews:p1", "reviews:p2", "reviews:p3"} {
		if _, err := model.TopK(q, 1); err != nil {
			t.Errorf("TopK(%s) after compression: %v", q, err)
		}
	}
}

func TestBuildWithSynonyms(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.SynonymGroups = []Synonyms{{Canonical: "willi", Variants: []string{"bruce willi"}}}
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model.Stats().MergedTerms == 0 {
		t.Error("synonym group produced no merges")
	}
}

func TestBuildDeterministicWithOneWorker(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1
	m1, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1 := m1.Vector("reviews:p0")
	v2 := m2.Vector("reviews:p0")
	if v1 == nil || v2 == nil {
		t.Fatal("missing vectors")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("single-worker builds differ")
		}
	}
}

func TestBuildNilCorpus(t *testing.T) {
	if _, err := Build(nil, nil, Defaults()); err == nil {
		t.Error("want error for nil corpora")
	}
}

func TestTopKCombined(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// External vectors that put p0 exactly on t3: with weight 1 the
	// external scorer dominates.
	ext := map[string][]float32{}
	for _, id := range append(movies.IDs(), reviews.IDs()...) {
		ext[id] = []float32{1, 0}
	}
	ext["reviews:p0"] = []float32{0, 1}
	ext["movies:t3"] = []float32{0, 1}
	got, err := model.TopKCombined("reviews:p0", 1, ext, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "movies:t3" {
		t.Errorf("external-dominated winner = %s, want movies:t3", got[0].ID)
	}
	// Weight 0 must equal the plain model ranking.
	plain, _ := model.TopK("reviews:p0", 1)
	comb, err := model.TopKCombined("reviews:p0", 1, ext, 2, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if comb[0].ID != plain[0].ID {
		t.Errorf("weight-0 combined %s != plain %s", comb[0].ID, plain[0].ID)
	}
	// Missing external query vector: falls back to plain.
	delete(ext, "reviews:p1")
	fb, err := model.TopKCombined("reviews:p1", 1, ext, 2, 0.9)
	if err != nil || len(fb) != 1 {
		t.Errorf("fallback failed: %v %v", fb, err)
	}
}

func TestTaxonomyCorpusAPI(t *testing.T) {
	tax, err := NewTaxonomy("tax", []TaxonomyNode{
		{ID: "tax:root", Text: "audit"},
		{ID: "tax:a", Text: "audit programme", Parent: "tax:root"},
		{ID: "tax:b", Text: "iso 19001 planning", Parent: "tax:a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := tax.Paths()
	if len(paths["tax:b"]) != 3 {
		t.Errorf("path = %v", paths["tax:b"])
	}
	docs, err := NewText("docs", []string{
		"planning the audit programme for iso 19001 compliance",
		"unrelated text about cooking dinner recipes",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Build(tax, docs, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.TopK("docs:p0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID == "tax:root" {
		t.Log("matched root; acceptable but weak")
	}
	// Text corpora have no paths.
	if docs.Paths() != nil {
		t.Error("text corpus Paths must be nil")
	}
}

func TestCorpusAccessors(t *testing.T) {
	movies, _ := fixtureCorpora(t)
	if movies.Name() != "movies" || movies.Len() != 4 {
		t.Error("accessors wrong")
	}
	if len(movies.IDs()) != 4 {
		t.Error("IDs wrong")
	}
	text, ok := movies.DocText("movies:t0")
	if !ok || !strings.Contains(text, "Sixth Sense") {
		t.Errorf("DocText = %q %v", text, ok)
	}
	if _, ok := movies.DocText("nope"); ok {
		t.Error("missing doc must be !ok")
	}
}

func TestMatchString(t *testing.T) {
	m := Match{ID: "x", Score: 0.5}
	if m.String() != "x(0.500)" {
		t.Errorf("String = %s", m.String())
	}
}

func TestMemoryResource(t *testing.T) {
	r := NewMemoryResource([][3]string{{"a", "p", "b"}})
	rels := r.Related("a")
	if len(rels) != 1 || rels[0].Object != "b" || rels[0].Predicate != "p" {
		t.Errorf("Related = %v", rels)
	}
	if len(r.Related("b")) != 1 {
		t.Error("resource must be symmetric")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxNGram != 3 || cfg.WalkLength != 30 || cfg.Dim <= 0 || cfg.Workers <= 0 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}
