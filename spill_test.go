package tdmatch

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSpillTrainerIngestBitIdentical pins the spill contract: spilling
// the trainer's output arena to disk and letting the next Ingest reload
// it must produce vectors bit-identical to a model that never spilled.
func TestSpillTrainerIngestBitIdentical(t *testing.T) {
	build := func() *Model {
		movies, reviews := fixtureCorpora(t)
		model, err := Build(movies, reviews, ingestTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		return model
	}
	spilled, control := build(), build()

	path := filepath.Join(t.TempDir(), "trainer.out")
	if err := spilled.SpillTrainer(path); err != nil {
		t.Fatal(err)
	}
	if !spilled.TrainerSpilled() {
		t.Fatal("TrainerSpilled = false right after SpillTrainer")
	}
	if control.TrainerSpilled() {
		t.Fatal("control model reports a spilled trainer")
	}
	// A second spill has nothing left to write.
	if err := spilled.SpillTrainer(path); err == nil {
		t.Error("double SpillTrainer succeeded")
	}

	docs := []IngestDoc{
		{Side: 2, ID: "reviews:spill", Values: []string{"Brando leads a mafia family epic"}},
	}
	if err := spilled.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	if err := control.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	// The reload happened inside Ingest; the arena is resident again.
	if spilled.TrainerSpilled() {
		t.Error("trainer still reported spilled after a warm ingest")
	}

	gotVecs, wantVecs := spilled.Vectors(), control.Vectors()
	if len(gotVecs) != len(wantVecs) {
		t.Fatalf("vector count %d != control %d", len(gotVecs), len(wantVecs))
	}
	for id, want := range wantVecs {
		got, ok := gotVecs[id]
		if !ok {
			t.Fatalf("document %s missing after spill+ingest", id)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vector %s[%d] = %v, want %v (spill+reload must be bit-identical)",
					id, d, got[d], want[d])
			}
		}
	}
}

// TestSpillTrainerRequiresTrainerState covers the failure modes: a
// model without retained trainer state cannot spill, and a corrupt or
// missing spill file fails the reloading Ingest cleanly.
func TestSpillTrainerRequiresTrainerState(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trainer.out")
	if err := model.SpillTrainer(path); err != nil {
		t.Fatal(err)
	}
	// Reload from a vanished file must fail the ingest, not corrupt it.
	model.spillPath = filepath.Join(t.TempDir(), "missing.out")
	err = model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:gone", Values: []string{"a crime saga"}},
	})
	if err == nil {
		t.Fatal("Ingest succeeded with a missing spill file")
	}

	// A snapshot-restored model retains no trainer state at all.
	var buf bytes.Buffer
	if err := persistFixtureModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, r2 := fixtureCorpora(t)
	restored, err := LoadModel(&buf, m2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SpillTrainer(filepath.Join(t.TempDir(), "x.out")); err == nil {
		t.Error("SpillTrainer succeeded on a snapshot-restored model")
	}
}
