package tdmatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrServerClosed is returned by Server queries issued after Close.
var ErrServerClosed = errors.New("tdmatch: server closed")

// ErrCompacting is returned by Server.Compact when a compaction is
// already running.
var ErrCompacting = errors.New("tdmatch: compaction already running")

// ErrOverloaded is returned by queries that arrive while the micro-batch
// queue is full: the server sheds them immediately instead of queueing
// unboundedly (tdserved maps it to HTTP 503 with Retry-After).
var ErrOverloaded = errors.New("tdmatch: server overloaded")

// serveMaxBatch caps one coalesced micro-batch; a burst larger than this
// is split into consecutive worker-pool passes rather than held back.
const serveMaxBatch = 256

// serveQueueDepth bounds the micro-batch queue: queries beyond this many
// waiting fail fast with ErrOverloaded instead of queueing unboundedly,
// so an overload degrades into shed requests rather than growing latency
// and memory without bound.
const serveQueueDepth = 4 * serveMaxBatch

// ServeConfig tunes a Server independently of the model's build-time
// Config. The zero value inherits every setting from the model
// (Config.ServeCacheSize, Config.ServeBatchWindow, Config.Workers).
type ServeConfig struct {
	// CacheSize bounds the result cache in entries (0 inherits the
	// model's Config.ServeCacheSize, default 4096; negative disables
	// caching).
	CacheSize int
	// BatchWindow is the micro-batching coalescing window (0 inherits
	// the model's Config.ServeBatchWindow, default 200µs; negative
	// disables batching so queries run on the caller's goroutine).
	BatchWindow time.Duration
	// Workers bounds the per-batch fan-out and the TopKBatch pool
	// (0 inherits the model's Config.Workers, default GOMAXPROCS).
	Workers int
	// WAL, when non-nil, makes mutations durable: every Ingest and
	// Remove appends its batch to the log before the new model is
	// swapped in (and before the caller is acknowledged), so a crashed
	// process replays the log against its last snapshot and loses no
	// acknowledged write. Open it with OpenWAL and Replay the recovered
	// records onto the model before NewServer.
	WAL *WAL
}

// ServeStats is a point-in-time snapshot of a Server's counters, suitable
// for JSON exposition (tdserved's GET /v1/stats).
type ServeStats struct {
	// Queries counts TopK and TopKBatch queries accepted (including
	// cache hits and failed lookups).
	Queries uint64 `json:"queries"`
	// CacheHits / CacheMisses count result-cache probes; their sum can
	// exceed Queries because batched queries re-probe at execution time.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheEntries is the current number of resident rankings.
	CacheEntries int `json:"cache_entries"`
	// Batches counts coalesced worker-pool passes; BatchedQueries counts
	// the queries they served. BatchedQueries/Batches is the achieved
	// coalescing factor (1 under no concurrency).
	Batches        uint64 `json:"batches"`
	BatchedQueries uint64 `json:"batched_queries"`
	// Reloads counts successful model swaps (initial load excluded).
	Reloads uint64 `json:"reloads"`
	// Ingests / IngestedDocs count successful Ingest calls and the
	// documents they added; Removes / RemovedDocs count Remove calls and
	// the documents they deleted. Each call swaps the model generation,
	// so cached rankings from before the mutation can never resurface.
	Ingests      uint64 `json:"ingests"`
	IngestedDocs uint64 `json:"ingested_docs"`
	Removes      uint64 `json:"removes"`
	RemovedDocs  uint64 `json:"removed_docs"`
	// Staleness is the served model's delta-document count since its
	// last full (re)build — the compaction signal.
	Staleness int `json:"staleness"`
	// Compactions counts completed online compactions (Server.Compact).
	Compactions uint64 `json:"compactions"`
	// Generation is the served model's swap generation: every Reload,
	// Ingest, Remove and Compact installs a strictly higher one, so a
	// monitoring scrape can order snapshots.
	Generation uint64 `json:"generation"`
	// FirstSegments / SecondSegments describe each side's serving
	// segment stack (sealed segments, delta rows, tombstones).
	FirstSegments  SegmentStats `json:"first_segments"`
	SecondSegments SegmentStats `json:"second_segments"`
	// FirstIndex / SecondIndex identify each side's serving index: kind,
	// resident and live rows, plus the graph shape under HNSW serving.
	FirstIndex  IndexStats `json:"first_index"`
	SecondIndex IndexStats `json:"second_index"`
	// Errors counts queries that failed (unknown document, no embedding).
	Errors uint64 `json:"errors"`
	// FirstShards / SecondShards report the per-shard scatter counters of
	// each side's serving index under sharded serving (Config.ServeShards
	// or tdserved -shards); nil when that side serves unsharded.
	FirstShards  []ShardStat `json:"first_shards,omitempty"`
	SecondShards []ShardStat `json:"second_shards,omitempty"`
	// Shed counts queries refused with ErrOverloaded because the
	// micro-batch queue was full.
	Shed uint64 `json:"shed"`
	// WAL reports the write-ahead log's counters when one is attached
	// (ServeConfig.WAL); nil otherwise.
	WAL *WALStats `json:"wal,omitempty"`
}

// served pairs a model with its serving identity: gen is the swap
// generation assigned by the Server, fp the index-configuration
// fingerprint. Both go into every cache key, so rankings cached against a
// replaced model can never be served for the new one.
type served struct {
	model *Model
	gen   uint64
	fp    uint64
}

// topkReq is one query waiting in the micro-batching queue.
type topkReq struct {
	ctx   context.Context
	docID string
	k     int
	out   chan topkResp
}

// topkResp is the batcher's answer to one topkReq.
type topkResp struct {
	matches []Match
	err     error
}

// Server serves TopK queries from an atomically swappable Model, fronted
// by a sharded LRU result cache and a micro-batching queue that coalesces
// concurrent queries into one worker-pool pass. It is the in-process core
// of the tdserved daemon and safe for concurrent use; Reload swaps the
// model without dropping in-flight queries.
type Server struct {
	cur     atomic.Pointer[served]
	gen     atomic.Uint64
	cache   *resultCache
	workers int
	window  time.Duration

	reqs      chan *topkReq
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// wal, when attached, receives every acknowledged mutation before
	// its swap; walSeq (guarded by mutMu) is the sequence number of the
	// newest record the served model reflects — the checkpoint horizon.
	wal    *WAL
	walSeq uint64

	// mutMu serializes model swaps (Reload, Ingest, Remove) so a clone
	// being mutated can never race another swap and lose its update.
	// Queries never take it. It also guards the mutation counters below,
	// so Stats can snapshot a mutation group consistent with the swapped
	// model instead of racing field-by-field against an in-flight swap.
	mutMu        sync.Mutex
	reloads      uint64
	ingests      uint64
	ingestedDocs uint64
	removes      uint64
	removedDocs  uint64
	compactions  uint64

	// compacting serializes Server.Compact runs without holding mutMu
	// across the rebuild (queries and mutations proceed during it).
	compacting atomic.Bool

	// Query-side counters stay atomic: they are bumped on the query hot
	// path, where taking mutMu would serialize queries against swaps.
	queries        atomic.Uint64
	batches        atomic.Uint64
	batchedQueries atomic.Uint64
	errors         atomic.Uint64
	shed           atomic.Uint64
}

// NewServer wraps a trained or loaded model for serving. Zero fields of
// sc inherit the model's Config; see ServeConfig. Callers that enable
// micro-batching (the default) should Close the server to release its
// collector goroutine.
func NewServer(m *Model, sc ServeConfig) *Server {
	cacheSize := sc.CacheSize
	if cacheSize == 0 {
		cacheSize = m.cfg.ServeCacheSize
	}
	window := sc.BatchWindow
	if window == 0 {
		window = m.cfg.ServeBatchWindow
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = m.cfg.Workers
	}
	s := &Server{
		cache:   newResultCache(cacheSize),
		workers: workers,
		window:  window,
		done:    make(chan struct{}),
		wal:     sc.WAL,
	}
	if s.wal != nil {
		// Recovered records were replayed into m before NewServer; the
		// served state reflects everything up to the log's last record.
		s.walSeq = s.wal.LastSeq()
	}
	m.shareTrainer()
	s.cur.Store(&served{model: m, gen: s.gen.Add(1), fp: m.indexFingerprint()})
	if window > 0 {
		s.reqs = make(chan *topkReq, serveQueueDepth)
		s.wg.Add(1)
		go s.run()
	}
	return s
}

// Close stops the micro-batching collector and fails queries still
// waiting on it with ErrServerClosed. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Model returns the currently served model (the latest Reload argument,
// or the NewServer model before any reload).
func (s *Server) Model() *Model { return s.cur.Load().model }

// Reload atomically swaps the served model. In-flight queries finish
// against the model they started with; queries accepted afterwards see
// only the new one. The result cache is purged — and cache keys carry the
// swap generation, so entries of the old model can not resurface even
// mid-purge.
func (s *Server) Reload(m *Model) error {
	if m == nil {
		return errors.New("tdmatch: Reload requires a model")
	}
	m.shareTrainer()
	s.mutMu.Lock()
	s.swap(m)
	s.reloads++
	s.mutMu.Unlock()
	return nil
}

// swap installs a model under a new generation and purges the cache;
// callers hold mutMu (NewServer's initial store excepted — no queries
// exist yet).
func (s *Server) swap(m *Model) {
	s.cur.Store(&served{model: m, gen: s.gen.Add(1), fp: m.indexFingerprint()})
	s.cache.purge()
}

// Ingest adds documents to the served model without downtime: the
// current model is cloned, the clone ingests (Model.Ingest — graph
// patch, warm-start fine-tune or term fold-in, index append), and the
// clone is swapped in through the same atomic generation bump a Reload
// uses. In-flight queries finish against the old model; the generation
// and the mutated index fingerprints both key the result cache, so no
// pre-ingest ranking can be served afterwards.
//
// With a WAL attached the batch is appended to the log after it
// validates but before the swap: an error from the log means the
// mutation was neither made durable nor made visible, so a successful
// return is a durable acknowledgment.
func (s *Server) Ingest(docs []IngestDoc) error {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	next := s.cur.Load().model.clone()
	if err := next.Ingest(docs); err != nil {
		return err
	}
	if s.wal != nil {
		seq, err := s.wal.appendIngest(docs)
		if err != nil {
			return fmt.Errorf("tdmatch: ingest not acknowledged: %w", err)
		}
		s.walSeq = seq
	}
	s.swap(next)
	s.ingests++
	s.ingestedDocs += uint64(len(docs))
	return nil
}

// Remove deletes documents from the served model without downtime, the
// removal counterpart of Ingest: clone, Model.Remove, WAL append (when
// attached — see Ingest), atomic swap.
func (s *Server) Remove(ids []string) error {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	next := s.cur.Load().model.clone()
	if err := next.Remove(ids); err != nil {
		return err
	}
	if s.wal != nil {
		seq, err := s.wal.appendRemove(ids)
		if err != nil {
			return fmt.Errorf("tdmatch: removal not acknowledged: %w", err)
		}
		s.walSeq = seq
	}
	s.swap(next)
	s.removes++
	s.removedDocs += uint64(len(ids))
	return nil
}

// Checkpoint durably persists the served model and then rotates the WAL
// past every record the persisted state contains: save receives a
// pinned model (safe to serialize off-lock — served models are
// immutable, mutations go through clones), and only after it returns
// successfully are the covered log records dropped. Mutations that land
// while the save runs get sequence numbers above the pinned horizon and
// survive the rotation. With no WAL attached it is just a save.
func (s *Server) Checkpoint(save func(*Model) error) error {
	s.mutMu.Lock()
	m := s.cur.Load().model
	horizon := s.walSeq
	s.mutMu.Unlock()
	if err := save(m); err != nil {
		return err
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Checkpoint(horizon); err != nil {
		return fmt.Errorf("tdmatch: snapshot saved but wal rotation failed: %w", err)
	}
	return nil
}

// Compact rebuilds the served model online: the full build pipeline
// re-runs over a clone while the current model keeps serving — and
// keeps accepting Ingest/Remove — then mutations that landed during
// the rebuild are replayed from the delta chain onto the rebuilt model
// under the swap lock, and it is installed through the same atomic
// generation bump a Reload uses. Serving never blocks for longer than
// one replayed mutation batch; the collapsed segment stack and the
// retrained state take over from the next query on. The staleness the
// swapped-in model reports counts exactly the replayed (still
// incremental) mutations. At most one compaction runs at a time;
// concurrent calls fail fast with ErrCompacting. Equivalent to
// CompactCtx with context.Background().
func (s *Server) Compact() error {
	return s.CompactCtx(context.Background())
}

// CompactCtx is Compact with cancellation: the context is checked
// before the rebuild starts and again before the replay-and-swap, so a
// shutting-down daemon abandons a compaction between stages instead of
// swapping in a model nobody will serve. The rebuild stage itself runs
// to completion once started.
func (s *Server) CompactCtx(ctx context.Context) error {
	if !s.compacting.CompareAndSwap(false, true) {
		return ErrCompacting
	}
	defer s.compacting.Store(false)

	if err := ctx.Err(); err != nil {
		return err
	}
	s.mutMu.Lock()
	work := s.cur.Load().model.clone()
	base := len(work.deltas)
	s.mutMu.Unlock()

	// The expensive part, off the lock: queries and mutations proceed
	// against the current model while the clone rebuilds.
	if err := work.Compact(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	cur := s.cur.Load().model
	for _, d := range cur.deltas[base:] {
		if len(d.Added) > 0 {
			if err := work.Ingest(ingestDocsOfSaved(d.Added)); err != nil {
				return fmt.Errorf("tdmatch: replaying ingest onto compacted model: %w", err)
			}
		}
		if len(d.Removed) > 0 {
			if err := work.Remove(append([]string(nil), d.Removed...)); err != nil {
				return fmt.Errorf("tdmatch: replaying removal onto compacted model: %w", err)
			}
		}
	}
	s.swap(work)
	s.compactions++
	return nil
}

// TopK returns the k documents of the other corpus most similar to docID,
// like Model.TopK, but served: answered from the result cache when
// possible, otherwise coalesced with concurrent queries into one
// worker-pool pass. The returned slice is the caller's to keep.
// Equivalent to TopKCtx with context.Background().
func (s *Server) TopK(docID string, k int) ([]Match, error) {
	return s.TopKCtx(context.Background(), docID, k)
}

// TopKCtx is TopK with a deadline: the query gives up with ctx.Err()
// once ctx expires — whether still queued or already being scored (the
// scoring pass completes and feeds the cache, only the wait is cut) —
// and is shed immediately with ErrOverloaded when the micro-batch queue
// is full, so a saturated server degrades into fast failures instead of
// unbounded queueing.
func (s *Server) TopKCtx(ctx context.Context, docID string, k int) ([]Match, error) {
	s.queries.Add(1)
	cur := s.cur.Load()
	if matches, ok := s.cache.get(cacheKey{docID: docID, k: k, gen: cur.gen, fp: cur.fp}); ok {
		return matches, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.reqs == nil {
		resp := s.answer(cur, docID, k)
		return resp.matches, resp.err
	}
	req := &topkReq{ctx: ctx, docID: docID, k: k, out: make(chan topkResp, 1)}
	select {
	case s.reqs <- req:
	case <-s.done:
		return nil, ErrServerClosed
	default:
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case resp := <-req.out:
		return resp.matches, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, ErrServerClosed
	}
}

// BatchResult is one query's outcome within TopKBatch: its position-
// aligned document ID and either the ranking or the per-query error.
type BatchResult struct {
	// ID echoes the queried document ID.
	ID string
	// Matches is the ranking (nil when Err is set).
	Matches []Match
	// Err is the per-query failure, e.g. an unknown document; other
	// queries of the batch are unaffected.
	Err error
}

// TopKBatch answers many queries in one call: each query probes the
// result cache independently, and the misses are fed as one batch into
// the model's blocked multi-query kernels (Model.TopKBatchWorkers) with
// the server's worker parallelism. Results are position-aligned with
// docIDs. Equivalent to TopKBatchCtx with context.Background().
func (s *Server) TopKBatch(docIDs []string, k int) []BatchResult {
	return s.TopKBatchCtx(context.Background(), docIDs, k)
}

// TopKBatchCtx is TopKBatch with a deadline: a context that is already
// expired on entry fails every query with ctx.Err() without touching
// the kernels. The batch itself runs on the caller's goroutine and is
// not interrupted mid-scan — the deadline bounds admission, not one
// kernel pass.
func (s *Server) TopKBatchCtx(ctx context.Context, docIDs []string, k int) []BatchResult {
	s.queries.Add(uint64(len(docIDs)))
	out := make([]BatchResult, len(docIDs))
	if err := ctx.Err(); err != nil {
		for i, id := range docIDs {
			out[i] = BatchResult{ID: id, Err: err}
		}
		return out
	}
	cur := s.cur.Load()
	resps := s.answerBatch(cur, docIDs, k)
	for i, resp := range resps {
		out[i] = BatchResult{ID: docIDs[i], Matches: resp.matches, Err: resp.err}
	}
	return out
}

// Stats snapshots the serving counters. The mutation group (reloads,
// ingests, removes, the served model's staleness and shard counters) is
// read under the swap lock, so it is always internally consistent — an
// in-flight Ingest is either fully visible or not at all. Query-side
// counters are monotonic atomics read without blocking queries; each is
// individually exact, but a snapshot under load may sit mid-batch
// (e.g. Queries already bumped for a query whose miss is still being
// scored).
func (s *Server) Stats() ServeStats {
	s.mutMu.Lock()
	cur := s.cur.Load()
	st := ServeStats{
		Reloads:      s.reloads,
		Ingests:      s.ingests,
		IngestedDocs: s.ingestedDocs,
		Removes:      s.removes,
		RemovedDocs:  s.removedDocs,
		Compactions:  s.compactions,
		Generation:   cur.gen,
		Staleness:    cur.model.Staleness(),
	}
	st.FirstShards, st.SecondShards = cur.model.ShardStats()
	st.FirstSegments, st.SecondSegments = cur.model.SegmentStats()
	st.FirstIndex, st.SecondIndex = cur.model.IndexStats()
	s.mutMu.Unlock()

	st.CacheHits, st.CacheMisses = s.cache.counters()
	st.CacheEntries = s.cache.len()
	st.Queries = s.queries.Load()
	st.Batches = s.batches.Load()
	st.BatchedQueries = s.batchedQueries.Load()
	st.Errors = s.errors.Load()
	st.Shed = s.shed.Load()
	if s.wal != nil {
		w := s.wal.Stats()
		st.WAL = &w
	}
	return st
}

// answer resolves one query against a pinned model snapshot: cache probe,
// then Model.TopK, then cache fill. Failures bump the error counter and
// are not cached (a document can gain an embedding only via Reload, which
// changes the key anyway).
func (s *Server) answer(cur *served, docID string, k int) topkResp {
	key := cacheKey{docID: docID, k: k, gen: cur.gen, fp: cur.fp}
	if matches, ok := s.cache.get(key); ok {
		return topkResp{matches: matches}
	}
	matches, err := cur.model.TopK(docID, k)
	if err != nil {
		s.errors.Add(1)
		return topkResp{err: err}
	}
	// The cache gets its own copy: the returned slice is the caller's to
	// keep (and mutate) without corrupting the resident entry.
	resident := make([]Match, len(matches))
	copy(resident, matches)
	s.cache.put(key, resident)
	return topkResp{matches: matches}
}

// run is the micro-batching collector: it blocks for the first uncached
// query, gathers whatever else arrives within the batch window (up to
// serveMaxBatch), and executes the batch as one worker-pool pass. One
// pass per burst is the point — under concurrent load the pool sweep
// amortizes scheduling and keeps index scans cache-warm.
func (s *Server) run() {
	defer s.wg.Done()
	timer := time.NewTimer(s.window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *topkReq
		select {
		case first = <-s.reqs:
		case <-s.done:
			return
		}
		batch := append(make([]*topkReq, 0, 8), first)
		timer.Reset(s.window)
		fired := false
	collect:
		for len(batch) < serveMaxBatch {
			select {
			case r := <-s.reqs:
				batch = append(batch, r)
			case <-timer.C:
				fired = true
				break collect
			case <-s.done:
				return
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		s.execBatch(batch)
	}
}

// execBatch serves one coalesced batch against the current model,
// feeding the queries of each distinct k through the model's blocked
// multi-query kernels and replying to each waiter. The model is pinned
// once per batch: a Reload during execution takes effect from the next
// batch.
func (s *Server) execBatch(batch []*topkReq) {
	s.batches.Add(1)
	s.batchedQueries.Add(uint64(len(batch)))
	cur := s.cur.Load()
	// Queries of one coalesced batch can mix k values; group them so each
	// group is one batched kernel pass (in practice one group dominates).
	// Queries whose deadline expired while queued are answered with their
	// context error instead of being scored: the waiter has already given
	// up, and skipping them sheds exactly the work the timeout was meant
	// to bound.
	byK := make(map[int][]int, 1)
	for i, r := range batch {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.out <- topkResp{err: err}
				continue
			}
		}
		byK[r.k] = append(byK[r.k], i)
	}
	for k, slots := range byK {
		ids := make([]string, len(slots))
		for j, i := range slots {
			ids[j] = batch[i].docID
		}
		resps := s.answerBatch(cur, ids, k)
		for j, i := range slots {
			batch[i].out <- resps[j]
		}
	}
}

// answerBatch resolves a batch of same-k queries against a pinned model
// snapshot: per-query cache probes first, then one pass of the blocked
// multi-query kernels over the misses, then cache fills. Failures bump
// the error counter and are not cached, like in answer.
func (s *Server) answerBatch(cur *served, docIDs []string, k int) []topkResp {
	out := make([]topkResp, len(docIDs))
	var missIDs []string
	var missSlots []int
	for i, id := range docIDs {
		if matches, ok := s.cache.get(cacheKey{docID: id, k: k, gen: cur.gen, fp: cur.fp}); ok {
			out[i] = topkResp{matches: matches}
			continue
		}
		missIDs = append(missIDs, id)
		missSlots = append(missSlots, i)
	}
	if len(missIDs) == 0 {
		return out
	}
	for j, res := range cur.model.TopKBatchWorkers(missIDs, k, s.workers) {
		slot := missSlots[j]
		if res.Err != nil {
			s.errors.Add(1)
			out[slot] = topkResp{err: res.Err}
			continue
		}
		resident := make([]Match, len(res.Matches))
		copy(resident, res.Matches)
		s.cache.put(cacheKey{docID: res.ID, k: k, gen: cur.gen, fp: cur.fp}, resident)
		out[slot] = topkResp{matches: res.Matches}
	}
	return out
}

// indexFingerprint digests the serving-index configuration of both sides
// into the identity the result cache keys on (see match.VectorIndex).
func (m *Model) indexFingerprint() uint64 {
	const prime64 = 1099511628211
	h := m.firstIdx.Fingerprint()
	h = (h ^ m.secondIdx.Fingerprint()) * prime64
	h = (h ^ uint64(m.dim)) * prime64
	return h
}
