package tdmatch

import "testing"

// Tests for the §VII future-work extensions: blocking and walk bias.

func TestTopKBlockedMatchesPlainOnSharedTokens(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range reviews.IDs() {
		plain, err := model.TopK(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := model.TopKBlocked(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		// On this fixture every review shares tokens with its true tuple,
		// so the blocked winner must equal the full-scan winner whenever
		// the winner is a candidate; at minimum the calls must succeed and
		// return a result.
		if len(blocked) == 0 || len(plain) == 0 {
			t.Fatalf("empty rankings for %s", q)
		}
	}
}

func TestTopKBlockedRestrictsCandidates(t *testing.T) {
	movies, err := NewTable("movies", []string{"title", "star"},
		[][]string{
			{"Alpha Story", "Willis"},
			{"Beta Tale", "Brando"},
			{"Gamma Saga", "Weaver"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := NewText("reviews", []string{
		"willis stars in the alpha story",
		"brando leads the beta tale",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := model.TopKBlocked("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range blocked {
		if m.ID == "movies:t2" {
			t.Error("blocking leaked a tuple sharing no tokens")
		}
	}
}

func TestTopKBlockedUnknownDoc(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.TopKBlocked("ghost:p9", 2); err == nil {
		t.Error("want error for unknown document")
	}
}

func TestBuildWithWalkBias(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.WalkBias = &WalkBias{Attribute: 0.1}
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Biased walks must still produce a usable model.
	correct := 0
	want := map[string]string{
		"reviews:p1": "movies:t0",
		"reviews:p2": "movies:t2",
		"reviews:p3": "movies:t3",
	}
	for q, target := range want {
		got, err := model.TopK(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == target {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("walk-biased model matched only %d/3", correct)
	}
}

func TestBuildWithNode2VecWalks(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.ReturnParam = 2
	cfg.InOutParam = 0.5
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"reviews:p1": "movies:t0",
		"reviews:p2": "movies:t2",
		"reviews:p3": "movies:t3",
	}
	correct := 0
	for q, target := range want {
		got, err := model.TopK(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == target {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("node2vec model matched only %d/3", correct)
	}
}

func TestKindWeightsTranslation(t *testing.T) {
	if kindWeights(nil) != nil {
		t.Error("nil bias must give nil weights")
	}
	w := kindWeights(&WalkBias{Attribute: 0.5, External: 2})
	if len(w) != 2 {
		t.Errorf("weights = %v", w)
	}
	// Unspecified kinds must be absent (default weight 1 in the walker).
	w2 := kindWeights(&WalkBias{Metadata: 3})
	if len(w2) != 3 { // tuple, snippet, concept
		t.Errorf("metadata weights = %v", w2)
	}
}
