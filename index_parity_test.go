package tdmatch

import (
	"reflect"
	"sync"
	"testing"

	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/match"
)

// Tests for the flat-vs-IVF serving parity guarantee on the seed IMDb
// dataset: with ExactRecall the IVF index must reproduce the flat ranking
// bit-for-bit, and with the default nprobe it must reach recall@10 >= 0.95
// against the exact scan.

func buildIMDbModel(t *testing.T, mutate func(*Config)) *Model {
	t.Helper()
	s, err := datasets.IMDb(datasets.IMDbConfig{
		Seed: 3, Movies: 60, WithTitle: true, GeneralSentences: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := &Corpus{c: s.First}
	second := &Corpus{c: s.Second}
	cfg := smallConfig()
	cfg.Workers = 1
	if mutate != nil {
		mutate(&cfg)
	}
	model, err := Build(first, second, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// flatBaseline returns the exact ranking for a query against the other
// side's flat index.
func (m *Model) flatBaseline(t *testing.T, docID string, k int) []Match {
	t.Helper()
	idx := m.secondFlat
	if m.sideOf(docID) == 2 {
		idx = m.firstFlat
	}
	q := m.vectors[docID]
	if q == nil {
		t.Fatalf("query %s has no vector", docID)
	}
	return toMatches(idx.TopK(q, k))
}

func TestIVFExactRecallParityOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, func(cfg *Config) {
		cfg.Index = IndexIVF
		cfg.ExactRecall = true
	})
	queries := append(append([]string(nil), model.first.IDs()...), model.second.IDs()...)
	checked := 0
	for _, q := range queries {
		if model.vectors[q] == nil {
			continue
		}
		got, err := model.TopK(q, 10)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		want := model.flatBaseline(t, q, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ExactRecall IVF diverged from flat for %s:\nivf:  %v\nflat: %v", q, got, want)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d queries checked — fixture too small to be meaningful", checked)
	}
	if model.Stats().IndexClusters[0] == 0 || model.Stats().IndexClusters[1] == 0 {
		t.Error("IVF serving must report cluster counts in Stats")
	}
}

func TestIVFDefaultNProbeRecallOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, func(cfg *Config) {
		cfg.Index = IndexIVF
	})
	hits, total := 0, 0
	for _, q := range model.second.IDs() {
		if model.vectors[q] == nil {
			continue
		}
		exact := map[string]struct{}{}
		for _, m := range model.flatBaseline(t, q, 10) {
			exact[m.ID] = struct{}{}
		}
		approx, err := model.TopK(q, 10)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		for _, m := range approx {
			if _, ok := exact[m.ID]; ok {
				hits++
			}
		}
		total += len(exact)
	}
	if total == 0 {
		t.Fatal("no queries produced rankings")
	}
	recall := float64(hits) / float64(total)
	t.Logf("IVF recall@10 on IMDb = %.3f over %d ranked slots", recall, total)
	if recall < 0.95 {
		t.Errorf("default-nprobe recall@10 = %.3f, want >= 0.95", recall)
	}
}

// TestCrossKernelDeterminismOnIMDb is the deterministic-ordering
// invariant: on the seed IMDb dataset, every ranking path — the serial
// single-query scan, the blocked multi-query kernel at several worker
// counts, Model.TopKBatch over mixed sides, IVF with exact recall, and
// SQ8 with a corpus-covering re-rank pool — must return identical
// rankings, identical score ties broken by ID in the same order.
func TestCrossKernelDeterminismOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, nil)
	const k = 10
	queries := append(append([]string(nil), model.first.IDs()...), model.second.IDs()...)

	// Serial single-query reference for every live query.
	want := map[string][]Match{}
	for _, q := range queries {
		if model.vectors[q] != nil {
			matches, err := model.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want[q] = matches
		}
	}
	if len(want) < 100 {
		t.Fatalf("only %d live queries — fixture too small", len(want))
	}

	// Batched MatchAll, at worker counts exercising both serial and
	// pooled batch dispatch.
	for _, workers := range []int{1, 3, 8} {
		all := model.MatchAllWorkers(true, k, workers)
		for _, q := range model.second.IDs() {
			if want[q] == nil {
				continue
			}
			if !reflect.DeepEqual(all[q], want[q]) {
				t.Fatalf("MatchAllWorkers(%d) diverged for %s:\nbatch:  %v\nserial: %v",
					workers, q, all[q], want[q])
			}
		}
	}

	// Model.TopKBatch over both sides mixed, plus failure slots.
	mixed := append(append([]string(nil), queries...), "nope:q")
	for i, res := range model.TopKBatch(mixed, k) {
		if res.ID != mixed[i] {
			t.Fatalf("batch result %d misaligned: %s vs %s", i, res.ID, mixed[i])
		}
		if w := want[res.ID]; w != nil {
			if res.Err != nil || !reflect.DeepEqual(res.Matches, w) {
				t.Fatalf("TopKBatch diverged for %s (err %v)", res.ID, res.Err)
			}
		} else if res.Err == nil {
			t.Fatalf("TopKBatch(%s) must fail like TopK does", res.ID)
		}
	}

	// IVF exact recall and SQ8 with a re-rank pool covering the corpus:
	// provably exact kernels over the same flat arenas.
	for _, flat := range []*match.Index{model.firstFlat, model.secondFlat} {
		ivf := match.NewIVF(flat, match.IVFOptions{ExactRecall: true, Seed: 9})
		sq := match.NewIndexSQ8(flat, flat.Len())
		for _, q := range queries {
			v := model.vectors[q]
			if v == nil || model.sideOf(q) == 0 {
				continue
			}
			// Only compare against the side this index targets.
			if (model.sideOf(q) == 1) != (flat == model.secondFlat) {
				continue
			}
			ref := flat.TopK(v, k)
			if got := ivf.TopK(v, k); !reflect.DeepEqual(got, ref) {
				t.Fatalf("exact-recall IVF diverged from flat for %s", q)
			}
			if got := sq.TopK(v, k); !reflect.DeepEqual(got, ref) {
				t.Fatalf("full-rerank SQ8 diverged from flat for %s", q)
			}
		}
	}
}

// TestSQ8DefaultRerankRecallOnIMDb is the quantization quality bar on
// the seed dataset: int8 scan + default 4x exact re-rank must reach
// recall@10 >= 0.99 against the flat ranking.
func TestSQ8DefaultRerankRecallOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, func(cfg *Config) {
		cfg.Index = IndexSQ8
	})
	hits, total := 0, 0
	for _, q := range model.second.IDs() {
		if model.vectors[q] == nil {
			continue
		}
		exact := map[string]struct{}{}
		for _, m := range model.flatBaseline(t, q, 10) {
			exact[m.ID] = struct{}{}
		}
		approx, err := model.TopK(q, 10)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		for _, m := range approx {
			if _, ok := exact[m.ID]; ok {
				hits++
			}
		}
		total += len(exact)
	}
	if total == 0 {
		t.Fatal("no queries produced rankings")
	}
	recall := float64(hits) / float64(total)
	t.Logf("SQ8 recall@10 on IMDb = %.4f over %d ranked slots", recall, total)
	if recall < 0.99 {
		t.Errorf("default-rerank SQ8 recall@10 = %.4f, want >= 0.99", recall)
	}
}

func TestMatchAllWorkersEquivalence(t *testing.T) {
	model := buildIMDbModel(t, nil)
	serial := model.MatchAllWorkers(true, 5, 1)
	parallel := model.MatchAllWorkers(true, 5, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("worker counts change coverage: %d vs %d", len(serial), len(parallel))
	}
	for q, want := range serial {
		if !reflect.DeepEqual(parallel[q], want) {
			t.Fatalf("parallel MatchAll diverged for %s:\nserial:   %v\nparallel: %v", q, want, parallel[q])
		}
	}
}

func TestBuildStagesPopulateStats(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats()
	// Without expansion or compression, each later stage must report the
	// graph-creation sizes unchanged — the seed's contract.
	if st.ExpandedNodes != st.GraphNodes || st.ExpandedEdges != st.GraphEdges {
		t.Errorf("expansion stage changed sizes without a resource: %+v", st)
	}
	if st.CompressedNodes != st.ExpandedNodes || st.CompressedEdges != st.ExpandedEdges {
		t.Errorf("compression stage changed sizes while off: %+v", st)
	}
	if st.IndexClusters != [2]int{} {
		t.Errorf("flat serving must not report clusters: %+v", st.IndexClusters)
	}
	if st.Walks == 0 || st.TrainTime <= 0 || st.BuildTime < st.TrainTime {
		t.Errorf("stage timings wrong: %+v", st)
	}
}

func TestConcurrentServingPaths(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1 // serial training; the serving calls below are the concurrent part
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ext := map[string][]float32{}
	for _, id := range append(movies.IDs(), reviews.IDs()...) {
		ext[id] = []float32{1, 0}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range reviews.IDs() {
				if _, err := model.TopK(q, 2); err != nil {
					t.Error(err)
				}
				if _, err := model.TopKBlocked(q, 2); err != nil {
					t.Error(err)
				}
				if _, err := model.TopKCombined(q, 2, ext, 2, 0.5); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestTopKCombinedCachesExternalIndex(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ext := map[string][]float32{}
	for _, id := range append(movies.IDs(), reviews.IDs()...) {
		ext[id] = []float32{1, 0}
	}
	if _, err := model.TopKCombined("reviews:p0", 2, ext, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	cached := model.extCache[0].idx
	if cached == nil {
		t.Fatal("first TopKCombined call must populate the side cache")
	}
	if _, err := model.TopKCombined("reviews:p1", 2, ext, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if model.extCache[0].idx != cached {
		t.Error("same extVectors map must reuse the cached index")
	}
	// A different map (same content) must rebuild.
	ext2 := map[string][]float32{}
	for id, v := range ext {
		ext2[id] = v
	}
	if _, err := model.TopKCombined("reviews:p0", 2, ext2, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if model.extCache[0].idx == cached {
		t.Error("different extVectors map must rebuild the index")
	}
}
