package tdmatch

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/mmapfile"
	"github.com/tdmatch/tdmatch/internal/pipeline"
	"github.com/tdmatch/tdmatch/internal/textproc"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// Stats reports what the pipeline did, for logging and experiments.
type Stats struct {
	// GraphNodes / GraphEdges are the sizes after graph creation.
	GraphNodes, GraphEdges int
	// ExpandedNodes / ExpandedEdges are the sizes after expansion
	// (equal to the above when no resource is configured).
	ExpandedNodes, ExpandedEdges int
	// CompressedNodes / CompressedEdges are the sizes after compression
	// (equal to the expanded sizes when compression is off).
	CompressedNodes, CompressedEdges int
	// FilteredTerms counts second-corpus terms dropped by filtering.
	FilteredTerms int
	// MergedTerms counts term→canonical mappings applied.
	MergedTerms int
	// Walks is the number of generated random walks.
	Walks int
	// TrainTime is the wall time of walks + embedding training.
	TrainTime time.Duration
	// IndexClusters is the partition count of each side's IVF index
	// (zero under IndexFlat).
	IndexClusters [2]int
	// BuildTime is the wall time of the whole Build call.
	BuildTime time.Duration
}

// extIndexCache memoizes the external-scorer index TopKCombined builds
// over one target side, keyed on the identity of the caller's vector map.
// src retains the keyed map so its address cannot be recycled for a new
// map while the cache entry is alive.
type extIndexCache struct {
	src map[string][]float32
	dim int
	idx *match.Index
}

// Model is a trained matcher over two corpora.
type Model struct {
	cfg    Config
	first  *Corpus
	second *Corpus

	// ps is the retained pipeline state — the graph, node maps,
	// canonicalizer and trainer arenas every incremental Ingest patches.
	// Models restored from a snapshot carry no pipeline state (ps nil)
	// and ingest via fold (when the snapshot stores term vectors).
	// spillPath, when set by SpillTrainer, names the file holding the
	// trainer's spilled output arena; the next warm ingest reloads it.
	ps        *pipeline.State
	fold      *foldState
	spillPath string

	vectors map[string][]float32
	dim     int
	// firstIdx/secondIdx are the serving indexes: LSM-style segment
	// stacks (match.Segmented) whose sealed base wraps the full build
	// per Config.Index (flat, IVF or SQ8, sharded per ServeShards) and
	// whose small mutable delta absorbs ingests — what makes Ingest and
	// clone O(delta) at any corpus size. firstFlat/secondFlat are
	// monolithic exact indexes over each side's live rows, backing
	// TopKCombined and TopKBlocked; they are built eagerly by Build,
	// invalidated by mutations and clones, and lazily rebuilt under
	// flatMu on first use.
	firstIdx   match.VectorIndex
	secondIdx  match.VectorIndex
	flatMu     sync.Mutex
	firstFlat  *match.Index
	secondFlat *match.Index

	// deltas is the persistence delta chain: one record per Ingest or
	// Remove call since the model was built (or loaded), re-applied by
	// Snapshot.Bind so snapshots stay loadable against the pre-ingest
	// corpus files. deltas[:folded] are folded into a full (re)build —
	// Compact advances the watermark instead of resetting a counter, so
	// an ingest that lands while a background compaction rebuilds stays
	// counted as stale. staleBase carries the staleness a snapshot
	// recorded for deltas the chain no longer itemizes per record.
	deltas    []savedDelta
	folded    int
	staleBase int

	blkMu     sync.Mutex
	firstBlk  *match.Blocker
	secondBlk *match.Blocker
	extMu     sync.Mutex
	extCache  [2]extIndexCache
	stats     Stats

	// backing pins the mmap a zero-copy (v6) snapshot load bound this
	// model's arenas onto: the vector map, term vectors and sealed index
	// segments are views into it, so it must stay mapped for the model's
	// lifetime (clones share it). Nil for built or gob-loaded models.
	// The mapping is PROT_READ; mutations promote the touched arena to a
	// heap copy instead of writing through (see match.Index).
	backing *mmapfile.Mapping
}

// Build runs the full pipeline over two corpora and returns a ready model.
// The pipeline is an explicit stage list (internal/pipeline) — graph
// creation (§II), expansion (§III-A), compression (§III-B), walk
// generation and embedding training (§IV-A) — followed by index
// construction (§IV-B); each stage fills its slice of Stats. The stage
// state is retained by the model, so Ingest and Remove can later run the
// delta stages against it.
func Build(first, second *Corpus, cfg Config) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: Build requires two corpora")
	}
	m := &Model{cfg: cfg.withDefaults(), first: first, second: second}
	start := time.Now()
	st := &pipeline.State{Cfg: m.pipelineConfig(), First: first.c, Second: second.c}
	if err := pipeline.Run(st, pipeline.FullStages()); err != nil {
		return nil, err
	}
	m.ps = st
	m.dim = m.cfg.Dim
	m.copyStageStats()
	m.gatherVectors(st.Build.DocNode)
	if err := m.buildIndexes(); err != nil {
		return nil, err
	}
	// The packed walk corpus is only needed between the walk and train
	// stages; release it instead of pinning it in the retained state.
	st.Seqs = embed.Sequences{}
	m.stats.BuildTime = time.Since(start)
	return m, nil
}

// pipelineConfig translates the public Config into the internal stage
// parameters.
func (m *Model) pipelineConfig() pipeline.Config {
	cfg := m.cfg
	bc := graph.BuildConfig{
		Pre: textproc.Preprocessor{
			RemoveStopwords: true,
			Stem:            true,
			MaxNGram:        cfg.MaxNGram,
		},
		ConnectMetadata:      true,
		DisableMetadataEdges: cfg.DisableMetadataEdges,
		Bucketing:            cfg.Bucketing,
		BucketWidth:          cfg.BucketWidth,
		TFIDFTopK:            cfg.TFIDFTopK,
	}
	switch cfg.Filter {
	case FilterNone:
		bc.Filter = graph.FilterNone
	case FilterTFIDF:
		bc.Filter = graph.FilterTFIDF
	default:
		bc.Filter = graph.FilterIntersect
	}
	if lex := buildLexicon(cfg.SynonymGroups); lex != nil {
		bc.Mergers = append(bc.Mergers, lex)
	}
	pc := pipeline.Config{
		Graph:               bc,
		MaxRelationsPerNode: cfg.MaxRelationsPerNode,
		Compress:            cfg.Compression == CompressMSP,
		MSPRatio:            cfg.CompressionRatio,
		Seed:                cfg.Seed,
		Walk: walk.Config{
			NumWalks:    cfg.NumWalks,
			Length:      cfg.WalkLength,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
			KindWeights: kindWeights(cfg.WalkBias),
		},
	}
	if cfg.Resource != nil {
		pc.Resource = resourceAdapter{cfg.Resource}
	}
	if cfg.ReturnParam > 0 || cfg.InOutParam > 0 {
		p, q := cfg.ReturnParam, cfg.InOutParam
		if p <= 0 {
			p = 1
		}
		if q <= 0 {
			q = 1
		}
		pc.SecondOrder = &walk.SecondOrder{P: p, Q: q}
	}
	mode, window := m.objective()
	pc.Embed = embed.Config{
		Dim:       cfg.Dim,
		Window:    window,
		Negative:  cfg.Negative,
		Epochs:    cfg.Epochs,
		Mode:      mode,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Subsample: cfg.Subsample,
	}
	return pc
}

// copyStageStats mirrors the stage-layer statistics into the public
// Stats struct.
func (m *Model) copyStageStats() {
	ss := m.ps.Stats
	m.stats.GraphNodes = ss.GraphNodes
	m.stats.GraphEdges = ss.GraphEdges
	m.stats.ExpandedNodes = ss.ExpandedNodes
	m.stats.ExpandedEdges = ss.ExpandedEdges
	m.stats.CompressedNodes = ss.CompressedNodes
	m.stats.CompressedEdges = ss.CompressedEdges
	m.stats.FilteredTerms = ss.FilteredTerms
	m.stats.MergedTerms = ss.MergedTerms
	m.stats.Walks = ss.Walks
	m.stats.TrainTime = ss.TrainTime
}

// gatherVectors extracts the rows of the given documents out of the
// trainer's vocabulary-sized arena into one compact per-document arena;
// the vector map values are views into it. Used after a full build (all
// documents) and after a delta run (the new documents only).
func (m *Model) gatherVectors(docNode map[string]graph.NodeID) {
	if m.vectors == nil {
		m.vectors = make(map[string][]float32, len(docNode))
	}
	docArena := make([]float32, len(docNode)*m.dim)
	used := 0
	for docID, node := range docNode {
		v := m.ps.Embed.Vector(int32(node))
		if v == nil {
			continue
		}
		row := docArena[used*m.dim : (used+1)*m.dim : (used+1)*m.dim]
		copy(row, v)
		m.vectors[docID] = row
		used++
	}
}

// buildIndexes constructs the per-side serving indexes (§IV-B): the
// exact arena-backed flat index of each side becomes the sealed base
// segment of a segmented stack, wrapped per Config.Index. Also used by
// LoadModel to rebuild serving state from persisted vectors.
func (m *Model) buildIndexes() error {
	return m.buildSegmentedIndexes(nil, nil)
}

// buildSegmentedIndexes is buildIndexes with explicit per-side segment
// manifests (lists of live document IDs; sealed segments in stack
// order, the mutable delta last). A nil manifest builds the fresh
// single-segment layout over the side's whole corpus. Snapshot.Bind
// passes a version-5 snapshot's manifests so a restored stack keeps
// its saved segment boundaries.
func (m *Model) buildSegmentedIndexes(firstSegs, secondSegs [][]string) error {
	var err error
	if m.firstIdx, m.firstFlat, err = m.buildSide(m.first.c, 0, firstSegs); err != nil {
		return err
	}
	if m.secondIdx, m.secondFlat, err = m.buildSide(m.second.c, 1, secondSegs); err != nil {
		return err
	}
	return nil
}

// buildSide assembles one side's segment stack: manifest[0] becomes the
// sealed base (wrapped per Config.Index), the middle entries are
// re-sealed in order, and the last entry fills the mutable delta. The
// monolithic exact cache is populated only for the single-segment
// layout; multi-segment restores leave it to the lazy exactFlat
// rebuild.
func (m *Model) buildSide(c *corpus.Corpus, side int, manifest [][]string) (match.VectorIndex, *match.Index, error) {
	if len(manifest) == 0 {
		manifest = [][]string{c.IDs(), nil}
	}
	flat, err := m.buildFlatIDs(manifest[0])
	if err != nil {
		return nil, nil, err
	}
	stack, err := match.NewSegmented(m.serveIndex(flat, side), m.dim, m.sealFunc(side), m.cfg.SegmentMaxDocs)
	if err != nil {
		return nil, nil, err
	}
	single := true
	for i, ids := range manifest[1:] {
		if len(ids) == 0 {
			continue
		}
		single = false
		if err := stack.Append(ids, m.gatherArena(ids)); err != nil {
			return nil, nil, err
		}
		if i < len(manifest)-2 { // not the delta entry
			if err := stack.Seal(); err != nil {
				return nil, nil, err
			}
		}
	}
	if single {
		return stack, flat, nil
	}
	return stack, nil, nil
}

// gatherArena copies the documents' vectors into one contiguous arena
// (documents without an embedding stay zero rows, scoring 0 against
// everything, exactly as after a full build).
func (m *Model) gatherArena(ids []string) []float32 {
	arena := make([]float32, len(ids)*m.dim)
	for i, id := range ids {
		copy(arena[i*m.dim:(i+1)*m.dim], m.vectors[id])
	}
	return arena
}

func (m *Model) buildFlatIDs(ids []string) (*match.Index, error) {
	return match.NewIndexArena(ids, m.gatherArena(ids), m.dim)
}

// exactFlat returns the side's (1 = first corpus, 2 = second)
// monolithic exact index, rebuilding it over the serving stack's live
// rows when a mutation or clone invalidated it — TopKCombined and
// TopKBlocked are exact-only surfaces and pay this O(side) rebuild at
// most once per mutation, not per query.
func (m *Model) exactFlat(side int) (*match.Index, error) {
	m.flatMu.Lock()
	defer m.flatMu.Unlock()
	slot, idx := &m.firstFlat, m.firstIdx
	if side == 2 {
		slot, idx = &m.secondFlat, m.secondIdx
	}
	if *slot == nil {
		var ids []string
		if seg, ok := idx.(*match.Segmented); ok {
			for _, segIDs := range seg.SegmentManifest() {
				ids = append(ids, segIDs...)
			}
		} else {
			ids = idx.IDs()
		}
		flat, err := m.buildFlatIDs(ids)
		if err != nil {
			return nil, err
		}
		*slot = flat
	}
	return *slot, nil
}

// serveIndex wraps a flat index per Config.Index, then per
// Config.ServeShards for scatter-gather serving. side (0 or 1) offsets
// the clustering seed so the two sides don't share centroid draws, and
// addresses the Stats slot.
func (m *Model) serveIndex(flat *match.Index, side int) match.VectorIndex {
	var inner match.VectorIndex
	switch m.cfg.Index {
	case IndexIVF:
		ivf := match.NewIVF(flat, match.IVFOptions{
			Clusters:    m.cfg.IVFClusters,
			NProbe:      m.cfg.IVFNProbe,
			ExactRecall: m.cfg.ExactRecall,
			Seed:        m.cfg.Seed + int64(side) + 1,
		})
		m.stats.IndexClusters[side] = ivf.Clusters()
		inner = ivf
	case IndexSQ8:
		inner = match.NewIndexSQ8(flat, m.cfg.SQ8Rerank)
	case IndexHNSW:
		inner = match.NewHNSW(flat, m.hnswOptions(side, 0))
	default:
		inner = flat
	}
	return m.shardWrap(inner)
}

// shardWrap wraps a serving index for scatter-gather when the resolved
// shard count warrants it; an unwrappable or unsharded index is served
// directly.
func (m *Model) shardWrap(inner match.VectorIndex) match.VectorIndex {
	shards := m.cfg.serveShards(len(inner.IDs()))
	if shards <= 1 {
		return inner
	}
	sh, err := match.NewSharded(inner, shards, m.cfg.Workers)
	if err != nil {
		return inner
	}
	return sh
}

// segmentSeedStride spaces the clustering seeds of sealed delta
// segments apart from the base segment's and from each other.
const segmentSeedStride = 1_000_003

// hnswOptions resolves the HNSW construction options for one side's
// segment at the given manifest ordinal: the base (ordinal 0) derives
// its level-generator seed like serveIndex's clustering seed, sealed
// deltas space theirs by segmentSeedStride exactly like IVF's. Shared
// by the builder, the v6 snapshot writer and the v6 binder so a
// load-and-resave cycle rebuilds identical graphs.
func (m *Model) hnswOptions(side, ordinal int) match.HNSWOptions {
	seed := m.cfg.Seed + int64(side) + 1
	if ordinal > 0 {
		seed += (int64(ordinal) + 1) * segmentSeedStride
	}
	return match.HNSWOptions{
		M:           m.cfg.HNSWM,
		Ef:          m.cfg.HNSWEf,
		EfConstruct: m.cfg.HNSWEfConstruct,
		Seed:        seed,
	}
}

// sealFunc returns the stack's seal hook for one side: a freshly
// sealed delta segment gets the same kind wrap as the base (IVF
// clustering, SQ8 quantization, sharding when large enough), with a
// deterministic per-ordinal seed so a replayed ingest sequence builds
// an identical stack. The hook captures the configuration by value and
// never touches the model, so clones can share it.
func (m *Model) sealFunc(side int) match.SealFunc {
	cfg := m.cfg
	return func(flat *match.Index, ordinal int) match.VectorIndex {
		var inner match.VectorIndex
		switch cfg.Index {
		case IndexIVF:
			inner = match.NewIVF(flat, match.IVFOptions{
				Clusters:    cfg.IVFClusters,
				NProbe:      cfg.IVFNProbe,
				ExactRecall: cfg.ExactRecall,
				Seed:        cfg.Seed + int64(side) + 1 + (int64(ordinal)+1)*segmentSeedStride,
			})
		case IndexSQ8:
			inner = match.NewIndexSQ8(flat, cfg.SQ8Rerank)
		case IndexHNSW:
			inner = match.NewHNSW(flat, match.HNSWOptions{
				M:           cfg.HNSWM,
				Ef:          cfg.HNSWEf,
				EfConstruct: cfg.HNSWEfConstruct,
				Seed:        cfg.Seed + int64(side) + 1 + (int64(ordinal)+1)*segmentSeedStride,
			})
		default:
			inner = flat
		}
		shards := cfg.serveShards(len(inner.IDs()))
		if shards <= 1 {
			return inner
		}
		sh, err := match.NewSharded(inner, shards, cfg.Workers)
		if err != nil {
			return inner
		}
		return sh
	}
}

// Reshard re-partitions both serving indexes for scatter-gather with the
// given shard count (interpreted like Config.ServeShards: 0 = auto,
// <= 1 disables). Only the wrapper is rebuilt — the underlying flat,
// IVF or SQ8 index and its fingerprint are untouched, so resharding is
// O(1) and never invalidates cached results. Not safe concurrently with
// queries; the serving layer applies it before a model starts serving.
func (m *Model) Reshard(shards int) {
	m.cfg.ServeShards = shards
	rewrap := func(idx match.VectorIndex) match.VectorIndex {
		return m.shardWrap(unshard(idx))
	}
	if seg, ok := m.firstIdx.(*match.Segmented); ok {
		seg.RewrapBase(rewrap)
	} else {
		m.firstIdx = rewrap(m.firstIdx)
	}
	if seg, ok := m.secondIdx.(*match.Segmented); ok {
		seg.RewrapBase(rewrap)
	} else {
		m.secondIdx = rewrap(m.secondIdx)
	}
}

// unshard strips a scatter-gather wrapper, returning the serving index
// it was built over.
func unshard(idx match.VectorIndex) match.VectorIndex {
	if sh, ok := idx.(*match.Sharded); ok {
		return sh.Inner()
	}
	return idx
}

// ShardStat is a point-in-time snapshot of one serving shard's scatter
// counters, surfaced per side by Model.ShardStats and /v1/stats.
type ShardStat = match.ShardStat

// ShardStats snapshots the per-shard scatter counters of both serving
// indexes' base segments; a side whose base serves unsharded reports
// nil.
func (m *Model) ShardStats() (first, second []ShardStat) {
	first = shardStatsOf(m.firstIdx)
	second = shardStatsOf(m.secondIdx)
	return first, second
}

func shardStatsOf(idx match.VectorIndex) []ShardStat {
	if seg, ok := idx.(*match.Segmented); ok {
		if sh := seg.ShardedBase(); sh != nil {
			return sh.ShardStats()
		}
		return nil
	}
	if sh, ok := idx.(*match.Sharded); ok {
		return sh.ShardStats()
	}
	return nil
}

// SegmentStats describes one side's serving segment stack.
type SegmentStats struct {
	// Segments is the sealed-segment count (1 right after a build or
	// Compact; each SegmentMaxDocs ingested documents seal another).
	Segments int `json:"segments"`
	// DeltaDocs is the live row count of the mutable delta segment.
	DeltaDocs int `json:"delta_docs"`
	// Tombstones counts sealed rows masked by the removal overlay
	// (reclaimed by Compact).
	Tombstones int `json:"tombstones"`
}

// SegmentStats snapshots the segment layout of both serving indexes.
func (m *Model) SegmentStats() (first, second SegmentStats) {
	return segmentStatsOf(m.firstIdx), segmentStatsOf(m.secondIdx)
}

func segmentStatsOf(idx match.VectorIndex) SegmentStats {
	seg, ok := idx.(*match.Segmented)
	if !ok {
		return SegmentStats{}
	}
	return SegmentStats{
		Segments:   seg.Segments(),
		DeltaDocs:  seg.DeltaLen(),
		Tombstones: seg.Tombstones(),
	}
}

// IndexStats identifies one side's serving index for monitoring: the
// configured kind plus resident/live row counts, and the graph shape
// when the side serves HNSW.
type IndexStats struct {
	// Kind is the serving index kind ("flat", "ivf", "sq8" or "hnsw").
	Kind string `json:"kind"`
	// Rows counts resident rows including tombstoned ones; LiveRows
	// counts rows a query can actually return. Compact closes the gap.
	Rows     int `json:"rows"`
	LiveRows int `json:"live_rows"`
	// MaxLevel, AvgDegree and Ef describe the base segment's HNSW graph
	// (absent for other kinds): the hierarchy's top layer, the mean
	// layer-0 out-degree, and the query-time beam width.
	MaxLevel  int     `json:"max_level,omitempty"`
	AvgDegree float64 `json:"avg_degree,omitempty"`
	Ef        int     `json:"ef,omitempty"`
}

// IndexStats snapshots both serving indexes' identity blocks.
func (m *Model) IndexStats() (first, second IndexStats) {
	return m.indexStatsOf(m.firstIdx), m.indexStatsOf(m.secondIdx)
}

func (m *Model) indexStatsOf(idx match.VectorIndex) IndexStats {
	st := IndexStats{Kind: m.cfg.Index.String()}
	base := idx
	if seg, ok := idx.(*match.Segmented); ok {
		st.LiveRows = seg.Len()
		st.Rows = seg.Len() + seg.Tombstones()
		base = seg.Base()
	} else {
		st.LiveRows = idx.Len()
		st.Rows = len(idx.IDs())
	}
	if h, ok := unshard(base).(*match.HNSW); ok {
		st.MaxLevel = h.MaxLevel()
		st.AvgDegree = h.AvgDegree()
		st.Ef = h.Ef()
	}
	return st
}

// objective picks Skip-gram window 3 when a table is involved and CBOW
// window 15 for text-only tasks, as in §V — unless overridden.
func (m *Model) objective() (embed.Mode, int) {
	mode := embed.SkipGram
	window := m.cfg.Window
	if m.cfg.ChooseObjective {
		tableInvolved := m.first.c.Kind == corpus.Table || m.second.c.Kind == corpus.Table
		if !tableInvolved {
			mode = embed.CBOW
			if window <= 0 {
				window = 15
			}
		} else if window <= 0 {
			window = 3
		}
	} else {
		if m.cfg.CBOW {
			mode = embed.CBOW
		}
		if window <= 0 {
			window = 5
		}
	}
	return mode, window
}

// Stats returns pipeline statistics.
func (m *Model) Stats() Stats { return m.stats }

// Vector returns the learned embedding of a document's metadata node, nil
// when the document is unknown or was pruned.
func (m *Model) Vector(docID string) []float32 { return m.vectors[docID] }

// Vectors returns the embeddings of all metadata documents, keyed by ID.
// Callers must not mutate the returned slices.
func (m *Model) Vectors() map[string][]float32 { return m.vectors }

// docOf resolves a document ID to its side (1 or 2) and document; side 0
// and ok false for unknown IDs.
func (m *Model) docOf(docID string) (int, corpus.Document, bool) {
	if d, ok := m.first.c.Doc(docID); ok {
		return 1, d, true
	}
	if d, ok := m.second.c.Doc(docID); ok {
		return 2, d, true
	}
	return 0, corpus.Document{}, false
}

// sideOf reports which corpus a document belongs to: 1, 2, or 0 (unknown).
func (m *Model) sideOf(docID string) int {
	side, _, _ := m.docOf(docID)
	return side
}

// TopK returns the k documents of the *other* corpus most similar to the
// given document (§IV-B), served by the configured index. The query may
// come from either corpus.
func (m *Model) TopK(docID string, k int) ([]Match, error) {
	var idx match.VectorIndex
	switch m.sideOf(docID) {
	case 1:
		idx = m.secondIdx
	case 2:
		idx = m.firstIdx
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", docID)
	}
	return toMatches(idx.TopK(q, k)), nil
}

// extIndex returns the cached external-scorer index over the given
// target side, rebuilding it only when the caller passes a different
// vector map (identity, not content: mutating a cached map between
// calls is not supported) or dimension. side is 1 for the first corpus,
// 2 for the second; the index is built position-aligned with that
// side's flat index (including tombstoned rows, which never surface),
// so TopKCombined stays correct after ingests and removals.
func (m *Model) extIndex(side int, flat *match.Index, extVectors map[string][]float32, extDim int) (*match.Index, error) {
	m.extMu.Lock()
	defer m.extMu.Unlock()
	cached := &m.extCache[side-1]
	if cached.idx != nil && cached.dim == extDim &&
		reflect.ValueOf(cached.src).Pointer() == reflect.ValueOf(extVectors).Pointer() {
		return cached.idx, nil
	}
	ids := flat.IDs()
	extVecs := make([][]float32, len(ids))
	for i, id := range ids {
		extVecs[i] = extVectors[id]
	}
	idx, err := match.NewIndex(ids, extVecs, extDim)
	if err != nil {
		return nil, err
	}
	*cached = extIndexCache{src: extVectors, dim: extDim, idx: idx}
	return idx, nil
}

// TopKCombined averages the model's cosine scores with an external scorer's
// vectors (e.g. a pre-trained sentence embedder), reproducing the Fig. 10
// combination. extVectors must map document IDs of both corpora to vectors
// of consistent dimension extDim; weight balances model vs external (0.5 =
// plain average). The external index is cached per side on the identity of
// extVectors, so repeated calls with the same map pay the build once.
func (m *Model) TopKCombined(docID string, k int, extVectors map[string][]float32, extDim int, weight float64) ([]Match, error) {
	var sideNo int
	switch m.sideOf(docID) {
	case 1:
		sideNo = 2
	case 2:
		sideNo = 1
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	idx, err := m.exactFlat(sideNo)
	if err != nil {
		return nil, err
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	extQ := extVectors[docID]
	if extQ == nil {
		return toMatches(idx.TopK(q, k)), nil
	}
	extIdx, err := m.extIndex(sideNo, idx, extVectors, extDim)
	if err != nil {
		return nil, err
	}
	scored, err := idx.TopKCombined(extIdx, q, extQ, 1-weight, weight, k)
	if err != nil {
		return nil, err
	}
	return toMatches(scored), nil
}

// MatchAll ranks, for every document of the query corpus, the top-k
// documents of the other corpus, fanning the queries out over
// Config.Workers goroutines. fromSecond selects the query side (the paper
// defaults to the larger corpus; pick the side natural for the
// application, e.g. claims in fact checking).
func (m *Model) MatchAll(fromSecond bool, k int) map[string][]Match {
	return m.MatchAllWorkers(fromSecond, k, m.cfg.Workers)
}

// matchBatch is the number of queries one worker hands to a blocked
// TopKBatch kernel pass: large enough to amortize each arena tile read
// over the whole batch, small enough that the per-batch query block
// (matchBatch x Dim float32s) stays cache-resident next to the tile.
const matchBatch = 32

// batchChunk sizes one kernel chunk for n queries over the given worker
// count: matchBatch by default, but never so large that idle workers
// watch one chunk run — a burst smaller than workers*matchBatch (the
// common micro-batch shape) still splits across every worker.
func batchChunk(n, workers int) int {
	size := matchBatch
	if workers > 1 {
		if per := (n + workers - 1) / workers; per < size {
			size = per
		}
	}
	if size < 1 {
		size = 1
	}
	return size
}

// MatchAllWorkers is MatchAll with an explicit worker count; 1 reproduces
// the serial scan. Queries are batched matchBatch at a time into the
// serving index's blocked multi-query kernel — one arena read amortized
// across each batch — and the batches are fanned out over the workers.
// Batching and worker count never change results: every path selects
// with the same kernel and tie rule.
func (m *Model) MatchAllWorkers(fromSecond bool, k, workers int) map[string][]Match {
	c, idx := m.first.c, m.secondIdx
	if fromSecond {
		c, idx = m.second.c, m.firstIdx
	}
	ids := c.IDs()
	results := make([][]Match, len(ids))
	if sh, ok := idx.(*match.Sharded); ok {
		// Sharded serving: one gather, then chunk×shard scatter tasks on
		// the shared pool (shardedBatch) instead of chunk tasks.
		queries := make([][]float32, 0, len(ids))
		slots := make([]int, 0, len(ids))
		for i, id := range ids {
			if q := m.vectors[id]; q != nil {
				queries = append(queries, q)
				slots = append(slots, i)
			}
		}
		for j, ranked := range shardedBatch(sh, queries, k, workers) {
			results[slots[j]] = toMatches(ranked)
		}
		out := make(map[string][]Match, len(ids))
		for i, id := range ids {
			if results[i] != nil {
				out[id] = results[i]
			}
		}
		return out
	}
	size := batchChunk(len(ids), workers)
	batches := (len(ids) + size - 1) / size
	runPool(batches, workers, func(bi int) {
		lo := bi * size
		hi := lo + size
		if hi > len(ids) {
			hi = len(ids)
		}
		queries := make([][]float32, 0, hi-lo)
		slots := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if q := m.vectors[ids[i]]; q != nil {
				queries = append(queries, q)
				slots = append(slots, i)
			}
		}
		for j, ranked := range idx.TopKBatch(queries, k) {
			results[slots[j]] = toMatches(ranked)
		}
	})
	out := make(map[string][]Match, len(ids))
	for i, id := range ids {
		if results[i] != nil {
			out[id] = results[i]
		}
	}
	return out
}

// TopKBatch answers many queries in one call, batching them through the
// serving indexes' blocked multi-query kernels with Config.Workers
// parallelism. Results are position-aligned with docIDs; unknown
// documents and documents without an embedding fail per query without
// affecting the rest.
func (m *Model) TopKBatch(docIDs []string, k int) []BatchResult {
	return m.TopKBatchWorkers(docIDs, k, m.cfg.Workers)
}

// TopKBatchWorkers is TopKBatch with an explicit worker count. Queries
// are grouped by which side's index serves them, chunked matchBatch at
// a time into the blocked kernel, and the chunks fanned out over the
// workers — the serving counterpart of MatchAllWorkers for ad-hoc query
// sets (Server.TopKBatch and the micro-batch executor feed it).
func (m *Model) TopKBatchWorkers(docIDs []string, k, workers int) []BatchResult {
	out := make([]BatchResult, len(docIDs))
	var side1, side2 []int
	for i, id := range docIDs {
		out[i].ID = id
		switch m.sideOf(id) {
		case 1:
			side1 = append(side1, i)
		case 2:
			side2 = append(side2, i)
		default:
			out[i].Err = fmt.Errorf("tdmatch: unknown document %q", id)
		}
	}
	type chunk struct {
		idx   match.VectorIndex
		slots []int
	}
	var chunks []chunk
	addChunks := func(idx match.VectorIndex, slots []int) {
		size := batchChunk(len(slots), workers)
		for lo := 0; lo < len(slots); lo += size {
			hi := lo + size
			if hi > len(slots) {
				hi = len(slots)
			}
			chunks = append(chunks, chunk{idx: idx, slots: slots[lo:hi]})
		}
	}
	// Sharded sides scatter chunk×shard tasks over the pool instead of
	// queueing whole chunks; both sides sharing one pool sequentially is
	// fine — a request batch is served by one side in practice.
	serveSharded := func(sh *match.Sharded, slots []int) {
		queries := make([][]float32, 0, len(slots))
		live := make([]int, 0, len(slots))
		for _, slot := range slots {
			q := m.vectors[out[slot].ID]
			if q == nil {
				out[slot].Err = fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", out[slot].ID)
				continue
			}
			queries = append(queries, q)
			live = append(live, slot)
		}
		for j, ranked := range shardedBatch(sh, queries, k, workers) {
			out[live[j]].Matches = toMatches(ranked)
		}
	}
	dispatch := func(idx match.VectorIndex, slots []int) {
		if len(slots) == 0 {
			return
		}
		if sh, ok := idx.(*match.Sharded); ok {
			serveSharded(sh, slots)
			return
		}
		addChunks(idx, slots)
	}
	dispatch(m.secondIdx, side1) // side-1 queries rank side-2 targets
	dispatch(m.firstIdx, side2)
	runPool(len(chunks), workers, func(ci int) {
		ch := chunks[ci]
		queries := make([][]float32, 0, len(ch.slots))
		live := make([]int, 0, len(ch.slots))
		for _, slot := range ch.slots {
			q := m.vectors[out[slot].ID]
			if q == nil {
				out[slot].Err = fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", out[slot].ID)
				continue
			}
			queries = append(queries, q)
			live = append(live, slot)
		}
		for j, ranked := range ch.idx.TopKBatch(queries, k) {
			out[live[j]].Matches = toMatches(ranked)
		}
	})
	return out
}

// shardedBatch answers one query set against a sharded index by fanning
// chunk×shard scatter tasks over the shared worker pool: the queries are
// chunked matchBatch at a time, every chunk is planned up front (one
// normalization/probe/quantization pass per chunk), and the plans' shard
// tasks — nchunks × shards of them, each a partial-arena kernel pass —
// are scheduled as one flat task list so no worker idles while any shard
// of any chunk remains. Results are position-aligned with queries and
// bit-identical to idx.TopKBatch.
func shardedBatch(sh *match.Sharded, queries [][]float32, k, workers int) [][]match.Scored {
	n := len(queries)
	if n == 0 {
		return nil
	}
	size := matchBatch
	if size > n {
		size = n
	}
	nchunks := (n + size - 1) / size
	plans := make([]match.ShardPlan, nchunks)
	for ci := range plans {
		lo, hi := ci*size, (ci+1)*size
		if hi > n {
			hi = n
		}
		plans[ci] = sh.Plan(queries[lo:hi], k)
	}
	shards := sh.Shards()
	runPool(nchunks*shards, workers, func(t int) {
		plans[t/shards].RunShard(t % shards)
	})
	out := make([][]match.Scored, 0, n)
	for _, p := range plans {
		out = append(out, p.Merge()...)
	}
	return out
}

// runPool fans run(i) for i in [0, n) out over up to workers goroutines,
// blocking until every call returns; workers <= 1 (or n < 2) runs
// serially on the calling goroutine. The shared worker-pool scaffolding
// of MatchAllWorkers, Model.TopKBatchWorkers and the micro-batch
// executor. The work channel is buffered so the producer streams items
// without a scheduler round-trip per handoff — measurable when the
// per-item work is one small kernel call.
func runPool(n, workers int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	buf := n
	if buf > 4096 {
		buf = 4096
	}
	var wg sync.WaitGroup
	next := make(chan int, buf)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// graph returns the trained graph, nil for models restored with
// LoadModel (which do not retain it).
func (m *Model) graph() *graph.Graph {
	if m.ps == nil || m.ps.Build == nil {
		return nil
	}
	return m.ps.Build.Graph
}

// GraphSize returns the live node and edge counts of the trained graph.
// Models restored with LoadModel carry no graph and report zeros.
func (m *Model) GraphSize() (nodes, edges int) {
	g := m.graph()
	if g == nil {
		return 0, 0
	}
	return g.NumNodes(), g.NumEdges()
}

// WriteGraphDOT renders the trained graph in Graphviz DOT format for
// inspection. It fails for models restored with LoadModel, which do not
// retain the graph.
func (m *Model) WriteGraphDOT(w io.Writer, name string) error {
	g := m.graph()
	if g == nil {
		return fmt.Errorf("tdmatch: model has no graph (restored from a save?)")
	}
	return g.WriteDOT(w, name)
}

func toMatches(scored []match.Scored) []Match {
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Score: s.Score}
	}
	return out
}

// kindWeights translates the public WalkBias into internal kind weights.
func kindWeights(b *WalkBias) map[graph.NodeKind]float64 {
	if b == nil {
		return nil
	}
	w := map[graph.NodeKind]float64{}
	set := func(v float64, kinds ...graph.NodeKind) {
		if v == 0 {
			return // unspecified: keep default weight 1
		}
		for _, k := range kinds {
			w[k] = v
		}
	}
	set(b.Attribute, graph.Attribute)
	set(b.Metadata, graph.Tuple, graph.Snippet, graph.Concept)
	set(b.External, graph.External)
	return w
}

// TopKBlocked is TopK restricted to candidates that share at least one
// processed token with the query document — the blocking speed-up the
// paper plans as future work (§VII). When no candidate shares a token the
// full ranking is returned.
func (m *Model) TopKBlocked(docID string, k int) ([]Match, error) {
	side, doc, ok := m.docOf(docID)
	if !ok {
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	var targets *corpus.Corpus
	var blocker **match.Blocker
	targetSide := 2
	if side == 1 {
		targets, blocker = m.second.c, &m.secondBlk
	} else {
		targetSide = 1
		targets, blocker = m.first.c, &m.firstBlk
	}
	idx, err := m.exactFlat(targetSide)
	if err != nil {
		return nil, err
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	m.blkMu.Lock()
	if *blocker == nil {
		// Position-align the blocker with the exact index (not the corpus):
		// a lazily rebuilt index holds live rows only, but the eager
		// post-build one may keep tombstoned rows, whose documents are gone
		// from the corpus — they get no postings and are skipped by the
		// scoring kernel anyway.
		indexIDs := idx.IDs()
		texts := make([]string, len(indexIDs))
		for i, id := range indexIDs {
			if d, ok := targets.Doc(id); ok {
				texts[i] = d.Text()
			}
		}
		*blocker = match.NewBlocker(texts)
	}
	blk := *blocker
	m.blkMu.Unlock()
	return toMatches(idx.TopKBlocked(blk, doc.Text(), q, k)), nil
}
