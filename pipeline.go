package tdmatch

import (
	"fmt"
	"io"
	"time"

	"github.com/tdmatch/tdmatch/internal/compress"
	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/expand"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/textproc"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// Stats reports what the pipeline did, for logging and experiments.
type Stats struct {
	// GraphNodes / GraphEdges are the sizes after graph creation.
	GraphNodes, GraphEdges int
	// ExpandedNodes / ExpandedEdges are the sizes after expansion
	// (equal to the above when no resource is configured).
	ExpandedNodes, ExpandedEdges int
	// CompressedNodes / CompressedEdges are the sizes after compression
	// (equal to the expanded sizes when compression is off).
	CompressedNodes, CompressedEdges int
	// FilteredTerms counts second-corpus terms dropped by filtering.
	FilteredTerms int
	// MergedTerms counts term→canonical mappings applied.
	MergedTerms int
	// Walks is the number of generated random walks.
	Walks int
	// TrainTime is the wall time of walks + embedding training.
	TrainTime time.Duration
	// BuildTime is the wall time of the whole Build call.
	BuildTime time.Duration
}

// Model is a trained matcher over two corpora.
type Model struct {
	cfg    Config
	first  *Corpus
	second *Corpus

	g         *graph.Graph
	docNode   map[string]graph.NodeID
	vectors   map[string][]float32
	dim       int
	firstIdx  *match.Index
	secondIdx *match.Index
	firstBlk  *match.Blocker
	secondBlk *match.Blocker
	stats     Stats
}

// Build runs the full pipeline over two corpora and returns a ready model.
func Build(first, second *Corpus, cfg Config) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: Build requires two corpora")
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	// 1. Graph creation (§II).
	bc := graph.BuildConfig{
		Pre: textproc.Preprocessor{
			RemoveStopwords: true,
			Stem:            true,
			MaxNGram:        cfg.MaxNGram,
		},
		ConnectMetadata:      true,
		DisableMetadataEdges: cfg.DisableMetadataEdges,
		Bucketing:            cfg.Bucketing,
		BucketWidth:          cfg.BucketWidth,
		TFIDFTopK:            cfg.TFIDFTopK,
	}
	switch cfg.Filter {
	case FilterNone:
		bc.Filter = graph.FilterNone
	case FilterTFIDF:
		bc.Filter = graph.FilterTFIDF
	default:
		bc.Filter = graph.FilterIntersect
	}
	if lex := buildLexicon(cfg.SynonymGroups); lex != nil {
		bc.Mergers = append(bc.Mergers, lex)
	}
	res, err := graph.Build(first.c, second.c, bc)
	if err != nil {
		return nil, err
	}
	g := res.Graph
	m := &Model{cfg: cfg, first: first, second: second, g: g, docNode: res.DocNode}
	m.stats.GraphNodes = g.NumNodes()
	m.stats.GraphEdges = g.NumEdges()
	m.stats.FilteredTerms = res.FilteredTerms
	m.stats.MergedTerms = res.Canon.Mappings()

	// 2. Expansion (§III-A).
	if cfg.Resource != nil {
		expand.Expand(g, resourceAdapter{cfg.Resource}, expand.Options{
			MaxRelationsPerNode: cfg.MaxRelationsPerNode,
		})
	}
	m.stats.ExpandedNodes = g.NumNodes()
	m.stats.ExpandedEdges = g.NumEdges()

	// 3. Compression (§III-B).
	if cfg.Compression == CompressMSP {
		g = compress.MSP(g, compress.Options{Ratio: cfg.CompressionRatio, Seed: cfg.Seed})
		m.g = g
		// Metadata node IDs changed: rebuild the doc-node map by label.
		rebuilt := make(map[string]graph.NodeID, len(m.docNode))
		for docID := range m.docNode {
			if id, ok := g.MetaNode(docID); ok {
				rebuilt[docID] = id
			}
		}
		m.docNode = rebuilt
	}
	m.stats.CompressedNodes = g.NumNodes()
	m.stats.CompressedEdges = g.NumEdges()

	// 4. Walks + embeddings (§IV-A).
	trainStart := time.Now()
	wcfg := walk.Config{
		NumWalks:    cfg.NumWalks,
		Length:      cfg.WalkLength,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		KindWeights: kindWeights(cfg.WalkBias),
	}
	var walks [][]graph.NodeID
	if cfg.ReturnParam > 0 || cfg.InOutParam > 0 {
		p, q := cfg.ReturnParam, cfg.InOutParam
		if p <= 0 {
			p = 1
		}
		if q <= 0 {
			q = 1
		}
		walks = walk.GenerateSecondOrder(g, wcfg, walk.SecondOrder{P: p, Q: q})
	} else {
		walks = walk.Generate(g, wcfg)
	}
	m.stats.Walks = len(walks)

	mode, window := m.objective()
	em, err := embed.Train(walk.ToSequences(walks), g.Cap(), embed.Config{
		Dim:       cfg.Dim,
		Window:    window,
		Negative:  cfg.Negative,
		Epochs:    cfg.Epochs,
		Mode:      mode,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Subsample: cfg.Subsample,
	})
	if err != nil {
		return nil, err
	}
	m.stats.TrainTime = time.Since(trainStart)
	m.dim = cfg.Dim

	// 5. Metadata vectors and per-side indexes (§IV-B).
	m.vectors = make(map[string][]float32, len(m.docNode))
	for docID, node := range m.docNode {
		if v := em.Vector(int32(node)); v != nil {
			m.vectors[docID] = v
		}
	}
	if m.firstIdx, err = m.buildIndex(first.c); err != nil {
		return nil, err
	}
	if m.secondIdx, err = m.buildIndex(second.c); err != nil {
		return nil, err
	}
	m.stats.BuildTime = time.Since(start)
	return m, nil
}

// objective picks Skip-gram window 3 when a table is involved and CBOW
// window 15 for text-only tasks, as in §V — unless overridden.
func (m *Model) objective() (embed.Mode, int) {
	mode := embed.SkipGram
	window := m.cfg.Window
	if m.cfg.ChooseObjective {
		tableInvolved := m.first.c.Kind == corpus.Table || m.second.c.Kind == corpus.Table
		if !tableInvolved {
			mode = embed.CBOW
			if window <= 0 {
				window = 15
			}
		} else if window <= 0 {
			window = 3
		}
	} else {
		if m.cfg.CBOW {
			mode = embed.CBOW
		}
		if window <= 0 {
			window = 5
		}
	}
	return mode, window
}

func (m *Model) buildIndex(c *corpus.Corpus) (*match.Index, error) {
	ids := c.IDs()
	vecs := make([][]float32, len(ids))
	for i, id := range ids {
		vecs[i] = m.vectors[id]
	}
	return match.NewIndex(ids, vecs, m.dim)
}

// Stats returns pipeline statistics.
func (m *Model) Stats() Stats { return m.stats }

// Vector returns the learned embedding of a document's metadata node, nil
// when the document is unknown or was pruned.
func (m *Model) Vector(docID string) []float32 { return m.vectors[docID] }

// Vectors returns the embeddings of all metadata documents, keyed by ID.
// Callers must not mutate the returned slices.
func (m *Model) Vectors() map[string][]float32 { return m.vectors }

// sideOf reports which corpus a document belongs to: 1, 2, or 0 (unknown).
func (m *Model) sideOf(docID string) int {
	if _, ok := m.first.c.Doc(docID); ok {
		return 1
	}
	if _, ok := m.second.c.Doc(docID); ok {
		return 2
	}
	return 0
}

// TopK returns the k documents of the *other* corpus most similar to the
// given document (§IV-B). The query may come from either corpus.
func (m *Model) TopK(docID string, k int) ([]Match, error) {
	var idx *match.Index
	switch m.sideOf(docID) {
	case 1:
		idx = m.secondIdx
	case 2:
		idx = m.firstIdx
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", docID)
	}
	return toMatches(idx.TopK(q, k)), nil
}

// TopKCombined averages the model's cosine scores with an external scorer's
// vectors (e.g. a pre-trained sentence embedder), reproducing the Fig. 10
// combination. extVectors must map document IDs of both corpora to vectors
// of consistent dimension extDim; weight balances model vs external (0.5 =
// plain average).
func (m *Model) TopKCombined(docID string, k int, extVectors map[string][]float32, extDim int, weight float64) ([]Match, error) {
	var side *corpus.Corpus
	var idx *match.Index
	switch m.sideOf(docID) {
	case 1:
		side, idx = m.second.c, m.secondIdx
	case 2:
		side, idx = m.first.c, m.firstIdx
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	extQ := extVectors[docID]
	if extQ == nil {
		return toMatches(idx.TopK(q, k)), nil
	}
	ids := side.IDs()
	extVecs := make([][]float32, len(ids))
	for i, id := range ids {
		extVecs[i] = extVectors[id]
	}
	extIdx, err := match.NewIndex(ids, extVecs, extDim)
	if err != nil {
		return nil, err
	}
	scored, err := idx.TopKCombined(extIdx, q, extQ, 1-weight, weight, k)
	if err != nil {
		return nil, err
	}
	return toMatches(scored), nil
}

// MatchAll ranks, for every document of the query corpus, the top-k
// documents of the other corpus. fromSecond selects the query side (the
// paper defaults to the larger corpus; pick the side natural for the
// application, e.g. claims in fact checking).
func (m *Model) MatchAll(fromSecond bool, k int) map[string][]Match {
	c := m.first.c
	if fromSecond {
		c = m.second.c
	}
	out := make(map[string][]Match, c.Len())
	for _, id := range c.IDs() {
		if matches, err := m.TopK(id, k); err == nil {
			out[id] = matches
		}
	}
	return out
}

// GraphSize returns the live node and edge counts of the trained graph.
// Models restored with LoadModel carry no graph and report zeros.
func (m *Model) GraphSize() (nodes, edges int) {
	if m.g == nil {
		return 0, 0
	}
	return m.g.NumNodes(), m.g.NumEdges()
}

// WriteGraphDOT renders the trained graph in Graphviz DOT format for
// inspection. It fails for models restored with LoadModel, which do not
// retain the graph.
func (m *Model) WriteGraphDOT(w io.Writer, name string) error {
	if m.g == nil {
		return fmt.Errorf("tdmatch: model has no graph (restored from a save?)")
	}
	return m.g.WriteDOT(w, name)
}

func toMatches(scored []match.Scored) []Match {
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Score: s.Score}
	}
	return out
}

// kindWeights translates the public WalkBias into internal kind weights.
func kindWeights(b *WalkBias) map[graph.NodeKind]float64 {
	if b == nil {
		return nil
	}
	w := map[graph.NodeKind]float64{}
	set := func(v float64, kinds ...graph.NodeKind) {
		if v == 0 {
			return // unspecified: keep default weight 1
		}
		for _, k := range kinds {
			w[k] = v
		}
	}
	set(b.Attribute, graph.Attribute)
	set(b.Metadata, graph.Tuple, graph.Snippet, graph.Concept)
	set(b.External, graph.External)
	return w
}

// TopKBlocked is TopK restricted to candidates that share at least one
// processed token with the query document — the blocking speed-up the
// paper plans as future work (§VII). When no candidate shares a token the
// full ranking is returned.
func (m *Model) TopKBlocked(docID string, k int) ([]Match, error) {
	var idx *match.Index
	var side *corpus.Corpus
	var blocker **match.Blocker
	switch m.sideOf(docID) {
	case 1:
		idx, side, blocker = m.secondIdx, m.second.c, &m.secondBlk
	case 2:
		idx, side, blocker = m.firstIdx, m.first.c, &m.firstBlk
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	if *blocker == nil {
		texts := make([]string, side.Len())
		for i, id := range side.IDs() {
			d, _ := side.Doc(id)
			texts[i] = d.Text()
		}
		*blocker = match.NewBlocker(texts)
	}
	var queryText string
	if d, ok := m.first.c.Doc(docID); ok {
		queryText = d.Text()
	} else if d, ok := m.second.c.Doc(docID); ok {
		queryText = d.Text()
	}
	return toMatches(idx.TopKBlocked(*blocker, queryText, q, k)), nil
}
