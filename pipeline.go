package tdmatch

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"

	"github.com/tdmatch/tdmatch/internal/compress"
	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/expand"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/textproc"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// Stats reports what the pipeline did, for logging and experiments.
type Stats struct {
	// GraphNodes / GraphEdges are the sizes after graph creation.
	GraphNodes, GraphEdges int
	// ExpandedNodes / ExpandedEdges are the sizes after expansion
	// (equal to the above when no resource is configured).
	ExpandedNodes, ExpandedEdges int
	// CompressedNodes / CompressedEdges are the sizes after compression
	// (equal to the expanded sizes when compression is off).
	CompressedNodes, CompressedEdges int
	// FilteredTerms counts second-corpus terms dropped by filtering.
	FilteredTerms int
	// MergedTerms counts term→canonical mappings applied.
	MergedTerms int
	// Walks is the number of generated random walks.
	Walks int
	// TrainTime is the wall time of walks + embedding training.
	TrainTime time.Duration
	// IndexClusters is the partition count of each side's IVF index
	// (zero under IndexFlat).
	IndexClusters [2]int
	// BuildTime is the wall time of the whole Build call.
	BuildTime time.Duration
}

// extIndexCache memoizes the external-scorer index TopKCombined builds
// over one target side, keyed on the identity of the caller's vector map.
// src retains the keyed map so its address cannot be recycled for a new
// map while the cache entry is alive.
type extIndexCache struct {
	src map[string][]float32
	dim int
	idx *match.Index
}

// Model is a trained matcher over two corpora.
type Model struct {
	cfg    Config
	first  *Corpus
	second *Corpus

	g       *graph.Graph
	docNode map[string]graph.NodeID
	vectors map[string][]float32
	dim     int
	// firstFlat/secondFlat are the exact arena-backed indexes; they always
	// exist and back TopKCombined and TopKBlocked. firstIdx/secondIdx are
	// the serving indexes selected by Config.Index (the flat ones under
	// IndexFlat, IVF wrappers over them under IndexIVF).
	firstFlat  *match.Index
	secondFlat *match.Index
	firstIdx   match.VectorIndex
	secondIdx  match.VectorIndex
	blkMu      sync.Mutex
	firstBlk   *match.Blocker
	secondBlk  *match.Blocker
	extMu      sync.Mutex
	extCache   [2]extIndexCache
	stats      Stats
}

// Build runs the full pipeline over two corpora and returns a ready model.
// It is a fixed sequence of explicit stages — graph creation (§II),
// expansion (§III-A), compression (§III-B), embedding training (§IV-A)
// and index construction (§IV-B) — each of which fills its slice of Stats.
func Build(first, second *Corpus, cfg Config) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: Build requires two corpora")
	}
	m := &Model{cfg: cfg.withDefaults(), first: first, second: second}
	start := time.Now()
	if err := m.buildGraph(); err != nil {
		return nil, err
	}
	m.expandGraph()
	m.compressGraph()
	// The graph is structurally final: compact it into the CSR layout so
	// walk generation reads sequential memory (any later mutation thaws).
	m.g.Freeze()
	if err := m.trainEmbeddings(); err != nil {
		return nil, err
	}
	if err := m.buildIndexes(); err != nil {
		return nil, err
	}
	m.stats.BuildTime = time.Since(start)
	return m, nil
}

// buildGraph runs graph creation (§II): tokenize both corpora, filter and
// merge data nodes, and connect them to their metadata nodes.
func (m *Model) buildGraph() error {
	cfg := m.cfg
	bc := graph.BuildConfig{
		Pre: textproc.Preprocessor{
			RemoveStopwords: true,
			Stem:            true,
			MaxNGram:        cfg.MaxNGram,
		},
		ConnectMetadata:      true,
		DisableMetadataEdges: cfg.DisableMetadataEdges,
		Bucketing:            cfg.Bucketing,
		BucketWidth:          cfg.BucketWidth,
		TFIDFTopK:            cfg.TFIDFTopK,
	}
	switch cfg.Filter {
	case FilterNone:
		bc.Filter = graph.FilterNone
	case FilterTFIDF:
		bc.Filter = graph.FilterTFIDF
	default:
		bc.Filter = graph.FilterIntersect
	}
	if lex := buildLexicon(cfg.SynonymGroups); lex != nil {
		bc.Mergers = append(bc.Mergers, lex)
	}
	res, err := graph.Build(m.first.c, m.second.c, bc)
	if err != nil {
		return err
	}
	m.g = res.Graph
	m.docNode = res.DocNode
	m.stats.GraphNodes = m.g.NumNodes()
	m.stats.GraphEdges = m.g.NumEdges()
	m.stats.FilteredTerms = res.FilteredTerms
	m.stats.MergedTerms = res.Canon.Mappings()
	return nil
}

// expandGraph adds external-resource relations to the graph (§III-A); a
// no-op recording unchanged sizes when no resource is configured.
func (m *Model) expandGraph() {
	if m.cfg.Resource != nil {
		expand.Expand(m.g, resourceAdapter{m.cfg.Resource}, expand.Options{
			MaxRelationsPerNode: m.cfg.MaxRelationsPerNode,
		})
	}
	m.stats.ExpandedNodes = m.g.NumNodes()
	m.stats.ExpandedEdges = m.g.NumEdges()
}

// compressGraph applies the §III-B MSP compression when configured and
// rebuilds the doc-node map over the surviving metadata nodes.
func (m *Model) compressGraph() {
	if m.cfg.Compression == CompressMSP {
		m.g = compress.MSP(m.g, compress.Options{Ratio: m.cfg.CompressionRatio, Seed: m.cfg.Seed})
		// Metadata node IDs changed: rebuild the doc-node map by label.
		rebuilt := make(map[string]graph.NodeID, len(m.docNode))
		for docID := range m.docNode {
			if id, ok := m.g.MetaNode(docID); ok {
				rebuilt[docID] = id
			}
		}
		m.docNode = rebuilt
	}
	m.stats.CompressedNodes = m.g.NumNodes()
	m.stats.CompressedEdges = m.g.NumEdges()
}

// trainEmbeddings generates random walks, trains Word2Vec over them
// (§IV-A) and extracts the metadata-node vectors the indexes serve.
func (m *Model) trainEmbeddings() error {
	cfg := m.cfg
	trainStart := time.Now()
	wcfg := walk.Config{
		NumWalks:    cfg.NumWalks,
		Length:      cfg.WalkLength,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		KindWeights: kindWeights(cfg.WalkBias),
	}
	var seqs embed.Sequences
	if cfg.ReturnParam > 0 || cfg.InOutParam > 0 {
		p, q := cfg.ReturnParam, cfg.InOutParam
		if p <= 0 {
			p = 1
		}
		if q <= 0 {
			q = 1
		}
		walks := walk.GenerateSecondOrder(m.g, wcfg, walk.SecondOrder{P: p, Q: q})
		seqs = walk.PackWalks(walks)
	} else {
		seqs = walk.GeneratePacked(m.g, wcfg)
	}
	m.stats.Walks = seqs.Len()

	mode, window := m.objective()
	em, err := embed.TrainPacked(seqs, m.g.Cap(), embed.Config{
		Dim:       cfg.Dim,
		Window:    window,
		Negative:  cfg.Negative,
		Epochs:    cfg.Epochs,
		Mode:      mode,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Subsample: cfg.Subsample,
	})
	if err != nil {
		return err
	}
	m.dim = cfg.Dim
	// Gather the document rows out of the embedder's full training arena
	// (every graph node has a row there) into one doc-sized arena, so the
	// vocabulary-sized syn0 block becomes collectable; the map values are
	// views into the compact arena, which buildFlat and Save copy from.
	m.vectors = make(map[string][]float32, len(m.docNode))
	docArena := make([]float32, len(m.docNode)*m.dim)
	used := 0
	for docID, node := range m.docNode {
		v := em.Vector(int32(node))
		if v == nil {
			continue
		}
		row := docArena[used*m.dim : (used+1)*m.dim : (used+1)*m.dim]
		copy(row, v)
		m.vectors[docID] = row
		used++
	}
	m.stats.TrainTime = time.Since(trainStart)
	return nil
}

// buildIndexes constructs the per-side serving indexes (§IV-B): always
// the exact arena-backed flat indexes, plus IVF wrappers when Config
// selects approximate serving. Also used by LoadModel to rebuild serving
// state from persisted vectors.
func (m *Model) buildIndexes() error {
	var err error
	if m.firstFlat, err = m.buildFlat(m.first.c); err != nil {
		return err
	}
	if m.secondFlat, err = m.buildFlat(m.second.c); err != nil {
		return err
	}
	m.firstIdx = m.serveIndex(m.firstFlat, 0)
	m.secondIdx = m.serveIndex(m.secondFlat, 1)
	return nil
}

func (m *Model) buildFlat(c *corpus.Corpus) (*match.Index, error) {
	ids := c.IDs()
	// Gather this side's rows straight from the embedding arena views into
	// one serving arena and hand it to the index without re-copying (the
	// index normalizes the rows in place; documents without an embedding
	// stay zero rows, scoring 0 against everything).
	arena := make([]float32, len(ids)*m.dim)
	for i, id := range ids {
		copy(arena[i*m.dim:(i+1)*m.dim], m.vectors[id])
	}
	return match.NewIndexArena(ids, arena, m.dim)
}

// serveIndex wraps a flat index per Config.Index. side (0 or 1) offsets
// the clustering seed so the two sides don't share centroid draws, and
// addresses the Stats slot.
func (m *Model) serveIndex(flat *match.Index, side int) match.VectorIndex {
	switch m.cfg.Index {
	case IndexIVF:
		ivf := match.NewIVF(flat, match.IVFOptions{
			Clusters:    m.cfg.IVFClusters,
			NProbe:      m.cfg.IVFNProbe,
			ExactRecall: m.cfg.ExactRecall,
			Seed:        m.cfg.Seed + int64(side) + 1,
		})
		m.stats.IndexClusters[side] = ivf.Clusters()
		return ivf
	case IndexSQ8:
		return match.NewIndexSQ8(flat, m.cfg.SQ8Rerank)
	default:
		return flat
	}
}

// objective picks Skip-gram window 3 when a table is involved and CBOW
// window 15 for text-only tasks, as in §V — unless overridden.
func (m *Model) objective() (embed.Mode, int) {
	mode := embed.SkipGram
	window := m.cfg.Window
	if m.cfg.ChooseObjective {
		tableInvolved := m.first.c.Kind == corpus.Table || m.second.c.Kind == corpus.Table
		if !tableInvolved {
			mode = embed.CBOW
			if window <= 0 {
				window = 15
			}
		} else if window <= 0 {
			window = 3
		}
	} else {
		if m.cfg.CBOW {
			mode = embed.CBOW
		}
		if window <= 0 {
			window = 5
		}
	}
	return mode, window
}

// Stats returns pipeline statistics.
func (m *Model) Stats() Stats { return m.stats }

// Vector returns the learned embedding of a document's metadata node, nil
// when the document is unknown or was pruned.
func (m *Model) Vector(docID string) []float32 { return m.vectors[docID] }

// Vectors returns the embeddings of all metadata documents, keyed by ID.
// Callers must not mutate the returned slices.
func (m *Model) Vectors() map[string][]float32 { return m.vectors }

// docOf resolves a document ID to its side (1 or 2) and document; side 0
// and ok false for unknown IDs.
func (m *Model) docOf(docID string) (int, corpus.Document, bool) {
	if d, ok := m.first.c.Doc(docID); ok {
		return 1, d, true
	}
	if d, ok := m.second.c.Doc(docID); ok {
		return 2, d, true
	}
	return 0, corpus.Document{}, false
}

// sideOf reports which corpus a document belongs to: 1, 2, or 0 (unknown).
func (m *Model) sideOf(docID string) int {
	side, _, _ := m.docOf(docID)
	return side
}

// TopK returns the k documents of the *other* corpus most similar to the
// given document (§IV-B), served by the configured index. The query may
// come from either corpus.
func (m *Model) TopK(docID string, k int) ([]Match, error) {
	var idx match.VectorIndex
	switch m.sideOf(docID) {
	case 1:
		idx = m.secondIdx
	case 2:
		idx = m.firstIdx
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", docID)
	}
	return toMatches(idx.TopK(q, k)), nil
}

// extIndex returns the cached external-scorer index over the given target
// side, rebuilding it only when the caller passes a different vector map
// (identity, not content: mutating a cached map between calls is not
// supported) or dimension. side is 1 for the first corpus, 2 for the
// second.
func (m *Model) extIndex(side int, c *corpus.Corpus, extVectors map[string][]float32, extDim int) (*match.Index, error) {
	m.extMu.Lock()
	defer m.extMu.Unlock()
	cached := &m.extCache[side-1]
	if cached.idx != nil && cached.dim == extDim &&
		reflect.ValueOf(cached.src).Pointer() == reflect.ValueOf(extVectors).Pointer() {
		return cached.idx, nil
	}
	ids := c.IDs()
	extVecs := make([][]float32, len(ids))
	for i, id := range ids {
		extVecs[i] = extVectors[id]
	}
	idx, err := match.NewIndex(ids, extVecs, extDim)
	if err != nil {
		return nil, err
	}
	*cached = extIndexCache{src: extVectors, dim: extDim, idx: idx}
	return idx, nil
}

// TopKCombined averages the model's cosine scores with an external scorer's
// vectors (e.g. a pre-trained sentence embedder), reproducing the Fig. 10
// combination. extVectors must map document IDs of both corpora to vectors
// of consistent dimension extDim; weight balances model vs external (0.5 =
// plain average). The external index is cached per side on the identity of
// extVectors, so repeated calls with the same map pay the build once.
func (m *Model) TopKCombined(docID string, k int, extVectors map[string][]float32, extDim int, weight float64) ([]Match, error) {
	var side *corpus.Corpus
	var sideNo int
	var idx *match.Index
	switch m.sideOf(docID) {
	case 1:
		side, sideNo, idx = m.second.c, 2, m.secondFlat
	case 2:
		side, sideNo, idx = m.first.c, 1, m.firstFlat
	default:
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	extQ := extVectors[docID]
	if extQ == nil {
		return toMatches(idx.TopK(q, k)), nil
	}
	extIdx, err := m.extIndex(sideNo, side, extVectors, extDim)
	if err != nil {
		return nil, err
	}
	scored, err := idx.TopKCombined(extIdx, q, extQ, 1-weight, weight, k)
	if err != nil {
		return nil, err
	}
	return toMatches(scored), nil
}

// MatchAll ranks, for every document of the query corpus, the top-k
// documents of the other corpus, fanning the queries out over
// Config.Workers goroutines. fromSecond selects the query side (the paper
// defaults to the larger corpus; pick the side natural for the
// application, e.g. claims in fact checking).
func (m *Model) MatchAll(fromSecond bool, k int) map[string][]Match {
	return m.MatchAllWorkers(fromSecond, k, m.cfg.Workers)
}

// matchBatch is the number of queries one worker hands to a blocked
// TopKBatch kernel pass: large enough to amortize each arena tile read
// over the whole batch, small enough that the per-batch query block
// (matchBatch x Dim float32s) stays cache-resident next to the tile.
const matchBatch = 32

// batchChunk sizes one kernel chunk for n queries over the given worker
// count: matchBatch by default, but never so large that idle workers
// watch one chunk run — a burst smaller than workers*matchBatch (the
// common micro-batch shape) still splits across every worker.
func batchChunk(n, workers int) int {
	size := matchBatch
	if workers > 1 {
		if per := (n + workers - 1) / workers; per < size {
			size = per
		}
	}
	if size < 1 {
		size = 1
	}
	return size
}

// MatchAllWorkers is MatchAll with an explicit worker count; 1 reproduces
// the serial scan. Queries are batched matchBatch at a time into the
// serving index's blocked multi-query kernel — one arena read amortized
// across each batch — and the batches are fanned out over the workers.
// Batching and worker count never change results: every path selects
// with the same kernel and tie rule.
func (m *Model) MatchAllWorkers(fromSecond bool, k, workers int) map[string][]Match {
	c, idx := m.first.c, m.secondIdx
	if fromSecond {
		c, idx = m.second.c, m.firstIdx
	}
	ids := c.IDs()
	results := make([][]Match, len(ids))
	size := batchChunk(len(ids), workers)
	batches := (len(ids) + size - 1) / size
	runPool(batches, workers, func(bi int) {
		lo := bi * size
		hi := lo + size
		if hi > len(ids) {
			hi = len(ids)
		}
		queries := make([][]float32, 0, hi-lo)
		slots := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if q := m.vectors[ids[i]]; q != nil {
				queries = append(queries, q)
				slots = append(slots, i)
			}
		}
		for j, ranked := range idx.TopKBatch(queries, k) {
			results[slots[j]] = toMatches(ranked)
		}
	})
	out := make(map[string][]Match, len(ids))
	for i, id := range ids {
		if results[i] != nil {
			out[id] = results[i]
		}
	}
	return out
}

// TopKBatch answers many queries in one call, batching them through the
// serving indexes' blocked multi-query kernels with Config.Workers
// parallelism. Results are position-aligned with docIDs; unknown
// documents and documents without an embedding fail per query without
// affecting the rest.
func (m *Model) TopKBatch(docIDs []string, k int) []BatchResult {
	return m.TopKBatchWorkers(docIDs, k, m.cfg.Workers)
}

// TopKBatchWorkers is TopKBatch with an explicit worker count. Queries
// are grouped by which side's index serves them, chunked matchBatch at
// a time into the blocked kernel, and the chunks fanned out over the
// workers — the serving counterpart of MatchAllWorkers for ad-hoc query
// sets (Server.TopKBatch and the micro-batch executor feed it).
func (m *Model) TopKBatchWorkers(docIDs []string, k, workers int) []BatchResult {
	out := make([]BatchResult, len(docIDs))
	var side1, side2 []int
	for i, id := range docIDs {
		out[i].ID = id
		switch m.sideOf(id) {
		case 1:
			side1 = append(side1, i)
		case 2:
			side2 = append(side2, i)
		default:
			out[i].Err = fmt.Errorf("tdmatch: unknown document %q", id)
		}
	}
	type chunk struct {
		idx   match.VectorIndex
		slots []int
	}
	var chunks []chunk
	addChunks := func(idx match.VectorIndex, slots []int) {
		size := batchChunk(len(slots), workers)
		for lo := 0; lo < len(slots); lo += size {
			hi := lo + size
			if hi > len(slots) {
				hi = len(slots)
			}
			chunks = append(chunks, chunk{idx: idx, slots: slots[lo:hi]})
		}
	}
	addChunks(m.secondIdx, side1) // side-1 queries rank side-2 targets
	addChunks(m.firstIdx, side2)
	runPool(len(chunks), workers, func(ci int) {
		ch := chunks[ci]
		queries := make([][]float32, 0, len(ch.slots))
		live := make([]int, 0, len(ch.slots))
		for _, slot := range ch.slots {
			q := m.vectors[out[slot].ID]
			if q == nil {
				out[slot].Err = fmt.Errorf("tdmatch: document %q has no embedding (pruned or isolated)", out[slot].ID)
				continue
			}
			queries = append(queries, q)
			live = append(live, slot)
		}
		for j, ranked := range ch.idx.TopKBatch(queries, k) {
			out[live[j]].Matches = toMatches(ranked)
		}
	})
	return out
}

// runPool fans run(i) for i in [0, n) out over up to workers goroutines,
// blocking until every call returns; workers <= 1 (or n < 2) runs
// serially on the calling goroutine. The shared worker-pool scaffolding
// of MatchAllWorkers, Model.TopKBatchWorkers and the micro-batch
// executor. The work channel is buffered so the producer streams items
// without a scheduler round-trip per handoff — measurable when the
// per-item work is one small kernel call.
func runPool(n, workers int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	buf := n
	if buf > 4096 {
		buf = 4096
	}
	var wg sync.WaitGroup
	next := make(chan int, buf)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// GraphSize returns the live node and edge counts of the trained graph.
// Models restored with LoadModel carry no graph and report zeros.
func (m *Model) GraphSize() (nodes, edges int) {
	if m.g == nil {
		return 0, 0
	}
	return m.g.NumNodes(), m.g.NumEdges()
}

// WriteGraphDOT renders the trained graph in Graphviz DOT format for
// inspection. It fails for models restored with LoadModel, which do not
// retain the graph.
func (m *Model) WriteGraphDOT(w io.Writer, name string) error {
	if m.g == nil {
		return fmt.Errorf("tdmatch: model has no graph (restored from a save?)")
	}
	return m.g.WriteDOT(w, name)
}

func toMatches(scored []match.Scored) []Match {
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Score: s.Score}
	}
	return out
}

// kindWeights translates the public WalkBias into internal kind weights.
func kindWeights(b *WalkBias) map[graph.NodeKind]float64 {
	if b == nil {
		return nil
	}
	w := map[graph.NodeKind]float64{}
	set := func(v float64, kinds ...graph.NodeKind) {
		if v == 0 {
			return // unspecified: keep default weight 1
		}
		for _, k := range kinds {
			w[k] = v
		}
	}
	set(b.Attribute, graph.Attribute)
	set(b.Metadata, graph.Tuple, graph.Snippet, graph.Concept)
	set(b.External, graph.External)
	return w
}

// TopKBlocked is TopK restricted to candidates that share at least one
// processed token with the query document — the blocking speed-up the
// paper plans as future work (§VII). When no candidate shares a token the
// full ranking is returned.
func (m *Model) TopKBlocked(docID string, k int) ([]Match, error) {
	side, doc, ok := m.docOf(docID)
	if !ok {
		return nil, fmt.Errorf("tdmatch: unknown document %q", docID)
	}
	var idx *match.Index
	var targets *corpus.Corpus
	var blocker **match.Blocker
	if side == 1 {
		idx, targets, blocker = m.secondFlat, m.second.c, &m.secondBlk
	} else {
		idx, targets, blocker = m.firstFlat, m.first.c, &m.firstBlk
	}
	q := m.vectors[docID]
	if q == nil {
		return nil, fmt.Errorf("tdmatch: document %q has no embedding", docID)
	}
	m.blkMu.Lock()
	if *blocker == nil {
		texts := make([]string, targets.Len())
		for i, id := range targets.IDs() {
			d, _ := targets.Doc(id)
			texts[i] = d.Text()
		}
		*blocker = match.NewBlocker(texts)
	}
	blk := *blocker
	m.blkMu.Unlock()
	return toMatches(idx.TopKBlocked(blk, doc.Text(), q, k)), nil
}
