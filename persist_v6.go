package tdmatch

// Snapshot format v6: a flat, little-endian, 64-byte-aligned layout
// whose big payloads — the raw document-vector arena, the term-vector
// arena, and one normalized arena (plus SQ8 codes/scales) per sealed
// serving segment — are stored as raw contiguous sections described by
// a fixed header and a section table, so loading can mmap the file and
// bind the serving indexes directly onto the mapping with zero decode
// and zero copy. The gob formats (v1–v5) remain readable through the
// existing path; ReadSnapshot auto-detects by magic.
//
// Layout (all integers little-endian):
//
//	[ 0,  8) magic "TDMSNAP6"
//	[ 8, 12) u32 format version (6)
//	[12, 16) u32 header size (64)
//	[16, 20) u32 section count
//	[20, 24) u32 flags (reserved, 0)
//	[24, 32) u64 file size
//	[32, 40) u64 FNV-1a of the section table bytes
//	[40, 48) u64 FNV-1a of header bytes [0, 40)
//	[48, 64) reserved (zero)
//
// followed by section-count 32-byte table entries
//
//	u32 type | u32 index | u64 offset | u64 length | u64 FNV-1a of payload
//
// and the payloads, each starting at a 64-byte-aligned offset with
// zero padding between them. Segment sections address (side, ordinal)
// through the index field as side<<16|ordinal, with the mutable delta
// as the last ordinal (manifest only — its rows are regathered from
// the raw arena at bind, exactly like the gob path). The graph is not
// persisted, matching every earlier version: a loaded model matches
// and ingests but does not retrain.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"unsafe"

	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/mmapfile"
)

// v6Magic is the first eight bytes of every v6 snapshot file.
const v6Magic = "TDMSNAP6"

const (
	savedModelVersionV6 = 6
	v6HeaderSize        = 64
	v6EntrySize         = 32
	v6Align             = 64
)

// Section types of the v6 layout.
const (
	secMetaJSON    uint32 = 1 // model metadata + delta chain (JSON)
	secDocIDs      uint32 = 2 // sorted document IDs (string table)
	secDocArena    uint32 = 3 // raw (unnormalized) float32 rows, DocIDs order
	secTermIDs     uint32 = 4 // sorted term IDs (string table)
	secTermArena   uint32 = 5 // term float32 rows, TermIDs order
	secSegManifest uint32 = 6 // one segment's live IDs (string table)
	secSegArena    uint32 = 7 // sealed segment's normalized float32 rows
	secSegCodes    uint32 = 8 // sealed segment's SQ8 int8 codes
	secSegScales   uint32 = 9 // sealed segment's SQ8 float32 scales

	// HNSW graph sections of one sealed segment (IndexHNSW models): the
	// per-row level assignments and the flattened CSR adjacency
	// (cumulative offsets + concatenated neighbor arena), all int32
	// little-endian, bound read-only via match.NewHNSWParts with
	// copy-on-write promotion on the first graph mutation.
	secSegHNSWLevels uint32 = 10
	secSegHNSWOffs   uint32 = 11
	secSegHNSWAdj    uint32 = 12
)

// VerifyMode selects how much of a v6 snapshot OpenSnapshotFileVerify
// checks before binding.
type VerifyMode int

const (
	// VerifyEager checks every section's FNV-1a checksum and the
	// cross-section invariants at open — one sequential pass over the
	// file, the default and what the durability tests exercise.
	VerifyEager VerifyMode = iota
	// VerifyLazy validates only the header, section table and structural
	// bounds; payload checksums are skipped. This is the microsecond
	// cold-start path for files trusted by construction (e.g. a
	// checkpoint the same daemon just wrote); a torn payload surfaces as
	// wrong scores, not a failed open.
	VerifyLazy
)

// v6Meta is the JSON-encoded metadata section: everything the gob
// savedModel carries outside the big arrays.
type v6Meta struct {
	Dim             int
	FirstName       string
	SecondName      string
	Index           uint8
	IVFClusters     int
	IVFNProbe       int
	ExactRecall     bool
	SQ8Rerank       int
	HNSWM           int `json:",omitempty"`
	HNSWEf          int `json:",omitempty"`
	HNSWEfConstruct int `json:",omitempty"`
	Seed            int64
	MaxNGram        int
	Staleness       int
	Deltas          []savedDelta
	FirstSegs       int
	SecondSegs      int
}

// v6Segment is one serving segment parsed from a v6 snapshot: sealed
// segments carry their normalized arena (a view into the mapping) and,
// under IndexSQ8, the quantized codes and scales; the final (delta)
// entry carries IDs only.
type v6Segment struct {
	ids    []string
	arena  []float32
	codes  []int8
	scales []float32
	// HNSW graph sections (IndexHNSW models): per-row levels plus the
	// CSR adjacency, views into the mapping bound via NewHNSWParts.
	levels []int32
	offs   []int32
	adj    []int32
}

// v6State is the parsed zero-copy payload a Snapshot carries for Bind.
type v6State struct {
	first  []v6Segment
	second []v6Segment
}

// fnv1a digests b with 64-bit FNV-1a, the checksum of the v6 header,
// section table and payloads.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func v6AlignUp(n int64) int64 {
	return (n + v6Align - 1) &^ (v6Align - 1)
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian; on such hosts (amd64, arm64, ...) v6 payloads cast to
// typed views in place, otherwise they are decoded element-wise.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// encodeStringTable serializes ids as: u32 count, u32 cumulative byte
// offsets [count+1] (first 0, last = total bytes), then the
// concatenated string bytes.
func encodeStringTable(ids []string) []byte {
	total := 0
	for _, s := range ids {
		total += len(s)
	}
	buf := make([]byte, 4+4*(len(ids)+1)+total)
	binary.LittleEndian.PutUint32(buf, uint32(len(ids)))
	off := uint32(0)
	for i, s := range ids {
		binary.LittleEndian.PutUint32(buf[4+4*i:], off)
		copy(buf[4+4*(len(ids)+1)+int(off):], s)
		off += uint32(len(s))
	}
	binary.LittleEndian.PutUint32(buf[4+4*len(ids):], off)
	return buf
}

// decodeStringTable parses an encodeStringTable payload, validating
// every offset before use so corrupt tables fail cleanly rather than
// panicking. The returned strings alias b zero-copy; the caller keeps
// the backing memory alive (the snapshot pins its mapping).
func decodeStringTable(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("tdmatch: string table of %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || n > (len(b)-8)/4 {
		return nil, fmt.Errorf("tdmatch: string table count %d exceeds section size %d", n, len(b))
	}
	strBytes := b[4+4*(n+1):]
	prev := uint32(0)
	ids := make([]string, n)
	for i := 0; i <= n; i++ {
		off := binary.LittleEndian.Uint32(b[4+4*i:])
		if off < prev || off > uint32(len(strBytes)) {
			return nil, fmt.Errorf("tdmatch: string table offset %d out of order or bounds", off)
		}
		if i > 0 {
			l := off - prev
			if l == 0 {
				ids[i-1] = ""
			} else {
				ids[i-1] = unsafe.String(&strBytes[prev], int(l))
			}
		}
		prev = off
	}
	if prev != uint32(len(strBytes)) {
		return nil, fmt.Errorf("tdmatch: string table covers %d of %d bytes", prev, len(strBytes))
	}
	return ids, nil
}

// f32Bytes serializes a float32 slice little-endian.
func f32Bytes(v []float32) []byte {
	buf := make([]byte, len(v)*4)
	for i, f := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
	}
	return buf
}

// i8Bytes reinterprets int8 codes as raw bytes (endianness-free).
func i8Bytes(v []int8) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// castF32 views a little-endian payload as []float32 without copying
// (on little-endian hosts with aligned backing; the mmap/aligned-heap
// loaders guarantee 4-byte alignment of 64-byte-aligned sections).
func castF32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("tdmatch: float section of %d bytes", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// i32Bytes serializes an int32 slice little-endian.
func i32Bytes(v []int32) []byte {
	buf := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(x))
	}
	return buf
}

// castI32 views a little-endian payload as []int32 without copying (on
// little-endian hosts with aligned backing, same contract as castF32).
func castI32(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("tdmatch: int32 section of %d bytes", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// castI8 views a payload as []int8 in place (single-byte elements, no
// endianness concern).
func castI8(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// v6SectionData is one section being assembled by the writer.
type v6SectionData struct {
	typ, idx uint32
	payload  []byte
	offset   int64
}

// segmentManifestFor captures a side's segment layout for the writer:
// the live IDs of every segment in stack order with the mutable delta
// last, or the whole corpus as a single base segment when the side
// serves unsegmented.
func (m *Model) segmentManifestFor(idx match.VectorIndex, c interface{ IDs() []string }) [][]string {
	if seg, ok := idx.(*match.Segmented); ok {
		return seg.SegmentManifest()
	}
	return [][]string{c.IDs(), nil}
}

// SaveV6 writes the model in snapshot format v6 (see the package
// layout comment). The same gather paths as Save feed it: the raw
// document arena keeps reloads bit-identical for query vectors, and
// each sealed segment's rows are normalized (and, under IndexSQ8,
// quantized) exactly as the gob Bind path would rebuild them, so a v6
// load binds those sections as borrowed arenas with no per-row work.
func (m *Model) SaveV6(w io.Writer) error {
	ids := make([]string, 0, len(m.vectors))
	for id := range m.vectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	raw := make([]float32, len(ids)*m.dim)
	for i, id := range ids {
		copy(raw[i*m.dim:(i+1)*m.dim], m.vectors[id])
	}
	termIDs, termArena := m.termVectors()

	firstMan := m.segmentManifestFor(m.firstIdx, m.first.c)
	secondMan := m.segmentManifestFor(m.secondIdx, m.second.c)
	meta := v6Meta{
		Dim:             m.dim,
		FirstName:       m.first.Name(),
		SecondName:      m.second.Name(),
		Index:           uint8(m.cfg.Index),
		IVFClusters:     m.cfg.IVFClusters,
		IVFNProbe:       m.cfg.IVFNProbe,
		ExactRecall:     m.cfg.ExactRecall,
		SQ8Rerank:       m.cfg.SQ8Rerank,
		HNSWM:           m.cfg.HNSWM,
		HNSWEf:          m.cfg.HNSWEf,
		HNSWEfConstruct: m.cfg.HNSWEfConstruct,
		Seed:            m.cfg.Seed,
		MaxNGram:        m.cfg.MaxNGram,
		Staleness:       m.Staleness(),
		Deltas:          m.deltas,
		FirstSegs:       len(firstMan),
		SecondSegs:      len(secondMan),
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}

	var secs []v6SectionData
	add := func(typ, idx uint32, payload []byte) {
		secs = append(secs, v6SectionData{typ: typ, idx: idx, payload: payload})
	}
	add(secMetaJSON, 0, metaJSON)
	add(secDocIDs, 0, encodeStringTable(ids))
	add(secDocArena, 0, f32Bytes(raw))
	if len(termIDs) > 0 {
		add(secTermIDs, 0, encodeStringTable(termIDs))
		add(secTermArena, 0, f32Bytes(termArena))
	}
	for side, man := range [][][]string{firstMan, secondMan} {
		for ord, segIDs := range man {
			key := uint32(side)<<16 | uint32(ord)
			add(secSegManifest, key, encodeStringTable(segIDs))
			if ord == len(man)-1 || len(segIDs) == 0 {
				continue // delta entry, or an all-tombstoned segment: IDs only
			}
			flat, err := m.buildFlatIDs(segIDs)
			if err != nil {
				return err
			}
			add(secSegArena, key, f32Bytes(flat.Arena()))
			switch IndexKind(meta.Index) {
			case IndexSQ8:
				q := match.NewIndexSQ8(flat, m.cfg.SQ8Rerank)
				add(secSegCodes, key, i8Bytes(q.Codes()))
				add(secSegScales, key, f32Bytes(q.Scales()))
			case IndexHNSW:
				// Rebuild the graph from the gathered rows with the same
				// seed scheme the binder uses: construction is deterministic,
				// so a load-and-resave cycle reproduces these sections byte
				// for byte.
				h := match.NewHNSW(flat, m.hnswOptions(side, ord))
				offs, adj := h.FlattenLinks()
				add(secSegHNSWLevels, key, i32Bytes(h.Levels()))
				add(secSegHNSWOffs, key, i32Bytes(offs))
				add(secSegHNSWAdj, key, i32Bytes(adj))
			}
		}
	}

	// Lay the sections out 64-byte aligned after the header and table.
	off := v6AlignUp(int64(v6HeaderSize + len(secs)*v6EntrySize))
	table := make([]byte, len(secs)*v6EntrySize)
	for i := range secs {
		secs[i].offset = off
		e := table[i*v6EntrySize:]
		binary.LittleEndian.PutUint32(e, secs[i].typ)
		binary.LittleEndian.PutUint32(e[4:], secs[i].idx)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(secs[i].payload)))
		binary.LittleEndian.PutUint64(e[24:], fnv1a(secs[i].payload))
		off = v6AlignUp(off + int64(len(secs[i].payload)))
	}
	fileSize := off

	header := make([]byte, v6HeaderSize)
	copy(header, v6Magic)
	binary.LittleEndian.PutUint32(header[8:], savedModelVersionV6)
	binary.LittleEndian.PutUint32(header[12:], v6HeaderSize)
	binary.LittleEndian.PutUint32(header[16:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(header[20:], 0)
	binary.LittleEndian.PutUint64(header[24:], uint64(fileSize))
	binary.LittleEndian.PutUint64(header[32:], fnv1a(table))
	binary.LittleEndian.PutUint64(header[40:], fnv1a(header[:40]))

	bw := bufio.NewWriterSize(w, 1<<20)
	pos := int64(0)
	emit := func(b []byte) error {
		n, err := bw.Write(b)
		pos += int64(n)
		return err
	}
	pad := func(to int64) error {
		for pos < to {
			chunk := to - pos
			if chunk > int64(len(v6Padding)) {
				chunk = int64(len(v6Padding))
			}
			if err := emit(v6Padding[:chunk]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(header); err != nil {
		return err
	}
	if err := emit(table); err != nil {
		return err
	}
	for _, s := range secs {
		if err := pad(s.offset); err != nil {
			return err
		}
		if err := emit(s.payload); err != nil {
			return err
		}
	}
	if err := pad(fileSize); err != nil {
		return err
	}
	return bw.Flush()
}

// v6Padding is the zero source for inter-section alignment padding.
var v6Padding [v6Align]byte

// SaveFileV6 writes the model to a file in format v6 with the same
// atomic tmp+fsync+rename+dirsync protocol as SaveFile.
func (m *Model) SaveFileV6(path string) error {
	return saveFileAtomic(path, m.SaveV6)
}

// v6SecKey addresses one parsed section by (type, index).
type v6SecKey struct{ typ, idx uint32 }

// parseV6 validates a v6 payload and assembles the zero-copy Snapshot.
// Structural validation (header and table checksums, bounds, string
// tables, arena lengths) always runs, so a corrupt file can never
// panic the binder; VerifyEager additionally checks every payload
// checksum and the cross-segment ID uniqueness the gob path enforces.
// backing, when non-nil, is the mapping data aliases; the Snapshot
// pins it and hands it to the bound Model.
func parseV6(data []byte, mode VerifyMode, backing *mmapfile.Mapping) (*Snapshot, error) {
	fail := func(format string, args ...interface{}) (*Snapshot, error) {
		return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: "+format, args...)
	}
	if len(data) < v6HeaderSize {
		return fail("%d bytes, need at least the %d-byte header", len(data), v6HeaderSize)
	}
	if string(data[:8]) != v6Magic {
		return fail("bad magic")
	}
	if got := binary.LittleEndian.Uint64(data[40:48]); got != fnv1a(data[:40]) {
		return fail("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != savedModelVersionV6 {
		return nil, fmt.Errorf("tdmatch: unsupported model version %d", v)
	}
	if hs := binary.LittleEndian.Uint32(data[12:16]); hs != v6HeaderSize {
		return fail("header size %d", hs)
	}
	fileSize := binary.LittleEndian.Uint64(data[24:32])
	if fileSize != uint64(len(data)) {
		return fail("file size %d, have %d bytes (truncated or padded)", fileSize, len(data))
	}
	nSecs := int(binary.LittleEndian.Uint32(data[16:20]))
	tableEnd := int64(v6HeaderSize) + int64(nSecs)*v6EntrySize
	if nSecs < 1 || tableEnd > int64(len(data)) {
		return fail("section count %d exceeds file size", nSecs)
	}
	table := data[v6HeaderSize:tableEnd]
	if got := binary.LittleEndian.Uint64(data[32:40]); got != fnv1a(table) {
		return fail("section table checksum mismatch")
	}

	sections := make(map[v6SecKey][]byte, nSecs)
	checksums := make(map[v6SecKey]uint64, nSecs)
	for i := 0; i < nSecs; i++ {
		e := table[i*v6EntrySize:]
		typ := binary.LittleEndian.Uint32(e)
		idx := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		sum := binary.LittleEndian.Uint64(e[24:])
		if off%v6Align != 0 || off < uint64(tableEnd) || off > uint64(len(data)) ||
			length > uint64(len(data))-off {
			return fail("section %d (type %d) offset %d length %d out of bounds", i, typ, off, length)
		}
		key := v6SecKey{typ, idx}
		if _, dup := sections[key]; dup {
			return fail("duplicate section type %d index %d", typ, idx)
		}
		sections[key] = data[off : off+length : off+length]
		checksums[key] = sum
	}
	if mode == VerifyEager {
		for key, payload := range sections {
			if fnv1a(payload) != checksums[key] {
				return fail("section type %d index %d checksum mismatch", key.typ, key.idx)
			}
		}
	}

	metaJSON, ok := sections[v6SecKey{secMetaJSON, 0}]
	if !ok {
		return fail("missing metadata section")
	}
	var meta v6Meta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return fail("metadata: %v", err)
	}
	if meta.Dim <= 0 {
		return fail("dimension %d", meta.Dim)
	}
	const maxSegs = 1 << 20
	if meta.FirstSegs < 0 || meta.FirstSegs > maxSegs || meta.SecondSegs < 0 || meta.SecondSegs > maxSegs {
		return fail("segment counts %d/%d", meta.FirstSegs, meta.SecondSegs)
	}

	docIDsSec, ok := sections[v6SecKey{secDocIDs, 0}]
	if !ok {
		return fail("missing document ID section")
	}
	docIDs, err := decodeStringTable(docIDsSec)
	if err != nil {
		return nil, err
	}
	arenaSec, ok := sections[v6SecKey{secDocArena, 0}]
	if !ok {
		return fail("missing document arena section")
	}
	docArena, err := castF32(arenaSec)
	if err != nil {
		return nil, err
	}
	if len(docArena) != len(docIDs)*meta.Dim {
		return fail("arena holds %d floats for %d vectors of dim %d", len(docArena), len(docIDs), meta.Dim)
	}

	var termIDs []string
	var termArena []float32
	if sec, ok := sections[v6SecKey{secTermIDs, 0}]; ok {
		if termIDs, err = decodeStringTable(sec); err != nil {
			return nil, err
		}
		taSec, ok := sections[v6SecKey{secTermArena, 0}]
		if !ok {
			return fail("term IDs without a term arena")
		}
		if termArena, err = castF32(taSec); err != nil {
			return nil, err
		}
		if len(termArena) != len(termIDs)*meta.Dim {
			return fail("term arena holds %d floats for %d terms of dim %d", len(termArena), len(termIDs), meta.Dim)
		}
	}

	parseSide := func(side, count int) ([]v6Segment, error) {
		segs := make([]v6Segment, count)
		for ord := 0; ord < count; ord++ {
			key := uint32(side)<<16 | uint32(ord)
			man, ok := sections[v6SecKey{secSegManifest, key}]
			if !ok {
				return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: missing side-%d segment %d manifest", side+1, ord)
			}
			ids, err := decodeStringTable(man)
			if err != nil {
				return nil, err
			}
			segs[ord].ids = ids
			if ord == count-1 || len(ids) == 0 {
				continue // the mutable delta, or an all-tombstoned segment
			}
			ar, ok := sections[v6SecKey{secSegArena, key}]
			if !ok {
				return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: missing side-%d segment %d arena", side+1, ord)
			}
			if segs[ord].arena, err = castF32(ar); err != nil {
				return nil, err
			}
			if len(segs[ord].arena) != len(ids)*meta.Dim {
				return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: side-%d segment %d arena holds %d floats for %d rows",
					side+1, ord, len(segs[ord].arena), len(ids))
			}
			codes, haveCodes := sections[v6SecKey{secSegCodes, key}]
			scales, haveScales := sections[v6SecKey{secSegScales, key}]
			if haveCodes != haveScales {
				return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: side-%d segment %d has codes without scales", side+1, ord)
			}
			if haveCodes {
				segs[ord].codes = castI8(codes)
				if segs[ord].scales, err = castF32(scales); err != nil {
					return nil, err
				}
				if len(segs[ord].codes) != len(ids)*meta.Dim || len(segs[ord].scales) != len(ids) {
					return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: side-%d segment %d quantized sections sized %d/%d for %d rows",
						side+1, ord, len(segs[ord].codes), len(segs[ord].scales), len(ids))
				}
			}
			levels, haveLevels := sections[v6SecKey{secSegHNSWLevels, key}]
			offs, haveOffs := sections[v6SecKey{secSegHNSWOffs, key}]
			adj, haveAdj := sections[v6SecKey{secSegHNSWAdj, key}]
			if haveLevels != haveOffs || haveLevels != haveAdj {
				return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: side-%d segment %d has a partial HNSW graph", side+1, ord)
			}
			if haveLevels {
				if segs[ord].levels, err = castI32(levels); err != nil {
					return nil, err
				}
				if segs[ord].offs, err = castI32(offs); err != nil {
					return nil, err
				}
				if segs[ord].adj, err = castI32(adj); err != nil {
					return nil, err
				}
				if len(segs[ord].levels) != len(ids) {
					return nil, fmt.Errorf("tdmatch: corrupt v6 snapshot: side-%d segment %d carries %d HNSW levels for %d rows",
						side+1, ord, len(segs[ord].levels), len(ids))
				}
			}
		}
		return segs, nil
	}
	first, err := parseSide(0, meta.FirstSegs)
	if err != nil {
		return nil, err
	}
	second, err := parseSide(1, meta.SecondSegs)
	if err != nil {
		return nil, err
	}
	if mode == VerifyEager {
		for side, segs := range [][]v6Segment{first, second} {
			seen := make(map[string]struct{})
			for _, seg := range segs {
				for _, id := range seg.ids {
					if _, dup := seen[id]; dup {
						return fail("document %q appears in two side-%d segments", id, side+1)
					}
					seen[id] = struct{}{}
				}
			}
		}
	}

	loadMode := "v6+heap"
	if backing != nil && backing.Mapped() {
		loadMode = "v6+mmap"
	}
	return &Snapshot{
		sm: savedModel{
			Version:         savedModelVersionV6,
			Dim:             meta.Dim,
			FirstName:       meta.FirstName,
			SecondName:      meta.SecondName,
			VectorIDs:       docIDs,
			Arena:           docArena,
			Index:           meta.Index,
			IVFClusters:     meta.IVFClusters,
			IVFNProbe:       meta.IVFNProbe,
			ExactRecall:     meta.ExactRecall,
			SQ8Rerank:       meta.SQ8Rerank,
			HNSWM:           meta.HNSWM,
			HNSWEf:          meta.HNSWEf,
			HNSWEfConstruct: meta.HNSWEfConstruct,
			Seed:            meta.Seed,
			Deltas:          meta.Deltas,
			TermIDs:         termIDs,
			TermArena:       termArena,
			MaxNGram:        meta.MaxNGram,
			Staleness:       meta.Staleness,
		},
		v6:      &v6State{first: first, second: second},
		backing: backing,
		mode:    loadMode,
	}, nil
}

// OpenSnapshotFile opens a snapshot file of any supported version with
// eager verification: a v6 file is memory-mapped (PROT_READ, shared
// page cache across processes) and every section checksum is checked;
// gob files (v1–v5) decode through the classic path. The returned
// Snapshot pins the mapping; it is released only when the process
// exits (models bound from it alias the pages for their lifetime).
func OpenSnapshotFile(path string) (*Snapshot, error) {
	return OpenSnapshotFileVerify(path, VerifyEager)
}

// OpenSnapshotFileVerify is OpenSnapshotFile with an explicit
// VerifyMode: VerifyLazy skips the per-section payload checksums for
// the lowest possible cold start on files trusted by construction.
func OpenSnapshotFileVerify(path string, mode VerifyMode) (*Snapshot, error) {
	mf, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	data := mf.Data()
	if len(data) >= len(v6Magic) && string(data[:len(v6Magic)]) == v6Magic {
		snap, err := parseV6(data, mode, mf)
		if err != nil {
			mf.Close()
			return nil, err
		}
		return snap, nil
	}
	// A gob snapshot: decode copies everything onto the heap, so the
	// mapping can be dropped immediately.
	snap, err := readGobSnapshot(bytes.NewReader(data))
	mf.Close()
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// bindSegmentedV6 reconstructs both serving stacks from a v6 payload:
// sealed segments bind as borrowed (read-only, possibly mapped) arenas
// with no per-row work, the mutable delta is regathered onto the heap
// exactly like the gob path, and the stack's lookup maps are the only
// O(n) cost paid at bind.
func (m *Model) bindSegmentedV6(first, second []v6Segment) error {
	var err error
	if m.firstIdx, m.firstFlat, err = m.bindSideV6(0, first); err != nil {
		return err
	}
	if m.secondIdx, m.secondFlat, err = m.bindSideV6(1, second); err != nil {
		return err
	}
	return nil
}

// bindSideV6 assembles one side's segment stack from parsed v6
// segments, mirroring buildSide's layout decisions (base wrap, seal
// ordinals, delta regather, single-segment exact cache) over borrowed
// arenas instead of regathered ones.
func (m *Model) bindSideV6(side int, segs []v6Segment) (match.VectorIndex, *match.Index, error) {
	if len(segs) == 0 {
		// No manifest (never written by SaveV6, tolerated for robustness):
		// rebuild the classic single-segment layout from the vector map.
		c := m.first.c
		if side == 1 {
			c = m.second.c
		}
		return m.buildSide(c, side, nil)
	}
	base, err := m.bindFlatV6(segs[0])
	if err != nil {
		return nil, nil, err
	}
	baseIdx, err := m.bindSegmentV6(base, side, 0, segs[0])
	if err != nil {
		return nil, nil, err
	}
	stack, err := match.NewSegmented(baseIdx, m.dim, m.sealFunc(side), m.cfg.SegmentMaxDocs)
	if err != nil {
		return nil, nil, err
	}
	single := true
	ordinal := 1
	for _, seg := range segs[1 : len(segs)-1] {
		if len(seg.ids) == 0 {
			continue // all-tombstoned segment, compacted away on restore
		}
		single = false
		flat, err := m.bindFlatV6(seg)
		if err != nil {
			return nil, nil, err
		}
		idx, err := m.bindSegmentV6(flat, side, ordinal, seg)
		if err != nil {
			return nil, nil, err
		}
		if err := stack.AppendSealed(idx); err != nil {
			return nil, nil, err
		}
		ordinal++
	}
	if delta := segs[len(segs)-1]; len(delta.ids) > 0 {
		single = false
		if err := stack.Append(delta.ids, m.gatherArena(delta.ids)); err != nil {
			return nil, nil, err
		}
	}
	if single {
		return stack, base, nil
	}
	return stack, nil, nil
}

// bindFlatV6 builds the flat index of one sealed segment: borrowed
// over the section's normalized arena when present (zero copy), or an
// empty heap index for a rowless base.
func (m *Model) bindFlatV6(seg v6Segment) (*match.Index, error) {
	if seg.arena == nil && len(seg.ids) > 0 {
		// Only the base segment can reach here (middles with IDs always
		// carry an arena, parseV6 enforces it); regather defensively.
		return m.buildFlatIDs(seg.ids)
	}
	return match.NewIndexArenaBorrowed(seg.ids, seg.arena, m.dim)
}

// bindSegmentV6 wraps one sealed segment's flat index per the model's
// index kind with the exact seed/stats behavior of serveIndex (ordinal
// 0, the base) and sealFunc (ordinal >= 1), adopting precomputed SQ8
// codes or a serialized HNSW graph when the snapshot carries them.
func (m *Model) bindSegmentV6(flat *match.Index, side, ordinal int, seg v6Segment) (match.VectorIndex, error) {
	var inner match.VectorIndex
	switch m.cfg.Index {
	case IndexIVF:
		seed := m.cfg.Seed + int64(side) + 1
		if ordinal > 0 {
			seed += (int64(ordinal) + 1) * segmentSeedStride
		}
		ivf := match.NewIVF(flat, match.IVFOptions{
			Clusters:    m.cfg.IVFClusters,
			NProbe:      m.cfg.IVFNProbe,
			ExactRecall: m.cfg.ExactRecall,
			Seed:        seed,
		})
		if ordinal == 0 {
			m.stats.IndexClusters[side] = ivf.Clusters()
		}
		inner = ivf
	case IndexSQ8:
		if seg.codes != nil {
			q, err := match.NewIndexSQ8Parts(flat, seg.codes, seg.scales, m.cfg.SQ8Rerank)
			if err != nil {
				return nil, err
			}
			inner = q
		} else {
			inner = match.NewIndexSQ8(flat, m.cfg.SQ8Rerank)
		}
	case IndexHNSW:
		opts := m.hnswOptions(side, ordinal)
		if seg.levels != nil {
			h, err := match.NewHNSWParts(flat, seg.levels, seg.offs, seg.adj, opts)
			if err != nil {
				return nil, err
			}
			inner = h
		} else {
			inner = match.NewHNSW(flat, opts)
		}
	default:
		inner = flat
	}
	return m.shardWrap(inner), nil
}
