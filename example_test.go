package tdmatch_test

import (
	"fmt"
	"log"

	"github.com/tdmatch/tdmatch"
)

// Example demonstrates the minimal pipeline: build a model over a table
// and a text corpus, then rank tuples for a review. Workers=1 makes the
// run bit-reproducible, so the output is stable.
func Example() {
	movies, err := tdmatch.NewTable("movies",
		[]string{"title", "director", "star", "genre"},
		[][]string{
			{"The Sixth Sense", "Shyamalan", "Bruce Willis", "Thriller"},
			{"Pulp Fiction", "Tarantino", "Bruce Willis", "Drama"},
			{"The Godfather", "Coppola", "Marlon Brando", "Crime"},
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	reviews, err := tdmatch.NewText("reviews", []string{
		"Willis senses dead people in this sixth sense thriller by Shyamalan",
		"Brando rules the crime family",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdmatch.Defaults()
	cfg.Seed = 42
	cfg.Workers = 1
	cfg.NumWalks = 30
	cfg.Dim = 32

	model, err := tdmatch.Build(movies, reviews, cfg)
	if err != nil {
		log.Fatal(err)
	}
	top, err := model.TopK("reviews:p0", 1)
	if err != nil {
		log.Fatal(err)
	}
	title, _ := movies.DocText(top[0].ID)
	fmt.Println(title)
	// Output: The Sixth Sense Shyamalan Bruce Willis Thriller
}

// ExampleModel_MatchAll ranks every review against the movie table in one
// call, the bulk-matching entry point.
func ExampleModel_MatchAll() {
	movies, _ := tdmatch.NewTable("movies",
		[]string{"title", "star"},
		[][]string{
			{"Alien", "Sigourney Weaver"},
			{"Die Hard", "Bruce Willis"},
		}, nil)
	reviews, _ := tdmatch.NewText("reviews", []string{
		"Weaver fights the alien in deep space",
		"Willis defends the tower",
	}, nil)

	cfg := tdmatch.Defaults()
	cfg.Seed = 7
	cfg.Workers = 1
	cfg.NumWalks = 30
	cfg.Dim = 32

	model, err := tdmatch.Build(movies, reviews, cfg)
	if err != nil {
		log.Fatal(err)
	}
	all := model.MatchAll(true, 1)
	fmt.Println(all["reviews:p0"][0].ID)
	fmt.Println(all["reviews:p1"][0].ID)
	// Output:
	// movies:t0
	// movies:t1
}

// ExampleNewMemoryResource shows the expansion resource: triples are
// symmetric, so either endpoint resolves to the other.
func ExampleNewMemoryResource() {
	kb := tdmatch.NewMemoryResource([][3]string{
		{"tarantino", "style", "comedy"},
	})
	for _, rel := range kb.Related("comedy") {
		fmt.Printf("%s(%s)\n", rel.Predicate, rel.Object)
	}
	// Output: style(tarantino)
}
