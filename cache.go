package tdmatch

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShardCount is the number of independently-locked cache shards; a
// power of two so shard selection is a mask of the key hash. 16 shards
// keep lock contention negligible at the worker counts Config allows.
const cacheShardCount = 16

// cacheKey identifies one cached ranking: the query document, the
// requested depth, and the serving identity — the model generation
// assigned by Server plus the index-configuration fingerprint from
// internal/match. A reload or an index re-selection changes the identity,
// so stale rankings become unreachable even before the purge evicts them.
type cacheKey struct {
	docID string
	k     int
	gen   uint64
	fp    uint64
}

// hash folds the key into 64 bits with FNV-1a over the document ID,
// mixed with the numeric fields.
func (k cacheKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.docID); i++ {
		h ^= uint64(k.docID[i])
		h *= prime64
	}
	for _, p := range [3]uint64{uint64(k.k), k.gen, k.fp} {
		h ^= p
		h *= prime64
	}
	return h
}

// cacheEntry is one resident ranking; key is retained for eviction
// bookkeeping.
type cacheEntry struct {
	key     cacheKey
	matches []Match
}

// cacheShard is one lock domain of the result cache: an LRU list (front =
// most recent) with a map index over it.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[cacheKey]*list.Element
}

// resultCache is a sharded LRU over TopK rankings with hit/miss counters.
// A nil *resultCache is a valid disabled cache: every get misses (without
// counting) and every put is dropped.
type resultCache struct {
	shards [cacheShardCount]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// newResultCache builds a cache bounded at roughly capacity entries
// (rounded up to a multiple of the shard count); capacity <= 0 returns
// nil, the disabled cache.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[cacheKey]*list.Element, perShard)
	}
	return c
}

// shard selects the lock domain of a key.
func (c *resultCache) shard(key cacheKey) *cacheShard {
	return &c.shards[key.hash()&(cacheShardCount-1)]
}

// get returns a copy of the cached ranking for key, promoting the entry
// to most-recently-used, and counts the hit or miss. The copy keeps
// callers from mutating resident entries.
func (c *resultCache) get(key cacheKey) ([]Match, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var out []Match
	if ok {
		s.ll.MoveToFront(el)
		cached := el.Value.(*cacheEntry).matches
		out = make([]Match, len(cached))
		copy(out, cached)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return out, true
}

// put inserts (or refreshes) a ranking, evicting the shard's
// least-recently-used entry when full. The cache takes ownership of
// matches; callers must not mutate it afterwards.
func (c *resultCache) put(key cacheKey, matches []Match) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*cacheEntry).matches = matches
		return
	}
	for s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, matches: matches})
}

// purge drops every entry; the hit/miss counters keep accumulating.
func (c *resultCache) purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.items)
		s.mu.Unlock()
	}
}

// len returns the number of resident entries across all shards.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// counters returns the cumulative hit and miss counts as a consistent
// pair: the hit counter is re-read after the miss counter and the pair
// retried (bounded) until no hit slipped in between, so a stats snapshot
// under load never reports a (hits, misses) combination that implies
// more probes than happened.
func (c *resultCache) counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	hits = c.hits.Load()
	for i := 0; ; i++ {
		misses = c.misses.Load()
		again := c.hits.Load()
		if again == hits || i == 3 {
			return hits, misses
		}
		hits = again
	}
}
