package tdmatch_test

// Benchmark harness: one benchmark per paper table and figure (delegating
// to the experiment runners at bench scale) plus micro-benchmarks for the
// pipeline's hot paths. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Absolute quality numbers are printed by `go run ./cmd/tdexp -exp all`;
// the benchmarks measure the cost of regenerating each artefact.

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/tdmatch/tdmatch"
	"github.com/tdmatch/tdmatch/internal/compress"
	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/experiments"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// benchScale trims the Small scale so the full -bench=. suite stays in the
// minutes range.
var benchScale = experiments.Scale{
	IMDbMovies: 40, CoronaCountries: 10, CoronaGenClaims: 60, CoronaUsrClaims: 25,
	AuditLevel1: 4, AuditConcepts: 8, AuditDocuments: 60, ClaimsFactor: 0.15,
	STSPairs: 100, GeneralSentences: 1000,
	NumWalks: 8, WalkLength: 14, Dim: 40, Epochs: 2, Seed: 7,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1IMDb regenerates paper Table I (IMDb WT/NT quality).
func BenchmarkTable1IMDb(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Corona regenerates paper Table II (CoronaCheck quality).
func BenchmarkTable2Corona(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Audit regenerates paper Table III (taxonomy Exact/Node).
func BenchmarkTable3Audit(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4Politifact regenerates paper Table IV.
func BenchmarkTable4Politifact(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5Snopes regenerates paper Table V.
func BenchmarkTable5Snopes(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6STS regenerates paper Table VI (STS k=2,3).
func BenchmarkTable6STS(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7Times regenerates paper Table VII (train/test times).
func BenchmarkTable7Times(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8Compression regenerates paper Table VIII (MSP vs SSuM).
func BenchmarkTable8Compression(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkFig6WalkLength regenerates paper Figure 6 (MAP vs walk length).
func BenchmarkFig6WalkLength(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7NumWalks regenerates paper Figure 7 (MAP vs #walks).
func BenchmarkFig7NumWalks(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Scaling regenerates paper Figure 8 (time vs graph size).
func BenchmarkFig8Scaling(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Filtering regenerates paper Figure 9 (filter ablation).
func BenchmarkFig9Filtering(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Combine regenerates paper Figure 10 (S-BE combination).
func BenchmarkFig10Combine(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkNGramsAblation regenerates the §V-F1 tokens-per-term sweep.
func BenchmarkNGramsAblation(b *testing.B) { benchExperiment(b, "ngrams") }

// BenchmarkMergingAblation regenerates the §V-F2 node-merging ablation.
func BenchmarkMergingAblation(b *testing.B) { benchExperiment(b, "merging") }

// BenchmarkMetaEdgesAblation regenerates the §V-F2 metadata-edge ablation.
func BenchmarkMetaEdgesAblation(b *testing.B) { benchExperiment(b, "metaedges") }

// BenchmarkBlockingAblation measures the token-blocking extension.
func BenchmarkBlockingAblation(b *testing.B) { benchExperiment(b, "blocking") }

// BenchmarkWalkBiasAblation measures the kind-weighted walk extension.
func BenchmarkWalkBiasAblation(b *testing.B) { benchExperiment(b, "walkbias") }

// --- Micro-benchmarks for the pipeline hot paths. ---

func benchIMDbScenario(b *testing.B) *datasets.Scenario {
	b.Helper()
	s, err := datasets.IMDb(datasets.IMDbConfig{Seed: 3, Movies: 80, WithTitle: true, GeneralSentences: 200})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGraphBuild measures Algorithm 1 on the IMDb scenario.
func BenchmarkGraphBuild(b *testing.B) {
	s := benchIMDbScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := graph.Build(s.First, s.Second, graph.BuildConfig{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Graph.NumNodes()
	}
}

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	s := benchIMDbScenario(b)
	res, err := graph.Build(s.First, s.Second, graph.BuildConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Graph
}

// BenchmarkRandomWalks measures Algorithm 4 walk generation on the
// pipeline's hot path: packed sequences over a CSR-frozen graph.
func BenchmarkRandomWalks(b *testing.B) {
	g := benchGraph(b)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqs := walk.GeneratePacked(g, walk.Config{NumWalks: 10, Length: 20, Seed: int64(i)})
		if seqs.Len() == 0 {
			b.Fatal("no walks")
		}
	}
}

// benchWalkSequences generates the packed training corpus the Word2Vec
// benchmarks consume.
func benchWalkSequences(b *testing.B, g *graph.Graph) embed.Sequences {
	b.Helper()
	g.Freeze()
	return walk.GeneratePacked(g, walk.Config{NumWalks: 6, Length: 15, Seed: 1})
}

// BenchmarkWord2VecSkipGram measures embedding training on walk sequences.
func BenchmarkWord2VecSkipGram(b *testing.B) {
	g := benchGraph(b)
	seqs := benchWalkSequences(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.TrainPacked(seqs, g.Cap(), embed.Config{
			Dim: 48, Window: 3, Epochs: 1, Seed: int64(i), Mode: embed.SkipGram,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWord2VecCBOW measures the CBOW objective used for text tasks.
func BenchmarkWord2VecCBOW(b *testing.B) {
	g := benchGraph(b)
	seqs := benchWalkSequences(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.TrainPacked(seqs, g.Cap(), embed.Config{
			Dim: 48, Window: 10, Epochs: 1, Seed: int64(i), Mode: embed.CBOW,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSPCompression measures Algorithm 3 on an expanded graph.
func BenchmarkMSPCompression(b *testing.B) {
	s := benchIMDbScenario(b)
	pr, err := experiments.RunPipeline(s, benchScale, experiments.PipelineOpts{Expand: true})
	if err != nil {
		b.Fatal(err)
	}
	g := pr.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := compress.MSP(g, compress.Options{Ratio: 0.5, Seed: int64(i)})
		if cg.NumNodes() == 0 {
			b.Fatal("empty compressed graph")
		}
	}
}

// benchTopKIndex builds a 10k x 96 flat index over deterministic random
// vectors — the shared fixture of the single-index TopK benchmarks.
func benchTopKIndex(b *testing.B) (*match.Index, [][]float32) {
	b.Helper()
	const n, dim = 10000, 96
	ids := make([]string, n)
	vecs := make([][]float32, n)
	rng := uint64(12345)
	next := func() float32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float32(rng%1000)/500 - 1
	}
	for i := range ids {
		ids[i] = fmt.Sprintf("t%d", i)
		v := make([]float32, dim)
		for d := range v {
			v[d] = next()
		}
		vecs[i] = v
	}
	idx, err := match.NewIndex(ids, vecs, dim)
	if err != nil {
		b.Fatal(err)
	}
	return idx, vecs
}

// reportRecallAt10 attaches an approximate index's recall@10 against
// the exact flat ranking to the benchmark, measured over a fixed sample
// of fixture queries. tools/benchjson parses the metric into the
// trajectory's recall_at_10 field, so retrieval quality is tracked per
// index kind right next to its ns/op. Call it after the timed loop with
// the timer stopped: ResetTimer clears previously reported metrics.
func reportRecallAt10(b *testing.B, flat *match.Index, approx match.VectorIndex, vecs [][]float32) {
	b.Helper()
	const sample, k = 50, 10
	hits, total := 0, 0
	for q := 0; q < sample; q++ {
		want := make(map[string]struct{}, k)
		for _, s := range flat.TopK(vecs[q], k) {
			want[s.ID] = struct{}{}
		}
		for _, s := range approx.TopK(vecs[q], k) {
			if _, ok := want[s.ID]; ok {
				hits++
			}
		}
		total += len(want)
	}
	b.ReportMetric(float64(hits)/float64(total), "recall@10")
}

// BenchmarkTopKMatch measures single-query cosine ranking at 10k targets.
func BenchmarkTopKMatch(b *testing.B) {
	idx, vecs := benchTopKIndex(b)
	query := vecs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.TopK(query, 20); len(got) != 20 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkTopKBatch measures the blocked multi-query kernel: 32
// queries per pass over the same 10k targets. ns/op covers the whole
// batch; divide by 32 for the per-query cost against BenchmarkTopKMatch.
func BenchmarkTopKBatch(b *testing.B) {
	idx, vecs := benchTopKIndex(b)
	queries := vecs[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.TopKBatch(queries, 20); len(got) != 32 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkTopKIVF measures single-query ANN ranking at 10k targets with
// the default adaptive probe — the counterpart of BenchmarkTopKMatch.
func BenchmarkTopKIVF(b *testing.B) {
	flat, vecs := benchTopKIndex(b)
	ivf := match.NewIVF(flat, match.IVFOptions{Seed: 1})
	query := vecs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ivf.TopK(query, 20); len(got) != 20 {
			b.Fatal("short result")
		}
	}
	b.StopTimer()
	reportRecallAt10(b, flat, ivf, vecs)
}

// BenchmarkTopKSQ8 measures single-query quantized ranking (int8 scan +
// default 4x exact re-rank) at 10k targets — the third counterpart of
// BenchmarkTopKMatch.
func BenchmarkTopKSQ8(b *testing.B) {
	flat, vecs := benchTopKIndex(b)
	sq := match.NewIndexSQ8(flat, 0)
	query := vecs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sq.TopK(query, 20); len(got) != 20 {
			b.Fatal("short result")
		}
	}
	b.StopTimer()
	reportRecallAt10(b, flat, sq, vecs)
}

// BenchmarkTopKHNSW measures single-query graph ANN ranking (greedy
// multi-layer descent + ef-bounded layer-0 beam + exact re-rank) at 10k
// targets — the fourth counterpart of BenchmarkTopKMatch, and the
// sub-100µs uncached path the graph index exists for.
func BenchmarkTopKHNSW(b *testing.B) {
	flat, vecs := benchTopKIndex(b)
	h := match.NewHNSW(flat, match.HNSWOptions{Seed: 1})
	query := vecs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := h.TopK(query, 20); len(got) != 20 {
			b.Fatal("short result")
		}
	}
	b.StopTimer()
	reportRecallAt10(b, flat, h, vecs)
}

// BenchmarkBuildHNSW measures the one-time graph construction cost over
// the shared 10k x 96 fixture — the build-side price of the query-side
// speedup, tracked next to it in BENCH_build.json.
func BenchmarkBuildHNSW(b *testing.B) {
	flat, _ := benchTopKIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := match.NewHNSW(flat, match.HNSWOptions{Seed: int64(i + 1)}); h.Len() != flat.Len() {
			b.Fatal("short graph")
		}
	}
}

// --- MatchAll throughput: exact vs ANN, serial vs parallel. ---
//
// The corpus has >= 2000 documents per side; one benchmark op is a full
// MatchAll sweep (every query ranked against every target), so ns/op
// ratios between the variants are throughput ratios. The serial-flat
// variant reproduces the seed's scan; the acceptance bar is parallel
// MatchAll at Workers = GOMAXPROCS beating it by >= 4x on multicore
// hardware.

const matchAllDocs = 2000

var matchAllModels = map[tdmatch.IndexKind]*tdmatch.Model{}

// matchAllModel builds (once per index kind) a model over two synthetic
// 2k-document corpora with overlapping vocabulary. Training is minimal:
// these benchmarks measure serving, not Build.
func matchAllModel(b *testing.B, kind tdmatch.IndexKind) *tdmatch.Model {
	b.Helper()
	if m := matchAllModels[kind]; m != nil {
		return m
	}
	rng := uint64(99)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	word := func() string { return fmt.Sprintf("term%d", next(400)) }
	rows := make([][]string, matchAllDocs)
	texts := make([]string, matchAllDocs)
	for i := range rows {
		w1, w2, w3 := word(), word(), word()
		rows[i] = []string{fmt.Sprintf("entity%d %s", i, w1), w2 + " " + w3}
		texts[i] = fmt.Sprintf("report on entity%d covering %s %s and %s", i, w1, w2, w3)
	}
	table, err := tdmatch.NewTable("items", []string{"name", "tags"}, rows, nil)
	if err != nil {
		b.Fatal(err)
	}
	docs, err := tdmatch.NewText("reports", texts, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tdmatch.Defaults()
	cfg.Seed = 5
	cfg.NumWalks = 2
	cfg.WalkLength = 8
	cfg.Dim = 64
	cfg.Epochs = 1
	cfg.Index = kind
	model, err := tdmatch.Build(table, docs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	matchAllModels[kind] = model
	return model
}

func benchMatchAll(b *testing.B, kind tdmatch.IndexKind, workers int) {
	model := matchAllModel(b, kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := model.MatchAllWorkers(true, 10, workers)
		if len(all) < matchAllDocs/2 {
			b.Fatalf("MatchAll covered only %d queries", len(all))
		}
	}
}

// BenchmarkMatchAllSerialFlat is the seed's serving path: one goroutine,
// exact flat scan.
func BenchmarkMatchAllSerialFlat(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexFlat, 1)
}

// BenchmarkMatchAllParallelFlat fans the exact scan out over GOMAXPROCS
// workers.
func BenchmarkMatchAllParallelFlat(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexFlat, runtime.GOMAXPROCS(0))
}

// BenchmarkMatchAllSerialIVF serves from the clustered ANN index on one
// goroutine.
func BenchmarkMatchAllSerialIVF(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexIVF, 1)
}

// BenchmarkMatchAllParallelIVF combines ANN pruning with the worker pool —
// the production serving configuration.
func BenchmarkMatchAllParallelIVF(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexIVF, runtime.GOMAXPROCS(0))
}

// BenchmarkMatchAllSerialSQ8 serves from the quantized index on one
// goroutine.
func BenchmarkMatchAllSerialSQ8(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexSQ8, 1)
}

// BenchmarkMatchAllParallelSQ8 combines the quantized scan with the
// worker pool.
func BenchmarkMatchAllParallelSQ8(b *testing.B) {
	benchMatchAll(b, tdmatch.IndexSQ8, runtime.GOMAXPROCS(0))
}

// --- Sharded scatter-gather serving. ---

// benchMatchAllSharded reshards the memoized model for the measured
// region and restores the build default afterwards, so the other
// MatchAll benchmarks keep their configuration.
func benchMatchAllSharded(b *testing.B, kind tdmatch.IndexKind, shards, workers int) {
	model := matchAllModel(b, kind)
	model.Reshard(shards)
	defer model.Reshard(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := model.MatchAllWorkers(true, 10, workers)
		if len(all) < matchAllDocs/2 {
			b.Fatalf("MatchAll covered only %d queries", len(all))
		}
	}
}

// BenchmarkMatchAllShardedFlat runs the exact scan through the
// scatter-gather wrapper — 4 explicit shards, GOMAXPROCS workers —
// against BenchmarkMatchAllParallelFlat's chunk-only parallelism.
func BenchmarkMatchAllShardedFlat(b *testing.B) {
	benchMatchAllSharded(b, tdmatch.IndexFlat, 4, runtime.GOMAXPROCS(0))
}

// BenchmarkTopKBatchSharded measures the blocked multi-query kernel
// through a 4-way Sharded wrapper over the same 10k targets as
// BenchmarkTopKBatch — the scatter/merge overhead on top of the
// per-shard tiled scans.
func BenchmarkTopKBatchSharded(b *testing.B) {
	idx, vecs := benchTopKIndex(b)
	sh, err := match.NewSharded(idx, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	queries := vecs[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sh.TopKBatch(queries, 20); len(got) != 32 {
			b.Fatal("short result")
		}
	}
}

// benchEndToEndInputs builds the corpora and configuration shared by
// the full-Build and incremental-ingest benchmarks, so their ns/op
// ratio is the ingest-vs-full-rebuild ratio on identical inputs.
func benchEndToEndInputs(b *testing.B) (*tdmatch.Corpus, *tdmatch.Corpus, tdmatch.Config) {
	b.Helper()
	s := benchIMDbScenario(b)
	first, err := tdmatch.NewTable("movies", s.First.Columns, rowsOf(s), s.First.IDs())
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, 0, s.Second.Len())
	for _, d := range s.Second.Docs {
		texts = append(texts, d.Text())
	}
	second, err := tdmatch.NewText("reviews", texts, s.Second.IDs())
	if err != nil {
		b.Fatal(err)
	}
	cfg := tdmatch.Defaults()
	cfg.NumWalks = 8
	cfg.WalkLength = 14
	cfg.Dim = 40
	return first, second, cfg
}

// BenchmarkEndToEndPipeline measures the full public-API Build call —
// also the cost a single-document change pays without the incremental
// ingest path (compare BenchmarkIngestSingleDoc).
func BenchmarkEndToEndPipeline(b *testing.B) {
	first, second, cfg := benchEndToEndInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		model, err := tdmatch.Build(first, second, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if model.Stats().GraphNodes == 0 {
			b.Fatal("empty graph")
		}
	}
}

// --- Incremental ingest: per-document latency vs the full rebuild. ---

// ingestBenchText is the document every ingest benchmark op adds (under
// a fresh ID): vocabulary the seed IMDb corpus knows, so the delta
// walk/fine-tune path does representative work.
const ingestBenchText = "a tense thriller remake where the detective confronts the syndicate boss"

// BenchmarkIngestSingleDoc measures Model.Ingest of one text document
// into the seed IMDb model: frozen-CSR graph patch, delta walks from
// the affected neighborhood, warm-start fine-tune, index append. The
// acceptance bar is >= 10x faster than BenchmarkEndToEndPipeline (the
// full rebuild over the same corpora).
func BenchmarkIngestSingleDoc(b *testing.B) {
	first, second, cfg := benchEndToEndInputs(b)
	cfg.Seed = 1
	model, err := tdmatch.Build(first, second, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := model.Ingest([]tdmatch.IngestDoc{{
			Side:   2,
			ID:     fmt.Sprintf("reviews:bench%d", i),
			Values: []string{ingestBenchText},
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestServerSingleDoc measures the full serving-layer ingest
// (Server.Ingest): model clone, Model.Ingest on the clone, atomic swap
// — the per-request cost of POST /v1/ingest.
func BenchmarkIngestServerSingleDoc(b *testing.B) {
	first, second, cfg := benchEndToEndInputs(b)
	cfg.Seed = 1
	model, err := tdmatch.Build(first, second, cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := tdmatch.NewServer(model, tdmatch.ServeConfig{})
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := srv.Ingest([]tdmatch.IngestDoc{{
			Side:   2,
			ID:     fmt.Sprintf("reviews:srvbench%d", i),
			Values: []string{ingestBenchText},
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadSnapshotGob measures cold start from a gob (v5)
// snapshot: open the file, decode, rebuild the serving indexes, answer
// the first TopK. The baseline BenchmarkLoadSnapshotMmap is held
// against.
func BenchmarkLoadSnapshotGob(b *testing.B) { benchLoadSnapshot(b, "gob") }

// BenchmarkLoadSnapshotMmap measures cold start from a v6 snapshot
// through the zero-copy path: mmap the file (lazy verification, the
// daemon's trusted-checkpoint mode), bind the serving indexes onto the
// mapping, answer the first TopK. The PR 9 acceptance bar is >= 10x
// faster than BenchmarkLoadSnapshotGob.
func BenchmarkLoadSnapshotMmap(b *testing.B) { benchLoadSnapshot(b, "mmap") }

func benchLoadSnapshot(b *testing.B, format string) {
	first, second, cfg := benchEndToEndInputs(b)
	cfg.Seed = 1
	model, err := tdmatch.Build(first, second, cfg)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "model.snap")
	if format == "gob" {
		err = model.SaveFile(path)
	} else {
		err = model.SaveFileV6(path)
	}
	if err != nil {
		b.Fatal(err)
	}
	q := second.IDs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var snap *tdmatch.Snapshot
		if format == "gob" {
			snap, err = tdmatch.OpenSnapshotFile(path)
		} else {
			snap, err = tdmatch.OpenSnapshotFileVerify(path, tdmatch.VerifyLazy)
		}
		if err != nil {
			b.Fatal(err)
		}
		m, err := snap.Bind(first, second)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.TopK(q, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func rowsOf(s *datasets.Scenario) [][]string {
	rows := make([][]string, 0, s.First.Len())
	for _, d := range s.First.Docs {
		row := make([]string, len(d.Values))
		for i, v := range d.Values {
			row[i] = v.Text
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Segmented core: ingest cost vs graph size, online compaction. ---

// benchScaledModel builds the ingest-scaling model over IMDb corpora at
// mult times the 1x baseline size (20 movies / 100 general sentences),
// training config held fixed so only the graph size varies.
func benchScaledModel(b *testing.B, mult int) *tdmatch.Model {
	b.Helper()
	s, err := datasets.IMDb(datasets.IMDbConfig{
		Seed: 3, Movies: 20 * mult, WithTitle: true, GeneralSentences: 100 * mult,
	})
	if err != nil {
		b.Fatal(err)
	}
	first, err := tdmatch.NewTable("movies", s.First.Columns, rowsOf(s), s.First.IDs())
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, 0, s.Second.Len())
	for _, d := range s.Second.Docs {
		texts = append(texts, d.Text())
	}
	second, err := tdmatch.NewText("reviews", texts, s.Second.IDs())
	if err != nil {
		b.Fatal(err)
	}
	cfg := tdmatch.Defaults()
	cfg.NumWalks = 8
	cfg.WalkLength = 14
	cfg.Dim = 40
	cfg.Seed = 1
	model, err := tdmatch.Build(first, second, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return model
}

// BenchmarkIngestSegmented measures per-document Model.Ingest against
// corpora 1x, 4x and 16x the baseline size. The segmented core's claim
// is O(delta) ingest: per-doc ns/op must stay flat (within roughly
// ±20%) as the graph grows 16x — appends land in the mutable delta
// segment and never touch sealed storage, where a monolithic design
// would pay an index rebuild scaling with corpus size.
func BenchmarkIngestSegmented(b *testing.B) {
	for _, mult := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("scale%dx", mult), func(b *testing.B) {
			model := benchScaledModel(b, mult)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := model.Ingest([]tdmatch.IngestDoc{{
					Side:   2,
					ID:     fmt.Sprintf("reviews:seg%d", i),
					Values: []string{ingestBenchText},
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompactOnline measures one full online compaction through
// the serving layer: an ingest makes the served model stale, then
// Server.Compact clones it, retrains off-lock while queries keep
// serving, replays any concurrent deltas and swaps — the cost of
// POST /v1/compact.
func BenchmarkCompactOnline(b *testing.B) {
	first, second, cfg := benchEndToEndInputs(b)
	cfg.Seed = 1
	model, err := tdmatch.Build(first, second, cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := tdmatch.NewServer(model, tdmatch.ServeConfig{})
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := srv.Ingest([]tdmatch.IngestDoc{{
			Side:   2,
			ID:     fmt.Sprintf("reviews:cmp%d", i),
			Values: []string{ingestBenchText},
		}})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestWAL measures the durability tax: the same
// Server.Ingest hot path as BenchmarkIngestServerSingleDoc with a WAL
// attached under each fsync policy. "always" pays one fsync per acked
// op (the default), "interval" batches flushes on a background timer,
// "never" leaves flushing to the OS — compare against the WAL-less
// server benchmark for the log's append-only overhead.
func BenchmarkIngestWAL(b *testing.B) {
	for _, policy := range []string{"always", "interval", "never"} {
		b.Run(policy, func(b *testing.B) {
			first, second, cfg := benchEndToEndInputs(b)
			cfg.Seed = 1
			model, err := tdmatch.Build(first, second, cfg)
			if err != nil {
				b.Fatal(err)
			}
			w, err := tdmatch.OpenWAL(filepath.Join(b.TempDir(), "bench.wal"), tdmatch.WALOptions{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			srv := tdmatch.NewServer(model, tdmatch.ServeConfig{WAL: w})
			defer srv.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := srv.Ingest([]tdmatch.IngestDoc{{
					Side:   2,
					ID:     fmt.Sprintf("reviews:wal%s%d", policy, i),
					Values: []string{ingestBenchText},
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
