package tdmatch

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// serveTestCorpora builds a small movie/review pair with enough token
// overlap that every document gets an embedding.
func serveTestCorpora(t testing.TB) (*Corpus, *Corpus) {
	t.Helper()
	movies, err := NewTable("movies",
		[]string{"title", "director", "star", "genre"},
		[][]string{
			{"The Sixth Sense", "Shyamalan", "Bruce Willis", "Thriller"},
			{"Pulp Fiction", "Tarantino", "Bruce Willis", "Drama"},
			{"The Godfather", "Coppola", "Marlon Brando", "Crime"},
			{"Jackie Brown", "Tarantino", "Pam Grier", "Crime"},
			{"Die Hard", "McTiernan", "Bruce Willis", "Action"},
			{"The Village", "Shyamalan", "Joaquin Phoenix", "Thriller"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := NewText("reviews", []string{
		"Willis sees dead people in this tense Shyamalan thriller",
		"a hilarious Tarantino movie starring Willis",
		"Brando rules the crime family in a timeless Coppola masterpiece",
		"Grier carries this Tarantino crime homage",
		"Willis fights terrorists in a McTiernan action classic",
		"Phoenix wanders a Shyamalan village thriller",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return movies, reviews
}

// serveTestConfig is a laptop-instant pipeline configuration for serving
// tests. Workers is 1 because hogwild training is deliberately racy (see
// Config.Workers) and these tests run under -race; serving concurrency is
// exercised via ServeConfig.Workers instead.
func serveTestConfig(seed int64) Config {
	cfg := Defaults()
	cfg.Seed = seed
	cfg.NumWalks = 6
	cfg.WalkLength = 10
	cfg.Dim = 24
	cfg.Epochs = 1
	cfg.Workers = 1
	return cfg
}

// buildServeTestModel trains the shared test model (memoized — the
// pipeline is deterministic per seed).
var serveModelCache sync.Map // seed → *Model

func buildServeTestModel(t testing.TB, seed int64) *Model {
	t.Helper()
	if m, ok := serveModelCache.Load(seed); ok {
		return m.(*Model)
	}
	first, second := serveTestCorpora(t)
	m, err := Build(first, second, serveTestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	serveModelCache.Store(seed, m)
	return m
}

func TestResultCacheLRUAndCounters(t *testing.T) {
	c := newResultCache(cacheShardCount) // one entry per shard
	key := func(i int) cacheKey {
		return cacheKey{docID: fmt.Sprintf("doc%d", i), k: 5, gen: 1, fp: 42}
	}
	if _, ok := c.get(key(0)); ok {
		t.Fatal("empty cache reported a hit")
	}
	for i := 0; i < 100; i++ {
		c.put(key(i), []Match{{ID: "m", Score: float64(i)}})
	}
	if n := c.len(); n > cacheShardCount {
		t.Errorf("cache holds %d entries, capacity %d", n, cacheShardCount)
	}
	// Refreshing an existing key must not grow the cache.
	c.purge()
	if c.len() != 0 {
		t.Fatal("purge left entries behind")
	}
	c.put(key(1), []Match{{ID: "m", Score: 1}})
	c.put(key(1), []Match{{ID: "m", Score: 2}})
	if c.len() != 1 {
		t.Errorf("duplicate put grew the cache to %d entries", c.len())
	}
	got, ok := c.get(key(1))
	if !ok || got[0].Score != 2 {
		t.Errorf("get after refresh = %v, %v", got, ok)
	}
	// Returned slices are copies: mutating one must not poison the cache.
	got[0].Score = -1
	again, _ := c.get(key(1))
	if again[0].Score != 2 {
		t.Error("cache entry mutated through a returned slice")
	}
	hits, misses := c.counters()
	if hits != 2 || misses == 0 {
		t.Errorf("counters = %d hits, %d misses", hits, misses)
	}
	// Generation is part of the key: the same query under a new
	// generation misses.
	bumped := key(1)
	bumped.gen = 2
	if _, ok := c.get(bumped); ok {
		t.Error("cache served an entry across generations")
	}

	var disabled *resultCache
	disabled.put(key(0), nil)
	if _, ok := disabled.get(key(0)); ok {
		t.Error("nil cache reported a hit")
	}
	if disabled.len() != 0 {
		t.Error("nil cache reports entries")
	}
	disabled.purge() // must not panic
}

func TestServerTopKMatchesModelAndCaches(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{})
	defer s.Close()

	want, err := m.TopK("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.TopK("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Errorf("served ranking %v != model ranking %v", cold, want)
	}
	// The cold result is the caller's: mutating it must not poison the
	// cache entry filled by the same call.
	cold[0] = Match{ID: "corrupted", Score: -99}
	warm, err := s.TopK("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Errorf("cached ranking %v != model ranking %v", warm, want)
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Errorf("no cache hit recorded: %+v", st)
	}
	if st.Queries != 2 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v, want 2 queries and 1 entry", st)
	}

	if _, err := s.TopK("nosuch:doc", 3); err == nil {
		t.Error("unknown document did not error")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
}

func TestServerCoalescesConcurrentQueries(t *testing.T) {
	m := buildServeTestModel(t, 1)
	// Wide window, disabled cache: concurrent distinct queries must land
	// in few batches.
	s := NewServer(m, ServeConfig{CacheSize: -1, BatchWindow: 20 * time.Millisecond, Workers: 4})
	defer s.Close()

	ids := m.second.IDs()
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(ids))
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if _, err := s.TopK(id, 2); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	total := uint64(rounds * len(ids))
	if st.BatchedQueries != total {
		t.Errorf("batched %d queries, want %d", st.BatchedQueries, total)
	}
	if st.Batches == 0 || st.Batches >= total {
		t.Errorf("batches = %d for %d concurrent queries: no coalescing", st.Batches, total)
	}
}

func TestServerTopKBatch(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{Workers: 3})
	defer s.Close()

	ids := append(m.second.IDs(), "nosuch:doc")
	results := s.TopKBatch(ids, 3)
	if len(results) != len(ids) {
		t.Fatalf("got %d results for %d queries", len(results), len(ids))
	}
	for i, res := range results[:len(results)-1] {
		if res.Err != nil {
			t.Fatalf("%s: %v", ids[i], res.Err)
		}
		want, err := m.TopK(ids[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.ID != ids[i] || !reflect.DeepEqual(res.Matches, want) {
			t.Errorf("batch result %d = %+v, want %v for %s", i, res, want, ids[i])
		}
	}
	if last := results[len(results)-1]; last.Err == nil {
		t.Error("unknown document in batch did not error")
	}
}

func TestServerReloadSwapsWithoutDroppingQueries(t *testing.T) {
	m1 := buildServeTestModel(t, 1)
	m2 := buildServeTestModel(t, 2)
	s := NewServer(m1, ServeConfig{BatchWindow: 50 * time.Microsecond, Workers: 4})
	defer s.Close()

	if err := s.Reload(nil); err == nil {
		t.Fatal("Reload(nil) did not error")
	}

	ids := m1.second.IDs()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w+i)%len(ids)]
				if _, err := s.TopK(id, 2); err != nil && !errors.Is(err, ErrServerClosed) {
					select {
					case errs <- fmt.Errorf("%s: %w", id, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	const swaps = 20
	models := [2]*Model{m1, m2}
	for i := 0; i < swaps; i++ {
		if err := s.Reload(models[(i+1)%2]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Reloads != swaps {
		t.Errorf("reloads = %d, want %d", st.Reloads, swaps)
	}
	// After the final swap the server serves m1's rankings again.
	want, err := models[swaps%2].TopK(ids[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TopK(ids[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-reload ranking %v != active model's %v", got, want)
	}
}

func TestServerCloseFailsPendingQueries(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.TopK(m.second.IDs()[0], 2); !errors.Is(err, ErrServerClosed) {
		t.Errorf("TopK after Close = %v, want ErrServerClosed", err)
	}
}

func TestServerDisabledCacheAndBatching(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{CacheSize: -1, BatchWindow: -1})
	defer s.Close()
	id := m.second.IDs()[0]
	want, err := m.TopK(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := s.TopK(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("unbatched ranking %v != model ranking %v", got, want)
		}
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheEntries != 0 || st.Batches != 0 {
		t.Errorf("disabled cache/batching still counted: %+v", st)
	}
}

// TestServerIngestServesImmediatelyAndInvalidatesCache is the live-
// ingest contract: after Server.Ingest the very same (query, k) that
// was cached pre-ingest must be answered against the new corpus — the
// generation bump and mutated index fingerprints make stale entries
// unreachable — while the original model object stays untouched.
func TestServerIngestServesImmediatelyAndInvalidatesCache(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{})
	defer s.Close()

	query := m.first.IDs()[1] // Pulp Fiction
	k := m.second.Len() + 1   // covers every review, current and future
	before, err := s.TopK(query, k)
	if err != nil {
		t.Fatal(err)
	}
	// Query again so the ranking is resident in the cache.
	if _, err := s.TopK(query, k); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits == 0 {
		t.Fatalf("pre-ingest ranking not cached: %+v", st)
	}

	if err := s.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:live", Values: []string{"another Tarantino crime story with Willis"}},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := s.TopK(query, k)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mt := range after {
		if mt.ID == "reviews:live" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested doc absent from post-ingest ranking — stale cache?\nbefore: %v\nafter:  %v", before, after)
	}
	// The ingested doc answers queries itself.
	if _, err := s.TopK("reviews:live", 3); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ingests != 1 || st.IngestedDocs != 1 || st.Staleness != 1 {
		t.Errorf("ingest counters = %+v", st)
	}

	// Remove swaps again and the doc disappears from rankings and
	// queries.
	if err := s.Remove([]string{"reviews:live"}); err != nil {
		t.Fatal(err)
	}
	gone, err := s.TopK(query, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range gone {
		if mt.ID == "reviews:live" {
			t.Error("removed doc still ranked after the swap")
		}
	}
	if _, err := s.TopK("reviews:live", 3); err == nil {
		t.Error("removed doc still answers queries")
	}
	st = s.Stats()
	if st.Removes != 1 || st.RemovedDocs != 1 || st.Staleness != 2 {
		t.Errorf("remove counters = %+v", st)
	}
	// A failed mutation leaves the served model alone.
	if err := s.Ingest([]IngestDoc{{Side: 9, ID: "bad"}}); err == nil {
		t.Error("invalid ingest must fail")
	}
	if err := s.Remove([]string{"nosuch:doc"}); err == nil {
		t.Error("removing an unknown doc must fail")
	}
	if st := s.Stats(); st.Ingests != 1 || st.Removes != 1 {
		t.Errorf("failed mutations bumped counters: %+v", st)
	}

	// The original model object was never mutated (Server.Ingest clones).
	if m.Staleness() != 0 {
		t.Errorf("original model staleness = %d, want 0", m.Staleness())
	}
	if _, ok := m.second.c.Doc("reviews:live"); ok {
		t.Error("original model's corpus gained the ingested doc")
	}
}

// TestServerIngestUnderConcurrentQueries hammers TopK from several
// goroutines while ingests and removals swap the model — every query
// must succeed against whichever generation it lands on. Run with
// -race in CI.
func TestServerIngestUnderConcurrentQueries(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{Workers: 4})
	defer s.Close()
	ids := m.second.IDs()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.TopK(ids[(w+i)%len(ids)], 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("reviews:live%d", i)
		if err := s.Ingest([]IngestDoc{{Side: 2, ID: id, Values: []string{"a Shyamalan thriller with Willis"}}}); err != nil {
			t.Error(err)
			break
		}
		if err := s.Remove([]string{id}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.Ingests != 5 || st.Removes != 5 || st.Staleness != 10 {
		t.Errorf("mutation counters = %+v", st)
	}
}

// TestServerCompactUnderConcurrentTraffic races queries and live
// ingests against background compactions — the online-compaction
// guarantee: serving never blocks, no query ever fails, the generation
// counter only moves forward, and the swap invalidates cached rankings.
// Run with -race in CI.
func TestServerCompactUnderConcurrentTraffic(t *testing.T) {
	m := buildServeTestModel(t, 1)
	s := NewServer(m, ServeConfig{Workers: 4, CacheSize: 64})
	defer s.Close()
	ids := m.second.IDs()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Query hammer: every TopK must succeed against whichever model
	// generation it lands on, compaction swaps included.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.TopK(ids[(w+i)%len(ids)], 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Generation monitor: swaps (ingest, remove, compact) must install
	// strictly increasing generations — a scrape can never observe a
	// rollback.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := s.Stats().Generation; g < last {
				t.Errorf("generation went backwards: %d after %d", g, last)
				return
			} else {
				last = g
			}
		}
	}()
	// Mutator: ingest/remove cycles racing the compactions below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("reviews:churn%d", i)
			if err := s.Ingest([]IngestDoc{{Side: 2, ID: id, Values: []string{"a Shyamalan thriller with Willis"}}}); err != nil {
				t.Error(err)
				return
			}
			if err := s.Remove([]string{id}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Foreground: three compactions under full traffic, plus one
	// deliberate concurrent call — the loser must get ErrCompacting,
	// never a corrupted swap.
	for i := 0; i < 3; i++ {
		errc := make(chan error, 1)
		go func() { errc <- s.Compact() }()
		err1 := s.Compact()
		err2 := <-errc
		for _, err := range []error{err1, err2} {
			if err != nil && !errors.Is(err, ErrCompacting) {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Compactions < 3 {
		t.Errorf("compactions = %d, want >= 3", st.Compactions)
	}
	if st.Errors != 0 {
		t.Errorf("queries failed under compaction: %d errors", st.Errors)
	}

	// Cache invalidation across the swap, deterministically: prime a
	// ranking into the cache, compact, and re-ask — the post-swap query
	// must recompute (a cache miss) and agree with the swapped-in model,
	// not replay the pre-swap ranking.
	q := ids[0]
	if _, err := s.TopK(q, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest([]IngestDoc{{Side: 2, ID: "reviews:final", Values: []string{"a haunted ghost story"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	missesBefore := s.Stats().CacheMisses
	got, err := s.TopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().CacheMisses == missesBefore {
		t.Error("post-compaction query served from the pre-swap cache")
	}
	want, err := s.Model().TopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-compaction ranking diverged from the served model:\ngot:  %v\nwant: %v", got, want)
	}
	if st := s.Stats(); st.Staleness != 0 {
		t.Errorf("staleness after quiescent compact = %d, want 0", st.Staleness)
	}
}
