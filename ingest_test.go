package tdmatch

import (
	"bytes"
	"testing"
)

// ingestTestConfig is smallConfig at Workers 1: the ingest tests run
// under -race in CI and hogwild training is deliberately racy, so they
// train serially (like the serving tests) and exercise concurrency at
// the serving layer instead.
func ingestTestConfig() Config {
	cfg := smallConfig()
	cfg.Workers = 1
	return cfg
}

// ingestDocOf converts a live document back into its IngestDoc form —
// the re-ingest half of the remove+ingest parity tests.
func ingestDocOf(m *Model, id string) IngestDoc {
	side, doc, ok := m.docOf(id)
	if !ok {
		panic("ingestDocOf: unknown document " + id)
	}
	out := IngestDoc{Side: side, ID: id, Parent: doc.Parent}
	for _, v := range doc.Values {
		out.Values = append(out.Values, v.Text)
	}
	return out
}

func TestIngestWarmAddsServableDocument(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes0, edges0 := model.GraphSize()
	err = model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:new", Values: []string{"Tarantino crime dialogue with Willis in fiction"}},
		{Side: 1, ID: "movies:new", Values: []string{"Reservoir Dogs", "Tarantino", "Harvey Keitel", "R", "Crime"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if model.Staleness() != 2 {
		t.Errorf("staleness = %d, want 2", model.Staleness())
	}
	nodes1, edges1 := model.GraphSize()
	if nodes1 <= nodes0 || edges1 <= edges0 {
		t.Errorf("graph did not grow: %d/%d -> %d/%d", nodes0, edges0, nodes1, edges1)
	}
	if model.Vector("reviews:new") == nil || model.Vector("movies:new") == nil {
		t.Fatal("ingested documents have no embedding")
	}
	// The new review must be servable as a query...
	matches, err := model.TopK("reviews:new", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("TopK for ingested doc returned %d matches", len(matches))
	}
	// ...and as a target: with k covering the whole movie side it must
	// appear in a review's ranking.
	all, err := model.TopK("reviews:p0", model.first.Len())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mt := range all {
		if mt.ID == "movies:new" {
			found = true
		}
	}
	if !found {
		t.Error("ingested movie absent from a corpus-covering ranking")
	}
	// Batch and blocked paths keep working after the mutation.
	if _, err := model.TopKBlocked("reviews:new", 3); err != nil {
		t.Fatal(err)
	}
	for _, res := range model.TopKBatch([]string{"reviews:new", "movies:new"}, 3) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// Validation failures leave the model untouched.
	if err := model.Ingest([]IngestDoc{{Side: 3, ID: "x"}}); err == nil {
		t.Error("side 3 must be rejected")
	}
	if err := model.Ingest([]IngestDoc{{Side: 1, ID: "movies:new"}}); err == nil {
		t.Error("duplicate ID must be rejected")
	}
	if err := model.Ingest([]IngestDoc{{Side: 1, ID: ""}}); err == nil {
		t.Error("empty ID must be rejected")
	}
	if err := model.Ingest([]IngestDoc{{Side: 1, ID: "movies:wide", Values: make([]string, 9)}}); err == nil {
		t.Error("too many table values must be rejected")
	}
	// IDs become graph metadata labels — colliding with a non-document
	// label (an attribute node) is rejected before anything mutates.
	if err := model.Ingest([]IngestDoc{{Side: 1, ID: "movies/title", Values: []string{"x"}}}); err == nil {
		t.Error("attribute-label collision must be rejected")
	}
	if _, ok := model.first.c.Doc("movies/title"); ok {
		t.Error("rejected collision doc leaked into the corpus")
	}
}

// TestIngestRollsBackPartialBatch: a mid-batch corpus append failure
// (only the corpus can reject a bad taxonomy parent) must leave no
// trace of the earlier documents of the batch.
func TestIngestRollsBackPartialBatch(t *testing.T) {
	tax, err := NewTaxonomy("tax", []TaxonomyNode{
		{ID: "root", Text: "financial audit"},
		{ID: "child", Text: "risk assessment", Parent: "root"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := NewText("docs", []string{"the audit assessed financial risk"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Build(tax, docs, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = model.Ingest([]IngestDoc{
		{Side: 1, ID: "ok", Values: []string{"compliance"}, Parent: "root"},
		{Side: 1, ID: "bad", Values: []string{"orphan"}, Parent: "nosuch"},
	})
	if err == nil {
		t.Fatal("unknown parent must be rejected")
	}
	if _, ok := model.first.c.Doc("ok"); ok {
		t.Error("failed batch left its earlier document in the corpus")
	}
	if model.Staleness() != 0 {
		t.Errorf("failed batch bumped staleness to %d", model.Staleness())
	}
	// The batch succeeds once corrected, proving no stale leftovers.
	if err := model.Ingest([]IngestDoc{
		{Side: 1, ID: "ok", Values: []string{"compliance"}, Parent: "root"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeletesDocument(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Remove([]string{"reviews:p0", "movies:t3"}); err != nil {
		t.Fatal(err)
	}
	if model.Staleness() != 2 {
		t.Errorf("staleness = %d, want 2", model.Staleness())
	}
	if _, err := model.TopK("reviews:p0", 3); err == nil {
		t.Error("removed document still answers queries")
	}
	// Removed docs never surface as targets, even with corpus-covering k.
	all, err := model.TopK("reviews:p1", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range all {
		if mt.ID == "movies:t3" {
			t.Error("removed movie still ranked")
		}
	}
	if err := model.Remove([]string{"nosuch:doc"}); err == nil {
		t.Error("unknown ID must be rejected")
	}
	// Remove + re-ingest brings the document back.
	if err := model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:p0", Values: []string{"a comedy by Tarantino starring Willis with unforgettable dialogue"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := model.TopK("reviews:p0", 3); err != nil {
		t.Fatalf("re-ingested document not servable: %v", err)
	}
}

func TestCompactResetsStaleness(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:new", Values: []string{"Coppola directs Brando in a crime epic"}},
	}); err != nil {
		t.Fatal(err)
	}
	if model.Staleness() != 1 {
		t.Fatalf("staleness = %d", model.Staleness())
	}
	if err := model.Compact(); err != nil {
		t.Fatal(err)
	}
	if model.Staleness() != 0 {
		t.Errorf("staleness after Compact = %d, want 0", model.Staleness())
	}
	// The compacted model fully retrained the ingested doc.
	matches, err := model.TopK("reviews:new", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("TopK after Compact: %v", matches)
	}
	// The delta chain survives compaction (a snapshot must still be
	// loadable against the pre-ingest corpus files).
	if len(model.deltas) != 1 {
		t.Errorf("delta chain length after Compact = %d, want 1", len(model.deltas))
	}
}

// TestIngestParityOnIMDb is the acceptance bar of the incremental
// path: on the seed IMDb dataset, removing a held-out slice and
// re-ingesting it must reproduce the from-scratch model's rankings at
// recall@10 >= 0.95 — the model pre-mutation IS a from-scratch build of
// the final corpus, since the mutation round-trips the content — across
// flat, IVF and SQ8 serving indexes.
func TestIngestParityOnIMDb(t *testing.T) {
	for _, kind := range []IndexKind{IndexFlat, IndexIVF, IndexSQ8} {
		t.Run(kind.String(), func(t *testing.T) {
			model := buildIMDbModel(t, func(cfg *Config) {
				cfg.Index = kind
			})
			queries := append(append([]string(nil), model.first.IDs()...), model.second.IDs()...)
			const k = 10
			want := map[string][]string{}
			for _, q := range queries {
				if model.vectors[q] == nil {
					continue
				}
				matches, err := model.TopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				ids := make([]string, len(matches))
				for i, mt := range matches {
					ids[i] = mt.ID
				}
				want[q] = ids
			}
			if len(want) < 100 {
				t.Fatalf("only %d live queries — fixture too small", len(want))
			}

			// Hold out a slice of both sides, remove it, re-ingest it.
			held := []string{
				model.first.IDs()[3], model.first.IDs()[17], model.first.IDs()[41],
				model.second.IDs()[0], model.second.IDs()[25], model.second.IDs()[80],
			}
			docs := make([]IngestDoc, len(held))
			for i, id := range held {
				docs[i] = ingestDocOf(model, id)
			}
			if err := model.Remove(held); err != nil {
				t.Fatal(err)
			}
			if err := model.Ingest(docs); err != nil {
				t.Fatal(err)
			}
			if model.Staleness() != 2*len(held) {
				t.Errorf("staleness = %d, want %d", model.Staleness(), 2*len(held))
			}

			hits, total := 0, 0
			for q, wantIDs := range want {
				got, err := model.TopK(q, k)
				if err != nil {
					t.Fatalf("TopK(%s) after remove+ingest: %v", q, err)
				}
				gotSet := map[string]struct{}{}
				for _, mt := range got {
					gotSet[mt.ID] = struct{}{}
				}
				for _, id := range wantIDs {
					if _, ok := gotSet[id]; ok {
						hits++
					}
				}
				total += len(wantIDs)
			}
			recall := float64(hits) / float64(total)
			t.Logf("%s: remove+ingest recall@10 = %.4f over %d ranked slots (%d queries)",
				kind, recall, total, len(want))
			if recall < 0.95 {
				t.Errorf("remove+ingest recall@10 = %.4f, want >= 0.95", recall)
			}
		})
	}
}

// TestIngestFoldOnLoadedModel: a snapshot-restored model (no trainer
// state) ingests via term-vector fold-in and serves the new document.
func TestIngestFoldOnLoadedModel(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, r2 := fixtureCorpora(t)
	loaded, err := LoadModel(&buf, m2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.fold == nil {
		t.Fatal("v4 snapshot did not restore fold-in state")
	}
	if err := loaded.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:new", Values: []string{"Tarantino and Willis in a crime thriller"}},
	}); err != nil {
		t.Fatal(err)
	}
	matches, err := loaded.TopK("reviews:new", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("fold-in TopK: %v", matches)
	}
	// The folded vector is term-driven: the top match should be one of
	// the Tarantino/Willis movies.
	if top := matches[0].ID; top != "movies:t1" && top != "movies:t0" {
		t.Logf("fold-in top match = %s (term-driven ranking)", top)
	}
	if loaded.Staleness() != 1 {
		t.Errorf("staleness = %d", loaded.Staleness())
	}
	// A document with only unknown terms gets no embedding but is
	// still removable.
	if err := loaded.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:alien", Values: []string{"zzz qqq xxx"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK("reviews:alien", 2); err == nil {
		t.Error("document without known terms must fail TopK like an isolated one")
	}
	if err := loaded.Remove([]string{"reviews:alien"}); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadDeltaChain: a snapshot saved after ingests and removals
// binds against the ORIGINAL (pre-ingest) corpora — the delta chain
// re-applies the mutations — and serves the ingested document with its
// saved vector.
func TestSaveLoadDeltaChain(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:new", Values: []string{"Willis and Tarantino reunite for a crime caper"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := model.Remove([]string{"reviews:p3"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh corpora in their pre-ingest state.
	m2, r2 := fixtureCorpora(t)
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()), m2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Staleness() != 2 {
		t.Errorf("staleness = %d, want 2", loaded.Staleness())
	}
	if _, ok := r2.c.Doc("reviews:new"); !ok {
		t.Fatal("delta chain did not append the ingested document to the corpus")
	}
	if _, ok := r2.c.Doc("reviews:p3"); ok {
		t.Fatal("delta chain did not remove the deleted document from the corpus")
	}
	// The ingested document serves with its saved vector: rankings agree
	// with the in-process mutated model.
	wantMatches, err := model.TopK("reviews:new", 3)
	if err != nil {
		t.Fatal(err)
	}
	gotMatches, err := loaded.TopK("reviews:new", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantMatches {
		if wantMatches[i].ID != gotMatches[i].ID {
			t.Errorf("rank %d: %s vs %s", i, wantMatches[i].ID, gotMatches[i].ID)
		}
	}
	if _, err := loaded.TopK("reviews:p3", 3); err == nil {
		t.Error("document removed by the delta chain still answers queries")
	}
}

// TestIngestDeterministicSingleWorker pins the seed-determinism
// invariant on the delta path: at Workers 1 and a fixed seed, two
// identical Build+Ingest runs must produce identical rankings for the
// ingested document (the walk seed set is sorted, each (node, walk)
// pair has its own RNG stream, and warm-start training is serial).
func TestIngestDeterministicSingleWorker(t *testing.T) {
	run := func() []Match {
		movies, reviews := fixtureCorpora(t)
		model, err := Build(movies, reviews, ingestTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := model.Ingest([]IngestDoc{
			{Side: 2, ID: "reviews:det", Values: []string{"Tarantino crime dialogue with Willis"}},
			{Side: 1, ID: "movies:det", Values: []string{"Reservoir Dogs", "Tarantino", "Harvey Keitel", "R", "Crime"}},
		}); err != nil {
			t.Fatal(err)
		}
		matches, err := model.TopK("reviews:det", 5)
		if err != nil {
			t.Fatal(err)
		}
		return matches
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ingest nondeterministic at rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}
