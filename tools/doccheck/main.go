// Command doccheck enforces the repository's godoc discipline: every
// exported package-level identifier — type, function, method, constant
// and variable — must carry a doc comment, and a comment that documents a
// single named declaration must start with that name (the golint
// convention, so godoc renders an indexed sentence).
//
// Usage:
//
//	go run ./tools/doccheck [dir]
//
// dir defaults to the current directory; the tool walks every .go file
// below it, skipping _test.go files, testdata and hidden directories.
// Grouped declarations (a const/var block, or specs sharing one line
// comment) are satisfied by a doc comment on the block. Exit status is
// non-zero when any exported identifier is undocumented, listing each as
// file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, ferr := checkFile(path)
		if ferr != nil {
			return ferr
		}
		problems = append(problems, file...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented or misdocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// checkFile parses one source file and returns a problem line per
// exported identifier that lacks a conforming doc comment.
func checkFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, name, msg string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, name, msg))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), d.Name.Name, "has no doc comment")
			} else if !startsWithName(d.Doc, d.Name.Name) {
				report(d.Pos(), d.Name.Name, "doc comment does not start with the identifier")
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return problems, nil
}

// checkGenDecl handles type/const/var declarations. A doc comment on the
// decl (block) covers every spec inside it; a spec with its own doc or
// trailing line comment is also documented. Single-identifier type specs
// must additionally start with the type name.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok == token.IMPORT {
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			if doc == nil {
				report(s.Pos(), s.Name.Name, "has no doc comment")
			} else if !startsWithName(doc, s.Name.Name) {
				report(s.Pos(), s.Name.Name, "doc comment does not start with the identifier")
			}
		case *ast.ValueSpec:
			specDoc := blockDoc || s.Doc != nil || s.Comment != nil
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !specDoc {
					report(name.Pos(), name.Name, "has no doc comment")
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (true for plain functions): exported methods on unexported types do not
// surface in godoc, mirroring golint's scope.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}

// startsWithName reports whether the comment's first word is the
// identifier, optionally preceded by "A", "An" or "The" (accepted godoc
// style for types) or a deprecation marker.
func startsWithName(doc *ast.CommentGroup, name string) bool {
	text := strings.TrimSpace(doc.Text())
	for _, prefix := range []string{"Deprecated:", "A ", "An ", "The "} {
		text = strings.TrimPrefix(text, prefix)
		text = strings.TrimSpace(text)
	}
	return strings.HasPrefix(text, name)
}
