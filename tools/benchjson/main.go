// Command benchjson runs the key build- and serve-side benchmarks and
// writes their ns/op, B/op and allocs/op to a JSON file (BENCH_build.json
// by default), so the performance trajectory is tracked across PRs
// instead of living only in PR descriptions. CI regenerates the file as
// an artifact on every run; committed snapshots mark the state at a PR
// boundary.
//
// Usage:
//
//	go run ./tools/benchjson [-out BENCH_build.json] [-benchtime 2x] [-bench regexp] [-pkg ./...]
//
// The default benchmark set covers the training hot path (graph build,
// random walks, Skip-gram and CBOW Word2Vec, end-to-end Build) and the
// serving hot path (IVF TopK, cached serve TopK).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the benchmarks that define the build/serve perf
// trajectory.
const defaultBench = "BenchmarkWord2VecSkipGram$|BenchmarkWord2VecCBOW$|BenchmarkRandomWalks$|" +
	"BenchmarkGraphBuild$|BenchmarkTopKIVF$|BenchmarkEndToEndPipeline$|BenchmarkServeTopKCached$"

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_build.json payload.
type Report struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	BenchTime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` output rows, e.g.
// "BenchmarkRandomWalks-8  50  6449439 ns/op  4118728 B/op  23 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_build.json", "output JSON path")
	benchTime := flag.String("benchtime", "2x", "go test -benchtime value")
	bench := flag.String("bench", defaultBench, "go test -bench regexp")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchTime, "-count", "1", *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	start := time.Now()
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	report := Report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, BenchTime: *benchTime}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			report.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, Result{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocsOp,
		})
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s in %s\n",
		len(report.Benchmarks), *out, time.Since(start).Round(time.Millisecond))
}
