// Command benchjson runs the key build- and serve-side benchmarks and
// appends their ns/op, B/op and allocs/op as one trajectory entry to a
// JSON file (BENCH_build.json by default), so the performance
// trajectory is tracked across PRs instead of living only in PR
// descriptions: old entries are preserved and the new entry is appended
// with a timestamp and an optional -label. Legacy single-entry files
// (one bare report object) are migrated into the first trajectory
// entry. CI regenerates the file as an artifact on every run; committed
// snapshots mark the state at a PR boundary.
//
// The trajectory schema lives in internal/benchfmt and is shared with
// cmd/tdload, whose latency/QPS measurements append to the same file.
//
// Usage:
//
//	go run ./tools/benchjson [-out BENCH_build.json] [-label pr4] [-benchtime 2x] [-bench regexp] [-pkg ./...]
//
// The default benchmark set covers the training hot path (graph build,
// random walks, Skip-gram and CBOW Word2Vec, end-to-end Build) and the
// serving hot path (single and batched flat TopK, IVF, SQ8 and HNSW
// TopK, HNSW graph construction, cached serve TopK, and the MatchAll
// family, sharded and unsharded). ANN TopK benchmarks also report
// recall@10 against the exact flat ranking, recorded per index kind in
// the trajectory's recall_at_10 field.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/tdmatch/tdmatch/internal/benchfmt"
)

// defaultBench selects the benchmarks that define the build/serve perf
// trajectory. BenchmarkIngestSingleDoc vs BenchmarkEndToEndPipeline is
// the ingest-vs-full-rebuild ratio (same corpora and configuration);
// BenchmarkIngestServerSingleDoc adds the serving layer's
// clone-and-swap on top. The Sharded pair measures the scatter-gather
// serving path against its unsharded counterparts
// (BenchmarkMatchAllParallelFlat, BenchmarkTopKBatch). The
// BenchmarkIngestSegmented series (1x/4x/16x corpora) tracks the
// segmented core's O(delta) claim: the three scales must stay flat.
// The BenchmarkIngestWAL series prices durability: the same server
// ingest with a write-ahead log under each fsync policy, so the
// always/interval/never tax stays visible in the trajectory. The
// BenchmarkLoadSnapshot pair is the cold-start ratio: gob decode vs
// zero-copy v6 mmap, each from file open to the first TopK answer —
// the mmap side must stay >= 10x ahead. The BenchmarkTopKHNSW /
// BenchmarkBuildHNSW pair tracks the graph ANN path: uncached query
// latency next to its one-time construction price, with recall@10
// alongside so the speedup is never bought with silent quality loss.
const defaultBench = "BenchmarkWord2VecSkipGram$|BenchmarkWord2VecCBOW$|BenchmarkRandomWalks$|" +
	"BenchmarkGraphBuild$|BenchmarkTopKMatch$|BenchmarkTopKBatch$|BenchmarkTopKIVF$|BenchmarkTopKSQ8$|" +
	"BenchmarkTopKHNSW$|BenchmarkBuildHNSW$|" +
	"BenchmarkMatchAllSerialFlat$|BenchmarkMatchAllParallelFlat$|BenchmarkMatchAllParallelIVF$|" +
	"BenchmarkMatchAllParallelSQ8$|BenchmarkMatchAllShardedFlat$|BenchmarkTopKBatchSharded$|" +
	"BenchmarkEndToEndPipeline$|BenchmarkServeTopKCached$|" +
	"BenchmarkIngestSingleDoc$|BenchmarkIngestServerSingleDoc$|" +
	"BenchmarkIngestSegmented/scale(1|4|16)x$|BenchmarkCompactOnline$|" +
	"BenchmarkIngestWAL/(always|interval|never)$|" +
	"BenchmarkLoadSnapshotGob$|BenchmarkLoadSnapshotMmap$"

// benchLine matches `go test -bench -benchmem` output rows, e.g.
// "BenchmarkRandomWalks-8  50  6449439 ns/op  4118728 B/op  23 allocs/op".
// Custom metrics print between ns/op and the -benchmem columns; the ANN
// benchmarks report one, "recall@10" (see bench_test.go), captured here
// as an optional group.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) recall@10)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_build.json", "output JSON path (appended to; old entries preserved)")
	label := flag.String("label", "", "label recorded on the new trajectory entry (e.g. a PR number)")
	benchTime := flag.String("benchtime", "2x", "go test -benchtime value")
	bench := flag.String("bench", defaultBench, "go test -bench regexp")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchTime, "-count", "1", *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	start := time.Now()
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	entry := benchfmt.Entry{
		Label:      *label,
		RecordedAt: start.UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		BenchTime:  *benchTime,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			entry.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var recall float64
		if m[4] != "" {
			recall, _ = strconv.ParseFloat(m[4], 64)
		}
		var bytesOp, allocsOp int64
		if m[5] != "" {
			bytesOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			allocsOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		entry.Benchmarks = append(entry.Benchmarks, benchfmt.Result{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocsOp,
			RecallAt10:  recall,
		})
	}
	if len(entry.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	count, err := benchfmt.Append(*out, entry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: appended entry %d (%d results) to %s in %s\n",
		count, len(entry.Benchmarks), *out, time.Since(start).Round(time.Millisecond))
}
