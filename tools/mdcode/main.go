// Command mdcode keeps documentation honest: it extracts every fenced
// ```go code block from the given markdown files and compiles each one
// against the repository, failing when a block no longer builds (say,
// after an API rename the docs missed).
//
// Usage (from the module root):
//
//	go run ./tools/mdcode README.md ARCHITECTURE.md
//
// Blocks are compiled in one of two modes:
//
//   - blocks containing top-level func/type/package declarations become a
//     standalone package file;
//   - statement blocks are wrapped into a function body, with a trailing
//     `_ = name` for every top-level `:=` binding so illustrative unused
//     variables do not fail the build.
//
// Imports are inferred from qualified identifiers (tdmatch.X, fmt.X, …)
// over a fixed allowlist of packages documentation is expected to use.
// Fence a block as ```text (or any non-go info string) to exempt it.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

// knownImports maps selector qualifiers appearing in documentation
// snippets to their import paths.
var knownImports = map[string]string{
	"tdmatch": "github.com/tdmatch/tdmatch",
	"fmt":     "fmt",
	"log":     "log",
	"os":      "os",
	"time":    "time",
	"strings": "strings",
	"http":    "net/http",
	"json":    "encoding/json",
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcode FILE.md ...")
		os.Exit(2)
	}
	totalFailed := 0
	for _, path := range os.Args[1:] {
		blocks, err := extractGoBlocks(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcode: %s: %v\n", path, err)
			os.Exit(1)
		}
		failed := 0
		for _, b := range blocks {
			if err := compileBlock(path, b); err != nil {
				fmt.Fprintf(os.Stderr, "mdcode: %s: code block at line %d does not compile:\n%v\n", path, b.line, err)
				failed++
			}
		}
		fmt.Printf("mdcode: %s: %d/%d go blocks compile\n", path, len(blocks)-failed, len(blocks))
		totalFailed += failed
	}
	if totalFailed > 0 {
		os.Exit(1)
	}
}

// block is one fenced ```go region: its content and the line of its
// opening fence, for error reporting.
type block struct {
	text string
	line int
}

// extractGoBlocks returns the ```go fenced blocks of a markdown file.
func extractGoBlocks(path string) ([]block, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var blocks []block
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		fence := strings.TrimSpace(lines[i])
		if fence != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		if j == len(lines) {
			return nil, fmt.Errorf("unclosed code fence at line %d", i+1)
		}
		blocks = append(blocks, block{text: strings.Join(lines[start:j], "\n"), line: i + 1})
		i = j
	}
	return blocks, nil
}

// assignRe captures the identifiers of a top-level short variable
// declaration, e.g. "model, err := ...".
var assignRe = regexp.MustCompile(`^([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*:=`)

// compileBlock renders one block as a compilable package in a throwaway
// directory under the module root and runs go build over it.
func compileBlock(mdPath string, b block) error {
	dir, err := os.MkdirTemp(".", "mdcode")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	src := renderBlock(b.text)
	if err := os.WriteFile(filepath.Join(dir, "block.go"), []byte(src), 0o644); err != nil {
		return err
	}
	out, err := exec.Command("go", "build", "./"+dir).CombinedOutput()
	if err != nil {
		return fmt.Errorf("%s\n--- generated source ---\n%s", out, src)
	}
	return nil
}

// renderBlock turns a documentation snippet into a standalone package:
// declaration blocks are emitted as-is, statement blocks are wrapped in a
// function body with `_ =` uses appended for top-level bindings.
func renderBlock(text string) string {
	if strings.HasPrefix(strings.TrimSpace(text), "package ") {
		return text
	}
	var sb strings.Builder
	sb.WriteString("package mdcode\n\n")
	var importLines []string
	for qual, path := range knownImports {
		if regexp.MustCompile(`\b` + qual + `\.`).MatchString(text) {
			if path == qual {
				importLines = append(importLines, fmt.Sprintf("\t%q", path))
			} else {
				importLines = append(importLines, fmt.Sprintf("\t%s %q", qual, path))
			}
		}
	}
	if len(importLines) > 0 {
		sb.WriteString("import (\n" + strings.Join(importLines, "\n") + "\n)\n\n")
	}
	declMode := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "func ") || strings.HasPrefix(line, "type ") ||
			strings.HasPrefix(line, "var ") || strings.HasPrefix(line, "const ") {
			declMode = true
			break
		}
	}
	if declMode {
		sb.WriteString(text)
		sb.WriteString("\n")
		return sb.String()
	}
	var names []string
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		m := assignRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, name := range strings.Split(m[1], ",") {
			name = strings.TrimSpace(name)
			if name != "_" && !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sb.WriteString("var _ = func() {\n")
	sb.WriteString(text)
	sb.WriteString("\n")
	for _, name := range names {
		sb.WriteString("\t_ = " + name + "\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
