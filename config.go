package tdmatch

import (
	"fmt"
	"runtime"
	"time"

	"github.com/tdmatch/tdmatch/internal/match"
)

// DefaultSQ8Rerank is the re-rank candidate multiplier an IndexSQ8
// model uses when Config.SQ8Rerank is 0.
const DefaultSQ8Rerank = match.DefaultSQ8Rerank

// DefaultHNSWM, DefaultHNSWEf and DefaultHNSWEfConstruct are the HNSW
// graph parameters an IndexHNSW model uses when the corresponding
// Config knob is 0.
const (
	DefaultHNSWM           = match.DefaultHNSWM
	DefaultHNSWEf          = match.DefaultHNSWEf
	DefaultHNSWEfConstruct = match.DefaultHNSWEfConstruct
)

// FilterStrategy selects how data nodes are filtered at graph creation
// (§II-B, Fig. 9).
type FilterStrategy uint8

const (
	// FilterIntersect is the paper's technique: the corpus with fewer
	// distinct tokens defines the vocabulary; terms exclusive to the other
	// corpus are dropped. The default.
	FilterIntersect FilterStrategy = iota
	// FilterNone keeps every term of both corpora.
	FilterNone
	// FilterTFIDF keeps each document's top-k TF-IDF tokens.
	FilterTFIDF
)

// CompressionStrategy selects the §III-B graph compression.
type CompressionStrategy uint8

const (
	// CompressNone disables compression (the paper's default pipeline;
	// compression is an optional trade-off, Table VIII).
	CompressNone CompressionStrategy = iota
	// CompressMSP samples shortest paths between cross-corpus metadata
	// node pairs (Algorithm 3).
	CompressMSP
)

// IndexKind selects the vector index serving TopK and MatchAll queries.
type IndexKind uint8

const (
	// IndexFlat is the exact ranking of the paper (§IV-B): a full cosine
	// scan over one contiguous vector arena. The default.
	IndexFlat IndexKind = iota
	// IndexIVF is a clustering-based approximate index: targets are
	// partitioned by k-means and queries probe only the nearest
	// IVFNProbe partitions — the cluster-pruning serving architecture of
	// the product-matching literature.
	IndexIVF
	// IndexSQ8 is a scalar-quantized index: target vectors are stored as
	// int8 codes with a per-row scale (4x less memory traffic on the
	// scan) and the top SQ8Rerank*k approximate candidates are re-scored
	// exactly in float32, which keeps recall@10 >= 0.99 at default
	// settings.
	IndexSQ8
	// IndexHNSW is a hierarchical navigable-small-world graph index:
	// queries descend a layered proximity graph and an ef-bounded beam
	// over the bottom layer collects candidates that are re-scored
	// exactly in float32, making per-query cost independent of corpus
	// size — the sublinear option for very large sides.
	IndexHNSW
)

// String returns the flag-style name of the index kind: "flat", "ivf",
// "sq8" or "hnsw" (or "indexkind(n)" for values outside the defined
// set).
func (k IndexKind) String() string {
	switch k {
	case IndexFlat:
		return "flat"
	case IndexIVF:
		return "ivf"
	case IndexSQ8:
		return "sq8"
	case IndexHNSW:
		return "hnsw"
	default:
		return fmt.Sprintf("indexkind(%d)", uint8(k))
	}
}

// Config parametrizes the pipeline. Zero values select paper defaults via
// Defaults(); construct from Defaults() and override selectively.
type Config struct {
	// Seed drives all randomness (walks, sampling, training order).
	Seed int64

	// MaxNGram is the largest multi-token term size (§II-D; default 3).
	MaxNGram int
	// Filter selects data-node filtering (§II-B; default intersect).
	Filter FilterStrategy
	// TFIDFTopK is the per-document token budget under FilterTFIDF.
	TFIDFTopK int
	// DisableMetadataEdges drops taxonomy parent-child edges (§V-F2
	// ablation; default false, i.e. edges present).
	DisableMetadataEdges bool

	// Bucketing merges numeric data nodes by equal-width binning with the
	// Freedman–Diaconis rule (§II-C).
	Bucketing bool
	// BucketWidth overrides the computed bucket width when > 0.
	BucketWidth float64
	// SynonymGroups merge known surface variants into one node (§II-C).
	SynonymGroups []Synonyms

	// Resource enables graph expansion (§III-A) when non-nil.
	Resource Resource
	// MaxRelationsPerNode caps KB relations fetched per node (0 = all).
	MaxRelationsPerNode int

	// Compression selects the §III-B strategy (default none).
	Compression CompressionStrategy
	// CompressionRatio is β of Algorithm 3 (default 0.5).
	CompressionRatio float64

	// NumWalks per node (§IV-A; paper default 100, library default 20 —
	// the quality plateau of Fig. 7 at laptop-friendly cost).
	NumWalks int
	// WalkLength in nodes (§IV-A; paper and library default 30, the
	// plateau of Fig. 6).
	WalkLength int

	// Dim is the embedding size (paper uses 300; default 96 keeps quality
	// at laptop-friendly cost — override for larger corpora).
	Dim int
	// Window is the Word2Vec context window. The paper uses 3 with
	// Skip-gram for text-to-data and 15 with CBOW for text tasks; 0 lets
	// Build choose from the corpus kinds.
	Window int
	// CBOW switches from Skip-gram to CBOW. Set ChooseObjective to let
	// Build pick per task, as in the paper.
	CBOW bool
	// ChooseObjective lets Build select Skip-gram/window-3 for table
	// tasks and CBOW/window-15 for text-only tasks (§V). Default true
	// via Defaults().
	ChooseObjective bool
	// Negative is the negative-sampling count (default 5).
	Negative int
	// Epochs over the walk corpus (default 2).
	Epochs int
	// Subsample is the frequent-token down-sampling threshold (word2vec's
	// `sample`; default 1e-3). High-degree metadata hubs occur in a large
	// share of walk tokens, and without down-sampling their vectors
	// diffuse — low-degree nodes then act as proxies of their single
	// neighbor and outrank genuinely related nodes. Set negative to
	// disable.
	Subsample float64
	// Workers bounds parallelism (default GOMAXPROCS). Training is
	// hogwild-parallel; set 1 for bit-reproducible output.
	Workers int

	// Index selects the serving index for TopK and MatchAll (default
	// IndexFlat, the paper's exact scan). TopKCombined and TopKBlocked
	// always use the exact index regardless.
	Index IndexKind
	// IVFClusters is the number of k-means partitions of an IVF index
	// (0 = ~sqrt of the corpus size).
	IVFClusters int
	// IVFNProbe is the number of partitions scanned per IVF query,
	// honored strictly when set. 0 selects half the partitions and
	// extends each query's probe set to cover at least 8×k candidates,
	// which keeps recall@10 >= 0.95 on the paper's corpora; raise toward
	// IVFClusters for higher recall.
	IVFNProbe int
	// ExactRecall forces approximate indexes to probe every partition,
	// guaranteeing rankings identical to IndexFlat — the parity knob for
	// validating an IVF deployment before lowering IVFNProbe.
	ExactRecall bool
	// SQ8Rerank is the re-rank candidate multiplier of an IndexSQ8
	// index: the quantized scan selects SQ8Rerank*k candidates that are
	// then re-scored exactly in float32 (0 = default 4). Raising it
	// trades scan savings for recall; SQ8Rerank >= corpus size / k makes
	// the ranking provably identical to IndexFlat.
	SQ8Rerank int
	// HNSWM caps the neighbor count per node on the upper layers of an
	// IndexHNSW graph (the bottom layer allows 2×HNSWM). 0 selects the
	// default (16); larger values raise recall and memory per node.
	HNSWM int
	// HNSWEf is the query-time beam width of an IndexHNSW index: the
	// bottom-layer search keeps the best HNSWEf candidates, all of which
	// are re-scored exactly. 0 selects the default (96); the beam is
	// always at least k, and when it would cover the whole corpus the
	// query delegates to the exact scan.
	HNSWEf int
	// HNSWEfConstruct is the construction-time beam width of an
	// IndexHNSW index (0 = default 128). Wider construction beams find
	// better neighbors — higher recall per unit of query beam — at
	// build-time cost.
	HNSWEfConstruct int

	// SegmentMaxDocs caps the mutable delta segment of the segmented
	// serving indexes: ingested documents accumulate in a small flat
	// delta segment, and once it reaches this many rows it is sealed
	// into an immutable segment (wrapped per Index, like the base).
	// Smaller values keep the always-rescanned delta tiny at the cost
	// of more segments to merge per query; Compact collapses the stack
	// back to one segment. 0 selects the default (512); negative
	// disables auto-sealing so the delta grows until the next Compact.
	SegmentMaxDocs int

	// ServeCacheSize bounds the Server result cache in entries, summed
	// across its shards (default 4096). Negative disables result caching;
	// 0 selects the default. Each entry holds one (document, k) ranking,
	// so the default is ~4096 × k Match values of resident memory.
	ServeCacheSize int
	// ServeShards partitions each side's serving index into contiguous
	// shards for scatter-gather top-k: query batches are scored per shard
	// in parallel on the worker pool and the per-shard heaps merged into
	// the exact global ranking, bit-identical to unsharded serving. 0
	// selects an automatic count from GOMAXPROCS and the corpus size
	// (small corpora stay unsharded); 1 or negative disables sharding.
	ServeShards int
	// ServeBatchWindow is how long Server.TopK holds an uncached query to
	// coalesce it with concurrent ones into a single worker-pool pass
	// (default 200µs — well under network latency, wide enough to gather
	// a burst). Negative disables micro-batching; 0 selects the default.
	ServeBatchWindow time.Duration

	// WALSync selects the serving write-ahead log's fsync policy:
	// "always" (fsync every append before it is acknowledged — the
	// default and the only policy under which an acked mutation survives
	// any crash), "interval" (fsync on a timer, amortizing the fsync cost
	// across bursts at the risk of losing up to one interval of acked
	// mutations) or "never" (leave flushing to the OS). Empty selects
	// "always"; tdserved's -wal-sync flag overrides.
	WALSync string
	// WALSyncInterval is the flush period under WALSync "interval"
	// (default 100ms).
	WALSyncInterval time.Duration

	// WalkBias enables kind-weighted walks, the typed-walk extension of
	// the paper's future work (§VII). Nil keeps uniform random walks.
	WalkBias *WalkBias

	// ReturnParam and InOutParam enable node2vec-style second-order walks
	// (the paper's cited alternative walk strategy, §IV-A): 1/ReturnParam
	// weights stepping back to the previous node, 1/InOutParam weights
	// moving away from its neighborhood. Both unset (0) or both 1 keeps
	// the paper's default uniform walk.
	ReturnParam float64
	InOutParam  float64
}

// WalkBias weights the random-walk step probability by the kind of the
// candidate next node. Weight 1 is neutral, 0 removes the kind from walk
// steps entirely (nodes still start their own walks). Zero-valued fields
// mean "unspecified" and default to 1.
type WalkBias struct {
	// Attribute weights table-column nodes; lowering it keeps walks from
	// ricocheting through high-degree attribute hubs.
	Attribute float64
	// Metadata weights tuple/snippet/concept nodes.
	Metadata float64
	// External weights nodes added by graph expansion.
	External float64
}

// Defaults returns the paper-faithful configuration at library scale.
func Defaults() Config {
	return Config{
		MaxNGram:         3,
		Filter:           FilterIntersect,
		CompressionRatio: 0.5,
		NumWalks:         20,
		WalkLength:       30,
		Dim:              96,
		Negative:         5,
		Epochs:           2,
		Subsample:        1e-2,
		ChooseObjective:  true,
		Workers:          runtime.GOMAXPROCS(0),
		SegmentMaxDocs:   512,
		ServeCacheSize:   4096,
		ServeBatchWindow: 200 * time.Microsecond,
		WALSync:          "always",
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.MaxNGram <= 0 {
		c.MaxNGram = d.MaxNGram
	}
	if c.CompressionRatio <= 0 {
		c.CompressionRatio = d.CompressionRatio
	}
	if c.NumWalks <= 0 {
		c.NumWalks = d.NumWalks
	}
	if c.WalkLength <= 0 {
		c.WalkLength = d.WalkLength
	}
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Negative <= 0 {
		c.Negative = d.Negative
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.Subsample == 0 {
		c.Subsample = d.Subsample
	} else if c.Subsample < 0 {
		c.Subsample = 0
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.SegmentMaxDocs == 0 {
		c.SegmentMaxDocs = d.SegmentMaxDocs
	}
	if c.ServeCacheSize == 0 {
		c.ServeCacheSize = d.ServeCacheSize
	}
	if c.ServeBatchWindow == 0 {
		c.ServeBatchWindow = d.ServeBatchWindow
	}
	if c.WALSync == "" {
		c.WALSync = d.WALSync
	}
	return c
}

// autoShardRows is the row count one shard should cover before auto
// sharding splits further: below it the scatter bookkeeping costs more
// than the partial scans save, so small corpora stay unsharded.
const autoShardRows = 256

// serveShards resolves the effective shard count for a serving index
// over n rows: explicit positive counts are honored exactly, negative
// disables sharding, and 0 selects min(GOMAXPROCS, n/autoShardRows).
func (c Config) serveShards(n int) int {
	if c.ServeShards > 0 {
		return c.ServeShards
	}
	if c.ServeShards < 0 {
		return 1
	}
	shards := n / autoShardRows
	if gm := runtime.GOMAXPROCS(0); shards > gm {
		shards = gm
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}
