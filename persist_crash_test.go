package tdmatch

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Crash-safety coverage for the version-5 snapshot: a payload cut short
// by a crashed writer, or corrupted at arbitrary offsets, must fail
// ReadSnapshot cleanly — no panic, and never a partial Bind that leaves
// the corpora half-mutated.

// segmentedSnapshot saves the multi-segment fixture model to bytes.
func segmentedSnapshot(t *testing.T) []byte {
	t.Helper()
	model := persistFixtureSegmentedModel(t)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pristineDocCount binds nothing and just counts the fixture corpora's
// documents, the reference for the no-partial-bind assertions.
func pristineDocCount(t *testing.T) int {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	return len(movies.IDs()) + len(reviews.IDs())
}

func TestSnapshotV5TruncationFailsCleanly(t *testing.T) {
	payload := segmentedSnapshot(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(77))
	cuts := []int{0, 1, len(payload) / 2, len(payload) - 1}
	for i := 0; i < 24; i++ {
		cuts = append(cuts, rng.Intn(len(payload)))
	}
	for _, n := range cuts {
		snap, err := ReadSnapshot(bytes.NewReader(payload[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", n, len(payload))
		}
		if snap != nil {
			t.Fatalf("truncation at %d returned a snapshot alongside the error", n)
		}
		// The clean failure happened before any corpus mutation.
		movies, reviews := fixtureCorpora(t)
		if _, err := LoadModel(bytes.NewReader(payload[:n]), movies, reviews); err == nil {
			t.Fatalf("LoadModel succeeded on a %d-byte truncation", n)
		}
		if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
			t.Fatalf("truncation at %d left the corpora partially bound: %d docs, want %d", n, got, want)
		}
	}
}

func TestSnapshotV5CorruptionFailsCleanlyOrLoadsWhole(t *testing.T) {
	payload := segmentedSnapshot(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(78))
	rejected := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		corrupt := append([]byte(nil), payload...)
		// One to four random byte flips per trial.
		for f := 0; f < 1+rng.Intn(4); f++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= byte(1 + rng.Intn(255))
		}
		snap, err := ReadSnapshot(bytes.NewReader(corrupt))
		if err != nil {
			rejected++
			// A rejected payload must reject before Bind can run, so the
			// corpora stay pristine by construction; spot-check via
			// LoadModel anyway.
			movies, reviews := fixtureCorpora(t)
			if _, lerr := LoadModel(bytes.NewReader(corrupt), movies, reviews); lerr == nil {
				t.Fatalf("trial %d: ReadSnapshot rejected but LoadModel accepted", i)
			}
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed load left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		// Flips that land in non-integrity-checked metadata (config
		// knobs, counters) can decode; the model must then bind whole
		// and serve, or fail without corpus damage — never bind halfway.
		movies, reviews := fixtureCorpora(t)
		model, err := snap.Bind(movies, reviews)
		if err != nil {
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed Bind left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		if model.Staleness() < 0 {
			t.Fatalf("trial %d: negative staleness after corrupted load", i)
		}
		if _, err := model.TopK(model.second.IDs()[0], 3); err != nil {
			t.Fatalf("trial %d: bound model cannot serve: %v", i, err)
		}
	}
	t.Logf("corruption trials: %d/%d rejected up front", rejected, trials)
	if rejected == 0 {
		t.Error("no corrupted payload was rejected — integrity checks appear dead")
	}
}

// v6SnapshotBytes saves the multi-segment fixture model in format v6.
func v6SnapshotBytes(t *testing.T) []byte {
	t.Helper()
	model := persistFixtureSegmentedModel(t)
	var buf bytes.Buffer
	if err := model.SaveV6(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotV6TruncationFailsCleanly fuzzes truncation points over a
// v6 payload: the header's embedded file size means every cut — in the
// header, the section table or any payload — must fail at open, under
// eager and lazy verification alike, with the corpora untouched.
func TestSnapshotV6TruncationFailsCleanly(t *testing.T) {
	payload := v6SnapshotBytes(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(79))
	cuts := []int{0, 1, 7, 8, v6HeaderSize - 1, v6HeaderSize, len(payload) / 2, len(payload) - 1}
	for i := 0; i < 24; i++ {
		cuts = append(cuts, rng.Intn(len(payload)))
	}
	dir := t.TempDir()
	for _, n := range cuts {
		if _, err := ReadSnapshot(bytes.NewReader(payload[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", n, len(payload))
		}
		movies, reviews := fixtureCorpora(t)
		if _, err := LoadModel(bytes.NewReader(payload[:n]), movies, reviews); err == nil {
			t.Fatalf("LoadModel succeeded on a %d-byte truncation", n)
		}
		if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
			t.Fatalf("truncation at %d left the corpora partially bound: %d docs, want %d", n, got, want)
		}
		// The lazy path skips payload checksums but still validates the
		// header and structure, so truncations fail it too.
		path := filepath.Join(dir, "trunc.v6")
		if err := os.WriteFile(path, payload[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshotFileVerify(path, VerifyLazy); err == nil {
			t.Fatalf("lazy open accepted a %d-byte truncation", n)
		}
	}
}

// TestSnapshotV6CorruptionFailsCleanlyOrBindsWhole fuzzes random byte
// flips over the whole v6 payload: under eager verification a flip is
// either rejected at open (header, table or payload checksum) or — when
// it lands in alignment padding, the only unchecksummed bytes — the
// model binds whole and serves. Never a partial bind.
func TestSnapshotV6CorruptionFailsCleanlyOrBindsWhole(t *testing.T) {
	payload := v6SnapshotBytes(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(80))
	rejected := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		corrupt := append([]byte(nil), payload...)
		for f := 0; f < 1+rng.Intn(4); f++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= byte(1 + rng.Intn(255))
		}
		snap, err := ReadSnapshot(bytes.NewReader(corrupt))
		if err != nil {
			rejected++
			movies, reviews := fixtureCorpora(t)
			if _, lerr := LoadModel(bytes.NewReader(corrupt), movies, reviews); lerr == nil {
				t.Fatalf("trial %d: ReadSnapshot rejected but LoadModel accepted", i)
			}
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed load left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		movies, reviews := fixtureCorpora(t)
		model, err := snap.Bind(movies, reviews)
		if err != nil {
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed Bind left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		if _, err := model.TopK(model.second.IDs()[0], 3); err != nil {
			t.Fatalf("trial %d: bound model cannot serve: %v", i, err)
		}
	}
	t.Logf("v6 corruption trials: %d/%d rejected up front", rejected, trials)
	if rejected == 0 {
		t.Error("no corrupted v6 payload was rejected — integrity checks appear dead")
	}
}

// TestSnapshotV6TargetedFlipsRejected flips bytes inside each
// checksummed region — header, section table, and every section payload
// — and requires eager verification to reject all of them: unlike the
// random sweep above, no flip here may slip through.
func TestSnapshotV6TargetedFlipsRejected(t *testing.T) {
	payload := v6SnapshotBytes(t)
	nSecs := int(binary.LittleEndian.Uint32(payload[16:20]))
	rng := rand.New(rand.NewSource(81))
	flipAt := func(pos int, what string) {
		corrupt := append([]byte(nil), payload...)
		corrupt[pos] ^= byte(1 + rng.Intn(255))
		if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("flip in %s (offset %d) was accepted", what, pos)
		}
	}
	// Header flips stay inside the checksummed bytes [0, 48) — the
	// trailing reserved zeros are deliberately outside the digest.
	for i := 0; i < 8; i++ {
		flipAt(rng.Intn(48), "header")
		flipAt(v6HeaderSize+rng.Intn(nSecs*v6EntrySize), "section table")
	}
	// One flip inside every section payload, via the table's own
	// offsets/lengths.
	for s := 0; s < nSecs; s++ {
		e := payload[v6HeaderSize+s*v6EntrySize:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if length == 0 {
			continue
		}
		flipAt(int(off)+rng.Intn(int(length)), "section payload")
	}
}

// TestSnapshotV5ChecksumCatchesVectorTamper pins the checksum itself:
// flipping one bit inside a stored vector row — which plain gob
// decoding would happily accept — must fail validation.
func TestSnapshotV5ChecksumCatchesVectorTamper(t *testing.T) {
	model := persistFixtureSegmentedModel(t)
	sm := reSaved(t, model)
	if len(sm.FirstSegments) == 0 || len(sm.Arena) == 0 {
		t.Fatal("fixture payload has no segment manifest or arena")
	}
	if err := sm.validateSegments(); err != nil {
		t.Fatalf("pristine payload failed validation: %v", err)
	}
	tampered := sm
	tampered.Arena = append([]float32(nil), sm.Arena...)
	tampered.Arena[len(tampered.Arena)/2] += 1e-3
	if err := tampered.validateSegments(); err == nil {
		t.Error("vector tamper passed segment checksum validation")
	}
	// And an ID swap between two segments must be caught too.
	if len(sm.SecondSegments) >= 2 && len(sm.SecondSegments[0].IDs) > 0 && len(sm.SecondSegments[1].IDs) > 0 {
		swapped := sm
		segs := append([]savedSegment(nil), sm.SecondSegments...)
		ids0 := append([]string(nil), segs[0].IDs...)
		ids1 := append([]string(nil), segs[1].IDs...)
		ids0[0], ids1[0] = ids1[0], ids0[0]
		segs[0].IDs, segs[1].IDs = ids0, ids1
		swapped.SecondSegments = segs
		if err := swapped.validateSegments(); err == nil {
			t.Error("cross-segment ID swap passed checksum validation")
		}
	}
}
