package tdmatch

import (
	"bytes"
	"math/rand"
	"testing"
)

// Crash-safety coverage for the version-5 snapshot: a payload cut short
// by a crashed writer, or corrupted at arbitrary offsets, must fail
// ReadSnapshot cleanly — no panic, and never a partial Bind that leaves
// the corpora half-mutated.

// segmentedSnapshot saves the multi-segment fixture model to bytes.
func segmentedSnapshot(t *testing.T) []byte {
	t.Helper()
	model := persistFixtureSegmentedModel(t)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pristineDocCount binds nothing and just counts the fixture corpora's
// documents, the reference for the no-partial-bind assertions.
func pristineDocCount(t *testing.T) int {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	return len(movies.IDs()) + len(reviews.IDs())
}

func TestSnapshotV5TruncationFailsCleanly(t *testing.T) {
	payload := segmentedSnapshot(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(77))
	cuts := []int{0, 1, len(payload) / 2, len(payload) - 1}
	for i := 0; i < 24; i++ {
		cuts = append(cuts, rng.Intn(len(payload)))
	}
	for _, n := range cuts {
		snap, err := ReadSnapshot(bytes.NewReader(payload[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", n, len(payload))
		}
		if snap != nil {
			t.Fatalf("truncation at %d returned a snapshot alongside the error", n)
		}
		// The clean failure happened before any corpus mutation.
		movies, reviews := fixtureCorpora(t)
		if _, err := LoadModel(bytes.NewReader(payload[:n]), movies, reviews); err == nil {
			t.Fatalf("LoadModel succeeded on a %d-byte truncation", n)
		}
		if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
			t.Fatalf("truncation at %d left the corpora partially bound: %d docs, want %d", n, got, want)
		}
	}
}

func TestSnapshotV5CorruptionFailsCleanlyOrLoadsWhole(t *testing.T) {
	payload := segmentedSnapshot(t)
	want := pristineDocCount(t)
	rng := rand.New(rand.NewSource(78))
	rejected := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		corrupt := append([]byte(nil), payload...)
		// One to four random byte flips per trial.
		for f := 0; f < 1+rng.Intn(4); f++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= byte(1 + rng.Intn(255))
		}
		snap, err := ReadSnapshot(bytes.NewReader(corrupt))
		if err != nil {
			rejected++
			// A rejected payload must reject before Bind can run, so the
			// corpora stay pristine by construction; spot-check via
			// LoadModel anyway.
			movies, reviews := fixtureCorpora(t)
			if _, lerr := LoadModel(bytes.NewReader(corrupt), movies, reviews); lerr == nil {
				t.Fatalf("trial %d: ReadSnapshot rejected but LoadModel accepted", i)
			}
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed load left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		// Flips that land in non-integrity-checked metadata (config
		// knobs, counters) can decode; the model must then bind whole
		// and serve, or fail without corpus damage — never bind halfway.
		movies, reviews := fixtureCorpora(t)
		model, err := snap.Bind(movies, reviews)
		if err != nil {
			if got := len(movies.IDs()) + len(reviews.IDs()); got != want {
				t.Fatalf("trial %d: failed Bind left corpora partially bound: %d docs, want %d", i, got, want)
			}
			continue
		}
		if model.Staleness() < 0 {
			t.Fatalf("trial %d: negative staleness after corrupted load", i)
		}
		if _, err := model.TopK(model.second.IDs()[0], 3); err != nil {
			t.Fatalf("trial %d: bound model cannot serve: %v", i, err)
		}
	}
	t.Logf("corruption trials: %d/%d rejected up front", rejected, trials)
	if rejected == 0 {
		t.Error("no corrupted payload was rejected — integrity checks appear dead")
	}
}

// TestSnapshotV5ChecksumCatchesVectorTamper pins the checksum itself:
// flipping one bit inside a stored vector row — which plain gob
// decoding would happily accept — must fail validation.
func TestSnapshotV5ChecksumCatchesVectorTamper(t *testing.T) {
	model := persistFixtureSegmentedModel(t)
	sm := reSaved(t, model)
	if len(sm.FirstSegments) == 0 || len(sm.Arena) == 0 {
		t.Fatal("fixture payload has no segment manifest or arena")
	}
	if err := sm.validateSegments(); err != nil {
		t.Fatalf("pristine payload failed validation: %v", err)
	}
	tampered := sm
	tampered.Arena = append([]float32(nil), sm.Arena...)
	tampered.Arena[len(tampered.Arena)/2] += 1e-3
	if err := tampered.validateSegments(); err == nil {
		t.Error("vector tamper passed segment checksum validation")
	}
	// And an ID swap between two segments must be caught too.
	if len(sm.SecondSegments) >= 2 && len(sm.SecondSegments[0].IDs) > 0 && len(sm.SecondSegments[1].IDs) > 0 {
		swapped := sm
		segs := append([]savedSegment(nil), sm.SecondSegments...)
		ids0 := append([]string(nil), segs[0].IDs...)
		ids1 := append([]string(nil), segs[1].IDs...)
		ids0[0], ids1[0] = ids1[0], ids0[0]
		segs[0].IDs, segs[1].IDs = ids0, ids1
		swapped.SecondSegments = segs
		if err := swapped.validateSegments(); err == nil {
			t.Error("cross-segment ID swap passed checksum validation")
		}
	}
}
