package tdmatch

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/tdmatch/tdmatch/internal/wal"
)

// writerOf adapts fixed bytes to saveFileFS's save callback.
func writerOf(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

// TestSaveFileSyncsDirOnCrash pins the directory-fsync step of the
// atomic snapshot-replace protocol: on a filesystem where renames are
// volatile until their parent directory is fsynced (MemFS with
// TrackDirSync), a completed saveFileFS must survive a crash — which it
// only does because the protocol ends with SyncDir. Dropping that call
// turns this test red.
func TestSaveFileSyncsDirOnCrash(t *testing.T) {
	t.Run("completed save survives crash", func(t *testing.T) {
		fs := wal.NewMemFS()
		fs.TrackDirSync(true)
		if err := saveFileFS("dir/model", fs, writerOf([]byte("v1"))); err != nil {
			t.Fatal(err)
		}
		if err := saveFileFS("dir/model", fs, writerOf([]byte("v2"))); err != nil {
			t.Fatal(err)
		}
		fs.Crash(0)
		if got := fs.FileBytes("dir/model"); !bytes.Equal(got, []byte("v2")) {
			t.Fatalf("snapshot after crash = %q, want the completed save", got)
		}
		if fs.FileBytes("dir/model.tmp") != nil {
			t.Fatal("tmp sidecar survived a completed save")
		}
	})
	t.Run("failed save leaves previous snapshot", func(t *testing.T) {
		fs := wal.NewMemFS()
		fs.TrackDirSync(true)
		if err := saveFileFS("dir/model", fs, writerOf([]byte("v1"))); err != nil {
			t.Fatal(err)
		}
		boom := errors.New("boom")
		fs.SetSyncError(boom)
		if err := saveFileFS("dir/model", fs, writerOf([]byte("v2"))); !errors.Is(err, boom) {
			t.Fatalf("saveFileFS error = %v, want %v", err, boom)
		}
		fs.SetSyncError(nil)
		fs.Crash(0)
		if got := fs.FileBytes("dir/model"); !bytes.Equal(got, []byte("v1")) {
			t.Fatalf("snapshot after failed save = %q, want the previous one", got)
		}
		if fs.FileBytes("dir/model.tmp") != nil {
			t.Fatal("tmp sidecar left behind by a failed save")
		}
	})
	t.Run("save error removes sidecar", func(t *testing.T) {
		fs := wal.NewMemFS()
		fs.TrackDirSync(true)
		boom := errors.New("encode failed")
		err := saveFileFS("dir/model", fs, func(io.Writer) error { return boom })
		if !errors.Is(err, boom) {
			t.Fatalf("saveFileFS error = %v, want %v", err, boom)
		}
		if fs.FileBytes("dir/model.tmp") != nil {
			t.Fatal("tmp sidecar left behind by a failed encode")
		}
		if fs.FileBytes("dir/model") != nil {
			t.Fatal("failed first save materialized a target file")
		}
	})
}
