// Quickstart: match free-text reviews against a small movie table with the
// default pipeline — the minimal end-to-end use of the tdmatch API.
package main

import (
	"fmt"
	"log"

	"github.com/tdmatch/tdmatch"
)

func main() {
	movies, err := tdmatch.NewTable("movies",
		[]string{"title", "director", "star", "genre"},
		[][]string{
			{"The Sixth Sense", "Shyamalan", "Bruce Willis", "Thriller"},
			{"Pulp Fiction", "Tarantino", "Bruce Willis", "Drama"},
			{"The Godfather", "Coppola", "Marlon Brando", "Crime"},
		}, nil)
	if err != nil {
		log.Fatal(err)
	}

	reviews, err := tdmatch.NewText("reviews", []string{
		"Willis sees dead people in this tense Shyamalan thriller",
		"a hilarious Tarantino movie starring Willis and Jackson",
		"Brando rules the crime family in this timeless masterpiece",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdmatch.Defaults()
	cfg.Seed = 1

	model, err := tdmatch.Build(movies, reviews, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("graph: %d nodes, %d edges, trained in %s\n\n",
		st.GraphNodes, st.GraphEdges, st.TrainTime.Round(1000000))

	for _, reviewID := range reviews.IDs() {
		matches, err := model.TopK(reviewID, 2)
		if err != nil {
			log.Fatal(err)
		}
		text, _ := reviews.DocText(reviewID)
		fmt.Printf("review %q\n", text)
		for rank, m := range matches {
			title, _ := movies.DocText(m.ID)
			fmt.Printf("  %d. %-50s score %.3f\n", rank+1, title, m.Score)
		}
		fmt.Println()
	}
}
