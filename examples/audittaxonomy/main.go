// Audit taxonomy: the paper's Example 2 — match enterprise manual
// paragraphs to concepts of an auditing taxonomy to support search.
// Demonstrates structured-text corpora (parent edges in the graph),
// acronym merging (PDCA → "plan do check act"), and path-based output.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/tdmatch/tdmatch"
)

func main() {
	taxonomy, err := tdmatch.NewTaxonomy("tax", []tdmatch.TaxonomyNode{
		{ID: "tax:root", Text: "Audit"},
		{ID: "tax:mgmt", Text: "Management system audit", Parent: "tax:root"},
		{ID: "tax:prog", Text: "Audit programme", Parent: "tax:mgmt"},
		{ID: "tax:pdca", Text: "Plan do check act steps", Parent: "tax:prog"},
		{ID: "tax:iso", Text: "ISO 19001 guidance", Parent: "tax:prog"},
		{ID: "tax:risk", Text: "Risk assessment", Parent: "tax:root"},
		{ID: "tax:ctrl", Text: "Internal control evaluation", Parent: "tax:risk"},
		{ID: "tax:fraud", Text: "Fraud detection procedures", Parent: "tax:risk"},
		{ID: "tax:fin", Text: "Financial reporting", Parent: "tax:root"},
		{ID: "tax:disc", Text: "Disclosure completeness", Parent: "tax:fin"},
		{ID: "tax:reval", Text: "Asset valuation review", Parent: "tax:fin"},
	})
	if err != nil {
		log.Fatal(err)
	}

	manual, err := tdmatch.NewText("manual", []string{
		"the planning of the audit programme follows the PDCA cycle before fieldwork begins",
		"auditors assess the risk of fraud and evaluate internal controls over payments",
		"the completeness of disclosures in the financial statements must be verified",
		"asset valuations are reviewed against market benchmarks at year end",
		"ISO 19001 provides guidance for managing an audit programme",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdmatch.Defaults()
	cfg.Seed = 3
	cfg.NumWalks = 60
	// Without this merge the acronym and its expansion are separate nodes
	// and paragraph 0 loses its strongest signal (the paper's PDCA case).
	cfg.SynonymGroups = []tdmatch.Synonyms{
		{Canonical: "plan do check act", Variants: []string{"pdca"}},
	}

	model, err := tdmatch.Build(taxonomy, manual, cfg)
	if err != nil {
		log.Fatal(err)
	}

	paths := taxonomy.Paths()
	for _, paraID := range manual.IDs() {
		matches, err := model.TopK(paraID, 2)
		if err != nil {
			log.Fatal(err)
		}
		text, _ := manual.DocText(paraID)
		fmt.Printf("paragraph: %q\n", text)
		for _, m := range matches {
			labels := make([]string, 0, len(paths[m.ID]))
			for _, node := range paths[m.ID] {
				label, _ := taxonomy.DocText(node)
				labels = append(labels, label)
			}
			fmt.Printf("   %.3f  %s\n", m.Score, strings.Join(labels, " > "))
		}
		fmt.Println()
	}
}
