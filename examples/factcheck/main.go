// Fact checking: text-to-text matching in the style of the paper's Snopes
// and Politifact experiments — rank verified claims (facts) for each input
// claim, using knowledge-base expansion to bridge paraphrases ("plummeted"
// vs "collapsed") that share no surface tokens.
package main

import (
	"fmt"
	"log"

	"github.com/tdmatch/tdmatch"
)

func main() {
	facts, err := tdmatch.NewText("facts", []string{
		"unemployment collapsed in spain after the tourism recovery of 2022",
		"the senator denied raising taxes on fuel during the campaign",
		"hospital spending doubled in the northern region between 2019 and 2021",
		"the ministry confirmed that school funding increased for rural districts",
		"inflation stabilized after the central bank raised interest rates",
		"the company admitted delaying safety inspections at two plants",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	claims, err := tdmatch.NewText("claims", []string{
		"spain says joblessness plummeted thanks to tourists",
		"senator rejects claims he hiked fuel taxes",
		"northern hospitals now spend twice as much as before the pandemic",
		"rural schools are finally getting more money",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdmatch.Defaults()
	cfg.Seed = 11
	cfg.NumWalks = 60
	// ConceptNet-style paraphrase relations: without them, "plummeted" and
	// "collapsed" never share a path.
	cfg.Resource = tdmatch.NewMemoryResource([][3]string{
		{"collaps", "relatedTo", "plummet"},
		{"unemploy", "relatedTo", "jobless"},
		{"tax", "relatedTo", "hike"},
		{"doubl", "relatedTo", "twice"},
		{"increas", "relatedTo", "money"},
		{"deni", "relatedTo", "reject"},
		{"tourism", "relatedTo", "tourist"},
	})

	model, err := tdmatch.Build(facts, claims, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("graph %d nodes / %d edges, expanded to %d / %d\n\n",
		st.GraphNodes, st.GraphEdges, st.ExpandedNodes, st.ExpandedEdges)

	for _, claimID := range claims.IDs() {
		matches, err := model.TopK(claimID, 2)
		if err != nil {
			log.Fatal(err)
		}
		claim, _ := claims.DocText(claimID)
		fmt.Printf("claim: %q\n", claim)
		for rank, m := range matches {
			fact, _ := facts.DocText(m.ID)
			fmt.Printf("  %d. (%.3f) %s\n", rank+1, m.Score, fact)
		}
		fmt.Println()
	}
}
