// Movie reviews: the paper's Example 1 at a realistic size — link product
// reviews without identifiers to the tuples they describe, exercising the
// features that make the task hard: surface name variants ("B. Willis"),
// genre synonyms ("funny" for a Drama-labelled movie), and knowledge-base
// expansion that adds the bridging path style(Tarantino, Comedy).
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/tdmatch/tdmatch"
)

func main() {
	movies, err := tdmatch.NewTable("movies",
		[]string{"title", "director", "star1", "star2", "year", "genre"},
		[][]string{
			{"The Sixth Sense", "M. Night Shyamalan", "Bruce Willis", "Haley Osment", "1999", "Thriller"},
			{"Pulp Fiction", "Quentin Tarantino", "Bruce Willis", "Samuel Jackson", "1994", "Drama"},
			{"Jackie Brown", "Quentin Tarantino", "Pam Grier", "Samuel Jackson", "1997", "Crime"},
			{"Die Hard", "John McTiernan", "Bruce Willis", "Alan Rickman", "1988", "Action"},
			{"The Village", "M. Night Shyamalan", "Joaquin Phoenix", "Bryce Howard", "2004", "Thriller"},
			{"Kill Bill", "Quentin Tarantino", "Uma Thurman", "David Carradine", "2003", "Action"},
		}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Reviews never name their movie directly; like real reviews they use
	// last names, initials and colloquial genre words.
	reviews, err := tdmatch.NewText("reviews", []string{
		"a comedy by Tarantino starring Willis with sharp dialogue and a twisting timeline",
		"B. Willis sees dead people in a moody nineties ghost story with a famous twist",
		"Grier owns every scene while Jackson schemes in this slow burn heist",
		"Rickman is a perfect villain against a barefoot Willis in a tower under siege",
		"Thurman slices through enemies in a stylized revenge spectacle",
		"Phoenix wanders a fenced woodland village hiding a secret",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tdmatch.Defaults()
	cfg.Seed = 7
	cfg.NumWalks = 40
	// Surface variants merge into one data node (§II-C).
	cfg.SynonymGroups = []tdmatch.Synonyms{
		{Canonical: "bruce willi", Variants: []string{"b willi"}},
	}
	// DBpedia-style facts the corpora do not state (§III-A): the famous
	// style(Tarantino, Comedy) triple bridges review 0 to Pulp Fiction.
	cfg.Resource = tdmatch.NewMemoryResource([][3]string{
		{"tarantino", "style", "comedi"},
		{"tarantino", "directorOf", "pulp fiction"},
		{"willi", "starringOf", "pulp fiction"},
		{"willi", "starringOf", "die hard"},
		{"shyamalan", "directorOf", "sixth sens"},
		{"jackson", "starringOf", "jacki brown"},
	})

	model, err := tdmatch.Build(movies, reviews, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("graph %d→%d nodes after expansion, %d merged terms\n\n",
		st.GraphNodes, st.ExpandedNodes, st.MergedTerms)

	want := []string{"Pulp Fiction", "The Sixth Sense", "Jackie Brown",
		"Die Hard", "Kill Bill", "The Village"}
	correct := 0
	for i, reviewID := range reviews.IDs() {
		matches, err := model.TopK(reviewID, 3)
		if err != nil {
			log.Fatal(err)
		}
		top, _ := movies.DocText(matches[0].ID)
		mark := " "
		if strings.Contains(top, want[i]) {
			mark = "*"
			correct++
		}
		text, _ := reviews.DocText(reviewID)
		fmt.Printf("%s review %d: %.60q\n   -> %s (%.3f)\n", mark, i, text, top, matches[0].Score)
	}
	fmt.Printf("\n%d/%d reviews matched to the right movie\n", correct, len(want))
}
