// Command tdserved is the long-running serving daemon: it loads a model
// snapshot persisted with SaveFile (see cmd/tdmatch's -save) plus the two
// corpora it was trained on, and serves JSON-over-HTTP matching queries
// behind a result cache and a micro-batching worker pool.
//
// Usage:
//
//	tdmatch  -first movies.csv -second reviews.txt -save model.gob
//	tdserved -first movies.csv -second reviews.txt -model model.gob -addr :8080
//
// Endpoints:
//
//	POST /v1/topk    {"id": "second:p0", "k": 5}        → one ranking
//	POST /v1/batch   {"ids": ["second:p0", ...], "k": 5} → many, fanned out
//	POST /v1/ingest  {"docs": [{"side": 2, "id": "...", "values": ["..."]}]}
//	POST /v1/remove  {"ids": ["second:p0", ...]}
//	POST /v1/compact retrain off-line, swap in the compacted model
//	POST /v1/reload  reload corpora + snapshot from disk, swap atomically
//	GET  /v1/stats   serving counters, cache hit rate, model metadata
//	GET  /healthz    liveness: 200 with the served model's identity
//	GET  /readyz     readiness: 200 when accepting traffic, 503 draining
//
// /v1/ingest and /v1/remove mutate the served model live: the daemon
// clones it, applies the delta (graph patch + warm-start fine-tune on a
// trained model, term fold-in on a snapshot-restored one, appendable
// index update either way) and swaps the clone in atomically — queries
// issued afterwards see the new corpus immediately, and the result
// cache is invalidated by the generation bump.
//
// With -wal set, every acknowledged mutation is appended to a durable
// write-ahead log before it becomes visible: a crashed daemon replays
// the log against the snapshot on restart and loses no acknowledged
// write (under the default -wal-sync=always; see the README ops runbook
// for the fsync-policy tradeoffs). Snapshot saves and successful
// compactions checkpoint the log. Without -wal, live deltas exist only
// in memory until the snapshot is re-saved, and a reload from disk
// reverts them.
//
// SIGHUP triggers the same reload as POST /v1/reload: the daemon re-reads
// the corpus and snapshot files and swaps the new model in behind the
// in-flight queries. Retrain with cmd/tdmatch, overwrite the snapshot,
// signal the daemon — zero downtime. SIGTERM and SIGINT shut down
// gracefully: readiness flips to 503, in-flight requests drain (bounded
// by -drain-timeout), the WAL is flushed, and with -exit-snapshot the
// model is saved and the log rotated before exit.
//
// Overload degrades instead of cascading: request bodies are capped
// (-max-body, 413 beyond it), admission is bounded (-max-inflight, 503
// with Retry-After when saturated or draining), and queries carry a
// deadline (-query-timeout, 503 with Retry-After on expiry).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/tdmatch/tdmatch"
)

func main() {
	var (
		firstPath  = flag.String("first", "", "first corpus file (as passed to the training run)")
		secondPath = flag.String("second", "", "second corpus file (as passed to the training run)")
		modelPath  = flag.String("model", "", "model snapshot written by tdmatch -save / SaveFile")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		cacheSize  = flag.Int("cache", 0, "result-cache entries (0 = model default 4096, negative disables)")
		batchWin   = flag.Duration("batch-window", 0, "micro-batch coalescing window (0 = model default 200µs, negative disables)")
		workers    = flag.Int("workers", 0, "serving worker-pool size (0 = model default, GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "scatter-gather shards per serving index (0 = model/auto, negative disables)")
		defaultK   = flag.Int("k", 5, "matches returned when a request omits k")

		walPath      = flag.String("wal", "", "write-ahead log path; empty serves without durability")
		walSync      = flag.String("wal-sync", "", "WAL fsync policy: always, interval or never (empty = model config, default always)")
		walInterval  = flag.Duration("wal-sync-interval", 0, "flush period under -wal-sync=interval (0 = default 100ms)")
		maxBody      = flag.Int64("max-body", 0, "request body cap in bytes (0 = default 8 MiB, negative disables)")
		maxInflight  = flag.Int("max-inflight", 0, "admission cap on concurrent requests (0 = default 256, negative disables)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline for /v1/topk and /v1/batch (0 = default 2s, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		exitSnapshot = flag.Bool("exit-snapshot", false, "save the model snapshot (and rotate the WAL) on graceful shutdown")
		compactAbove = flag.Int("compact-above", 0, "staleness threshold for background compaction (0 disables)")
		compactEvery = flag.Duration("compact-interval", 30*time.Second, "background compaction poll period")
		snapFormat   = flag.String("snapshot-format", "v6", "format for checkpoint and exit snapshots: v6 (flat, mmap-loadable) or gob; loads auto-detect")
		snapVerify   = flag.String("snapshot-verify", "eager", "v6 snapshot verification at load: eager (every section checksum) or lazy (header and structure only)")
	)
	flag.Parse()
	if *firstPath == "" || *secondPath == "" || *modelPath == "" {
		fmt.Fprintln(os.Stderr, "tdserved: -first, -second and -model are required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := newDaemon(*firstPath, *secondPath, *modelPath, tdmatch.ServeConfig{
		CacheSize:   *cacheSize,
		BatchWindow: *batchWin,
		Workers:     *workers,
	}, *defaultK, *shards, daemonOptions{
		walPath:      *walPath,
		walSync:      *walSync,
		walInterval:  *walInterval,
		maxBody:      *maxBody,
		maxInflight:  *maxInflight,
		queryTimeout: *queryTimeout,
		snapFormat:   *snapFormat,
		snapVerify:   *snapVerify,
	})
	if err != nil {
		log.Fatalf("tdserved: %v", err)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := d.reload(); err != nil {
				log.Printf("tdserved: SIGHUP reload failed, keeping current model: %v", err)
				continue
			}
			log.Printf("tdserved: SIGHUP reload ok (%d reloads)", d.server.Stats().Reloads)
		}
	}()

	bgCtx, bgCancel := context.WithCancel(context.Background())
	defer bgCancel()
	if *compactAbove > 0 {
		go d.compactLoop(bgCtx, *compactAbove, *compactEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tdserved: listening on %s: %v", *addr, err)
	}
	info := d.info()
	log.Printf("tdserved: serving %s/%s (%d vectors, dim %d, index %s) on %s",
		info.FirstName, info.SecondName, info.Docs, info.Dim, info.Index, ln.Addr())

	srv := &http.Server{Handler: newHandler(d)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		log.Fatalf("tdserved: serve: %v", err)
	case sig := <-stop:
		log.Printf("tdserved: %s received, draining (budget %s)", sig, *drainTimeout)
	}
	bgCancel()
	os.Exit(d.shutdown(srv, *drainTimeout, *exitSnapshot))
}

// daemonOptions are the operational knobs of the daemon beyond the
// embedded Server's tuning: durability, admission control and deadlines.
// Zero values select the documented defaults; negative values disable
// the corresponding limit.
type daemonOptions struct {
	walPath      string
	walSync      string
	walInterval  time.Duration
	maxBody      int64
	maxInflight  int
	queryTimeout time.Duration
	// snapFormat selects the format checkpoint/exit snapshots are written
	// in ("v6", the default, or "gob"); snapVerify the v6 load-time
	// verification depth ("eager", the default, or "lazy").
	snapFormat string
	snapVerify string
}

// daemon owns the serving state: the Server plus the on-disk paths a
// reload re-reads. reloadMu serializes reloads (concurrent /v1/reload
// posts and SIGHUPs get a consistent swap order); queries — including
// /healthz and /v1/stats, which must stay responsive while a slow
// reload rebuilds indexes — never take it (modelInf is an atomic).
type daemon struct {
	firstPath, secondPath, modelPath string
	defaultK                         int
	// shards is the -shards override applied to every loaded model
	// (0 leaves the model's own Config.ServeShards resolution in place).
	shards  int
	server  *tdmatch.Server
	started time.Time

	// wal is the durability log (nil without -wal). The daemon owns its
	// lifecycle: opened and replayed before serving, flushed and closed
	// on shutdown, rotated on snapshot saves and compactions.
	wal *tdmatch.WAL

	// draining flips once shutdown starts: /readyz turns 503 and guarded
	// endpoints shed with Retry-After while http.Server.Shutdown drains
	// the in-flight requests.
	draining atomic.Bool
	// inflight is the admission semaphore (nil = unbounded): a request
	// that cannot take a slot without blocking is shed with 503.
	inflight     chan struct{}
	maxBody      int64
	queryTimeout time.Duration

	// snapFormat is the checkpoint output format ("v6" or "gob");
	// verify the v6 load-time verification mode.
	snapFormat string
	verify     tdmatch.VerifyMode

	reloadMu sync.Mutex
	modelInf atomic.Pointer[tdmatch.ModelInfo]
}

// newDaemon loads the corpora and snapshot, replays the WAL (when
// configured) and wraps the recovered model in a Server.
func newDaemon(firstPath, secondPath, modelPath string, sc tdmatch.ServeConfig, defaultK, shards int, opts daemonOptions) (*daemon, error) {
	d := &daemon{
		firstPath:  firstPath,
		secondPath: secondPath,
		modelPath:  modelPath,
		defaultK:   defaultK,
		shards:     shards,
		started:    time.Now(),
	}
	if opts.maxBody == 0 {
		opts.maxBody = 8 << 20
	}
	if opts.maxBody > 0 {
		d.maxBody = opts.maxBody
	}
	if opts.maxInflight == 0 {
		opts.maxInflight = 256
	}
	if opts.maxInflight > 0 {
		d.inflight = make(chan struct{}, opts.maxInflight)
	}
	if opts.queryTimeout == 0 {
		opts.queryTimeout = 2 * time.Second
	}
	if opts.queryTimeout > 0 {
		d.queryTimeout = opts.queryTimeout
	}
	switch opts.snapFormat {
	case "", "v6":
		d.snapFormat = "v6"
	case "gob":
		d.snapFormat = "gob"
	default:
		return nil, fmt.Errorf("unknown -snapshot-format %q (want v6 or gob)", opts.snapFormat)
	}
	switch opts.snapVerify {
	case "", "eager":
		d.verify = tdmatch.VerifyEager
	case "lazy":
		d.verify = tdmatch.VerifyLazy
	default:
		return nil, fmt.Errorf("unknown -snapshot-verify %q (want eager or lazy)", opts.snapVerify)
	}
	model, info, err := d.load()
	if err != nil {
		return nil, err
	}
	if opts.walPath != "" {
		wopts := model.WALOptions()
		if opts.walSync != "" {
			wopts.Sync = opts.walSync
		}
		if opts.walInterval > 0 {
			wopts.Interval = opts.walInterval
		}
		w, err := tdmatch.OpenWAL(opts.walPath, wopts)
		if err != nil {
			return nil, fmt.Errorf("opening wal %s: %w", opts.walPath, err)
		}
		applied, err := w.Replay(model)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("replaying wal %s: %w", opts.walPath, err)
		}
		if n := w.Stats().RecoveredRecords; n > 0 {
			log.Printf("tdserved: wal %s: recovered %d records, applied %d", opts.walPath, n, applied)
		}
		d.wal = w
		sc.WAL = w
	}
	d.modelInf.Store(&info)
	d.server = tdmatch.NewServer(model, sc)
	return d, nil
}

// load reads the corpus files and the model snapshot — the shared path
// of startup and hot reload. The snapshot is opened exactly once
// (OpenSnapshotFileVerify), so the served model and the reported
// ModelInfo can never diverge even when a retraining job overwrites the
// file mid-reload, and a large vector arena is never decoded twice: a
// v6 snapshot is memory-mapped and bound zero-copy, gob versions decode
// through the classic path.
func (d *daemon) load() (*tdmatch.Model, tdmatch.ModelInfo, error) {
	start := time.Now()
	snap, err := tdmatch.OpenSnapshotFileVerify(d.modelPath, d.verify)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) || errors.Is(err, os.ErrPermission) {
			return nil, tdmatch.ModelInfo{}, fmt.Errorf("opening model snapshot: %w", err)
		}
		return nil, tdmatch.ModelInfo{}, fmt.Errorf("reading model snapshot %s: %w", d.modelPath, err)
	}
	log.Printf("tdserved: snapshot %s: load mode %s, opened in %s",
		d.modelPath, snap.LoadMode(), time.Since(start).Round(time.Microsecond))
	info := snap.Info()
	first, err := tdmatch.LoadCorpus(d.firstPath, info.FirstName)
	if err != nil {
		return nil, info, fmt.Errorf("loading first corpus: %w", err)
	}
	second, err := tdmatch.LoadCorpus(d.secondPath, info.SecondName)
	if err != nil {
		return nil, info, fmt.Errorf("loading second corpus: %w", err)
	}
	model, err := snap.Bind(first, second)
	if err != nil {
		return nil, info, err
	}
	if err := validateCoverage(model, info, first, second); err != nil {
		return nil, info, err
	}
	if d.shards != 0 {
		// Applied on every load (startup and reload) before the model
		// starts serving, so the -shards override survives hot reloads.
		model.Reshard(d.shards)
	}
	fi, si := model.IndexStats()
	log.Printf("tdserved: index %s: first %s; second %s", fi.Kind, indexLine(fi), indexLine(si))
	return model, info, nil
}

// indexLine formats one side's IndexStats for the startup log line that
// sits next to the load-mode line: row counts for every kind, plus the
// graph shape under HNSW serving.
func indexLine(st tdmatch.IndexStats) string {
	s := fmt.Sprintf("%d rows (%d live)", st.Rows, st.LiveRows)
	if st.Kind == "hnsw" {
		s += fmt.Sprintf(", max level %d, avg degree %.1f, ef %d", st.MaxLevel, st.AvgDegree, st.Ef)
	}
	return s
}

// validateCoverage sanity-checks that the snapshot actually describes
// the corpora on disk. The daemon names the corpora from the snapshot's
// own metadata, so LoadModel's name check cannot catch an operator
// pointing -first/-second at the wrong files — but wrong files show up
// as stored vectors that resolve to no document, or documents with no
// vector at all. Refusing to start beats silently serving errors (or,
// worse, rankings from another dataset).
func validateCoverage(model *tdmatch.Model, info tdmatch.ModelInfo, first, second *tdmatch.Corpus) error {
	total := first.Len() + second.Len()
	if info.Docs > total {
		return fmt.Errorf("snapshot stores %d vectors but the corpora hold only %d documents — wrong -first/-second files?",
			info.Docs, total)
	}
	for _, c := range []*tdmatch.Corpus{first, second} {
		covered := 0
		for _, id := range c.IDs() {
			if model.Vector(id) != nil {
				covered++
			}
		}
		if covered == 0 {
			return fmt.Errorf("no document of corpus %q has a stored vector — wrong corpus files for this snapshot?",
				c.Name())
		}
	}
	return nil
}

// reload re-reads everything from disk and swaps the model in atomically.
// On any error the running model keeps serving. With a WAL attached the
// log is rotated after the swap: the reloaded snapshot is the new
// authoritative baseline, and replaying pre-reload records over it on a
// future restart would resurrect state the reload deliberately replaced.
func (d *daemon) reload() error {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()
	model, info, err := d.load()
	if err != nil {
		return err
	}
	var horizon uint64
	if d.wal != nil {
		horizon = d.wal.LastSeq()
	}
	if err := d.server.Reload(model); err != nil {
		return err
	}
	d.modelInf.Store(&info)
	if d.wal != nil {
		if err := d.wal.Checkpoint(horizon); err != nil {
			log.Printf("tdserved: wal rotation after reload failed (stale records remain): %v", err)
		}
	}
	return nil
}

// checkpoint saves the served model to the snapshot path (atomically —
// both savers rename a synced sidecar into place and fsync the parent
// directory) in the configured -snapshot-format, and rotates the WAL
// past everything the snapshot now contains.
func (d *daemon) checkpoint() error {
	return d.server.Checkpoint(d.saveModelFile)
}

// saveModelFile writes one snapshot in the daemon's configured format.
func (d *daemon) saveModelFile(m *tdmatch.Model) error {
	if d.snapFormat == "gob" {
		return m.SaveFile(d.modelPath)
	}
	return m.SaveFileV6(d.modelPath)
}

// shutdown is the graceful exit path: drain in-flight requests within
// the budget, optionally save an exit snapshot (rotating the WAL), stop
// the serving collector, and flush + close the log. Returns the process
// exit code: 0 only when every step succeeded.
func (d *daemon) shutdown(srv *http.Server, drain time.Duration, exitSnapshot bool) int {
	d.draining.Store(true)
	code := 0
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tdserved: drain incomplete after %s: %v", drain, err)
		code = 1
	}
	if exitSnapshot {
		if err := d.checkpoint(); err != nil {
			log.Printf("tdserved: exit snapshot failed: %v", err)
			code = 1
		}
	}
	d.server.Close()
	if d.wal != nil {
		if err := d.wal.Sync(); err != nil {
			log.Printf("tdserved: flushing wal: %v", err)
			code = 1
		}
		if err := d.wal.Close(); err != nil {
			log.Printf("tdserved: closing wal: %v", err)
			code = 1
		}
	}
	log.Printf("tdserved: shutdown complete")
	return code
}

// compactLoop watches staleness and compacts in the background once it
// crosses threshold, checkpointing the WAL after each success. Failures
// retry with jittered exponential backoff (1s doubling to a 5m cap) so
// a persistently failing rebuild cannot hot-loop the CPU; any success
// resets the backoff.
func (d *daemon) compactLoop(ctx context.Context, threshold int, interval time.Duration) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var backoff time.Duration
	for {
		wait := interval
		if backoff > 0 {
			// Full jitter on [backoff, 2*backoff): concurrent daemons
			// recovering from a shared fault spread their retries out.
			wait = backoff + time.Duration(rng.Int63n(int64(backoff)+1))
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
		if d.server.Stats().Staleness < threshold {
			continue
		}
		if err := d.server.CompactCtx(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, tdmatch.ErrCompacting) {
				continue // a manual /v1/compact is already running
			}
			if backoff == 0 {
				backoff = time.Second
			} else if backoff *= 2; backoff > 5*time.Minute {
				backoff = 5 * time.Minute
			}
			log.Printf("tdserved: background compaction failed (retrying in ~%s): %v", backoff, err)
			continue
		}
		backoff = 0
		if d.wal != nil {
			if err := d.checkpoint(); err != nil {
				log.Printf("tdserved: checkpoint after background compaction failed: %v", err)
			}
		}
		log.Printf("tdserved: background compaction ok (staleness was >= %d)", threshold)
	}
}

// info snapshots the served model's metadata without blocking on an
// in-progress reload.
func (d *daemon) info() tdmatch.ModelInfo {
	return *d.modelInf.Load()
}

// newHandler wires the HTTP API around a daemon. Split from main so tests
// drive it through httptest. Serving and mutating endpoints go through
// guard (draining check, admission semaphore, body cap); the health and
// stats probes bypass it so monitoring stays responsive under overload.
func newHandler(d *daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", d.guard(d.handleTopK))
	mux.HandleFunc("POST /v1/batch", d.guard(d.handleBatch))
	mux.HandleFunc("POST /v1/ingest", d.guard(d.handleIngest))
	mux.HandleFunc("POST /v1/remove", d.guard(d.handleRemove))
	mux.HandleFunc("POST /v1/compact", d.guard(d.handleCompact))
	mux.HandleFunc("POST /v1/reload", d.guard(d.handleReload))
	mux.HandleFunc("GET /v1/stats", d.handleStats)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	return mux
}

// guard is the admission middleware: requests are shed with 503 and
// Retry-After while the daemon drains or once -max-inflight requests
// are already being served, and request bodies are capped at -max-body
// (a too-large body surfaces as 413 from the handler's decode).
func (d *daemon) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if d.draining.Load() {
			shed(w, errors.New("shutting down"))
			return
		}
		if d.inflight != nil {
			select {
			case d.inflight <- struct{}{}:
				defer func() { <-d.inflight }()
			default:
				shed(w, errors.New("too many in-flight requests"))
				return
			}
		}
		if d.maxBody > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, d.maxBody)
		}
		h(w, r)
	}
}

// shed answers 503 with Retry-After: the client should back off briefly
// and retry — the condition (overload, drain) is transient by design.
func shed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, err)
}

// queryCtx derives the per-query deadline from the request context.
func (d *daemon) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if d.queryTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d.queryTimeout)
}

// decodeStatus maps a request-decoding failure to its HTTP status:
// a body over the -max-body cap is 413, anything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// topkRequest is the body of POST /v1/topk.
type topkRequest struct {
	ID string `json:"id"`
	K  int    `json:"k"` // 0 = the daemon's -k default
}

// matchJSON is one ranked candidate on the wire.
type matchJSON struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// topkResponse is the body of a /v1/topk answer and one /v1/batch result.
type topkResponse struct {
	ID      string      `json:"id"`
	Matches []matchJSON `json:"matches"`
	Error   string      `json:"error,omitempty"`
}

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	IDs []string `json:"ids"`
	K   int      `json:"k"` // 0 = the daemon's -k default
}

// batchResponse is the body of a /v1/batch answer; Results aligns with
// the request's IDs, failed queries carry Error in place of Matches.
type batchResponse struct {
	Results []topkResponse `json:"results"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	tdmatch.ServeStats
	CacheHitRate  float64           `json:"cache_hit_rate"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Model         modelInfoResponse `json:"model"`
}

// modelInfoResponse is the served snapshot's metadata in /v1/stats and
// /healthz.
type modelInfoResponse struct {
	First       string `json:"first"`
	Second      string `json:"second"`
	Docs        int    `json:"docs"`
	Dim         int    `json:"dim"`
	Index       string `json:"index"`
	IVFClusters int    `json:"ivf_clusters,omitempty"`
	IVFNProbe   int    `json:"ivf_nprobe,omitempty"`
	SQ8Rerank   int    `json:"sq8_rerank,omitempty"`
	HNSWM       int    `json:"hnsw_m,omitempty"`
	HNSWEf      int    `json:"hnsw_ef,omitempty"`
	HNSWEfC     int    `json:"hnsw_ef_construct,omitempty"`
}

func (d *daemon) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, errors.New(`"id" is required`))
		return
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"k" must be positive, got %d`, req.K))
		return
	}
	if req.K == 0 {
		req.K = d.defaultK
	}
	ctx, cancel := d.queryCtx(r)
	defer cancel()
	matches, err := d.server.TopKCtx(ctx, req.ID, req.K)
	if err != nil {
		if isOverload(err) {
			shed(w, err)
			return
		}
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, topkResponse{ID: req.ID, Matches: toMatchJSON(matches)})
}

// isOverload reports errors that mean "try again shortly" rather than
// "this query is wrong": shed queue slots, expired deadlines, a server
// already shutting down.
func isOverload(err error) bool {
	return errors.Is(err, tdmatch.ErrOverloaded) ||
		errors.Is(err, tdmatch.ErrServerClosed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func (d *daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"ids" is required`))
		return
	}
	for i, id := range req.IDs {
		if id == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`"ids"[%d] is empty`, i))
			return
		}
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"k" must be positive, got %d`, req.K))
		return
	}
	if req.K == 0 {
		req.K = d.defaultK
	}
	ctx, cancel := d.queryCtx(r)
	defer cancel()
	results := d.server.TopKBatchCtx(ctx, req.IDs, req.K)
	resp := batchResponse{Results: make([]topkResponse, len(results))}
	for i, res := range results {
		out := topkResponse{ID: res.ID}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Matches = toMatchJSON(res.Matches)
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestDocJSON is one document of POST /v1/ingest.
type ingestDocJSON struct {
	Side   int      `json:"side"`
	ID     string   `json:"id"`
	Values []string `json:"values"`
	Parent string   `json:"parent,omitempty"`
}

// ingestRequest is the body of POST /v1/ingest.
type ingestRequest struct {
	Docs []ingestDocJSON `json:"docs"`
}

// removeRequest is the body of POST /v1/remove.
type removeRequest struct {
	IDs []string `json:"ids"`
}

// mutateResponse answers /v1/ingest and /v1/remove with the new
// serving state.
type mutateResponse struct {
	Status    string `json:"status"`
	Docs      int    `json:"docs"`
	Staleness int    `json:"staleness"`
}

func (d *daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Docs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"docs" is required`))
		return
	}
	docs := make([]tdmatch.IngestDoc, len(req.Docs))
	for i, jd := range req.Docs {
		docs[i] = tdmatch.IngestDoc{Side: jd.Side, ID: jd.ID, Values: jd.Values, Parent: jd.Parent}
	}
	if err := d.server.Ingest(docs); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, tdmatch.ErrDuplicateDocument) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Status:    "ok",
		Docs:      len(docs),
		Staleness: d.server.Stats().Staleness,
	})
}

func (d *daemon) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"ids" is required`))
		return
	}
	if err := d.server.Remove(req.IDs); err != nil {
		// Unknown documents are the not-found case; everything else
		// (duplicate IDs in the batch, ...) is a malformed request.
		status := http.StatusBadRequest
		if errors.Is(err, tdmatch.ErrUnknownDocument) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Status:    "ok",
		Docs:      len(req.IDs),
		Staleness: d.server.Stats().Staleness,
	})
}

// handleCompact folds the delta chain into a full retrain: queries keep
// hitting the old model while a clone recompacts off to the side, then
// the daemon swaps atomically. A request arriving while a compaction is
// already running is answered 409 rather than queued. With a WAL
// attached, a successful compaction is followed by a checkpoint: the
// compacted model is saved to the snapshot path and the log rotated, so
// a restart replays only post-compaction mutations.
func (d *daemon) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := d.server.CompactCtx(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tdmatch.ErrCompacting) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	checkpointed := false
	if d.wal != nil {
		if err := d.checkpoint(); err != nil {
			// The compaction itself succeeded and the WAL still covers
			// every live mutation; the rotation is retried on the next
			// checkpoint trigger.
			log.Printf("tdserved: checkpoint after compaction failed: %v", err)
		} else {
			checkpointed = true
		}
	}
	st := d.server.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"compactions":  st.Compactions,
		"staleness":    st.Staleness,
		"checkpointed": checkpointed,
	})
}

func (d *daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := d.reload(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"reloads": d.server.Stats().Reloads,
	})
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st := d.server.Stats()
	rate := 0.0
	if probes := st.CacheHits + st.CacheMisses; probes > 0 {
		rate = float64(st.CacheHits) / float64(probes)
	}
	writeJSON(w, http.StatusOK, statsResponse{
		ServeStats:    st,
		CacheHitRate:  rate,
		UptimeSeconds: time.Since(d.started).Seconds(),
		Model:         d.modelInfoResponse(),
	})
}

// handleHealthz is the liveness probe: 200 whenever the process can
// answer at all, draining included — a draining daemon is alive, just
// not ready.
func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"model":  d.modelInfoResponse(),
	})
}

// handleReadyz is the readiness probe: 200 while accepting traffic, 503
// once draining — load balancers stop routing to it while in-flight
// requests finish.
func (d *daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		shed(w, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// modelInfoResponse projects the current ModelInfo onto the wire shape.
func (d *daemon) modelInfoResponse() modelInfoResponse {
	info := d.info()
	out := modelInfoResponse{
		First:  info.FirstName,
		Second: info.SecondName,
		Docs:   info.Docs,
		Dim:    info.Dim,
		Index:  info.Index.String(),
	}
	if info.Index == tdmatch.IndexIVF {
		out.IVFClusters = info.IVFClusters
		out.IVFNProbe = info.IVFNProbe
	}
	if info.Index == tdmatch.IndexSQ8 {
		out.SQ8Rerank = info.SQ8Rerank
		if out.SQ8Rerank == 0 {
			out.SQ8Rerank = tdmatch.DefaultSQ8Rerank
		}
	}
	if info.Index == tdmatch.IndexHNSW {
		out.HNSWM, out.HNSWEf, out.HNSWEfC = info.HNSWM, info.HNSWEf, info.HNSWEfConstruct
		if out.HNSWM == 0 {
			out.HNSWM = tdmatch.DefaultHNSWM
		}
		if out.HNSWEf == 0 {
			out.HNSWEf = tdmatch.DefaultHNSWEf
		}
		if out.HNSWEfC == 0 {
			out.HNSWEfC = tdmatch.DefaultHNSWEfConstruct
		}
	}
	return out
}

func toMatchJSON(matches []tdmatch.Match) []matchJSON {
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{ID: m.ID, Score: m.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tdserved: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
