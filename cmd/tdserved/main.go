// Command tdserved is the long-running serving daemon: it loads a model
// snapshot persisted with SaveFile (see cmd/tdmatch's -save) plus the two
// corpora it was trained on, and serves JSON-over-HTTP matching queries
// behind a result cache and a micro-batching worker pool.
//
// Usage:
//
//	tdmatch  -first movies.csv -second reviews.txt -save model.gob
//	tdserved -first movies.csv -second reviews.txt -model model.gob -addr :8080
//
// Endpoints:
//
//	POST /v1/topk    {"id": "second:p0", "k": 5}        → one ranking
//	POST /v1/batch   {"ids": ["second:p0", ...], "k": 5} → many, fanned out
//	POST /v1/ingest  {"docs": [{"side": 2, "id": "...", "values": ["..."]}]}
//	POST /v1/remove  {"ids": ["second:p0", ...]}
//	POST /v1/compact retrain off-line, swap in the compacted model
//	POST /v1/reload  reload corpora + snapshot from disk, swap atomically
//	GET  /v1/stats   serving counters, cache hit rate, model metadata
//	GET  /healthz    liveness: 200 with the served model's identity
//
// /v1/ingest and /v1/remove mutate the served model live: the daemon
// clones it, applies the delta (graph patch + warm-start fine-tune on a
// trained model, term fold-in on a snapshot-restored one, appendable
// index update either way) and swaps the clone in atomically — queries
// issued afterwards see the new corpus immediately, and the result
// cache is invalidated by the generation bump. Live deltas exist only
// in memory until the snapshot is re-saved; a reload from disk reverts
// them. The stats staleness counter reports how many delta documents
// the served model has accumulated since its last full build.
//
// SIGHUP triggers the same reload as POST /v1/reload: the daemon re-reads
// the corpus and snapshot files and swaps the new model in behind the
// in-flight queries. Retrain with cmd/tdmatch, overwrite the snapshot,
// signal the daemon — zero downtime.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/tdmatch/tdmatch"
)

func main() {
	var (
		firstPath  = flag.String("first", "", "first corpus file (as passed to the training run)")
		secondPath = flag.String("second", "", "second corpus file (as passed to the training run)")
		modelPath  = flag.String("model", "", "model snapshot written by tdmatch -save / SaveFile")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		cacheSize  = flag.Int("cache", 0, "result-cache entries (0 = model default 4096, negative disables)")
		batchWin   = flag.Duration("batch-window", 0, "micro-batch coalescing window (0 = model default 200µs, negative disables)")
		workers    = flag.Int("workers", 0, "serving worker-pool size (0 = model default, GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "scatter-gather shards per serving index (0 = model/auto, negative disables)")
		defaultK   = flag.Int("k", 5, "matches returned when a request omits k")
	)
	flag.Parse()
	if *firstPath == "" || *secondPath == "" || *modelPath == "" {
		fmt.Fprintln(os.Stderr, "tdserved: -first, -second and -model are required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := newDaemon(*firstPath, *secondPath, *modelPath, tdmatch.ServeConfig{
		CacheSize:   *cacheSize,
		BatchWindow: *batchWin,
		Workers:     *workers,
	}, *defaultK, *shards)
	if err != nil {
		log.Fatalf("tdserved: %v", err)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := d.reload(); err != nil {
				log.Printf("tdserved: SIGHUP reload failed, keeping current model: %v", err)
				continue
			}
			log.Printf("tdserved: SIGHUP reload ok (%d reloads)", d.server.Stats().Reloads)
		}
	}()

	info := d.info()
	log.Printf("tdserved: serving %s/%s (%d vectors, dim %d, index %s) on %s",
		info.FirstName, info.SecondName, info.Docs, info.Dim, info.Index, *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(d)))
}

// daemon owns the serving state: the Server plus the on-disk paths a
// reload re-reads. reloadMu serializes reloads (concurrent /v1/reload
// posts and SIGHUPs get a consistent swap order); queries — including
// /healthz and /v1/stats, which must stay responsive while a slow
// reload rebuilds indexes — never take it (modelInf is an atomic).
type daemon struct {
	firstPath, secondPath, modelPath string
	defaultK                         int
	// shards is the -shards override applied to every loaded model
	// (0 leaves the model's own Config.ServeShards resolution in place).
	shards  int
	server  *tdmatch.Server
	started time.Time

	reloadMu sync.Mutex
	modelInf atomic.Pointer[tdmatch.ModelInfo]
}

// newDaemon loads the corpora and snapshot and wraps them in a Server.
func newDaemon(firstPath, secondPath, modelPath string, sc tdmatch.ServeConfig, defaultK, shards int) (*daemon, error) {
	d := &daemon{
		firstPath:  firstPath,
		secondPath: secondPath,
		modelPath:  modelPath,
		defaultK:   defaultK,
		shards:     shards,
		started:    time.Now(),
	}
	model, info, err := d.load()
	if err != nil {
		return nil, err
	}
	d.modelInf.Store(&info)
	d.server = tdmatch.NewServer(model, sc)
	return d, nil
}

// load reads the corpus files and the model snapshot — the shared path
// of startup and hot reload. The snapshot is decoded exactly once
// (ReadSnapshot), so the served model and the reported ModelInfo can
// never diverge even when a retraining job overwrites the file
// mid-reload, and a large vector arena is not gob-decoded twice.
func (d *daemon) load() (*tdmatch.Model, tdmatch.ModelInfo, error) {
	f, err := os.Open(d.modelPath)
	if err != nil {
		return nil, tdmatch.ModelInfo{}, err
	}
	defer f.Close()
	snap, err := tdmatch.ReadSnapshot(f)
	if err != nil {
		return nil, tdmatch.ModelInfo{}, err
	}
	info := snap.Info()
	first, err := tdmatch.LoadCorpus(d.firstPath, info.FirstName)
	if err != nil {
		return nil, info, fmt.Errorf("loading first corpus: %w", err)
	}
	second, err := tdmatch.LoadCorpus(d.secondPath, info.SecondName)
	if err != nil {
		return nil, info, fmt.Errorf("loading second corpus: %w", err)
	}
	model, err := snap.Bind(first, second)
	if err != nil {
		return nil, info, err
	}
	if err := validateCoverage(model, info, first, second); err != nil {
		return nil, info, err
	}
	if d.shards != 0 {
		// Applied on every load (startup and reload) before the model
		// starts serving, so the -shards override survives hot reloads.
		model.Reshard(d.shards)
	}
	return model, info, nil
}

// validateCoverage sanity-checks that the snapshot actually describes
// the corpora on disk. The daemon names the corpora from the snapshot's
// own metadata, so LoadModel's name check cannot catch an operator
// pointing -first/-second at the wrong files — but wrong files show up
// as stored vectors that resolve to no document, or documents with no
// vector at all. Refusing to start beats silently serving errors (or,
// worse, rankings from another dataset).
func validateCoverage(model *tdmatch.Model, info tdmatch.ModelInfo, first, second *tdmatch.Corpus) error {
	total := first.Len() + second.Len()
	if info.Docs > total {
		return fmt.Errorf("snapshot stores %d vectors but the corpora hold only %d documents — wrong -first/-second files?",
			info.Docs, total)
	}
	for _, c := range []*tdmatch.Corpus{first, second} {
		covered := 0
		for _, id := range c.IDs() {
			if model.Vector(id) != nil {
				covered++
			}
		}
		if covered == 0 {
			return fmt.Errorf("no document of corpus %q has a stored vector — wrong corpus files for this snapshot?",
				c.Name())
		}
	}
	return nil
}

// reload re-reads everything from disk and swaps the model in atomically.
// On any error the running model keeps serving.
func (d *daemon) reload() error {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()
	model, info, err := d.load()
	if err != nil {
		return err
	}
	if err := d.server.Reload(model); err != nil {
		return err
	}
	d.modelInf.Store(&info)
	return nil
}

// info snapshots the served model's metadata without blocking on an
// in-progress reload.
func (d *daemon) info() tdmatch.ModelInfo {
	return *d.modelInf.Load()
}

// newHandler wires the HTTP API around a daemon. Split from main so tests
// drive it through httptest.
func newHandler(d *daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", d.handleTopK)
	mux.HandleFunc("POST /v1/batch", d.handleBatch)
	mux.HandleFunc("POST /v1/ingest", d.handleIngest)
	mux.HandleFunc("POST /v1/remove", d.handleRemove)
	mux.HandleFunc("POST /v1/compact", d.handleCompact)
	mux.HandleFunc("POST /v1/reload", d.handleReload)
	mux.HandleFunc("GET /v1/stats", d.handleStats)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	return mux
}

// topkRequest is the body of POST /v1/topk.
type topkRequest struct {
	ID string `json:"id"`
	K  int    `json:"k"` // 0 = the daemon's -k default
}

// matchJSON is one ranked candidate on the wire.
type matchJSON struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// topkResponse is the body of a /v1/topk answer and one /v1/batch result.
type topkResponse struct {
	ID      string      `json:"id"`
	Matches []matchJSON `json:"matches"`
	Error   string      `json:"error,omitempty"`
}

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	IDs []string `json:"ids"`
	K   int      `json:"k"` // 0 = the daemon's -k default
}

// batchResponse is the body of a /v1/batch answer; Results aligns with
// the request's IDs, failed queries carry Error in place of Matches.
type batchResponse struct {
	Results []topkResponse `json:"results"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	tdmatch.ServeStats
	CacheHitRate  float64           `json:"cache_hit_rate"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Model         modelInfoResponse `json:"model"`
}

// modelInfoResponse is the served snapshot's metadata in /v1/stats and
// /healthz.
type modelInfoResponse struct {
	First       string `json:"first"`
	Second      string `json:"second"`
	Docs        int    `json:"docs"`
	Dim         int    `json:"dim"`
	Index       string `json:"index"`
	IVFClusters int    `json:"ivf_clusters,omitempty"`
	IVFNProbe   int    `json:"ivf_nprobe,omitempty"`
	SQ8Rerank   int    `json:"sq8_rerank,omitempty"`
}

func (d *daemon) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, errors.New(`"id" is required`))
		return
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"k" must be positive, got %d`, req.K))
		return
	}
	if req.K == 0 {
		req.K = d.defaultK
	}
	matches, err := d.server.TopK(req.ID, req.K)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, topkResponse{ID: req.ID, Matches: toMatchJSON(matches)})
}

func (d *daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"ids" is required`))
		return
	}
	for i, id := range req.IDs {
		if id == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`"ids"[%d] is empty`, i))
			return
		}
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"k" must be positive, got %d`, req.K))
		return
	}
	if req.K == 0 {
		req.K = d.defaultK
	}
	results := d.server.TopKBatch(req.IDs, req.K)
	resp := batchResponse{Results: make([]topkResponse, len(results))}
	for i, res := range results {
		out := topkResponse{ID: res.ID}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.Matches = toMatchJSON(res.Matches)
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestDocJSON is one document of POST /v1/ingest.
type ingestDocJSON struct {
	Side   int      `json:"side"`
	ID     string   `json:"id"`
	Values []string `json:"values"`
	Parent string   `json:"parent,omitempty"`
}

// ingestRequest is the body of POST /v1/ingest.
type ingestRequest struct {
	Docs []ingestDocJSON `json:"docs"`
}

// removeRequest is the body of POST /v1/remove.
type removeRequest struct {
	IDs []string `json:"ids"`
}

// mutateResponse answers /v1/ingest and /v1/remove with the new
// serving state.
type mutateResponse struct {
	Status    string `json:"status"`
	Docs      int    `json:"docs"`
	Staleness int    `json:"staleness"`
}

func (d *daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Docs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"docs" is required`))
		return
	}
	docs := make([]tdmatch.IngestDoc, len(req.Docs))
	for i, jd := range req.Docs {
		docs[i] = tdmatch.IngestDoc{Side: jd.Side, ID: jd.ID, Values: jd.Values, Parent: jd.Parent}
	}
	if err := d.server.Ingest(docs); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Status:    "ok",
		Docs:      len(docs),
		Staleness: d.server.Stats().Staleness,
	})
}

func (d *daemon) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`"ids" is required`))
		return
	}
	if err := d.server.Remove(req.IDs); err != nil {
		// Unknown documents are the not-found case; everything else
		// (duplicate IDs in the batch, ...) is a malformed request.
		status := http.StatusBadRequest
		if errors.Is(err, tdmatch.ErrUnknownDocument) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Status:    "ok",
		Docs:      len(req.IDs),
		Staleness: d.server.Stats().Staleness,
	})
}

// handleCompact folds the delta chain into a full retrain: queries keep
// hitting the old model while a clone recompacts off to the side, then
// the daemon swaps atomically. A request arriving while a compaction is
// already running is answered 409 rather than queued.
func (d *daemon) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := d.server.Compact(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tdmatch.ErrCompacting) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	st := d.server.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"compactions": st.Compactions,
		"staleness":   st.Staleness,
	})
}

func (d *daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := d.reload(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"reloads": d.server.Stats().Reloads,
	})
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st := d.server.Stats()
	rate := 0.0
	if probes := st.CacheHits + st.CacheMisses; probes > 0 {
		rate = float64(st.CacheHits) / float64(probes)
	}
	writeJSON(w, http.StatusOK, statsResponse{
		ServeStats:    st,
		CacheHitRate:  rate,
		UptimeSeconds: time.Since(d.started).Seconds(),
		Model:         d.modelInfoResponse(),
	})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"model":  d.modelInfoResponse(),
	})
}

// modelInfoResponse projects the current ModelInfo onto the wire shape.
func (d *daemon) modelInfoResponse() modelInfoResponse {
	info := d.info()
	out := modelInfoResponse{
		First:  info.FirstName,
		Second: info.SecondName,
		Docs:   info.Docs,
		Dim:    info.Dim,
		Index:  info.Index.String(),
	}
	if info.Index == tdmatch.IndexIVF {
		out.IVFClusters = info.IVFClusters
		out.IVFNProbe = info.IVFNProbe
	}
	if info.Index == tdmatch.IndexSQ8 {
		out.SQ8Rerank = info.SQ8Rerank
		if out.SQ8Rerank == 0 {
			out.SQ8Rerank = tdmatch.DefaultSQ8Rerank
		}
	}
	return out
}

func toMatchJSON(matches []tdmatch.Match) []matchJSON {
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{ID: m.ID, Score: m.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tdserved: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
