package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/tdmatch/tdmatch"
	"github.com/tdmatch/tdmatch/internal/wal"
)

// startDaemonWith is startDaemon with explicit daemonOptions, for the
// durability and degradation tests.
func startDaemonWith(t *testing.T, firstPath, secondPath, modelPath string, opts daemonOptions) (*daemon, *httptest.Server) {
	t.Helper()
	d, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{Workers: 4}, 5, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.server.Close)
	ts := httptest.NewServer(newHandler(d))
	t.Cleanup(ts.Close)
	return d, ts
}

// tryPostJSON is postJSON without the test fataling: traffic goroutines
// racing a shutdown legitimately see transport errors once the listener
// closes, and must report rather than fail them.
func tryPostJSON(url string, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// anyDocID returns a deterministic served document ID to probe with.
func anyDocID(t *testing.T, m *tdmatch.Model) string {
	t.Helper()
	ids := make([]string, 0, len(m.Vectors()))
	for id := range m.Vectors() {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		t.Fatal("model serves no documents")
	}
	sort.Strings(ids)
	return ids[0]
}

// TestShutdownUnderTraffic drives concurrent /v1/topk and /v1/ingest
// traffic while a real SIGTERM fires and the daemon drains: in-flight
// requests finish with definitive statuses (no 5xx other than the
// deliberate 503 shed), requests after the drain are shed with 503 +
// Retry-After, and the WAL tail holds every acknowledged ingest.
func TestShutdownUnderTraffic(t *testing.T) {
	firstPath, secondPath, modelPath, model := trainFixture(t, fixtureConfig(31))
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{walPath: walPath})
	probe := anyDocID(t, model)

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	defer signal.Stop(term)

	var (
		mu          sync.Mutex
		ackedDocs   []string
		badStatuses []int
	)
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go func(g int) { // query traffic
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				status, err := tryPostJSON(ts.URL+"/v1/topk", map[string]any{"id": probe, "k": 3})
				if err != nil {
					return // listener closed under us: the request never entered
				}
				if status != http.StatusOK && status != http.StatusServiceUnavailable {
					mu.Lock()
					badStatuses = append(badStatuses, status)
					mu.Unlock()
				}
			}
		}(g)
		go func(g int) { // ingest traffic
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				id := fmt.Sprintf("reviews:live%d_%d", g, i)
				status, err := tryPostJSON(ts.URL+"/v1/ingest", map[string]any{
					"docs": []map[string]any{{"side": 2, "id": id, "values": []string{"a live Tarantino crime thriller review " + id}}},
				})
				if err != nil {
					return
				}
				switch status {
				case http.StatusOK:
					mu.Lock()
					ackedDocs = append(ackedDocs, id)
					mu.Unlock()
				case http.StatusServiceUnavailable:
					// shed: not acknowledged, must not be required durable
				default:
					mu.Lock()
					badStatuses = append(badStatuses, status)
					mu.Unlock()
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // let traffic establish
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-term:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never delivered")
	}
	if code := d.shutdown(ts.Config, 5*time.Second, false); code != 0 {
		t.Fatalf("graceful shutdown exit code = %d, want 0", code)
	}
	close(stopTraffic)
	wg.Wait()

	if len(badStatuses) > 0 {
		t.Fatalf("traffic racing the drain saw unexpected statuses %v (want only 200 and 503)", badStatuses)
	}
	if len(ackedDocs) == 0 {
		t.Fatal("no ingest was acknowledged before the drain; the test raced itself")
	}

	// New requests after the drain are shed, not errored or hung.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/topk", strings.NewReader(`{"id":"x"}`))
	newHandler(d).ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("post-drain 503 carries no Retry-After")
	}

	// The WAL tail survived the shutdown: replaying it over the original
	// snapshot restores every acknowledged ingest. (Records may exceed
	// the acks — a response lost in the drain still logged durably — but
	// an acked write missing from the log is a durability bug.)
	w, err := tdmatch.OpenWAL(walPath, tdmatch.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Stats().RecoveredRecords; got < len(ackedDocs) {
		t.Fatalf("wal holds %d records but %d ingests were acknowledged", got, len(ackedDocs))
	}
	first, err := tdmatch.LoadCorpus(firstPath, "movies")
	if err != nil {
		t.Fatal(err)
	}
	second, err := tdmatch.LoadCorpus(secondPath, "reviews")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tdmatch.LoadModelFile(modelPath, first, second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(restored); err != nil {
		t.Fatalf("replaying post-shutdown wal: %v", err)
	}
	for _, id := range ackedDocs {
		if restored.Vector(id) == nil {
			t.Fatalf("acknowledged ingest %q lost: absent after replay", id)
		}
	}
}

// TestWALRestartRecoversAckedWrites is the restart integration path: a
// document ingested over HTTP survives an abrupt stop (no exit
// snapshot, no checkpoint) because the next daemon replays the WAL
// during newDaemon and serves it immediately.
func TestWALRestartRecoversAckedWrites(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(32))
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{walPath: walPath})

	if status := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"docs": []map[string]any{{"side": 2, "id": "reviews:crash1", "values": []string{"a Coppola crime saga reviewed moments before the crash"}}},
	}, nil); status != http.StatusOK {
		t.Fatalf("ingest: status %d", status)
	}
	// Abrupt stop: no checkpoint, no exit snapshot — the log is the only
	// place the ingest exists.
	ts.Close()
	d.server.Close()
	if err := d.wal.Close(); err != nil {
		t.Fatal(err)
	}

	d2, ts2 := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{walPath: walPath})
	if got := d2.wal.Stats().RecoveredRecords; got != 1 {
		t.Fatalf("restart recovered %d wal records, want 1", got)
	}
	var out topkResponse
	if status := postJSON(t, ts2.URL+"/v1/topk", map[string]any{"id": "reviews:crash1", "k": 3}, &out); status != http.StatusOK {
		t.Fatalf("topk for recovered doc: status %d", status)
	}
	if len(out.Matches) == 0 {
		t.Fatal("recovered document serves no matches")
	}
}

// TestBodyCapReturns413 verifies the -max-body satellite: an oversized
// request body is rejected with 413 and a JSON error, not a hang or a
// connection reset mid-decode.
func TestBodyCapReturns413(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(33))
	_, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{maxBody: 512})

	huge := strings.Repeat("padding words for an oversized review body ", 64)
	var out map[string]string
	status := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"docs": []map[string]any{{"side": 2, "id": "reviews:huge", "values": []string{huge}}},
	}, &out)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413", status)
	}
	if out["error"] == "" {
		t.Fatal("413 response carries no JSON error")
	}
	// A right-sized request on the same daemon still succeeds.
	if status := postJSON(t, ts.URL+"/v1/topk", map[string]any{"id": "reviews:huge", "k": 1}, nil); status != http.StatusNotFound {
		t.Fatalf("rejected doc should not exist: topk status %d, want 404", status)
	}
}

// TestReadyzFlipsWhileDraining verifies the liveness/readiness split:
// once draining, /readyz turns 503 (with Retry-After) while /healthz
// keeps answering 200 — the process is alive, just not routable.
func TestReadyzFlipsWhileDraining(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(34))
	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", resp.StatusCode)
	}

	d.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestUnreadableSnapshotFailsStartup verifies the daemon exits with a
// clean error — not a panic or a zombie listener — when the snapshot is
// missing or garbage.
func TestUnreadableSnapshotFailsStartup(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(35))

	_, err := newDaemon(firstPath, secondPath, filepath.Join(t.TempDir(), "nope.gob"),
		tdmatch.ServeConfig{Workers: 1}, 5, 0, daemonOptions{})
	if err == nil {
		t.Fatal("missing snapshot accepted")
	}
	if !strings.Contains(err.Error(), "opening model snapshot") {
		t.Fatalf("missing snapshot error %q does not name the failing step", err)
	}

	garbage := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(firstPath, secondPath, garbage, tdmatch.ServeConfig{Workers: 1}, 5, 0, daemonOptions{}); err == nil {
		t.Fatal("garbage snapshot accepted")
	}

	// A valid snapshot with a corrupt WAL beside it must also refuse to
	// start rather than silently dropping acknowledged operations: build
	// a real two-record log, then flip a byte inside the first record.
	badWAL := filepath.Join(t.TempDir(), "bad.wal")
	wlog, _, err := wal.Open(badWAL, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := wlog.Append(1, []byte(`{"docs":[]}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(badWAL)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+13+2] ^= 0x40 // inside the first record's payload
	if err := os.WriteFile(badWAL, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{Workers: 1}, 5, 0,
		daemonOptions{walPath: badWAL}); err == nil {
		t.Fatal("corrupt wal accepted")
	}
}

// TestDuplicateIngestConflict verifies the 409 mapping: re-ingesting an
// existing document is a conflict, not a generic bad request.
func TestDuplicateIngestConflict(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(36))
	_, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{})

	doc := map[string]any{
		"docs": []map[string]any{{"side": 2, "id": "reviews:dup1", "values": []string{"a Shyamalan twist reviewed twice"}}},
	}
	if status := postJSON(t, ts.URL+"/v1/ingest", doc, nil); status != http.StatusOK {
		t.Fatalf("first ingest: status %d", status)
	}
	var out map[string]string
	if status := postJSON(t, ts.URL+"/v1/ingest", doc, &out); status != http.StatusConflict {
		t.Fatalf("duplicate ingest: status %d, want 409", status)
	}
	if !strings.Contains(out["error"], "reviews:dup1") {
		t.Fatalf("conflict error %q does not name the document", out["error"])
	}
}

// TestInflightCapSheds verifies admission control: with a single
// admission slot held, a concurrent guarded request is shed with 503 +
// Retry-After instead of queuing behind it.
func TestInflightCapSheds(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(37))
	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{maxInflight: 1})

	d.inflight <- struct{}{} // occupy the only slot
	defer func() { <-d.inflight }()
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", strings.NewReader(`{"id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated admission: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
}
