package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/tdmatch/tdmatch"
)

// moviesCSV / reviewsTXT are the on-disk corpora the daemon loads — small
// enough to train instantly, overlapping enough that every document gets
// an embedding.
const moviesCSV = `title,director,star,genre
The Sixth Sense,Shyamalan,Bruce Willis,Thriller
Pulp Fiction,Tarantino,Bruce Willis,Drama
The Godfather,Coppola,Marlon Brando,Crime
Jackie Brown,Tarantino,Pam Grier,Crime
Die Hard,McTiernan,Bruce Willis,Action
The Village,Shyamalan,Joaquin Phoenix,Thriller
`

const reviewsTXT = `Willis sees dead people in this tense Shyamalan thriller
a hilarious Tarantino movie starring Willis
Brando rules the crime family in a timeless Coppola masterpiece
Grier carries this Tarantino crime homage
Willis fights terrorists in a McTiernan action classic
Phoenix wanders a Shyamalan village thriller
`

// trainFixture trains a model over the on-disk corpora with the given
// config, saves the snapshot, and returns the file paths plus the
// in-process model for parity checks.
func trainFixture(t *testing.T, cfg tdmatch.Config) (firstPath, secondPath, modelPath string, model *tdmatch.Model) {
	t.Helper()
	dir := t.TempDir()
	firstPath = filepath.Join(dir, "movies.csv")
	secondPath = filepath.Join(dir, "reviews.txt")
	modelPath = filepath.Join(dir, "model.gob")
	if err := os.WriteFile(firstPath, []byte(moviesCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(secondPath, []byte(reviewsTXT), 0o644); err != nil {
		t.Fatal(err)
	}
	first, err := tdmatch.LoadCorpus(firstPath, "movies")
	if err != nil {
		t.Fatal(err)
	}
	second, err := tdmatch.LoadCorpus(secondPath, "reviews")
	if err != nil {
		t.Fatal(err)
	}
	model, err = tdmatch.Build(first, second, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	return firstPath, secondPath, modelPath, model
}

// fixtureConfig is the shared laptop-instant training configuration;
// Workers is 1 because hogwild training is deliberately racy and this
// package's tests run under -race in CI.
func fixtureConfig(seed int64) tdmatch.Config {
	cfg := tdmatch.Defaults()
	cfg.Seed = seed
	cfg.NumWalks = 6
	cfg.WalkLength = 10
	cfg.Dim = 24
	cfg.Epochs = 1
	cfg.Workers = 1
	return cfg
}

// startDaemon wires a daemon over the fixture files behind httptest.
func startDaemon(t *testing.T, firstPath, secondPath, modelPath string) (*daemon, *httptest.Server) {
	t.Helper()
	d, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{Workers: 4}, 5, 2, daemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.server.Close)
	ts := httptest.NewServer(newHandler(d))
	t.Cleanup(ts.Close)
	return d, ts
}

// postJSON posts v and decodes the response body into out, returning the
// status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRoundTripIVFSnapshotServesIdenticalTopK is the persistence
// round-trip check: a current-version snapshot saved with IVF selected
// must reload into the daemon and serve, over HTTP, exactly the
// rankings the in-process model produces.
func TestRoundTripIVFSnapshotServesIdenticalTopK(t *testing.T) {
	cfg := fixtureConfig(1)
	cfg.Index = tdmatch.IndexIVF
	cfg.IVFClusters = 3
	cfg.IVFNProbe = 2
	firstPath, secondPath, modelPath, model := trainFixture(t, cfg)

	info, err := tdmatch.ReadModelInfoFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version < 2 || info.Index != tdmatch.IndexIVF {
		t.Fatalf("snapshot info = %+v, want version >= 2 with IVF", info)
	}

	_, ts := startDaemon(t, firstPath, secondPath, modelPath)
	for id := range model.Vectors() {
		want, err := model.TopK(id, 4)
		if err != nil {
			t.Fatal(err)
		}
		var got topkResponse
		if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: id, K: 4}, &got); status != http.StatusOK {
			t.Fatalf("topk(%s) status %d", id, status)
		}
		if got.ID != id || len(got.Matches) != len(want) {
			t.Fatalf("topk(%s) = %+v, want %d matches", id, got, len(want))
		}
		for i, m := range want {
			if got.Matches[i].ID != m.ID || got.Matches[i].Score != m.Score {
				t.Errorf("topk(%s)[%d] = %+v, want %+v", id, i, got.Matches[i], m)
			}
		}
	}
}

func TestBatchEndpointMatchesSingles(t *testing.T) {
	firstPath, secondPath, modelPath, model := trainFixture(t, fixtureConfig(1))
	_, ts := startDaemon(t, firstPath, secondPath, modelPath)

	ids := []string{"reviews:p0", "reviews:p2", "nosuch:doc", "movies:t1"}
	var got batchResponse
	if status := postJSON(t, ts.URL+"/v1/batch", batchRequest{IDs: ids, K: 3}, &got); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if len(got.Results) != len(ids) {
		t.Fatalf("batch returned %d results for %d ids", len(got.Results), len(ids))
	}
	for i, res := range got.Results {
		if res.ID != ids[i] {
			t.Errorf("result %d is for %s, want %s", i, res.ID, ids[i])
		}
		if ids[i] == "nosuch:doc" {
			if res.Error == "" {
				t.Error("unknown document in batch did not report an error")
			}
			continue
		}
		want, err := model.TopK(ids[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Error != "" || len(res.Matches) != len(want) {
			t.Fatalf("batch(%s) = %+v, want %d matches", ids[i], res, len(want))
		}
		for j, m := range want {
			if res.Matches[j].ID != m.ID {
				t.Errorf("batch(%s)[%d] = %s, want %s", ids[i], j, res.Matches[j].ID, m.ID)
			}
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(1))
	_, ts := startDaemon(t, firstPath, secondPath, modelPath)

	// Same query twice: the second must be a cache hit.
	for i := 0; i < 2; i++ {
		if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "reviews:p0"}, nil); status != http.StatusOK {
			t.Fatalf("topk status %d", status)
		}
	}
	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.CacheHits == 0 || st.CacheHitRate <= 0 {
		t.Errorf("stats = %+v, want 2 queries with a cache hit", st)
	}
	if st.Model.First != "movies" || st.Model.Second != "reviews" || st.Model.Index != "flat" {
		t.Errorf("stats model = %+v", st.Model)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hz.StatusCode)
	}
}

// TestWrongCorpusFilesRefusedAtStartup: the daemon names corpora from
// the snapshot's own metadata, so the name check in Bind cannot catch an
// operator pointing -first/-second at the wrong files — coverage
// validation must.
func TestWrongCorpusFilesRefusedAtStartup(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(1))

	// Swapped format: a text file where the table was — document IDs get
	// the p-prefix, matching none of the snapshot's t-prefixed vectors.
	if _, err := newDaemon(secondPath, secondPath, modelPath, tdmatch.ServeConfig{}, 5, 0, daemonOptions{}); err == nil {
		t.Error("daemon started over a text file in place of the trained table")
	}

	// Truncated corpora: fewer documents than stored vectors.
	tiny := filepath.Join(t.TempDir(), "tiny.csv")
	if err := os.WriteFile(tiny, []byte("title,director,star,genre\nOnly Movie,Nobody,Noone,None\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tinyTxt := filepath.Join(t.TempDir(), "tiny.txt")
	if err := os.WriteFile(tinyTxt, []byte("one lonely review\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(tiny, tinyTxt, modelPath, tdmatch.ServeConfig{}, 5, 0, daemonOptions{}); err == nil {
		t.Error("daemon started with fewer documents than stored vectors")
	}

	// The matching files still work.
	if _, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{}, 5, 0, daemonOptions{}); err != nil {
		t.Errorf("daemon refused the correct corpora: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(1))
	_, ts := startDaemon(t, firstPath, secondPath, modelPath)

	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("topk without id: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/batch", batchRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("batch without ids: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "nosuch:doc"}, nil); status != http.StatusNotFound {
		t.Errorf("topk unknown doc: status %d, want 404", status)
	}
	resp, err := http.Get(ts.URL + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/topk: status %d, want 405", resp.StatusCode)
	}

	// Malformed k and doc IDs: 400 with a JSON error body, never a 500.
	var body map[string]string
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "reviews:p0", K: -3}, &body); status != http.StatusBadRequest {
		t.Errorf("topk with k=-3: status %d, want 400", status)
	}
	if body["error"] == "" {
		t.Errorf("topk with k=-3: body %v, want a JSON error", body)
	}
	body = nil
	if status := postJSON(t, ts.URL+"/v1/batch", batchRequest{IDs: []string{"reviews:p0"}, K: -1}, &body); status != http.StatusBadRequest {
		t.Errorf("batch with k=-1: status %d, want 400", status)
	}
	if body["error"] == "" {
		t.Errorf("batch with k=-1: body %v, want a JSON error", body)
	}
	body = nil
	if status := postJSON(t, ts.URL+"/v1/batch", batchRequest{IDs: []string{"reviews:p0", ""}, K: 2}, &body); status != http.StatusBadRequest {
		t.Errorf("batch with empty id: status %d, want 400", status)
	}
	if body["error"] == "" {
		t.Errorf("batch with empty id: body %v, want a JSON error", body)
	}
}

// TestStatsReportsShardCounters: a daemon started with -shards=2 must
// surface nonzero per-shard scatter counters for the side that served
// the (cache-cold) queries.
func TestStatsReportsShardCounters(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(1))
	_, ts := startDaemon(t, firstPath, secondPath, modelPath) // shards=2
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "reviews:p0"}, nil); status != http.StatusOK {
		t.Fatalf("topk status %d", status)
	}
	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.FirstShards) != 2 || len(st.SecondShards) != 2 {
		t.Fatalf("shard stats = %+v / %+v, want 2 shards per side", st.FirstShards, st.SecondShards)
	}
	// A reviews-side query scans the first (movies) index.
	for si, sh := range st.FirstShards {
		if sh.Batches == 0 || sh.Queries == 0 {
			t.Errorf("first-side shard %d counters = %+v, want nonzero", si, sh)
		}
	}
}

// TestReloadSwapsUnderConcurrentTraffic hammers /v1/topk from several
// goroutines while /v1/reload re-reads the (retrained) snapshot — every
// request must succeed throughout the swaps. Run with -race in CI.
func TestReloadSwapsUnderConcurrentTraffic(t *testing.T) {
	firstPath, secondPath, modelPath, model := trainFixture(t, fixtureConfig(1))
	d, ts := startDaemon(t, firstPath, secondPath, modelPath)

	// Retrain under a different seed and overwrite the snapshot on disk,
	// as an offline training job would.
	first, err := tdmatch.LoadCorpus(firstPath, "movies")
	if err != nil {
		t.Fatal(err)
	}
	second, err := tdmatch.LoadCorpus(secondPath, "reviews")
	if err != nil {
		t.Fatal(err)
	}
	retrained, err := tdmatch.Build(first, second, fixtureConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := retrained.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 0, 6)
	for id := range model.Vectors() {
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var got topkResponse
				id := ids[(w+i)%len(ids)]
				if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: id, K: 2}, &got); status != http.StatusOK {
					select {
					case errs <- fmt.Errorf("topk(%s) status %d during reload", id, status):
					default:
					}
					return
				}
			}
		}(w)
	}
	const reloads = 5
	for i := 0; i < reloads; i++ {
		if status := postJSON(t, ts.URL+"/v1/reload", struct{}{}, nil); status != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, status)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := d.server.Stats().Reloads; got != reloads {
		t.Errorf("reloads = %d, want %d", got, reloads)
	}
	// The daemon now serves the retrained model's rankings.
	want, err := retrained.TopK(ids[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	var got topkResponse
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: ids[0], K: 2}, &got); status != http.StatusOK {
		t.Fatalf("post-reload topk status %d", status)
	}
	wantIDs := make([]string, len(want))
	for i, m := range want {
		wantIDs[i] = m.ID
	}
	gotIDs := make([]string, len(got.Matches))
	for i, m := range got.Matches {
		gotIDs[i] = m.ID
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Errorf("post-reload ranking %v != retrained model's %v", gotIDs, wantIDs)
	}

	// A reload against a broken snapshot must fail loudly and keep the
	// old model serving.
	if err := os.WriteFile(modelPath, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := postJSON(t, ts.URL+"/v1/reload", struct{}{}, nil); status != http.StatusInternalServerError {
		t.Errorf("reload of corrupt snapshot: status %d, want 500", status)
	}
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: ids[0], K: 2}, nil); status != http.StatusOK {
		t.Errorf("serving broken after failed reload: status %d", status)
	}
}

// TestIngestOverHTTPServesImmediately is the live-ingest acceptance
// check: a document POSTed to /v1/ingest must be served by the very
// next query — including a (query, k) pair whose pre-ingest ranking was
// cached, proving the generation bump invalidates the result cache —
// with the /v1/stats counters tracking the mutation.
func TestIngestOverHTTPServesImmediately(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(1))
	_, ts := startDaemon(t, firstPath, secondPath, modelPath)

	// Cache a corpus-covering ranking for a movie before the ingest.
	query, k := "movies:t1", 10
	var before topkResponse
	for i := 0; i < 2; i++ { // second call is a cache hit
		if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: query, K: k}, &before); status != http.StatusOK {
			t.Fatalf("pre-ingest topk status %d", status)
		}
	}
	for _, m := range before.Matches {
		if m.ID == "reviews:live" {
			t.Fatal("fixture already contains the ingest doc")
		}
	}

	// Ingest a new review over HTTP.
	var ing mutateResponse
	status := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Docs: []ingestDocJSON{
		{Side: 2, ID: "reviews:live", Values: []string{"another hilarious Tarantino film with Bruce Willis"}},
	}}, &ing)
	if status != http.StatusOK || ing.Status != "ok" || ing.Docs != 1 || ing.Staleness != 1 {
		t.Fatalf("ingest status %d, response %+v", status, ing)
	}

	// The same (query, k) must now include the new document — no stale
	// cached ranking across the generation bump.
	var after topkResponse
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: query, K: k}, &after); status != http.StatusOK {
		t.Fatalf("post-ingest topk status %d", status)
	}
	found := false
	for _, m := range after.Matches {
		if m.ID == "reviews:live" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested doc absent from post-ingest ranking: %+v", after.Matches)
	}
	// The ingested document answers queries itself.
	var own topkResponse
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "reviews:live", K: 3}, &own); status != http.StatusOK {
		t.Fatalf("topk for ingested doc: status %d", status)
	}
	if len(own.Matches) != 3 {
		t.Fatalf("ingested doc ranking = %+v", own.Matches)
	}

	// Stats report the mutation.
	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ingests != 1 || st.IngestedDocs != 1 || st.Staleness != 1 {
		t.Errorf("stats after ingest = ingests %d, ingested_docs %d, staleness %d",
			st.Ingests, st.IngestedDocs, st.Staleness)
	}

	// Remove it again over HTTP: rankings drop it, queries 404.
	var rm mutateResponse
	if status := postJSON(t, ts.URL+"/v1/remove", removeRequest{IDs: []string{"reviews:live"}}, &rm); status != http.StatusOK || rm.Staleness != 2 {
		t.Fatalf("remove status %d, response %+v", status, rm)
	}
	var gone topkResponse
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: query, K: k}, &gone); status != http.StatusOK {
		t.Fatalf("post-remove topk status %d", status)
	}
	for _, m := range gone.Matches {
		if m.ID == "reviews:live" {
			t.Error("removed doc still ranked")
		}
	}
	if status := postJSON(t, ts.URL+"/v1/topk", topkRequest{ID: "reviews:live", K: 3}, nil); status != http.StatusNotFound {
		t.Errorf("topk for removed doc: status %d, want 404", status)
	}

	// Bad requests.
	if status := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("empty ingest: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Docs: []ingestDocJSON{{Side: 7, ID: "x"}}}, nil); status != http.StatusBadRequest {
		t.Errorf("bad side: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/remove", removeRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("empty remove: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/remove", removeRequest{IDs: []string{"nosuch:doc"}}, nil); status != http.StatusNotFound {
		t.Errorf("unknown remove: status %d, want 404", status)
	}
	if status := postJSON(t, ts.URL+"/v1/remove", removeRequest{IDs: []string{"movies:t0", "movies:t0"}}, nil); status != http.StatusBadRequest {
		t.Errorf("duplicate remove: status %d, want 400", status)
	}
}

// TestV6SnapshotDaemonRoundTrip is the daemon-level v6 round trip: a
// model saved in the flat mmap format starts the daemon (zero-copy
// load), serves rankings identical to the in-process model, and a
// checkpoint in the default format rewrites the file as v6 — which the
// next daemon start loads again.
func TestV6SnapshotDaemonRoundTrip(t *testing.T) {
	firstPath, secondPath, modelPath, model := trainFixture(t, fixtureConfig(17))
	// Re-save the fixture in v6 over the gob file trainFixture wrote.
	if err := model.SaveFileV6(modelPath); err != nil {
		t.Fatal(err)
	}

	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{})
	if got := d.info().Version; got != 6 {
		t.Fatalf("daemon loaded snapshot version %d, want 6", got)
	}
	var resp struct {
		Matches []tdmatch.Match `json:"matches"`
	}
	if code := postJSON(t, ts.URL+"/v1/topk", map[string]any{"id": "reviews:p0", "k": 3}, &resp); code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	want, err := model.TopK("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Matches, want) {
		t.Fatalf("v6-served rankings diverge:\ngot:  %v\nwant: %v", resp.Matches, want)
	}

	// The default checkpoint format is v6: the rewritten file must open
	// with the v6 magic and restart the daemon.
	if err := d.checkpoint(); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 8)
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if string(head) != "TDMSNAP6" {
		t.Fatalf("checkpoint wrote magic %q, want TDMSNAP6", head)
	}
	d2, _ := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{snapVerify: "lazy"})
	if got := d2.info().Version; got != 6 {
		t.Fatalf("restart loaded snapshot version %d, want 6", got)
	}

	// And -snapshot-format=gob keeps the classic format available.
	d3, _ := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{snapFormat: "gob"})
	if err := d3.checkpoint(); err != nil {
		t.Fatal(err)
	}
	info, err := tdmatch.ReadModelInfoFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 5 {
		t.Fatalf("gob checkpoint wrote version %d, want 5", info.Version)
	}
}

// TestHNSWSnapshotDaemonRoundTrip starts the daemon over a v6 snapshot
// of an HNSW-served model: the graph sections bind zero-copy, /v1/topk
// matches the in-process model, /v1/stats describes the graph in its
// per-side index block, and a checkpoint restarts cleanly.
func TestHNSWSnapshotDaemonRoundTrip(t *testing.T) {
	cfg := fixtureConfig(23)
	cfg.Index = tdmatch.IndexHNSW
	cfg.HNSWM = 4
	cfg.HNSWEf = 8
	cfg.HNSWEfConstruct = 16
	firstPath, secondPath, modelPath, model := trainFixture(t, cfg)
	if err := model.SaveFileV6(modelPath); err != nil {
		t.Fatal(err)
	}

	d, ts := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{})
	info := d.info()
	if info.Version != 6 || info.Index != tdmatch.IndexHNSW {
		t.Fatalf("daemon loaded version %d index %v, want 6/hnsw", info.Version, info.Index)
	}

	var resp struct {
		Matches []tdmatch.Match `json:"matches"`
	}
	if code := postJSON(t, ts.URL+"/v1/topk", map[string]any{"id": "reviews:p0", "k": 3}, &resp); code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	want, err := model.TopK("reviews:p0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Matches, want) {
		t.Fatalf("hnsw-served rankings diverge:\ngot:  %v\nwant: %v", resp.Matches, want)
	}

	var stats statsResponse
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if m := stats.Model; m.Index != "hnsw" || m.HNSWM != 4 || m.HNSWEf != 8 || m.HNSWEfC != 16 {
		t.Errorf("stats model block = %+v, want hnsw 4/8/16", stats.Model)
	}
	for side, st := range map[string]tdmatch.IndexStats{"first": stats.FirstIndex, "second": stats.SecondIndex} {
		if st.Kind != "hnsw" || st.LiveRows == 0 || st.AvgDegree <= 0 || st.Ef != 8 {
			t.Errorf("%s index block does not describe the graph: %+v", side, st)
		}
	}

	// A checkpoint rewrites the graph sections deterministically and the
	// next start binds them again.
	if err := d.checkpoint(); err != nil {
		t.Fatal(err)
	}
	d2, _ := startDaemonWith(t, firstPath, secondPath, modelPath, daemonOptions{})
	if got := d2.info(); got.Version != 6 || got.Index != tdmatch.IndexHNSW {
		t.Fatalf("restart loaded version %d index %v, want 6/hnsw", got.Version, got.Index)
	}
}

// TestBadSnapshotFlagsRejected pins the flag validation in newDaemon.
func TestBadSnapshotFlagsRejected(t *testing.T) {
	firstPath, secondPath, modelPath, _ := trainFixture(t, fixtureConfig(35))
	if _, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{Workers: 1}, 5, 0,
		daemonOptions{snapFormat: "msgpack"}); err == nil {
		t.Error("unknown -snapshot-format accepted")
	}
	if _, err := newDaemon(firstPath, secondPath, modelPath, tdmatch.ServeConfig{Workers: 1}, 5, 0,
		daemonOptions{snapVerify: "paranoid"}); err == nil {
		t.Error("unknown -snapshot-verify accepted")
	}
}
