// Command tdmatch matches the documents of two corpora from files, using
// the unsupervised graph-embedding pipeline.
//
// Corpus formats are selected by extension: .csv/.tsv are tables (first
// row is the header), .json is a taxonomy (array of {id, text, parent}
// objects), anything else is one text document per line.
//
// Usage:
//
//	tdmatch -first movies.csv -second reviews.txt -k 5
//	tdmatch -first tax.json -second docs.txt -kb triples.tsv -expand
//	tdmatch -first movies.csv -second reviews.txt -index ivf -nprobe 4
//	tdmatch -first movies.csv -second reviews.txt -index sq8 -sq8-rerank 8
//	tdmatch -first movies.csv -second reviews.txt -save model.gob
//
// The optional -kb file holds tab-separated (subject, predicate, object)
// triples used for graph expansion; -synonyms holds comma-separated
// synonym groups (first entry is canonical), one group per line. -save
// writes the trained model snapshot for cmd/tdserved to serve.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tdmatch/tdmatch"
)

// Note: the -dot flag renders the built graph via the model's DOT dump,
// which is wired through the public API below.

func main() {
	var (
		firstPath  = flag.String("first", "", "first corpus file (vocabulary-defining side)")
		secondPath = flag.String("second", "", "second corpus file (query side)")
		k          = flag.Int("k", 5, "matches per document")
		kbPath     = flag.String("kb", "", "optional TSV triples file for graph expansion")
		synPath    = flag.String("synonyms", "", "optional synonym-groups file (comma separated, canonical first)")
		doExpand   = flag.Bool("expand", false, "expand the graph with the -kb resource")
		compress   = flag.Bool("compress", false, "apply MSP compression (ratio 0.5)")
		walks      = flag.Int("walks", 20, "random walks per node")
		length     = flag.Int("length", 30, "random walk length")
		dim        = flag.Int("dim", 96, "embedding dimensions")
		seed       = flag.Int64("seed", 1, "random seed")
		fromFirst  = flag.Bool("from-first", false, "query from the first corpus instead of the second")
		dotPath    = flag.String("dot", "", "write the built graph in Graphviz DOT format to this file")
		savePath   = flag.String("save", "", "write the trained model snapshot to this file (serve it with tdserved)")
		saveFormat = flag.String("snapshot-format", "v6", "snapshot format for -save: v6 (flat, mmap-loadable) or gob")
		indexKind  = flag.String("index", "flat", "serving index: flat (exact scan), ivf (clustered ANN), sq8 (int8-quantized scan + exact re-rank) or hnsw (graph ANN + exact re-rank)")
		clusters   = flag.Int("clusters", 0, "IVF partitions (0 = sqrt of corpus size)")
		nprobe     = flag.Int("nprobe", 0, "IVF partitions probed per query (0 = adaptive half)")
		exact      = flag.Bool("exact-recall", false, "force IVF to probe every partition (flat-identical rankings)")
		sq8Rerank  = flag.Int("sq8-rerank", 0, "SQ8 re-rank multiplier: re-score this many times k candidates exactly (0 = default 4)")
		hnswM      = flag.Int("hnsw-m", 0, "HNSW neighbors per node per layer (0 = default 16)")
		hnswEf     = flag.Int("hnsw-ef", 0, "HNSW query beam width (0 = default 96)")
		hnswEfc    = flag.Int("hnsw-ef-construct", 0, "HNSW construction beam width (0 = default 128)")
	)
	flag.Parse()
	if *firstPath == "" || *secondPath == "" {
		fmt.Fprintln(os.Stderr, "tdmatch: -first and -second are required")
		os.Exit(2)
	}
	if *saveFormat != "v6" && *saveFormat != "gob" {
		fmt.Fprintf(os.Stderr, "tdmatch: unknown -snapshot-format %q (want v6 or gob)\n", *saveFormat)
		os.Exit(2)
	}

	first, err := tdmatch.LoadCorpus(*firstPath, "first")
	fatal(err)
	second, err := tdmatch.LoadCorpus(*secondPath, "second")
	fatal(err)

	cfg := tdmatch.Defaults()
	cfg.Seed = *seed
	cfg.NumWalks = *walks
	cfg.WalkLength = *length
	cfg.Dim = *dim
	kind, err := parseIndexKind(*indexKind)
	if err != nil {
		// An unknown index kind is a usage error: say so loudly and show
		// the flag set rather than silently serving from the flat scan.
		fmt.Fprintln(os.Stderr, "tdmatch:", err)
		flag.Usage()
		os.Exit(2)
	}
	cfg.Index = kind
	cfg.IVFClusters = *clusters
	cfg.IVFNProbe = *nprobe
	cfg.ExactRecall = *exact
	cfg.SQ8Rerank = *sq8Rerank
	cfg.HNSWM = *hnswM
	cfg.HNSWEf = *hnswEf
	cfg.HNSWEfConstruct = *hnswEfc
	if *compress {
		cfg.Compression = tdmatch.CompressMSP
	}
	if *synPath != "" {
		groups, err := loadSynonyms(*synPath)
		fatal(err)
		cfg.SynonymGroups = groups
	}
	if *doExpand {
		if *kbPath == "" {
			fmt.Fprintln(os.Stderr, "tdmatch: -expand requires -kb")
			os.Exit(2)
		}
		triples, err := loadTriples(*kbPath)
		fatal(err)
		cfg.Resource = tdmatch.NewMemoryResource(triples)
	}

	model, err := tdmatch.Build(first, second, cfg)
	fatal(err)
	st := model.Stats()
	fmt.Fprintf(os.Stderr, "graph: %d nodes, %d edges (expanded: %d/%d) built in %s\n",
		st.GraphNodes, st.GraphEdges, st.ExpandedNodes, st.ExpandedEdges, st.BuildTime)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		fatal(err)
		fatal(model.WriteGraphDOT(f, "tdmatch"))
		fatal(f.Close())
	}

	if *savePath != "" {
		if *saveFormat == "gob" {
			fatal(model.SaveFile(*savePath))
		} else {
			fatal(model.SaveFileV6(*savePath))
		}
		fmt.Fprintf(os.Stderr, "saved model snapshot to %s (%s)\n", *savePath, *saveFormat)
	}

	for q, matches := range model.MatchAll(!*fromFirst, *k) {
		parts := make([]string, len(matches))
		for i, m := range matches {
			parts[i] = m.String()
		}
		fmt.Printf("%s\t%s\n", q, strings.Join(parts, "\t"))
	}
}

func parseIndexKind(s string) (tdmatch.IndexKind, error) {
	switch s {
	case "flat", "":
		return tdmatch.IndexFlat, nil
	case "ivf":
		return tdmatch.IndexIVF, nil
	case "sq8":
		return tdmatch.IndexSQ8, nil
	case "hnsw":
		return tdmatch.IndexHNSW, nil
	default:
		return 0, fmt.Errorf("unknown -index %q (want flat, ivf, sq8 or hnsw)", s)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdmatch:", err)
		os.Exit(1)
	}
}

func loadTriples(path string) ([][3]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][3]string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 3 {
			continue
		}
		out = append(out, [3]string{fields[0], fields[1], fields[2]})
	}
	return out, sc.Err()
}

func loadSynonyms(path string) ([]tdmatch.Synonyms, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []tdmatch.Synonyms
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if len(fields) < 2 {
			continue
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		out = append(out, tdmatch.Synonyms{Canonical: fields[0], Variants: fields[1:]})
	}
	return out, sc.Err()
}
