package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tdmatch/tdmatch"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseIndexKind(t *testing.T) {
	for s, want := range map[string]tdmatch.IndexKind{
		"flat": tdmatch.IndexFlat, "": tdmatch.IndexFlat, "ivf": tdmatch.IndexIVF,
		"sq8": tdmatch.IndexSQ8, "hnsw": tdmatch.IndexHNSW,
	} {
		got, err := parseIndexKind(s)
		if err != nil || got != want {
			t.Errorf("parseIndexKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseIndexKind("annoy"); err == nil {
		t.Error("want error for unknown index kind")
	}
}

func TestLoadTriples(t *testing.T) {
	path := writeFile(t, "kb.tsv",
		"tarantino\tstyle\tcomedy\nbad line without tabs\nwillis\tstarring\tpulp fiction\n")
	triples, err := loadTriples(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 2 {
		t.Fatalf("triples = %d, want 2 (malformed line skipped)", len(triples))
	}
	if triples[0] != [3]string{"tarantino", "style", "comedy"} {
		t.Errorf("triple = %v", triples[0])
	}
	if _, err := loadTriples(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestLoadSynonyms(t *testing.T) {
	path := writeFile(t, "syn.csv",
		"bruce willis, b willis , willis bruce\nsingleton\npdca,plan do check act\n")
	groups, err := loadSynonyms(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (singleton skipped)", len(groups))
	}
	if groups[0].Canonical != "bruce willis" || len(groups[0].Variants) != 2 {
		t.Errorf("group = %+v", groups[0])
	}
	if groups[0].Variants[0] != "b willis" {
		t.Errorf("variant not trimmed: %q", groups[0].Variants[0])
	}
	if _, err := loadSynonyms(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("want error for missing file")
	}
}
