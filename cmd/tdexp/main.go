// Command tdexp regenerates the paper's evaluation artefacts (Tables I-VIII
// and Figures 6-10, plus the §V-F ablations) on the synthetic scenario
// suite and prints them as aligned text tables.
//
// Usage:
//
//	tdexp -exp table1              # one experiment
//	tdexp -exp table1,fig9         # several
//	tdexp -exp all -scale small    # everything, bench scale
//	tdexp -list                    # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tdmatch/tdmatch/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		scale   = flag.String("scale", "small", "dataset scale: small | standard")
		seed    = flag.Int64("seed", 7, "random seed for datasets and training")
		workers = flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tdexp: -exp is required (try -list)")
		os.Exit(2)
	}

	sc, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdexp: %v\n", err)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Workers = *workers

	ids := expandExperimentIDs(*exp)
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

// parseScale resolves the -scale flag value to a dataset scale.
func parseScale(name string) (experiments.Scale, error) {
	switch name {
	case "small":
		return experiments.Small, nil
	case "standard":
		return experiments.Standard, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// expandExperimentIDs resolves the -exp flag value to the experiment
// list: "all" selects every registered experiment, otherwise the
// comma-separated IDs are trimmed and empties dropped.
func expandExperimentIDs(exp string) []string {
	if exp == "all" {
		return experiments.IDs()
	}
	var ids []string
	for _, id := range strings.Split(exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}
