package main

import (
	"reflect"
	"testing"

	"github.com/tdmatch/tdmatch/internal/experiments"
)

func TestParseScale(t *testing.T) {
	small, err := parseScale("small")
	if err != nil || !reflect.DeepEqual(small, experiments.Small) {
		t.Errorf("parseScale(small) = %+v, %v", small, err)
	}
	std, err := parseScale("standard")
	if err != nil || !reflect.DeepEqual(std, experiments.Standard) {
		t.Errorf("parseScale(standard) = %+v, %v", std, err)
	}
	if _, err := parseScale("galactic"); err == nil {
		t.Error("want error for unknown scale")
	}
}

func TestExpandExperimentIDs(t *testing.T) {
	if got := expandExperimentIDs("all"); !reflect.DeepEqual(got, experiments.IDs()) {
		t.Errorf("all = %v", got)
	}
	got := expandExperimentIDs(" table1, fig9 ,,")
	if !reflect.DeepEqual(got, []string{"table1", "fig9"}) {
		t.Errorf("split = %v", got)
	}
	if got := expandExperimentIDs(""); len(got) != 0 {
		t.Errorf("empty = %v", got)
	}
}

// TestRunSmallestExperimentSmoke drives one registered experiment end
// to end at a trimmed scale — the smoke coverage main() previously had
// none of: every ID must be resolvable and the runner must produce a
// printable table.
func TestRunSmallestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	ids := experiments.IDs()
	if len(ids) == 0 {
		t.Fatal("no registered experiments")
	}
	sc := experiments.Scale{
		IMDbMovies: 12, CoronaCountries: 4, CoronaGenClaims: 12, CoronaUsrClaims: 6,
		AuditLevel1: 2, AuditConcepts: 4, AuditDocuments: 12, ClaimsFactor: 0.2,
		STSPairs: 12, GeneralSentences: 40,
		NumWalks: 3, WalkLength: 6, Dim: 12, Epochs: 1, Seed: 5, Workers: 2,
	}
	tbl, err := experiments.Run("table1", sc)
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("table1 produced no rows")
	}
	if _, err := experiments.Run("nosuch", sc); err == nil {
		t.Error("unknown experiment ID must fail")
	}
}
