package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms, sorted
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.50, 51 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	if got := percentile(one, 0.99); got != 7*time.Millisecond {
		t.Errorf("percentile(single, .99) = %v", got)
	}
}

func TestParseConcurrency(t *testing.T) {
	got, err := parseConcurrency(" 1, 8 ,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 2 {
		t.Fatalf("parseConcurrency = %v", got)
	}
	for _, bad := range []string{"", "0", "-2", "a", "1,,x"} {
		if _, err := parseConcurrency(bad); err == nil {
			t.Errorf("parseConcurrency(%q) accepted", bad)
		}
	}
}

// TestRunLevelSmoke drives a real in-process server for a short window
// at two concurrency levels and checks the report is sane: nonzero
// query count and QPS, zero errors, ordered percentiles.
func TestRunLevelSmoke(t *testing.T) {
	model, ids, err := buildSynthModel(60, 16, "flat", 1)
	if err != nil {
		t.Fatal(err)
	}
	tg := newInproc(model, 2, 0, false, -1)
	defer tg.Close()
	if err := tg.topk(ids[0], 5); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	for _, dist := range []string{"zipf", "uniform"} {
		for _, conc := range []int{1, 2} {
			lv := runLevel(tg, ids, 5, conc, 150*time.Millisecond, 0, dist, 1, 0, 2, 0)
			if lv.Queries == 0 || lv.QPS <= 0 {
				t.Fatalf("%s c=%d: no throughput: %+v", dist, conc, lv)
			}
			if lv.Errors != 0 {
				t.Fatalf("%s c=%d: %d errors", dist, conc, lv.Errors)
			}
			if lv.P50Ns > lv.P95Ns || lv.P95Ns > lv.P99Ns {
				t.Fatalf("%s c=%d: percentiles out of order: %+v", dist, conc, lv)
			}
		}
	}
}

// TestRunLevelWarmup checks that -warmup traffic reaches the target but
// stays out of the report: a warmed level's counters must look exactly
// like a cold one's (queries counted from the measured window only).
func TestRunLevelWarmup(t *testing.T) {
	model, ids, err := buildSynthModel(60, 16, "hnsw", 1)
	if err != nil {
		t.Fatal(err)
	}
	tg := newInproc(model, 0, 0, false, -1)
	defer tg.Close()
	lv := runLevel(tg, ids, 5, 2, 100*time.Millisecond, 0, "uniform", 1, 0, 2, 40)
	if lv.Queries == 0 || lv.Errors != 0 {
		t.Fatalf("warmed level: %+v", lv)
	}
	if lv.DurationSec > 0.5 {
		t.Fatalf("warm-up leaked into the measured window: %.3fs", lv.DurationSec)
	}
}

// TestRunLevelPacing checks -qps throttling: a 200ms window offered 50
// QPS must complete far fewer queries than the closed loop would.
func TestRunLevelPacing(t *testing.T) {
	model, ids, err := buildSynthModel(60, 16, "flat", 1)
	if err != nil {
		t.Fatal(err)
	}
	tg := newInproc(model, 0, 0, false, -1)
	defer tg.Close()
	lv := runLevel(tg, ids, 5, 2, 200*time.Millisecond, 50, "uniform", 1, 0, 2, 0)
	// 50 QPS over 200ms is ~10 queries; allow generous slack for timer
	// jitter but fail if the throttle clearly did not engage.
	if lv.Queries == 0 || lv.Queries > 30 {
		t.Fatalf("pacing off: %d queries in %.0fms at 50 QPS", lv.Queries, lv.DurationSec*1000)
	}
}

// TestRunLevelIngestMix verifies the -ingest-frac workload: a pure
// ingest level acknowledges mutations (unique IDs, so no conflicts)
// and reports them separately from queries and errors.
func TestRunLevelIngestMix(t *testing.T) {
	model, ids, err := buildSynthModel(60, 16, "flat", 1)
	if err != nil {
		t.Fatal(err)
	}
	tg := newInproc(model, 0, 1, false, -1)
	defer tg.Close()
	lv := runLevel(tg, ids, 5, 2, 150*time.Millisecond, 0, "uniform", 1, 1.0, 2, 0)
	if lv.Errors != 0 {
		t.Fatalf("ingest mix: %d errors", lv.Errors)
	}
	if lv.Ingests == 0 {
		t.Fatalf("ingest mix acknowledged nothing: %+v", lv)
	}
	if lv.Ingests != lv.Queries {
		t.Fatalf("frac=1.0 level mixes %d ingests into %d requests", lv.Ingests, lv.Queries)
	}
}

// TestValidateWorkloadFlags pins the usage errors of the workload-shape
// flags: bad distributions, out-of-range ingest fractions and negative
// pacing rates are rejected before any work starts, and every valid
// combination — including a paced ingest mix — passes.
func TestValidateWorkloadFlags(t *testing.T) {
	for _, tc := range []struct {
		name       string
		dist       string
		ingestFrac float64
		qps        float64
		wantErr    bool
	}{
		{"defaults", "zipf", 0, 0, false},
		{"uniform paced", "uniform", 0, 500, false},
		{"paced ingest mix", "zipf", 0.25, 100, false},
		{"pure ingest", "zipf", 1, 0, false},
		{"unknown dist", "pareto", 0, 0, true},
		{"negative ingest frac", "zipf", -0.1, 0, true},
		{"ingest frac above one", "zipf", 1.5, 0, true},
		{"negative qps", "zipf", 0, -10, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := validateWorkloadFlags(tc.dist, tc.ingestFrac, tc.qps)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateWorkloadFlags(%q, %g, %g) = %v, wantErr %v",
					tc.dist, tc.ingestFrac, tc.qps, err, tc.wantErr)
			}
		})
	}
}
