// Command tdload is the serving-latency load harness: it drives TopK
// queries at one or more fixed concurrency levels — against an
// in-process Server (a model snapshot or a synthetic build) or a
// running tdserved daemon over HTTP — and reports achieved QPS plus
// p50/p95/p99 request latency per level as JSON. With -out/-label the
// levels are also appended to the BENCH_build.json performance
// trajectory (internal/benchfmt), next to the go-test benchmark
// entries, so serving latency is tracked across PRs with the same
// tooling as build-side ns/op.
//
// Usage:
//
//	tdload -synth 2000 -index sq8 -shards 4 -concurrency 1,8 -duration 3s
//	tdload -first movies.csv -second reviews.txt -model model.gob -concurrency 2
//	tdload -addr http://localhost:8080 -ids queries.txt -qps 500
//
// Queries are drawn from the query-side document IDs with a Zipf
// (default) or uniform distribution; -qps throttles total offered load
// (0 = closed loop, each worker fires as fast as answers return). The
// result cache is disabled by default so latencies measure the index
// scan, not cache hits; -cache re-enables it to measure the production
// mix. -warmup N fires N discarded read-only queries per level before
// its measured window — cold-start effects (page faults on a mapped
// snapshot, pool spin-up) stay out of the percentiles; warm-up traffic
// is never paced, -qps throttles only the measured window. -min-qps
// turns the harness into a smoke check: exit status 1 when any level
// undershoots, for CI.
//
// -ingest-frac mixes single-document ingest mutations into the load
// (each with a unique generated ID), reporting acknowledged ingests per
// level. Mutations draw from the same -qps token budget as reads: the
// total offered rate stays at -qps, with roughly ingest-frac of it
// spent on ingests, so read throughput under pacing drops by about that
// fraction rather than mutations arriving on top. Against a daemon
// running with -wal this is the durability drill: kill -TERM the daemon
// mid-run, restart it, and every ingest tdload reported as acknowledged
// must still be served — 503 sheds during the drain are counted
// separately and do not fail the run.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tdmatch/tdmatch"
	"github.com/tdmatch/tdmatch/internal/benchfmt"
)

func main() {
	var (
		synthN     = flag.Int("synth", 0, "build a synthetic in-process model with this many documents per side")
		indexKind  = flag.String("index", "flat", "index kind for -synth: flat, ivf, sq8 or hnsw")
		dim        = flag.Int("dim", 48, "embedding dimension for -synth")
		firstPath  = flag.String("first", "", "first corpus file (snapshot mode, as passed to the training run)")
		secondPath = flag.String("second", "", "second corpus file (snapshot mode)")
		modelPath  = flag.String("model", "", "model snapshot written by tdmatch -save (snapshot mode)")
		addr       = flag.String("addr", "", "base URL of a running tdserved (HTTP mode, e.g. http://localhost:8080)")
		idsPath    = flag.String("ids", "", "file of query document IDs, one per line (required with -addr, optional override otherwise)")
		k          = flag.Int("k", 10, "matches requested per query")
		duration   = flag.Duration("duration", 3*time.Second, "measurement duration per concurrency level")
		concList   = flag.String("concurrency", "1,4", "comma-separated concurrency levels, each run for -duration")
		qps        = flag.Float64("qps", 0, "total offered queries per second, ingest mutations included (0 = closed loop, unthrottled)")
		dist       = flag.String("dist", "zipf", "query-ID distribution: zipf or uniform")
		seed       = flag.Int64("seed", 1, "seed for query selection (and the synthetic build)")
		shards     = flag.Int("shards", 0, "scatter-gather shards for the in-process model (0 = model/auto, negative disables)")
		workers    = flag.Int("workers", 0, "serving worker-pool size (0 = model default, GOMAXPROCS)")
		cache      = flag.Bool("cache", false, "enable the result cache (disabled by default so latency measures the scan)")
		batchWin   = flag.Duration("batch-window", -1, "micro-batch coalescing window (negative disables, 0 = model default)")
		out        = flag.String("out", "", "append the levels to this benchfmt trajectory file (e.g. BENCH_build.json)")
		label      = flag.String("label", "", "trajectory entry label recorded with -out")
		minQPS     = flag.Float64("min-qps", 0, "exit nonzero when any level's achieved QPS is below this")
		ingestFrac = flag.Float64("ingest-frac", 0, "fraction of requests that are single-doc ingest mutations, drawn per request (0 = read-only); under -qps pacing, mutations spend the same token budget as reads, so offered load stays qps total and read throughput drops by roughly the fraction")
		ingestSide = flag.Int("ingest-side", 2, "corpus side the generated ingest documents join")
		warmupN    = flag.Int("warmup", 0, "discarded read-only iterations per concurrency level before the measured window; warm-up traffic is unpaced (-qps throttles only the measured window)")
	)
	flag.Parse()

	levels, err := parseConcurrency(*concList)
	if err != nil {
		fatal(err)
	}
	if err := validateWorkloadFlags(*dist, *ingestFrac, *qps); err != nil {
		fatal(err)
	}

	var (
		tg   target
		ids  []string
		mode string
	)
	switch {
	case *addr != "":
		if *idsPath == "" {
			fatal(fmt.Errorf("-addr requires -ids (the daemon does not list query IDs)"))
		}
		ids, err = readIDs(*idsPath)
		if err != nil {
			fatal(err)
		}
		tg = &httpTarget{base: strings.TrimRight(*addr, "/")}
		mode = "http"
	case *modelPath != "":
		model, queryIDs, err := loadSnapshotModel(*firstPath, *secondPath, *modelPath)
		if err != nil {
			fatal(err)
		}
		tg, ids = newInproc(model, *shards, *workers, *cache, *batchWin), queryIDs
		mode = "snapshot"
	case *synthN > 0:
		model, queryIDs, err := buildSynthModel(*synthN, *dim, *indexKind, *seed)
		if err != nil {
			fatal(err)
		}
		tg, ids = newInproc(model, *shards, *workers, *cache, *batchWin), queryIDs
		mode = "synth"
	default:
		fmt.Fprintln(os.Stderr, "tdload: one of -synth, -model or -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if c, ok := tg.(io.Closer); ok {
		defer c.Close()
	}
	if *idsPath != "" && mode != "http" {
		if ids, err = readIDs(*idsPath); err != nil {
			fatal(err)
		}
	}
	if len(ids) == 0 {
		fatal(fmt.Errorf("no query IDs to draw from"))
	}

	// One warm query so lazily-allocated serving state (HTTP connections,
	// pool goroutines) is paid before the measured window.
	if err := tg.topk(ids[0], *k); err != nil {
		fatal(fmt.Errorf("warm-up query %q failed: %w", ids[0], err))
	}

	rep := report{Mode: mode, Dist: *dist, K: *k, Shards: *shards, QueryIDs: len(ids)}
	for _, conc := range levels {
		fmt.Fprintf(os.Stderr, "tdload: level c=%d for %s...\n", conc, *duration)
		rep.Levels = append(rep.Levels, runLevel(tg, ids, *k, conc, *duration, *qps, *dist, *seed, *ingestFrac, *ingestSide, *warmupN))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	if *out != "" {
		entry := benchfmt.Entry{
			Label:      *label,
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			BenchTime:  duration.String(),
		}
		for _, lv := range rep.Levels {
			entry.Benchmarks = append(entry.Benchmarks, benchfmt.Result{
				Name:        fmt.Sprintf("TdloadTopK/c%d", lv.Concurrency),
				Iterations:  lv.Queries,
				NsPerOp:     lv.MeanNs,
				P50Ns:       float64(lv.P50Ns),
				P95Ns:       float64(lv.P95Ns),
				P99Ns:       float64(lv.P99Ns),
				QPS:         lv.QPS,
				Concurrency: lv.Concurrency,
			})
		}
		n, err := benchfmt.Append(*out, entry)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tdload: appended entry %d (%d levels) to %s\n", n, len(entry.Benchmarks), *out)
	}

	for _, lv := range rep.Levels {
		if *minQPS > 0 && lv.QPS < *minQPS {
			fmt.Fprintf(os.Stderr, "tdload: level c=%d achieved %.1f QPS, below -min-qps %.1f\n",
				lv.Concurrency, lv.QPS, *minQPS)
			os.Exit(1)
		}
		if lv.Errors > 0 {
			fmt.Fprintf(os.Stderr, "tdload: level c=%d had %d errors\n", lv.Concurrency, lv.Errors)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdload:", err)
	os.Exit(1)
}

// report is the stdout payload: one levelReport per -concurrency entry.
type report struct {
	Mode     string        `json:"mode"`
	Dist     string        `json:"dist"`
	K        int           `json:"k"`
	Shards   int           `json:"shards"`
	QueryIDs int           `json:"query_ids"`
	Levels   []levelReport `json:"levels"`
}

// levelReport is the measurement of one concurrency level.
type levelReport struct {
	Concurrency int   `json:"concurrency"`
	Queries     int64 `json:"queries"`
	Errors      int64 `json:"errors"`
	// Sheds counts 503/overload refusals — deliberate degradation, not
	// failures; Ingests counts acknowledged (durable, when the daemon
	// runs with -wal) mutations of a mixed -ingest-frac workload.
	Sheds       int64   `json:"sheds"`
	Ingests     int64   `json:"ingests"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
}

// errShed marks a request the target deliberately refused under
// overload or drain (HTTP 503, ErrOverloaded): the harness counts it
// separately from hard errors so a graceful-degradation run — tdload
// hammering a daemon while it drains on SIGTERM — still exits 0.
var errShed = errors.New("shed")

// target answers one TopK query or applies one ingest; the harness
// never looks at the ranking, only at latency and success.
type target interface {
	topk(id string, k int) error
	ingest(doc tdmatch.IngestDoc) error
}

// inprocTarget drives an in-process Server directly — no HTTP or JSON
// on the measured path, so latency is the serving pipeline itself.
type inprocTarget struct {
	s *tdmatch.Server
}

func (t *inprocTarget) topk(id string, k int) error {
	_, err := t.s.TopK(id, k)
	if errors.Is(err, tdmatch.ErrOverloaded) {
		return errShed
	}
	return err
}

func (t *inprocTarget) ingest(doc tdmatch.IngestDoc) error {
	return t.s.Ingest([]tdmatch.IngestDoc{doc})
}

// Close shuts the wrapped Server's micro-batch workers down.
func (t *inprocTarget) Close() error {
	t.s.Close()
	return nil
}

// newInproc wraps a model in a Server configured for the harness.
func newInproc(model *tdmatch.Model, shards, workers int, cache bool, batchWin time.Duration) *inprocTarget {
	if shards != 0 {
		model.Reshard(shards)
	}
	cacheSize := -1
	if cache {
		cacheSize = 0 // model default
	}
	return &inprocTarget{s: tdmatch.NewServer(model, tdmatch.ServeConfig{
		CacheSize:   cacheSize,
		BatchWindow: batchWin,
		Workers:     workers,
	})}
}

// httpTarget posts /v1/topk and /v1/ingest to a running tdserved.
type httpTarget struct {
	client http.Client
	base   string
}

func (t *httpTarget) topk(id string, k int) error {
	return t.post("/v1/topk", map[string]any{"id": id, "k": k})
}

func (t *httpTarget) ingest(doc tdmatch.IngestDoc) error {
	return t.post("/v1/ingest", map[string]any{"docs": []map[string]any{{
		"side": doc.Side, "id": doc.ID, "values": doc.Values,
	}}})
}

func (t *httpTarget) post(path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := t.client.Post(t.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return errShed
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// validateWorkloadFlags checks the workload-shape flags as one unit —
// the query distribution, the ingest mix and the pacing rate — so every
// misuse is a clean usage error instead of a surprising run (a negative
// -qps, for instance, would silently disable pacing).
func validateWorkloadFlags(dist string, ingestFrac, qps float64) error {
	if dist != "zipf" && dist != "uniform" {
		return fmt.Errorf("unknown -dist %q (want zipf or uniform)", dist)
	}
	if ingestFrac < 0 || ingestFrac > 1 {
		return fmt.Errorf("-ingest-frac %g out of range [0, 1]", ingestFrac)
	}
	if qps < 0 {
		return fmt.Errorf("-qps %g is negative (use 0 for an unthrottled closed loop)", qps)
	}
	return nil
}

// runLevel drives conc workers against the target for dur and folds
// their measurements into one levelReport. Each worker owns a seeded
// RNG (seed + worker index), so runs are reproducible for a fixed
// level list; qps > 0 paces each worker at qps/conc with per-worker
// phase offsets so the aggregate offered load is smooth.
//
// warmup > 0 first fires that many read-only queries (split across the
// conc workers, same ID distribution, offset seed) whose latencies are
// discarded — cold caches, first-touch page faults and JIT'd connection
// state land outside the measured window. Warm-up traffic ignores -qps:
// pacing starts with the measured window, so a paced run still warms at
// full speed.
func runLevel(tg target, ids []string, k, conc int, dur time.Duration, qps float64, dist string, seed int64, ingestFrac float64, ingestSide int, warmup int) levelReport {
	if warmup > 0 {
		var wwg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				rng := rand.New(rand.NewSource(seed + 104729 + int64(w)*7919))
				var zipf *rand.Zipf
				if dist == "zipf" && len(ids) > 1 {
					zipf = rand.NewZipf(rng, 1.1, 1, uint64(len(ids)-1))
				}
				for i := w; i < warmup; i += conc {
					id := ids[0]
					if zipf != nil {
						id = ids[zipf.Uint64()]
					} else if len(ids) > 1 {
						id = ids[rng.Intn(len(ids))]
					}
					tg.topk(id, k) // discarded: neither latency nor errors count
				}
			}(w)
		}
		wwg.Wait()
	}
	type workerOut struct {
		lats    []time.Duration
		errs    int64
		sheds   int64
		ingests int64
	}
	outs := make([]workerOut, conc)
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(conc) / qps * float64(time.Second))
	}
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			var zipf *rand.Zipf
			if dist == "zipf" && len(ids) > 1 {
				zipf = rand.NewZipf(rng, 1.1, 1, uint64(len(ids)-1))
			}
			next := start.Add(time.Duration(w) * interval / time.Duration(conc))
			o := &outs[w]
			o.lats = make([]time.Duration, 0, 4096)
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if interval > 0 {
					if sleep := next.Sub(now); sleep > 0 {
						time.Sleep(sleep)
						if !time.Now().Before(deadline) {
							return
						}
					}
					next = next.Add(interval)
				}
				var err error
				var wasIngest bool
				t0 := time.Now()
				if ingestFrac > 0 && rng.Float64() < ingestFrac {
					// A unique document per attempt: an acked ingest is a
					// durable write the daemon's WAL must preserve across a
					// concurrent kill -TERM.
					wasIngest = true
					o.ingests++ // counted as attempted, rolled back below on failure
					docID := fmt.Sprintf("load:c%d_w%d_%d", conc, w, len(o.lats))
					err = tg.ingest(tdmatch.IngestDoc{
						Side:   ingestSide,
						ID:     docID,
						Values: []string{"load harness generated document " + docID},
					})
				} else {
					id := ids[0]
					if zipf != nil {
						id = ids[zipf.Uint64()]
					} else if len(ids) > 1 {
						id = ids[rng.Intn(len(ids))]
					}
					err = tg.topk(id, k)
				}
				o.lats = append(o.lats, time.Since(t0))
				if err != nil {
					if wasIngest {
						o.ingests--
					}
					if errors.Is(err, errShed) {
						o.sheds++
					} else {
						o.errs++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	var errs, sheds, ingests int64
	for _, o := range outs {
		all = append(all, o.lats...)
		errs += o.errs
		sheds += o.sheds
		ingests += o.ingests
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, l := range all {
		sum += l
	}
	lv := levelReport{
		Concurrency: conc,
		Queries:     int64(len(all)),
		Errors:      errs,
		Sheds:       sheds,
		Ingests:     ingests,
		DurationSec: elapsed.Seconds(),
		P50Ns:       int64(percentile(all, 0.50)),
		P95Ns:       int64(percentile(all, 0.95)),
		P99Ns:       int64(percentile(all, 0.99)),
	}
	if len(all) > 0 {
		lv.QPS = float64(len(all)) / elapsed.Seconds()
		lv.MeanNs = float64(sum) / float64(len(all))
	}
	return lv
}

// percentile reads the p-quantile (0 <= p <= 1) of an ascending-sorted
// latency slice by nearest-rank interpolation.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// parseConcurrency splits "1,4,16" into sorted-as-given positive levels.
func parseConcurrency(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-concurrency is empty")
	}
	return out, nil
}

// readIDs loads query IDs, one per line, skipping blanks and #comments.
func readIDs(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ids = append(ids, line)
	}
	return ids, nil
}

// loadSnapshotModel mirrors tdserved's startup load: decode the
// snapshot once, bind it to the two corpora named in its metadata, and
// return the query-side (second corpus) IDs that have stored vectors.
func loadSnapshotModel(firstPath, secondPath, modelPath string) (*tdmatch.Model, []string, error) {
	if firstPath == "" || secondPath == "" {
		return nil, nil, fmt.Errorf("-model requires -first and -second")
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	snap, err := tdmatch.ReadSnapshot(f)
	if err != nil {
		return nil, nil, err
	}
	info := snap.Info()
	first, err := tdmatch.LoadCorpus(firstPath, info.FirstName)
	if err != nil {
		return nil, nil, fmt.Errorf("loading first corpus: %w", err)
	}
	second, err := tdmatch.LoadCorpus(secondPath, info.SecondName)
	if err != nil {
		return nil, nil, fmt.Errorf("loading second corpus: %w", err)
	}
	model, err := snap.Bind(first, second)
	if err != nil {
		return nil, nil, err
	}
	ids := embeddedIDs(model, second.IDs())
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no document of corpus %q has a stored vector — wrong corpus files for this snapshot?", second.Name())
	}
	return model, ids, nil
}

// buildSynthModel trains a small deterministic model over synthetic
// movie/review corpora (the shape of the serve benchmarks) with n
// documents per side.
func buildSynthModel(n, dim int, indexKind string, seed int64) (*tdmatch.Model, []string, error) {
	directors := []string{"shyamalan", "tarantino", "coppola", "mctiernan", "scorsese", "bigelow", "nolan", "villeneuve"}
	genres := []string{"thriller", "drama", "crime", "action", "comedy", "horror"}
	stars := []string{"willis", "brando", "grier", "phoenix", "thurman", "deniro", "weaver", "oldman"}
	rows := make([][]string, n)
	snippets := make([]string, n)
	for i := 0; i < n; i++ {
		d, g, s := directors[i%len(directors)], genres[i%len(genres)], stars[i%len(stars)]
		rows[i] = []string{fmt.Sprintf("movie number %d", i), d, s, g}
		snippets[i] = fmt.Sprintf("%s directs %s in a %s about movie number %d", d, s, g, i)
	}
	movies, err := tdmatch.NewTable("movies", []string{"title", "director", "star", "genre"}, rows, nil)
	if err != nil {
		return nil, nil, err
	}
	reviews, err := tdmatch.NewText("reviews", snippets, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg := tdmatch.Defaults()
	cfg.Seed = seed
	cfg.NumWalks = 4
	cfg.WalkLength = 10
	cfg.Dim = dim
	cfg.Epochs = 1
	switch indexKind {
	case "flat":
		cfg.Index = tdmatch.IndexFlat
	case "ivf":
		cfg.Index = tdmatch.IndexIVF
	case "sq8":
		cfg.Index = tdmatch.IndexSQ8
	case "hnsw":
		cfg.Index = tdmatch.IndexHNSW
	default:
		return nil, nil, fmt.Errorf("unknown -index %q (want flat, ivf, sq8 or hnsw)", indexKind)
	}
	model, err := tdmatch.Build(movies, reviews, cfg)
	if err != nil {
		return nil, nil, err
	}
	ids := embeddedIDs(model, reviews.IDs())
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("synthetic build produced no embedded query documents")
	}
	return model, ids, nil
}

// embeddedIDs filters candidate IDs down to those with stored vectors —
// the ones a TopK query can be answered for.
func embeddedIDs(m *tdmatch.Model, candidates []string) []string {
	var ids []string
	for _, id := range candidates {
		if m.Vector(id) != nil {
			ids = append(ids, id)
		}
	}
	return ids
}
