package tdmatch

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/tdmatch/tdmatch/internal/match"
)

// Tests for HNSW serving quality and persistence at the model level:
// the graph-searched beam must reach recall@10 >= 0.95 against the
// exact flat ranking on the seed IMDb dataset, the per-side IndexStats
// block must describe the graph, and a v6 snapshot must re-save
// byte-identically after a zero-copy bind.

// TestHNSWRecallOnIMDb is the graph-quality bar on the seed dataset
// with a beam narrow enough that the graph is actually searched (ef 24
// over a 60-row target index; the full-corpus delegation path would
// make this test vacuous).
func TestHNSWRecallOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, func(cfg *Config) {
		cfg.Index = IndexHNSW
		cfg.HNSWM = 8
		cfg.HNSWEf = 24
		cfg.HNSWEfConstruct = 48
	})
	fi, si := model.IndexStats()
	for _, st := range []IndexStats{fi, si} {
		if st.Kind != "hnsw" {
			t.Fatalf("IndexStats kind = %q, want hnsw", st.Kind)
		}
		if st.LiveRows == 0 || st.AvgDegree <= 0 || st.Ef != 24 {
			t.Fatalf("IndexStats does not describe the graph: %+v", st)
		}
	}
	if fi.LiveRows <= 24 {
		t.Fatalf("first side holds %d rows <= ef 24: beam would delegate to the exact scan", fi.LiveRows)
	}
	hits, total := 0, 0
	for _, q := range model.second.IDs() {
		if model.vectors[q] == nil {
			continue
		}
		exact := map[string]struct{}{}
		for _, m := range model.flatBaseline(t, q, 10) {
			exact[m.ID] = struct{}{}
		}
		approx, err := model.TopK(q, 10)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		for _, m := range approx {
			if _, ok := exact[m.ID]; ok {
				hits++
			}
		}
		total += len(exact)
	}
	if total == 0 {
		t.Fatal("no queries produced rankings")
	}
	recall := float64(hits) / float64(total)
	t.Logf("HNSW recall@10 on IMDb = %.3f over %d ranked slots", recall, total)
	if recall < 0.95 {
		t.Errorf("HNSW recall@10 = %.3f, want >= 0.95", recall)
	}
}

// TestHNSWV6ResaveByteIdentical pins the determinism contract of the
// graph sections: saving, binding zero-copy from the mapping, and
// saving again must reproduce the snapshot byte for byte — the seeded
// level generator and row-order insertion leave nothing to chance. The
// bound base must borrow its graph from the mapping (no rebuild at
// bind), and mutations must promote copy-on-write, leaving the file
// untouched.
func TestHNSWV6ResaveByteIdentical(t *testing.T) {
	model := buildV6TestModel(t, func(c *Config) {
		c.Index = IndexHNSW
		c.HNSWM = 4
		c.HNSWEf = 8
		c.HNSWEfConstruct = 16
	}, false)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.v6")
	if err := model.SaveFileV6(pathA); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}

	movies, reviews := fixtureCorpora(t)
	loaded, err := LoadModelFile(pathA, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := servingBase(loaded.firstIdx).(*match.HNSW)
	if !ok {
		t.Fatalf("base segment is %T, want *match.HNSW", servingBase(loaded.firstIdx))
	}
	if !h.Borrowed() {
		t.Error("v6-bound HNSW does not borrow the snapshot's graph sections")
	}
	if want := rankAllMatches(t, model); !reflect.DeepEqual(rankAllMatches(t, loaded), want) {
		t.Error("v6-bound HNSW rankings diverge from the live model")
	}

	pathB := filepath.Join(dir, "b.v6")
	if err := loaded.SaveFileV6(pathB); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-saving a v6-bound HNSW model changed the snapshot bytes")
	}

	// Mutations promote on the heap; the mapped file stays pristine.
	if err := loaded.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:hnsw-cow", Values: []string{"a fresh review of a crime epic"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Remove([]string{"reviews:p0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK("reviews:hnsw-cow", 3); err != nil {
		t.Fatalf("ingested document not servable: %v", err)
	}
	after, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, after) {
		t.Fatal("mutating a v6-bound HNSW model wrote through to the snapshot file")
	}
}
