package tdmatch

import (
	"fmt"
	"sync"
	"testing"
)

// serveBenchModel memoizes a mid-sized model (400 docs per side) so the
// serve benchmarks measure query cost, not Build.
var (
	serveBenchOnce  sync.Once
	serveBenchM     *Model
	serveBenchQuery string
)

// buildServeBenchModel synthesizes two corpora large enough that a flat
// scan has measurable cost, deterministically (no randomness).
func buildServeBenchModel(b *testing.B) (*Model, string) {
	b.Helper()
	serveBenchOnce.Do(func() {
		const n = 400
		directors := []string{"shyamalan", "tarantino", "coppola", "mctiernan", "scorsese", "bigelow", "nolan", "villeneuve"}
		genres := []string{"thriller", "drama", "crime", "action", "comedy", "horror"}
		stars := []string{"willis", "brando", "grier", "phoenix", "thurman", "deniro", "weaver", "oldman"}
		rows := make([][]string, n)
		snippets := make([]string, n)
		for i := 0; i < n; i++ {
			d, g, s := directors[i%len(directors)], genres[i%len(genres)], stars[i%len(stars)]
			rows[i] = []string{fmt.Sprintf("movie number %d", i), d, s, g}
			snippets[i] = fmt.Sprintf("%s directs %s in a %s about movie number %d", d, s, g, i)
		}
		movies, err := NewTable("movies", []string{"title", "director", "star", "genre"}, rows, nil)
		if err != nil {
			b.Fatal(err)
		}
		reviews, err := NewText("reviews", snippets, nil)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Defaults()
		cfg.Seed = 1
		cfg.NumWalks = 4
		cfg.WalkLength = 10
		cfg.Dim = 48
		cfg.Epochs = 1
		m, err := Build(movies, reviews, cfg)
		if err != nil {
			b.Fatal(err)
		}
		serveBenchM = m
		for _, id := range reviews.IDs() {
			if m.Vector(id) != nil {
				serveBenchQuery = id
				break
			}
		}
	})
	if serveBenchQuery == "" {
		b.Fatal("no embedded query document")
	}
	return serveBenchM, serveBenchQuery
}

// benchServeTopK drives one server configuration over a fixed query.
func benchServeTopK(b *testing.B, sc ServeConfig) {
	m, query := buildServeBenchModel(b)
	s := NewServer(m, sc)
	defer s.Close()
	if _, err := s.TopK(query, 10); err != nil { // warm: fills the cache when enabled
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTopKCached measures a repeat query answered from the
// sharded LRU result cache — compare against BenchmarkServeTopKCold for
// the cache's speedup over the index scan.
func BenchmarkServeTopKCached(b *testing.B) {
	benchServeTopK(b, ServeConfig{BatchWindow: -1})
}

// BenchmarkServeTopKCold measures the same query with caching disabled:
// every operation pays the full index scan.
func BenchmarkServeTopKCold(b *testing.B) {
	benchServeTopK(b, ServeConfig{CacheSize: -1, BatchWindow: -1})
}

// BenchmarkServeTopKBatch measures the fanned-out batch path: all query-
// side documents ranked in one TopKBatch call, caching disabled so every
// operation does the full sweep.
func BenchmarkServeTopKBatch(b *testing.B) {
	m, _ := buildServeBenchModel(b)
	s := NewServer(m, ServeConfig{CacheSize: -1, BatchWindow: -1})
	defer s.Close()
	ids := m.second.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopKBatch(ids, 10)
	}
}
