package tdmatch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"github.com/tdmatch/tdmatch/internal/match"
)

// v6TestConfigs enumerates the serving configurations the v6 format must
// round-trip bit-identically to the gob path: every index kind, plus
// multi-segment stacks with tombstones and a live delta.
var v6TestConfigs = []struct {
	name      string
	mutate    func(*Config)
	segmented bool
}{
	{"flat", func(c *Config) {}, false},
	{"ivf", func(c *Config) {
		c.Index = IndexIVF
		c.IVFClusters = 2
		c.IVFNProbe = 1
		c.ExactRecall = false
	}, false},
	{"sq8", func(c *Config) {
		c.Index = IndexSQ8
		c.SQ8Rerank = 6
	}, false},
	{"hnsw", func(c *Config) {
		c.Index = IndexHNSW
		c.HNSWM = 4
		c.HNSWEf = 8
		c.HNSWEfConstruct = 16
	}, false},
	{"segmented", func(c *Config) {}, true},
	{"segmented-sq8", func(c *Config) {
		c.Index = IndexSQ8
		c.SQ8Rerank = 6
	}, true},
	{"segmented-hnsw", func(c *Config) {
		c.Index = IndexHNSW
		c.HNSWM = 4
		c.HNSWEf = 8
		c.HNSWEfConstruct = 16
	}, true},
}

// buildV6TestModel trains a deterministic model (Workers 1) under one of
// the v6TestConfigs; segmented variants pile up sealed segments with
// single-doc ingests and tombstone a sealed row, like the v5 fixture.
func buildV6TestModel(t *testing.T, mutate func(*Config), segmented bool) *Model {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1
	mutate(&cfg)
	if segmented {
		cfg.SegmentMaxDocs = 1
	}
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if segmented {
		for i, text := range []string{
			"Brando leads a mafia family epic",
			"Coppola directs a crime dynasty",
			"Pacino inherits the family business",
		} {
			if err := model.Ingest([]IngestDoc{
				{Side: 2, ID: fmt.Sprintf("reviews:seg%d", i), Values: []string{text}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := model.Remove([]string{"reviews:seg1"}); err != nil {
			t.Fatal(err)
		}
	}
	return model
}

// rankAllMatches runs TopK over every servable document on both sides
// and returns the full results, scores included, for bit-identity
// comparisons.
func rankAllMatches(t *testing.T, m *Model) map[string][]Match {
	t.Helper()
	out := map[string][]Match{}
	for _, q := range append(m.first.IDs(), m.second.IDs()...) {
		if m.Vector(q) == nil {
			continue
		}
		matches, err := m.TopK(q, 3)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		out[q] = matches
	}
	if len(out) == 0 {
		t.Fatal("no servable queries")
	}
	return out
}

// TestSaveV6BitIdenticalToGob is the format-parity pin: for every index
// kind (flat, IVF, SQ8) and for multi-segment stacks, a model loaded
// from a v6 snapshot — through both the zero-copy mmap path and the
// streamed heap path — must serve TopK rankings bit-identical (IDs and
// scores) to the same model loaded from a gob snapshot.
func TestSaveV6BitIdenticalToGob(t *testing.T) {
	for _, tc := range v6TestConfigs {
		t.Run(tc.name, func(t *testing.T) {
			model := buildV6TestModel(t, tc.mutate, tc.segmented)

			var gobBuf bytes.Buffer
			if err := model.Save(&gobBuf); err != nil {
				t.Fatal(err)
			}
			v6Path := filepath.Join(t.TempDir(), "model.v6")
			if err := model.SaveFileV6(v6Path); err != nil {
				t.Fatal(err)
			}

			gm, gr := fixtureCorpora(t)
			gobModel, err := LoadModel(bytes.NewReader(gobBuf.Bytes()), gm, gr)
			if err != nil {
				t.Fatal(err)
			}
			want := rankAllMatches(t, gobModel)

			// The zero-copy path: open, check mode, bind.
			snap, err := OpenSnapshotFile(v6Path)
			if err != nil {
				t.Fatal(err)
			}
			if got := snap.Info().Version; got != 6 {
				t.Fatalf("v6 snapshot Info().Version = %d, want 6", got)
			}
			switch mode := snap.LoadMode(); {
			case runtime.GOOS == "linux" && mode != "v6+mmap":
				t.Fatalf("LoadMode() = %q, want v6+mmap", mode)
			case mode != "v6+mmap" && mode != "v6+heap":
				t.Fatalf("LoadMode() = %q", mode)
			}
			mm, mr := fixtureCorpora(t)
			mmapModel, err := snap.Bind(mm, mr)
			if err != nil {
				t.Fatal(err)
			}
			if got := rankAllMatches(t, mmapModel); !reflect.DeepEqual(got, want) {
				t.Errorf("mmap-loaded rankings diverge from gob-loaded")
			}

			// The streamed heap path (ReadSnapshot auto-detects by magic).
			f, err := os.Open(v6Path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			hsnap, err := ReadSnapshot(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := hsnap.LoadMode(); got != "v6+heap" {
				t.Fatalf("streamed LoadMode() = %q, want v6+heap", got)
			}
			hm, hr := fixtureCorpora(t)
			heapModel, err := hsnap.Bind(hm, hr)
			if err != nil {
				t.Fatal(err)
			}
			if got := rankAllMatches(t, heapModel); !reflect.DeepEqual(got, want) {
				t.Errorf("heap-loaded rankings diverge from gob-loaded")
			}

			// Segment boundaries restore exactly, not merely equivalently.
			gf, gs := gobModel.SegmentStats()
			mf, ms := mmapModel.SegmentStats()
			if gf != mf || gs != ms {
				t.Errorf("segment stats diverge: gob %+v/%+v, v6 %+v/%+v", gf, gs, mf, ms)
			}
		})
	}
}

// TestSaveV6LazyVerifyServesIdentically covers the microsecond
// cold-start path: VerifyLazy skips payload checksums but must bind the
// same model.
func TestSaveV6LazyVerifyServesIdentically(t *testing.T) {
	model := buildV6TestModel(t, func(c *Config) {}, true)
	path := filepath.Join(t.TempDir(), "model.v6")
	if err := model.SaveFileV6(path); err != nil {
		t.Fatal(err)
	}
	want := rankAllMatches(t, model)
	snap, err := OpenSnapshotFileVerify(path, VerifyLazy)
	if err != nil {
		t.Fatal(err)
	}
	movies, reviews := fixtureCorpora(t)
	loaded, err := snap.Bind(movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	if got := rankAllMatches(t, loaded); !reflect.DeepEqual(got, want) {
		t.Error("lazy-verified load diverges from the live model")
	}
}

// TestV6InfoMatchesGobInfo pins that the v6 metadata section carries
// everything ModelInfo reports, identically to the gob encoding of the
// same model (modulo the format version itself).
func TestV6InfoMatchesGobInfo(t *testing.T) {
	model := buildV6TestModel(t, func(c *Config) {
		c.Index = IndexIVF
		c.IVFClusters = 2
		c.IVFNProbe = 1
	}, true)
	var gobBuf, v6Buf bytes.Buffer
	if err := model.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveV6(&v6Buf); err != nil {
		t.Fatal(err)
	}
	gobInfo, err := ReadModelInfo(&gobBuf)
	if err != nil {
		t.Fatal(err)
	}
	v6Info, err := ReadModelInfo(&v6Buf)
	if err != nil {
		t.Fatal(err)
	}
	if v6Info.Version != 6 || gobInfo.Version != 5 {
		t.Fatalf("versions = %d/%d, want 6/5", v6Info.Version, gobInfo.Version)
	}
	v6Info.Version = gobInfo.Version
	if !reflect.DeepEqual(v6Info, gobInfo) {
		t.Errorf("v6 info %+v diverges from gob info %+v", v6Info, gobInfo)
	}
}

// TestV6LoadIsZeroCopyAndCopyOnWrite pins the tentpole's memory
// behavior at the model level: a v6-loaded model's base segment borrows
// the snapshot's arena (no copy at bind), and post-load mutations
// promote to the heap rather than writing through — the snapshot file
// is byte-identical after ingest and remove.
func TestV6LoadIsZeroCopyAndCopyOnWrite(t *testing.T) {
	model := buildV6TestModel(t, func(c *Config) {}, false)
	path := filepath.Join(t.TempDir(), "model.v6")
	if err := model.SaveFileV6(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	movies, reviews := fixtureCorpora(t)
	loaded, err := LoadModelFile(path, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.backing == nil {
		t.Fatal("v6-loaded model carries no backing mapping")
	}
	base, ok := servingBase(loaded.firstIdx).(*match.Index)
	if !ok {
		t.Fatalf("base segment is %T, want *match.Index", servingBase(loaded.firstIdx))
	}
	if !base.Borrowed() {
		t.Error("v6-loaded base segment does not borrow the snapshot arena")
	}

	if err := loaded.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:cow", Values: []string{"a brand new review about Coppola"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Remove([]string{"reviews:p0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK("reviews:cow", 3); err != nil {
		t.Fatalf("ingested document not servable: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutating a v6-loaded model wrote through to the snapshot file")
	}
}
