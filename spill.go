package tdmatch

import (
	"encoding/gob"
	"fmt"
	"os"
)

// spilledTrainer is the on-disk form of a spilled trainer output arena.
type spilledTrainer struct {
	Dim int
	Out []float32
}

// SpillTrainer writes the trainer's output-side arena — the half of the
// Word2Vec state queries never read — to path and releases it from
// memory. A trained model holds two vocabulary×dim float32 arenas; a
// serving-only process needs just the input arena (document and term
// vectors are views into it), so spilling halves the resident trainer
// footprint while keeping warm-start capability: the next Ingest
// reloads the arena from path before fine-tuning, transparently and
// with identical results. A later Compact retrains from scratch and
// forgets the spill file.
//
// SpillTrainer mutates trainer state that clones share; call it on a
// quiescent model (before NewServer, or between requests), never
// concurrently with Ingest or Save.
func (m *Model) SpillTrainer(path string) error {
	if m.ps == nil || m.ps.Embed == nil {
		return fmt.Errorf("tdmatch: model has no trainer state to spill (restored from a snapshot?)")
	}
	if m.ps.Embed.Out == nil {
		return fmt.Errorf("tdmatch: trainer state already spilled")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(spilledTrainer{Dim: m.dim, Out: m.ps.Embed.Out}); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	m.ps.Embed.Out = nil
	m.spillPath = path
	return nil
}

// TrainerSpilled reports whether the trainer's output arena currently
// lives on disk instead of in memory.
func (m *Model) TrainerSpilled() bool {
	return m.ps != nil && m.ps.Embed != nil && m.ps.Embed.Out == nil && m.spillPath != ""
}

// reloadSpill restores a spilled output arena before a warm-start
// fine-tune. A no-op when nothing is spilled.
func (m *Model) reloadSpill() error {
	if !m.TrainerSpilled() {
		return nil
	}
	f, err := os.Open(m.spillPath)
	if err != nil {
		return fmt.Errorf("tdmatch: reloading spilled trainer state: %w", err)
	}
	defer f.Close()
	var sp spilledTrainer
	if err := gob.NewDecoder(f).Decode(&sp); err != nil {
		return fmt.Errorf("tdmatch: reloading spilled trainer state: %w", err)
	}
	if sp.Dim != m.dim || len(sp.Out) != len(m.ps.Embed.Arena) {
		return fmt.Errorf("tdmatch: spilled trainer state %q does not match this model (dim %d, %d floats; want %d, %d)",
			m.spillPath, sp.Dim, len(sp.Out), m.dim, len(m.ps.Embed.Arena))
	}
	m.ps.Embed.Out = sp.Out
	return nil
}
