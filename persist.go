package tdmatch

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/mmapfile"
	"github.com/tdmatch/tdmatch/internal/textproc"
	"github.com/tdmatch/tdmatch/internal/wal"
)

// savedModel is the gob-encoded form of a trained model: the learned
// document vectors plus enough metadata to validate a reload and rebuild
// the configured serving indexes. The graph itself is not persisted — it
// is only needed for training.
//
// Version 5 adds the per-side segment manifests: each side's serving
// segment stack as lists of live document IDs with FNV-1a checksums
// over the IDs and vector rows. ReadSnapshot validates the checksums
// up front, so a truncated or corrupted payload fails cleanly before
// Bind mutates any corpus state, and Bind rebuilds the stack with its
// saved segment boundaries instead of one monolithic base. Older
// payloads decode with nil manifests and bind as before.
// Version 4 adds the incremental-ingest payload: the delta chain
// (base + deltas — documents ingested into or removed from the model
// since the base corpora were written, re-applied at Bind so a
// snapshot stays loadable against the pre-ingest corpus files), the
// trained term vectors (TermIDs + TermArena) that make a restored
// model fold-in ingestable, the tokenizer's MaxNGram and the staleness
// counter. Version 3 added the SQ8Rerank serving parameter (gob leaves
// it zero — meaning the default — when decoding older payloads).
// Version 2 stores the vectors as one contiguous arena (VectorIDs +
// Arena) matching the in-memory index layout; version 1 payloads with
// the per-document Vectors map are still readable.
type savedModel struct {
	Version    int
	Dim        int
	FirstName  string
	SecondName string

	// Vectors is the version-1 per-document encoding (nil in v2 payloads).
	Vectors map[string][]float32

	// VectorIDs and Arena are the version-2 encoding: document i's vector
	// is Arena[i*Dim : (i+1)*Dim], IDs sorted for determinism. The arena
	// covers every current document, ingested ones included.
	VectorIDs []string
	Arena     []float32

	// Serving-index choice, restored into the loaded model's Config. Seed
	// is included so an approximate index is re-clustered (or an HNSW
	// graph re-built) exactly as the saved model's was. The HNSW knobs
	// are newer additions to the version-5 layout: gob leaves them zero —
	// meaning the defaults — when decoding older payloads.
	Index           uint8
	IVFClusters     int
	IVFNProbe       int
	ExactRecall     bool
	SQ8Rerank       int
	HNSWM           int
	HNSWEf          int
	HNSWEfConstruct int
	Seed            int64

	// Deltas is the version-4 delta chain, oldest first.
	Deltas []savedDelta
	// TermIDs and TermArena are the version-4 trained term vectors
	// (term i's vector is TermArena[i*Dim : (i+1)*Dim]), enabling
	// fold-in ingest on a restored model.
	TermIDs   []string
	TermArena []float32
	// MaxNGram is the tokenizer's term length bound, needed to tokenize
	// fold-in ingested documents exactly like the build did.
	MaxNGram int
	// Staleness is the delta-document count not yet folded into a full
	// retrain at save time.
	Staleness int

	// FirstSegments / SecondSegments are the version-5 segment
	// manifests (sealed segments in stack order, the mutable delta
	// last); nil in older payloads or when a side serves unsegmented.
	FirstSegments  []savedSegment
	SecondSegments []savedSegment
}

// savedSegment is one serving segment in a version-5 manifest.
type savedSegment struct {
	// IDs are the segment's live document IDs, in row order.
	IDs []string
	// Checksum digests the IDs and their vector rows (FNV-1a over ID
	// bytes and float bits), validated by ReadSnapshot before Bind.
	Checksum uint64
}

// savedDelta is one Ingest or Remove call in the persistence delta
// chain: ingested documents travel with their content (the corpus
// files on disk predate them), removals by ID.
type savedDelta struct {
	Added   []savedDoc
	Removed []string
}

// savedDoc is one ingested document's persisted content.
type savedDoc struct {
	Side    uint8
	ID      string
	Parent  string
	Columns []string
	Texts   []string
}

const savedModelVersion = 5

// Save writes the trained document embeddings (as one contiguous arena)
// and the serving-index configuration to w. The graph is not saved; a
// loaded model can match but not retrain.
func (m *Model) Save(w io.Writer) error {
	ids := make([]string, 0, len(m.vectors))
	for id := range m.vectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Gather rows into the snapshot arena with one copy per document; the
	// map values are views into the trainer's flat arena (or a loaded
	// snapshot's), and short/missing rows stay zero-padded.
	arena := make([]float32, len(ids)*m.dim)
	for i, id := range ids {
		copy(arena[i*m.dim:(i+1)*m.dim], m.vectors[id])
	}
	termIDs, termArena := m.termVectors()
	enc := gob.NewEncoder(w)
	return enc.Encode(savedModel{
		Version:         savedModelVersion,
		Dim:             m.dim,
		FirstName:       m.first.Name(),
		SecondName:      m.second.Name(),
		VectorIDs:       ids,
		Arena:           arena,
		Index:           uint8(m.cfg.Index),
		IVFClusters:     m.cfg.IVFClusters,
		IVFNProbe:       m.cfg.IVFNProbe,
		ExactRecall:     m.cfg.ExactRecall,
		SQ8Rerank:       m.cfg.SQ8Rerank,
		HNSWM:           m.cfg.HNSWM,
		HNSWEf:          m.cfg.HNSWEf,
		HNSWEfConstruct: m.cfg.HNSWEfConstruct,
		Seed:            m.cfg.Seed,
		Deltas:          m.deltas,
		TermIDs:         termIDs,
		TermArena:       termArena,
		MaxNGram:        m.cfg.MaxNGram,
		Staleness:       m.Staleness(),
		FirstSegments:   m.savedSegments(m.firstIdx),
		SecondSegments:  m.savedSegments(m.secondIdx),
	})
}

// savedSegments captures a side's serving segment stack for a v5
// snapshot: one live-ID list per segment in stack order (mutable delta
// last), each checksummed together with the vector rows it will rebind
// to. Nil when the side serves an unsegmented index.
func (m *Model) savedSegments(idx match.VectorIndex) []savedSegment {
	seg, ok := idx.(*match.Segmented)
	if !ok {
		return nil
	}
	manifest := seg.SegmentManifest()
	out := make([]savedSegment, len(manifest))
	for i, ids := range manifest {
		out[i] = savedSegment{IDs: ids, Checksum: segmentChecksum(ids, m.vectors, m.dim)}
	}
	return out
}

// segmentChecksum digests one segment manifest entry with FNV-1a 64:
// per ID, the ID bytes, a NUL separator, then the dim float32 bits of
// its vector row little-endian (zero bits past the stored row length,
// matching the zero-padding Save applies to the snapshot arena).
func segmentChecksum(ids []string, vectors map[string][]float32, dim int) uint64 {
	const (
		offset64 = uint64(14695981039346656037)
		prime64  = uint64(1099511628211)
	)
	h := offset64
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, id := range ids {
		for i := 0; i < len(id); i++ {
			mix(id[i])
		}
		mix(0)
		v := vectors[id]
		for j := 0; j < dim; j++ {
			var bits uint32
			if j < len(v) {
				bits = math.Float32bits(v[j])
			}
			mix(byte(bits))
			mix(byte(bits >> 8))
			mix(byte(bits >> 16))
			mix(byte(bits >> 24))
		}
	}
	return h
}

// validateSegments checks a version-5 payload's segment manifests
// against its vector arena: every ID must be unique within its side and
// every segment checksum must match the recomputed digest, so a
// truncated or bit-flipped payload fails the load up front — before
// Bind mutates any corpus state.
func (sm *savedModel) validateSegments() error {
	if len(sm.FirstSegments) == 0 && len(sm.SecondSegments) == 0 {
		return nil
	}
	if len(sm.Arena) != len(sm.VectorIDs)*sm.Dim {
		return fmt.Errorf("tdmatch: arena holds %d floats for %d vectors of dim %d",
			len(sm.Arena), len(sm.VectorIDs), sm.Dim)
	}
	vectors := make(map[string][]float32, len(sm.VectorIDs))
	for i, id := range sm.VectorIDs {
		vectors[id] = sm.Arena[i*sm.Dim : (i+1)*sm.Dim]
	}
	for side, segs := range [][]savedSegment{sm.FirstSegments, sm.SecondSegments} {
		seen := make(map[string]struct{})
		for si, seg := range segs {
			for _, id := range seg.IDs {
				if _, dup := seen[id]; dup {
					return fmt.Errorf("tdmatch: corrupt snapshot: document %q appears in two side-%d segments",
						id, side+1)
				}
				seen[id] = struct{}{}
			}
			if got := segmentChecksum(seg.IDs, vectors, sm.Dim); got != seg.Checksum {
				return fmt.Errorf("tdmatch: corrupt snapshot: side-%d segment %d/%d checksum mismatch",
					side+1, si+1, len(segs))
			}
		}
	}
	return nil
}

// termVectors gathers the trained term (data and external node) vectors
// for the snapshot: from the live trainer arena on a trained model,
// from the restored fold state otherwise. Sorted by term for
// determinism; nil when the model carries neither.
func (m *Model) termVectors() ([]string, []float32) {
	var terms map[string][]float32
	switch {
	case m.ps != nil:
		g := m.ps.Build.Graph
		nodes := g.DataNodes()
		terms = make(map[string][]float32, len(nodes))
		for _, node := range nodes {
			if v := m.ps.Embed.Vector(int32(node)); v != nil {
				terms[g.Label(node)] = v
			}
		}
	case m.fold != nil:
		terms = m.fold.terms
	default:
		return nil, nil
	}
	ids := make([]string, 0, len(terms))
	for term := range terms {
		ids = append(ids, term)
	}
	sort.Strings(ids)
	arena := make([]float32, len(ids)*m.dim)
	for i, term := range ids {
		copy(arena[i*m.dim:(i+1)*m.dim], terms[term])
	}
	return ids, arena
}

// SaveFile writes the model to a file, atomically: the snapshot is
// written and fsynced to a sidecar (path + ".tmp"), renamed into
// place, and the parent directory is fsynced, so a crash mid-save (or
// right after the rename) leaves either the previous or the new
// snapshot intact — never a truncated file or a lost rename. This is
// the invariant the serving WAL's checkpoint protocol depends on
// (Server.Checkpoint rotates the log only after this returns).
func (m *Model) SaveFile(path string) error {
	return saveFileAtomic(path, m.Save)
}

// saveFileAtomic runs the atomic-replace protocol against the real
// filesystem.
func saveFileAtomic(path string, save func(io.Writer) error) error {
	return saveFileFS(path, wal.OSFS{}, save)
}

// saveFileFS is the atomic snapshot-replace protocol over the wal.FS
// seam — write to a ".tmp" sidecar, fsync the file, rename into place,
// fsync the parent directory — factored out so the crash fuzzer can
// drive it on the fault-injecting MemFS. Without the final directory
// fsync the rename itself can be lost on power failure (the classic
// atomic-replace bug); TestSaveFileSyncsDirOnCrash pins it.
func saveFileFS(path string, fsys wal.FS, save func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// LoadModel reads embeddings written by Save and reconstructs a matcher
// over the same two corpora, rebuilding the serving indexes the model was
// saved with. The corpora must be the ones the model was trained on
// (names are checked; document IDs missing a stored vector are matched as
// zero vectors, exactly as after training). To inspect a snapshot before
// committing to corpora — or to avoid decoding twice when both metadata
// and model are needed — use ReadSnapshot.
func LoadModel(r io.Reader, first, second *Corpus) (*Model, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return snap.Bind(first, second)
}

// Snapshot is a decoded model payload not yet bound to its corpora: the
// intermediate state of a serving daemon that must learn the corpus
// names from the snapshot before it can load the corpora themselves.
// Decode once with ReadSnapshot (or zero-copy via OpenSnapshotFile),
// inspect with Info, then Bind.
type Snapshot struct {
	sm savedModel

	// v6 is the zero-copy payload of a format-6 snapshot (nil for gob
	// versions); backing is the mapping its arenas alias, pinned here
	// until Bind hands it to the Model. mode records how the payload was
	// loaded, see LoadMode.
	v6      *v6State
	backing *mmapfile.Mapping
	mode    string
}

// LoadMode reports how the snapshot payload was loaded: "gob" (decoded
// copy, versions 1–5), "v6+mmap" (zero-copy PROT_READ mapping) or
// "v6+heap" (v6 layout read into an aligned heap buffer — stream
// reads, or platforms without mmap).
func (s *Snapshot) LoadMode() string {
	if s.mode == "" {
		return "gob"
	}
	return s.mode
}

// ReadSnapshot decodes a payload written by Save or SaveV6 without
// reconstructing the serving indexes, auto-detecting the format by
// magic. Bind turns it into a servable Model. Reading a v6 payload
// from a stream copies it onto the heap; use OpenSnapshotFile to get
// the zero-copy mapped path.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(v6Magic)); err == nil && bytes.Equal(magic, []byte(v6Magic)) {
		raw, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("tdmatch: reading v6 snapshot: %w", err)
		}
		// The reader casts sections in place; heap buffers from ReadAll
		// are not guaranteed 8-byte aligned, so realign if needed.
		data := raw
		if len(raw) > 0 && uintptr(unsafe.Pointer(&raw[0]))%8 != 0 {
			data = mmapfile.AlignedBuffer(len(raw))
			copy(data, raw)
		}
		return parseV6(data, VerifyEager, nil)
	}
	return readGobSnapshot(br)
}

// readGobSnapshot decodes a gob (version 1–5) snapshot payload.
func readGobSnapshot(r io.Reader) (*Snapshot, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("tdmatch: decoding model: %w", err)
	}
	if sm.Version < 1 || sm.Version > savedModelVersion {
		return nil, fmt.Errorf("tdmatch: unsupported model version %d", sm.Version)
	}
	if err := sm.validateSegments(); err != nil {
		return nil, err
	}
	return &Snapshot{sm: sm}, nil
}

// Info returns the snapshot's metadata.
func (s *Snapshot) Info() ModelInfo {
	docs := len(s.sm.VectorIDs)
	if s.sm.Version < 2 {
		docs = len(s.sm.Vectors)
	}
	deltaDocs := 0
	for _, d := range s.sm.Deltas {
		deltaDocs += len(d.Added) + len(d.Removed)
	}
	return ModelInfo{
		Version:         s.sm.Version,
		Dim:             s.sm.Dim,
		FirstName:       s.sm.FirstName,
		SecondName:      s.sm.SecondName,
		Docs:            docs,
		Index:           IndexKind(s.sm.Index),
		IVFClusters:     s.sm.IVFClusters,
		IVFNProbe:       s.sm.IVFNProbe,
		ExactRecall:     s.sm.ExactRecall,
		SQ8Rerank:       s.sm.SQ8Rerank,
		HNSWM:           s.sm.HNSWM,
		HNSWEf:          s.sm.HNSWEf,
		HNSWEfConstruct: s.sm.HNSWEfConstruct,
		DeltaDocs:       deltaDocs,
		Staleness:       s.sm.Staleness,
	}
}

// Bind reconstructs the matcher over its corpora, rebuilding the serving
// indexes the model was saved with (the LoadModel back half). The corpora
// must carry the names the model was trained under. A version-4
// snapshot's delta chain is re-applied to the given corpora in order —
// ingested documents are appended (skipped when already present, for
// callers whose corpus files were refreshed), removed ones deleted — so
// a snapshot saved after live ingests binds correctly against the
// pre-ingest corpus files. When the snapshot stores term vectors the
// restored model supports fold-in Ingest.
func (s *Snapshot) Bind(first, second *Corpus) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: Bind requires two corpora")
	}
	sm := &s.sm
	if sm.FirstName != first.Name() || sm.SecondName != second.Name() {
		return nil, fmt.Errorf("tdmatch: model was trained on corpora %q/%q, got %q/%q",
			sm.FirstName, sm.SecondName, first.Name(), second.Name())
	}
	for _, delta := range sm.Deltas {
		for _, sd := range delta.Added {
			c := first.c
			if sd.Side == 2 {
				c = second.c
			}
			if _, present := c.Doc(sd.ID); present {
				continue
			}
			if err := c.Append(documentOfSaved(sd)); err != nil {
				return nil, fmt.Errorf("tdmatch: applying snapshot delta: %w", err)
			}
		}
		// One compaction pass per side and record; unknown IDs (the other
		// side's) are ignored by RemoveBatch.
		first.c.RemoveBatch(delta.Removed)
		second.c.RemoveBatch(delta.Removed)
	}
	vectors := sm.Vectors
	if sm.Version >= 2 {
		if len(sm.Arena) != len(sm.VectorIDs)*sm.Dim {
			return nil, fmt.Errorf("tdmatch: arena holds %d floats for %d vectors of dim %d",
				len(sm.Arena), len(sm.VectorIDs), sm.Dim)
		}
		vectors = make(map[string][]float32, len(sm.VectorIDs))
		for i, id := range sm.VectorIDs {
			vectors[id] = sm.Arena[i*sm.Dim : (i+1)*sm.Dim : (i+1)*sm.Dim]
		}
	}
	cfg := Defaults()
	cfg.Index = IndexKind(sm.Index)
	cfg.IVFClusters = sm.IVFClusters
	cfg.IVFNProbe = sm.IVFNProbe
	cfg.ExactRecall = sm.ExactRecall
	cfg.SQ8Rerank = sm.SQ8Rerank
	cfg.HNSWM = sm.HNSWM
	cfg.HNSWEf = sm.HNSWEf
	cfg.HNSWEfConstruct = sm.HNSWEfConstruct
	cfg.Seed = sm.Seed
	if sm.MaxNGram > 0 {
		cfg.MaxNGram = sm.MaxNGram
	}
	m := &Model{
		cfg:     cfg,
		first:   first,
		second:  second,
		dim:     sm.Dim,
		vectors: vectors,
		deltas:  sm.Deltas,
		// The whole restored delta chain is already reflected in the saved
		// vectors; only the snapshot's own staleness figure carries over.
		folded:    len(sm.Deltas),
		staleBase: sm.Staleness,
	}
	if len(sm.TermIDs) > 0 {
		if len(sm.TermArena) != len(sm.TermIDs)*sm.Dim {
			return nil, fmt.Errorf("tdmatch: term arena holds %d floats for %d terms of dim %d",
				len(sm.TermArena), len(sm.TermIDs), sm.Dim)
		}
		terms := make(map[string][]float32, len(sm.TermIDs))
		for i, term := range sm.TermIDs {
			terms[term] = sm.TermArena[i*sm.Dim : (i+1)*sm.Dim : (i+1)*sm.Dim]
		}
		m.fold = &foldState{
			pre: textproc.Preprocessor{
				RemoveStopwords: true,
				Stem:            true,
				MaxNGram:        cfg.MaxNGram,
			},
			terms: terms,
		}
	}
	// A version-6 snapshot binds its sealed segments directly onto the
	// loaded (usually mapped) arenas; a version-5 one restores its
	// serving segment boundaries by regathering; older payloads (nil
	// manifests) rebuild one monolithic base segment.
	if s.v6 != nil {
		m.backing = s.backing
		if err := m.bindSegmentedV6(s.v6.first, s.v6.second); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := m.buildSegmentedIndexes(segmentIDs(sm.FirstSegments), segmentIDs(sm.SecondSegments)); err != nil {
		return nil, err
	}
	return m, nil
}

// segmentIDs strips the checksums off a validated manifest, leaving the
// per-segment ID lists buildSegmentedIndexes consumes.
func segmentIDs(segs []savedSegment) [][]string {
	if len(segs) == 0 {
		return nil
	}
	out := make([][]string, len(segs))
	for i, s := range segs {
		out[i] = s.IDs
	}
	return out
}

// LoadModelFile reads a model from a file written by SaveFile or
// SaveFileV6, auto-detecting the format: a v6 snapshot is
// memory-mapped and bound zero-copy (the mapping stays pinned for the
// model's lifetime), gob versions decode through the classic path.
func LoadModelFile(path string, first, second *Corpus) (*Model, error) {
	snap, err := OpenSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return snap.Bind(first, second)
}

// ModelInfo describes a saved model snapshot without reconstructing its
// serving indexes — the metadata a serving daemon needs to validate a
// snapshot against its corpora and report what it is serving.
type ModelInfo struct {
	// Version is the snapshot format version (1 through 6; 6 is the
	// flat memory-mappable layout, earlier versions are gob).
	Version int
	// Dim is the embedding dimensionality.
	Dim int
	// FirstName / SecondName are the corpus names the model was trained
	// on; LoadModel refuses corpora under different names.
	FirstName  string
	SecondName string
	// Docs is the number of stored document vectors (both sides).
	Docs int
	// Index is the persisted serving-index choice; IVFClusters,
	// IVFNProbe and ExactRecall are its parameters under IndexIVF,
	// SQ8Rerank (0 = default) under IndexSQ8, and HNSWM / HNSWEf /
	// HNSWEfConstruct (0 = defaults) under IndexHNSW.
	Index           IndexKind
	IVFClusters     int
	IVFNProbe       int
	ExactRecall     bool
	SQ8Rerank       int
	HNSWM           int
	HNSWEf          int
	HNSWEfConstruct int
	// DeltaDocs counts the documents in the snapshot's delta chain
	// (ingested plus removed since the base corpora); Staleness is the
	// saved model's un-compacted delta count.
	DeltaDocs int
	Staleness int
}

// ReadModelInfo decodes only the snapshot metadata from a stream written
// by Save. It reads (and discards) the full payload, but skips index
// reconstruction; callers that will also load the model should decode
// once via ReadSnapshot instead.
func ReadModelInfo(r io.Reader) (ModelInfo, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return ModelInfo{}, err
	}
	return snap.Info(), nil
}

// ReadModelInfoFile reads the snapshot metadata from a file written by
// SaveFile.
func ReadModelInfoFile(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	defer f.Close()
	return ReadModelInfo(f)
}
