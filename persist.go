package tdmatch

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// savedModel is the gob-encoded form of a trained model: the learned
// document vectors plus enough metadata to validate a reload and rebuild
// the configured serving indexes. The graph itself is not persisted — it
// is only needed for training.
//
// Version 3 adds the SQ8Rerank serving parameter (gob leaves it zero —
// meaning the default — when decoding older payloads). Version 2 stores
// the vectors as one contiguous arena (VectorIDs + Arena) matching the
// in-memory index layout; version 1 payloads with the per-document
// Vectors map are still readable.
type savedModel struct {
	Version    int
	Dim        int
	FirstName  string
	SecondName string

	// Vectors is the version-1 per-document encoding (nil in v2 payloads).
	Vectors map[string][]float32

	// VectorIDs and Arena are the version-2 encoding: document i's vector
	// is Arena[i*Dim : (i+1)*Dim], IDs sorted for determinism.
	VectorIDs []string
	Arena     []float32

	// Serving-index choice, restored into the loaded model's Config. Seed
	// is included so an approximate index is re-clustered exactly as the
	// saved model's was.
	Index       uint8
	IVFClusters int
	IVFNProbe   int
	ExactRecall bool
	SQ8Rerank   int
	Seed        int64
}

const savedModelVersion = 3

// Save writes the trained document embeddings (as one contiguous arena)
// and the serving-index configuration to w. The graph is not saved; a
// loaded model can match but not retrain.
func (m *Model) Save(w io.Writer) error {
	ids := make([]string, 0, len(m.vectors))
	for id := range m.vectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Gather rows into the snapshot arena with one copy per document; the
	// map values are views into the trainer's flat arena (or a loaded
	// snapshot's), and short/missing rows stay zero-padded.
	arena := make([]float32, len(ids)*m.dim)
	for i, id := range ids {
		copy(arena[i*m.dim:(i+1)*m.dim], m.vectors[id])
	}
	enc := gob.NewEncoder(w)
	return enc.Encode(savedModel{
		Version:     savedModelVersion,
		Dim:         m.dim,
		FirstName:   m.first.Name(),
		SecondName:  m.second.Name(),
		VectorIDs:   ids,
		Arena:       arena,
		Index:       uint8(m.cfg.Index),
		IVFClusters: m.cfg.IVFClusters,
		IVFNProbe:   m.cfg.IVFNProbe,
		ExactRecall: m.cfg.ExactRecall,
		SQ8Rerank:   m.cfg.SQ8Rerank,
		Seed:        m.cfg.Seed,
	})
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadModel reads embeddings written by Save and reconstructs a matcher
// over the same two corpora, rebuilding the serving indexes the model was
// saved with. The corpora must be the ones the model was trained on
// (names are checked; document IDs missing a stored vector are matched as
// zero vectors, exactly as after training). To inspect a snapshot before
// committing to corpora — or to avoid decoding twice when both metadata
// and model are needed — use ReadSnapshot.
func LoadModel(r io.Reader, first, second *Corpus) (*Model, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return snap.Bind(first, second)
}

// Snapshot is a decoded model payload not yet bound to its corpora: the
// intermediate state of a serving daemon that must learn the corpus
// names from the snapshot before it can load the corpora themselves.
// Decode once with ReadSnapshot, inspect with Info, then Bind.
type Snapshot struct {
	sm savedModel
}

// ReadSnapshot decodes a payload written by Save without reconstructing
// the serving indexes. Bind turns it into a servable Model.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("tdmatch: decoding model: %w", err)
	}
	if sm.Version < 1 || sm.Version > savedModelVersion {
		return nil, fmt.Errorf("tdmatch: unsupported model version %d", sm.Version)
	}
	return &Snapshot{sm: sm}, nil
}

// Info returns the snapshot's metadata.
func (s *Snapshot) Info() ModelInfo {
	docs := len(s.sm.VectorIDs)
	if s.sm.Version < 2 {
		docs = len(s.sm.Vectors)
	}
	return ModelInfo{
		Version:     s.sm.Version,
		Dim:         s.sm.Dim,
		FirstName:   s.sm.FirstName,
		SecondName:  s.sm.SecondName,
		Docs:        docs,
		Index:       IndexKind(s.sm.Index),
		IVFClusters: s.sm.IVFClusters,
		IVFNProbe:   s.sm.IVFNProbe,
		ExactRecall: s.sm.ExactRecall,
		SQ8Rerank:   s.sm.SQ8Rerank,
	}
}

// Bind reconstructs the matcher over its corpora, rebuilding the serving
// indexes the model was saved with (the LoadModel back half). The corpora
// must carry the names the model was trained under.
func (s *Snapshot) Bind(first, second *Corpus) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: Bind requires two corpora")
	}
	sm := &s.sm
	if sm.FirstName != first.Name() || sm.SecondName != second.Name() {
		return nil, fmt.Errorf("tdmatch: model was trained on corpora %q/%q, got %q/%q",
			sm.FirstName, sm.SecondName, first.Name(), second.Name())
	}
	vectors := sm.Vectors
	if sm.Version >= 2 {
		if len(sm.Arena) != len(sm.VectorIDs)*sm.Dim {
			return nil, fmt.Errorf("tdmatch: arena holds %d floats for %d vectors of dim %d",
				len(sm.Arena), len(sm.VectorIDs), sm.Dim)
		}
		vectors = make(map[string][]float32, len(sm.VectorIDs))
		for i, id := range sm.VectorIDs {
			vectors[id] = sm.Arena[i*sm.Dim : (i+1)*sm.Dim : (i+1)*sm.Dim]
		}
	}
	cfg := Defaults()
	cfg.Index = IndexKind(sm.Index)
	cfg.IVFClusters = sm.IVFClusters
	cfg.IVFNProbe = sm.IVFNProbe
	cfg.ExactRecall = sm.ExactRecall
	cfg.SQ8Rerank = sm.SQ8Rerank
	cfg.Seed = sm.Seed
	m := &Model{
		cfg:     cfg,
		first:   first,
		second:  second,
		dim:     sm.Dim,
		vectors: vectors,
	}
	if err := m.buildIndexes(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadModelFile reads a model from a file written by SaveFile.
func LoadModelFile(path string, first, second *Corpus) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f, first, second)
}

// ModelInfo describes a saved model snapshot without reconstructing its
// serving indexes — the metadata a serving daemon needs to validate a
// snapshot against its corpora and report what it is serving.
type ModelInfo struct {
	// Version is the snapshot format version (1 through 3).
	Version int
	// Dim is the embedding dimensionality.
	Dim int
	// FirstName / SecondName are the corpus names the model was trained
	// on; LoadModel refuses corpora under different names.
	FirstName  string
	SecondName string
	// Docs is the number of stored document vectors (both sides).
	Docs int
	// Index is the persisted serving-index choice; IVFClusters,
	// IVFNProbe and ExactRecall are its parameters under IndexIVF, and
	// SQ8Rerank (0 = default) under IndexSQ8.
	Index       IndexKind
	IVFClusters int
	IVFNProbe   int
	ExactRecall bool
	SQ8Rerank   int
}

// ReadModelInfo decodes only the snapshot metadata from a stream written
// by Save. It reads (and discards) the full payload, but skips index
// reconstruction; callers that will also load the model should decode
// once via ReadSnapshot instead.
func ReadModelInfo(r io.Reader) (ModelInfo, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return ModelInfo{}, err
	}
	return snap.Info(), nil
}

// ReadModelInfoFile reads the snapshot metadata from a file written by
// SaveFile.
func ReadModelInfoFile(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	defer f.Close()
	return ReadModelInfo(f)
}
