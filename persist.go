package tdmatch

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// savedModel is the gob-encoded form of a trained model: the learned
// document vectors plus enough metadata to validate a reload. The graph
// itself is not persisted — it is only needed for training.
type savedModel struct {
	Version    int
	Dim        int
	FirstName  string
	SecondName string
	Vectors    map[string][]float32
}

const savedModelVersion = 1

// Save writes the trained document embeddings to w. The graph is not
// saved; a loaded model can match but not retrain.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(savedModel{
		Version:    savedModelVersion,
		Dim:        m.dim,
		FirstName:  m.first.Name(),
		SecondName: m.second.Name(),
		Vectors:    m.vectors,
	})
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadModel reads embeddings written by Save and reconstructs a matcher
// over the same two corpora. The corpora must be the ones the model was
// trained on (names are checked; document IDs missing a stored vector are
// matched as zero vectors, exactly as after training).
func LoadModel(r io.Reader, first, second *Corpus) (*Model, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("tdmatch: LoadModel requires two corpora")
	}
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("tdmatch: decoding model: %w", err)
	}
	if sm.Version != savedModelVersion {
		return nil, fmt.Errorf("tdmatch: unsupported model version %d", sm.Version)
	}
	if sm.FirstName != first.Name() || sm.SecondName != second.Name() {
		return nil, fmt.Errorf("tdmatch: model was trained on corpora %q/%q, got %q/%q",
			sm.FirstName, sm.SecondName, first.Name(), second.Name())
	}
	m := &Model{
		cfg:     Defaults(),
		first:   first,
		second:  second,
		dim:     sm.Dim,
		vectors: sm.Vectors,
	}
	var err error
	if m.firstIdx, err = m.buildIndex(first.c); err != nil {
		return nil, err
	}
	if m.secondIdx, err = m.buildIndex(second.c); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadModelFile reads a model from a file written by SaveFile.
func LoadModelFile(path string, first, second *Corpus) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f, first, second)
}
