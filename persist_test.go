package tdmatch

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/tdmatch/tdmatch/internal/match"
)

// servingBase unwraps a model's serving index to the base segment's
// kind-carrying index (IVF, SQ8, Sharded, flat) for type assertions.
func servingBase(idx match.VectorIndex) match.VectorIndex {
	if seg, ok := idx.(*match.Segmented); ok {
		return seg.Base()
	}
	return idx
}

func TestSaveLoadRoundTrip(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	// Rankings must be identical.
	for _, q := range reviews.IDs() {
		orig, err := model.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(orig) != len(got) {
			t.Fatalf("lengths differ for %s", q)
		}
		for i := range orig {
			if orig[i].ID != got[i].ID {
				t.Errorf("%s rank %d: %s vs %s", q, i, orig[i].ID, got[i].ID)
			}
		}
	}
	// Vectors survive byte-exact.
	v1 := model.Vector("reviews:p0")
	v2 := loaded.Vector("reviews:p0")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("vector changed in round trip")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Vector("movies:t0") == nil {
		t.Error("loaded model lost tuple vector")
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.gob"), movies, reviews); err == nil {
		t.Error("want error for missing file")
	}
}

func TestSaveLoadRestoresIndexChoice(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Index = IndexIVF
	cfg.IVFClusters = 2
	// Deliberately NOT ExactRecall: approximate rankings depend on the
	// k-means partitioning, so this only round-trips if the clustering
	// seed is persisted too.
	cfg.IVFNProbe = 1
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.cfg.Index != IndexIVF || loaded.cfg.IVFClusters != 2 ||
		loaded.cfg.IVFNProbe != 1 || loaded.cfg.Seed != cfg.Seed {
		t.Errorf("index config not restored: %+v", loaded.cfg)
	}
	if _, ok := servingBase(loaded.firstIdx).(*match.IVF); !ok {
		t.Errorf("loaded serving index is %T, want *match.IVF", servingBase(loaded.firstIdx))
	}
	// Approximate rankings must equal the trained model's: same seed,
	// same partitioning, same probes.
	for _, q := range reviews.IDs() {
		orig, err := model.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if orig[i].ID != got[i].ID {
				t.Errorf("%s rank %d: %s vs %s", q, i, orig[i].ID, got[i].ID)
			}
		}
	}
}

func TestSaveLoadSQ8SnapshotServesIdenticalRankings(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Index = IndexSQ8
	cfg.SQ8Rerank = 6
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info := snap.Info(); info.Index != IndexSQ8 || info.SQ8Rerank != 6 {
		t.Errorf("snapshot info = %+v, want sq8 with rerank 6", info)
	}
	loaded, err := snap.Bind(movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := servingBase(loaded.firstIdx).(*match.IndexSQ8)
	if !ok {
		t.Fatalf("loaded serving index is %T, want *match.IndexSQ8", servingBase(loaded.firstIdx))
	}
	if sq.Rerank() != 6 {
		t.Errorf("loaded rerank = %d, want 6", sq.Rerank())
	}
	// Quantization is deterministic in the stored vectors, so the reloaded
	// model must serve identical rankings — scores included.
	for _, q := range append(movies.IDs(), reviews.IDs()...) {
		if model.Vector(q) == nil {
			continue
		}
		orig, err := model.TopK(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("SQ8 round trip diverged for %s:\norig:   %v\nloaded: %v", q, orig, got)
		}
	}
}

func TestLoadModelArenaValidation(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(savedModel{
		Version: 2, Dim: 8, FirstName: "movies", SecondName: "reviews",
		VectorIDs: []string{"movies:t0"}, Arena: []float32{1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf, movies, reviews); err == nil {
		t.Error("want error for arena/ids size mismatch")
	}
}

// Version-by-version load coverage lives in persist_compat_test.go
// (TestSnapshotBackCompat), which loads the committed v1–v4 fixtures
// and asserts identical rankings across formats.

func TestReadModelInfo(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Index = IndexIVF
	cfg.IVFClusters = 2
	cfg.IVFNProbe = 1
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := ReadModelInfoFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := ModelInfo{
		Version: savedModelVersion, Dim: cfg.Dim, FirstName: "movies", SecondName: "reviews",
		Docs: len(model.Vectors()), Index: IndexIVF, IVFClusters: 2, IVFNProbe: 1,
	}
	if info != want {
		t.Errorf("info = %+v, want %+v", info, want)
	}
	if _, err := ReadModelInfoFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("want error for missing file")
	}
	if _, err := ReadModelInfo(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("want error for corrupt payload")
	}
}

func TestSnapshotDecodeOnceBindMatchesLoadModel(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info := snap.Info(); info.FirstName != "movies" || info.Docs != len(model.Vectors()) {
		t.Errorf("snapshot info = %+v", info)
	}
	bound, err := snap.Bind(movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()), movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range reviews.IDs() {
		a, err := bound.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s rank %d: Bind %v vs LoadModel %v", q, i, a[i], b[i])
			}
		}
	}
	if _, err := snap.Bind(nil, nil); err == nil {
		t.Error("want error for nil corpora")
	}
	other, err := NewText("different", []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Bind(other, reviews); err == nil {
		t.Error("want error for mismatched corpus names")
	}
}

func TestLoadModelValidation(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong corpus names are rejected.
	other, err := NewText("different", []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()), other, reviews); err == nil {
		t.Error("want error for mismatched corpora")
	}
	// Nil corpora are rejected.
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()), nil, nil); err == nil {
		t.Error("want error for nil corpora")
	}
	// Corrupt payload is rejected.
	if _, err := LoadModel(bytes.NewReader([]byte("not a gob")), movies, reviews); err == nil {
		t.Error("want error for corrupt payload")
	}
}
