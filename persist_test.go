package tdmatch

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	// Rankings must be identical.
	for _, q := range reviews.IDs() {
		orig, err := model.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(orig) != len(got) {
			t.Fatalf("lengths differ for %s", q)
		}
		for i := range orig {
			if orig[i].ID != got[i].ID {
				t.Errorf("%s rank %d: %s vs %s", q, i, orig[i].ID, got[i].ID)
			}
		}
	}
	// Vectors survive byte-exact.
	v1 := model.Vector("reviews:p0")
	v2 := loaded.Vector("reviews:p0")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("vector changed in round trip")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path, movies, reviews)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Vector("movies:t0") == nil {
		t.Error("loaded model lost tuple vector")
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.gob"), movies, reviews); err == nil {
		t.Error("want error for missing file")
	}
}

func TestLoadModelValidation(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong corpus names are rejected.
	other, err := NewText("different", []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()), other, reviews); err == nil {
		t.Error("want error for mismatched corpora")
	}
	// Nil corpora are rejected.
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()), nil, nil); err == nil {
		t.Error("want error for nil corpora")
	}
	// Corrupt payload is rejected.
	if _, err := LoadModel(bytes.NewReader([]byte("not a gob")), movies, reviews); err == nil {
		t.Error("want error for corrupt payload")
	}
}
