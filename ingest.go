package tdmatch

import (
	"errors"
	"fmt"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/pipeline"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// ErrUnknownDocument reports an operation on a document ID that is in
// neither corpus. Wrapped by Model.Remove's per-ID failures; match with
// errors.Is (the serving daemon maps it to HTTP 404).
var ErrUnknownDocument = errors.New("unknown document")

// ErrDuplicateDocument reports an ingest of a document ID that already
// exists in one of the corpora. Wrapped by Model.Ingest's per-document
// failures; match with errors.Is. WAL replay relies on it to recognize
// operations the snapshot already contains (see WAL.Replay).
var ErrDuplicateDocument = errors.New("document already exists")

// IngestDoc is one document added by Model.Ingest.
type IngestDoc struct {
	// Side is the corpus the document joins: 1 (first) or 2 (second).
	Side int
	// ID is the new document's unique ID (required).
	ID string
	// Values carries the document content: for a table corpus the values
	// align with the schema columns (shorter documents are padded, more
	// values than columns is an error); for text and taxonomy corpora the
	// values are joined into the document text.
	Values []string
	// Parent references the parent document for taxonomy corpora.
	Parent string
}

// Staleness returns the number of delta documents (ingested plus
// removed) not yet folded into a full retrain. It grows with every
// Ingest and Remove and drops to zero on Compact. Deployments watch it
// to decide when the incremental approximation has drifted enough to be
// worth a rebuild.
//
// The count is derived from the delta chain against the fold watermark
// rather than kept as a resettable counter, so a mutation that lands
// while a background compaction rebuilds (Server.Compact's replay
// window) stays counted: Compact folds exactly the deltas its rebuild
// saw, never ones appended afterwards.
func (m *Model) Staleness() int {
	folded := m.folded
	if folded > len(m.deltas) {
		folded = len(m.deltas)
	}
	n := m.staleBase
	for _, d := range m.deltas[folded:] {
		n += len(d.Added) + len(d.Removed)
	}
	return n
}

// Ingest adds documents to the model without a full rebuild — the
// incremental counterpart of Build. On a trained model the delta
// pipeline stages run against the retained state: the graph is patched
// in place (frozen-CSR insert), walks are seeded from the new
// documents' neighborhood only, and training warm-starts from the
// existing arenas so the new rows are fine-tuned into the established
// embedding space while every previously served vector stays frozen.
// On a snapshot-restored model (no trainer state) the new documents are
// folded in from the snapshot's term vectors: each document's vector is
// the sum of its known terms' trained vectors — cheaper and slightly
// less faithful; the staleness counter tracks how far either
// approximation has drifted and Compact is the full-rebuild escape
// hatch. Delta documents get the full build treatment: the per-document
// TF-IDF token filter (FilterTFIDF) scores them against the build's
// retained document-frequency statistics, and external-resource
// expansion fetches relations for the nodes they create.
//
// Ingest mutates the model and must not run concurrently with queries;
// Server.Ingest wraps it in a clone-and-swap for live serving.
func (m *Model) Ingest(docs []IngestDoc) error {
	if len(docs) == 0 {
		return nil
	}
	if m.ps == nil && m.fold == nil {
		return fmt.Errorf("tdmatch: model cannot ingest: it was restored from a snapshot without term vectors — rebuild with Build, or re-save with the current snapshot version")
	}
	var addFirst, addSecond []corpus.Document
	var record []savedDoc
	seen := make(map[string]struct{}, len(docs))
	for _, d := range docs {
		var c *corpus.Corpus
		switch d.Side {
		case 1:
			c = m.first.c
		case 2:
			c = m.second.c
		default:
			return fmt.Errorf("tdmatch: ingest document %q has side %d, want 1 or 2", d.ID, d.Side)
		}
		if d.ID == "" {
			return fmt.Errorf("tdmatch: ingest document without an ID")
		}
		if _, dup := seen[d.ID]; dup {
			return fmt.Errorf("tdmatch: duplicate document %q in ingest batch", d.ID)
		}
		seen[d.ID] = struct{}{}
		if m.sideOf(d.ID) != 0 {
			return fmt.Errorf("tdmatch: document %q: %w", d.ID, ErrDuplicateDocument)
		}
		if g := m.graph(); g != nil {
			// Document IDs become graph metadata labels; reject collisions
			// with non-document labels (attribute nodes like "movies/title")
			// here, so the graph patch below can no longer fail after the
			// corpora have been mutated.
			if _, taken := g.MetaNode(d.ID); taken {
				return fmt.Errorf("tdmatch: document ID %q collides with an existing graph label", d.ID)
			}
		}
		doc, err := ingestDocument(c, d)
		if err != nil {
			return err
		}
		if d.Side == 1 {
			addFirst = append(addFirst, doc)
		} else {
			addSecond = append(addSecond, doc)
		}
		record = append(record, savedDocOf(d.Side, doc))
	}
	// Append to the corpora, rolling back on a mid-batch failure (e.g. a
	// Structured document referencing an unknown parent, which only the
	// corpus can check): nothing downstream has run yet, so removing the
	// already-appended documents fully restores the model.
	var appended []*corpus.Corpus
	var appendedIDs []string
	rollback := func() {
		for i := range appended {
			appended[i].Remove(appendedIDs[i])
		}
	}
	for _, doc := range addFirst {
		if err := m.first.c.Append(doc); err != nil {
			rollback()
			return err
		}
		appended = append(appended, m.first.c)
		appendedIDs = append(appendedIDs, doc.ID)
	}
	for _, doc := range addSecond {
		if err := m.second.c.Append(doc); err != nil {
			rollback()
			return err
		}
		appended = append(appended, m.second.c)
		appendedIDs = append(appendedIDs, doc.ID)
	}

	if m.ps != nil {
		if err := m.ingestWarm(addFirst, addSecond); err != nil {
			return err
		}
	} else {
		m.ingestFold(append(append([]corpus.Document(nil), addFirst...), addSecond...))
	}

	if err := m.appendToIndex(m.firstIdx, addFirst); err != nil {
		return err
	}
	if err := m.appendToIndex(m.secondIdx, addSecond); err != nil {
		return err
	}
	m.invalidateDerived()
	m.deltas = append(m.deltas, savedDelta{Added: record})
	return nil
}

// ingestWarm runs the delta pipeline stages against the retained state
// and gathers the new documents' trained vectors. A spilled trainer
// output arena is reloaded first, so serving-only processes that
// called SpillTrainer keep full warm-start capability.
func (m *Model) ingestWarm(addFirst, addSecond []corpus.Document) error {
	if err := m.reloadSpill(); err != nil {
		return err
	}
	st := m.ps
	st.Delta = &pipeline.Delta{AddFirst: addFirst, AddSecond: addSecond}
	err := pipeline.Run(st, pipeline.DeltaStages())
	st.Delta = nil
	st.Seqs = embed.Sequences{}
	if err != nil {
		return err
	}
	newDocs := make(map[string]graph.NodeID, len(addFirst)+len(addSecond))
	for _, doc := range addFirst {
		if node, ok := st.Build.DocNode[doc.ID]; ok {
			newDocs[doc.ID] = node
		}
	}
	for _, doc := range addSecond {
		if node, ok := st.Build.DocNode[doc.ID]; ok {
			newDocs[doc.ID] = node
		}
	}
	m.gatherVectors(newDocs)
	return nil
}

// ingestFold computes fold-in vectors for the new documents of a
// snapshot-restored model: the sum of the trained vectors of the
// document's known terms (terms the training vocabulary never saw
// contribute nothing; a document with no known term gets no embedding,
// like an isolated node after a full build).
func (m *Model) ingestFold(docs []corpus.Document) {
	arena := make([]float32, len(docs)*m.dim)
	used := 0
	for _, doc := range docs {
		row := arena[used*m.dim : (used+1)*m.dim : (used+1)*m.dim]
		known := 0
		for _, v := range doc.Values {
			toks := m.fold.pre.Tokens(v.Text)
			for _, term := range textproc.NGrams(toks, m.fold.maxNGram()) {
				tv, ok := m.fold.terms[term]
				if !ok {
					continue
				}
				known++
				for d := range row {
					row[d] += tv[d]
				}
			}
		}
		if known > 0 {
			m.vectors[doc.ID] = row
			used++
		}
	}
}

// Remove deletes documents from the model: their corpus entries and
// vectors go away, their index rows are tombstoned (rankings never
// surface them again), and on a trained model their graph nodes are
// removed in place — term nodes and the embedding space stay, so a
// later re-ingest of similar content lands in familiar territory.
// Unknown IDs are an error and nothing is removed.
//
// Like Ingest, Remove mutates the model and must not run concurrently
// with queries; Server.Remove wraps it in a clone-and-swap.
func (m *Model) Remove(ids []string) error {
	if len(ids) == 0 {
		return nil
	}
	var firstIDs, secondIDs []string
	seen := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("tdmatch: duplicate document %q in remove batch", id)
		}
		seen[id] = struct{}{}
		switch m.sideOf(id) {
		case 1:
			firstIDs = append(firstIDs, id)
		case 2:
			secondIDs = append(secondIDs, id)
		default:
			return fmt.Errorf("tdmatch: %w %q", ErrUnknownDocument, id)
		}
	}
	m.first.c.RemoveBatch(firstIDs)
	m.second.c.RemoveBatch(secondIDs)
	if m.ps != nil {
		st := m.ps
		st.Delta = &pipeline.Delta{Remove: ids}
		err := pipeline.Run(st, pipeline.DeltaStages())
		st.Delta = nil
		if err != nil {
			return err
		}
	}
	for _, id := range ids {
		delete(m.vectors, id)
	}
	m.firstIdx.Remove(firstIDs)
	m.secondIdx.Remove(secondIDs)
	m.invalidateDerived()
	m.deltas = append(m.deltas, savedDelta{Removed: append([]string(nil), ids...)})
	return nil
}

// Compact is the full-rebuild escape hatch: it re-runs the complete
// build pipeline over the current corpora (including every ingested
// document), replacing the incrementally-patched state — and the whole
// serving segment stack, collapsed back to one sealed base segment —
// with a freshly trained one. The fold watermark advances to the end of
// the delta chain as it stands now, so Staleness drops to zero; the
// chain itself is kept — it records which documents are absent from the
// original corpus files, which a rebuild does not change. For rebuilds
// under live traffic use Server.Compact, which runs this off to the
// side and replays mutations that land mid-rebuild.
func (m *Model) Compact() error {
	nm, err := Build(m.first, m.second, m.cfg)
	if err != nil {
		return err
	}
	m.ps = nm.ps
	m.fold = nil
	m.vectors = nm.vectors
	m.dim = nm.dim
	m.firstIdx = nm.firstIdx
	m.secondIdx = nm.secondIdx
	m.stats = nm.stats
	m.folded = len(m.deltas)
	m.staleBase = 0
	m.spillPath = ""
	// Drops the blockers, the combined-scorer caches and the monolithic
	// exact indexes; the latter rebuild lazily over the fresh stack.
	m.invalidateDerived()
	return nil
}

// appendToIndex appends the documents' vectors to a serving index (the
// IVF and SQ8 wrappers append to their underlying flat index, which is
// the model's, so the exact paths stay in sync). Documents without an
// embedding become zero rows, exactly as after a full build.
func (m *Model) appendToIndex(idx match.VectorIndex, docs []corpus.Document) error {
	if len(docs) == 0 {
		return nil
	}
	ids := make([]string, len(docs))
	arena := make([]float32, len(docs)*m.dim)
	for i, doc := range docs {
		ids[i] = doc.ID
		if v := m.vectors[doc.ID]; v != nil {
			copy(arena[i*m.dim:(i+1)*m.dim], v)
		}
	}
	return idx.Append(ids, arena)
}

// invalidateDerived drops the lazily-built serving caches that depend
// on corpus or index composition: the token blockers, the external
// combined-scorer indexes and the monolithic exact indexes (rebuilt on
// the next TopKCombined/TopKBlocked call over the stack's live rows).
func (m *Model) invalidateDerived() {
	m.blkMu.Lock()
	m.firstBlk, m.secondBlk = nil, nil
	m.blkMu.Unlock()
	m.extMu.Lock()
	m.extCache = [2]extIndexCache{}
	m.extMu.Unlock()
	m.flatMu.Lock()
	m.firstFlat, m.secondFlat = nil, nil
	m.flatMu.Unlock()
}

// clone returns a deep-enough copy for the serving layer's
// clone-mutate-swap: everything Ingest/Remove mutates is copied
// (corpora, vector map, graph overlay state, delta chain), immutable
// artefacts (vector rows, trained arenas, sealed index segments) are
// shared. Index cloning is O(delta + tombstones) — the sealed segment
// stack is shared outright, only the mutable delta segment and the
// tombstone overlay are copied — so cloning never re-touches the full
// arena the way a monolithic index clone would. The monolithic exact
// caches are not carried over; a clone rebuilds them on first
// TopKCombined/TopKBlocked use.
func (m *Model) clone() *Model {
	first := &Corpus{c: m.first.c.Clone()}
	second := &Corpus{c: m.second.c.Clone()}
	nm := &Model{
		cfg:       m.cfg,
		first:     first,
		second:    second,
		fold:      m.fold,
		dim:       m.dim,
		folded:    m.folded,
		staleBase: m.staleBase,
		spillPath: m.spillPath,
		stats:     m.stats,
		deltas:    append([]savedDelta(nil), m.deltas...),
		backing:   m.backing,
	}
	nm.vectors = make(map[string][]float32, len(m.vectors))
	for id, v := range m.vectors {
		nm.vectors[id] = v
	}
	if m.ps != nil {
		nm.ps = m.ps.Clone(first.c, second.c)
	}
	nm.firstIdx = cloneIndex(m.firstIdx)
	nm.secondIdx = cloneIndex(m.secondIdx)
	return nm
}

// cloneIndex clones a serving index for the swap chain: segment stacks
// share their sealed segments (O(delta)); anything else falls back to
// a full copy.
func cloneIndex(idx match.VectorIndex) match.VectorIndex {
	if seg, ok := idx.(*match.Segmented); ok {
		return seg.Clone()
	}
	if flat, ok := idx.(*match.Index); ok {
		return flat.Clone()
	}
	return idx
}

// foldState is the ingest state of a snapshot-restored model: the
// trained term vectors plus the preprocessor that reproduces the
// build's tokenization. Term vectors are read-only and shared across
// clones.
type foldState struct {
	pre   textproc.Preprocessor
	terms map[string][]float32
}

// maxNGram returns the term length bound of the restored preprocessor.
func (f *foldState) maxNGram() int {
	if f.pre.MaxNGram <= 0 {
		return 1
	}
	return f.pre.MaxNGram
}

// ingestDocument converts the public IngestDoc into the internal
// document shape of its corpus.
func ingestDocument(c *corpus.Corpus, d IngestDoc) (corpus.Document, error) {
	doc := corpus.Document{ID: d.ID}
	switch c.Kind {
	case corpus.Table:
		if len(d.Values) > len(c.Columns) {
			return doc, fmt.Errorf("tdmatch: document %q has %d values for %d columns", d.ID, len(d.Values), len(c.Columns))
		}
		vals := make([]corpus.Value, len(c.Columns))
		for j, col := range c.Columns {
			v := ""
			if j < len(d.Values) {
				v = d.Values[j]
			}
			vals[j] = corpus.Value{Column: col, Text: v}
		}
		doc.Values = vals
	case corpus.Structured:
		doc.Values = []corpus.Value{{Text: strings.Join(d.Values, " ")}}
		doc.Parent = d.Parent
	default:
		doc.Values = []corpus.Value{{Text: strings.Join(d.Values, " ")}}
	}
	return doc, nil
}

// shareTrainer marks the model's trainer arenas as shared: the serving
// layer calls it when it takes a caller-owned model (NewServer,
// Reload), so the first ingest on the swap chain warm-starts by
// copying instead of fine-tuning arenas the caller may still read
// (Save, further Ingest on their own reference). Later clones in the
// chain own their arenas exclusively and fine-tune in place.
func (m *Model) shareTrainer() {
	if m.ps != nil {
		m.ps.OwnsEmbed = false
	}
}

// ingestDocsOfSaved converts persisted delta documents back into the
// public ingest shape, for replaying a delta-chain suffix onto a
// compacted model.
func ingestDocsOfSaved(saved []savedDoc) []IngestDoc {
	out := make([]IngestDoc, len(saved))
	for i, sd := range saved {
		out[i] = IngestDoc{
			Side:   int(sd.Side),
			ID:     sd.ID,
			Values: append([]string(nil), sd.Texts...),
			Parent: sd.Parent,
		}
	}
	return out
}

// savedDocOf converts an ingested document into its persisted form.
func savedDocOf(side int, doc corpus.Document) savedDoc {
	sd := savedDoc{Side: uint8(side), ID: doc.ID, Parent: doc.Parent}
	for _, v := range doc.Values {
		sd.Columns = append(sd.Columns, v.Column)
		sd.Texts = append(sd.Texts, v.Text)
	}
	return sd
}

// documentOfSaved restores a persisted delta document.
func documentOfSaved(sd savedDoc) corpus.Document {
	doc := corpus.Document{ID: sd.ID, Parent: sd.Parent}
	for i := range sd.Texts {
		col := ""
		if i < len(sd.Columns) {
			col = sd.Columns[i]
		}
		doc.Values = append(doc.Values, corpus.Value{Column: col, Text: sd.Texts[i]})
	}
	return doc
}
