package tdmatch

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// writePersistFixtures regenerates the committed snapshot fixtures:
//
//	go test -run TestWritePersistFixtures -write-persist-fixtures
//
// Only needed when the fixture model or a snapshot version changes.
var writePersistFixtures = flag.Bool("write-persist-fixtures", false,
	"regenerate testdata/persist/*.gob")

// persistFixtureDir holds one committed snapshot per format version,
// all encoding the same trained model, plus a v4 snapshot with a live
// delta chain.
const persistFixtureDir = "testdata/persist"

// persistFixtureModel trains the deterministic model the fixtures
// encode (Workers 1: the committed vectors must be reproducible).
func persistFixtureModel(t *testing.T) *Model {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// encodeFixture writes one savedModel as a gob file.
func encodeFixture(t *testing.T, path string, sm savedModel) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(sm); err != nil {
		t.Fatal(err)
	}
}

// TestWritePersistFixtures regenerates the committed fixtures; a no-op
// (skipped) without the -write-persist-fixtures flag.
func TestWritePersistFixtures(t *testing.T) {
	if !*writePersistFixtures {
		t.Skip("pass -write-persist-fixtures to regenerate")
	}
	if err := os.MkdirAll(persistFixtureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	model := persistFixtureModel(t)

	ids := make([]string, 0, len(model.vectors))
	for id := range model.vectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	arena := make([]float32, len(ids)*model.dim)
	vectors := make(map[string][]float32, len(ids))
	for i, id := range ids {
		copy(arena[i*model.dim:(i+1)*model.dim], model.vectors[id])
		vectors[id] = model.vectors[id]
	}
	base := savedModel{
		Dim:        model.dim,
		FirstName:  model.first.Name(),
		SecondName: model.second.Name(),
	}

	v1 := base
	v1.Version = 1
	v1.Vectors = vectors
	encodeFixture(t, filepath.Join(persistFixtureDir, "v1.gob"), v1)

	v2 := base
	v2.Version = 2
	v2.VectorIDs, v2.Arena = ids, arena
	encodeFixture(t, filepath.Join(persistFixtureDir, "v2.gob"), v2)

	v3 := v2
	v3.Version = 3
	encodeFixture(t, filepath.Join(persistFixtureDir, "v3.gob"), v3)

	// v5: the current Save output (term vectors, MaxNGram, segment
	// manifests, no deltas).
	if err := model.SaveFile(filepath.Join(persistFixtureDir, "v5.gob")); err != nil {
		t.Fatal(err)
	}

	// v4: the version-4 encoding — the current payload minus the
	// segment manifests.
	v4 := reSaved(t, model)
	v4.Version = 4
	v4.FirstSegments, v4.SecondSegments = nil, nil
	encodeFixture(t, filepath.Join(persistFixtureDir, "v4.gob"), v4)

	// v4delta: the same model after one ingest and one removal, saved
	// with its delta chain (version-4 form).
	mutated := model.clone()
	if err := mutated.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:delta", Values: []string{"Willis returns in a Tarantino crime sequel"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := mutated.Remove([]string{"reviews:p3"}); err != nil {
		t.Fatal(err)
	}
	v4d := reSaved(t, mutated)
	v4d.Version = 4
	v4d.FirstSegments, v4d.SecondSegments = nil, nil
	encodeFixture(t, filepath.Join(persistFixtureDir, "v4delta.gob"), v4d)

	// v5segments: a model whose serving stack holds several sealed
	// segments plus tombstones when saved — the manifest-restoration
	// fixture. Built with a tiny auto-seal threshold so single-doc
	// ingests pile up sealed segments.
	segmented := persistFixtureSegmentedModel(t)
	if err := segmented.SaveFile(filepath.Join(persistFixtureDir, "v5segments.gob")); err != nil {
		t.Fatal(err)
	}

	// v6: the same trained model in the flat memory-mappable format.
	if err := model.SaveFileV6(filepath.Join(persistFixtureDir, "v6.snap")); err != nil {
		t.Fatal(err)
	}

	// v6hnsw: the same corpora served through the HNSW graph index — the
	// only fixture carrying graph sections (levels, CSR offsets,
	// adjacency), bound zero-copy via NewHNSWParts on load.
	if err := persistFixtureHNSWModel(t).SaveFileV6(filepath.Join(persistFixtureDir, "v6hnsw.snap")); err != nil {
		t.Fatal(err)
	}
}

// reSaved round-trips a model through Save and returns the decoded
// payload, for fixture writers that derive older versions from it.
func reSaved(t *testing.T, m *Model) savedModel {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var sm savedModel
	if err := gob.NewDecoder(&buf).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	return sm
}

// persistFixtureSegmentedModel builds the deterministic multi-segment
// fixture model: tiny auto-seal threshold, three single-doc ingests
// (two seals), one sealed-row removal (a tombstone).
func persistFixtureSegmentedModel(t *testing.T) *Model {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.SegmentMaxDocs = 1
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range []string{
		"Brando leads a mafia family epic",
		"Coppola directs a crime dynasty",
		"Pacino inherits the family business",
	} {
		if err := model.Ingest([]IngestDoc{
			{Side: 2, ID: fmt.Sprintf("reviews:seg%d", i), Values: []string{text}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := model.Remove([]string{"reviews:seg1"}); err != nil {
		t.Fatal(err)
	}
	return model
}

// persistFixtureHNSWModel trains the deterministic HNSW fixture model:
// the shared corpora served through a graph narrow enough (M 4, ef 8)
// that the committed snapshot's adjacency sections are actually walked
// at query time rather than delegated to the exact scan.
func persistFixtureHNSWModel(t *testing.T) *Model {
	t.Helper()
	movies, reviews := fixtureCorpora(t)
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.Index = IndexHNSW
	cfg.HNSWM = 4
	cfg.HNSWEf = 8
	cfg.HNSWEfConstruct = 16
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestSnapshotBackCompat is the consolidated persistence back-compat
// coverage: every committed snapshot version (v1 per-document map, v2
// arena, v3 arena+SQ8 field, v4 ingest payload, v5 segment manifests,
// v6 flat mmap layout) must load against the fixture corpora and serve
// identical TopK rankings — same documents, same order — since all of
// them encode the same trained vectors.
func TestSnapshotBackCompat(t *testing.T) {
	type ranked map[string][]string
	rankAll := func(t *testing.T, m *Model) ranked {
		t.Helper()
		out := ranked{}
		for _, q := range append(m.first.IDs(), m.second.IDs()...) {
			if m.Vector(q) == nil {
				continue
			}
			matches, err := m.TopK(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]string, len(matches))
			for i, mt := range matches {
				ids[i] = mt.ID
			}
			out[q] = ids
		}
		return out
	}

	var baseline ranked
	var baselineFrom string
	for _, tc := range []struct {
		file    string
		version int
		ingest  bool // fold-in ingest must be available
	}{
		{"v1.gob", 1, false},
		{"v2.gob", 2, false},
		{"v3.gob", 3, false},
		{"v4.gob", 4, true},
		{"v5.gob", 5, true},
		{"v6.snap", 6, true},
	} {
		t.Run(tc.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join(persistFixtureDir, tc.file))
			if err != nil {
				t.Fatalf("committed fixture missing (regenerate with -write-persist-fixtures): %v", err)
			}
			defer f.Close()
			snap, err := ReadSnapshot(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := snap.Info().Version; got != tc.version {
				t.Fatalf("fixture version = %d, want %d", got, tc.version)
			}
			movies, reviews := fixtureCorpora(t)
			model, err := snap.Bind(movies, reviews)
			if err != nil {
				t.Fatal(err)
			}
			got := rankAll(t, model)
			if len(got) == 0 {
				t.Fatal("no servable queries")
			}
			if baseline == nil {
				baseline, baselineFrom = got, tc.file
			} else if !reflect.DeepEqual(got, baseline) {
				t.Errorf("%s rankings diverge from %s", tc.file, baselineFrom)
			}
			if gotIngest := model.fold != nil || model.ps != nil; gotIngest != tc.ingest {
				t.Errorf("ingest support = %v, want %v", gotIngest, tc.ingest)
			}
		})
	}

	// The delta-chain fixture additionally mutates the corpora at Bind
	// and serves the ingested document.
	t.Run("v4delta.gob", func(t *testing.T) {
		f, err := os.Open(filepath.Join(persistFixtureDir, "v4delta.gob"))
		if err != nil {
			t.Fatalf("committed fixture missing: %v", err)
		}
		defer f.Close()
		snap, err := ReadSnapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		info := snap.Info()
		if info.DeltaDocs != 2 || info.Staleness != 2 {
			t.Errorf("delta fixture info = %+v, want 2 delta docs at staleness 2", info)
		}
		movies, reviews := fixtureCorpora(t)
		model, err := snap.Bind(movies, reviews)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := reviews.c.Doc("reviews:delta"); !ok {
			t.Error("delta-chain ingest not applied to the corpus")
		}
		if _, ok := reviews.c.Doc("reviews:p3"); ok {
			t.Error("delta-chain removal not applied to the corpus")
		}
		if _, err := model.TopK("reviews:delta", 3); err != nil {
			t.Errorf("ingested document not servable after load: %v", err)
		}
		if _, err := model.TopK("reviews:p3", 3); err == nil {
			t.Error("removed document still servable after load")
		}
	})

	// The HNSW fixture restores the graph index from its committed
	// sections — borrowed, not rebuilt — and serves rankings identical
	// to a live build with the same seed (the graph is deterministic, so
	// approximate results are still reproducible).
	t.Run("v6hnsw.snap", func(t *testing.T) {
		f, err := os.Open(filepath.Join(persistFixtureDir, "v6hnsw.snap"))
		if err != nil {
			t.Fatalf("committed fixture missing (regenerate with -write-persist-fixtures): %v", err)
		}
		defer f.Close()
		snap, err := ReadSnapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		info := snap.Info()
		if info.Version != 6 || info.Index != IndexHNSW {
			t.Fatalf("fixture info = version %d index %v, want 6/hnsw", info.Version, info.Index)
		}
		if info.HNSWM != 4 || info.HNSWEf != 8 || info.HNSWEfConstruct != 16 {
			t.Errorf("fixture HNSW knobs = %d/%d/%d, want 4/8/16", info.HNSWM, info.HNSWEf, info.HNSWEfConstruct)
		}
		movies, reviews := fixtureCorpora(t)
		loaded, err := snap.Bind(movies, reviews)
		if err != nil {
			t.Fatal(err)
		}
		live := persistFixtureHNSWModel(t)
		for _, q := range append(loaded.first.IDs(), loaded.second.IDs()...) {
			if loaded.Vector(q) == nil {
				continue
			}
			got, err := loaded.TopK(q, 3)
			if err != nil {
				t.Fatalf("TopK(%s): %v", q, err)
			}
			want, err := live.TopK(q, 3)
			if err != nil {
				t.Fatalf("live TopK(%s): %v", q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored HNSW rankings diverge for %s:\ngot:  %v\nwant: %v", q, got, want)
			}
		}
	})

	// The multi-segment fixture must restore its saved segment
	// boundaries and serve rankings identical to the live model it
	// encodes (exact kinds: the stack is bit-equivalent to monolithic).
	t.Run("v5segments.gob", func(t *testing.T) {
		f, err := os.Open(filepath.Join(persistFixtureDir, "v5segments.gob"))
		if err != nil {
			t.Fatalf("committed fixture missing (regenerate with -write-persist-fixtures): %v", err)
		}
		defer f.Close()
		snap, err := ReadSnapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := snap.Info().Version; got != 5 {
			t.Fatalf("fixture version = %d, want 5", got)
		}
		movies, reviews := fixtureCorpora(t)
		loaded, err := snap.Bind(movies, reviews)
		if err != nil {
			t.Fatal(err)
		}
		_, second := loaded.SegmentStats()
		if second.Segments < 2 {
			t.Errorf("restored stack has %d sealed segments on side 2, want >= 2 (%+v)",
				second.Segments, second)
		}
		live := persistFixtureSegmentedModel(t)
		for _, q := range append(loaded.first.IDs(), loaded.second.IDs()...) {
			if loaded.Vector(q) == nil {
				continue
			}
			got, err := loaded.TopK(q, 3)
			if err != nil {
				t.Fatalf("TopK(%s): %v", q, err)
			}
			want, err := live.TopK(q, 3)
			if err != nil {
				t.Fatalf("live TopK(%s): %v", q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored segmented rankings diverge for %s:\ngot:  %v\nwant: %v", q, got, want)
			}
		}
		if _, err := loaded.TopK("reviews:seg1", 3); err == nil {
			t.Error("tombstoned document still servable after load")
		}
	})
}
