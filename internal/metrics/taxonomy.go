package metrics

import "sort"

// Taxonomy-path measures for the structured-text task (paper §V-B).
//
// Every matched concept is identified by its root-to-node path. With Exact
// scores a predicted path counts only when equal to a ground-truth path;
// Node scores give partial credit for overlapping paths per Equation (1),
// after stripping the two most general levels (root and first level).

// PathKey canonicalizes a path for equality comparison.
func PathKey(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += "\x00"
		}
		out += p
	}
	return out
}

// NodeScore implements Equation (1): the intersection size of the two
// paths' node sets divided by the larger set size, computed after dropping
// the first two levels of each path. Two empty stripped paths score 0.
func NodeScore(p1, p2 []string) float64 {
	s1 := strip(p1)
	s2 := strip(p2)
	if len(s1) == 0 && len(s2) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(s1))
	for _, n := range s1 {
		set[n] = struct{}{}
	}
	inter := 0
	for _, n := range s2 {
		if _, ok := set[n]; ok {
			inter++
		}
	}
	max := len(s1)
	if len(s2) > max {
		max = len(s2)
	}
	if max == 0 {
		return 0
	}
	return float64(inter) / float64(max)
}

// strip removes the two most general levels (root and its child).
func strip(path []string) []string {
	if len(path) <= 2 {
		return nil
	}
	return path[2:]
}

// PRF is a precision / recall / F-score triple.
type PRF struct {
	P, R, F float64
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ExactPRF scores predicted paths against ground-truth paths by exact path
// equality: precision is the fraction of predictions that are true paths,
// recall the fraction of true paths predicted.
func ExactPRF(pred, truth [][]string) PRF {
	if len(pred) == 0 || len(truth) == 0 {
		return PRF{}
	}
	truthSet := make(map[string]struct{}, len(truth))
	for _, t := range truth {
		truthSet[PathKey(t)] = struct{}{}
	}
	hit := 0
	seen := map[string]struct{}{}
	for _, p := range pred {
		k := PathKey(p)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if _, ok := truthSet[k]; ok {
			hit++
		}
	}
	p := float64(hit) / float64(len(pred))
	r := float64(hit) / float64(len(truth))
	return PRF{P: p, R: r, F: f1(p, r)}
}

// NodePRF scores with partial credit: each predicted path earns its best
// NodeScore against any truth path (precision side), and each truth path
// its best score against any prediction (recall side).
func NodePRF(pred, truth [][]string) PRF {
	if len(pred) == 0 || len(truth) == 0 {
		return PRF{}
	}
	var pSum float64
	for _, p := range pred {
		best := 0.0
		for _, t := range truth {
			if s := NodeScore(p, t); s > best {
				best = s
			}
		}
		pSum += best
	}
	var rSum float64
	for _, t := range truth {
		best := 0.0
		for _, p := range pred {
			if s := NodeScore(p, t); s > best {
				best = s
			}
		}
		rSum += best
	}
	p := pSum / float64(len(pred))
	r := rSum / float64(len(truth))
	return PRF{P: p, R: r, F: f1(p, r)}
}

// TaxonomySummary averages Exact and Node PRF over a document set.
type TaxonomySummary struct {
	Exact, Node PRF
	Documents   int
}

// EvaluateTaxonomy scores per-document predicted paths against truth paths
// and averages. Documents without truth entries are skipped.
func EvaluateTaxonomy(pred map[string][][]string, truth map[string][][]string) TaxonomySummary {
	var s TaxonomySummary
	ids := make([]string, 0, len(pred))
	for id := range pred {
		if len(truth[id]) > 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return s
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := ExactPRF(pred[id], truth[id])
		n := NodePRF(pred[id], truth[id])
		s.Exact.P += e.P
		s.Exact.R += e.R
		s.Exact.F += e.F
		s.Node.P += n.P
		s.Node.R += n.R
		s.Node.F += n.F
		s.Documents++
	}
	d := float64(s.Documents)
	s.Exact.P /= d
	s.Exact.R /= d
	s.Exact.F /= d
	s.Node.P /= d
	s.Node.R /= d
	s.Node.F /= d
	return s
}
