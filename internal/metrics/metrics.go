// Package metrics implements the evaluation measures of the paper's §V:
// Mean Reciprocal Rank, MAP@k and HasPositive@k for ranking tasks
// (Tables I, II, IV, V, VI), and the Exact / Node precision-recall-F
// scores over taxonomy paths for the structured-text task (Table III,
// Equation 1).
package metrics

import "sort"

// ReciprocalRank returns 1/rank of the first relevant candidate, 0 when
// none appears.
func ReciprocalRank(ranked []string, relevant map[string]bool) float64 {
	for i, id := range ranked {
		if relevant[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// AveragePrecisionAt returns AP truncated at rank k: the sum of precision
// values at each relevant hit within the top k, normalized by
// min(|relevant|, k).
func AveragePrecisionAt(ranked []string, relevant map[string]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits, sum := 0, 0.0
	for i := 0; i < k; i++ {
		if relevant[ranked[i]] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	denom := len(relevant)
	if k < denom {
		denom = k
	}
	if denom == 0 {
		return 0
	}
	return sum / float64(denom)
}

// HasPositiveAt returns 1 when a relevant candidate appears in the top k.
func HasPositiveAt(ranked []string, relevant map[string]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	for i := 0; i < k; i++ {
		if relevant[ranked[i]] {
			return 1
		}
	}
	return 0
}

// RankSummary aggregates ranking quality over a query set, in the format
// of the paper's quality tables.
type RankSummary struct {
	// MRR is the mean reciprocal rank.
	MRR float64
	// MAPAt maps k to mean AP@k.
	MAPAt map[int]float64
	// HasPosAt maps k to the fraction of queries with a hit in the top k.
	HasPosAt map[int]float64
	// Queries is the number of evaluated queries (those with ground truth).
	Queries int
}

// EvaluateRanking scores ranked result lists against ground truth for the
// given cutoffs. Queries without ground-truth entries are skipped, like
// unannotated documents in the paper's datasets.
func EvaluateRanking(results map[string][]string, truth map[string][]string, ks []int) RankSummary {
	s := RankSummary{MAPAt: map[int]float64{}, HasPosAt: map[int]float64{}}
	// Deterministic iteration order for float accumulation.
	qids := make([]string, 0, len(results))
	for q := range results {
		if len(truth[q]) > 0 {
			qids = append(qids, q)
		}
	}
	sort.Strings(qids)
	for _, q := range qids {
		rel := make(map[string]bool, len(truth[q]))
		for _, id := range truth[q] {
			rel[id] = true
		}
		ranked := results[q]
		s.MRR += ReciprocalRank(ranked, rel)
		for _, k := range ks {
			s.MAPAt[k] += AveragePrecisionAt(ranked, rel, k)
			s.HasPosAt[k] += HasPositiveAt(ranked, rel, k)
		}
		s.Queries++
	}
	if s.Queries > 0 {
		n := float64(s.Queries)
		s.MRR /= n
		for _, k := range ks {
			s.MAPAt[k] /= n
			s.HasPosAt[k] /= n
		}
	}
	return s
}
