package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func rel(ids ...string) map[string]bool {
	m := map[string]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestReciprocalRank(t *testing.T) {
	ranked := []string{"a", "b", "c"}
	if rr := ReciprocalRank(ranked, rel("a")); !almostEq(rr, 1) {
		t.Errorf("RR first = %f", rr)
	}
	if rr := ReciprocalRank(ranked, rel("c")); !almostEq(rr, 1.0/3) {
		t.Errorf("RR third = %f", rr)
	}
	if rr := ReciprocalRank(ranked, rel("zzz")); rr != 0 {
		t.Errorf("RR missing = %f", rr)
	}
	if rr := ReciprocalRank(nil, rel("a")); rr != 0 {
		t.Errorf("RR empty = %f", rr)
	}
}

func TestAveragePrecisionAt(t *testing.T) {
	ranked := []string{"a", "x", "b", "y", "c"}
	truth := rel("a", "b", "c")
	// P@1 = 1, P@3 = 2/3, P@5 = 3/5; AP@5 = (1 + 2/3 + 3/5) / 3.
	want := (1.0 + 2.0/3 + 3.0/5) / 3
	if ap := AveragePrecisionAt(ranked, truth, 5); !almostEq(ap, want) {
		t.Errorf("AP@5 = %f, want %f", ap, want)
	}
	// AP@1 = 1/min(3,1) = 1.
	if ap := AveragePrecisionAt(ranked, truth, 1); !almostEq(ap, 1) {
		t.Errorf("AP@1 = %f", ap)
	}
	// AP@2: only "a" relevant in top2; denom = min(3,2)=2 → 0.5.
	if ap := AveragePrecisionAt(ranked, truth, 2); !almostEq(ap, 0.5) {
		t.Errorf("AP@2 = %f", ap)
	}
	if ap := AveragePrecisionAt(ranked, rel(), 5); ap != 0 {
		t.Errorf("AP no truth = %f", ap)
	}
	if ap := AveragePrecisionAt(ranked, truth, 0); ap != 0 {
		t.Errorf("AP k=0 = %f", ap)
	}
}

func TestHasPositiveAt(t *testing.T) {
	ranked := []string{"x", "y", "b"}
	truth := rel("b")
	if h := HasPositiveAt(ranked, truth, 1); h != 0 {
		t.Errorf("HasPos@1 = %f", h)
	}
	if h := HasPositiveAt(ranked, truth, 3); h != 1 {
		t.Errorf("HasPos@3 = %f", h)
	}
	if h := HasPositiveAt(ranked, truth, 10); h != 1 {
		t.Errorf("HasPos@10 (overlong k) = %f", h)
	}
}

func TestEvaluateRanking(t *testing.T) {
	results := map[string][]string{
		"q1": {"a", "b"},
		"q2": {"x", "t"},
		"q3": {"m"}, // no truth: skipped
	}
	truth := map[string][]string{
		"q1": {"a"},
		"q2": {"t"},
	}
	s := EvaluateRanking(results, truth, []int{1, 2})
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if !almostEq(s.MRR, (1.0+0.5)/2) {
		t.Errorf("MRR = %f", s.MRR)
	}
	if !almostEq(s.HasPosAt[1], 0.5) {
		t.Errorf("HasPos@1 = %f", s.HasPosAt[1])
	}
	if !almostEq(s.HasPosAt[2], 1) {
		t.Errorf("HasPos@2 = %f", s.HasPosAt[2])
	}
	if !almostEq(s.MAPAt[1], 0.5) {
		t.Errorf("MAP@1 = %f", s.MAPAt[1])
	}
}

func TestEvaluateRankingEmpty(t *testing.T) {
	s := EvaluateRanking(nil, nil, []int{1})
	if s.Queries != 0 || s.MRR != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// Property: metrics are bounded in [0,1] and MRR >= MAP@1 never... actually
// MRR >= AP@1 does not hold in general; check bounds and monotonicity of
// HasPositive in k.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(rankSeed []uint8, truthMask uint8) bool {
		ranked := make([]string, 0, len(rankSeed))
		seen := map[string]bool{}
		for _, r := range rankSeed {
			id := string(rune('a' + r%16))
			if !seen[id] {
				seen[id] = true
				ranked = append(ranked, id)
			}
		}
		truth := map[string]bool{}
		for i := 0; i < 8; i++ {
			if truthMask&(1<<i) != 0 {
				truth[string(rune('a'+i))] = true
			}
		}
		if len(truth) == 0 {
			return true
		}
		rr := ReciprocalRank(ranked, truth)
		if rr < 0 || rr > 1 {
			return false
		}
		prev := 0.0
		for k := 1; k <= 20; k++ {
			h := HasPositiveAt(ranked, truth, k)
			ap := AveragePrecisionAt(ranked, truth, k)
			if h < prev { // HasPositive is monotone in k
				return false
			}
			if ap < 0 || ap > 1 || h < 0 || h > 1 {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeScore(t *testing.T) {
	// Example from the paper: r1: a->b->c and r2: a->b->c->d.
	// After stripping two levels: r1' = [c], r2' = [c, d]; score = 1/2.
	r1 := []string{"a", "b", "c"}
	r2 := []string{"a", "b", "c", "d"}
	if s := NodeScore(r1, r2); !almostEq(s, 0.5) {
		t.Errorf("NodeScore = %f, want 0.5", s)
	}
	// Identical paths score 1.
	if s := NodeScore(r2, r2); !almostEq(s, 1) {
		t.Errorf("identical = %f", s)
	}
	// Paths of length <= 2 strip to nothing: score 0.
	if s := NodeScore([]string{"a", "b"}, []string{"a", "b"}); s != 0 {
		t.Errorf("short paths = %f", s)
	}
	// Disjoint tails.
	if s := NodeScore([]string{"a", "b", "x"}, []string{"a", "b", "y"}); s != 0 {
		t.Errorf("disjoint = %f", s)
	}
}

func TestNodeScoreSymmetric(t *testing.T) {
	p1 := []string{"r", "l1", "c", "d"}
	p2 := []string{"r", "l1", "c", "e", "f"}
	if !almostEq(NodeScore(p1, p2), NodeScore(p2, p1)) {
		t.Error("NodeScore must be symmetric")
	}
}

func TestExactPRF(t *testing.T) {
	pred := [][]string{{"r", "a", "b"}, {"r", "a", "x"}}
	truth := [][]string{{"r", "a", "b"}}
	got := ExactPRF(pred, truth)
	if !almostEq(got.P, 0.5) || !almostEq(got.R, 1) {
		t.Errorf("Exact = %+v", got)
	}
	wantF := 2 * 0.5 * 1 / 1.5
	if !almostEq(got.F, wantF) {
		t.Errorf("F = %f, want %f", got.F, wantF)
	}
	if got := ExactPRF(nil, truth); got != (PRF{}) {
		t.Errorf("empty pred = %+v", got)
	}
	if got := ExactPRF(pred, nil); got != (PRF{}) {
		t.Errorf("empty truth = %+v", got)
	}
}

func TestExactPRFDuplicatePredictions(t *testing.T) {
	pred := [][]string{{"r", "a", "b"}, {"r", "a", "b"}}
	truth := [][]string{{"r", "a", "b"}}
	got := ExactPRF(pred, truth)
	// Duplicate predictions only count once in the numerator.
	if !almostEq(got.P, 0.5) || !almostEq(got.R, 1) {
		t.Errorf("dup pred = %+v", got)
	}
}

func TestNodePRF(t *testing.T) {
	pred := [][]string{{"r", "l", "c", "d"}}
	truth := [][]string{{"r", "l", "c"}}
	got := NodePRF(pred, truth)
	// stripped pred = [c d], truth = [c]; score = 1/2 both ways.
	if !almostEq(got.P, 0.5) || !almostEq(got.R, 0.5) {
		t.Errorf("Node = %+v", got)
	}
}

func TestEvaluateTaxonomy(t *testing.T) {
	pred := map[string][][]string{
		"d1": {{"r", "l", "c"}},
		"d2": {{"r", "l", "c", "x"}},
		"d3": {{"r", "l", "zzz"}}, // no truth, skipped
	}
	truth := map[string][][]string{
		"d1": {{"r", "l", "c"}},
		"d2": {{"r", "l", "c", "x"}},
	}
	s := EvaluateTaxonomy(pred, truth)
	if s.Documents != 2 {
		t.Fatalf("Documents = %d", s.Documents)
	}
	if !almostEq(s.Exact.P, 1) || !almostEq(s.Exact.R, 1) || !almostEq(s.Exact.F, 1) {
		t.Errorf("Exact = %+v", s.Exact)
	}
	if !almostEq(s.Node.P, 1) {
		t.Errorf("Node = %+v", s.Node)
	}
}

func TestEvaluateTaxonomyEmpty(t *testing.T) {
	s := EvaluateTaxonomy(nil, nil)
	if s.Documents != 0 {
		t.Errorf("empty = %+v", s)
	}
}

func TestPathKey(t *testing.T) {
	a := PathKey([]string{"x", "y"})
	b := PathKey([]string{"x", "y"})
	c := PathKey([]string{"xy"})
	if a != b {
		t.Error("equal paths must share keys")
	}
	if a == c {
		t.Error("different paths must differ")
	}
}
