package expand

import (
	"testing"

	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// exampleGraph reproduces the paper's Figure 4 core: tuples t1/t2, review
// p1, and shared data nodes.
func exampleGraph(t *testing.T) (*graph.Graph, map[string]graph.NodeID) {
	t.Helper()
	g := graph.New(16)
	ids := map[string]graph.NodeID{}
	add := func(label string, kind graph.NodeKind, side graph.Side) {
		if kind == graph.Data {
			ids[label] = g.EnsureData(label)
			return
		}
		id, err := g.AddMeta(label, kind, side)
		if err != nil {
			t.Fatal(err)
		}
		ids[label] = id
	}
	add("t1", graph.Tuple, graph.First)
	add("t2", graph.Tuple, graph.First)
	add("p1", graph.Snippet, graph.Second)
	add("tarantino", graph.Data, graph.NoSide)
	add("willis", graph.Data, graph.NoSide)
	add("comedy", graph.Data, graph.NoSide)
	add("shyamalan", graph.Data, graph.NoSide)
	g.AddEdge(ids["t1"], ids["shyamalan"])
	g.AddEdge(ids["t1"], ids["willis"])
	g.AddEdge(ids["t2"], ids["tarantino"])
	g.AddEdge(ids["t2"], ids["willis"])
	g.AddEdge(ids["p1"], ids["willis"])
	g.AddEdge(ids["p1"], ids["comedy"])
	return g, ids
}

func TestExpandAddsKBPaths(t *testing.T) {
	g, ids := exampleGraph(t)
	res := kb.NewMemory()
	// The DBpedia triple from §III-A: style(Tarantino, Comedy).
	res.Add("tarantino", "style", "comedy")

	before := g.ShortestPath(ids["p1"], ids["t2"])
	st := Expand(g, res, Options{})
	after := g.ShortestPath(ids["p1"], ids["t2"])

	if st.EdgesAdded != 1 {
		t.Errorf("EdgesAdded = %d, want 1", st.EdgesAdded)
	}
	if st.NodesAdded != 0 {
		t.Errorf("NodesAdded = %d, want 0 (both endpoints exist)", st.NodesAdded)
	}
	if !g.HasEdge(ids["tarantino"], ids["comedy"]) {
		t.Error("expansion edge tarantino-comedy missing")
	}
	// p1 -> comedy -> tarantino -> t2 is a new path; shortest stays 2 hops
	// via willis but path count between them increased.
	if len(after) > len(before) {
		t.Errorf("shortest path grew: %d -> %d", len(before), len(after))
	}
	paths := g.AllShortestPaths(ids["p1"], ids["t2"], 16)
	if len(paths) < 1 {
		t.Error("no shortest paths after expansion")
	}
}

func TestExpandRemovesSinks(t *testing.T) {
	g, _ := exampleGraph(t)
	res := kb.NewMemory()
	// spouse(Shyamalan, Bhavna Vaswani): Vaswani connects only to Shyamalan
	// and must be pruned (Algorithm 2 cleaning, the paper's own example).
	res.Add("shyamalan", "spouse", "bhavna vaswani")
	res.Add("tarantino", "style", "comedy")

	st := Expand(g, res, Options{})
	if _, ok := g.DataNode("bhavna vaswani"); ok {
		t.Error("sink node bhavna vaswani not pruned")
	}
	if st.SinksRemoved == 0 {
		t.Error("SinksRemoved = 0, want >= 1")
	}
}

func TestExpandKeepSinks(t *testing.T) {
	g, _ := exampleGraph(t)
	res := kb.NewMemory()
	res.Add("shyamalan", "spouse", "bhavna vaswani")
	st := Expand(g, res, Options{KeepSinks: true})
	if _, ok := g.DataNode("bhavna vaswani"); !ok {
		t.Error("KeepSinks must retain the new node")
	}
	if st.SinksRemoved != 0 {
		t.Errorf("SinksRemoved = %d with KeepSinks", st.SinksRemoved)
	}
}

func TestExpandRelationCap(t *testing.T) {
	g, _ := exampleGraph(t)
	res := kb.NewMemory()
	for i := 0; i < 20; i++ {
		res.Add("tarantino", "rel", "obj"+string(rune('a'+i)))
	}
	st := Expand(g, res, Options{MaxRelationsPerNode: 5, KeepSinks: true})
	if st.EdgesAdded != 5 {
		t.Errorf("EdgesAdded = %d, want 5 (capped)", st.EdgesAdded)
	}
}

func TestExpandNilResource(t *testing.T) {
	g, _ := exampleGraph(t)
	n, e := g.NumNodes(), g.NumEdges()
	st := Expand(g, nil, Options{})
	if st != (Stats{}) || g.NumNodes() != n || g.NumEdges() != e {
		t.Error("nil resource must be a no-op")
	}
}

func TestExpandDoesNotExpandExternalNodes(t *testing.T) {
	g, _ := exampleGraph(t)
	res := kb.NewMemory()
	res.Add("tarantino", "knows", "jackson")
	res.Add("jackson", "knows", "travolta") // must NOT be fetched
	Expand(g, res, Options{KeepSinks: true})
	if _, ok := g.DataNode("travolta"); ok {
		t.Error("expansion recursed into newly added nodes")
	}
}

func TestRemoveSinksCascades(t *testing.T) {
	g := graph.New(8)
	m, _ := g.AddMeta("m", graph.Snippet, graph.First)
	a := g.EnsureData("a")
	b := g.EnsureExternal("b")
	c := g.EnsureExternal("c")
	// m - a - b - c with b, c external: pruning c exposes b; a is a data
	// node and survives in onlyExternal mode.
	g.AddEdge(m, a)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	removed := RemoveSinks(g, true)
	if removed != 2 {
		t.Errorf("removed = %d, want 2 (external cascade)", removed)
	}
	if g.Removed(a) {
		t.Error("data node pruned in onlyExternal mode")
	}
	if g.Removed(m) {
		t.Error("metadata node must never be pruned")
	}
}

func TestRemoveSinksAllKinds(t *testing.T) {
	g := graph.New(8)
	m, _ := g.AddMeta("m", graph.Snippet, graph.First)
	a := g.EnsureData("a")
	b := g.EnsureData("b")
	g.AddEdge(m, a)
	g.AddEdge(a, b)
	// Without the external restriction the data chain is pruned entirely.
	if removed := RemoveSinks(g, false); removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if g.Removed(m) {
		t.Error("metadata node must never be pruned")
	}
}

func TestRemoveSinksKeepsCore(t *testing.T) {
	g := graph.New(8)
	m1, _ := g.AddMeta("m1", graph.Tuple, graph.First)
	m2, _ := g.AddMeta("m2", graph.Snippet, graph.Second)
	d := g.EnsureData("shared")
	g.AddEdge(m1, d)
	g.AddEdge(m2, d)
	if got := RemoveSinks(g, false); got != 0 {
		t.Errorf("removed = %d, want 0 (degree-2 data node)", got)
	}
}
