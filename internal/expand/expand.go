// Package expand implements the graph expansion of the paper's §III-A
// (Algorithm 2): every data node is looked up in an external resource, the
// fetched relations become new nodes and edges, and degree-1 sink nodes are
// pruned afterwards. Expansion adds meaningful paths between metadata nodes
// (e.g. p1 → Comedy → Tarantino → t2 in the running example) at the cost of
// graph growth, which compression later counteracts.
package expand

import (
	"sort"

	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// Options tunes expansion.
type Options struct {
	// MaxRelationsPerNode caps how many relations are consumed per data
	// node; 0 means unlimited. Real KBs return hundreds of relations for
	// popular entities (>800 for Quentin Tarantino in DBpedia, §III-B);
	// the cap models the fetch budget.
	MaxRelationsPerNode int
	// KeepSinks disables the degree-1 cleanup of Algorithm 2 lines 13-17.
	KeepSinks bool
}

// Stats reports what expansion did.
type Stats struct {
	// NodesAdded counts external nodes created.
	NodesAdded int
	// EdgesAdded counts edges created from KB relations.
	EdgesAdded int
	// SinksRemoved counts degree-<=1 nodes pruned in the cleaning pass.
	SinksRemoved int
}

// Expand grows g in place with relations from resource and returns stats.
// Following Algorithm 2, only non-metadata nodes are expanded, and the
// cleaning pass removes (non-metadata) nodes left with degree <= 1.
func Expand(g *graph.Graph, resource kb.Resource, opts Options) Stats {
	var st Stats
	if resource == nil {
		return st
	}
	// Snapshot data nodes first: expansion must not recursively expand the
	// nodes it adds (Algorithm 2 iterates the input graph's nodes).
	seeds := g.DataNodes()
	for _, id := range seeds {
		rels := resource.Related(g.Label(id))
		if len(rels) == 0 {
			continue
		}
		if opts.MaxRelationsPerNode > 0 && len(rels) > opts.MaxRelationsPerNode {
			rels = rels[:opts.MaxRelationsPerNode]
		}
		for _, r := range rels {
			before := g.NumNodes()
			obj := g.EnsureExternal(r.Object)
			if g.NumNodes() > before {
				st.NodesAdded++
			}
			if !g.HasEdge(id, obj) {
				g.AddEdge(id, obj)
				st.EdgesAdded++
			}
		}
	}
	if !opts.KeepSinks {
		// Only expansion-added nodes are candidates: the paper's cleaning
		// example removes a fetched entity (Bhavna Vaswani), and Table VIII
		// shows expanded graphs strictly larger than the originals — so the
		// corpus-derived nodes must survive the cleaning pass.
		st.SinksRemoved = RemoveSinks(g, true)
	}
	return st
}

// ExpandNodes grows g with resource relations fetched for the given
// nodes only — the frozen-graph counterpart of Expand used by the
// delta-ingest path. Edges are wired through PatchEdges, so a frozen
// graph is patched in its overlay, never thawed. The Algorithm 2
// cleaning pass is applied locally and before materialization: a
// relation object that would enter the graph as a brand-new node with
// degree <= 1 is simply never created (its count lands in
// Stats.SinksRemoved), while relations to already-existing nodes always
// materialize. New nodes connect only to the (pre-existing) seed nodes,
// so the peel cannot cascade. Unlike the full pass, existing External
// nodes whose degree the delta changes are not re-examined — that
// global cleanup belongs to a Compact rebuild.
//
// It returns the nodes it created and the existing nodes that gained
// edges, both in deterministic order, so the caller can extend the walk
// seed set.
func ExpandNodes(g *graph.Graph, resource kb.Resource, nodes []graph.NodeID, opts Options) (added, touched []graph.NodeID, st Stats) {
	if resource == nil {
		return nil, nil, st
	}
	// Plan first: group relation objects by label, separating objects that
	// already exist in the graph from prospective new nodes, deduplicating
	// (seed, object) pairs like PatchEdges would.
	type plan struct {
		seeds []graph.NodeID
		seen  map[graph.NodeID]struct{}
	}
	newObjs := map[string]*plan{}
	var newOrder []string // first-seen order: node IDs must be deterministic
	var existingPairs [][2]graph.NodeID
	existingTouched := map[graph.NodeID]struct{}{}
	for _, id := range nodes {
		if k := g.Kind(id); k != graph.Data && k != graph.External {
			continue
		}
		if g.Removed(id) {
			continue
		}
		rels := resource.Related(g.Label(id))
		if len(rels) == 0 {
			continue
		}
		if opts.MaxRelationsPerNode > 0 && len(rels) > opts.MaxRelationsPerNode {
			rels = rels[:opts.MaxRelationsPerNode]
		}
		for _, r := range rels {
			if obj, ok := g.DataNode(r.Object); ok {
				if obj != id && !g.HasEdge(id, obj) {
					existingPairs = append(existingPairs, [2]graph.NodeID{id, obj})
					existingTouched[obj] = struct{}{}
				}
				continue
			}
			p := newObjs[r.Object]
			if p == nil {
				p = &plan{seen: map[graph.NodeID]struct{}{}}
				newObjs[r.Object] = p
				newOrder = append(newOrder, r.Object)
			}
			if _, dup := p.seen[id]; !dup {
				p.seen[id] = struct{}{}
				p.seeds = append(p.seeds, id)
			}
		}
	}

	var pairs [][2]graph.NodeID
	for _, label := range newOrder {
		p := newObjs[label]
		if !opts.KeepSinks && len(p.seeds) <= 1 {
			st.SinksRemoved++
			continue
		}
		obj := g.EnsureExternal(label)
		added = append(added, obj)
		st.NodesAdded++
		for _, seed := range p.seeds {
			pairs = append(pairs, [2]graph.NodeID{seed, obj})
		}
	}
	pairs = append(pairs, existingPairs...)
	st.EdgesAdded = len(pairs)
	g.PatchEdges(pairs)

	touched = make([]graph.NodeID, 0, len(existingTouched))
	for id := range existingTouched {
		touched = append(touched, id)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return added, touched, st
}

// RemoveSinks deletes nodes connected to at most one other node ("nodes
// that are not connected to more than one other node", Algorithm 2).
// Metadata nodes are never removed; with onlyExternal, only nodes added by
// expansion are candidates. Removal cascades: pruning a sink can expose a
// new one. It returns the number of removed nodes.
//
// The cascade is computed by degree peeling over a scratch degree array —
// the doomed set of iterated sink removal is order-independent, like a
// k-core peel — and the whole set is then deleted with one batch
// graph.RemoveNodes call, so each surviving adjacency list is compacted
// once instead of being linearly scanned per removed edge.
func RemoveSinks(g *graph.Graph, onlyExternal bool) int {
	candidate := func(id graph.NodeID) bool {
		if g.Kind(id).IsMetadata() {
			return false
		}
		if onlyExternal && g.Kind(id) != graph.External {
			return false
		}
		return true
	}
	deg := make([]int, g.Cap())
	queue := make([]graph.NodeID, 0, 64)
	g.Nodes(func(id graph.NodeID) {
		deg[id] = g.Degree(id)
		if candidate(id) && deg[id] <= 1 {
			queue = append(queue, id)
		}
	})
	doomed := make([]bool, g.Cap())
	var victims []graph.NodeID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if doomed[id] || g.Removed(id) || !candidate(id) || deg[id] > 1 {
			continue
		}
		doomed[id] = true
		victims = append(victims, id)
		for _, nb := range g.Neighbors(id) {
			if doomed[nb] || g.Removed(nb) {
				continue
			}
			deg[nb]--
			if candidate(nb) && deg[nb] <= 1 {
				queue = append(queue, nb)
			}
		}
	}
	g.RemoveNodes(victims)
	return len(victims)
}
