// Package expand implements the graph expansion of the paper's §III-A
// (Algorithm 2): every data node is looked up in an external resource, the
// fetched relations become new nodes and edges, and degree-1 sink nodes are
// pruned afterwards. Expansion adds meaningful paths between metadata nodes
// (e.g. p1 → Comedy → Tarantino → t2 in the running example) at the cost of
// graph growth, which compression later counteracts.
package expand

import (
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// Options tunes expansion.
type Options struct {
	// MaxRelationsPerNode caps how many relations are consumed per data
	// node; 0 means unlimited. Real KBs return hundreds of relations for
	// popular entities (>800 for Quentin Tarantino in DBpedia, §III-B);
	// the cap models the fetch budget.
	MaxRelationsPerNode int
	// KeepSinks disables the degree-1 cleanup of Algorithm 2 lines 13-17.
	KeepSinks bool
}

// Stats reports what expansion did.
type Stats struct {
	// NodesAdded counts external nodes created.
	NodesAdded int
	// EdgesAdded counts edges created from KB relations.
	EdgesAdded int
	// SinksRemoved counts degree-<=1 nodes pruned in the cleaning pass.
	SinksRemoved int
}

// Expand grows g in place with relations from resource and returns stats.
// Following Algorithm 2, only non-metadata nodes are expanded, and the
// cleaning pass removes (non-metadata) nodes left with degree <= 1.
func Expand(g *graph.Graph, resource kb.Resource, opts Options) Stats {
	var st Stats
	if resource == nil {
		return st
	}
	// Snapshot data nodes first: expansion must not recursively expand the
	// nodes it adds (Algorithm 2 iterates the input graph's nodes).
	seeds := g.DataNodes()
	for _, id := range seeds {
		rels := resource.Related(g.Label(id))
		if len(rels) == 0 {
			continue
		}
		if opts.MaxRelationsPerNode > 0 && len(rels) > opts.MaxRelationsPerNode {
			rels = rels[:opts.MaxRelationsPerNode]
		}
		for _, r := range rels {
			before := g.NumNodes()
			obj := g.EnsureExternal(r.Object)
			if g.NumNodes() > before {
				st.NodesAdded++
			}
			if !g.HasEdge(id, obj) {
				g.AddEdge(id, obj)
				st.EdgesAdded++
			}
		}
	}
	if !opts.KeepSinks {
		// Only expansion-added nodes are candidates: the paper's cleaning
		// example removes a fetched entity (Bhavna Vaswani), and Table VIII
		// shows expanded graphs strictly larger than the originals — so the
		// corpus-derived nodes must survive the cleaning pass.
		st.SinksRemoved = RemoveSinks(g, true)
	}
	return st
}

// RemoveSinks deletes nodes connected to at most one other node ("nodes
// that are not connected to more than one other node", Algorithm 2).
// Metadata nodes are never removed; with onlyExternal, only nodes added by
// expansion are candidates. Removal cascades: pruning a sink can expose a
// new one. It returns the number of removed nodes.
//
// The cascade is computed by degree peeling over a scratch degree array —
// the doomed set of iterated sink removal is order-independent, like a
// k-core peel — and the whole set is then deleted with one batch
// graph.RemoveNodes call, so each surviving adjacency list is compacted
// once instead of being linearly scanned per removed edge.
func RemoveSinks(g *graph.Graph, onlyExternal bool) int {
	candidate := func(id graph.NodeID) bool {
		if g.Kind(id).IsMetadata() {
			return false
		}
		if onlyExternal && g.Kind(id) != graph.External {
			return false
		}
		return true
	}
	deg := make([]int, g.Cap())
	queue := make([]graph.NodeID, 0, 64)
	g.Nodes(func(id graph.NodeID) {
		deg[id] = g.Degree(id)
		if candidate(id) && deg[id] <= 1 {
			queue = append(queue, id)
		}
	})
	doomed := make([]bool, g.Cap())
	var victims []graph.NodeID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if doomed[id] || g.Removed(id) || !candidate(id) || deg[id] > 1 {
			continue
		}
		doomed[id] = true
		victims = append(victims, id)
		for _, nb := range g.Neighbors(id) {
			if doomed[nb] || g.Removed(nb) {
				continue
			}
			deg[nb]--
			if candidate(nb) && deg[nb] <= 1 {
				queue = append(queue, nb)
			}
		}
	}
	g.RemoveNodes(victims)
	return len(victims)
}
