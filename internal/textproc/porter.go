package textproc

// Stem applies the classic Porter (1980) stemming algorithm to a single
// lower-case word. It is used to merge different surface forms of a word
// into one data node (paper §II-C: "Stemming merges different forms of a
// word", e.g. "planning" with "Plan").
//
// This is a faithful self-contained implementation of the five-step Porter
// algorithm; no external library is involved.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
	// j marks the end of the stem when matching suffixes.
	j int
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// letters other than aeiou, and 'y' preceded by a consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences in b[0..j].
// [C](VC)^m[V] per the original paper.
func (s *stemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant where the final
// consonant is not w, x or y. Used to restore a trailing 'e' (hop -> hope).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends checks whether the word ends with suffix and, if so, sets j to the
// character before the suffix.
func (s *stemmer) ends(suffix string) bool {
	n := len(suffix)
	if n > len(s.b) {
		return false
	}
	if string(s.b[len(s.b)-n:]) != suffix {
		return false
	}
	s.j = len(s.b) - n - 1
	return true
}

// setTo replaces the current suffix (after ends) with rep.
func (s *stemmer) setTo(rep string) {
	s.b = append(s.b[:s.j+1], rep...)
}

// replace applies setTo when m() > 0.
func (s *stemmer) replace(rep string) {
	if s.m() > 0 {
		s.setTo(rep)
	}
}

// step1a handles plurals: sses->ss, ies->i, ss->ss, s->"".
func (s *stemmer) step1a() {
	if len(s.b) == 0 || s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.b = s.b[:len(s.b)-2]
	case s.ends("ies"):
		s.setTo("i")
	case len(s.b) >= 2 && s.b[len(s.b)-2] != 's':
		s.b = s.b[:len(s.b)-1]
	}
}

// step1b handles -ed and -ing, restoring e where needed.
func (s *stemmer) step1b() {
	if s.ends("eed") {
		if s.m() > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.b = s.b[:s.j+1]
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleConsonant(len(s.b) - 1):
			last := s.b[len(s.b)-1]
			if last != 'l' && last != 's' && last != 'z' {
				s.b = s.b[:len(s.b)-1]
			}
		default:
			s.j = len(s.b) - 1
			if s.m() == 1 && s.cvc(len(s.b)-1) {
				s.b = append(s.b, 'e')
			}
		}
	}
}

// step1c turns terminal y to i when there is a vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Suffixes = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, e := range step2Suffixes {
		if s.ends(e.suf) {
			s.replace(e.rep)
			return
		}
	}
}

var step3Suffixes = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, e := range step3Suffixes {
		if s.ends(e.suf) {
			s.replace(e.rep)
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemmer) step4() {
	if s.ends("ion") {
		if s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') && s.m() > 1 {
			s.b = s.b[:s.j+1]
		}
		return
	}
	for _, suf := range step4Suffixes {
		if s.ends(suf) {
			if s.m() > 1 {
				s.b = s.b[:s.j+1]
			}
			return
		}
	}
}

// step5a removes a terminal e when m > 1, or when m == 1 and the stem does
// not end cvc.
func (s *stemmer) step5a() {
	if len(s.b) == 0 || s.b[len(s.b)-1] != 'e' {
		return
	}
	s.j = len(s.b) - 2
	m := s.m()
	if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
		s.b = s.b[:len(s.b)-1]
	}
}

// step5b maps -ll to -l when m > 1.
func (s *stemmer) step5b() {
	n := len(s.b)
	if n >= 2 && s.b[n-1] == 'l' && s.b[n-2] == 'l' {
		s.j = n - 1
		if s.m() > 1 {
			s.b = s.b[:n-1]
		}
	}
}
