package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The Sixth Sense", []string{"the", "sixth", "sense"}},
		{"Hello, world!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"PG-13 rating", []string{"pg", "13", "rating"}},
		{"3.14 is pi", []string{"3.14", "is", "pi"}},
		{"ends with dot 42.", []string{"ends", "with", "dot", "42"}},
		{"COVID-19 cases: 1,234", []string{"covid", "19", "cases", "1", "234"}},
		{"Quentin Tarantino's movie", []string{"quentin", "tarantino", "s", "movie"}},
		{"naïve café", []string{"naïve", "café"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MiXeD CaSe TEXT") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lower-cased", tok)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"42", true}, {"3.14", true}, {"-7", true}, {"", false},
		{"abc", false}, {"4a", false}, {"1.2.3", false}, {"1999", true},
	}
	for _, c := range cases {
		if got := IsNumeric(c.in); got != c.want {
			t.Errorf("IsNumeric(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPreprocessorTokens(t *testing.T) {
	p := DefaultPreprocessor()
	got := p.Tokens("The planning of the audit")
	// "the", "of" are stop words; "planning" stems to "plan".
	want := []string{"plan", "audit"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestPreprocessorKeepsNumbers(t *testing.T) {
	p := DefaultPreprocessor()
	got := p.Tokens("cases 1234 in 2021")
	want := []string{"case", "1234", "2021"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestPreprocessorNoStemNoStop(t *testing.T) {
	p := Preprocessor{MaxNGram: 1}
	got := p.Tokens("The planning processes")
	want := []string{"the", "planning", "processes"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestPreprocessorCustomStopwords(t *testing.T) {
	p := Preprocessor{RemoveStopwords: true, Stopwords: map[string]struct{}{"movie": {}}}
	got := p.Tokens("the movie club")
	want := []string{"the", "club"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"the", "sixth", "sense"}
	got := NGrams(toks, 3)
	want := []string{
		"the", "sixth", "sense",
		"the sixth", "sixth sense",
		"the sixth sense",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
}

func TestNGramsDedup(t *testing.T) {
	got := NGrams([]string{"a", "a", "a"}, 2)
	want := []string{"a", "a a"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
}

func TestNGramsEmptyAndBounds(t *testing.T) {
	if got := NGrams(nil, 3); got != nil {
		t.Errorf("NGrams(nil) = %v, want nil", got)
	}
	if got := NGrams([]string{"x"}, 0); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("NGrams maxN=0 = %v, want [x]", got)
	}
}

func TestTermsEndToEnd(t *testing.T) {
	p := DefaultPreprocessor()
	terms := p.Terms("The Sixth Sense")
	// stop word "the" removed; "sixth" -> "sixth", "sense" -> "sens".
	found := map[string]bool{}
	for _, tm := range terms {
		found[tm] = true
	}
	if !found["sixth"] || !found["sens"] || !found["sixth sens"] {
		t.Errorf("Terms = %v, missing expected n-grams", terms)
	}
}

func TestStemKnownWords(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"planning":     "plan",
		"plans":        "plan",
		"auditing":     "audit",
		"matches":      "match",
		"matching":     "match",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemMergesWordForms(t *testing.T) {
	// The paper's motivating case: "planning" and "plans" must merge.
	if Stem("planning") != Stem("plans") {
		t.Errorf("planning/plans stem to %q/%q", Stem("planning"), Stem("plans"))
	}
	if Stem("auditing") != Stem("audited") {
		t.Errorf("auditing/audited stem to %q/%q", Stem("auditing"), Stem("audited"))
	}
}

func TestStemIdempotentProperty(t *testing.T) {
	// Stemming an already-stemmed common English word is stable for the
	// overwhelming majority of vocabulary; verify on a fixed dictionary
	// rather than random strings (Porter is not idempotent on arbitrary
	// byte soup, but must be on our stemmed corpus vocabulary).
	words := []string{
		"plan", "audit", "match", "movi", "director", "review", "actor",
		"countri", "claim", "tax", "concept", "hierarchi", "graph", "node",
		"walk", "embed", "vector", "tabl", "tupl", "attribut",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Error("expected the/and to be stop words")
	}
	if IsStopword("movie") || IsStopword("audit") {
		t.Error("movie/audit must not be stop words")
	}
	m := DefaultStopwords()
	m["movie"] = struct{}{}
	if IsStopword("movie") {
		t.Error("DefaultStopwords must return a copy")
	}
}

func TestTokenizePropertyNoEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNGramsPropertyCount(t *testing.T) {
	// For k distinct tokens and maxN <= k, the number of n-grams is
	// sum_{n=1..maxN} (k-n+1) when all grams are distinct.
	f := func(k, maxN uint8) bool {
		kk := int(k%10) + 1
		nn := int(maxN%uint8(kk)) + 1
		toks := make([]string, kk)
		for i := range toks {
			toks[i] = string(rune('a' + i))
		}
		want := 0
		for n := 1; n <= nn; n++ {
			want += kk - n + 1
		}
		return len(NGrams(toks, nn)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
