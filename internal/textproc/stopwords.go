package textproc

import "strings"

// defaultStopwords is a standard English stop-word list (the union of the
// classic SMART/Snowball short lists), applied during pre-processing so that
// function words never become data nodes (paper §II).
var defaultStopwords = func() map[string]struct{} {
	words := `a about above after again against all am an and any are aren
as at be because been before being below between both but by can cannot
could couldn did didn do does doesn doing don down during each few for from
further had hadn has hasn have haven having he her here hers herself him
himself his how i if in into is isn it its itself just ll me mightn more
most mustn my myself needn no nor not now o of off on once only or other
our ours ourselves out over own re s same shan she should shouldn so some
such t than that the their theirs them themselves then there these they
this those through to too under until up ve very was wasn we were weren
what when where which while who whom why will with won would wouldn you
your yours yourself yourselves`
	m := make(map[string]struct{}, 160)
	for _, w := range strings.Fields(words) {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopword reports whether the lower-case token is in the default
// stop-word list.
func IsStopword(token string) bool {
	_, ok := defaultStopwords[token]
	return ok
}

// DefaultStopwords returns a copy of the built-in stop-word set so callers
// can extend it without mutating package state.
func DefaultStopwords() map[string]struct{} {
	m := make(map[string]struct{}, len(defaultStopwords))
	for w := range defaultStopwords {
		m[w] = struct{}{}
	}
	return m
}
