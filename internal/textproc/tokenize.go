// Package textproc implements the text pre-processing used during graph
// creation (paper §II): tokenization, stop-word removal, stemming, numeric
// detection and n-gram term generation.
//
// The paper calls the processed values "terms"; a term is composed of one or
// more tokens (e.g. "The Sixth Sense" is a term with three tokens). All
// functions in this package are deterministic and allocation-conscious:
// they are on the hot path of graph construction.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits raw text into lower-cased word tokens. Separators are any
// non-letter/digit runes, so punctuation never survives into tokens.
// Purely numeric tokens are preserved (they feed numeric bucketing later).
func Tokenize(text string) []string {
	if text == "" {
		return nil
	}
	tokens := make([]string, 0, 8)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '.' && b.Len() > 0 && isDigitRun(b.String()):
			// Keep decimal points inside numbers ("3.14") so bucketing sees
			// the full value. A trailing '.' is trimmed below.
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	if len(tokens) == 0 {
		return nil
	}
	for i, t := range tokens {
		tokens[i] = strings.TrimRight(t, ".")
	}
	return tokens
}

func isDigitRun(s string) bool {
	seenDot := false
	for _, r := range s {
		if r == '.' {
			if seenDot {
				return false
			}
			seenDot = true
			continue
		}
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return s != ""
}

// IsNumeric reports whether the token parses as an integer or decimal
// number. Such tokens become candidates for equal-width bucketing (§II-C).
func IsNumeric(token string) bool {
	return isDigitRun(strings.TrimPrefix(token, "-"))
}

// Preprocessor bundles the pre-processing configuration applied to every
// cell value and text snippet before graph creation.
type Preprocessor struct {
	// RemoveStopwords drops tokens found in the stop-word list.
	RemoveStopwords bool
	// Stem applies the Porter stemmer to every non-numeric token, which is
	// how the paper merges different forms of a word ("planning"/"Plan").
	Stem bool
	// MaxNGram is the largest term size generated per text (paper default 3,
	// profiled on Wikipedia titles: 99% have at most three tokens).
	MaxNGram int
	// Stopwords overrides the default stop-word set when non-nil.
	Stopwords map[string]struct{}
}

// DefaultPreprocessor returns the configuration used throughout the paper's
// experiments: stop-word removal, stemming, and up to 3-token terms.
func DefaultPreprocessor() Preprocessor {
	return Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 3}
}

// Tokens tokenizes text and applies stop-word removal and stemming.
// The returned slice preserves the original token order so that n-gram
// generation can run on top of it.
func (p Preprocessor) Tokens(text string) []string {
	raw := Tokenize(text)
	out := raw[:0]
	stop := p.Stopwords
	if stop == nil {
		stop = defaultStopwords
	}
	for _, t := range raw {
		if t == "" {
			continue
		}
		if p.RemoveStopwords {
			if _, ok := stop[t]; ok {
				continue
			}
		}
		if p.Stem && !IsNumeric(t) {
			t = Stem(t)
		}
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Terms generates all n-gram terms (n = 1..MaxNGram) over the processed
// tokens of text, in first-occurrence order. Multi-token terms are joined
// with a single space, e.g. "six sens" for the movie title after stemming.
func (p Preprocessor) Terms(text string) []string {
	toks := p.Tokens(text)
	return NGrams(toks, p.maxN())
}

func (p Preprocessor) maxN() int {
	if p.MaxNGram <= 0 {
		return 1
	}
	return p.MaxNGram
}

// NGrams returns every contiguous n-gram for n = 1..maxN over tokens,
// deduplicated while preserving first-occurrence order.
func NGrams(tokens []string, maxN int) []string {
	if len(tokens) == 0 {
		return nil
	}
	if maxN < 1 {
		maxN = 1
	}
	seen := make(map[string]struct{}, len(tokens)*maxN)
	out := make([]string, 0, len(tokens)*maxN)
	for n := 1; n <= maxN; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			t := strings.Join(tokens[i:i+n], " ")
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}
