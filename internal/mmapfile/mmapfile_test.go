package mmapfile

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"unsafe"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenRoundTrip(t *testing.T) {
	want := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 1024)
	m, err := Open(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Data(), want) {
		t.Fatalf("mapped contents differ: got %d bytes", m.Len())
	}
	if uintptr(unsafe.Pointer(&m.Data()[0]))%8 != 0 {
		t.Fatalf("mapping base not 8-byte aligned")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestAlignedBuffer(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 4096} {
		buf := AlignedBuffer(n)
		if len(buf) != n {
			t.Fatalf("AlignedBuffer(%d) returned %d bytes", n, len(buf))
		}
		if n > 0 && uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
			t.Fatalf("AlignedBuffer(%d) not 8-byte aligned", n)
		}
	}
}

// TestMappingIsReadOnly proves the mapping really is PROT_READ: a
// child process that writes through Data() must die on a memory fault
// rather than silently mutating the page (which would eventually write
// back to the shared file under MAP_SHARED). This is the invariant
// copy-on-write promotion in internal/match relies on.
func TestMappingIsReadOnly(t *testing.T) {
	if os.Getenv("MMAPFILE_WRITE_CRASH") != "" {
		m, err := Open(os.Getenv("MMAPFILE_CRASH_PATH"))
		if err != nil {
			os.Exit(3)
		}
		if !m.Mapped() {
			os.Exit(4) // heap fallback: nothing to assert
		}
		m.Data()[0] = 0xff // must fault
		os.Exit(0)
	}
	if runtime.GOOS == "windows" {
		t.Skip("no mmap on this platform")
	}
	path := writeTemp(t, bytes.Repeat([]byte{1}, 4096))
	// Probe in-process first: skip cleanly if mmap fell back to heap.
	probe, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped := probe.Mapped()
	probe.Close()
	if !mapped {
		t.Skip("mmap unavailable; heap fallback in use")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestMappingIsReadOnly$")
	cmd.Env = append(os.Environ(), "MMAPFILE_WRITE_CRASH=1", "MMAPFILE_CRASH_PATH="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child wrote through a PROT_READ mapping without faulting:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() >= 0 && ee.ExitCode() != 2 {
		// Signal deaths surface as ExitCode()==-1 on unix (or 2 for Go's
		// own fault translation); a plain non-zero exit means the child
		// failed before the write, which is not the assertion we want.
		t.Fatalf("child exited with code %d, want memory-fault death:\n%s", ee.ExitCode(), out)
	}
}
