//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

// openPlatform maps path with PROT_READ/MAP_SHARED. Empty files and
// mmap failures (exotic filesystems, resource limits) fall back to the
// aligned heap read so callers never have to care which one they got.
func openPlatform(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if int64(int(size)) != size {
		return nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		buf, rerr := readAligned(path)
		if rerr != nil {
			return nil, rerr
		}
		return &Mapping{data: buf}, nil
	}
	return &Mapping{data: data, mapped: true}, nil
}

func (m *Mapping) closePlatform() error {
	if !m.mapped {
		return nil
	}
	return syscall.Munmap(m.data)
}
