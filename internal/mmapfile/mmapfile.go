// Package mmapfile memory-maps files read-only for zero-copy snapshot
// loading. On unix platforms Open returns a PROT_READ, MAP_SHARED
// mapping, so every process serving the same snapshot file shares one
// set of physical pages and cold start does not scale with file size.
// On other platforms (or when mmap fails) Open falls back to reading
// the file into an 8-byte-aligned heap buffer, so callers can rely on
// the returned bytes being safely castable to []float32/[]uint64 views
// either way.
//
// The mapping is strictly read-only: any caller that wants to mutate
// data backed by it must first copy the affected region to the heap
// (copy-on-write promotion, see match.NewIndexArenaBorrowed). Writing
// through the mapping faults the process, which is asserted by a
// subprocess test.
package mmapfile

import (
	"io"
	"os"
	"unsafe"
)

// Mapping is the read-only byte view of a file, backed either by a
// PROT_READ mmap (Mapped reports true) or by an aligned heap buffer.
type Mapping struct {
	data   []byte
	mapped bool
}

// Open maps path read-only. The returned Mapping stays valid until
// Close; callers that hand out sub-slices of Data must not call Close
// while those views are live.
func Open(path string) (*Mapping, error) {
	return openPlatform(path)
}

// Data returns the mapped (or heap-loaded) file contents. The slice is
// read-only when Mapped reports true; writing to it faults.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether Data is a PROT_READ memory mapping rather
// than a heap copy.
func (m *Mapping) Mapped() bool { return m.mapped }

// Len returns the file length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Close releases the mapping. After Close every view previously
// derived from Data is invalid; the zero-copy snapshot loader
// therefore keeps the Mapping pinned for the model's lifetime and only
// calls Close on open-error paths before any view escapes.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	err := m.closePlatform()
	m.data = nil
	return err
}

// readAligned loads a whole file into an 8-byte-aligned heap buffer.
// Alignment matters because the snapshot reader casts section payloads
// to []float32/[]uint64 without copying.
func readAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	buf := AlignedBuffer(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AlignedBuffer allocates n bytes whose base address is 8-byte
// aligned, suitable for in-place casts to wider element types.
func AlignedBuffer(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
