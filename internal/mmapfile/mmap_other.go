//go:build !unix

package mmapfile

// openPlatform reads the file into an aligned heap buffer on
// platforms without the unix mmap syscalls.
func openPlatform(path string) (*Mapping, error) {
	buf, err := readAligned(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: buf}, nil
}

func (m *Mapping) closePlatform() error { return nil }
