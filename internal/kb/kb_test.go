package kb

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMemoryAddAndRelated(t *testing.T) {
	m := NewMemory()
	m.Add("Tarantino", "style", "Comedy")
	m.Add("Willis", "starring", "Pulp Fiction")

	rels := m.Related("tarantino")
	if len(rels) != 1 || rels[0].Object != "comedy" || rels[0].Predicate != "style" {
		t.Errorf("Related(tarantino) = %v", rels)
	}
	// Relations are symmetric.
	back := m.Related("comedy")
	if len(back) != 1 || back[0].Object != "tarantino" {
		t.Errorf("Related(comedy) = %v", back)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestMemoryNormalization(t *testing.T) {
	m := NewMemory()
	m.Add("  Bruce Willis ", "acted", "Die Hard")
	if len(m.Related("BRUCE WILLIS")) != 1 {
		t.Error("lookup must be case/space insensitive")
	}
}

func TestMemoryRejectsDegenerate(t *testing.T) {
	m := NewMemory()
	m.Add("", "p", "x")
	m.Add("x", "p", "")
	m.Add("same", "p", "same")
	if m.Len() != 0 {
		t.Errorf("degenerate triples stored: %d", m.Len())
	}
}

func TestMemoryZeroValue(t *testing.T) {
	var m Memory
	m.Add("a", "p", "b")
	if len(m.Related("a")) != 1 {
		t.Error("zero-value Memory must work after Add")
	}
	var nilM *Memory
	if nilM.Related("a") != nil || nilM.Len() != 0 || nilM.Subjects() != nil {
		t.Error("nil Memory must be empty")
	}
}

func TestMemorySubjects(t *testing.T) {
	m := NewMemory()
	m.Add("b", "p", "c")
	m.Add("a", "p", "c")
	subj := m.Subjects()
	if !sort.StringsAreSorted(subj) {
		t.Errorf("Subjects not sorted: %v", subj)
	}
	if len(subj) != 3 {
		t.Errorf("Subjects = %v, want a b c", subj)
	}
}

func TestUnion(t *testing.T) {
	m1, m2 := NewMemory(), NewMemory()
	m1.Add("x", "p", "y")
	m2.Add("x", "q", "z")
	u := Union{m1, nil, m2, Empty{}}
	rels := u.Related("x")
	if len(rels) != 2 {
		t.Errorf("Union.Related = %v, want 2 relations", rels)
	}
}

func TestEmpty(t *testing.T) {
	if (Empty{}).Related("anything") != nil {
		t.Error("Empty must return nil")
	}
}

func TestLexiconCanonical(t *testing.T) {
	l := NewLexicon()
	l.AddSynonyms("bruce willis", "b willis", "willis bruce")
	l.AddSynonyms("plan do check act", "pdca")

	if c, ok := l.Canonical("b willis"); !ok || c != "bruce willis" {
		t.Errorf("Canonical(b willis) = %q %v", c, ok)
	}
	if c, ok := l.Canonical("PDCA"); !ok || c != "plan do check act" {
		t.Errorf("Canonical(PDCA) = %q %v", c, ok)
	}
	if c, ok := l.Canonical("bruce willis"); !ok || c != "bruce willis" {
		t.Errorf("canonical self-map = %q %v", c, ok)
	}
	if _, ok := l.Canonical("unknown"); ok {
		t.Error("unknown term must not resolve")
	}
}

func TestLexiconMerge(t *testing.T) {
	l := NewLexicon()
	l.AddSynonyms("bruce willis", "b willis")
	got := l.Merge([]string{"b willis", "tarantino", "bruce willis"})
	if len(got) != 1 || got["b willis"] != "bruce willis" {
		t.Errorf("Merge = %v", got)
	}
	var nilL *Lexicon
	if nilL.Merge([]string{"x"}) != nil || nilL.Len() != 0 {
		t.Error("nil lexicon must be inert")
	}
	if c, ok := nilL.Canonical("x"); ok || c != "x" {
		t.Error("nil lexicon Canonical must be identity")
	}
}

func TestLexiconSynonymPairs(t *testing.T) {
	l := NewLexicon()
	l.AddSynonyms("a", "b", "c")
	pairs := l.SynonymPairs()
	if len(pairs) != 2 {
		t.Errorf("SynonymPairs = %v, want 2", pairs)
	}
	for _, p := range pairs {
		if p[1] != "a" {
			t.Errorf("pair %v must map to canonical a", p)
		}
	}
	var nilL *Lexicon
	if nilL.SynonymPairs() != nil {
		t.Error("nil lexicon pairs must be nil")
	}
}

// Property: Add is symmetric — after Add(s,p,o), o is reachable from s and
// s from o, regardless of input strings.
func TestMemorySymmetryProperty(t *testing.T) {
	f := func(s, p, o string) bool {
		m := NewMemory()
		m.Add(s, p, o)
		ns, no := normalize(s), normalize(o)
		if ns == "" || no == "" || ns == no {
			return m.Len() == 0
		}
		fwd, bwd := false, false
		for _, r := range m.Related(s) {
			if r.Object == no {
				fwd = true
			}
		}
		for _, r := range m.Related(o) {
			if r.Object == ns {
				bwd = true
			}
		}
		return fwd && bwd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
