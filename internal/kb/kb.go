// Package kb provides the external-resource substrate used by graph
// expansion (paper §III-A) and node merging (§II-C). The paper plugs in
// ConceptNet, DBpedia, Wikidata and WordNet; those are network services and
// multi-gigabyte dumps, so this reproduction ships an in-memory knowledge
// base with the same shape — subject–predicate–object triples queried by
// node label — which the dataset generators populate from the same
// synthetic world that produced the corpora. The substitution preserves the
// property the paper relies on: the KB holds true relations about corpus
// entities, only some of which shorten paths between matching documents.
package kb

import (
	"sort"
	"strings"
)

// Relation is one edge fetched from an external resource: the related
// object and the predicate naming the relationship (e.g. "starring",
// "spouse", "relatedTo").
type Relation struct {
	Object    string
	Predicate string
}

// Resource is anything that can enumerate relations for a term, the only
// capability Algorithm 2 needs.
type Resource interface {
	// Related returns the relations of term, or nil when unknown.
	Related(term string) []Relation
}

// Memory is an in-memory triple store keyed by lower-case subject.
// The zero value is empty and usable.
type Memory struct {
	triples map[string][]Relation
	nTriple int
}

// NewMemory returns an empty knowledge base.
func NewMemory() *Memory {
	return &Memory{triples: make(map[string][]Relation)}
}

// Add inserts the triple predicate(subject, object) in both directions:
// expansion treats relations as undirected edges, so a lookup of either
// endpoint returns the other.
func (m *Memory) Add(subject, predicate, object string) {
	if m.triples == nil {
		m.triples = make(map[string][]Relation)
	}
	s := normalize(subject)
	o := normalize(object)
	if s == "" || o == "" || s == o {
		return
	}
	m.triples[s] = append(m.triples[s], Relation{Object: o, Predicate: predicate})
	m.triples[o] = append(m.triples[o], Relation{Object: s, Predicate: predicate})
	m.nTriple++
}

// Related implements Resource.
func (m *Memory) Related(term string) []Relation {
	if m == nil || m.triples == nil {
		return nil
	}
	return m.triples[normalize(term)]
}

// Len returns the number of stored triples.
func (m *Memory) Len() int {
	if m == nil {
		return 0
	}
	return m.nTriple
}

// Subjects returns the sorted set of all subjects/objects known to the KB.
func (m *Memory) Subjects() []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m.triples))
	for s := range m.triples {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Union exposes several resources as one; lookups concatenate the results
// in order. It lets callers combine e.g. an entity KB with a concept net.
type Union []Resource

// Related implements Resource.
func (u Union) Related(term string) []Relation {
	var out []Relation
	for _, r := range u {
		if r == nil {
			continue
		}
		out = append(out, r.Related(term)...)
	}
	return out
}

// Empty is a Resource with no relations, useful as a default.
type Empty struct{}

// Related implements Resource.
func (Empty) Related(string) []Relation { return nil }
