package kb

// Lexicon is the WordNet-style resource used for merging synonym, acronym
// and typo data nodes (§II-C). It maps surface forms to a canonical term;
// unlike Memory, it expresses equivalence rather than relatedness.
type Lexicon struct {
	canon map[string]string
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{canon: make(map[string]string)}
}

// AddSynonyms declares that all variants share the canonical form. The
// canonical term maps to itself so group membership is queryable.
func (l *Lexicon) AddSynonyms(canonical string, variants ...string) {
	c := normalize(canonical)
	if c == "" {
		return
	}
	l.canon[c] = c
	for _, v := range variants {
		nv := normalize(v)
		if nv != "" && nv != c {
			l.canon[nv] = c
		}
	}
}

// Canonical resolves a term; ok is false when the lexicon has no entry.
func (l *Lexicon) Canonical(term string) (string, bool) {
	if l == nil {
		return term, false
	}
	c, ok := l.canon[normalize(term)]
	if !ok {
		return term, false
	}
	return c, true
}

// Len returns the number of lexicon entries (including canonical self-maps).
func (l *Lexicon) Len() int {
	if l == nil {
		return 0
	}
	return len(l.canon)
}

// Merge implements graph.Merger: every known variant maps to its canonical
// form. Identity mappings are omitted.
func (l *Lexicon) Merge(terms []string) map[string]string {
	if l == nil || len(l.canon) == 0 {
		return nil
	}
	out := make(map[string]string)
	for _, t := range terms {
		if c, ok := l.canon[normalize(t)]; ok && c != t {
			out[t] = c
		}
	}
	return out
}

// SynonymPairs enumerates (variant, canonical) pairs, used to calibrate the
// γ threshold of embedding-based merging the way the paper calibrates on
// 17K WordNet synonym pairs (§II-C).
func (l *Lexicon) SynonymPairs() [][2]string {
	if l == nil {
		return nil
	}
	var out [][2]string
	for v, c := range l.canon {
		if v != c {
			out = append(out, [2]string{v, c})
		}
	}
	return out
}
