package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAppendPreservesEntries checks the append-only contract: appending
// to a fresh file, then appending again, yields both entries in order.
func TestAppendPreservesEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if n, err := Append(path, Entry{Label: "a", GOOS: "linux", Benchmarks: []Result{{Name: "X", NsPerOp: 1}}}); err != nil || n != 1 {
		t.Fatalf("first append: n=%d err=%v", n, err)
	}
	if n, err := Append(path, Entry{Label: "b", GOOS: "linux", Benchmarks: []Result{{Name: "Y", NsPerOp: 2}}}); err != nil || n != 2 {
		t.Fatalf("second append: n=%d err=%v", n, err)
	}
	traj, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 2 || traj.Entries[0].Label != "a" || traj.Entries[1].Label != "b" {
		t.Fatalf("unexpected trajectory: %+v", traj)
	}
}

// TestReadMissingFile checks a missing path starts an empty trajectory.
func TestReadMissingFile(t *testing.T) {
	traj, err := Read(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(traj.Entries) != 0 {
		t.Fatalf("missing file: traj=%+v err=%v", traj, err)
	}
}

// TestReadLegacyReport checks the pre-trajectory single-report format is
// migrated into the first entry.
func TestReadLegacyReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := `{"goos":"linux","goarch":"amd64","benchtime":"2x","benchmarks":[{"name":"Old","iterations":3,"ns_per_op":42,"bytes_per_op":0,"allocs_per_op":0}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	traj, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 1 || traj.Entries[0].Benchmarks[0].Name != "Old" {
		t.Fatalf("legacy migration failed: %+v", traj)
	}
}

// TestReadGarbage checks unparseable content errors instead of silently
// truncating the trajectory.
func TestReadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("expected error reading garbage file")
	}
}

// TestLatencyFieldsOmittedWhenZero checks plain benchmark results keep
// the pre-PR6 wire shape: no p50_ns/p99_ns/qps keys unless set.
func TestLatencyFieldsOmittedWhenZero(t *testing.T) {
	plain, err := json.Marshal(Result{Name: "X", NsPerOp: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"p50_ns", "p95_ns", "p99_ns", "qps", "concurrency"} {
		if strings.Contains(string(plain), key) {
			t.Fatalf("zero-valued %q serialized in %s", key, plain)
		}
	}
	loaded, err := json.Marshal(Result{Name: "Y", P50Ns: 100, P95Ns: 200, P99Ns: 300, QPS: 4, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"p50_ns", "p95_ns", "p99_ns", "qps", "concurrency"} {
		if !strings.Contains(string(loaded), key) {
			t.Fatalf("set %q missing from %s", key, loaded)
		}
	}
}
