// Package benchfmt defines the shared schema of the BENCH_build.json
// performance trajectory and the append-preserving file handling both
// writers use: tools/benchjson (go test -bench results) and cmd/tdload
// (serving-latency measurements). One schema, one file — build-side
// ns/op and serve-side p50/p99/QPS land in the same append-only
// trajectory, comparable across PRs.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one measurement: a benchmark's ns/op row, or one tdload
// concurrency level. The latency and throughput fields are zero (and
// omitted from JSON) for plain go-test benchmarks.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// P50Ns / P95Ns / P99Ns are request-latency percentiles and QPS the
	// achieved throughput of a load-harness run at Concurrency parallel
	// clients (cmd/tdload).
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P95Ns       float64 `json:"p95_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	QPS         float64 `json:"qps,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
	// RecallAt10 is the approximate index's recall@10 against the exact
	// flat ranking over the benchmark fixture, reported by the ANN TopK
	// benchmarks (IVF, SQ8, HNSW) via b.ReportMetric. Zero (omitted) for
	// exact indexes and non-retrieval benchmarks.
	RecallAt10 float64 `json:"recall_at_10,omitempty"`
}

// Entry is one trajectory point: the results of one run plus enough
// metadata to compare runs across machines and PRs.
type Entry struct {
	Label      string   `json:"label,omitempty"`
	RecordedAt string   `json:"recorded_at,omitempty"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	BenchTime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// Trajectory is the BENCH_build.json payload: entries in append order,
// oldest first.
type Trajectory struct {
	Entries []Entry `json:"entries"`
}

// Read loads an existing trajectory file. A missing file starts an
// empty trajectory; a legacy single-entry payload (one bare report
// object, the pre-trajectory format) becomes the first entry.
func Read(path string) (Trajectory, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Trajectory{}, nil
	}
	if err != nil {
		return Trajectory{}, err
	}
	var traj Trajectory
	if err := json.Unmarshal(raw, &traj); err == nil && traj.Entries != nil {
		return traj, nil
	}
	var legacy Entry
	if err := json.Unmarshal(raw, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		return Trajectory{Entries: []Entry{legacy}}, nil
	}
	return Trajectory{}, fmt.Errorf("cannot parse %s as a trajectory or legacy report", path)
}

// Append reads the trajectory at path, appends the entry and writes the
// file back, returning the new entry count. Existing entries are always
// preserved.
func Append(path string, entry Entry) (int, error) {
	traj, err := Read(path)
	if err != nil {
		return 0, err
	}
	traj.Entries = append(traj.Entries, entry)
	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return 0, err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return 0, err
	}
	return len(traj.Entries), nil
}
