package walk

import (
	"fmt"
	"testing"

	"github.com/tdmatch/tdmatch/internal/graph"
)

func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.EnsureData(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(ids[i], ids[(i+1)%n])
	}
	return g
}

func TestGenerateCounts(t *testing.T) {
	g := ringGraph(t, 10)
	walks := Generate(g, Config{NumWalks: 3, Length: 7, Seed: 1})
	if len(walks) != 30 {
		t.Fatalf("walks = %d, want 30", len(walks))
	}
	for _, w := range walks {
		if len(w) != 7 {
			t.Errorf("walk length = %d, want 7", len(w))
		}
	}
}

func TestGenerateWalksFollowEdges(t *testing.T) {
	g := ringGraph(t, 8)
	walks := Generate(g, Config{NumWalks: 2, Length: 10, Seed: 2})
	for _, w := range walks {
		for i := 0; i+1 < len(w); i++ {
			if !g.HasEdge(w[i], w[i+1]) {
				t.Fatalf("walk step %d-%d is not an edge", w[i], w[i+1])
			}
		}
	}
}

func TestGenerateStartsEveryNode(t *testing.T) {
	g := ringGraph(t, 5)
	walks := Generate(g, Config{NumWalks: 2, Length: 3, Seed: 3})
	startCount := map[graph.NodeID]int{}
	for _, w := range walks {
		startCount[w[0]]++
	}
	g.Nodes(func(id graph.NodeID) {
		if startCount[id] != 2 {
			t.Errorf("node %d started %d walks, want 2", id, startCount[id])
		}
	})
}

func TestGenerateIsolatedNode(t *testing.T) {
	g := graph.New(2)
	g.EnsureData("alone")
	walks := Generate(g, Config{NumWalks: 2, Length: 5, Seed: 4})
	if len(walks) != 2 {
		t.Fatalf("walks = %d", len(walks))
	}
	for _, w := range walks {
		if len(w) != 1 {
			t.Errorf("isolated walk = %v, want single node", w)
		}
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	g := ringGraph(t, 20)
	w1 := Generate(g, Config{NumWalks: 4, Length: 9, Seed: 7, Workers: 1})
	w8 := Generate(g, Config{NumWalks: 4, Length: 9, Seed: 7, Workers: 8})
	if len(w1) != len(w8) {
		t.Fatalf("walk counts differ: %d vs %d", len(w1), len(w8))
	}
	for i := range w1 {
		if len(w1[i]) != len(w8[i]) {
			t.Fatalf("walk %d lengths differ", i)
		}
		for j := range w1[i] {
			if w1[i][j] != w8[i][j] {
				t.Fatalf("walk %d diverges at step %d with different worker counts", i, j)
			}
		}
	}
}

func TestGenerateSeedChangesWalks(t *testing.T) {
	g := ringGraph(t, 20)
	a := Generate(g, Config{NumWalks: 2, Length: 9, Seed: 1})
	b := Generate(g, Config{NumWalks: 2, Length: 9, Seed: 2})
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical walks")
	}
}

func TestGenerateSkipsRemovedNodes(t *testing.T) {
	g := ringGraph(t, 6)
	var victim graph.NodeID
	g.Nodes(func(id graph.NodeID) { victim = id })
	g.RemoveNode(victim)
	walks := Generate(g, Config{NumWalks: 1, Length: 5, Seed: 5})
	if len(walks) != 5 {
		t.Fatalf("walks = %d, want 5 (one per live node)", len(walks))
	}
	for _, w := range walks {
		for _, n := range w {
			if n == victim {
				t.Fatal("walk visited removed node")
			}
		}
	}
}

// referenceWalks regenerates the packed walks with an independent
// straight-line walker over the same per-(node, walk) RNG streams,
// reading neighbors through the generic accessor on the unfrozen graph.
func referenceWalks(g *graph.Graph, cfg Config) [][]graph.NodeID {
	cfg = cfg.withDefaults()
	var out [][]graph.NodeID
	g.Nodes(func(id graph.NodeID) {
		for k := 0; k < cfg.NumWalks; k++ {
			rng := newRand(uint64(cfg.Seed), uint64(id), uint64(k))
			walk := []graph.NodeID{id}
			cur := id
			for len(walk) < cfg.Length {
				nbs := g.Neighbors(cur)
				if len(nbs) == 0 {
					break
				}
				cur = nbs[rng.intn(len(nbs))]
				walk = append(walk, cur)
			}
			out = append(out, walk)
		}
	})
	return out
}

// TestGeneratePackedMatchesReference cross-checks the packed fast path
// (fixed-size slots, CSR fast loop, compaction) against the independent
// reference walker, on both a frozen and an unfrozen graph, including a
// dead-end node that forces real compaction.
func TestGeneratePackedMatchesReference(t *testing.T) {
	g := ringGraph(t, 12)
	g.EnsureData("island") // isolated: single-token walks force compaction
	cfg := Config{NumWalks: 3, Length: 9, Seed: 42}
	want := referenceWalks(g, cfg)

	for _, frozen := range []bool{false, true} {
		if frozen {
			g.Freeze()
		}
		seqs := GeneratePacked(g, cfg)
		if seqs.Len() != len(want) {
			t.Fatalf("frozen=%v: %d packed walks, want %d", frozen, seqs.Len(), len(want))
		}
		if len(seqs.Offsets) != seqs.Len()+1 || seqs.Offsets[0] != 0 {
			t.Fatalf("frozen=%v: malformed offsets", frozen)
		}
		if int(seqs.Offsets[seqs.Len()]) != len(seqs.Tokens) {
			t.Fatalf("frozen=%v: offsets do not cover the token stream", frozen)
		}
		for i, w := range want {
			s := seqs.Seq(i)
			if len(s) != len(w) {
				t.Fatalf("frozen=%v: walk %d length %d, want %d", frozen, i, len(s), len(w))
			}
			for j := range w {
				if graph.NodeID(s[j]) != w[j] {
					t.Fatalf("frozen=%v: walk %d diverges at step %d", frozen, i, j)
				}
			}
		}
	}
}

// TestGenerateMatchesPacked pins the adapter contract: the materialized
// [][]NodeID walks are exactly the packed sequences.
func TestGenerateMatchesPacked(t *testing.T) {
	g := ringGraph(t, 10)
	cfg := Config{NumWalks: 2, Length: 6, Seed: 5}
	walks := Generate(g, cfg)
	seqs := GeneratePacked(g, cfg)
	if len(walks) != seqs.Len() {
		t.Fatalf("walk counts differ: %d vs %d", len(walks), seqs.Len())
	}
	for i, w := range walks {
		s := seqs.Seq(i)
		for j := range w {
			if int32(w[j]) != s[j] {
				t.Fatalf("walk %d diverges at %d", i, j)
			}
		}
	}
}

// TestGeneratePackedEmptyGraph covers the zero-node corner.
func TestGeneratePackedEmptyGraph(t *testing.T) {
	g := graph.New(0)
	seqs := GeneratePacked(g, Config{NumWalks: 2, Length: 4, Seed: 1})
	if seqs.Len() != 0 || seqs.NumTokens() != 0 {
		t.Fatalf("empty graph produced %d walks, %d tokens", seqs.Len(), seqs.NumTokens())
	}
}

func TestToSequences(t *testing.T) {
	walks := [][]graph.NodeID{{1, 2, 3}, {4}}
	seqs := ToSequences(walks)
	if len(seqs) != 2 || seqs[0][2] != 3 || seqs[1][0] != 4 {
		t.Errorf("ToSequences = %v", seqs)
	}
}

func TestToSentences(t *testing.T) {
	g := graph.New(3)
	a := g.EnsureData("alpha")
	b := g.EnsureData("beta")
	g.AddEdge(a, b)
	sents := ToSentences(g, [][]graph.NodeID{{a, b, a}})
	if len(sents) != 1 || sents[0][0] != "alpha" || sents[0][1] != "beta" {
		t.Errorf("ToSentences = %v", sents)
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.NumWalks <= 0 || c.Length <= 0 || c.Workers <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
