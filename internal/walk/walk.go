// Package walk implements the random-walk corpus generation of Algorithm 4
// (paper §IV-A): n walks of length l start from every live graph node; the
// node sequence of each walk becomes one training sentence for Word2Vec.
// Related metadata nodes co-occur in walks more often, so their embeddings
// end up closer.
package walk

import (
	"runtime"
	"sync"

	"github.com/tdmatch/tdmatch/internal/graph"
)

// Config parametrizes walk generation. The paper's default is 100 walks of
// length 30 per node; the ablations of Figures 6 and 7 sweep both.
type Config struct {
	// NumWalks is the number of walks started per node (default 10).
	NumWalks int
	// Length is the number of nodes visited per walk (default 30).
	Length int
	// Seed makes walk generation reproducible; each (node, walk) pair gets
	// an independent RNG stream so results do not depend on scheduling.
	Seed int64
	// Workers bounds the parallelism (default GOMAXPROCS).
	Workers int
	// KindWeights biases the next-step choice by the neighbor's node kind,
	// implementing the typed-walk extension the paper lists as future work
	// (§VII). A weight of 0 removes that kind from walks entirely; kinds
	// absent from the map default to weight 1. Nil keeps the paper's
	// uniform random walk.
	KindWeights map[graph.NodeKind]float64
}

func (c Config) withDefaults() Config {
	if c.NumWalks <= 0 {
		c.NumWalks = 10
	}
	if c.Length <= 0 {
		c.Length = 30
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Generate produces walks as sequences of NodeIDs, NumWalks per live node.
// A walk starts at its seed node and repeatedly steps to a uniformly random
// neighbor; it ends early at isolated nodes. Nodes with no neighbors yield
// single-node walks (their metadata must still receive an embedding).
func Generate(g *graph.Graph, cfg Config) [][]graph.NodeID {
	cfg = cfg.withDefaults()
	var starts []graph.NodeID
	g.Nodes(func(id graph.NodeID) { starts = append(starts, id) })

	out := make([][]graph.NodeID, len(starts)*cfg.NumWalks)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(starts) && len(starts) > 0 {
		workers = len(starts)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for si := worker; si < len(starts); si += workers {
				node := starts[si]
				for k := 0; k < cfg.NumWalks; k++ {
					rng := newRand(uint64(cfg.Seed), uint64(node), uint64(k))
					if cfg.KindWeights == nil {
						out[si*cfg.NumWalks+k] = walkFrom(g, node, cfg.Length, rng)
					} else {
						out[si*cfg.NumWalks+k] = weightedWalkFrom(g, node, cfg.Length, cfg.KindWeights, rng)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}

func walkFrom(g *graph.Graph, start graph.NodeID, length int, rng *splitRand) []graph.NodeID {
	walk := make([]graph.NodeID, 0, length)
	walk = append(walk, start)
	cur := start
	for len(walk) < length {
		nbs := g.Neighbors(cur)
		if len(nbs) == 0 {
			break
		}
		cur = nbs[rng.intn(len(nbs))]
		walk = append(walk, cur)
	}
	return walk
}

// weightedWalkFrom steps to neighbors with probability proportional to the
// weight of their node kind. When all neighbors carry zero weight the walk
// ends (a typed dead end).
func weightedWalkFrom(g *graph.Graph, start graph.NodeID, length int, weights map[graph.NodeKind]float64, rng *splitRand) []graph.NodeID {
	weightOf := func(id graph.NodeID) float64 {
		if w, ok := weights[g.Kind(id)]; ok {
			return w
		}
		return 1
	}
	walk := make([]graph.NodeID, 0, length)
	walk = append(walk, start)
	cur := start
	for len(walk) < length {
		nbs := g.Neighbors(cur)
		if len(nbs) == 0 {
			break
		}
		var total float64
		for _, nb := range nbs {
			total += weightOf(nb)
		}
		if total <= 0 {
			break
		}
		// Quantized inverse-CDF sampling keeps the deterministic integer
		// RNG stream (one draw per step, like the uniform walk).
		r := float64(rng.intn(1<<20)) / float64(1<<20) * total
		next := nbs[len(nbs)-1]
		for _, nb := range nbs {
			r -= weightOf(nb)
			if r < 0 {
				next = nb
				break
			}
		}
		cur = next
		walk = append(walk, cur)
	}
	return walk
}

// splitRand is a splitmix64-seeded xorshift dedicated to one walk.
type splitRand struct{ state uint64 }

func newRand(seed, node, walk uint64) *splitRand {
	x := seed ^ (node * 0x9e3779b97f4a7c15) ^ (walk * 0xbf58476d1ce4e5b9)
	// splitmix64 finalizer to decorrelate nearby (node, walk) pairs.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return &splitRand{state: x}
}

func (r *splitRand) intn(n int) int {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return int(x % uint64(n))
}

// ToSequences converts walks of NodeIDs into int32 token sequences for the
// embedder. Node IDs are used directly as token IDs; vocabSize is the
// graph's ID capacity (g.Cap()).
func ToSequences(walks [][]graph.NodeID) [][]int32 {
	out := make([][]int32, len(walks))
	for i, w := range walks {
		s := make([]int32, len(w))
		for j, n := range w {
			s[j] = int32(n)
		}
		out[i] = s
	}
	return out
}

// ToSentences renders walks as node-label sentences, matching the paper's
// description of deriving textual sentences from walks. Used by tooling and
// debugging; the pipeline trains on ToSequences output directly.
func ToSentences(g *graph.Graph, walks [][]graph.NodeID) [][]string {
	out := make([][]string, len(walks))
	for i, w := range walks {
		s := make([]string, len(w))
		for j, n := range w {
			s[j] = g.Label(n)
		}
		out[i] = s
	}
	return out
}
