// Package walk implements the random-walk corpus generation of Algorithm 4
// (paper §IV-A): n walks of length l start from every live graph node; the
// node sequence of each walk becomes one training sentence for Word2Vec.
// Related metadata nodes co-occur in walks more often, so their embeddings
// end up closer.
//
// The hot path is GeneratePacked, which writes walks directly into the
// packed embed.Sequences training format (one contiguous token buffer, no
// per-walk allocations); Generate is the [][]NodeID adapter over it.
package walk

import (
	"fmt"
	"math/bits"
	"runtime"

	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/graph"
)

// Config parametrizes walk generation. The paper's default is 100 walks of
// length 30 per node; the ablations of Figures 6 and 7 sweep both.
type Config struct {
	// NumWalks is the number of walks started per node (default 10).
	NumWalks int
	// Length is the number of nodes visited per walk (default 30).
	Length int
	// Seed makes walk generation reproducible; each (node, walk) pair gets
	// an independent RNG stream so results do not depend on scheduling.
	Seed int64
	// Workers bounds the parallelism (default GOMAXPROCS).
	Workers int
	// KindWeights biases the next-step choice by the neighbor's node kind,
	// implementing the typed-walk extension the paper lists as future work
	// (§VII). A weight of 0 removes that kind from walks entirely; kinds
	// absent from the map default to weight 1. Nil keeps the paper's
	// uniform random walk.
	KindWeights map[graph.NodeKind]float64
}

func (c Config) withDefaults() Config {
	if c.NumWalks <= 0 {
		c.NumWalks = 10
	}
	if c.Length <= 0 {
		c.Length = 30
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// GeneratePacked produces NumWalks walks per live node directly in the
// packed training format the embedder consumes: walk tokens are graph
// NodeIDs, written into one contiguous buffer with one fixed-size slot
// per walk and compacted into embed.Sequences at the end. A walk starts
// at its seed node and repeatedly steps to a uniformly random neighbor
// (kind-weighted when Config.KindWeights is set); it ends early at
// isolated nodes, which still yield single-token walks (their metadata
// must receive an embedding). Freeze the graph first so neighbor lists
// are read from sequential CSR memory.
func GeneratePacked(g *graph.Graph, cfg Config) embed.Sequences {
	var starts []graph.NodeID
	g.Nodes(func(id graph.NodeID) { starts = append(starts, id) })
	return GeneratePackedFrom(g, starts, cfg)
}

// GeneratePackedFrom is GeneratePacked restricted to an explicit start
// set: NumWalks walks are seeded from each given node only. This is the
// delta-training entry point — after an incremental ingest, walks are
// seeded from the new and affected nodes alone, so warm-start
// fine-tuning reads a corpus proportional to the delta's neighborhood
// instead of the whole graph. Each (node, walk) pair keeps its own RNG
// stream, so a restricted run generates exactly the walks a full run
// would for those nodes.
func GeneratePackedFrom(g *graph.Graph, starts []graph.NodeID, cfg Config) embed.Sequences {
	cfg = cfg.withDefaults()
	total := len(starts) * cfg.NumWalks
	if total == 0 {
		return embed.Sequences{Offsets: []int32{0}}
	}

	length := cfg.Length
	if int64(total)*int64(length) > int64(1)<<31-1 {
		// The packed format indexes tokens with int32 offsets; fail loudly
		// instead of silently wrapping (shard the corpus or lower
		// NumWalks/Length well before this point).
		panic(fmt.Sprintf("walk: %d walks of length %d overflow the packed int32 token index", total, length))
	}
	tokens := make([]int32, total*length)
	lens := make([]int32, total)
	parallelFor(len(starts), cfg.Workers, func(si int) {
		node := starts[si]
		for k := 0; k < cfg.NumWalks; k++ {
			rng := newRand(uint64(cfg.Seed), uint64(node), uint64(k))
			wi := si*cfg.NumWalks + k
			slot := tokens[wi*length : (wi+1)*length]
			if cfg.KindWeights == nil {
				lens[wi] = int32(walkInto(g, node, slot, rng))
			} else {
				lens[wi] = int32(weightedWalkInto(g, node, slot, cfg.KindWeights, rng))
			}
		}
	})

	// Compact the fixed-size slots left into one dense token stream. On a
	// connected graph every walk fills its slot, making the offsets
	// uniform — detect that and skip the sweep; otherwise copy handles
	// the overlapping leftward moves.
	offsets := make([]int32, total+1)
	allFull := true
	for _, n := range lens {
		if int(n) != length {
			allFull = false
			break
		}
	}
	if allFull {
		for i := 1; i <= total; i++ {
			offsets[i] = int32(i * length)
		}
		return embed.Sequences{Tokens: tokens, Offsets: offsets}
	}
	w := 0
	for i := 0; i < total; i++ {
		n := int(lens[i])
		copy(tokens[w:w+n], tokens[i*length:i*length+n])
		w += n
		offsets[i+1] = int32(w)
	}
	if w < len(tokens)/2 {
		// Heavily truncated walks (many dead ends): re-slice into a
		// right-sized buffer instead of pinning the oversized slots
		// array through the whole training run.
		tokens = append([]int32(nil), tokens[:w]...)
	}
	return embed.Sequences{Tokens: tokens[:w], Offsets: offsets}
}

// Generate produces walks as sequences of NodeIDs, NumWalks per live node
// — the materialized adapter over GeneratePacked for callers and tests
// that want slice-of-slice walks. Walk content is identical to the packed
// form: each (node, walk) pair has its own RNG stream, independent of
// scheduling and of the output format.
func Generate(g *graph.Graph, cfg Config) [][]graph.NodeID {
	seqs := GeneratePacked(g, cfg)
	out := make([][]graph.NodeID, seqs.Len())
	for i := range out {
		s := seqs.Seq(i)
		walk := make([]graph.NodeID, len(s))
		for j, t := range s {
			walk[j] = graph.NodeID(t)
		}
		out[i] = walk
	}
	return out
}

// walkInto fills buf with a uniform random walk from start and returns the
// number of tokens written (>= 1; less than len(buf) only at dead ends).
// On a frozen graph the step loop indexes the CSR arrays directly.
func walkInto(g *graph.Graph, start graph.NodeID, buf []int32, rng *splitRand) int {
	buf[0] = int32(start)
	n := 1
	cur := start
	if off, flat := g.CSR(); off != nil {
		for n < len(buf) {
			lo, hi := off[cur], off[cur+1]
			if lo == hi {
				break
			}
			cur = flat[int(lo)+rng.intn(int(hi-lo))]
			buf[n] = int32(cur)
			n++
		}
		return n
	}
	// Patched-frozen (or thawed) graph: step over the sealed row and the
	// patch-overlay tail without materializing a merged neighbor slice.
	// Indexing base-then-overlay matches the merged CSR layout, so the
	// same RNG stream picks the same neighbors before and after a
	// MergeOverlay compaction.
	for n < len(buf) {
		base, ov := g.NeighborParts(cur)
		d := len(base) + len(ov)
		if d == 0 {
			break
		}
		if i := rng.intn(d); i < len(base) {
			cur = base[i]
		} else {
			cur = ov[i-len(base)]
		}
		buf[n] = int32(cur)
		n++
	}
	return n
}

// weightedWalkInto fills buf with a walk stepping to neighbors with
// probability proportional to the weight of their node kind, returning
// the number of tokens written. When all neighbors carry zero weight the
// walk ends (a typed dead end).
func weightedWalkInto(g *graph.Graph, start graph.NodeID, buf []int32, weights map[graph.NodeKind]float64, rng *splitRand) int {
	weightOf := func(id graph.NodeID) float64 {
		if w, ok := weights[g.Kind(id)]; ok {
			return w
		}
		return 1
	}
	buf[0] = int32(start)
	n := 1
	cur := start
	for n < len(buf) {
		nbs := g.Neighbors(cur)
		if len(nbs) == 0 {
			break
		}
		var total float64
		for _, nb := range nbs {
			total += weightOf(nb)
		}
		if total <= 0 {
			break
		}
		// Quantized inverse-CDF sampling keeps the deterministic integer
		// RNG stream (one draw per step, like the uniform walk).
		r := float64(rng.intn(1<<20)) / float64(1<<20) * total
		next := nbs[len(nbs)-1]
		for _, nb := range nbs {
			r -= weightOf(nb)
			if r < 0 {
				next = nb
				break
			}
		}
		cur = next
		buf[n] = int32(cur)
		n++
	}
	return n
}

// splitRand is a splitmix64-seeded xorshift dedicated to one walk.
type splitRand struct{ state uint64 }

func newRand(seed, node, walk uint64) *splitRand {
	x := seed ^ (node * 0x9e3779b97f4a7c15) ^ (walk * 0xbf58476d1ce4e5b9)
	// splitmix64 finalizer to decorrelate nearby (node, walk) pairs.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return &splitRand{state: x}
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// range reduction — one widening multiply instead of the hardware divide
// a modulo costs, which dominated walk-generation profiles.
func (r *splitRand) intn(n int) int {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	hi, _ := bits.Mul64(x, uint64(n))
	return int(hi)
}

// PackWalks packs materialized [][]NodeID walks straight into the
// embedder's packed format, skipping the intermediate [][]int32 that
// ToSequences + embed.PackSequences would allocate — used by the
// second-order (node2vec) training path.
func PackWalks(walks [][]graph.NodeID) embed.Sequences {
	total := 0
	for _, w := range walks {
		total += len(w)
	}
	if int64(total) > int64(1)<<31-1 {
		panic(fmt.Sprintf("walk: %d tokens overflow the packed int32 offset index", total))
	}
	p := embed.Sequences{
		Tokens:  make([]int32, 0, total),
		Offsets: make([]int32, 1, len(walks)+1),
	}
	for _, w := range walks {
		for _, n := range w {
			p.Tokens = append(p.Tokens, int32(n))
		}
		p.Offsets = append(p.Offsets, int32(len(p.Tokens)))
	}
	return p
}

// ToSequences converts walks of NodeIDs into int32 token sequences for the
// embedder. Node IDs are used directly as token IDs; vocabSize is the
// graph's ID capacity (g.Cap()).
func ToSequences(walks [][]graph.NodeID) [][]int32 {
	out := make([][]int32, len(walks))
	for i, w := range walks {
		s := make([]int32, len(w))
		for j, n := range w {
			s[j] = int32(n)
		}
		out[i] = s
	}
	return out
}

// ToSentences renders walks as node-label sentences, matching the paper's
// description of deriving textual sentences from walks. Used by tooling and
// debugging; the pipeline trains on packed sequences directly.
func ToSentences(g *graph.Graph, walks [][]graph.NodeID) [][]string {
	out := make([][]string, len(walks))
	for i, w := range walks {
		s := make([]string, len(w))
		for j, n := range w {
			s[j] = g.Label(n)
		}
		out[i] = s
	}
	return out
}
