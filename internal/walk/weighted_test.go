package walk

import (
	"testing"

	"github.com/tdmatch/tdmatch/internal/graph"
)

// starFixture: a metadata hub connected to one attribute node and several
// data nodes.
func starFixture(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New(8)
	hub, err := g.AddMeta("hub", graph.Tuple, graph.First)
	if err != nil {
		t.Fatal(err)
	}
	attr, err := g.AddMeta("col", graph.Attribute, graph.First)
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(hub, attr)
	for _, l := range []string{"a", "b", "c", "d", "e"} {
		d := g.EnsureData(l)
		g.AddEdge(hub, d)
		g.AddEdge(attr, d)
	}
	return g, hub, attr
}

func TestWeightedWalkExcludesZeroWeightKind(t *testing.T) {
	g, _, attr := starFixture(t)
	walks := Generate(g, Config{
		NumWalks: 5, Length: 12, Seed: 1,
		KindWeights: map[graph.NodeKind]float64{graph.Attribute: 0},
	})
	for _, w := range walks {
		for i, n := range w {
			if i > 0 && n == attr {
				t.Fatalf("walk stepped onto zero-weight attribute node: %v", w)
			}
		}
	}
}

func TestWeightedWalkStillStartsEverywhere(t *testing.T) {
	g, _, attr := starFixture(t)
	walks := Generate(g, Config{
		NumWalks: 2, Length: 6, Seed: 2,
		KindWeights: map[graph.NodeKind]float64{graph.Attribute: 0},
	})
	// Walks still start from the attribute node (only steps are weighted).
	found := false
	for _, w := range walks {
		if w[0] == attr {
			found = true
		}
	}
	if !found {
		t.Error("attribute node lost its starting walks")
	}
}

func TestWeightedWalkBiasesTowardHeavyKind(t *testing.T) {
	g, hub, attr := starFixture(t)
	// Heavily favor the attribute node from the hub.
	walks := Generate(g, Config{
		NumWalks: 200, Length: 2, Seed: 3,
		KindWeights: map[graph.NodeKind]float64{
			graph.Attribute: 50,
			graph.Data:      0.01,
		},
	})
	attrSteps, total := 0, 0
	for _, w := range walks {
		if w[0] != hub || len(w) < 2 {
			continue
		}
		total++
		if w[1] == attr {
			attrSteps++
		}
	}
	if total == 0 {
		t.Fatal("no hub walks")
	}
	if frac := float64(attrSteps) / float64(total); frac < 0.8 {
		t.Errorf("heavy kind taken only %.2f of steps", frac)
	}
}

func TestWeightedWalkAllZeroNeighborsEndsWalk(t *testing.T) {
	g := graph.New(4)
	m, _ := g.AddMeta("m", graph.Snippet, graph.First)
	d := g.EnsureData("only")
	g.AddEdge(m, d)
	walks := Generate(g, Config{
		NumWalks: 2, Length: 10, Seed: 4,
		KindWeights: map[graph.NodeKind]float64{
			graph.Data:    0,
			graph.Snippet: 0,
		},
	})
	for _, w := range walks {
		if len(w) != 1 {
			t.Errorf("walk should end immediately, got %v", w)
		}
	}
}

func TestWeightedWalkDeterministic(t *testing.T) {
	g, _, _ := starFixture(t)
	cfg := Config{
		NumWalks: 4, Length: 8, Seed: 9,
		KindWeights: map[graph.NodeKind]float64{graph.Attribute: 2},
	}
	a := Generate(g, cfg)
	b := Generate(g, cfg)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("weighted walks nondeterministic")
			}
		}
	}
}
