package walk

import (
	"fmt"
	"testing"

	"github.com/tdmatch/tdmatch/internal/graph"
)

// pathGraph builds the line 0-1-2-...-n.
func pathGraph(t *testing.T, n int) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New(n)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.EnsureData(fmt.Sprintf("n%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ids[i], ids[i+1])
	}
	return g, ids
}

func TestSecondOrderUniformEqualsFirstOrder(t *testing.T) {
	g, _ := pathGraph(t, 12)
	cfg := Config{NumWalks: 3, Length: 8, Seed: 5}
	a := Generate(g, cfg)
	b := GenerateSecondOrder(g, cfg, SecondOrder{P: 1, Q: 1})
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("p=q=1 must reduce to the uniform walk")
			}
		}
	}
}

func TestSecondOrderHighPReducesBacktracking(t *testing.T) {
	g, _ := pathGraph(t, 30)
	count := func(walks [][]graph.NodeID) int {
		backtracks := 0
		for _, w := range walks {
			for i := 2; i < len(w); i++ {
				if w[i] == w[i-2] {
					backtracks++
				}
			}
		}
		return backtracks
	}
	cfg := Config{NumWalks: 10, Length: 20, Seed: 2}
	uniform := count(GenerateSecondOrder(g, cfg, SecondOrder{P: 1, Q: 1.000001}))
	noReturn := count(GenerateSecondOrder(g, cfg, SecondOrder{P: 1000, Q: 1}))
	if noReturn >= uniform {
		t.Errorf("high p backtracks %d >= uniform %d", noReturn, uniform)
	}
}

func TestSecondOrderWalksFollowEdges(t *testing.T) {
	g, _ := pathGraph(t, 10)
	walks := GenerateSecondOrder(g, Config{NumWalks: 4, Length: 10, Seed: 3},
		SecondOrder{P: 0.5, Q: 2})
	for _, w := range walks {
		for i := 0; i+1 < len(w); i++ {
			if !g.HasEdge(w[i], w[i+1]) {
				t.Fatalf("invalid step %d-%d", w[i], w[i+1])
			}
		}
	}
}

func TestSecondOrderInvalidBiasFallsBack(t *testing.T) {
	g, _ := pathGraph(t, 6)
	cfg := Config{NumWalks: 2, Length: 5, Seed: 1}
	a := Generate(g, cfg)
	b := GenerateSecondOrder(g, cfg, SecondOrder{P: 0, Q: -1})
	if len(a) != len(b) {
		t.Fatal("invalid bias must fall back to uniform generation")
	}
}

func TestSecondOrderDeterministic(t *testing.T) {
	g, _ := pathGraph(t, 15)
	cfg := Config{NumWalks: 3, Length: 12, Seed: 9, Workers: 4}
	a := GenerateSecondOrder(g, cfg, SecondOrder{P: 2, Q: 0.5})
	b := GenerateSecondOrder(g, cfg, SecondOrder{P: 2, Q: 0.5})
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("second-order walks nondeterministic")
			}
		}
	}
}

func TestSecondOrderComposesWithKindWeights(t *testing.T) {
	g := graph.New(6)
	m, _ := g.AddMeta("m", graph.Tuple, graph.First)
	attr, _ := g.AddMeta("a", graph.Attribute, graph.First)
	d1 := g.EnsureData("x")
	d2 := g.EnsureData("y")
	g.AddEdge(m, d1)
	g.AddEdge(m, attr)
	g.AddEdge(attr, d1)
	g.AddEdge(attr, d2)
	g.AddEdge(d1, d2)
	walks := GenerateSecondOrder(g, Config{
		NumWalks: 5, Length: 10, Seed: 4,
		KindWeights: map[graph.NodeKind]float64{graph.Attribute: 0},
	}, SecondOrder{P: 2, Q: 0.5})
	for _, w := range walks {
		for i, n := range w {
			if i > 0 && n == attr {
				t.Fatal("kind weight 0 violated in second-order walk")
			}
		}
	}
}
