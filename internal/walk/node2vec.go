package walk

import "github.com/tdmatch/tdmatch/internal/graph"

// Node2Vec-style second-order walks (Grover & Leskovec, the paper's cited
// alternative walk strategy [37]): the step distribution depends on the
// previous node through the return parameter p and the in-out parameter q.
// Relative to a uniform step, returning to the previous node is weighted
// 1/p, moving to a common neighbor of the previous node is weighted 1, and
// moving outward is weighted 1/q. p = q = 1 recovers the paper's default
// uniform walk (DeepWalk).

// SecondOrder holds the node2vec bias parameters.
type SecondOrder struct {
	// P is the return parameter: large P discourages immediate backtracking.
	P float64
	// Q is the in-out parameter: Q > 1 keeps walks local (BFS-like),
	// Q < 1 pushes them outward (DFS-like).
	Q float64
}

func (s SecondOrder) valid() bool { return s.P > 0 && s.Q > 0 }

// GenerateSecondOrder produces node2vec walks with the given bias. Kind
// weights (cfg.KindWeights) compose multiplicatively with the second-order
// bias when set.
func GenerateSecondOrder(g *graph.Graph, cfg Config, bias SecondOrder) [][]graph.NodeID {
	if !bias.valid() || (bias.P == 1 && bias.Q == 1 && cfg.KindWeights == nil) {
		return Generate(g, cfg)
	}
	cfg = cfg.withDefaults()
	var starts []graph.NodeID
	g.Nodes(func(id graph.NodeID) { starts = append(starts, id) })

	out := make([][]graph.NodeID, len(starts)*cfg.NumWalks)
	run := func(si int) {
		node := starts[si]
		for k := 0; k < cfg.NumWalks; k++ {
			rng := newRand(uint64(cfg.Seed), uint64(node), uint64(k))
			out[si*cfg.NumWalks+k] = secondOrderWalk(g, node, cfg, bias, rng)
		}
	}
	parallelFor(len(starts), cfg.Workers, run)
	return out
}

// parallelFor runs fn(i) for i in [0,n) across workers goroutines; results
// are deterministic because fn only writes to disjoint slots.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n && n > 0 {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			for i := worker; i < n; i += workers {
				fn(i)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

func secondOrderWalk(g *graph.Graph, start graph.NodeID, cfg Config, bias SecondOrder, rng *splitRand) []graph.NodeID {
	kindWeight := func(id graph.NodeID) float64 {
		if cfg.KindWeights == nil {
			return 1
		}
		if w, ok := cfg.KindWeights[g.Kind(id)]; ok {
			return w
		}
		return 1
	}
	walk := make([]graph.NodeID, 0, cfg.Length)
	walk = append(walk, start)
	var prev graph.NodeID = -1
	cur := start
	for len(walk) < cfg.Length {
		nbs := g.Neighbors(cur)
		if len(nbs) == 0 {
			break
		}
		var total float64
		for _, nb := range nbs {
			total += stepWeight(g, prev, nb, bias) * kindWeight(nb)
		}
		if total <= 0 {
			break
		}
		r := float64(rng.intn(1<<20)) / float64(1<<20) * total
		next := nbs[len(nbs)-1]
		for _, nb := range nbs {
			r -= stepWeight(g, prev, nb, bias) * kindWeight(nb)
			if r < 0 {
				next = nb
				break
			}
		}
		prev, cur = cur, next
		walk = append(walk, cur)
	}
	return walk
}

func stepWeight(g *graph.Graph, prev, next graph.NodeID, bias SecondOrder) float64 {
	if prev < 0 {
		return 1 // first step has no second-order context
	}
	if next == prev {
		return 1 / bias.P
	}
	if g.HasEdge(prev, next) {
		return 1
	}
	return 1 / bias.Q
}
