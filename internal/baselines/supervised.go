package baselines

import (
	"math"
	"math/rand"
	"sort"

	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/pretrained"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// The supervised stand-ins replace the paper's fine-tuned transformer
// baselines, which need GPU inference stacks unavailable in this offline
// Go reproduction (see DESIGN.md). They keep the training protocol — 5-fold
// cross validation over the annotated query set, the paper's 60/40-style
// split per fold — and the qualitative behaviour: strong when labels and
// lexical/embedding features carry the signal, degraded when annotations
// are scarce or the vocabulary is domain specific.

// SupervisedConfig tunes training of the logistic stand-ins.
type SupervisedConfig struct {
	Seed int64
	// Folds for cross validation (default 5 as in §V).
	Folds int
	// NegativesPerPositive controls negative sampling (default 8).
	NegativesPerPositive int
	// Epochs over the training pairs (default 20).
	Epochs int
	// LR is the SGD learning rate (default 0.1).
	LR float64
}

func (c SupervisedConfig) withDefaults() SupervisedConfig {
	if c.Folds <= 0 {
		c.Folds = 5
	}
	if c.NegativesPerPositive <= 0 {
		c.NegativesPerPositive = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	return c
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dotF(w, f []float64) float64 {
	var s float64
	for i := range w {
		s += w[i] * f[i]
	}
	return s
}

// PairModel is a logistic model over pair features, trained and evaluated
// with cross validation: each query is ranked by the fold model that did
// NOT see it during training.
type PairModel struct {
	name     string
	s        *datasets.Scenario
	feat     *Featurizer
	cfg      SupervisedConfig
	pairwise bool
	// foldOf assigns each annotated query to a fold; weights[f] is the
	// model trained with fold f held out.
	foldOf  map[string]int
	weights [][]float64
}

// NewPairModel trains the stand-in. pairwise selects the RANK* objective
// (pairwise logistic loss over positive/negative target pairs); otherwise
// the binary matching objective of the entity-matching baselines is used.
func NewPairModel(name string, s *datasets.Scenario, pm *pretrained.Model, set FeatureSet, pairwise bool, cfg SupervisedConfig) (*PairModel, error) {
	cfg = cfg.withDefaults()
	feat, err := NewFeaturizer(s, pm, set)
	if err != nil {
		return nil, err
	}
	m := &PairModel{name: name, s: s, feat: feat, cfg: cfg, pairwise: pairwise,
		foldOf: map[string]int{}, weights: make([][]float64, cfg.Folds)}

	// Deterministic fold assignment over annotated queries.
	annotated := make([]string, 0, len(s.Queries))
	for _, q := range s.Queries {
		if len(s.Truth[q]) > 0 {
			annotated = append(annotated, q)
		}
	}
	sort.Strings(annotated)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(annotated), func(i, j int) { annotated[i], annotated[j] = annotated[j], annotated[i] })
	for i, q := range annotated {
		m.foldOf[q] = i % cfg.Folds
	}
	for f := 0; f < cfg.Folds; f++ {
		m.weights[f] = m.trainFold(annotated, f, rand.New(rand.NewSource(cfg.Seed+int64(f)+1)))
	}
	return m, nil
}

func (m *PairModel) trainFold(annotated []string, fold int, rng *rand.Rand) []float64 {
	w := make([]float64, m.feat.Dim())
	var trainQ []string
	for _, q := range annotated {
		if m.foldOf[q] != fold {
			trainQ = append(trainQ, q)
		}
	}
	// The paper trains the supervised baselines on 60% of the annotated
	// data (§V); cap the out-of-fold pool accordingly (0.75 of the 80%
	// out-of-fold share = 60% of all annotations).
	if cap60 := len(annotated) * 60 / 100; len(trainQ) > cap60 {
		rng.Shuffle(len(trainQ), func(i, j int) { trainQ[i], trainQ[j] = trainQ[j], trainQ[i] })
		trainQ = trainQ[:cap60]
	}
	targets := m.s.Targets
	for ep := 0; ep < m.cfg.Epochs; ep++ {
		for _, q := range trainQ {
			for _, pos := range m.s.Truth[q] {
				fp := m.feat.Features(q, pos)
				for n := 0; n < m.cfg.NegativesPerPositive; n++ {
					neg := targets[rng.Intn(len(targets))]
					if neg == pos {
						continue
					}
					fn := m.feat.Features(q, neg)
					if m.pairwise {
						// RANK*: maximize sigma(w·(fp - fn)).
						diff := make([]float64, len(fp))
						for i := range diff {
							diff[i] = fp[i] - fn[i]
						}
						g := (1 - sigmoid(dotF(w, diff))) * m.cfg.LR
						for i := range w {
							w[i] += g * diff[i]
						}
					} else {
						// Binary: positive label 1, negative label 0.
						gp := (1 - sigmoid(dotF(w, fp))) * m.cfg.LR
						gn := (0 - sigmoid(dotF(w, fn))) * m.cfg.LR
						for i := range w {
							w[i] += gp*fp[i] + gn*fn[i]
						}
					}
				}
			}
		}
	}
	return w
}

// Name implements Ranker.
func (m *PairModel) Name() string { return m.name }

// Rank implements Ranker: the query is scored by its held-out fold model.
func (m *PairModel) Rank(queryID string, k int) []match.Scored {
	fold, ok := m.foldOf[queryID]
	if !ok {
		fold = 0
	}
	w := m.weights[fold]
	return match.TopKFunc(m.s.Targets, func(i int) float64 {
		return dotF(w, m.feat.Features(queryID, m.s.Targets[i]))
	}, k)
}

// NewRank builds the RANK* learning-to-rank stand-in (pairwise loss, full
// feature view).
func NewRank(s *datasets.Scenario, pm *pretrained.Model, cfg SupervisedConfig) (*PairModel, error) {
	return NewPairModel("RANK*", s, pm, FeaturesFull, true, cfg)
}

// NewDitto builds the DITTO* stand-in (binary matching over serialized
// lexical features).
func NewDitto(s *datasets.Scenario, pm *pretrained.Model, cfg SupervisedConfig) (*PairModel, error) {
	return NewPairModel("DITTO*", s, pm, FeaturesLexical, false, cfg)
}

// NewTapas builds the TAPAS* stand-in (binary matching over table-aware
// features).
func NewTapas(s *datasets.Scenario, pm *pretrained.Model, cfg SupervisedConfig) (*PairModel, error) {
	return NewPairModel("TAPAS*", s, pm, FeaturesTabular, false, cfg)
}

// NewDeepMatcher builds the DEEP-M* stand-in (binary matching over
// embedding-similarity features).
func NewDeepMatcher(s *datasets.Scenario, pm *pretrained.Model, cfg SupervisedConfig) (*PairModel, error) {
	return NewPairModel("DEEP-M*", s, pm, FeaturesEmbedding, false, cfg)
}

// MultiLabel is the L-BE* stand-in for the taxonomy task: one-vs-rest
// logistic classifiers over hashed bag-of-words document features, one
// classifier per taxonomy concept, cross-validated like PairModel.
type MultiLabel struct {
	s       *datasets.Scenario
	cfg     SupervisedConfig
	pre     textproc.Preprocessor
	dim     int
	foldOf  map[string]int
	weights [][][]float64 // [fold][label][dim]
	labelIx map[string]int
}

// NewMultiLabel trains the multi-label classifier stand-in.
func NewMultiLabel(s *datasets.Scenario, cfg SupervisedConfig) (*MultiLabel, error) {
	cfg = cfg.withDefaults()
	m := &MultiLabel{
		s:       s,
		cfg:     cfg,
		pre:     textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 1},
		dim:     1 << 12,
		foldOf:  map[string]int{},
		labelIx: map[string]int{},
	}
	for i, t := range s.Targets {
		m.labelIx[t] = i
	}
	annotated := make([]string, 0, len(s.Queries))
	for _, q := range s.Queries {
		if len(s.Truth[q]) > 0 {
			annotated = append(annotated, q)
		}
	}
	sort.Strings(annotated)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(annotated), func(i, j int) { annotated[i], annotated[j] = annotated[j], annotated[i] })
	for i, q := range annotated {
		m.foldOf[q] = i % cfg.Folds
	}
	m.weights = make([][][]float64, cfg.Folds)
	for f := 0; f < cfg.Folds; f++ {
		m.weights[f] = m.trainFold(annotated, f)
	}
	return m, nil
}

// hashFeatures maps a document to a sparse hashed bag-of-words vector.
func (m *MultiLabel) hashFeatures(queryID string) map[int]float64 {
	d, _ := m.s.Second.Doc(queryID)
	out := map[int]float64{}
	toks := m.pre.Tokens(d.Text())
	for _, t := range toks {
		h := fnv32(t) % uint32(m.dim)
		out[int(h)]++
	}
	var norm float64
	for _, v := range out {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for k := range out {
			out[k] *= inv
		}
	}
	return out
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *MultiLabel) trainFold(annotated []string, fold int) [][]float64 {
	w := make([][]float64, len(m.s.Targets))
	for i := range w {
		w[i] = make([]float64, m.dim)
	}
	for ep := 0; ep < m.cfg.Epochs; ep++ {
		for _, q := range annotated {
			if m.foldOf[q] == fold {
				continue
			}
			feats := m.hashFeatures(q)
			pos := map[int]bool{}
			for _, t := range m.s.Truth[q] {
				if ix, ok := m.labelIx[t]; ok {
					pos[ix] = true
				}
			}
			// Positive labels plus a sample of negatives: full one-vs-rest
			// over hundreds of labels is wasteful at these sizes.
			update := func(label int, y float64) {
				var s float64
				for k, v := range feats {
					s += w[label][k] * v
				}
				g := (y - sigmoid(s)) * m.cfg.LR
				for k, v := range feats {
					w[label][k] += g * v
				}
			}
			for label := range pos {
				update(label, 1)
			}
			rng := rand.New(rand.NewSource(m.cfg.Seed + int64(fnv32(q))))
			for n := 0; n < m.cfg.NegativesPerPositive*len(pos); n++ {
				neg := rng.Intn(len(m.s.Targets))
				if !pos[neg] {
					update(neg, 0)
				}
			}
		}
	}
	return w
}

// Name implements Ranker.
func (m *MultiLabel) Name() string { return "L-BE*" }

// Rank implements Ranker.
func (m *MultiLabel) Rank(queryID string, k int) []match.Scored {
	fold, ok := m.foldOf[queryID]
	if !ok {
		fold = 0
	}
	w := m.weights[fold]
	feats := m.hashFeatures(queryID)
	return match.TopKFunc(m.s.Targets, func(i int) float64 {
		var s float64
		for kk, v := range feats {
			s += w[i][kk] * v
		}
		return s
	}, k)
}
