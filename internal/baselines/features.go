package baselines

import (
	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/pretrained"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// FeatureSet selects which pair features a supervised stand-in uses; the
// subsets loosely mirror what the original systems can see:
//   - FeaturesLexical (DITTO*): serialized-token overlap and TF-IDF cosine.
//   - FeaturesTabular (TAPAS*): per-column overlap against the table schema.
//   - FeaturesEmbedding (DEEP-M*): pre-trained embedding cosine + basic
//     overlap.
//   - FeaturesFull (RANK*): everything, the learning-to-rank feature view.
type FeatureSet uint8

const (
	// FeaturesLexical mirrors serialization-based matchers.
	FeaturesLexical FeatureSet = iota
	// FeaturesTabular mirrors table-aware matchers.
	FeaturesTabular
	// FeaturesEmbedding mirrors embedding-similarity matchers.
	FeaturesEmbedding
	// FeaturesFull is the union, for the learning-to-rank baseline.
	FeaturesFull
)

// Featurizer computes pair feature vectors between scenario queries and
// targets. All features are in [0, 1]; the first slot is a bias term.
type Featurizer struct {
	s       *datasets.Scenario
	pm      *pretrained.Model
	set     FeatureSet
	pre     textproc.Preprocessor
	tfidf   *TFIDF
	qTokens map[string]map[string]bool
	tTokens map[string]map[string]bool
	tCols   map[string][]map[string]bool
	tPos    map[string]int
	sbe     *SBE
}

// NewFeaturizer indexes the scenario for feature extraction.
func NewFeaturizer(s *datasets.Scenario, pm *pretrained.Model, set FeatureSet) (*Featurizer, error) {
	f := &Featurizer{
		s:   s,
		pm:  pm,
		set: set,
		pre: textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 1},
	}
	all := docTexts(s, s.Targets, true, false)
	f.tfidf = NewTFIDF(all)
	f.tTokens = map[string]map[string]bool{}
	f.tCols = map[string][]map[string]bool{}
	f.tPos = map[string]int{}
	for i, id := range s.Targets {
		f.tPos[id] = i
	}
	for _, id := range s.Targets {
		d, _ := s.First.Doc(id)
		f.tTokens[id] = f.tokenSet(d.Text())
		var cols []map[string]bool
		for _, v := range d.Values {
			cols = append(cols, f.tokenSet(v.Text))
		}
		f.tCols[id] = cols
	}
	f.qTokens = map[string]map[string]bool{}
	for _, id := range s.Queries {
		d, _ := s.Second.Doc(id)
		f.qTokens[id] = f.tokenSet(d.Text())
	}
	if set == FeaturesEmbedding || set == FeaturesFull {
		sbe, err := NewSBE(s, pm)
		if err != nil {
			return nil, err
		}
		f.sbe = sbe
	}
	return f, nil
}

func (f *Featurizer) tokenSet(text string) map[string]bool {
	out := map[string]bool{}
	for _, t := range f.pre.Tokens(text) {
		out[t] = true
	}
	return out
}

// Dim returns the feature-vector length for the configured set.
func (f *Featurizer) Dim() int {
	switch f.set {
	case FeaturesLexical:
		return 5
	case FeaturesTabular:
		return 6
	case FeaturesEmbedding:
		return 4
	default:
		return 8
	}
}

// Features computes the pair feature vector (index 0 is the bias).
func (f *Featurizer) Features(queryID, targetID string) []float64 {
	q := f.qTokens[queryID]
	t := f.tTokens[targetID]

	shared := 0
	for tok := range q {
		if t[tok] {
			shared++
		}
	}
	union := len(q) + len(t) - shared
	jaccard := 0.0
	if union > 0 {
		jaccard = float64(shared) / float64(union)
	}
	qCover := 0.0
	if len(q) > 0 {
		qCover = float64(shared) / float64(len(q))
	}
	qd, _ := f.s.Second.Doc(queryID)
	tfidfCos := CosineSparse(f.tfidf.Embed(qd.Text()), f.tfidf.Vector(targetID))

	numShared, numTotal := 0, 0
	for tok := range q {
		if textproc.IsNumeric(tok) {
			numTotal++
			if t[tok] {
				numShared++
			}
		}
	}
	numFrac := 0.0
	if numTotal > 0 {
		numFrac = float64(numShared) / float64(numTotal)
	}

	switch f.set {
	case FeaturesLexical:
		return []float64{1, jaccard, qCover, tfidfCos, numFrac}
	case FeaturesTabular:
		best, hitCols := 0.0, 0.0
		cols := f.tCols[targetID]
		for _, col := range cols {
			overlap := 0
			for tok := range col {
				if q[tok] {
					overlap++
				}
			}
			if len(col) > 0 {
				frac := float64(overlap) / float64(len(col))
				if frac > best {
					best = frac
				}
				if overlap > 0 {
					hitCols++
				}
			}
		}
		if len(cols) > 0 {
			hitCols /= float64(len(cols))
		}
		return []float64{1, jaccard, best, hitCols, numFrac, tfidfCos}
	case FeaturesEmbedding:
		cos := f.embeddingCos(queryID, targetID)
		return []float64{1, cos, jaccard, qCover}
	default:
		cos := f.embeddingCos(queryID, targetID)
		bigram := f.bigramOverlap(queryID, targetID)
		return []float64{1, jaccard, qCover, tfidfCos, numFrac, cos, bigram, boolTo(shared > 0)}
	}
}

func (f *Featurizer) embeddingCos(queryID, targetID string) float64 {
	if f.sbe == nil {
		return 0
	}
	i, ok := f.tPos[targetID]
	if !ok {
		return 0
	}
	return f.sbe.Index().Score(f.sbe.QueryVector(queryID), i)
}

func (f *Featurizer) bigramOverlap(queryID, targetID string) float64 {
	qd, _ := f.s.Second.Doc(queryID)
	td, _ := f.s.First.Doc(targetID)
	qb := bigrams(f.pre.Tokens(qd.Text()))
	tb := bigrams(f.pre.Tokens(td.Text()))
	if len(qb) == 0 {
		return 0
	}
	shared := 0
	for b := range qb {
		if tb[b] {
			shared++
		}
	}
	return float64(shared) / float64(len(qb))
}

func bigrams(tokens []string) map[string]bool {
	out := map[string]bool{}
	for i := 0; i+1 < len(tokens); i++ {
		out[tokens[i]+" "+tokens[i+1]] = true
	}
	return out
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
