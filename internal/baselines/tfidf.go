// Package baselines implements the comparison methods of the paper's §V:
// unsupervised baselines trained on the corpora at hand (W2VEC, D2VEC),
// pre-trained unsupervised baselines (S-BE substitute, BM25), and the
// supervised stand-ins for the transformer methods (RANK*, DITTO*, TAPAS*,
// DEEP-M*, L-BE*) — logistic models over lexical and embedding features,
// trained with the paper's protocol (5-fold cross validation, 60% of the
// annotated pairs). See DESIGN.md for the substitution rationale.
package baselines

import (
	"math"

	"github.com/tdmatch/tdmatch/internal/textproc"
)

// TFIDF is a sparse TF-IDF vectorizer over a document collection.
type TFIDF struct {
	pre  textproc.Preprocessor
	df   map[string]int
	n    int
	docs map[string]map[string]float64 // docID -> term -> weight
}

// NewTFIDF indexes the given documents (id → raw text).
func NewTFIDF(docs map[string]string) *TFIDF {
	t := &TFIDF{
		pre:  textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 1},
		df:   make(map[string]int),
		docs: make(map[string]map[string]float64, len(docs)),
	}
	t.n = len(docs)
	raw := make(map[string]map[string]int, len(docs))
	for id, text := range docs {
		tf := map[string]int{}
		for _, tok := range t.pre.Tokens(text) {
			tf[tok]++
		}
		raw[id] = tf
		for tok := range tf {
			t.df[tok]++
		}
	}
	for id, tf := range raw {
		t.docs[id] = t.weigh(tf)
	}
	return t
}

func (t *TFIDF) idf(tok string) float64 {
	return math.Log(float64(1+t.n) / float64(1+t.df[tok]))
}

func (t *TFIDF) weigh(tf map[string]int) map[string]float64 {
	v := make(map[string]float64, len(tf))
	var norm float64
	for tok, f := range tf {
		w := (1 + math.Log(float64(f))) * t.idf(tok)
		v[tok] = w
		norm += w * w
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for tok := range v {
			v[tok] *= inv
		}
	}
	return v
}

// Vector returns the (unit-norm) TF-IDF vector of an indexed document.
func (t *TFIDF) Vector(id string) map[string]float64 { return t.docs[id] }

// Embed vectorizes unindexed text with the collection's IDF statistics.
func (t *TFIDF) Embed(text string) map[string]float64 {
	tf := map[string]int{}
	for _, tok := range t.pre.Tokens(text) {
		tf[tok]++
	}
	return t.weigh(tf)
}

// CosineSparse returns the dot product of two unit-norm sparse vectors
// (= cosine similarity).
func CosineSparse(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for tok, w := range a {
		if w2, ok := b[tok]; ok {
			s += w * w2
		}
	}
	return s
}

// BM25 is the classic Okapi ranking function over a target collection,
// the traditional-IR baseline the paper's related work contrasts with.
type BM25 struct {
	pre    textproc.Preprocessor
	k1, b  float64
	df     map[string]int
	docs   map[string]map[string]int
	length map[string]int
	avgLen float64
	n      int
}

// NewBM25 indexes the target documents (id → raw text).
func NewBM25(docs map[string]string) *BM25 {
	m := &BM25{
		pre:    textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 1},
		k1:     1.2,
		b:      0.75,
		df:     map[string]int{},
		docs:   map[string]map[string]int{},
		length: map[string]int{},
	}
	m.n = len(docs)
	total := 0
	for id, text := range docs {
		tf := map[string]int{}
		toks := m.pre.Tokens(text)
		for _, tok := range toks {
			tf[tok]++
		}
		m.docs[id] = tf
		m.length[id] = len(toks)
		total += len(toks)
		for tok := range tf {
			m.df[tok]++
		}
	}
	if m.n > 0 {
		m.avgLen = float64(total) / float64(m.n)
	}
	return m
}

// Score returns the BM25 score of query text against an indexed document.
func (m *BM25) Score(query, docID string) float64 {
	tf := m.docs[docID]
	if tf == nil {
		return 0
	}
	var s float64
	dl := float64(m.length[docID])
	for _, tok := range m.pre.Tokens(query) {
		f := float64(tf[tok])
		if f == 0 {
			continue
		}
		idf := math.Log(1 + (float64(m.n)-float64(m.df[tok])+0.5)/(float64(m.df[tok])+0.5))
		s += idf * f * (m.k1 + 1) / (f + m.k1*(1-m.b+m.b*dl/m.avgLen))
	}
	return s
}
