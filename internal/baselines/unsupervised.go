package baselines

import (
	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/pretrained"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// Ranker is the interface all baselines implement: rank the scenario's
// targets for one query document.
type Ranker interface {
	// Name returns the method label used in result tables.
	Name() string
	// Rank returns the top-k targets for the query document ID.
	Rank(queryID string, k int) []match.Scored
}

// RankAll runs a ranker over all queries.
func RankAll(r Ranker, queries []string, k int) map[string][]string {
	out := make(map[string][]string, len(queries))
	for _, q := range queries {
		out[q] = match.IDsOf(r.Rank(q, k))
	}
	return out
}

// docTexts extracts id → text for a corpus side, serializing tuples with
// the [COL]/[VAL] convention when serialize is set (§V-A).
func docTexts(s *datasets.Scenario, ids []string, first bool, serialize bool) map[string]string {
	c := s.Second
	if first {
		c = s.First
	}
	out := make(map[string]string, len(ids))
	for _, id := range ids {
		d, ok := c.Doc(id)
		if !ok {
			continue
		}
		if serialize {
			out[id] = d.Serialize()
		} else {
			out[id] = d.Text()
		}
	}
	return out
}

// SBE is the SentenceBERT substitute: rank targets by cosine similarity of
// pre-trained mean-token sentence embeddings. No training on the corpora.
type SBE struct {
	model   *pretrained.Model
	s       *datasets.Scenario
	index   *match.Index
	queries map[string][]float32
}

// NewSBE embeds all targets once with the pre-trained model.
func NewSBE(s *datasets.Scenario, pm *pretrained.Model) (*SBE, error) {
	vecs := make([][]float32, len(s.Targets))
	for i, id := range s.Targets {
		d, _ := s.First.Doc(id)
		vecs[i] = pm.SentenceVector(d.Text())
	}
	idx, err := match.NewIndex(s.Targets, vecs, pm.Dim())
	if err != nil {
		return nil, err
	}
	return &SBE{model: pm, s: s, index: idx, queries: map[string][]float32{}}, nil
}

// Name implements Ranker.
func (b *SBE) Name() string { return "S-BE" }

// QueryVector embeds (and caches) a query document.
func (b *SBE) QueryVector(queryID string) []float32 {
	if v, ok := b.queries[queryID]; ok {
		return v
	}
	d, _ := b.s.Second.Doc(queryID)
	v := b.model.SentenceVector(d.Text())
	if v == nil {
		v = make([]float32, b.model.Dim())
	}
	b.queries[queryID] = v
	return v
}

// Index exposes the target index (used by the Fig. 10 combination).
func (b *SBE) Index() *match.Index { return b.index }

// Rank implements Ranker.
func (b *SBE) Rank(queryID string, k int) []match.Scored {
	return b.index.TopK(b.QueryVector(queryID), k)
}

// W2Vec is the unsupervised training-based baseline: Word2Vec trained on
// the serialized documents of both corpora, documents matched by the mean
// of their token vectors.
type W2Vec struct {
	s     *datasets.Scenario
	tm    *embed.TextModel
	index *match.Index
	pre   textproc.Preprocessor
}

// NewW2Vec trains on both corpora (tuples serialized to [COL]/[VAL]
// sentences) with Skip-Gram, vectors of size per cfg (the paper uses 300;
// scaled configs use less).
func NewW2Vec(s *datasets.Scenario, cfg embed.Config) (*W2Vec, error) {
	pre := textproc.DefaultPreprocessor()
	var sents [][]string
	for _, first := range []bool{true, false} {
		ids := s.Targets
		if !first {
			ids = s.Queries
		}
		for _, text := range docTexts(s, ids, first, true) {
			sents = append(sents, pre.Tokens(text))
		}
	}
	cfg.Mode = embed.SkipGram
	tm, err := embed.TrainText(sents, 1, cfg)
	if err != nil {
		return nil, err
	}
	b := &W2Vec{s: s, tm: tm, pre: pre}
	vecs := make([][]float32, len(s.Targets))
	for i, id := range s.Targets {
		d, _ := s.First.Doc(id)
		vecs[i] = tm.SentenceVector(pre.Tokens(d.Serialize()))
	}
	b.index, err = match.NewIndex(s.Targets, vecs, tm.Model.Dim)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Name implements Ranker.
func (b *W2Vec) Name() string { return "W2VEC" }

// Rank implements Ranker.
func (b *W2Vec) Rank(queryID string, k int) []match.Scored {
	d, _ := b.s.Second.Doc(queryID)
	return b.index.TopK(b.tm.SentenceVector(b.pre.Tokens(d.Text())), k)
}

// D2Vec is the document-embedding baseline: PV-DBOW vectors for every
// document of both corpora, matched by cosine.
type D2Vec struct {
	s       *datasets.Scenario
	index   *match.Index
	queries map[string][]float32
}

// NewD2Vec trains DBOW document vectors jointly over targets and queries.
func NewD2Vec(s *datasets.Scenario, cfg embed.Config) (*D2Vec, error) {
	pre := textproc.DefaultPreprocessor()
	ids := append(append([]string{}, s.Targets...), s.Queries...)
	texts := docTexts(s, s.Targets, true, true)
	for id, t := range docTexts(s, s.Queries, false, false) {
		texts[id] = t
	}
	sents := make([][]string, len(ids))
	for i, id := range ids {
		sents[i] = pre.Tokens(texts[id])
	}
	vocab := embed.BuildVocab(sents, 1)
	vecs, err := embed.TrainDBOW(vocab.Encode(sents), maxInt(vocab.Size(), 1), cfg)
	if err != nil {
		return nil, err
	}
	b := &D2Vec{s: s, queries: map[string][]float32{}}
	targetVecs := vecs[:len(s.Targets)]
	for i, id := range s.Queries {
		b.queries[id] = vecs[len(s.Targets)+i]
	}
	b.index, err = match.NewIndex(s.Targets, targetVecs, cfg.Dim)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements Ranker.
func (b *D2Vec) Name() string { return "D2VEC" }

// Rank implements Ranker.
func (b *D2Vec) Rank(queryID string, k int) []match.Scored {
	v := b.queries[queryID]
	if v == nil {
		return nil
	}
	return b.index.TopK(v, k)
}

// BM25Ranker adapts the Okapi index to the Ranker interface.
type BM25Ranker struct {
	s   *datasets.Scenario
	idx *BM25
}

// NewBM25Ranker indexes the scenario targets.
func NewBM25Ranker(s *datasets.Scenario) *BM25Ranker {
	return &BM25Ranker{s: s, idx: NewBM25(docTexts(s, s.Targets, true, false))}
}

// Name implements Ranker.
func (b *BM25Ranker) Name() string { return "BM25" }

// Rank implements Ranker.
func (b *BM25Ranker) Rank(queryID string, k int) []match.Scored {
	d, _ := b.s.Second.Doc(queryID)
	text := d.Text()
	return match.TopKFunc(b.s.Targets, func(i int) float64 {
		return b.idx.Score(text, b.s.Targets[i])
	}, k)
}
