package baselines

import (
	"testing"

	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/metrics"
	"github.com/tdmatch/tdmatch/internal/pretrained"
)

// smallScenario caches a tiny IMDb scenario plus pretrained model for all
// baseline tests.
var (
	cachedScenario *datasets.Scenario
	cachedModel    *pretrained.Model
)

func scenario(t *testing.T) (*datasets.Scenario, *pretrained.Model) {
	t.Helper()
	if cachedScenario == nil {
		s, err := datasets.IMDb(datasets.IMDbConfig{Seed: 11, Movies: 30, WithTitle: true, GeneralSentences: 800})
		if err != nil {
			t.Fatal(err)
		}
		pm, err := pretrained.Train(s.General, embed.Config{Dim: 24, Window: 4, Epochs: 2, Seed: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		cachedScenario, cachedModel = s, pm
	}
	return cachedScenario, cachedModel
}

func mrrOf(t *testing.T, s *datasets.Scenario, r Ranker) float64 {
	t.Helper()
	results := RankAll(r, s.Queries, 20)
	sum := metrics.EvaluateRanking(results, s.Truth, []int{1})
	return sum.MRR
}

func TestTFIDFVectorizer(t *testing.T) {
	docs := map[string]string{
		"d1": "the quick brown fox",
		"d2": "the lazy dog sleeps",
		"d3": "quick dog runs fast",
	}
	tf := NewTFIDF(docs)
	v1 := tf.Vector("d1")
	if len(v1) == 0 {
		t.Fatal("empty vector")
	}
	// Unit norm.
	var norm float64
	for _, w := range v1 {
		norm += w * w
	}
	if norm < 0.99 || norm > 1.01 {
		t.Errorf("norm = %f", norm)
	}
	// Query similarity: "quick fox" closer to d1 than to d2.
	q := tf.Embed("quick fox animal")
	if CosineSparse(q, tf.Vector("d1")) <= CosineSparse(q, tf.Vector("d2")) {
		t.Error("tf-idf ranking wrong")
	}
	if tf.Vector("missing") != nil {
		t.Error("missing doc must be nil")
	}
}

func TestCosineSparse(t *testing.T) {
	a := map[string]float64{"x": 0.6, "y": 0.8}
	b := map[string]float64{"x": 1.0}
	if got := CosineSparse(a, b); got != 0.6 {
		t.Errorf("CosineSparse = %f", got)
	}
	if got := CosineSparse(b, a); got != 0.6 {
		t.Error("CosineSparse must be symmetric")
	}
	if CosineSparse(nil, a) != 0 {
		t.Error("nil vector must score 0")
	}
}

func TestBM25(t *testing.T) {
	docs := map[string]string{
		"d1": "pulp fiction tarantino movie",
		"d2": "sixth sense shyamalan movie",
		"d3": "generic words about cinema",
	}
	idx := NewBM25(docs)
	if idx.Score("tarantino film", "d1") <= idx.Score("tarantino film", "d2") {
		t.Error("BM25 must prefer the doc containing the query term")
	}
	if idx.Score("anything", "missing") != 0 {
		t.Error("missing doc must score 0")
	}
	// Common words score less than rare words.
	if idx.Score("movie", "d1") >= idx.Score("pulp", "d1") {
		t.Error("idf weighting missing")
	}
}

func TestSBEBaseline(t *testing.T) {
	s, pm := scenario(t)
	b, err := NewSBE(s, pm)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "S-BE" {
		t.Error("name wrong")
	}
	ranked := b.Rank(s.Queries[0], 5)
	if len(ranked) != 5 {
		t.Fatalf("Rank returned %d", len(ranked))
	}
	// Scores must be sorted.
	for i := 0; i+1 < len(ranked); i++ {
		if ranked[i].Score < ranked[i+1].Score {
			t.Error("scores not descending")
		}
	}
}

func TestW2VecBaseline(t *testing.T) {
	s, _ := scenario(t)
	b, err := NewW2Vec(s, embed.Config{Dim: 24, Window: 3, Epochs: 2, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "W2VEC" {
		t.Error("name wrong")
	}
	if got := b.Rank(s.Queries[1], 3); len(got) != 3 {
		t.Errorf("Rank = %d results", len(got))
	}
}

func TestD2VecBaseline(t *testing.T) {
	s, _ := scenario(t)
	b, err := NewD2Vec(s, embed.Config{Dim: 24, Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "D2VEC" {
		t.Error("name wrong")
	}
	if got := b.Rank(s.Queries[0], 4); len(got) != 4 {
		t.Errorf("Rank = %d results", len(got))
	}
	if got := b.Rank("nonexistent", 4); got != nil {
		t.Error("unknown query must rank nil")
	}
}

func TestBM25Ranker(t *testing.T) {
	s, _ := scenario(t)
	b := NewBM25Ranker(s)
	if b.Name() != "BM25" {
		t.Error("name wrong")
	}
	res := mrrOf(t, s, b)
	// Lexical baseline must beat random guessing on IMDb-WT.
	if res < 1.0/float64(len(s.Targets)) {
		t.Errorf("BM25 MRR = %f, below random", res)
	}
}

func TestFeaturizerBasics(t *testing.T) {
	s, pm := scenario(t)
	for _, set := range []FeatureSet{FeaturesLexical, FeaturesTabular, FeaturesEmbedding, FeaturesFull} {
		f, err := NewFeaturizer(s, pm, set)
		if err != nil {
			t.Fatal(err)
		}
		q := s.Queries[0]
		pos := s.Truth[q][0]
		feats := f.Features(q, pos)
		if len(feats) != f.Dim() {
			t.Fatalf("set %d: features len %d != dim %d", set, len(feats), f.Dim())
		}
		if feats[0] != 1 {
			t.Error("bias feature must be 1")
		}
		for i, v := range feats {
			if v < -1.0001 || v > 1.0001 {
				t.Errorf("feature %d out of range: %f", i, v)
			}
		}
	}
}

func TestFeaturesDiscriminate(t *testing.T) {
	s, pm := scenario(t)
	f, err := NewFeaturizer(s, pm, FeaturesFull)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged over queries, the true pair must have higher jaccard
	// (feature 1) than a fixed wrong pair.
	var posSum, negSum float64
	for _, q := range s.Queries {
		pos := s.Truth[q][0]
		neg := s.Targets[0]
		if neg == pos {
			neg = s.Targets[1]
		}
		posSum += f.Features(q, pos)[1]
		negSum += f.Features(q, neg)[1]
	}
	if posSum <= negSum {
		t.Errorf("features do not separate: pos %.3f <= neg %.3f", posSum, negSum)
	}
}

func TestRankStar(t *testing.T) {
	s, pm := scenario(t)
	b, err := NewRank(s, pm, SupervisedConfig{Seed: 1, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "RANK*" {
		t.Error("name wrong")
	}
	mrr := mrrOf(t, s, b)
	random := 1.0 / float64(len(s.Targets))
	if mrr < 4*random {
		t.Errorf("RANK* MRR %.3f not clearly above random %.3f", mrr, random)
	}
}

func TestBinaryClassifiers(t *testing.T) {
	s, pm := scenario(t)
	for _, build := range []func(*datasets.Scenario, *pretrained.Model, SupervisedConfig) (*PairModel, error){
		NewDitto, NewTapas, NewDeepMatcher,
	} {
		b, err := build(s, pm, SupervisedConfig{Seed: 2, Epochs: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := b.Rank(s.Queries[0], 5)
		if len(got) != 5 {
			t.Errorf("%s: Rank = %d results", b.Name(), len(got))
		}
	}
}

func TestPairModelUnknownQueryFallsBack(t *testing.T) {
	s, pm := scenario(t)
	b, err := NewDitto(s, pm, SupervisedConfig{Seed: 3, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Queries missing from the fold map use fold 0 and must not panic.
	if got := b.Rank(s.Queries[0], 2); len(got) != 2 {
		t.Error("rank failed")
	}
}

func TestMultiLabel(t *testing.T) {
	s, err := datasets.Audit(datasets.AuditConfig{Seed: 5, Level1: 4, ConceptsPerCategory: 8, Documents: 60, GeneralSentences: 200})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiLabel(s, SupervisedConfig{Seed: 1, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "L-BE*" {
		t.Error("name wrong")
	}
	results := RankAll(m, s.Queries, 10)
	summary := metrics.EvaluateRanking(results, s.Truth, []int{1, 10})
	random := 1.0 / float64(len(s.Targets))
	if summary.MRR <= random {
		t.Errorf("L-BE* MRR %.4f at or below random %.4f", summary.MRR, random)
	}
}

func TestRankAllShape(t *testing.T) {
	s, _ := scenario(t)
	b := NewBM25Ranker(s)
	res := RankAll(b, s.Queries[:3], 7)
	if len(res) != 3 {
		t.Fatalf("RankAll = %d queries", len(res))
	}
	for q, ids := range res {
		if len(ids) != 7 {
			t.Errorf("query %s got %d results", q, len(ids))
		}
	}
}
