package match

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// Sharded is a scatter-gather wrapper over a flat, IVF, SQ8 or HNSW index: the
// arena's row range is partitioned into contiguous shards, a query batch
// is scored per shard (each shard runs the same blocked kernels the
// unsharded index would, restricted to its row range), and the per-shard
// fixed-size selection heaps are merged into the exact global top-k.
//
// Rankings are bit-identical to the wrapped index's, including tombstone
// and SQ8 re-rank semantics: every kernel scores rows with the same
// dot-product routines in the same per-row order, tombstoned rows score
// -Inf in every shard exactly as in the full scan, and the selection tie
// rule (score descending, then ascending ID) is a strict total order —
// so the union of per-shard top-k sets provably contains the global
// top-k, and merging selects exactly the rows the unsharded heap would.
// Fingerprint therefore delegates to the wrapped index unchanged:
// resharding never invalidates result caches because it never changes
// results.
//
// Like the indexes it wraps, a Sharded index is safe for concurrent
// queries once built; Append and Remove are not safe concurrently with
// queries. Appended rows extend the last shard (its upper bound tracks
// the arena tail); rebalancing is a re-wrap (NewSharded) away.
type Sharded struct {
	inner VectorIndex
	flat  *Index // the arena owner underneath inner
	// cuts holds the interior shard boundaries: shard i spans rows
	// [cuts[i-1], cuts[i]), with cuts[-1] = 0 and the last bound read
	// dynamically from the arena so appends land in the last shard.
	cuts    []int
	workers int
	stats   []shardCounter
}

var _ VectorIndex = (*Sharded)(nil)

// shardCounter is one shard's scatter counters, written atomically from
// concurrent shard tasks.
type shardCounter struct {
	batches atomic.Uint64
	queries atomic.Uint64
}

// ShardStat is a point-in-time snapshot of one shard's scatter counters:
// how many scatter tasks (one per query batch) and how many individual
// queries the shard has scored.
type ShardStat struct {
	Batches uint64 `json:"batches"`
	Queries uint64 `json:"queries"`
}

// flatOf resolves the arena-owning flat index underneath a wrappable
// index kind, or nil for kinds scatter-gather cannot partition.
func flatOf(inner VectorIndex) *Index {
	switch v := inner.(type) {
	case *Index:
		return v
	case *IVF:
		return v.flat
	case *IndexSQ8:
		return v.flat
	case *HNSW:
		return v.flat
	}
	return nil
}

// NewSharded wraps a flat, IVF, SQ8 or HNSW index for scatter-gather serving
// with the given shard count (clamped to at least 1; shards beyond the
// row count are harmless and stay empty). workers bounds the scatter
// concurrency of direct TopK/TopKBatch calls on the wrapper (<= 0
// selects GOMAXPROCS); callers driving shards through their own pool via
// Plan ignore it. Shard boundaries split the current arena evenly;
// appended rows extend the last shard.
func NewSharded(inner VectorIndex, shards, workers int) (*Sharded, error) {
	flat := flatOf(inner)
	if flat == nil {
		return nil, fmt.Errorf("match: cannot shard index of type %T", inner)
	}
	if shards < 1 {
		shards = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := flat.rows()
	cuts := make([]int, shards-1)
	for i := range cuts {
		cuts[i] = (i + 1) * n / shards
	}
	return &Sharded{
		inner:   inner,
		flat:    flat,
		cuts:    cuts,
		workers: workers,
		stats:   make([]shardCounter, shards),
	}, nil
}

// Inner returns the wrapped index.
func (s *Sharded) Inner() VectorIndex { return s.inner }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.cuts) + 1 }

// CloneWithInner returns a sharded wrapper with the same boundaries and
// scatter width over the given clone of the wrapped index — the ingest
// clone-mutate-swap path. Counters start at zero on the clone.
func (s *Sharded) CloneWithInner(inner VectorIndex) (*Sharded, error) {
	flat := flatOf(inner)
	if flat == nil {
		return nil, fmt.Errorf("match: cannot shard index of type %T", inner)
	}
	return &Sharded{
		inner:   inner,
		flat:    flat,
		cuts:    append([]int(nil), s.cuts...),
		workers: s.workers,
		stats:   make([]shardCounter, len(s.cuts)+1),
	}, nil
}

// ShardStats snapshots the per-shard scatter counters.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.stats))
	for i := range s.stats {
		out[i] = ShardStat{
			Batches: s.stats[i].batches.Load(),
			Queries: s.stats[i].queries.Load(),
		}
	}
	return out
}

// bounds returns shard si's row range [lo, hi). The last shard's upper
// bound is the live arena tail, so appended rows are always covered.
func (s *Sharded) bounds(si int) (lo, hi int) {
	if si > 0 {
		lo = s.cuts[si-1]
	}
	if si < len(s.cuts) {
		hi = s.cuts[si]
	} else {
		hi = s.flat.rows()
	}
	return lo, hi
}

// shardOf returns the shard covering arena position p.
func (s *Sharded) shardOf(p int32) int {
	lo, hi := 0, len(s.cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(p) < s.cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// note records one scatter task of b queries against shard si.
func (s *Sharded) note(si, b int) {
	s.stats[si].batches.Add(1)
	s.stats[si].queries.Add(uint64(b))
}

// Len returns the number of live indexed documents.
func (s *Sharded) Len() int { return s.inner.Len() }

// IDs returns the indexed document IDs in index order.
func (s *Sharded) IDs() []string { return s.inner.IDs() }

// Dim returns the vector dimensionality.
func (s *Sharded) Dim() int { return s.inner.Dim() }

// Append adds documents to the wrapped index; the new rows extend the
// last shard's range.
func (s *Sharded) Append(ids []string, arena []float32) error {
	return s.inner.Append(ids, arena)
}

// Remove tombstones the documents in the wrapped index; every shard's
// kernels skip tombstoned rows exactly as the unsharded scan does.
func (s *Sharded) Remove(ids []string) int { return s.inner.Remove(ids) }

// Fingerprint returns the wrapped index's fingerprint unchanged:
// scatter-gather is bit-identical to the unsharded scan, so shard layout
// is deliberately not part of the serving-result digest and resharding
// never invalidates fingerprint-keyed caches.
func (s *Sharded) Fingerprint() uint64 { return s.inner.Fingerprint() }

// TopK returns the k targets most similar to query, best first with ID
// tie-breaking — the single-query case of TopKBatch.
func (s *Sharded) TopK(query []float32, k int) []Scored {
	return s.TopKBatch(oneQuery(query), k)[0]
}

// TopKBatch answers one TopK per query: the batch is planned once,
// scattered across the shards on the wrapper's internal worker pool, and
// the per-shard selection heaps are merged into exact global rankings,
// position-aligned with queries and bit-identical to the wrapped
// index's TopKBatch.
func (s *Sharded) TopKBatch(queries [][]float32, k int) [][]Scored {
	p := s.Plan(queries, k)
	s.Scatter(p)
	return p.Merge()
}

// Scatter runs every shard task of the plan on the wrapper's internal
// worker pool (serially when one worker suffices). Callers with their
// own pool can instead invoke RunShard per shard themselves and only
// call Merge.
func (s *Sharded) Scatter(p ShardPlan) {
	n := s.Shards()
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 || n <= 1 {
		for si := 0; si < n; si++ {
			p.RunShard(si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= n {
					return
				}
				p.RunShard(si)
			}
		}()
	}
	wg.Wait()
}

// ShardPlan is one query batch prepared for scatter-gather execution:
// RunShard scores the batch against one shard (calls are independent and
// safe to run concurrently, one call per shard), and Merge — called
// after every shard ran — combines the per-shard selection heaps into
// the exact global rankings. Plans are single-use.
type ShardPlan interface {
	// RunShard scores the planned batch against shard si.
	RunShard(si int)
	// Merge combines the per-shard results into global rankings,
	// position-aligned with the planned queries.
	Merge() [][]Scored
}

// Plan prepares a query batch for scatter-gather execution without
// running it: queries are normalized (and for IVF, probed; for SQ8,
// quantized) once, so each RunShard does only its shard's share of the
// scan. TopKBatch is Plan + Scatter + Merge; callers that multiplex many
// batches over one worker pool schedule the RunShard calls themselves.
func (s *Sharded) Plan(queries [][]float32, k int) ShardPlan {
	switch v := s.inner.(type) {
	case *IVF:
		return s.planIVF(v, queries, k)
	case *IndexSQ8:
		return s.planSQ8(v, queries, k)
	case *HNSW:
		return s.planHNSW(v, queries, k)
	default:
		return s.planFlat(queries, k)
	}
}

// emptyPlan answers degenerate batches (k <= 0, no queries, empty
// index) with the unsharded paths' nil-filled result slice.
type emptyPlan struct{ b int }

// RunShard is a no-op: an empty plan has no work to scatter.
func (p *emptyPlan) RunShard(int) {}

// Merge returns one nil ranking per planned query.
func (p *emptyPlan) Merge() [][]Scored { return make([][]Scored, p.b) }

// planFlat prepares an exact scan batch: normalize queries once, then
// each shard runs the blocked tile kernel over its own row range.
func (s *Sharded) planFlat(queries [][]float32, k int) ShardPlan {
	x := s.flat
	b := len(queries)
	if k <= 0 || x.Len() == 0 || b == 0 {
		return &emptyPlan{b: b}
	}
	if k > x.Len() {
		// Same clamp as the unsharded kernel: tombstoned rows score -Inf
		// and a heap no larger than the live count provably evicts them.
		k = x.Len()
	}
	dim := x.dim
	qs := make([]float32, b*dim)
	for i, q := range queries {
		row := qs[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
	}
	return &flatPlan{s: s, x: x, b: b, k: k, qs: qs, parts: make([][]topkHeap, s.Shards())}
}

// flatPlan is the scatter state of one exact-scan batch.
type flatPlan struct {
	s     *Sharded
	x     *Index
	b, k  int
	qs    []float32    // normalized queries, row-major
	parts [][]topkHeap // per-shard per-query selection heaps
}

// RunShard scores the batch against shard si with the tiled multi-query
// kernel restricted to the shard's row range.
func (p *flatPlan) RunShard(si int) {
	p.s.note(si, p.b)
	lo, hi := p.s.bounds(si)
	if lo >= hi {
		return
	}
	x, dim, k := p.x, p.x.dim, p.k
	scoreBack := make([]float32, p.b*k)
	posBack := make([]int32, p.b*k)
	heaps := make([]topkHeap, p.b)
	for i := range heaps {
		heaps[i] = newTopkHeap(scoreBack[i*k:(i+1)*k], posBack[i*k:(i+1)*k], x.ids, k)
	}
	tile := tileRowsFor(dim)
	if tile > hi-lo {
		tile = hi - lo
	}
	scores := make([]float32, tile)
	for r0 := lo; r0 < hi; r0 += tile {
		m := tile
		if r0+m > hi {
			m = hi - r0
		}
		rows := x.data[r0*dim : (r0+m)*dim]
		for i := range heaps {
			dotRows(rows, p.qs[i*dim:(i+1)*dim], scores[:m], dim)
			x.zapDead(scores[:m], r0)
			heaps[i].merge(scores[:m], int32(r0))
		}
	}
	p.parts[si] = heaps
}

// Merge combines the per-shard heaps: every shard resident is offered to
// one global size-k heap per query, whose strict total order (score,
// then ID) reproduces the unsharded selection exactly.
func (p *flatPlan) Merge() [][]Scored {
	out := make([][]Scored, p.b)
	scoreBack := make([]float32, p.k)
	posBack := make([]int32, p.k)
	for i := 0; i < p.b; i++ {
		g := newTopkHeap(scoreBack, posBack, p.x.ids, p.k)
		for _, heaps := range p.parts {
			if heaps == nil {
				continue
			}
			h := &heaps[i]
			for j := 0; j < h.n; j++ {
				g.consider(h.score[j], h.pos[j])
			}
		}
		out[i] = g.results()
	}
	return out
}

// planIVF prepares a probed batch: probe order, candidate gathering and
// the adaptive live-count quota run once per query at plan time —
// exactly as the unsharded path computes them — and the resulting
// candidate positions are bucketed by shard for the scatter. When the
// configured probes cover every partition the plan delegates to the
// exact scan, mirroring IVF.TopKBatch's delegation.
func (s *Sharded) planIVF(v *IVF, queries [][]float32, k int) ShardPlan {
	n := v.flat.Len()
	b := len(queries)
	if k <= 0 || n == 0 || b == 0 {
		return &emptyPlan{b: b}
	}
	if v.nprobe >= v.nlist || len(v.lists) == 0 || (v.adaptive && minCandidateFactor*k >= n) {
		return s.planFlat(queries, k)
	}
	minCands := 0
	if v.adaptive {
		minCands = minCandidateFactor * k
	}
	dim := v.flat.dim
	nsh := s.Shards()
	p := &ivfPlan{
		s:  s,
		v:  v,
		b:  b,
		qs: make([]float32, b*dim),
		kq: make([]int, b),
		// cands[si][i] holds query i's probe candidates within shard si.
		cands:  make([][][]int32, nsh),
		direct: make([][]Scored, b),
		has:    make([]bool, b),
		parts:  make([][]topkHeap, nsh),
	}
	for si := range p.cands {
		p.cands[si] = make([][]int32, b)
	}
	for i, q := range queries {
		row := p.qs[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
		cands, live := v.gatherCands(row, v.nprobe, minCands)
		if live == 0 {
			// Rare: every probed partition is fully tombstoned. The
			// unsharded path answers with a flat scan; do the same here,
			// serially — correctness over parallelism for a cold corner.
			p.direct[i] = v.flat.TopK(q, k)
			p.has[i] = true
			continue
		}
		ki := k
		if ki > len(cands) {
			ki = len(cands)
		}
		p.kq[i] = ki
		for _, pos := range cands {
			si := s.shardOf(pos)
			p.cands[si][i] = append(p.cands[si][i], pos)
		}
	}
	return p
}

// ivfPlan is the scatter state of one probed batch.
type ivfPlan struct {
	s      *Sharded
	v      *IVF
	b      int
	qs     []float32
	kq     []int       // per-query heap size: min(k, len(candidates))
	cands  [][][]int32 // [shard][query] candidate positions
	direct [][]Scored  // answered at plan time (all-tombstoned probes)
	has    []bool      // direct[i] is authoritative
	parts  [][]topkHeap
}

// RunShard scores each query's candidates that fall inside shard si,
// skipping tombstones — the same per-candidate kernel as the unsharded
// probe scan.
func (p *ivfPlan) RunShard(si int) {
	p.s.note(si, p.b)
	x := p.v.flat
	dim := x.dim
	heaps := make([]topkHeap, p.b)
	for i := 0; i < p.b; i++ {
		poss := p.cands[si][i]
		if p.has[i] || len(poss) == 0 {
			continue
		}
		ki := p.kq[i]
		h := newTopkHeap(make([]float32, ki), make([]int32, ki), x.ids, ki)
		q := p.qs[i*dim : (i+1)*dim]
		for _, pos := range poss {
			if x.isDead(int(pos)) {
				continue
			}
			h.consider(dotOne(x.row(int(pos)), q), pos)
		}
		heaps[i] = h
	}
	p.parts[si] = heaps
}

// Merge combines the per-shard candidate heaps per query (plan-time
// direct answers pass through untouched).
func (p *ivfPlan) Merge() [][]Scored {
	out := make([][]Scored, p.b)
	for i := 0; i < p.b; i++ {
		if p.has[i] {
			out[i] = p.direct[i]
			continue
		}
		ki := p.kq[i]
		g := newTopkHeap(make([]float32, ki), make([]int32, ki), p.v.flat.ids, ki)
		for _, heaps := range p.parts {
			if heaps == nil {
				continue
			}
			h := &heaps[i]
			for j := 0; j < h.n; j++ {
				g.consider(h.score[j], h.pos[j])
			}
		}
		out[i] = g.results()
	}
	return out
}

// planSQ8 prepares a quantized batch: queries are normalized and
// quantized once; each shard runs the int8 tile kernel over its row
// range into a heap of the full re-rank width, so the merged global
// top-r candidate set — and therefore the exact float32 re-rank that
// follows — is bit-identical to the unsharded two-phase scan.
func (s *Sharded) planSQ8(v *IndexSQ8, queries [][]float32, k int) ShardPlan {
	n := v.flat.rows()
	b := len(queries)
	if k <= 0 || v.flat.Len() == 0 || b == 0 {
		return &emptyPlan{b: b}
	}
	dim := v.flat.dim
	r := k * v.rerank
	if r > n || r < 0 { // r < 0: k*rerank overflowed
		r = n
	}
	p := &sq8Plan{
		s:      s,
		v:      v,
		b:      b,
		k:      k,
		r:      r,
		qf:     make([]float32, b*dim),
		qc:     make([]int8, b*dim),
		qscale: make([]float32, b),
		parts:  make([][]topkHeap, s.Shards()),
	}
	for i, q := range queries {
		row := p.qf[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
		p.qscale[i] = quantizeRow(row, p.qc[i*dim:(i+1)*dim])
	}
	return p
}

// sq8Plan is the scatter state of one quantized batch.
type sq8Plan struct {
	s       *Sharded
	v       *IndexSQ8
	b, k, r int
	qf      []float32 // normalized queries (exact re-rank input)
	qc      []int8    // quantized queries
	qscale  []float32
	parts   [][]topkHeap
}

// RunShard runs the int8 tile kernel over shard si's row range, feeding
// per-query heaps of the full re-rank width r.
func (p *sq8Plan) RunShard(si int) {
	p.s.note(si, p.b)
	lo, hi := p.s.bounds(si)
	if lo >= hi {
		return
	}
	v, dim, r := p.v, p.v.flat.dim, p.r
	scoreBack := make([]float32, p.b*r)
	posBack := make([]int32, p.b*r)
	heaps := make([]topkHeap, p.b)
	for i := range heaps {
		heaps[i] = newTopkHeap(scoreBack[i*r:(i+1)*r], posBack[i*r:(i+1)*r], v.flat.ids, r)
	}
	tile := tileRowsFor(dim)
	if tile > hi-lo {
		tile = hi - lo
	}
	iscores := make([]int32, tile)
	scores := make([]float32, tile)
	for r0 := lo; r0 < hi; r0 += tile {
		m := tile
		if r0+m > hi {
			m = hi - r0
		}
		rows := v.codes[r0*dim : (r0+m)*dim]
		for i := range heaps {
			dotRowsSQ8(rows, p.qc[i*dim:(i+1)*dim], iscores[:m], dim)
			qs := p.qscale[i]
			for j := 0; j < m; j++ {
				scores[j] = float32(iscores[j]) * (qs * v.scales[r0+j])
			}
			v.flat.zapDead(scores[:m], r0)
			heaps[i].merge(scores[:m], int32(r0))
		}
	}
	p.parts[si] = heaps
}

// planHNSW prepares a graph-searched batch: the greedy descent and the
// ef-bounded layer-0 beam run once per query at plan time — the same
// candidate pool the unsharded path re-ranks — and the beam positions
// are bucketed by shard for the scatter. When the beam would cover
// every live row the plan delegates to the exact scan, mirroring
// HNSW.TopKBatch's delegation.
func (s *Sharded) planHNSW(v *HNSW, queries [][]float32, k int) ShardPlan {
	b := len(queries)
	if k <= 0 || v.flat.Len() == 0 || b == 0 {
		return &emptyPlan{b: b}
	}
	if v.entry < 0 || v.beamWidth(k) >= v.flat.Len() {
		return s.planFlat(queries, k)
	}
	dim := v.flat.dim
	nsh := s.Shards()
	p := &hnswPlan{
		s:     s,
		v:     v,
		b:     b,
		k:     k,
		qs:    make([]float32, b*dim),
		cands: make([][][]int32, nsh),
		parts: make([][]topkHeap, nsh),
	}
	for si := range p.cands {
		p.cands[si] = make([][]int32, b)
	}
	for i, q := range queries {
		row := p.qs[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
		for _, pos := range v.beamCandidates(row, k) {
			si := s.shardOf(pos)
			p.cands[si][i] = append(p.cands[si][i], pos)
		}
	}
	return p
}

// hnswPlan is the scatter state of one graph-searched batch.
type hnswPlan struct {
	s     *Sharded
	v     *HNSW
	b, k  int
	qs    []float32   // normalized queries, row-major
	cands [][][]int32 // [shard][query] beam positions
	parts [][]topkHeap
}

// RunShard re-ranks each query's beam candidates that fall inside shard
// si exactly against the float32 arena, skipping tombstones — the same
// per-candidate kernel the unsharded re-rank uses.
func (p *hnswPlan) RunShard(si int) {
	p.s.note(si, p.b)
	x := p.v.flat
	dim := x.dim
	heaps := make([]topkHeap, p.b)
	for i := 0; i < p.b; i++ {
		poss := p.cands[si][i]
		if len(poss) == 0 {
			continue
		}
		h := newTopkHeap(make([]float32, p.k), make([]int32, p.k), x.ids, p.k)
		q := p.qs[i*dim : (i+1)*dim]
		for _, pos := range poss {
			if x.isDead(int(pos)) {
				continue
			}
			h.consider(dotOne(x.row(int(pos)), q), pos)
		}
		heaps[i] = h
	}
	p.parts[si] = heaps
}

// Merge combines the per-shard beam heaps: every shard resident is
// offered to one global size-k heap per query, whose strict total order
// (score, then ID) reproduces the unsharded exact re-rank bit for bit.
func (p *hnswPlan) Merge() [][]Scored {
	out := make([][]Scored, p.b)
	scoreBack := make([]float32, p.k)
	posBack := make([]int32, p.k)
	for i := 0; i < p.b; i++ {
		g := newTopkHeap(scoreBack, posBack, p.v.flat.ids, p.k)
		for _, heaps := range p.parts {
			if heaps == nil {
				continue
			}
			h := &heaps[i]
			for j := 0; j < h.n; j++ {
				g.consider(h.score[j], h.pos[j])
			}
		}
		out[i] = g.results()
	}
	return out
}

// Merge selects each query's global top-r quantized candidates from the
// per-shard heaps, then re-ranks them exactly against the float32 arena
// — the same candidate set, in the same ascending-position order, as the
// unsharded quantized scan hands its re-rank.
func (p *sq8Plan) Merge() [][]Scored {
	out := make([][]Scored, p.b)
	scoreBack := make([]float32, p.r)
	posBack := make([]int32, p.r)
	dim := p.v.flat.dim
	for i := 0; i < p.b; i++ {
		g := newTopkHeap(scoreBack, posBack, p.v.flat.ids, p.r)
		for _, heaps := range p.parts {
			if heaps == nil {
				continue
			}
			h := &heaps[i]
			for j := 0; j < h.n; j++ {
				g.consider(h.score[j], h.pos[j])
			}
		}
		out[i] = p.v.flat.topKPositions(p.qf[i*dim:(i+1)*dim], g.positions(), p.k)
	}
	return out
}
