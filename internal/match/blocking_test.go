package match

import (
	"fmt"
	"testing"
)

func blockFixture(t *testing.T) (*Index, *Blocker, []string) {
	t.Helper()
	texts := []string{
		"pulp fiction tarantino willis",
		"sixth sense shyamalan willis",
		"godfather coppola brando",
		"alien scott weaver",
	}
	ids := []string{"t0", "t1", "t2", "t3"}
	vecs := [][]float32{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	idx, err := NewIndex(ids, vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	return idx, NewBlocker(texts), texts
}

func TestBlockerCandidates(t *testing.T) {
	_, b, _ := blockFixture(t)
	cands, ok := b.Candidates("a movie with willis")
	if !ok {
		t.Fatal("blocking failed on known token")
	}
	if len(cands) != 2 || cands[0] != 0 || cands[1] != 1 {
		t.Errorf("candidates = %v, want [0 1]", cands)
	}
	if _, ok := b.Candidates("nothing known here zzz"); ok {
		t.Error("unknown query must report !ok")
	}
	if b.Tokens() == 0 {
		t.Error("no tokens indexed")
	}
}

func TestBlockerStemskQueries(t *testing.T) {
	_, b, _ := blockFixture(t)
	// "aliens" stems to "alien" and must hit t3.
	cands, ok := b.Candidates("the aliens attack")
	if !ok || len(cands) != 1 || cands[0] != 3 {
		t.Errorf("stemmed candidates = %v ok=%v", cands, ok)
	}
}

func TestTopKBlockedSubset(t *testing.T) {
	idx, b, _ := blockFixture(t)
	// Query vector favors t2 overall, but the query text only blocks to
	// willis docs (t0, t1), so t2 cannot appear.
	got := idx.TopKBlocked(b, "review mentions willis", []float32{0, 0, 1, 0.5}, 4)
	if len(got) != 2 {
		t.Fatalf("blocked results = %v", got)
	}
	for _, s := range got {
		if s.ID == "t2" || s.ID == "t3" {
			t.Errorf("blocked ranking leaked %s", s.ID)
		}
	}
}

func TestTopKBlockedFallback(t *testing.T) {
	idx, b, _ := blockFixture(t)
	got := idx.TopKBlocked(b, "zzz qqq", []float32{0, 0, 1, 0}, 2)
	if len(got) != 2 || got[0].ID != "t2" {
		t.Errorf("fallback ranking = %v", got)
	}
}

func TestTopKBlockedAgreesOnFullBlock(t *testing.T) {
	// When every target is a candidate, blocked and full rankings agree.
	n := 50
	texts := make([]string, n)
	ids := make([]string, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		texts[i] = fmt.Sprintf("shared token%d", i)
		ids[i] = fmt.Sprintf("d%d", i)
		vecs[i] = []float32{float32(i), 1}
	}
	idx, err := NewIndex(ids, vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBlocker(texts)
	q := []float32{1, 0.1}
	full := idx.TopK(q, 10)
	blocked := idx.TopKBlocked(b, "the shared word", q, 10)
	if len(full) != len(blocked) {
		t.Fatalf("lengths differ: %d vs %d", len(full), len(blocked))
	}
	for i := range full {
		if full[i].ID != blocked[i].ID {
			t.Errorf("rank %d: %s vs %s", i, full[i].ID, blocked[i].ID)
		}
	}
}
