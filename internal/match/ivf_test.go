package match

import (
	"fmt"
	"reflect"
	"testing"
)

// randomIndex builds a flat index over n deterministic pseudo-random
// vectors of the given dimension.
func randomIndex(t testing.TB, n, dim int, seed uint64) *Index {
	t.Helper()
	ids := make([]string, n)
	vecs := make([][]float32, n)
	state := seed
	for i := range ids {
		ids[i] = fmt.Sprintf("d%04d", i)
		v := make([]float32, dim)
		for d := range v {
			state = splitmix(state)
			v[d] = float32(state%2000)/1000 - 1
		}
		vecs[i] = v
	}
	idx, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestIVFFullProbeMatchesFlatExactly(t *testing.T) {
	flat := randomIndex(t, 300, 24, 11)
	ivf := NewIVF(flat, IVFOptions{ExactRecall: true, Seed: 5})
	if ivf.NProbe() != ivf.Clusters() {
		t.Fatalf("exact-recall nprobe = %d, clusters = %d", ivf.NProbe(), ivf.Clusters())
	}
	for qi := 0; qi < 300; qi += 7 {
		q := flat.Vector(qi)
		want := flat.TopK(q, 10)
		got := ivf.TopK(q, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: full-probe IVF diverged from flat\nflat: %v\nivf:  %v", qi, want, got)
		}
	}
}

func TestIVFDefaultNProbeRecall(t *testing.T) {
	flat := randomIndex(t, 500, 32, 3)
	ivf := NewIVF(flat, IVFOptions{Seed: 9})
	hits, total := 0, 0
	for qi := 0; qi < 500; qi += 5 {
		q := flat.Vector(qi)
		exact := map[string]struct{}{}
		for _, s := range flat.TopK(q, 10) {
			exact[s.ID] = struct{}{}
		}
		for _, s := range ivf.TopK(q, 10) {
			if _, ok := exact[s.ID]; ok {
				hits++
			}
		}
		total += 10
	}
	recall := float64(hits) / float64(total)
	// Random vectors are the adversarial case for clustering; the seed
	// datasets (embedding space with real structure) do better — see the
	// top-level parity test. Require a sane floor here.
	if recall < 0.5 {
		t.Errorf("recall@10 = %.3f with default nprobe, want >= 0.5 on random vectors", recall)
	}
	t.Logf("recall@10 = %.3f (nlist=%d nprobe=%d)", recall, ivf.Clusters(), ivf.NProbe())
}

func TestIVFDeterministic(t *testing.T) {
	flat := randomIndex(t, 200, 16, 21)
	a := NewIVF(flat, IVFOptions{Seed: 4, Clusters: 12, NProbe: 3})
	b := NewIVF(flat, IVFOptions{Seed: 4, Clusters: 12, NProbe: 3})
	for qi := 0; qi < 200; qi += 13 {
		q := flat.Vector(qi)
		if !reflect.DeepEqual(a.TopK(q, 5), b.TopK(q, 5)) {
			t.Fatalf("same-seed IVF indexes rank query %d differently", qi)
		}
	}
}

func TestIVFCoversAllTargets(t *testing.T) {
	flat := randomIndex(t, 120, 8, 2)
	ivf := NewIVF(flat, IVFOptions{Seed: 1})
	seen := map[int32]int{}
	for _, list := range ivf.lists {
		for _, p := range list {
			seen[p]++
		}
	}
	if len(seen) != 120 {
		t.Fatalf("inverted lists cover %d of 120 targets", len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("target %d appears in %d lists", p, c)
		}
	}
}

func TestIVFSmallAndEdgeCases(t *testing.T) {
	// Fewer targets than requested clusters.
	flat := randomIndex(t, 3, 4, 7)
	ivf := NewIVF(flat, IVFOptions{Clusters: 64, Seed: 1})
	if ivf.Clusters() != 3 {
		t.Errorf("clusters = %d, want clamped to 3", ivf.Clusters())
	}
	got := ivf.TopKProbe(flat.Vector(0), 10, ivf.Clusters())
	if len(got) != 3 {
		t.Errorf("full-probe TopK = %v, want all 3 targets", got)
	}
	if ivf.TopK(flat.Vector(0), 0) != nil {
		t.Error("TopK(0) must be nil")
	}

	// Empty index.
	empty, err := NewIndex(nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	eivf := NewIVF(empty, IVFOptions{})
	if eivf.TopK([]float32{1, 0, 0, 0}, 5) != nil {
		t.Error("empty IVF must return nil")
	}

	// Single target.
	one, err := NewIndex([]string{"only"}, [][]float32{{1, 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	oivf := NewIVF(one, IVFOptions{Seed: 3})
	if got := oivf.TopK([]float32{1, 0}, 1); len(got) != 1 || got[0].ID != "only" {
		t.Errorf("single-target IVF = %v", got)
	}
}

func TestIVFTopKProbeClamps(t *testing.T) {
	flat := randomIndex(t, 100, 8, 13)
	ivf := NewIVF(flat, IVFOptions{Clusters: 10, NProbe: 2, Seed: 6})
	q := flat.Vector(17)
	// nprobe above nlist falls back to the exact flat scan.
	if !reflect.DeepEqual(ivf.TopKProbe(q, 5, 100), flat.TopK(q, 5)) {
		t.Error("over-probing must equal the flat ranking")
	}
	// nprobe below 1 is clamped, not a panic.
	if got := ivf.TopKProbe(q, 5, 0); len(got) == 0 {
		t.Error("nprobe 0 must clamp to 1 and still return candidates")
	}
}

func TestDefaultHeuristics(t *testing.T) {
	if DefaultClusters(0) != 1 || DefaultClusters(1) != 1 {
		t.Error("tiny corpora must get one cluster")
	}
	if c := DefaultClusters(10000); c != 100 {
		t.Errorf("DefaultClusters(10000) = %d, want 100", c)
	}
	if DefaultNProbe(1) != 1 || DefaultNProbe(7) != 4 {
		t.Error("nprobe heuristic wrong")
	}
}
