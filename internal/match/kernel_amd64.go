//go:build amd64

package match

// useFMA gates the AVX2/FMA assembly kernels; when false every scoring
// call takes the portable Go path. Initialized once from CPUID: the
// kernels need AVX2 (for the 256-bit integer ops), FMA3, and an OS that
// saves the YMM state (OSXSAVE + XCR0 bits 1-2).
var useFMA = detectFMA()

// detectFMA probes CPUID for AVX2+FMA3 support and XGETBV for OS-level
// YMM state saving — the standard x86 feature-gating dance, done here
// directly so the kernels carry no external dependency.
func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidx(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27 // leaf 1 ECX: OS uses XSAVE
		avxBit     = 1 << 28 // leaf 1 ECX: AVX
		fmaBit     = 1 << 12 // leaf 1 ECX: FMA3
		avx2Bit    = 1 << 5  // leaf 7 EBX: AVX2
	)
	_, _, ecx1, _ := cpuidx(1, 0)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 || ecx1&fmaBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS restores
	// XMM and YMM registers across context switches.
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	return ebx7&avx2Bit != 0
}

// cpuidx executes the CPUID instruction for the given leaf/subleaf.
func cpuidx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (XCR0).
func xgetbv0() (lo, hi uint32)

// dotRowsFMA scores rows contiguous dim-sized vectors at arena against
// the query q, one float32 per row into out. Implemented in
// kernel_amd64.s; callers must check useFMA.
//
//go:noescape
func dotRowsFMA(arena, q, out *float32, rows, dim int)

// dotRowsSQ8FMA computes the int32 dot of rows contiguous dim-sized
// int8 code rows against the quantized query q. Implemented in
// kernel_amd64.s; callers must check useFMA.
//
//go:noescape
func dotRowsSQ8FMA(codes, q *int8, out *int32, rows, dim int)

// dotRows fills out[r] with the dot product of query q and each of the
// len(out) contiguous dim-sized rows starting at arena[0], dispatching
// to the FMA kernel when the CPU supports it.
func dotRows(arena, q, out []float32, dim int) {
	if len(out) == 0 {
		return
	}
	if useFMA {
		dotRowsFMA(&arena[0], &q[0], &out[0], len(out), dim)
		return
	}
	dotRowsGo(arena, q, out, dim)
}

// dotRowsSQ8 is the int8 counterpart of dotRows: out[r] is the integer
// dot of the quantized query q against code row r.
func dotRowsSQ8(codes, q []int8, out []int32, dim int) {
	if len(out) == 0 {
		return
	}
	if useFMA {
		dotRowsSQ8FMA(&codes[0], &q[0], &out[0], len(out), dim)
		return
	}
	dotRowsSQ8Go(codes, q, out, dim)
}
