package match

import (
	"fmt"
	"math"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// IndexSQ8 is a scalar-quantized serving index: each normalized target
// vector is stored as int8 codes with one float32 dequantization scale
// per row, shrinking the scanned arena 4x — on corpora larger than the
// cache, the exact scan is memory-bandwidth-bound, so the quantized
// scan moves a quarter of the bytes per query. A query is first ranked
// approximately over the int8 codes (integer kernel), then the top
// Rerank()*k candidates are re-scored exactly against the retained
// float32 arena, which restores near-perfect recall while keeping the
// bulk of the scan cheap. Ties break by ascending ID in both phases,
// so rankings are deterministic like every other kernel path.
type IndexSQ8 struct {
	flat   *Index
	codes  []int8    // row-major quantized arena, aligned with flat's rows
	scales []float32 // per-row dequantization scale: value ~= code * scale
	rerank int

	// borrowed marks codes and scales as read-only storage owned by a
	// mapped snapshot section; the first mutation promotes both to heap
	// copies instead of writing through (same contract as Index.borrowed).
	borrowed bool
}

var _ VectorIndex = (*IndexSQ8)(nil)

// DefaultSQ8Rerank is the re-rank candidate multiplier used when none
// is configured: the quantized scan hands 4*k candidates to the exact
// re-rank, which holds recall@10 >= 0.99 on the paper's corpora.
const DefaultSQ8Rerank = 4

// NewIndexSQ8 quantizes the flat index's normalized rows to int8. The
// flat index is retained (not copied): the exact re-rank scores
// candidates straight out of its arena, and Flat exposes it for exact
// paths. rerank <= 0 selects DefaultSQ8Rerank.
func NewIndexSQ8(flat *Index, rerank int) *IndexSQ8 {
	if rerank <= 0 {
		rerank = DefaultSQ8Rerank
	}
	n, dim := flat.rows(), flat.dim
	x := &IndexSQ8{
		flat:   flat,
		codes:  make([]int8, n*dim),
		scales: make([]float32, n),
		rerank: rerank,
	}
	for i := 0; i < n; i++ {
		x.scales[i] = quantizeRow(flat.row(i), x.codes[i*dim:(i+1)*dim])
	}
	return x
}

// quantizeRow symmetrically quantizes v into int8 codes spanning
// [-127, 127] and returns the dequantization scale (0 for zero rows,
// whose codes stay all-zero and score 0 against everything, exactly
// like their float rows).
func quantizeRow(v []float32, out []int8) float32 {
	var maxAbs float32
	for _, f := range v {
		if f < 0 {
			f = -f
		}
		if f > maxAbs {
			maxAbs = f
		}
	}
	if maxAbs == 0 {
		return 0
	}
	inv := 127 / maxAbs
	for d, f := range v {
		c := math.Round(float64(f * inv))
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		out[d] = int8(c)
	}
	return maxAbs / 127
}

// NewIndexSQ8Parts builds a quantized index that adopts precomputed
// codes and scales instead of re-quantizing — the zero-copy binding
// path for snapshot sections, where the codes were produced by the
// same deterministic quantizeRow at save time. codes and scales may be
// read-only borrowed backing (e.g. a PROT_READ mmap): mutations
// promote them to heap copies first. rerank <= 0 selects
// DefaultSQ8Rerank.
func NewIndexSQ8Parts(flat *Index, codes []int8, scales []float32, rerank int) (*IndexSQ8, error) {
	if rerank <= 0 {
		rerank = DefaultSQ8Rerank
	}
	n, dim := flat.rows(), flat.dim
	if len(codes) != n*dim {
		return nil, fmt.Errorf("match: sq8 codes hold %d bytes for %d rows of dim %d", len(codes), n, dim)
	}
	if len(scales) != n {
		return nil, fmt.Errorf("match: sq8 scales hold %d entries for %d rows", len(scales), n)
	}
	return &IndexSQ8{flat: flat, codes: codes, scales: scales, rerank: rerank, borrowed: true}, nil
}

// promote copies borrowed code/scale storage to private heap slices
// before the first in-place mutation, so a mapped snapshot section is
// never written through.
func (x *IndexSQ8) promote() {
	if !x.borrowed {
		return
	}
	x.codes = append([]int8(nil), x.codes...)
	x.scales = append([]float32(nil), x.scales...)
	x.borrowed = false
}

// Codes returns the row-major int8 code arena, aligned with the flat
// index's rows. Callers must not mutate it; the snapshot writer
// serializes it directly.
func (x *IndexSQ8) Codes() []int8 { return x.codes }

// Scales returns the per-row dequantization scales. Callers must not
// mutate them.
func (x *IndexSQ8) Scales() []float32 { return x.scales }

// Flat returns the exact index the quantized index was built over.
func (x *IndexSQ8) Flat() *Index { return x.flat }

// Append adds documents to the underlying flat index and
// quantize-and-appends their int8 codes and scales, so the quantized
// scan covers the new rows without re-quantizing the existing ones.
func (x *IndexSQ8) Append(ids []string, arena []float32) error {
	base := x.flat.rows()
	if err := x.flat.Append(ids, arena); err != nil {
		return err
	}
	x.promote()
	dim := x.flat.dim
	x.codes = append(x.codes, make([]int8, len(ids)*dim)...)
	x.scales = append(x.scales, make([]float32, len(ids))...)
	for i := range ids {
		p := base + i
		x.scales[p] = quantizeRow(x.flat.row(p), x.codes[p*dim:(p+1)*dim])
	}
	return nil
}

// Remove tombstones the documents in the underlying flat index and
// zeroes their codes and scales, so the quantized scan scores them 0
// and the selection kernels (which consult the flat tombstones) never
// let them into the re-rank pool.
func (x *IndexSQ8) Remove(ids []string) int {
	var positions []int32
	for _, id := range ids {
		if p, ok := x.flat.lookup(id); ok {
			positions = append(positions, p)
		}
	}
	removed := x.flat.Remove(ids)
	if len(positions) > 0 {
		x.promote()
	}
	dim := x.flat.dim
	for _, p := range positions {
		row := x.codes[int(p)*dim : (int(p)+1)*dim]
		for d := range row {
			row[d] = 0
		}
		x.scales[p] = 0
	}
	return removed
}

// CloneWithFlat returns an SQ8 index over the given clone of the
// underlying flat index, deep-copying the mutable code and scale
// arenas — the ingest clone-mutate-swap path.
func (x *IndexSQ8) CloneWithFlat(flat *Index) *IndexSQ8 {
	return &IndexSQ8{
		flat:   flat,
		codes:  append([]int8(nil), x.codes...),
		scales: append([]float32(nil), x.scales...),
		rerank: x.rerank,
	}
}

// Rerank returns the re-rank candidate multiplier: the quantized scan
// selects Rerank()*k candidates for the exact float32 re-rank.
func (x *IndexSQ8) Rerank() int { return x.rerank }

// Len returns the number of indexed documents.
func (x *IndexSQ8) Len() int { return x.flat.Len() }

// IDs returns the indexed document IDs in index order.
func (x *IndexSQ8) IDs() []string { return x.flat.IDs() }

// Dim returns the vector dimensionality.
func (x *IndexSQ8) Dim() int { return x.flat.Dim() }

// fingerprintSQ8 is the kind tag keeping SQ8 digests disjoint from flat
// and IVF ones.
const fingerprintSQ8 uint64 = 0x5c8

// Fingerprint returns the serving-configuration digest of the quantized
// index: the underlying flat fingerprint mixed with the SQ8 kind tag
// and the re-rank multiplier, so re-tuning the rerank knob invalidates
// fingerprint-keyed result caches.
func (x *IndexSQ8) Fingerprint() uint64 {
	return mixFingerprint(fingerprintSQ8, x.flat.Fingerprint(), uint64(x.rerank))
}

// TopK returns the k targets most similar to query, best first with ID
// tie-breaking: a quantized scan for Rerank()*k candidates, then an
// exact re-rank.
func (x *IndexSQ8) TopK(query []float32, k int) []Scored {
	return x.TopKBatch(oneQuery(query), k)[0]
}

// TopKBatch answers one TopK per query in a single blocked pass over
// the quantized arena, position-aligned with queries and identical to
// calling TopK per query. Each int8 tile is scored for every query of
// the batch while cache-resident; each query's top Rerank()*k
// approximate candidates are then re-scored exactly against the float32
// arena.
func (x *IndexSQ8) TopKBatch(queries [][]float32, k int) [][]Scored {
	out := make([][]Scored, len(queries))
	n := x.flat.rows()
	if k <= 0 || x.flat.Len() == 0 || len(queries) == 0 {
		return out
	}
	dim := x.flat.dim
	r := k * x.rerank
	if r > n || r < 0 { // r < 0: k*rerank overflowed
		r = n
	}
	b := len(queries)
	qf := make([]float32, b*dim)
	qc := make([]int8, b*dim)
	qscale := make([]float32, b)
	for i, q := range queries {
		row := qf[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
		qscale[i] = quantizeRow(row, qc[i*dim:(i+1)*dim])
	}
	scoreBack := make([]float32, b*r)
	posBack := make([]int32, b*r)
	heaps := make([]topkHeap, b)
	for i := range heaps {
		heaps[i] = newTopkHeap(scoreBack[i*r:(i+1)*r], posBack[i*r:(i+1)*r], x.flat.ids, r)
	}
	tile := tileRowsFor(dim)
	if tile > n {
		tile = n
	}
	iscores := make([]int32, tile)
	scores := make([]float32, tile)
	for r0 := 0; r0 < n; r0 += tile {
		m := tile
		if r0+m > n {
			m = n - r0
		}
		rows := x.codes[r0*dim : (r0+m)*dim]
		for i := range heaps {
			dotRowsSQ8(rows, qc[i*dim:(i+1)*dim], iscores[:m], dim)
			qs := qscale[i]
			for j := 0; j < m; j++ {
				scores[j] = float32(iscores[j]) * (qs * x.scales[r0+j])
			}
			// Tombstoned rows must not steal re-rank slots: zap them to
			// -Inf so the candidate pool holds live rows only.
			x.flat.zapDead(scores[:m], r0)
			heaps[i].merge(scores[:m], int32(r0))
		}
	}
	for i := range heaps {
		out[i] = x.flat.topKPositions(qf[i*dim:(i+1)*dim], heaps[i].positions(), k)
	}
	return out
}
