package match

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// kernelDims covers the three kernel code paths (16-lane blocks, the
// 8-lane step, the scalar tail) and their combinations.
var kernelDims = []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 40, 48, 63, 64, 65, 96, 97, 130}

// TestDotRowsAgainstFloat64Reference checks the active float32 kernel
// (FMA assembly where supported, the Go loop elsewhere) against a
// float64 accumulation for every dim/row shape.
func TestDotRowsAgainstFloat64Reference(t *testing.T) {
	t.Logf("useFMA = %v", useFMA)
	rng := rand.New(rand.NewSource(42))
	for _, dim := range kernelDims {
		for _, rows := range []int{1, 2, 5, 17} {
			arena := make([]float32, rows*dim)
			q := make([]float32, dim)
			for i := range arena {
				arena[i] = rng.Float32()*2 - 1
			}
			for i := range q {
				q[i] = rng.Float32()*2 - 1
			}
			out := make([]float32, rows)
			dotRows(arena, q, out, dim)
			for r := 0; r < rows; r++ {
				var want float64
				for d := 0; d < dim; d++ {
					want += float64(arena[r*dim+d]) * float64(q[d])
				}
				if math.Abs(float64(out[r])-want) > 1e-4*float64(dim) {
					t.Fatalf("dim=%d rows=%d row=%d: got %v, want %v", dim, rows, r, out[r], want)
				}
			}
		}
	}
}

// TestDotRowsSQ8Exact checks the active int8 kernel against a plain
// int32 accumulation — integer math, so equality is exact on every
// path, including the Go fallback.
func TestDotRowsSQ8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range kernelDims {
		for _, rows := range []int{1, 3, 16} {
			codes := make([]int8, rows*dim)
			q := make([]int8, dim)
			for i := range codes {
				codes[i] = int8(rng.Intn(255) - 127)
			}
			for i := range q {
				q[i] = int8(rng.Intn(255) - 127)
			}
			out := make([]int32, rows)
			dotRowsSQ8(codes, q, out, dim)
			for r := 0; r < rows; r++ {
				var want int32
				for d := 0; d < dim; d++ {
					want += int32(codes[r*dim+d]) * int32(q[d])
				}
				if out[r] != want {
					t.Fatalf("dim=%d rows=%d row=%d: got %d, want %d", dim, rows, r, out[r], want)
				}
			}
		}
	}
}

// TestGoKernelsMatchDispatch pins the portable loops to the dispatched
// kernels' behavior: the int8 loops must agree exactly, the float loops
// within float32 rounding of each other (summation order differs
// between the FMA kernel and the scalar loop).
func TestGoKernelsMatchDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const dim, rows = 40, 9
	arena := make([]float32, rows*dim)
	q := make([]float32, dim)
	for i := range arena {
		arena[i] = rng.Float32()*2 - 1
	}
	for i := range q {
		q[i] = rng.Float32()*2 - 1
	}
	a, b := make([]float32, rows), make([]float32, rows)
	dotRows(arena, q, a, dim)
	dotRowsGo(arena, q, b, dim)
	for r := range a {
		if math.Abs(float64(a[r]-b[r])) > 1e-4 {
			t.Fatalf("row %d: dispatched %v vs Go %v", r, a[r], b[r])
		}
	}
	codes := make([]int8, rows*dim)
	qc := make([]int8, dim)
	for i := range codes {
		codes[i] = int8(rng.Intn(255) - 127)
	}
	for i := range qc {
		qc[i] = int8(rng.Intn(255) - 127)
	}
	ia, ib := make([]int32, rows), make([]int32, rows)
	dotRowsSQ8(codes, qc, ia, dim)
	dotRowsSQ8Go(codes, qc, ib, dim)
	if !reflect.DeepEqual(ia, ib) {
		t.Fatalf("int8 kernels disagree: %v vs %v", ia, ib)
	}
}

// kernelTestIndex builds an index with deliberate score ties: vector
// duplicates and zero rows exercise the ID tie-break on every boundary.
func kernelTestIndex(t *testing.T, n, dim int, seed int64) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]string, n)
	vecs := make([][]float32, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%04d", i)
		switch {
		case i%7 == 3 && i > 0:
			vecs[i] = vecs[i-1] // duplicate: exact score tie with i-1
		case i%11 == 5:
			vecs[i] = make([]float32, dim) // zero row: ties with every zero row
		default:
			v := make([]float32, dim)
			for d := range v {
				v[d] = rng.Float32()*2 - 1
			}
			vecs[i] = v
		}
	}
	idx, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestTopKBatchBitIdenticalToSerialTopK is the batched-kernel parity
// guarantee: at every batch size, TopKBatch must return exactly what
// one TopK call per query returns — same IDs, same float64 scores,
// same tie order.
func TestTopKBatchBitIdenticalToSerialTopK(t *testing.T) {
	const n, dim = 300, 33
	idx := kernelTestIndex(t, n, dim, 1)
	rng := rand.New(rand.NewSource(2))
	allQueries := make([][]float32, 17)
	for i := range allQueries {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		if i%5 == 4 {
			q = make([]float32, dim) // zero query: every target ties at 0
		}
		allQueries[i] = q
	}
	for _, k := range []int{1, 3, 10, n, n + 5} {
		for batch := 1; batch <= len(allQueries); batch++ {
			queries := allQueries[:batch]
			got := idx.TopKBatch(queries, k)
			if len(got) != batch {
				t.Fatalf("k=%d batch=%d: %d results", k, batch, len(got))
			}
			for qi, q := range queries {
				want := idx.TopK(q, k)
				if !reflect.DeepEqual(got[qi], want) {
					t.Fatalf("k=%d batch=%d query=%d: batched ranking diverged\nbatch:  %v\nserial: %v",
						k, batch, qi, got[qi], want)
				}
			}
		}
	}
}

// TestTopKMatchesTopKFunc cross-validates the kernel's selection heap
// against the generic TopKFunc selection over the same per-row scores:
// two independent selection implementations must agree bit-for-bit,
// ties included.
func TestTopKMatchesTopKFunc(t *testing.T) {
	const n, dim = 257, 24
	idx := kernelTestIndex(t, n, dim, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		query := make([]float32, dim)
		for d := range query {
			query[d] = rng.Float32()*2 - 1
		}
		k := 1 + rng.Intn(n+3)
		got := idx.TopK(query, k)
		q := make([]float32, dim)
		copy(q, query)
		embed.Normalize(q)
		want := TopKFunc(idx.ids, func(i int) float64 {
			return float64(dotOne(idx.row(i), q))
		}, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d: kernel heap diverged from TopKFunc\nkernel:  %v\ngeneric: %v",
				trial, k, got, want)
		}
	}
}

// TestIVFTopKBatchMatchesSerial pins IVF's batch entry point to its
// serial TopK, across adaptive, strict-probe and exhaustive configs.
func TestIVFTopKBatchMatchesSerial(t *testing.T) {
	const n, dim = 240, 16
	idx := kernelTestIndex(t, n, dim, 5)
	rng := rand.New(rand.NewSource(6))
	queries := make([][]float32, 9)
	for i := range queries {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		queries[i] = q
	}
	for _, opts := range []IVFOptions{
		{Seed: 1},
		{Seed: 1, Clusters: 8, NProbe: 2},
		{Seed: 1, ExactRecall: true},
	} {
		ivf := NewIVF(idx, opts)
		got := ivf.TopKBatch(queries, 7)
		for qi, q := range queries {
			want := ivf.TopK(q, 7)
			if !reflect.DeepEqual(got[qi], want) {
				t.Fatalf("opts %+v query %d: batch diverged from serial", opts, qi)
			}
		}
	}
}

// TestTopKBatchEdgeCases covers empty batches, k <= 0 and empty
// indexes, which must all degrade exactly like serial TopK.
func TestTopKBatchEdgeCases(t *testing.T) {
	idx := kernelTestIndex(t, 10, 8, 8)
	if got := idx.TopKBatch(nil, 5); len(got) != 0 {
		t.Errorf("nil batch = %v", got)
	}
	if got := idx.TopKBatch([][]float32{{1, 0, 0, 0, 0, 0, 0, 0}}, 0); got[0] != nil {
		t.Errorf("k=0 = %v", got[0])
	}
	empty, err := NewIndex(nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.TopKBatch([][]float32{{1, 0, 0, 0, 0, 0, 0, 0}}, 3); got[0] != nil {
		t.Errorf("empty index = %v", got[0])
	}
}
