//go:build !amd64

package match

// useFMA is always false off amd64: every scoring call takes the
// portable Go kernels.
const useFMA = false

// dotRows fills out[r] with the dot product of query q and each of the
// len(out) contiguous dim-sized rows starting at arena[0].
func dotRows(arena, q, out []float32, dim int) {
	dotRowsGo(arena, q, out, dim)
}

// dotRowsSQ8 is the int8 counterpart of dotRows: out[r] is the integer
// dot of the quantized query q against code row r.
func dotRowsSQ8(codes, q []int8, out []int32, dim int) {
	dotRowsSQ8Go(codes, q, out, dim)
}
