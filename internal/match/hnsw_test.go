package match

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"

	"github.com/tdmatch/tdmatch/internal/mmapfile"
)

// hnswGraphEqual compares two graphs structurally: levels and the
// flattened CSR adjacency.
func hnswGraphEqual(a, b *HNSW) bool {
	ao, aa := a.FlattenLinks()
	bo, ba := b.FlattenLinks()
	return reflect.DeepEqual(a.Levels(), b.Levels()) &&
		reflect.DeepEqual(ao, bo) && reflect.DeepEqual(aa, ba)
}

// TestHNSWDeterministicBuild: two builds over the same rows with the
// same seed must produce identical graphs (the property byte-identical
// snapshots rest on), and a different seed must produce a different
// level assignment.
func TestHNSWDeterministicBuild(t *testing.T) {
	flat := randomIndex(t, 400, 16, 21)
	a := NewHNSW(flat, HNSWOptions{Seed: 5})
	b := NewHNSW(flat, HNSWOptions{Seed: 5})
	if !hnswGraphEqual(a, b) {
		t.Fatal("same-seed builds produced different graphs")
	}
	c := NewHNSW(flat, HNSWOptions{Seed: 6})
	if reflect.DeepEqual(a.Levels(), c.Levels()) {
		t.Fatal("different seeds produced identical level assignments")
	}
}

// TestHNSWSmallCorpusMatchesFlatExactly: when the beam covers every
// live row the batch delegates to the exact scan, so small corpora are
// served bit-identically to flat.
func TestHNSWSmallCorpusMatchesFlatExactly(t *testing.T) {
	flat := randomIndex(t, 50, 16, 3)
	h := NewHNSW(flat, HNSWOptions{Seed: 1}) // default ef=96 >= 50 rows
	for qi := 0; qi < 50; qi += 5 {
		q := flat.Vector(qi)
		if got, want := h.TopK(q, 10), flat.TopK(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: delegated HNSW diverged from flat\nflat: %v\nhnsw: %v", qi, want, got)
		}
	}
}

// TestHNSWRecall: the graph path (beam narrower than the corpus) must
// hold recall@10 >= 0.95 against the exact scan on pseudo-random
// vectors, and every score it reports must equal the exact float32
// score (the re-rank envelope).
func TestHNSWRecall(t *testing.T) {
	flat := randomIndex(t, 2000, 32, 17)
	h := NewHNSW(flat, HNSWOptions{Seed: 4})
	if h.beamWidth(10) >= flat.Len() {
		t.Fatal("beam covers the corpus; test would not exercise graph search")
	}
	hits, total := 0, 0
	for qi := 0; qi < 2000; qi += 20 {
		q := flat.Vector(qi)
		exact := map[string]float64{}
		for _, s := range flat.TopK(q, 10) {
			exact[s.ID] = s.Score
		}
		for _, s := range h.TopK(q, 10) {
			if want, ok := exact[s.ID]; ok {
				hits++
				if s.Score != want {
					t.Fatalf("query %d: re-ranked score %v != exact %v for %s", qi, s.Score, want, s.ID)
				}
			}
		}
		total += 10
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("recall@10 = %.3f, want >= 0.95", recall)
	}
}

// TestHNSWAppendRemove: insert-on-append makes new rows reachable
// through the graph, and removed rows disappear from rankings while
// their nodes keep routing the beam.
func TestHNSWAppendRemove(t *testing.T) {
	flat := randomIndex(t, 500, 16, 9)
	h := NewHNSW(flat, HNSWOptions{M: 8, Ef: 32, EfConstruct: 48, Seed: 2})
	if h.beamWidth(1) >= flat.Len() {
		t.Fatal("beam covers the corpus; test would not exercise graph search")
	}

	// Append: each new row must be its own top-1.
	extra := randomIndex(t, 8, 16, 77)
	ids := make([]string, extra.rows())
	for i := range ids {
		ids[i] = "new-" + extra.IDs()[i]
	}
	if err := h.Append(ids, append([]float32(nil), extra.Arena()...)); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got := h.TopK(extra.Vector(i), 1)
		if len(got) != 1 || got[0].ID != id {
			t.Fatalf("appended %s not found as its own top-1: %v", id, got)
		}
	}

	// Remove: tombstoned rows never surface, results stay full-length.
	doomed := []string{"d0007", "d0100", ids[3]}
	if n := h.Remove(doomed); n != len(doomed) {
		t.Fatalf("Remove = %d, want %d", n, len(doomed))
	}
	dead := map[string]bool{}
	for _, id := range doomed {
		dead[id] = true
	}
	for qi := 0; qi < 500; qi += 25 {
		for _, s := range h.TopK(flat.Vector(qi), 10) {
			if dead[s.ID] {
				t.Fatalf("tombstoned %s served for query %d", s.ID, qi)
			}
		}
	}
	if want := 500 + 8 - 3; h.Len() != want {
		t.Fatalf("Len = %d, want %d", h.Len(), want)
	}
}

// TestHNSWCloneWithFlat: a clone over a cloned flat serves identically,
// and mutating the clone leaves the original untouched.
func TestHNSWCloneWithFlat(t *testing.T) {
	flat := randomIndex(t, 300, 16, 13)
	h := NewHNSW(flat, HNSWOptions{M: 8, Ef: 24, EfConstruct: 32, Seed: 3})
	cl := h.CloneWithFlat(flat.Clone())
	q := flat.Vector(7)
	if got, want := cl.TopK(q, 10), h.TopK(q, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("clone diverged before mutation:\n got %v\nwant %v", got, want)
	}
	if err := cl.Append([]string{"zz"}, flat.Vector(0)); err != nil {
		t.Fatal(err)
	}
	if cl.Remove([]string{"d0007"}) != 1 {
		t.Fatal("Remove on clone failed")
	}
	if h.Len() != 300 || cl.Len() != 300 {
		t.Fatalf("lens diverged wrong: orig %d clone %d", h.Len(), cl.Len())
	}
	if !hnswGraphEqual(h, NewHNSW(flat, HNSWOptions{M: 8, Ef: 24, EfConstruct: 32, Seed: 3})) {
		t.Fatal("mutating the clone changed the original graph")
	}
}

// TestHNSWFingerprint: the digest must react to every tuning knob and
// to flat mutations underneath.
func TestHNSWFingerprint(t *testing.T) {
	flat := randomIndex(t, 60, 8, 1)
	base := NewHNSW(flat, HNSWOptions{Seed: 1}).Fingerprint()
	if NewHNSW(flat, HNSWOptions{M: 8, Seed: 1}).Fingerprint() == base {
		t.Fatal("M change kept the fingerprint")
	}
	if NewHNSW(flat, HNSWOptions{Ef: 33, Seed: 1}).Fingerprint() == base {
		t.Fatal("ef change kept the fingerprint")
	}
	if NewHNSW(flat, HNSWOptions{EfConstruct: 222, Seed: 1}).Fingerprint() == base {
		t.Fatal("efConstruct change kept the fingerprint")
	}
	if NewHNSW(flat, HNSWOptions{Seed: 2}).Fingerprint() == base {
		t.Fatal("seed change kept the fingerprint")
	}
	h := NewHNSW(flat, HNSWOptions{Seed: 1})
	if h.Remove([]string{flat.IDs()[0]}) != 1 {
		t.Fatal("Remove failed")
	}
	if h.Fingerprint() == base {
		t.Fatal("flat mutation kept the fingerprint")
	}
}

// mapInt32s writes the given int32 slices to one file back to back,
// maps it read-only, and returns the mapped views plus the file path —
// the graph-section analogue of mapNormalizedArena.
func mapInt32s(t *testing.T, parts ...[]int32) ([][]int32, string) {
	t.Helper()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	buf := make([]byte, total*4)
	off := 0
	for _, p := range parts {
		for _, v := range p {
			binary.LittleEndian.PutUint32(buf[off:], uint32(v))
			off += 4
		}
	}
	path := filepath.Join(t.TempDir(), "graph")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := mmapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	data := m.Data()
	all := unsafe.Slice((*int32)(unsafe.Pointer(&data[0])), total)
	out := make([][]int32, len(parts))
	off = 0
	for i, p := range parts {
		out[i] = all[off : off+len(p) : off+len(p)]
		off += len(p)
	}
	return out, path
}

// TestBorrowedHNSWPartsMatchesBuilt: a graph bound from mapped CSR
// sections must serve bit-identically to the built one, stay read-only
// under queries and Remove (the graph is untouched), and promote to
// heap copies on the first graph mutation (Append) without writing
// through to the file.
func TestBorrowedHNSWPartsMatchesBuilt(t *testing.T) {
	flat := randomIndex(t, 300, 16, 31)
	opts := HNSWOptions{M: 8, Ef: 24, EfConstruct: 32, Seed: 6}
	built := NewHNSW(flat, opts)
	offs, adj := built.FlattenLinks()
	mapped, path := mapInt32s(t, built.Levels(), offs, adj)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bound, err := NewHNSWParts(flat.Clone(), mapped[0], mapped[1], mapped[2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bound.Borrowed() {
		t.Fatal("fresh parts-bound graph reports Borrowed() == false")
	}
	if bound.Fingerprint() != built.Fingerprint() {
		t.Fatal("parts-bound fingerprint diverged from built")
	}
	for qi := 0; qi < 300; qi += 17 {
		q := flat.Vector(qi)
		if got, want := bound.TopK(q, 10), built.TopK(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: parts-bound graph diverged\nbuilt: %v\nbound: %v", qi, want, got)
		}
	}
	if !bound.Borrowed() {
		t.Fatal("read path promoted the graph")
	}

	// Remove tombstones rows in the flat only; the mapped graph stays
	// borrowed and the file untouched.
	if n := bound.Remove([]string{"d0005"}); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	if !bound.Borrowed() {
		t.Fatal("Remove promoted the graph (it mutates only the flat)")
	}

	// Append inserts into the graph: must promote, not write through.
	if err := bound.Append([]string{"zz"}, flat.Vector(0)); err != nil {
		t.Fatal(err)
	}
	if bound.Borrowed() {
		t.Fatal("Append did not promote the borrowed graph")
	}
	if got := bound.TopK(flat.Vector(0), 2); len(got) < 1 {
		t.Fatalf("appended doc not served: %v", got)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("mutation wrote through to the mapped graph file")
	}
}

// TestHNSWPartsValidation: corrupt section shapes must be rejected.
func TestHNSWPartsValidation(t *testing.T) {
	flat := randomIndex(t, 40, 8, 2)
	opts := HNSWOptions{M: 4, Seed: 1}
	built := NewHNSW(flat, opts)
	offs, adj := built.FlattenLinks()
	levels := built.Levels()

	if _, err := NewHNSWParts(flat, levels[:len(levels)-1], offs, adj, opts); err == nil {
		t.Fatal("short levels accepted")
	}
	if _, err := NewHNSWParts(flat, levels, offs[:len(offs)-1], adj, opts); err == nil {
		t.Fatal("short offsets accepted")
	}
	if _, err := NewHNSWParts(flat, levels, offs, adj[:len(adj)-1], opts); err == nil {
		t.Fatal("truncated adjacency accepted")
	}
	badLevels := append([]int32(nil), levels...)
	badLevels[0] = -1
	if _, err := NewHNSWParts(flat, badLevels, offs, adj, opts); err == nil {
		t.Fatal("negative level accepted")
	}
	badAdj := append([]int32(nil), adj...)
	badAdj[0] = int32(flat.rows())
	if _, err := NewHNSWParts(flat, levels, offs, badAdj, opts); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
}

// TestHNSWDegenerate covers empty indexes, k <= 0 and k above the live
// count: the unsharded nil-result conventions must hold.
func TestHNSWDegenerate(t *testing.T) {
	empty, err := NewIndex(nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHNSW(empty, HNSWOptions{})
	q := make([]float32, 8)
	q[0] = 1
	if got := h.TopK(q, 3); got != nil {
		t.Errorf("empty-index TopK = %v, want nil", got)
	}
	if err := h.Append([]string{"a", "b"}, []float32{1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if got := h.TopK(q, 0); got != nil {
		t.Errorf("k=0 TopK = %v, want nil", got)
	}
	if got := h.TopK(q, 10); len(got) != 2 {
		t.Errorf("k>live TopK returned %d results, want 2", len(got))
	}
	if got := h.TopKBatch(nil, 3); len(got) != 0 {
		t.Errorf("empty-batch TopKBatch = %v, want empty", got)
	}
}
