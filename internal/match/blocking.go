package match

import (
	"sort"

	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// Blocker implements token blocking, the classic entity-resolution
// speed-up the paper lists as future work (§VII): instead of scoring a
// query against every target, only targets sharing at least one processed
// token with the query are scored. On corpora with selective vocabulary
// this prunes most of the candidate set with little quality loss; the
// blocking ablation benchmark quantifies the trade-off.
type Blocker struct {
	pre      textproc.Preprocessor
	postings map[string][]int32 // token -> target positions (sorted)
	nTargets int
}

// NewBlocker indexes target documents (aligned with an Index built over
// the same ID order) by their processed tokens.
func NewBlocker(texts []string) *Blocker {
	b := &Blocker{
		pre:      textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: 1},
		postings: make(map[string][]int32),
		nTargets: len(texts),
	}
	for i, text := range texts {
		seen := map[string]struct{}{}
		for _, tok := range b.pre.Tokens(text) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			b.postings[tok] = append(b.postings[tok], int32(i))
		}
	}
	return b
}

// Tokens returns the number of distinct indexed tokens.
func (b *Blocker) Tokens() int { return len(b.postings) }

// Candidates returns the sorted positions of targets sharing at least one
// token with the query text. The boolean reports whether blocking was
// effective; when the query has no known tokens it returns (nil, false)
// and the caller should fall back to the full scan.
func (b *Blocker) Candidates(query string) ([]int32, bool) {
	seen := map[int32]struct{}{}
	known := false
	for _, tok := range b.pre.Tokens(query) {
		posting, ok := b.postings[tok]
		if !ok {
			continue
		}
		known = true
		for _, p := range posting {
			seen[p] = struct{}{}
		}
	}
	if !known {
		return nil, false
	}
	out := make([]int32, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// TopKBlocked ranks only the blocker's candidates for the query text with
// the index's cosine scores, falling back to the full TopK when blocking
// yields nothing.
func (x *Index) TopKBlocked(b *Blocker, queryText string, query []float32, k int) []Scored {
	cands, ok := b.Candidates(queryText)
	if !ok || len(cands) == 0 {
		return x.TopK(query, k)
	}
	q := make([]float32, x.dim)
	copy(q, query)
	embed.Normalize(q)
	return x.topKPositions(q, cands, k)
}
