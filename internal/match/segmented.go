package match

import (
	"fmt"
	"sort"
)

// fingerprintSeg tags Segmented fingerprints (see mixFingerprint).
const fingerprintSeg = 0x5e9

// SealFunc wraps a freshly sealed flat segment into its serving form —
// the model layer supplies the kind wrap (IVF clustering, SQ8
// quantization, sharding); ordinal is the segment's position in the
// stack, so wraps that need a seed can derive a deterministic one per
// segment.
type SealFunc func(flat *Index, ordinal int) VectorIndex

// Segmented is an LSM-style stack of index segments serving one logical
// VectorIndex: a list of sealed immutable segments (typically one large
// base from the last full build plus small sealed deltas) and one small
// mutable flat delta segment that absorbs appends. Removals of sealed
// rows never touch the shared segment storage — they land in a
// per-clone tombstone overlay — so Clone costs O(delta + tombstones)
// regardless of corpus size, which is what makes the serving layer's
// clone-mutate-swap ingest cheap at any scale.
//
// Queries fan out to every segment and merge the per-segment rankings
// under the global (score desc, ID asc) order. For exact segment kinds
// the merged ranking is bit-identical to a monolithic flat index over
// the same live rows: per-row scores do not depend on row placement,
// and each sealed segment is asked for k plus its tombstone count, so
// the union of per-segment answers provably contains the global top k.
type Segmented struct {
	dim    int
	sealed []sealedSeg // immutable, shared across clones
	delta  *Index      // mutable, owned by this clone

	// dead overlays tombstones onto sealed segments: the key names the
	// segment ordinal and document ID, so a document that is removed,
	// re-appended and sealed again can later be removed from its new
	// segment without resurrecting the old row.
	dead      map[deadKey]struct{}
	deadBySeg []int // tombstone count per sealed segment

	seal     SealFunc
	maxDelta int // auto-seal threshold in delta rows; <= 0 disables

	epoch uint64 // mutation counter, mixed into Fingerprint
}

type deadKey struct {
	seg int32
	id  string
}

type sealedSeg struct {
	idx  VectorIndex
	flat *Index // the segment's row storage, for ID membership lookups
}

var _ VectorIndex = (*Segmented)(nil)

// NewSegmented builds a segment stack with base as the sealed base
// segment (nil or empty for a from-empty stack) and an empty delta.
// seal wraps future sealed segments; maxDelta is the delta row count
// that triggers an automatic seal on Append (<= 0 never auto-seals).
func NewSegmented(base VectorIndex, dim int, seal SealFunc, maxDelta int) (*Segmented, error) {
	delta, err := NewIndexArena(nil, nil, dim)
	if err != nil {
		return nil, err
	}
	s := &Segmented{
		dim:      dim,
		delta:    delta,
		dead:     map[deadKey]struct{}{},
		seal:     seal,
		maxDelta: maxDelta,
	}
	if base != nil {
		flat := segFlat(base)
		if flat == nil {
			return nil, fmt.Errorf("match: unsupported base segment type %T", base)
		}
		if flat.Dim() != dim {
			return nil, fmt.Errorf("match: base segment dim %d != %d", flat.Dim(), dim)
		}
		primeLookup(flat)
		s.sealed = []sealedSeg{{idx: base, flat: flat}}
		s.deadBySeg = []int{0}
	}
	return s, nil
}

// segFlat extracts the flat row storage backing any supported segment
// kind.
func segFlat(v VectorIndex) *Index {
	switch ix := v.(type) {
	case *Index:
		return ix
	case *IVF:
		return ix.flat
	case *IndexSQ8:
		return ix.flat
	case *HNSW:
		return ix.flat
	case *Sharded:
		return ix.flat
	default:
		return nil
	}
}

// primeLookup forces the flat's lazy ID-position map to exist. Sealed
// segments are shared across clones and read concurrently, so the map
// must be materialized before the segment becomes immutable — after
// priming, lookup only reads.
func primeLookup(flat *Index) {
	flat.lookup("")
}

// Len returns the number of live documents across all segments.
func (s *Segmented) Len() int {
	n := s.delta.Len()
	for i, seg := range s.sealed {
		n += seg.idx.Len() - s.deadBySeg[i]
	}
	return n
}

// IDs returns the document IDs of every segment row in segment order
// (sealed stack first, then the delta), including tombstoned rows —
// like Index.IDs, Len reports the live count.
func (s *Segmented) IDs() []string {
	out := make([]string, 0, len(s.delta.IDs()))
	for _, seg := range s.sealed {
		out = append(out, seg.idx.IDs()...)
	}
	return append(out, s.delta.IDs()...)
}

// Dim returns the vector dimensionality.
func (s *Segmented) Dim() int { return s.dim }

// Segments returns the number of sealed segments in the stack.
func (s *Segmented) Segments() int { return len(s.sealed) }

// DeltaLen returns the number of live documents in the mutable delta
// segment.
func (s *Segmented) DeltaLen() int { return s.delta.Len() }

// Tombstones returns the number of sealed rows masked by the tombstone
// overlay (delta-internal tombstones not included).
func (s *Segmented) Tombstones() int { return len(s.dead) }

// Base returns the wrapped index of the base (oldest sealed) segment —
// the one carrying the configured index kind — or nil when the stack
// has no sealed segment yet. Tests and stats introspect through it.
func (s *Segmented) Base() VectorIndex {
	if len(s.sealed) == 0 {
		return nil
	}
	return s.sealed[0].idx
}

// ShardedBase returns the first sealed segment that is shard-wrapped,
// or nil — the serving layer reads scatter-gather stats through it.
func (s *Segmented) ShardedBase() *Sharded {
	for _, seg := range s.sealed {
		if sh, ok := seg.idx.(*Sharded); ok {
			return sh
		}
	}
	return nil
}

// SegmentManifest returns the live document IDs of every segment in
// stack order, the mutable delta last — the persistence layer's
// segment manifest. Tombstoned rows (overlay and delta-internal) are
// excluded, so concatenating the lists enumerates exactly the live
// documents.
func (s *Segmented) SegmentManifest() [][]string {
	out := make([][]string, 0, len(s.sealed)+1)
	for i, seg := range s.sealed {
		f := seg.flat
		ids := make([]string, 0, f.Len()-s.deadBySeg[i])
		for r := 0; r < f.rows(); r++ {
			if f.isDead(r) {
				continue
			}
			if _, gone := s.dead[deadKey{seg: int32(i), id: f.ids[r]}]; gone {
				continue
			}
			ids = append(ids, f.ids[r])
		}
		out = append(out, ids)
	}
	ids := make([]string, 0, s.delta.Len())
	for r := 0; r < s.delta.rows(); r++ {
		if !s.delta.isDead(r) {
			ids = append(ids, s.delta.ids[r])
		}
	}
	return append(out, ids)
}

// RewrapBase replaces the base sealed segment's serving wrapper with
// rewrap(current wrapper) — how the serving layer re-shards without
// rebuilding the underlying index. The sealed slice is copied first so
// clones sharing it are unaffected; the epoch is untouched (for exact
// wrappers neither rankings nor fingerprints change). Not safe
// concurrently with queries.
func (s *Segmented) RewrapBase(rewrap func(VectorIndex) VectorIndex) {
	if len(s.sealed) == 0 {
		return
	}
	idx := rewrap(s.sealed[0].idx)
	flat := segFlat(idx)
	if flat == nil {
		return
	}
	sealed := append([]sealedSeg(nil), s.sealed...)
	sealed[0] = sealedSeg{idx: idx, flat: flat}
	s.sealed = sealed
}

// Fingerprint returns the serving-configuration digest of the stack:
// the segmented kind tag, shape, every segment's own fingerprint and
// the mutation epoch (every Append/Remove/Seal/Compact bumps it).
func (s *Segmented) Fingerprint() uint64 {
	parts := make([]uint64, 0, len(s.sealed)+5)
	parts = append(parts, fingerprintSeg, uint64(s.dim), uint64(len(s.sealed)),
		uint64(len(s.dead)), s.epoch)
	for _, seg := range s.sealed {
		parts = append(parts, seg.idx.Fingerprint())
	}
	parts = append(parts, s.delta.Fingerprint())
	return mixFingerprint(parts...)
}

// liveIn reports whether id is a live document of sealed segment i.
func (s *Segmented) liveIn(i int, id string) bool {
	if _, ok := s.sealed[i].flat.lookup(id); !ok {
		return false
	}
	_, gone := s.dead[deadKey{seg: int32(i), id: id}]
	return !gone
}

// Has reports whether id is a live document of any segment.
func (s *Segmented) Has(id string) bool {
	if _, ok := s.delta.lookup(id); ok {
		return true
	}
	for i := range s.sealed {
		if s.liveIn(i, id) {
			return true
		}
	}
	return false
}

// Append adds documents to the mutable delta segment (arena layout as
// in Index.Append). IDs must not collide with any live document of the
// stack; tombstoned IDs may be re-appended. When the delta reaches the
// auto-seal threshold it is sealed afterwards.
func (s *Segmented) Append(ids []string, arena []float32) error {
	for _, id := range ids {
		for i := range s.sealed {
			if s.liveIn(i, id) {
				return fmt.Errorf("match: append of already-indexed document %q", id)
			}
		}
	}
	if err := s.delta.Append(ids, arena); err != nil {
		return err
	}
	s.epoch++
	if s.maxDelta > 0 && s.delta.Len() >= s.maxDelta && s.seal != nil {
		return s.Seal()
	}
	return nil
}

// Remove tombstones the documents with the given IDs, returning how
// many were present. Delta rows are tombstoned in the delta itself;
// sealed rows land in the overlay — shared sealed storage is never
// written.
func (s *Segmented) Remove(ids []string) int {
	removed := 0
	for _, id := range ids {
		if n := s.delta.Remove([]string{id}); n > 0 {
			removed++
			continue
		}
		// Newest sealed segment first: at most one sealed occurrence is
		// live, but searching newest-first keeps the scan short for
		// recently sealed documents.
		for i := len(s.sealed) - 1; i >= 0; i-- {
			if s.liveIn(i, id) {
				s.dead[deadKey{seg: int32(i), id: id}] = struct{}{}
				s.deadBySeg[i]++
				removed++
				break
			}
		}
	}
	if removed > 0 {
		s.epoch++
	}
	return removed
}

// Seal freezes the current delta into a new sealed segment (compacting
// away delta-internal tombstones) and starts a fresh empty delta. An
// empty delta is a no-op. The sealed index is produced by the stack's
// SealFunc, or kept as the compacted flat when none is configured.
func (s *Segmented) Seal() error {
	if s.delta.Len() == 0 {
		if s.delta.rows() > 0 {
			// All-tombstone delta: drop the dead rows, keep the stack as is.
			delta, err := NewIndexArena(nil, nil, s.dim)
			if err != nil {
				return err
			}
			s.delta = delta
			s.epoch++
		}
		return nil
	}
	flat, err := compactFlat(s.dim, []*Index{s.delta}, nil, nil)
	if err != nil {
		return err
	}
	idx := VectorIndex(flat)
	if s.seal != nil {
		idx = s.seal(flat, len(s.sealed))
	}
	sf := segFlat(idx)
	if sf == nil {
		return fmt.Errorf("match: seal produced unsupported segment type %T", idx)
	}
	primeLookup(sf)
	// The sealed slice is shared with clones; append via full copy so a
	// sibling clone sealing concurrently-cloned state never observes a
	// shared backing array write.
	s.sealed = append(append([]sealedSeg(nil), s.sealed...), sealedSeg{idx: idx, flat: sf})
	s.deadBySeg = append(append([]int(nil), s.deadBySeg...), 0)
	delta, err := NewIndexArena(nil, nil, s.dim)
	if err != nil {
		return err
	}
	s.delta = delta
	s.epoch++
	return nil
}

// AppendSealed pushes a pre-built sealed segment onto the top of the
// stack without going through the delta — the snapshot binding path,
// which reconstructs sealed segments directly over mapped arenas. The
// segment must wrap a supported flat type (Index, IVF, IndexSQ8, HNSW,
// or a Sharded of one of those) of the stack's dimensionality; the caller
// guarantees its IDs do not collide with other segments (the snapshot
// writer serialized a consistent manifest, and section checksums
// reject torn files).
func (s *Segmented) AppendSealed(idx VectorIndex) error {
	sf := segFlat(idx)
	if sf == nil {
		return fmt.Errorf("match: append of unsupported sealed segment type %T", idx)
	}
	if sf.Dim() != s.dim {
		return fmt.Errorf("match: sealed segment dim %d on stack of dim %d", sf.Dim(), s.dim)
	}
	primeLookup(sf)
	s.sealed = append(append([]sealedSeg(nil), s.sealed...), sealedSeg{idx: idx, flat: sf})
	s.deadBySeg = append(append([]int(nil), s.deadBySeg...), 0)
	s.epoch++
	return nil
}

// Compact merges every live row of the stack into one sealed base
// segment (wrapped by the SealFunc with ordinal 0) plus a fresh empty
// delta, dropping all tombstones. Row order is segment order, which
// does not affect rankings: scores are per-row and ties break by ID.
func (s *Segmented) Compact() error {
	flats := make([]*Index, 0, len(s.sealed)+1)
	for _, seg := range s.sealed {
		flats = append(flats, seg.flat)
	}
	deadOf := func(seg int, id string) bool {
		_, gone := s.dead[deadKey{seg: int32(seg), id: id}]
		return gone
	}
	flat, err := compactFlat(s.dim, append(flats, s.delta), deadOf, []int{len(flats)})
	if err != nil {
		return err
	}
	idx := VectorIndex(flat)
	if s.seal != nil {
		idx = s.seal(flat, 0)
	}
	sf := segFlat(idx)
	if sf == nil {
		return fmt.Errorf("match: seal produced unsupported segment type %T", idx)
	}
	primeLookup(sf)
	s.sealed = []sealedSeg{{idx: idx, flat: sf}}
	s.deadBySeg = []int{0}
	s.dead = map[deadKey]struct{}{}
	delta, err := NewIndexArena(nil, nil, s.dim)
	if err != nil {
		return err
	}
	s.delta = delta
	s.epoch++
	return nil
}

// compactFlat concatenates the live rows of the given flats into one
// fresh flat index. deadOf (optional) masks additional overlay
// tombstones by (segment ordinal, id); ordinals listed in deltaOrds
// are delta segments whose rows are never overlay-masked.
func compactFlat(dim int, flats []*Index, deadOf func(seg int, id string) bool, deltaOrds []int) (*Index, error) {
	isDelta := map[int]bool{}
	for _, o := range deltaOrds {
		isDelta[o] = true
	}
	var ids []string
	var arena []float32
	for si, f := range flats {
		for i := 0; i < f.rows(); i++ {
			if f.isDead(i) {
				continue
			}
			if deadOf != nil && !isDelta[si] && deadOf(si, f.ids[i]) {
				continue
			}
			ids = append(ids, f.ids[i])
			arena = append(arena, f.row(i)...)
		}
	}
	// The source rows are already normalized; adopt them as-is. Running
	// them through NewIndexArena would normalize a second time, which
	// perturbs low-order bits (‖v‖ rounds differently near 1) and breaks
	// the sealed-vs-monolithic bit-identity contract.
	if len(arena) != len(ids)*dim {
		return nil, fmt.Errorf("match: compacted arena holds %d floats for %d vectors of dim %d",
			len(arena), len(ids), dim)
	}
	return &Index{ids: ids, data: arena, dim: dim}, nil
}

// Clone returns an independent stack sharing the immutable sealed
// segments and deep-copying only the delta and the tombstone overlay —
// O(delta + tombstones), never O(corpus).
func (s *Segmented) Clone() *Segmented {
	ns := &Segmented{
		dim:       s.dim,
		sealed:    s.sealed,
		delta:     s.delta.Clone(),
		dead:      make(map[deadKey]struct{}, len(s.dead)),
		deadBySeg: append([]int(nil), s.deadBySeg...),
		seal:      s.seal,
		maxDelta:  s.maxDelta,
		epoch:     s.epoch,
	}
	for k := range s.dead {
		ns.dead[k] = struct{}{}
	}
	return ns
}

// TopK returns the k live documents most similar to query, best first
// with ID tie-breaking — the per-segment rankings merged under the
// global order.
func (s *Segmented) TopK(query []float32, k int) []Scored {
	return s.TopKBatch(oneQuery(query), k)[0]
}

// TopKBatch answers one TopK per query, position-aligned with queries.
// Each sealed segment is queried through its own (possibly batched and
// sharded) kernel for k plus its tombstone count, overlay-tombstoned
// hits are filtered, and the per-segment rankings merge under
// (score desc, ID asc) — for exact segment kinds the result is
// bit-identical to a monolithic flat index over the same live rows.
func (s *Segmented) TopKBatch(queries [][]float32, k int) [][]Scored {
	out := make([][]Scored, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	// One ranking list per (segment, query); a single segment answers
	// the whole batch in one call to keep its blocked kernels hot.
	parts := make([][][]Scored, 0, len(s.sealed)+1)
	for i, seg := range s.sealed {
		if seg.idx.Len() == 0 {
			continue
		}
		res := seg.idx.TopKBatch(queries, k+s.deadBySeg[i])
		if s.deadBySeg[i] > 0 {
			for qi := range res {
				res[qi] = s.filterDead(i, res[qi])
			}
		}
		parts = append(parts, res)
	}
	if s.delta.Len() > 0 {
		parts = append(parts, s.delta.TopKBatch(queries, k))
	}
	for qi := range queries {
		lists := make([][]Scored, len(parts))
		for pi := range parts {
			lists[pi] = parts[pi][qi]
		}
		out[qi] = mergeScored(lists, k)
	}
	return out
}

// filterDead drops overlay-tombstoned hits of sealed segment i from a
// ranking, in place.
func (s *Segmented) filterDead(i int, ranked []Scored) []Scored {
	live := ranked[:0]
	for _, r := range ranked {
		if _, gone := s.dead[deadKey{seg: int32(i), id: r.ID}]; !gone {
			live = append(live, r)
		}
	}
	return live
}

// mergeScored merges per-segment rankings (each already best-first)
// into the global top k under (score desc, ID asc) — the same order
// every index kind produces, so the merge is a plain k-selection over
// the union of candidates.
func mergeScored(lists [][]Scored, k int) []Scored {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	cands := make([]Scored, 0, total)
	for _, l := range lists {
		cands = append(cands, l...)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
