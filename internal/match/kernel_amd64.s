// AVX2/FMA scoring kernels for the match hot path. Each routine scores
// one (normalized) query against a block of contiguous arena rows,
// writing one score per row — the selection heaps consume the score
// buffer in Go. Dimensions are handled generically: a 16-lane main
// loop, an 8-lane step, and a scalar tail, so any Dim works; rows of
// typical dims (96, 64, 40) stay entirely in the vector loops.
//
// Callers must gate on useFMA (see kernel_amd64.go); these routines
// execute AVX2/FMA3 instructions unconditionally.

//go:build amd64

#include "textflag.h"

// func dotRowsFMA(arena, q, out *float32, rows, dim int)
//
// out[r] = dot(arena[r*dim:(r+1)*dim], q[:dim]) for r in [0, rows).
TEXT ·dotRowsFMA(SB), NOSPLIT, $0-40
	MOVQ  arena+0(FP), DI
	MOVQ  q+8(FP), SI
	MOVQ  out+16(FP), DX
	MOVQ  rows+24(FP), CX
	MOVQ  dim+32(FP), R8
	TESTQ CX, CX
	JE    fdone

frow:
	MOVQ   SI, BX  // query cursor (the row cursor DI advances in place)
	MOVQ   R8, R11 // dims left in this row
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

fblk16:
	CMPQ    R11, $16
	JLT     fblk8
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	VFMADD231PS (BX), Y2, Y0
	VFMADD231PS 32(BX), Y3, Y1
	ADDQ    $64, DI
	ADDQ    $64, BX
	SUBQ    $16, R11
	JMP     fblk16

fblk8:
	CMPQ    R11, $8
	JLT     freduce
	VMOVUPS (DI), Y2
	VFMADD231PS (BX), Y2, Y0
	ADDQ    $32, DI
	ADDQ    $32, BX
	SUBQ    $8, R11

freduce:
	// Horizontal sum of Y0+Y1 into the low lane of X0.
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0

	TESTQ  R11, R11
	JE     fstore
ftail:
	VMOVSS (DI), X2
	VFMADD231SS (BX), X2, X0
	ADDQ   $4, DI
	ADDQ   $4, BX
	DECQ   R11
	JNZ    ftail

fstore:
	VMOVSS X0, (DX)
	ADDQ   $4, DX
	DECQ   CX
	JNZ    frow

fdone:
	VZEROUPPER
	RET

// func dotRowsSQ8FMA(codes, q *int8, out *int32, rows, dim int)
//
// out[r] = sum over d of int32(codes[r*dim+d]) * int32(q[d]), the
// integer part of the SQ8 approximate score (per-row and query scales
// are applied by the Go caller). 16 int8 lanes per main step:
// sign-extend to int16, VPMADDWD to 8 int32 partial sums, accumulate
// in Y0; an 8-lane step accumulates in X4 and a scalar loop takes the
// remainder.
TEXT ·dotRowsSQ8FMA(SB), NOSPLIT, $0-40
	MOVQ  codes+0(FP), DI
	MOVQ  q+8(FP), SI
	MOVQ  out+16(FP), DX
	MOVQ  rows+24(FP), CX
	MOVQ  dim+32(FP), R8
	TESTQ CX, CX
	JE    qdone

qrow:
	MOVQ  SI, BX
	MOVQ  R8, R11
	VPXOR Y0, Y0, Y0
	VPXOR X4, X4, X4

qblk16:
	CMPQ      R11, $16
	JLT       qblk8
	VPMOVSXBW (DI), Y2
	VPMOVSXBW (BX), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ      $16, DI
	ADDQ      $16, BX
	SUBQ      $16, R11
	JMP       qblk16

qblk8:
	CMPQ      R11, $8
	JLT       qreduce
	VPMOVSXBW (DI), X2
	VPMOVSXBW (BX), X3
	VPMADDWD  X3, X2, X2
	VPADDD    X2, X4, X4
	ADDQ      $8, DI
	ADDQ      $8, BX
	SUBQ      $8, R11

qreduce:
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPADDD       X4, X0, X0
	VPHADDD      X0, X0, X0
	VPHADDD      X0, X0, X0
	VMOVD        X0, AX

	TESTQ   R11, R11
	JE      qstore
qtail:
	MOVBLSX (DI), R12
	MOVBLSX (BX), R13
	IMULL   R13, R12
	ADDL    R12, AX
	ADDQ    $1, DI
	ADDQ    $1, BX
	DECQ    R11
	JNZ     qtail

qstore:
	MOVL AX, (DX)
	ADDQ $4, DX
	DECQ CX
	JNZ  qrow

qdone:
	VZEROUPPER
	RET

// func cpuidx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL  leaf+0(FP), AX
	MOVL  sub+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, lo+0(FP)
	MOVL   DX, hi+4(FP)
	RET
