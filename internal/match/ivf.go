package match

import (
	"math"
	"sort"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// IVF is a clustering-based approximate index in the spirit of the
// inverted-file (IVF) indexes used for product matching at e-commerce
// scale: the targets are partitioned by spherical k-means and a query is
// scored only against the members of its nprobe nearest partitions. With
// nprobe equal to the number of partitions the scan is exhaustive and the
// ranking is exactly the flat index's — the exact-recall parity knob.
type IVF struct {
	flat      *Index
	centroids []float32 // row-major arena: nlist normalized centroid vectors
	lists     [][]int32 // target positions per centroid, ascending
	nlist     int
	nprobe    int
	seed      int64 // clustering seed, part of the serving fingerprint
	// adaptive marks a heuristic (unset) NProbe: TopK then extends the
	// probe set until the candidate pool holds at least minCandidateFactor
	// × k targets, so recall stays high when k is large relative to the
	// corpus. Explicitly configured NProbe values are honored strictly.
	adaptive bool
}

// minCandidateFactor sizes the adaptive candidate floor: heuristic probing
// scans at least this many times k targets (or the whole corpus).
const minCandidateFactor = 8

// IVFOptions tunes IVF construction. Zero values select heuristics.
type IVFOptions struct {
	// Clusters is the number of k-means partitions (nlist). 0 selects
	// ~sqrt(n), the usual IVF starting point; values are clamped to [1, n].
	Clusters int
	// NProbe is the number of partitions scanned per query, clamped to
	// [1, nlist] and honored strictly when set. 0 selects ceil(nlist/2)
	// and additionally extends each query's probe set until it covers at
	// least 8×k candidates, which keeps recall@10 >= 0.95 on corpora at
	// the paper's scale while halving the scanned volume at size.
	NProbe int
	// ExactRecall forces NProbe = nlist: every partition is scanned and
	// the ranking provably equals the flat index's.
	ExactRecall bool
	// Seed drives centroid initialization; equal seeds give equal indexes.
	Seed int64
	// Iters bounds k-means iterations (0 = 10).
	Iters int
}

// DefaultClusters returns the nlist heuristic for n targets: ~sqrt(n),
// at least 1.
func DefaultClusters(n int) int {
	if n <= 1 {
		return 1
	}
	c := int(math.Round(math.Sqrt(float64(n))))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// DefaultNProbe returns the nprobe heuristic for nlist partitions:
// ceil(nlist/2), at least 1.
func DefaultNProbe(nlist int) int {
	p := (nlist + 1) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// NewIVF partitions the flat index's targets with seeded spherical k-means.
// The flat index is retained (not copied): IVF scores candidates straight
// out of its arena, and Flat exposes it for exact paths.
func NewIVF(flat *Index, o IVFOptions) *IVF {
	n := flat.Len()
	nlist := o.Clusters
	if nlist <= 0 {
		nlist = DefaultClusters(n)
	}
	if nlist > n {
		nlist = n
	}
	if nlist < 1 {
		nlist = 1
	}
	nprobe := o.NProbe
	adaptive := false
	if nprobe <= 0 {
		nprobe = DefaultNProbe(nlist)
		adaptive = true
	}
	if o.ExactRecall || nprobe > nlist {
		nprobe = nlist
		adaptive = false
	}
	x := &IVF{flat: flat, nlist: nlist, nprobe: nprobe, seed: o.Seed, adaptive: adaptive}
	if n == 0 {
		return x
	}
	iters := o.Iters
	if iters <= 0 {
		iters = 10
	}
	x.train(o.Seed, iters)
	return x
}

// train runs seeded spherical k-means over the flat arena and fills the
// centroid arena and inverted lists. Tombstoned rows (an index rebuilt
// over a mutated flat) are excluded from initialization, means and
// lists.
func (x *IVF) train(seed int64, iters int) {
	n, dim := x.flat.rows(), x.flat.dim
	x.centroids = make([]float32, x.nlist*dim)

	// Initialize with distinct live target vectors at splitmix-spread
	// positions, deterministic in the seed.
	picked := make(map[int]struct{}, x.nlist)
	state := uint64(seed)
	for c := 0; c < x.nlist; c++ {
		var pos int
		for {
			state = splitmix(state)
			pos = int(state % uint64(n))
			if _, dup := picked[pos]; !dup && !x.flat.isDead(pos) {
				break
			}
		}
		picked[pos] = struct{}{}
		copy(x.centroid(c), x.flat.row(pos))
	}

	assign := make([]int32, n)
	counts := make([]int32, x.nlist)
	for it := 0; it < iters; it++ {
		moved := false
		for i := 0; i < n; i++ {
			if x.flat.isDead(i) {
				continue
			}
			best := x.nearestCentroid(x.flat.row(i))
			if assign[i] != best {
				moved = true
				assign[i] = best
			}
		}
		if it > 0 && !moved {
			break
		}
		// Recompute centroids as the normalized mean of their members;
		// empty clusters keep their previous centroid.
		next := make([]float32, x.nlist*dim)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			if x.flat.isDead(i) {
				continue
			}
			c := int(assign[i])
			counts[c]++
			row := x.flat.row(i)
			cen := next[c*dim : (c+1)*dim]
			for d := range cen {
				cen[d] += row[d]
			}
		}
		for c := 0; c < x.nlist; c++ {
			cen := next[c*dim : (c+1)*dim]
			if counts[c] == 0 {
				copy(cen, x.centroid(c))
				continue
			}
			embed.Normalize(cen)
		}
		x.centroids = next
	}

	// Final assignment into inverted lists, ascending positions for
	// deterministic candidate order.
	x.lists = make([][]int32, x.nlist)
	for i := 0; i < n; i++ {
		if x.flat.isDead(i) {
			continue
		}
		c := x.nearestCentroid(x.flat.row(i))
		x.lists[c] = append(x.lists[c], int32(i))
	}
}

func (x *IVF) centroid(c int) []float32 {
	dim := x.flat.dim
	return x.centroids[c*dim : (c+1)*dim]
}

// nearestCentroid returns the centroid with the highest dot product
// against the normalized vector v, ties broken by lower index.
func (x *IVF) nearestCentroid(v []float32) int32 {
	best, bestScore := int32(0), float32(math.Inf(-1))
	for c := 0; c < x.nlist; c++ {
		if s := embed.Dot(v, x.centroid(c)); s > bestScore {
			best, bestScore = int32(c), s
		}
	}
	return best
}

// Flat returns the exact index the IVF was built over.
func (x *IVF) Flat() *Index { return x.flat }

// Append adds documents to the underlying flat index and assigns each
// new row to its nearest existing centroid's inverted list — no
// re-clustering, so ingest latency stays O(new rows × nlist) and the
// established partitioning (and its fingerprint seed) is preserved.
// Appended positions are strictly increasing, keeping every list in
// ascending order for deterministic candidate iteration.
func (x *IVF) Append(ids []string, arena []float32) error {
	base := x.flat.rows()
	if err := x.flat.Append(ids, arena); err != nil {
		return err
	}
	if len(x.lists) == 0 {
		// Built over an empty corpus: queries delegate to the flat scan,
		// which now covers the appended rows.
		return nil
	}
	for i := range ids {
		p := base + i
		c := x.nearestCentroid(x.flat.row(p))
		x.lists[c] = append(x.lists[c], int32(p))
	}
	return nil
}

// Remove tombstones the documents in the underlying flat index. The
// inverted lists keep the dead positions as per-list tombstones — the
// scoring paths skip them — so removal never rewrites list storage;
// Compact (a rebuild) reclaims them.
func (x *IVF) Remove(ids []string) int { return x.flat.Remove(ids) }

// CloneWithFlat returns an IVF over the given clone of the underlying
// flat index, deep-copying the mutable inverted lists and sharing the
// immutable centroid arena — the ingest clone-mutate-swap path.
func (x *IVF) CloneWithFlat(flat *Index) *IVF {
	nx := &IVF{
		flat:      flat,
		centroids: x.centroids,
		nlist:     x.nlist,
		nprobe:    x.nprobe,
		seed:      x.seed,
		adaptive:  x.adaptive,
	}
	if x.lists != nil {
		nx.lists = make([][]int32, len(x.lists))
		for c, l := range x.lists {
			nx.lists[c] = append([]int32(nil), l...)
		}
	}
	return nx
}

// Clusters returns the number of partitions (nlist).
func (x *IVF) Clusters() int { return x.nlist }

// NProbe returns the number of partitions scanned per query.
func (x *IVF) NProbe() int { return x.nprobe }

// Len returns the number of indexed documents.
func (x *IVF) Len() int { return x.flat.Len() }

// IDs returns the indexed document IDs in index order.
func (x *IVF) IDs() []string { return x.flat.IDs() }

// Dim returns the vector dimensionality.
func (x *IVF) Dim() int { return x.flat.Dim() }

// Fingerprint returns the serving-configuration digest of the IVF index:
// the underlying flat fingerprint mixed with the IVF kind tag, partition
// count, probe setting (with its adaptive bit) and clustering seed, so
// re-tuning any serving knob — or re-clustering under a new seed —
// invalidates fingerprint-keyed result caches.
func (x *IVF) Fingerprint() uint64 {
	adaptive := uint64(0)
	if x.adaptive {
		adaptive = 1
	}
	return mixFingerprint(fingerprintIVF, x.flat.Fingerprint(),
		uint64(x.nlist), uint64(x.nprobe), adaptive, uint64(x.seed))
}

// TopK returns the k targets most similar to query among the members of
// the nprobe nearest partitions, best first with ID tie-breaking. Under a
// heuristic (unset) NProbe the probe set is extended until it covers at
// least minCandidateFactor × k targets, so recall holds up when k is
// large relative to the corpus. When the probes cover every partition it
// delegates to the flat scan, so the result is exactly the exact ranking.
func (x *IVF) TopK(query []float32, k int) []Scored {
	minCands := 0
	if x.adaptive {
		minCands = minCandidateFactor * k
	}
	return x.topk(query, k, x.nprobe, minCands)
}

// TopKBatch answers one TopK per query, position-aligned with queries
// and identical to calling TopK per query. Probe sets are query-
// specific, so a partial-probe batch is served query by query through
// the shared scoring and selection kernels; when the configured probes
// cover every partition anyway, the whole batch is delegated to the
// flat index's blocked multi-query kernel.
func (x *IVF) TopKBatch(queries [][]float32, k int) [][]Scored {
	n := x.flat.Len()
	exhaustive := x.nprobe >= x.nlist || len(x.lists) == 0 ||
		(x.adaptive && minCandidateFactor*k >= n)
	if exhaustive && n > 0 && k > 0 {
		return x.flat.TopKBatch(queries, k)
	}
	out := make([][]Scored, len(queries))
	for i, q := range queries {
		out[i] = x.TopK(q, k)
	}
	return out
}

// TopKProbe is TopK with an explicit nprobe override (clamped to
// [1, nlist]), letting callers trade recall for speed per query; no
// adaptive extension is applied.
func (x *IVF) TopKProbe(query []float32, k, nprobe int) []Scored {
	return x.topk(query, k, nprobe, 0)
}

func (x *IVF) topk(query []float32, k, nprobe, minCands int) []Scored {
	n := x.flat.Len()
	if k <= 0 || n == 0 {
		return nil
	}
	if nprobe >= x.nlist || minCands >= n || len(x.lists) == 0 {
		return x.flat.TopK(query, k)
	}
	if nprobe < 1 {
		nprobe = 1
	}
	q := make([]float32, x.flat.dim)
	copy(q, query)
	embed.Normalize(q)

	cands, live := x.gatherCands(q, nprobe, minCands)
	if live == 0 {
		return x.flat.TopK(query, k)
	}
	return x.flat.topKPositions(q, cands, k)
}

// gatherCands collects the probe candidates for one normalized query:
// the inverted lists of the nprobe nearest partitions, extended past
// nprobe until the pool holds at least minCands live rows (the adaptive
// quota; 0 disables extension). It returns the candidate positions in
// probe order and the number of live (not tombstoned) rows among them —
// the single source of candidate truth for the serial probe path and
// the sharded scatter planner.
func (x *IVF) gatherCands(q []float32, nprobe, minCands int) (cands []int32, live int) {
	n := x.flat.rows()
	probes := x.probeOrder(q, x.nlist)
	cands = make([]int32, 0, n/x.nlist*nprobe+nprobe)
	for p, c := range probes {
		if p >= nprobe && live >= minCands {
			break
		}
		cands = append(cands, x.lists[c]...)
		if x.flat.nDead == 0 {
			live = len(cands)
			continue
		}
		// Tombstoned list entries contribute nothing to the ranking, so
		// the adaptive candidate quota counts live rows only — otherwise
		// removals concentrated in the query's nearest partitions would
		// silently shrink the effective pool below minCandidateFactor×k.
		for _, pos := range x.lists[c] {
			if !x.flat.isDead(int(pos)) {
				live++
			}
		}
	}
	return cands, live
}

// probeOrder returns the indexes of the nprobe centroids closest to the
// normalized query, ties broken by lower centroid index.
func (x *IVF) probeOrder(q []float32, nprobe int) []int32 {
	type cs struct {
		c int32
		s float32
	}
	scored := make([]cs, x.nlist)
	for c := 0; c < x.nlist; c++ {
		scored[c] = cs{int32(c), embed.Dot(q, x.centroid(c))}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		return scored[i].c < scored[j].c
	})
	out := make([]int32, nprobe)
	for i := 0; i < nprobe; i++ {
		out[i] = scored[i].c
	}
	return out
}

// splitmix is the splitmix64 step used to derive deterministic centroid
// seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
