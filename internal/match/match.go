// Package match implements the unsupervised matching step of the paper's
// §IV-B: given embeddings for metadata nodes, rank the documents of the
// second corpus by cosine similarity for every document of the first
// corpus, returning the top-k. It also provides the score-averaging
// combination with a second embedder evaluated in Fig. 10.
//
// Two index implementations serve the ranking: the exact Index, a flat
// scan over one contiguous vector arena, and IVF, a clustering-based
// approximate index that probes only the nearest k-means partitions.
// Both satisfy VectorIndex, the pluggable serving interface.
package match

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// Scored is one ranked candidate.
type Scored struct {
	ID    string
	Score float64
}

// VectorIndex is the pluggable serving interface for top-k retrieval:
// given a (not necessarily normalized) query vector, return the k most
// cosine-similar indexed documents, best first, with deterministic ID
// tie-breaking. Implementations are safe for concurrent queries once
// built; Append and Remove are not safe concurrently with queries —
// the serving layer mutates a clone and swaps it in atomically.
type VectorIndex interface {
	// Len returns the number of live (not removed) indexed documents.
	Len() int
	// IDs returns the indexed document IDs in index order, including
	// tombstoned entries of removed documents (which never surface in
	// rankings).
	IDs() []string
	// Dim returns the vector dimensionality.
	Dim() int
	// TopK returns the k targets most similar to query, best first.
	TopK(query []float32, k int) []Scored
	// TopKBatch answers one TopK per query in a single blocked pass over
	// the index, position-aligned with queries and identical to calling
	// TopK per query. Implementations amortize one arena read across the
	// whole batch.
	TopKBatch(queries [][]float32, k int) [][]Scored
	// Append adds documents to the index: arena is row-major with
	// vector i at arena[i*Dim() : (i+1)*Dim()] (copied, then normalized
	// like built rows). IDs must not collide with live indexed IDs.
	Append(ids []string, arena []float32) error
	// Remove tombstones the documents with the given IDs and returns how
	// many were present. Tombstoned rows stop appearing in rankings but
	// keep their storage until the index is rebuilt (Compact).
	Remove(ids []string) int
	// Fingerprint returns a stable 64-bit digest of the index's serving
	// configuration: implementation kind, corpus size, dimensionality,
	// (for approximate indexes) the partition parameters and clustering
	// seed, and the mutation epoch — every Append/Remove bumps it.
	// Serving-layer result caches include it in their keys, so selecting
	// a differently-configured index — or mutating one — invalidates
	// every cached ranking without an explicit flush.
	Fingerprint() uint64
}

var (
	_ VectorIndex = (*Index)(nil)
	_ VectorIndex = (*IVF)(nil)
)

// Index holds the match targets: document IDs with their normalized
// embedding vectors, stored in one contiguous arena so the scan is a
// sequential sweep over memory. Build once, query many times; the
// incremental ingest path appends rows at the arena's tail and removes
// documents by tombstoning their row (zeroed storage, skipped by every
// selection path) — reclaiming tombstones is a rebuild.
type Index struct {
	ids  []string
	data []float32 // row-major arena: vector i is data[i*dim : (i+1)*dim]
	dim  int

	pos   map[string]int32 // id -> live row, built lazily on first mutation
	dead  []bool           // tombstones, nil until the first Remove
	nDead int
	epoch uint64 // mutation counter, mixed into Fingerprint

	// borrowed marks data as read-only storage owned by someone else —
	// typically a PROT_READ mmap of a snapshot section. Queries read it
	// in place (zero-copy); the first mutating call (Append/Remove)
	// promotes the arena to a private heap copy instead of writing
	// through, so the backing file and every other process mapping it
	// stay untouched.
	borrowed bool
}

// NewIndex builds an index over target documents. Vectors are copied into
// the arena and normalized so queries reduce to dot products; nil vectors
// become zero vectors (they score 0 against everything).
func NewIndex(ids []string, vecs [][]float32, dim int) (*Index, error) {
	if len(ids) != len(vecs) {
		return nil, fmt.Errorf("match: %d ids for %d vectors", len(ids), len(vecs))
	}
	if dim <= 0 {
		return nil, fmt.Errorf("match: non-positive dimension %d", dim)
	}
	arena := make([]float32, len(ids)*dim)
	for i, v := range vecs {
		copy(arena[i*dim:(i+1)*dim], v)
	}
	return NewIndexArena(ids, arena, dim)
}

// NewIndexArena builds an index that adopts the given row-major arena
// (vector i at arena[i*dim : (i+1)*dim]) instead of copying per-row
// vectors — the zero-copy path for callers that already hold their
// vectors contiguously, like the pipeline gathering rows from the
// embedding arena. Rows are normalized in place; the caller must not read
// or mutate arena afterwards.
func NewIndexArena(ids []string, arena []float32, dim int) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("match: non-positive dimension %d", dim)
	}
	if len(arena) != len(ids)*dim {
		return nil, fmt.Errorf("match: arena holds %d floats for %d vectors of dim %d", len(arena), len(ids), dim)
	}
	idx := &Index{
		ids:  append([]string(nil), ids...),
		data: arena,
		dim:  dim,
	}
	for i := range ids {
		embed.Normalize(idx.row(i))
	}
	return idx, nil
}

// NewIndexArenaBorrowed builds an index over a read-only, already
// normalized row-major arena without copying or re-normalizing it —
// the zero-copy binding path for snapshot sections mapped with
// PROT_READ. The arena must hold rows exactly as a built index stores
// them (normalized, tombstones zeroed); the caller keeps the backing
// memory alive for the index's lifetime. Mutations never write
// through: the first Append/Remove promotes the arena to a private
// heap copy (see promote).
func NewIndexArenaBorrowed(ids []string, arena []float32, dim int) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("match: non-positive dimension %d", dim)
	}
	if len(arena) != len(ids)*dim {
		return nil, fmt.Errorf("match: arena holds %d floats for %d vectors of dim %d", len(arena), len(ids), dim)
	}
	return &Index{
		ids:      append([]string(nil), ids...),
		data:     arena,
		dim:      dim,
		borrowed: true,
	}, nil
}

// Borrowed reports whether the arena is still read-only borrowed
// backing (no mutation has promoted it to a heap copy yet).
func (x *Index) Borrowed() bool { return x.borrowed }

// promote copies a borrowed arena to private heap storage before the
// first in-place mutation. Until it runs, the index never writes to
// data, so a mapped snapshot section stays byte-identical on disk and
// shared across processes.
func (x *Index) promote() {
	if !x.borrowed {
		return
	}
	x.data = append([]float32(nil), x.data...)
	x.borrowed = false
}

// row returns the mutable arena slice of vector i.
func (x *Index) row(i int) []float32 { return x.data[i*x.dim : (i+1)*x.dim] }

// rows returns the number of arena rows, including tombstoned ones —
// the iteration bound of every scan.
func (x *Index) rows() int { return len(x.ids) }

// isDead reports whether row i is tombstoned.
func (x *Index) isDead(i int) bool { return x.dead != nil && x.dead[i] }

// Vector returns the normalized vector of target i. Callers must not
// mutate it.
func (x *Index) Vector(i int) []float32 { return x.row(i) }

// Arena returns the contiguous normalized-vector storage in index order.
// Callers must not mutate it.
func (x *Index) Arena() []float32 { return x.data }

// Len returns the number of live indexed documents (appended rows
// count, tombstoned ones do not).
func (x *Index) Len() int { return len(x.ids) - x.nDead }

// IDs returns the indexed document IDs in index order.
func (x *Index) IDs() []string { return x.ids }

// Dim returns the vector dimensionality.
func (x *Index) Dim() int { return x.dim }

// Fingerprint returns the serving-configuration digest of the flat
// index: its kind tag, size, dimensionality and mutation epoch. Every
// Append/Remove bumps the epoch, so fingerprint-keyed result caches
// can never serve a ranking computed before a mutation. Two virgin flat
// indexes over equally many vectors of equal dimension share a
// fingerprint — callers caching results across distinct models must mix
// in their own model identity.
func (x *Index) Fingerprint() uint64 {
	return mixFingerprint(fingerprintFlat, uint64(len(x.ids)), uint64(x.dim), x.epoch)
}

// negInf is the sentinel score tombstoned rows receive inside the
// selection kernels: any live cosine score (>= -1) beats it, so dead
// rows can flow through the tiled scoring unmodified and still never
// surface in a ranking.
var negInf = float32(math.Inf(-1))

// lookup resolves a live document ID to its arena row, building the
// position map on first use (virgin read-only indexes never pay for it).
func (x *Index) lookup(id string) (int32, bool) {
	if x.pos == nil {
		x.pos = make(map[string]int32, len(x.ids))
		for i, docID := range x.ids {
			if !x.isDead(i) {
				x.pos[docID] = int32(i)
			}
		}
	}
	p, ok := x.pos[id]
	return p, ok
}

// Append adds documents at the arena's tail: arena is row-major with
// vector i at arena[i*dim : (i+1)*dim]; rows are copied and normalized
// exactly like built rows (nil-padded zero rows score 0). IDs must not
// collide with live indexed IDs — a previously removed ID may be
// re-appended.
func (x *Index) Append(ids []string, arena []float32) error {
	if len(arena) != len(ids)*x.dim {
		return fmt.Errorf("match: append arena holds %d floats for %d vectors of dim %d", len(arena), len(ids), x.dim)
	}
	for _, id := range ids {
		if _, live := x.lookup(id); live {
			return fmt.Errorf("match: append of already-indexed document %q", id)
		}
	}
	x.promote()
	base := len(x.ids)
	x.ids = append(x.ids, ids...)
	x.data = append(x.data, arena...)
	if x.dead != nil {
		x.dead = append(x.dead, make([]bool, len(ids))...)
	}
	for i, id := range ids {
		p := base + i
		embed.Normalize(x.row(p))
		x.pos[id] = int32(p)
	}
	x.epoch++
	return nil
}

// Remove tombstones the documents with the given IDs, returning how
// many were present: their rows are zeroed and skipped by every
// selection path, their IDs freed for re-append. Storage is reclaimed
// only by rebuilding the index.
func (x *Index) Remove(ids []string) int {
	removed := 0
	for _, id := range ids {
		p, ok := x.lookup(id)
		if !ok {
			continue
		}
		x.promote()
		if x.dead == nil {
			x.dead = make([]bool, len(x.ids))
		}
		x.dead[p] = true
		x.nDead++
		removed++
		delete(x.pos, id)
		row := x.row(int(p))
		for d := range row {
			row[d] = 0
		}
	}
	if removed > 0 {
		x.epoch++
	}
	return removed
}

// Clone returns an independent deep copy: the ingest clone-mutate-swap
// path appends to the clone while the original keeps serving queries.
func (x *Index) Clone() *Index {
	nx := &Index{
		ids:   append([]string(nil), x.ids...),
		data:  append([]float32(nil), x.data...),
		dim:   x.dim,
		nDead: x.nDead,
		epoch: x.epoch,
	}
	if x.dead != nil {
		nx.dead = append([]bool(nil), x.dead...)
	}
	return nx
}

// Fingerprint kind tags keep flat and IVF digests disjoint even for equal
// size/dimension parameters.
const (
	fingerprintFlat uint64 = 0xf1a7 // "flat"
	fingerprintIVF  uint64 = 0x17f  // "ivf"
)

// mixFingerprint folds the parts into one 64-bit digest with the
// splitmix64 finalizer, which diffuses single-bit parameter changes
// (e.g. nprobe 4 → 5) across the whole word.
func mixFingerprint(parts ...uint64) uint64 {
	h := uint64(0x6d617463685f6670) // "match_fp"
	for _, p := range parts {
		h = splitmix(h ^ p)
	}
	return h
}

// Score returns the cosine similarity between the (not necessarily
// normalized) query vector and target i.
func (x *Index) Score(query []float32, i int) float64 {
	qn := embed.Norm(query)
	if qn == 0 {
		return 0
	}
	return float64(embed.Dot(query, x.row(i))) / float64(qn)
}

// TopK returns the k targets most similar to query, best first. Ties break
// by ID for determinism. It is the single-query case of the blocked
// TopKBatch kernel: a direct tiled scan over the arena into a fixed-size
// selection heap, with no per-row closure or interface call.
func (x *Index) TopK(query []float32, k int) []Scored {
	return x.TopKBatch(oneQuery(query), k)[0]
}

// oneQuery wraps a single query vector for the batch kernel without
// allocating: the one-element backing array stays on the caller's stack.
func oneQuery(query []float32) [][]float32 {
	return [][]float32{query}
}

// TopKCombined ranks targets by the weighted mean of this index's score for
// queryA and other's score for queryB — the Fig. 10 combination of graph
// embeddings with a pre-trained sentence embedder. Both indexes must be
// built over the same ID sequence.
func (x *Index) TopKCombined(other *Index, queryA, queryB []float32, wA, wB float64, k int) ([]Scored, error) {
	if other == nil || other.rows() != x.rows() {
		return nil, fmt.Errorf("match: combined indexes differ in size")
	}
	for i := range x.ids {
		if x.ids[i] != other.ids[i] {
			return nil, fmt.Errorf("match: combined indexes disagree at position %d: %s vs %s", i, x.ids[i], other.ids[i])
		}
	}
	qa := make([]float32, x.dim)
	copy(qa, queryA)
	embed.Normalize(qa)
	qb := make([]float32, other.dim)
	copy(qb, queryB)
	embed.Normalize(qb)
	total := wA + wB
	if total == 0 {
		total = 1
	}
	scored := TopKFunc(x.ids, func(i int) float64 {
		if x.isDead(i) {
			return math.Inf(-1)
		}
		sa := float64(embed.Dot(qa, x.row(i)))
		sb := float64(embed.Dot(qb, other.row(i)))
		return (wA*sa + wB*sb) / total
	}, k)
	// Tombstoned rows surface only when k exceeds the live count; their
	// -Inf sentinel scores sort last and are trimmed here.
	for len(scored) > 0 && math.IsInf(scored[len(scored)-1].Score, -1) {
		scored = scored[:len(scored)-1]
	}
	return scored, nil
}

// scoredHeap is a min-heap on Score (worst candidate on top).
type scoredHeap []Scored

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h scoredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)   { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// TopKFunc selects the k highest-scoring ids, best first, with ID
// tie-breaking, using a size-k heap (O(n log k)).
func TopKFunc(ids []string, score func(i int) float64, k int) []Scored {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	if k > len(ids) {
		k = len(ids)
	}
	h := make(scoredHeap, 0, k)
	heap.Init(&h)
	for i := range ids {
		s := Scored{ID: ids[i], Score: score(i)}
		if len(h) < k {
			heap.Push(&h, s)
			continue
		}
		worst := h[0]
		if s.Score > worst.Score || (s.Score == worst.Score && s.ID < worst.ID) {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}
	return sortScored(h)
}

// sortScored flattens a selection heap into best-first order with ID
// tie-breaking.
func sortScored(h scoredHeap) []Scored {
	out := make([]Scored, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// topKPositions selects the k candidates (given as arena positions) most
// similar to the normalized query, best first with ID tie-breaking. Rows
// are scored with the same kernel as the tiled full scan, so scattered-
// position rankings (IVF probes, blocking, SQ8 re-rank) agree with it
// bit-for-bit; IDs are resolved only for the <= k heap residents.
func (x *Index) topKPositions(q []float32, positions []int32, k int) []Scored {
	if k <= 0 || len(positions) == 0 {
		return nil
	}
	if k > len(positions) {
		k = len(positions)
	}
	h := newTopkHeap(make([]float32, k), make([]int32, k), x.ids, k)
	for _, p := range positions {
		if x.isDead(int(p)) {
			continue
		}
		h.consider(dotOne(x.row(int(p)), q), p)
	}
	return h.results()
}

// IDsOf projects the candidate IDs of a ranking.
func IDsOf(ranked []Scored) []string {
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.ID
	}
	return out
}
