package match

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"

	"github.com/tdmatch/tdmatch/internal/mmapfile"
)

// mapNormalizedArena builds a normalized arena for the given vectors,
// writes it to a file, maps it read-only, and returns the mapped
// []float32 view plus the file path. The mapping is pinned for the
// test's lifetime via t.Cleanup.
func mapNormalizedArena(t *testing.T, ids []string, vecs [][]float32, dim int) ([]float32, string) {
	t.Helper()
	ref, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(ref.Arena())*4)
	for i, f := range ref.Arena() {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
	}
	path := filepath.Join(t.TempDir(), "arena")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := mmapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	data := m.Data()
	floats := unsafe.Slice((*float32)(unsafe.Pointer(&data[0])), len(data)/4)
	return floats, path
}

func TestBorrowedIndexCopyOnWrite(t *testing.T) {
	ids := []string{"a", "b", "c"}
	vecs := [][]float32{{1, 2, 3, 4}, {4, 3, 2, 1}, {0.5, -1, 2, -0.25}}
	arena, path := mapNormalizedArena(t, ids, vecs, 4)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	x, err := NewIndexArenaBorrowed(ids, arena, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Borrowed() {
		t.Fatal("fresh borrowed index reports Borrowed() == false")
	}

	// Queries read through the mapping without promoting.
	ref, _ := NewIndex(ids, vecs, 4)
	q := []float32{1, 1, 1, 1}
	if got, want := x.TopK(q, 3), ref.TopK(q, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("borrowed TopK diverged: got %v want %v", got, want)
	}
	if !x.Borrowed() {
		t.Fatal("read path promoted the arena")
	}

	// Remove zeroes rows in place on heap indexes — on a borrowed one it
	// must promote first, leaving the mapped file untouched.
	if n := x.Remove([]string{"b"}); n != 1 {
		t.Fatalf("Remove returned %d, want 1", n)
	}
	if x.Borrowed() {
		t.Fatal("Remove did not promote the borrowed arena")
	}
	got := x.TopK(q, 3)
	if len(got) != 2 || got[0].ID == "b" || got[1].ID == "b" {
		t.Fatalf("tombstoned doc still served: %v", got)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("mutation wrote through to the mapped snapshot file")
	}
}

func TestBorrowedIndexAppendPromotes(t *testing.T) {
	ids := []string{"a", "b"}
	vecs := [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}
	arena, path := mapNormalizedArena(t, ids, vecs, 4)
	before, _ := os.ReadFile(path)

	x, err := NewIndexArenaBorrowed(ids, arena, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Append([]string{"c"}, []float32{0, 0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if x.Borrowed() {
		t.Fatal("Append did not promote the borrowed arena")
	}
	if got := x.TopK([]float32{0, 0, 1, 0}, 1); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("appended doc not served: %v", got)
	}
	after, _ := os.ReadFile(path)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Append wrote through to the mapped snapshot file")
	}
}

func TestBorrowedSQ8PartsMatchesQuantized(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	vecs := [][]float32{{1, 2, 3, 4}, {4, 3, 2, 1}, {-1, 0.5, 0, 2}, {0, 0, 0, 0}}
	ref, err := NewIndex(ids, vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	q8 := NewIndexSQ8(ref, 2)

	flat, err := NewIndexArenaBorrowed(ids, append([]float32(nil), ref.Arena()...), 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := NewIndexSQ8Parts(flat, q8.Codes(), q8.Scales(), 2)
	if err != nil {
		t.Fatal(err)
	}
	query := []float32{0.3, -0.2, 1, 0.7}
	if got, want := parts.TopK(query, 4), q8.TopK(query, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("parts-built SQ8 diverged: got %v want %v", got, want)
	}

	// Remove must promote borrowed codes/scales rather than zero the
	// originals in place.
	origCodes := append([]int8(nil), q8.Codes()...)
	if n := parts.Remove([]string{"a"}); n != 1 {
		t.Fatalf("Remove returned %d, want 1", n)
	}
	if !reflect.DeepEqual(origCodes, q8.Codes()) {
		t.Fatal("Remove on parts index mutated the donor codes in place")
	}
	if got := parts.TopK(query, 4); len(got) != 3 {
		t.Fatalf("expected 3 live docs after remove, got %v", got)
	}

	if _, err := NewIndexSQ8Parts(flat, q8.Codes()[:1], q8.Scales(), 2); err == nil {
		t.Fatal("short codes accepted")
	}
	if _, err := NewIndexSQ8Parts(flat, q8.Codes(), q8.Scales()[:1], 2); err == nil {
		t.Fatal("short scales accepted")
	}
}

func TestAppendSealedServesSegment(t *testing.T) {
	dim := 4
	baseIDs := []string{"a", "b"}
	baseVecs := [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}
	base, err := NewIndex(baseIDs, baseVecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSegmented(base, dim, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewIndex([]string{"c", "d"}, [][]float32{{0, 0, 1, 0}, {0, 0, 0, 1}}, dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSealed(seg); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("stack Len = %d, want 4", s.Len())
	}
	if got := s.TopK([]float32{0, 0, 1, 0}, 1); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("sealed-appended doc not served: %v", got)
	}
	if n := s.Remove([]string{"d"}); n != 1 {
		t.Fatalf("Remove on sealed-appended segment returned %d", n)
	}
	if got := s.TopK([]float32{0, 0, 0, 1}, 4); len(got) == 4 {
		t.Fatalf("tombstoned doc still served: %v", got)
	}

	wrongDim, _ := NewIndex([]string{"e"}, [][]float32{{1, 1}}, 2)
	if err := s.AppendSealed(wrongDim); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}
