package match

import (
	"sort"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// This file holds the arena-scanning query kernels: tiled multi-query
// scoring plus allocation-free top-k selection over (score, position)
// pairs. The dispatch functions dotRows/dotRowsSQ8 (kernel_amd64.go,
// kernel_generic.go) route each tile through the AVX2/FMA assembly when
// the CPU supports it and through the portable Go loops below otherwise.
//
// Every ranking path of the package — single-query TopK, the batched
// TopKBatch, IVF probe scans, token-blocked scans and the SQ8 re-rank —
// selects candidates with the same heap and the same tie rule (equal
// scores break by ascending ID), so rankings are deterministic and
// identical across kernels.

// tileFloats bounds one arena tile to 32KB of float32s, so a tile loaded
// for the first query of a batch is still cache-resident when the last
// query scores it — the whole point of batching: one arena read
// amortized over the batch.
const tileFloats = 8192

// tileRowsFor returns the number of dim-sized rows per scan tile.
func tileRowsFor(dim int) int {
	t := tileFloats / dim
	if t < 8 {
		t = 8
	}
	if t > 1024 {
		t = 1024
	}
	return t
}

// dotRowsGo is the portable scoring loop: one four-wide unrolled dot
// per row (identical summation order to embed.Dot, so scattered-
// position paths and tiled paths agree bit-for-bit off amd64 too).
func dotRowsGo(arena, q, out []float32, dim int) {
	for r := range out {
		out[r] = embed.Dot(arena[r*dim:(r+1)*dim], q)
	}
}

// dotRowsSQ8Go is the portable int8 scoring loop, four-wide unrolled
// int32 multiply-accumulate.
func dotRowsSQ8Go(codes, q []int8, out []int32, dim int) {
	for r := range out {
		row := codes[r*dim : (r+1)*dim]
		var s0, s1, s2, s3 int32
		n := dim &^ 3
		for d := 0; d < n; d += 4 {
			s0 += int32(row[d]) * int32(q[d])
			s1 += int32(row[d+1]) * int32(q[d+1])
			s2 += int32(row[d+2]) * int32(q[d+2])
			s3 += int32(row[d+3]) * int32(q[d+3])
		}
		s := (s0 + s2) + (s1 + s3)
		for d := n; d < dim; d++ {
			s += int32(row[d]) * int32(q[d])
		}
		out[r] = s
	}
}

// zapDead overwrites the scores of tombstoned rows in a tile (positions
// base, base+1, ...) with -Inf, so selection heaps clamped to the live
// count provably evict them. A no-op (one branch) on unmutated indexes.
func (x *Index) zapDead(scores []float32, base int) {
	if x.nDead == 0 {
		return
	}
	for j := range scores {
		if x.dead[base+j] {
			scores[j] = negInf
		}
	}
}

// dotOne scores a single arena row against the normalized query with
// the same kernel (and thus the same rounding) as the tiled scans, so
// scattered-position paths (IVF probes, token blocking, SQ8 re-rank)
// rank identically to the full scan.
func dotOne(row, q []float32) float32 {
	var out [1]float32
	dotRows(row, q, out[:], len(row))
	return out[0]
}

// topkHeap is a fixed-capacity min-heap over (score, arena position)
// with the worst resident at the root: the allocation-free selection
// state of every ranking path. "Worse" means lower score, or equal
// score and lexicographically greater ID — so ties always resolve to
// the smaller ID, in every kernel. IDs are consulted only on exact
// score ties and materialized only for the final k results.
type topkHeap struct {
	score []float32 // backing of capacity k; score[i] pairs with pos[i]
	pos   []int32
	ids   []string // full index ID table, for tie comparison by position
	k     int
	n     int
}

// newTopkHeap returns a heap selecting the best k of the index's rows.
func newTopkHeap(score []float32, pos []int32, ids []string, k int) topkHeap {
	return topkHeap{score: score, pos: pos, ids: ids, k: k}
}

// worse reports whether candidate (s, p) ranks below resident i.
func (h *topkHeap) worse(s float32, p int32, i int) bool {
	if s != h.score[i] {
		return s < h.score[i]
	}
	return h.ids[p] > h.ids[h.pos[i]]
}

// consider offers one candidate to the heap.
func (h *topkHeap) consider(s float32, p int32) {
	if h.n < h.k {
		h.score[h.n], h.pos[h.n] = s, p
		h.siftUp(h.n)
		h.n++
		return
	}
	// Full: replace the root only when the candidate beats it (higher
	// score, or equal score and smaller ID).
	if s < h.score[0] {
		return
	}
	if s == h.score[0] && h.ids[p] >= h.ids[h.pos[0]] {
		return
	}
	h.score[0], h.pos[0] = s, p
	h.siftDown(0)
}

// merge offers a tile of scores (for positions base, base+1, ...) to
// the heap. Once the heap is full the common case is one load and one
// compare per row: candidates not beating the current worst resident
// are rejected before any heap work.
func (h *topkHeap) merge(scores []float32, base int32) {
	i := 0
	for ; i < len(scores) && h.n < h.k; i++ {
		h.consider(scores[i], base+int32(i))
	}
	if h.n == 0 {
		return
	}
	root := h.score[0]
	for ; i < len(scores); i++ {
		s := scores[i]
		if s < root {
			continue
		}
		h.consider(s, base+int32(i))
		root = h.score[0]
	}
}

// siftUp restores the heap property after placing a new entry at i.
func (h *topkHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(h.score[i], h.pos[i], parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (h *topkHeap) siftDown(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < h.n && h.worse(h.score[l], h.pos[l], worst) {
			worst = l
		}
		if r := 2*i + 2; r < h.n && h.worse(h.score[r], h.pos[r], worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

func (h *topkHeap) swap(i, j int) {
	h.score[i], h.score[j] = h.score[j], h.score[i]
	h.pos[i], h.pos[j] = h.pos[j], h.pos[i]
}

// results materializes the residents best-first with ID tie-breaking —
// the only point where IDs are resolved for the selection.
func (h *topkHeap) results() []Scored {
	out := make([]Scored, h.n)
	for i := 0; i < h.n; i++ {
		out[i] = Scored{ID: h.ids[h.pos[i]], Score: float64(h.score[i])}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// positions returns the resident arena positions in ascending order
// (the SQ8 re-rank candidate set).
func (h *topkHeap) positions() []int32 {
	out := make([]int32, h.n)
	copy(out, h.pos[:h.n])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopKBatch ranks every query of the batch against the whole index in
// one blocked pass: the arena is walked tile by tile, each tile scored
// for all queries while it is cache-resident, and each query feeds its
// fixed-size selection heap. Results are position-aligned with queries
// and identical to calling TopK per query. Batching amortizes the
// arena read over the batch — the MatchAll and serve-batch hot path.
func (x *Index) TopKBatch(queries [][]float32, k int) [][]Scored {
	out := make([][]Scored, len(queries))
	n := x.rows()
	if k <= 0 || x.Len() == 0 || len(queries) == 0 {
		return out
	}
	if k > x.Len() {
		// Clamp to the live count: tombstoned rows score -Inf below and a
		// heap no larger than the live count provably evicts them all.
		k = x.Len()
	}
	dim := x.dim
	b := len(queries)
	qs := make([]float32, b*dim)
	for i, q := range queries {
		row := qs[i*dim : (i+1)*dim]
		copy(row, q)
		embed.Normalize(row)
	}
	scoreBack := make([]float32, b*k)
	posBack := make([]int32, b*k)
	heaps := make([]topkHeap, b)
	for i := range heaps {
		heaps[i] = newTopkHeap(scoreBack[i*k:(i+1)*k], posBack[i*k:(i+1)*k], x.ids, k)
	}
	tile := tileRowsFor(dim)
	if tile > n {
		tile = n
	}
	scores := make([]float32, tile)
	for r0 := 0; r0 < n; r0 += tile {
		m := tile
		if r0+m > n {
			m = n - r0
		}
		rows := x.data[r0*dim : (r0+m)*dim]
		for i := range heaps {
			dotRows(rows, qs[i*dim:(i+1)*dim], scores[:m], dim)
			x.zapDead(scores[:m], r0)
			heaps[i].merge(scores[:m], int32(r0))
		}
	}
	for i := range heaps {
		out[i] = heaps[i].results()
	}
	return out
}
