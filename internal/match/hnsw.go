package match

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// HNSW is a hierarchical navigable-small-world graph index, the third
// approximate serving kind next to IVF and SQ8: each indexed row is a
// graph node with at most M neighbors per layer (2M on layer 0), upper
// layers form an exponentially sparser hierarchy, and a query descends
// the hierarchy greedily before an ef-bounded best-first beam over
// layer 0 collects the candidate pool. Search cost is O(ef · degree ·
// dim) regardless of corpus size — the sublinear floor the O(rows)
// scans (flat, SQ8) cannot reach — and the collected candidates are
// re-ranked exactly against the retained float32 arena with the same
// dot kernel as every other path, so ties keep the strict
// (score desc, ID asc) order.
//
// Construction is deterministic: node levels come from a seeded
// splitmix generator keyed off (seed, row), and insertion order is row
// order, so two builds over the same arena produce identical graphs —
// the property the byte-identical snapshot contract relies on.
// Like the other kinds, an HNSW index is safe for concurrent queries
// once built; Append and Remove are not safe concurrently with queries.
type HNSW struct {
	flat *Index
	m    int // degree cap on layers > 0; layer 0 allows 2m
	ef   int // query beam width
	efc  int // construction beam width
	seed int64

	levels    []int32   // per-row top layer (0-based)
	listStart []int32   // first list index of row i (len rows+1); row i's layer-l list is links[listStart[i]+l]
	links     [][]int32 // per-(row, layer) neighbor lists
	entry     int32     // descent entry point: the highest-level row, -1 while empty
	maxLevel  int32

	// borrowed marks levels and the neighbor lists as read-only views of
	// a mapped snapshot section; the first mutation promotes them to heap
	// copies instead of writing through (same contract as Index.borrowed).
	borrowed bool

	scratchPool sync.Pool
}

var _ VectorIndex = (*HNSW)(nil)

// Default HNSW tuning: M=16 with efConstruct=128 builds a graph whose
// ef=96 beam holds recall@10 >= 0.95 on corpora at the paper's scale
// while scoring a few thousand rows per query instead of all of them.
const (
	DefaultHNSWM           = 16
	DefaultHNSWEf          = 96
	DefaultHNSWEfConstruct = 128

	// hnswMaxLevel bounds the hierarchy depth (level overflow would need
	// ~16^24 rows).
	hnswMaxLevel = 24
)

// HNSWOptions tunes HNSW construction and search. Zero values select
// the defaults above.
type HNSWOptions struct {
	// M caps the neighbor count per node on layers above 0; layer 0
	// allows 2M. Larger M raises recall and memory per node.
	M int
	// Ef is the query-time beam width: the layer-0 search keeps the best
	// Ef candidates seen, all of which feed the exact re-rank. Raised to
	// k when k exceeds it.
	Ef int
	// EfConstruct is the construction-time beam width: wider beams find
	// better neighbors and build better graphs, at build-time cost.
	EfConstruct int
	// Seed drives the level generator; equal seeds give equal graphs.
	Seed int64
}

// withDefaults resolves zero options to the package defaults.
func (o HNSWOptions) withDefaults() HNSWOptions {
	if o.M <= 0 {
		o.M = DefaultHNSWM
	}
	if o.Ef <= 0 {
		o.Ef = DefaultHNSWEf
	}
	if o.EfConstruct <= 0 {
		o.EfConstruct = DefaultHNSWEfConstruct
	}
	if o.EfConstruct < o.M {
		o.EfConstruct = o.M
	}
	return o
}

// hnswLevelFor draws row i's top layer from the seeded geometric level
// distribution with p = 1/m — the deterministic stand-in for the
// paper's floor(-ln(U)·mL) draw (identical distribution, integer-only
// arithmetic, reproducible across platforms).
func hnswLevelFor(seed int64, m, i int) int32 {
	state := splitmix(uint64(seed) ^ splitmix(uint64(i)+0x686e7377)) // "hnsw"
	var lvl int32
	for lvl < hnswMaxLevel && state%uint64(m) == 0 {
		lvl++
		state = splitmix(state)
	}
	return lvl
}

// NewHNSW builds the graph over the flat index's rows, inserting them
// in row order with seeded levels. The flat index is retained (not
// copied): beam candidates and the exact re-rank score straight out of
// its arena, and Flat exposes it for exact paths. Tombstoned rows are
// not inserted.
func NewHNSW(flat *Index, o HNSWOptions) *HNSW {
	o = o.withDefaults()
	x := &HNSW{
		flat:  flat,
		m:     o.M,
		ef:    o.Ef,
		efc:   o.EfConstruct,
		seed:  o.Seed,
		entry: -1,
	}
	n := flat.rows()
	x.levels = make([]int32, n)
	x.listStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		lvl := hnswLevelFor(o.Seed, o.M, i)
		x.levels[i] = lvl
		x.listStart[i+1] = x.listStart[i] + lvl + 1
	}
	x.links = make([][]int32, x.listStart[n])
	for i := 0; i < n; i++ {
		if flat.isDead(i) {
			continue
		}
		x.connect(int32(i))
	}
	return x
}

// NewHNSWParts builds an HNSW index that adopts a prebuilt graph —
// per-row levels plus the flattened CSR adjacency (offs, adj) produced
// by Levels/FlattenLinks at save time — instead of re-inserting every
// row: the zero-copy binding path for snapshot sections. levels, offs
// and adj may be read-only borrowed backing (e.g. a PROT_READ mmap):
// mutations promote them to heap copies first.
func NewHNSWParts(flat *Index, levels, offs, adj []int32, o HNSWOptions) (*HNSW, error) {
	o = o.withDefaults()
	n := flat.rows()
	if len(levels) != n {
		return nil, fmt.Errorf("match: hnsw levels hold %d entries for %d rows", len(levels), n)
	}
	x := &HNSW{
		flat:     flat,
		m:        o.M,
		ef:       o.Ef,
		efc:      o.EfConstruct,
		seed:     o.Seed,
		entry:    -1,
		levels:   levels,
		borrowed: true,
	}
	x.listStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		lvl := levels[i]
		if lvl < 0 || lvl > hnswMaxLevel {
			return nil, fmt.Errorf("match: hnsw level %d of row %d out of range", lvl, i)
		}
		x.listStart[i+1] = x.listStart[i] + lvl + 1
		if lvl > x.maxLevel || (lvl == x.maxLevel && x.entry < 0) {
			x.maxLevel = lvl
			x.entry = int32(i)
		}
	}
	lists := int(x.listStart[n])
	if len(offs) != lists+1 {
		return nil, fmt.Errorf("match: hnsw offsets hold %d entries for %d lists", len(offs), lists)
	}
	if lists > 0 && offs[0] != 0 {
		return nil, fmt.Errorf("match: hnsw offsets start at %d", offs[0])
	}
	x.links = make([][]int32, lists)
	for j := 0; j < lists; j++ {
		lo, hi := offs[j], offs[j+1]
		if lo > hi || int(hi) > len(adj) {
			return nil, fmt.Errorf("match: hnsw offsets corrupt at list %d (%d..%d of %d)", j, lo, hi, len(adj))
		}
		// Three-index subslices: cap == len, so a post-promotion append can
		// never grow into the mapped arena.
		x.links[j] = adj[lo:hi:hi]
	}
	if lists > 0 && int(offs[lists]) != len(adj) {
		return nil, fmt.Errorf("match: hnsw adjacency holds %d entries, offsets end at %d", len(adj), offs[lists])
	}
	for _, l := range x.links {
		for _, nb := range l {
			if nb < 0 || int(nb) >= n {
				return nil, fmt.Errorf("match: hnsw neighbor %d out of range for %d rows", nb, n)
			}
		}
	}
	return x, nil
}

// promote copies borrowed graph storage (levels and every neighbor
// list) to private heap slices before the first mutation, so a mapped
// snapshot section is never written through.
func (x *HNSW) promote() {
	if !x.borrowed {
		return
	}
	x.levels = append([]int32(nil), x.levels...)
	links := make([][]int32, len(x.links))
	for j, l := range x.links {
		links[j] = append([]int32(nil), l...)
	}
	x.links = links
	x.borrowed = false
}

// Borrowed reports whether the graph storage is still read-only
// borrowed backing (no mutation has promoted it yet).
func (x *HNSW) Borrowed() bool { return x.borrowed }

// Flat returns the exact index the graph was built over.
func (x *HNSW) Flat() *Index { return x.flat }

// M returns the per-layer degree cap (layer 0 allows 2M).
func (x *HNSW) M() int { return x.m }

// Ef returns the query-time beam width.
func (x *HNSW) Ef() int { return x.ef }

// EfConstruct returns the construction-time beam width.
func (x *HNSW) EfConstruct() int { return x.efc }

// Seed returns the level-generator seed.
func (x *HNSW) Seed() int64 { return x.seed }

// MaxLevel returns the top layer of the hierarchy (0 for a flat graph).
func (x *HNSW) MaxLevel() int { return int(x.maxLevel) }

// AvgDegree returns the mean layer-0 neighbor count per row — the
// stats surface of graph density.
func (x *HNSW) AvgDegree() float64 {
	n := x.flat.rows()
	if n == 0 {
		return 0
	}
	edges := 0
	for i := 0; i < n; i++ {
		edges += len(x.links[x.listStart[i]])
	}
	return float64(edges) / float64(n)
}

// Levels returns the per-row level assignments. Callers must not
// mutate them; the snapshot writer serializes them directly.
func (x *HNSW) Levels() []int32 { return x.levels }

// FlattenLinks returns the adjacency in CSR form — cumulative offsets
// (one per (row, layer) list, in row-major layer order, plus a final
// total) and the concatenated neighbor arena — the shape the snapshot
// writer serializes and NewHNSWParts adopts.
func (x *HNSW) FlattenLinks() (offs, adj []int32) {
	offs = make([]int32, len(x.links)+1)
	total := 0
	for j, l := range x.links {
		total += len(l)
		offs[j+1] = int32(total)
	}
	adj = make([]int32, 0, total)
	for _, l := range x.links {
		adj = append(adj, l...)
	}
	return offs, adj
}

// m0 returns the layer-0 degree cap.
func (x *HNSW) m0() int { return 2 * x.m }

// neighborList returns row i's layer-l neighbor list.
func (x *HNSW) neighborList(i, l int32) []int32 {
	return x.links[x.listStart[i]+l]
}

// connect inserts row i (whose level is already assigned) into the
// graph: greedy descent to the row's level, then per-layer beam search,
// heuristic neighbor selection and bidirectional linking with degree-cap
// pruning.
func (x *HNSW) connect(i int32) {
	if x.entry < 0 {
		x.entry = i
		x.maxLevel = x.levels[i]
		return
	}
	q := x.flat.row(int(i))
	lvl := x.levels[i]
	ep := x.entry
	for l := x.maxLevel; l > lvl; l-- {
		ep = x.greedy(q, ep, l)
	}
	sc := x.scratch()
	eps := []int32{ep}
	top := lvl
	if top > x.maxLevel {
		top = x.maxLevel
	}
	for l := top; l >= 0; l-- {
		poss, scores := x.searchLayer(q, eps, x.efc, l, sc)
		cap := x.m
		if l == 0 {
			cap = x.m0()
		}
		sel := x.selectNeighbors(poss, scores, cap)
		x.links[x.listStart[i]+l] = sel
		for _, nb := range sel {
			x.addLink(nb, l, i, cap)
		}
		eps = poss
	}
	x.putScratch(sc)
	if lvl > x.maxLevel {
		x.entry = i
		x.maxLevel = lvl
	}
}

// selectNeighbors applies the diversity heuristic to a best-first
// candidate list: a candidate is kept only when it is closer to the
// base row than to every already-kept neighbor, so the selected set
// spreads over distinct directions instead of clustering; remaining
// slots are refilled from the pruned candidates in rank order.
func (x *HNSW) selectNeighbors(poss []int32, scores []float32, m int) []int32 {
	sel := make([]int32, 0, m)
	var pruned []int32
	for idx, c := range poss {
		if len(sel) == m {
			break
		}
		keep := true
		for _, s := range sel {
			if dotOne(x.flat.row(int(c)), x.flat.row(int(s))) > scores[idx] {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for len(sel) < m && len(pruned) > 0 {
		sel = append(sel, pruned[0])
		pruned = pruned[1:]
	}
	return sel
}

// addLink adds i to nb's layer-l neighbor list, re-running the
// selection heuristic when the list overflows its degree cap.
func (x *HNSW) addLink(nb, l, i int32, m int) {
	j := x.listStart[nb] + l
	list := append(x.links[j], i)
	if len(list) > m {
		base := x.flat.row(int(nb))
		scores := make([]float32, len(list))
		for idx, c := range list {
			scores[idx] = dotOne(x.flat.row(int(c)), base)
		}
		x.sortByScore(list, scores)
		list = x.selectNeighbors(list, scores, m)
	}
	x.links[j] = list
}

// sortByScore orders parallel (position, score) slices best-first:
// score descending, ties by ascending ID — the same strict total order
// every selection path uses.
func (x *HNSW) sortByScore(poss []int32, scores []float32) {
	sort.Sort(&posByScore{poss: poss, scores: scores, ids: x.flat.ids})
}

type posByScore struct {
	poss   []int32
	scores []float32
	ids    []string
}

func (p *posByScore) Len() int { return len(p.poss) }
func (p *posByScore) Less(i, j int) bool {
	if p.scores[i] != p.scores[j] {
		return p.scores[i] > p.scores[j]
	}
	return p.ids[p.poss[i]] < p.ids[p.poss[j]]
}
func (p *posByScore) Swap(i, j int) {
	p.poss[i], p.poss[j] = p.poss[j], p.poss[i]
	p.scores[i], p.scores[j] = p.scores[j], p.scores[i]
}

// greedy walks layer l from ep to the locally best row: repeatedly move
// to the neighbor scoring strictly higher than the current row (ties
// never move, so the walk is cycle-free and deterministic).
func (x *HNSW) greedy(q []float32, ep, l int32) int32 {
	cur := ep
	curScore := dotOne(x.flat.row(int(cur)), q)
	for {
		next := cur
		for _, nb := range x.neighborList(cur, l) {
			if s := dotOne(x.flat.row(int(nb)), q); s > curScore {
				next, curScore = nb, s
			}
		}
		if next == cur {
			return cur
		}
		cur = next
	}
}

// searchLayer runs the ef-bounded best-first beam over layer l from the
// given entry points: a max-ordered frontier expands the best
// unexplored candidate while it can still improve the current best-w
// set, every visited row is scored once with the shared dot kernel, and
// the surviving w candidates return best-first (score desc, ID asc).
// Tombstoned rows are traversed — their edges keep the graph connected
// — but the callers' exact re-rank excludes them from rankings.
func (x *HNSW) searchLayer(q []float32, eps []int32, w int, l int32, sc *hnswScratch) ([]int32, []float32) {
	sc.reset()
	best := newTopkHeap(make([]float32, w), make([]int32, w), x.flat.ids, w)
	var f hnswFrontier
	for _, ep := range eps {
		if !sc.visit(ep) {
			continue
		}
		s := dotOne(x.flat.row(int(ep)), q)
		best.consider(s, ep)
		f.push(s, ep)
	}
	for len(f.pos) > 0 {
		s, c := f.pop()
		if best.n == best.k && s < best.score[0] {
			break
		}
		for _, nb := range x.neighborList(c, l) {
			if !sc.visit(nb) {
				continue
			}
			sn := dotOne(x.flat.row(int(nb)), q)
			if best.n < best.k || sn >= best.score[0] {
				f.push(sn, nb)
				best.consider(sn, nb)
			}
		}
	}
	poss := make([]int32, best.n)
	scores := make([]float32, best.n)
	copy(poss, best.pos[:best.n])
	copy(scores, best.score[:best.n])
	x.sortByScore(poss, scores)
	return poss, scores
}

// hnswFrontier is the expansion frontier of one beam search: a binary
// max-heap over (score, position) with higher scores first and ties by
// lower position, so expansion order is deterministic.
type hnswFrontier struct {
	score []float32
	pos   []int32
}

func (f *hnswFrontier) better(i, j int) bool {
	if f.score[i] != f.score[j] {
		return f.score[i] > f.score[j]
	}
	return f.pos[i] < f.pos[j]
}

func (f *hnswFrontier) push(s float32, p int32) {
	f.score = append(f.score, s)
	f.pos = append(f.pos, p)
	i := len(f.pos) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.better(i, parent) {
			break
		}
		f.swap(i, parent)
		i = parent
	}
}

func (f *hnswFrontier) pop() (float32, int32) {
	s, p := f.score[0], f.pos[0]
	n := len(f.pos) - 1
	f.score[0], f.pos[0] = f.score[n], f.pos[n]
	f.score, f.pos = f.score[:n], f.pos[:n]
	i := 0
	for {
		bestI := i
		if l := 2*i + 1; l < n && f.better(l, bestI) {
			bestI = l
		}
		if r := 2*i + 2; r < n && f.better(r, bestI) {
			bestI = r
		}
		if bestI == i {
			return s, p
		}
		f.swap(i, bestI)
		i = bestI
	}
}

func (f *hnswFrontier) swap(i, j int) {
	f.score[i], f.score[j] = f.score[j], f.score[i]
	f.pos[i], f.pos[j] = f.pos[j], f.pos[i]
}

// hnswScratch is the per-search visited set: a stamp array instead of a
// bitmap, so a pooled scratch resets in O(1) between searches.
type hnswScratch struct {
	stamp   uint32
	visited []uint32
}

// visit marks row p visited, reporting true the first time.
func (s *hnswScratch) visit(p int32) bool {
	if s.visited[p] == s.stamp {
		return false
	}
	s.visited[p] = s.stamp
	return true
}

// reset starts a fresh visited generation in O(1), clearing the array
// only on the (2^32nd) stamp wrap where stale stamps could alias.
func (s *hnswScratch) reset() {
	s.stamp++
	if s.stamp == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.stamp = 1
	}
}

// scratch leases a visited set covering the current row count.
func (x *HNSW) scratch() *hnswScratch {
	n := x.flat.rows()
	sc, _ := x.scratchPool.Get().(*hnswScratch)
	if sc == nil || len(sc.visited) < n {
		sc = &hnswScratch{visited: make([]uint32, n)}
	}
	return sc
}

func (x *HNSW) putScratch(sc *hnswScratch) { x.scratchPool.Put(sc) }

// Len returns the number of live indexed documents.
func (x *HNSW) Len() int { return x.flat.Len() }

// IDs returns the indexed document IDs in index order.
func (x *HNSW) IDs() []string { return x.flat.IDs() }

// Dim returns the vector dimensionality.
func (x *HNSW) Dim() int { return x.flat.Dim() }

// fingerprintHNSW is the kind tag keeping HNSW digests disjoint from
// flat, IVF, SQ8 and segmented ones.
const fingerprintHNSW uint64 = 0x6e57

// Fingerprint returns the serving-configuration digest of the graph
// index: the underlying flat fingerprint mixed with the HNSW kind tag
// and every tuning knob, so re-tuning M/ef — or re-seeding the level
// generator — invalidates fingerprint-keyed result caches.
func (x *HNSW) Fingerprint() uint64 {
	return mixFingerprint(fingerprintHNSW, x.flat.Fingerprint(),
		uint64(x.m), uint64(x.ef), uint64(x.efc), uint64(x.seed))
}

// Append adds documents to the underlying flat index and inserts each
// new row into the graph at its seeded level — insert-on-append, no
// rebuild: existing neighbor lists change only where the degree-cap
// pruning touches them.
func (x *HNSW) Append(ids []string, arena []float32) error {
	base := x.flat.rows()
	if err := x.flat.Append(ids, arena); err != nil {
		return err
	}
	x.promote()
	for i := range ids {
		p := base + i
		lvl := hnswLevelFor(x.seed, x.m, p)
		x.levels = append(x.levels, lvl)
		x.listStart = append(x.listStart, x.listStart[p]+lvl+1)
		x.links = append(x.links, make([][]int32, lvl+1)...)
		x.connect(int32(p))
	}
	return nil
}

// Remove tombstones the documents in the underlying flat index. Their
// graph nodes stay — edges through them keep the beam connected — but
// their zeroed rows score 0 in the beam and the exact re-rank excludes
// them, so they never surface in rankings; the query beam widens by the
// tombstone count to compensate for the dead rows it may collect.
func (x *HNSW) Remove(ids []string) int { return x.flat.Remove(ids) }

// CloneWithFlat returns an HNSW index over the given clone of the
// underlying flat index, deep-copying the mutable graph — the ingest
// clone-mutate-swap path.
func (x *HNSW) CloneWithFlat(flat *Index) *HNSW {
	nx := &HNSW{
		flat:      flat,
		m:         x.m,
		ef:        x.ef,
		efc:       x.efc,
		seed:      x.seed,
		levels:    append([]int32(nil), x.levels...),
		listStart: append([]int32(nil), x.listStart...),
		links:     make([][]int32, len(x.links)),
		entry:     x.entry,
		maxLevel:  x.maxLevel,
	}
	for j, l := range x.links {
		nx.links[j] = append([]int32(nil), l...)
	}
	return nx
}

// beamWidth returns the layer-0 beam width for one query: ef raised to
// k, widened by the tombstone count so dead rows collected by the beam
// cannot starve the live candidate pool.
func (x *HNSW) beamWidth(k int) int {
	w := x.ef
	if w < k {
		w = k
	}
	return w + x.flat.nDead
}

// TopK returns the k targets most similar to query, best first with ID
// tie-breaking: greedy hierarchy descent, an ef-bounded beam over
// layer 0, then an exact float32 re-rank of the beam through the same
// kernel as the flat scan.
func (x *HNSW) TopK(query []float32, k int) []Scored {
	return x.TopKBatch(oneQuery(query), k)[0]
}

// TopKBatch answers one TopK per query, position-aligned with queries
// and identical to calling TopK per query. Beams are query-specific, so
// the batch is served query by query; when the beam would cover every
// live row anyway the whole batch delegates to the flat index's blocked
// kernel, which is exact (the small-corpus regime where graph search
// cannot win).
func (x *HNSW) TopKBatch(queries [][]float32, k int) [][]Scored {
	out := make([][]Scored, len(queries))
	if k <= 0 || x.flat.Len() == 0 || len(queries) == 0 {
		return out
	}
	if x.entry < 0 || x.beamWidth(k) >= x.flat.Len() {
		return x.flat.TopKBatch(queries, k)
	}
	dim := x.flat.dim
	qn := make([]float32, dim)
	for qi, q := range queries {
		copy(qn, q)
		embed.Normalize(qn)
		out[qi] = x.flat.topKPositions(qn, x.beamCandidates(qn, k), k)
	}
	return out
}

// beamCandidates runs the graph search for one normalized query and
// returns the candidate positions of the layer-0 beam — the exact
// re-rank pool. Shared by the serial path and the sharded planner, so
// both rank from the same candidate set.
func (x *HNSW) beamCandidates(qn []float32, k int) []int32 {
	sc := x.scratch()
	ep := x.entry
	for l := x.maxLevel; l > 0; l-- {
		ep = x.greedy(qn, ep, l)
	}
	poss, _ := x.searchLayer(qn, []int32{ep}, x.beamWidth(k), 0, sc)
	x.putScratch(sc)
	return poss
}
