package match

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func testIndex(t *testing.T) *Index {
	t.Helper()
	ids := []string{"t0", "t1", "t2"}
	vecs := [][]float32{
		{1, 0, 0},
		{0, 1, 0},
		{0.9, 0.1, 0},
	}
	idx, err := NewIndex(ids, vecs, 3)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestTopKOrdering(t *testing.T) {
	idx := testIndex(t)
	got := idx.TopK([]float32{1, 0, 0}, 3)
	if len(got) != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if got[0].ID != "t0" || got[1].ID != "t2" || got[2].ID != "t1" {
		t.Errorf("order = %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
	if got[0].Score < got[1].Score || got[1].Score < got[2].Score {
		t.Error("scores not descending")
	}
	if math.Abs(got[0].Score-1) > 1e-5 {
		t.Errorf("best score = %f, want ~1", got[0].Score)
	}
}

func TestTopKTruncates(t *testing.T) {
	idx := testIndex(t)
	if got := idx.TopK([]float32{1, 0, 0}, 2); len(got) != 2 {
		t.Errorf("TopK(2) = %d results", len(got))
	}
	if got := idx.TopK([]float32{1, 0, 0}, 10); len(got) != 3 {
		t.Errorf("TopK(10) = %d results, want all 3", len(got))
	}
	if got := idx.TopK([]float32{1, 0, 0}, 0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
}

func TestTopKZeroQuery(t *testing.T) {
	idx := testIndex(t)
	got := idx.TopK([]float32{0, 0, 0}, 3)
	for _, s := range got {
		if s.Score != 0 {
			t.Errorf("zero query scored %f", s.Score)
		}
	}
}

func TestNilVectorsScoreZero(t *testing.T) {
	idx, err := NewIndex([]string{"a", "b"}, [][]float32{nil, {0, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.TopK([]float32{0, 1}, 2)
	if got[0].ID != "b" || got[1].Score != 0 {
		t.Errorf("nil-vector handling wrong: %v", got)
	}
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex([]string{"a"}, nil, 2); err == nil {
		t.Error("want error on ids/vecs mismatch")
	}
}

func TestIndexAccessors(t *testing.T) {
	idx := testIndex(t)
	if idx.Len() != 3 || len(idx.IDs()) != 3 {
		t.Error("Len/IDs wrong")
	}
	if s := idx.Score([]float32{1, 0, 0}, 0); math.Abs(s-1) > 1e-5 {
		t.Errorf("Score = %f", s)
	}
	if s := idx.Score([]float32{0, 0, 0}, 0); s != 0 {
		t.Errorf("zero-query Score = %f", s)
	}
}

func TestTieBreakByID(t *testing.T) {
	ids := []string{"z", "a", "m"}
	vecs := [][]float32{{1, 0}, {1, 0}, {1, 0}}
	idx, err := NewIndex(ids, vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.TopK([]float32{1, 0}, 3)
	if got[0].ID != "a" || got[1].ID != "m" || got[2].ID != "z" {
		t.Errorf("tie order = %v", IDsOf(got))
	}
	// With k=2 the kept candidates must be the lexicographically smallest.
	got2 := idx.TopK([]float32{1, 0}, 2)
	if got2[0].ID != "a" || got2[1].ID != "m" {
		t.Errorf("tie order k=2 = %v", IDsOf(got2))
	}
}

func TestTopKCombined(t *testing.T) {
	ids := []string{"x", "y"}
	a, _ := NewIndex(ids, [][]float32{{1, 0}, {0, 1}}, 2)
	b, _ := NewIndex(ids, [][]float32{{0, 1}, {1, 0}}, 2)
	// Query favors "x" in a and "y" in b; equal weights tie them, so ID
	// order decides. Biasing weights flips the winner.
	got, err := a.TopKCombined(b, []float32{1, 0}, []float32{1, 0}, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "x" {
		t.Errorf("equal-weight winner = %s", got[0].ID)
	}
	got, err = a.TopKCombined(b, []float32{1, 0}, []float32{1, 0}, 0.1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "y" {
		t.Errorf("b-weighted winner = %s, want y", got[0].ID)
	}
}

func TestTopKCombinedValidation(t *testing.T) {
	a, _ := NewIndex([]string{"x"}, [][]float32{{1}}, 1)
	b, _ := NewIndex([]string{"x", "y"}, [][]float32{{1}, {1}}, 1)
	if _, err := a.TopKCombined(b, []float32{1}, []float32{1}, 1, 1, 1); err == nil {
		t.Error("want error for size mismatch")
	}
	c, _ := NewIndex([]string{"z"}, [][]float32{{1}}, 1)
	if _, err := a.TopKCombined(c, []float32{1}, []float32{1}, 1, 1, 1); err == nil {
		t.Error("want error for ID mismatch")
	}
	if _, err := a.TopKCombined(nil, []float32{1}, []float32{1}, 1, 1, 1); err == nil {
		t.Error("want error for nil other")
	}
}

func TestTopKFuncAgainstFullSort(t *testing.T) {
	// Property: TopKFunc result equals sorting all scores descending and
	// truncating, for random score assignments.
	f := func(raw []uint8, k8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ids := make([]string, len(raw))
		scores := make([]float64, len(raw))
		for i, r := range raw {
			ids[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
			scores[i] = float64(r % 16) // force ties
		}
		k := int(k8%8) + 1
		got := TopKFunc(ids, func(i int) float64 { return scores[i] }, k)

		type pair struct {
			id string
			s  float64
		}
		all := make([]pair, len(ids))
		for i := range ids {
			all[i] = pair{ids[i], scores[i]}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].s != all[j].s {
				return all[i].s > all[j].s
			}
			return all[i].id < all[j].id
		})
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i].ID != all[i].id || got[i].Score != all[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDsOf(t *testing.T) {
	got := IDsOf([]Scored{{ID: "a"}, {ID: "b"}})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("IDsOf = %v", got)
	}
}
