package match

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestQuantizeRowReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := make([]float32, 96)
	for d := range v {
		v[d] = rng.Float32()*2 - 1
	}
	codes := make([]int8, len(v))
	scale := quantizeRow(v, codes)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	for d, c := range codes {
		if c < -127 || c > 127 {
			t.Fatalf("code %d out of range: %d", d, c)
		}
		got := float64(c) * float64(scale)
		if math.Abs(got-float64(v[d])) > float64(scale)*0.5001 {
			t.Fatalf("dim %d: reconstructed %v from %v (scale %v)", d, got, v[d], scale)
		}
	}
	zero := make([]float32, 8)
	zcodes := make([]int8, 8)
	if s := quantizeRow(zero, zcodes); s != 0 {
		t.Errorf("zero-row scale = %v", s)
	}
	for _, c := range zcodes {
		if c != 0 {
			t.Errorf("zero-row codes = %v", zcodes)
		}
	}
}

// TestSQ8FullRerankMatchesFlat: with the re-rank pool covering the whole
// corpus, every candidate is exactly re-scored, so the SQ8 ranking must
// equal the flat one bit-for-bit — the SQ8 parity knob.
func TestSQ8FullRerankMatchesFlat(t *testing.T) {
	const n, dim = 220, 32
	idx := kernelTestIndex(t, n, dim, 21)
	sq := NewIndexSQ8(idx, n) // rerank*k >= n for any k >= 1
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		k := 1 + rng.Intn(20)
		got := sq.TopK(q, k)
		want := idx.TopK(q, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d: full-rerank SQ8 diverged from flat\nsq8:  %v\nflat: %v", trial, k, got, want)
		}
	}
}

// TestSQ8BatchMatchesSerial pins the SQ8 batch entry point to its own
// serial TopK at several batch sizes.
func TestSQ8BatchMatchesSerial(t *testing.T) {
	const n, dim = 180, 24
	idx := kernelTestIndex(t, n, dim, 23)
	sq := NewIndexSQ8(idx, 0)
	if sq.Rerank() != DefaultSQ8Rerank {
		t.Fatalf("default rerank = %d", sq.Rerank())
	}
	rng := rand.New(rand.NewSource(24))
	queries := make([][]float32, 11)
	for i := range queries {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		queries[i] = q
	}
	for batch := 1; batch <= len(queries); batch++ {
		got := sq.TopKBatch(queries[:batch], 6)
		for qi := 0; qi < batch; qi++ {
			want := sq.TopK(queries[qi], 6)
			if !reflect.DeepEqual(got[qi], want) {
				t.Fatalf("batch=%d query=%d: SQ8 batch diverged from serial", batch, qi)
			}
		}
	}
}

// TestSQ8DefaultRerankRecall: on random data the default 4x re-rank
// pool must recover nearly all of the exact top-10.
func TestSQ8DefaultRerankRecall(t *testing.T) {
	const n, dim, k = 2000, 48, 10
	idx := kernelTestIndex(t, n, dim, 25)
	sq := NewIndexSQ8(idx, 0)
	rng := rand.New(rand.NewSource(26))
	hits, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		exact := map[string]struct{}{}
		for _, s := range idx.TopK(q, k) {
			exact[s.ID] = struct{}{}
		}
		for _, s := range sq.TopK(q, k) {
			if _, ok := exact[s.ID]; ok {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	t.Logf("SQ8 recall@%d = %.4f", k, recall)
	if recall < 0.99 {
		t.Errorf("recall@%d = %.4f, want >= 0.99", k, recall)
	}
}

// TestSQ8ZeroQueryDeterministic: a zero query scores 0 everywhere in
// both phases, so the result is the k smallest IDs — identical to flat.
func TestSQ8ZeroQueryDeterministic(t *testing.T) {
	const n, dim = 60, 16
	idx := kernelTestIndex(t, n, dim, 27)
	sq := NewIndexSQ8(idx, 0)
	zero := make([]float32, dim)
	got := sq.TopK(zero, 5)
	want := idx.TopK(zero, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero query: sq8 %v vs flat %v", got, want)
	}
}

func TestSQ8Accessors(t *testing.T) {
	idx := kernelTestIndex(t, 30, 8, 28)
	sq := NewIndexSQ8(idx, 6)
	if sq.Flat() != idx || sq.Rerank() != 6 {
		t.Error("Flat/Rerank accessors wrong")
	}
	if sq.Len() != idx.Len() || sq.Dim() != idx.Dim() || len(sq.IDs()) != idx.Len() {
		t.Error("Len/Dim/IDs must delegate to the flat index")
	}
}

func TestSQ8FingerprintDistinguishesConfigs(t *testing.T) {
	idx := kernelTestIndex(t, 30, 8, 29)
	a := NewIndexSQ8(idx, 4).Fingerprint()
	b := NewIndexSQ8(idx, 8).Fingerprint()
	if a == b {
		t.Error("rerank change must change the fingerprint")
	}
	if a == idx.Fingerprint() {
		t.Error("SQ8 fingerprint must differ from the flat one")
	}
	if a == NewIVF(idx, IVFOptions{Seed: 1}).Fingerprint() {
		t.Error("SQ8 fingerprint must differ from IVF's")
	}
	if a != NewIndexSQ8(idx, 4).Fingerprint() {
		t.Error("equal configs must share a fingerprint")
	}
}
