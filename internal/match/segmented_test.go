package match

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Property suite for the segmented stack: randomized, seeded, shrinkable
// interleavings of Append/Remove/Seal/Compact must leave TopK/TopKBatch
// bit-identical to a from-scratch monolithic flat index over the same
// live documents, for every exact segment kind (flat, exact-recall IVF,
// full-rerank SQ8) with and without shard wrapping.

const segPropDim = 8

// segOpKind enumerates the mutation steps an interleaving is built from.
type segOpKind int

const (
	opAppend segOpKind = iota
	opRemove
	opSeal
	opCompact
)

func (k segOpKind) String() string {
	return [...]string{"append", "remove", "seal", "compact"}[k]
}

// segOp is one step of a generated interleaving. Appends carry vectors;
// removes carry IDs. The semantics are operational — an append of an
// already-live ID or a remove of an absent one degrades to a no-op on
// that ID — so every subsequence of a valid sequence is itself valid,
// which is what makes delta-debugging shrinks sound.
type segOp struct {
	kind  segOpKind
	ids   []string
	arena []float32
}

func (o segOp) String() string {
	switch o.kind {
	case opAppend, opRemove:
		return fmt.Sprintf("%s(%s)", o.kind, strings.Join(o.ids, ","))
	default:
		return o.kind.String()
	}
}

// segPropConfig is one cell of the kind × shards test matrix.
type segPropConfig struct {
	name     string
	kind     string // "flat", "ivf", "sq8"
	shards   int
	maxDelta int // auto-seal threshold handed to NewSegmented
}

// sealFuncFor builds the SealFunc for a matrix cell: the kind wrap with
// a deterministic per-ordinal seed, then optional shard wrapping. All
// three kinds are exact under these parameters, so bit-identity to the
// monolithic flat scan is the contract, not an approximation.
func sealFuncFor(cfg segPropConfig) SealFunc {
	return func(flat *Index, ordinal int) VectorIndex {
		var idx VectorIndex = flat
		switch cfg.kind {
		case "ivf":
			idx = NewIVF(flat, IVFOptions{Clusters: 3, ExactRecall: true, Seed: 11 + int64(ordinal)})
		case "sq8":
			idx = NewIndexSQ8(flat, 1<<20) // rerank pool covers any segment: exact
		case "hnsw":
			// A beam wider than any segment delegates to the exact scan.
			idx = NewHNSW(flat, HNSWOptions{M: 4, EfConstruct: 16, Ef: 1 << 20, Seed: 11 + int64(ordinal)})
		}
		if cfg.shards > 1 {
			sh, err := NewSharded(idx, cfg.shards, 2)
			if err == nil {
				idx = sh
			}
		}
		return idx
	}
}

// genOps generates one seeded interleaving: nOps mutation steps over a
// growing ID space, with removals drawn from live documents and
// re-appends drawn from previously removed ones.
func genOps(rng *rand.Rand, nOps int) []segOp {
	var ops []segOp
	next := 0
	live := map[string][]float32{}
	var removed []string
	freshVec := func() []float32 {
		v := make([]float32, segPropDim)
		for i := range v {
			v[i] = rng.Float32()*2 - 1
		}
		return v
	}
	liveIDs := func() []string {
		ids := make([]string, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return ids
	}
	for len(ops) < nOps {
		switch p := rng.Intn(100); {
		case p < 45: // append 1..5 docs, occasionally re-appending a removed ID
			n := 1 + rng.Intn(5)
			op := segOp{kind: opAppend}
			for i := 0; i < n; i++ {
				var id string
				if len(removed) > 0 && rng.Intn(4) == 0 {
					id = removed[rng.Intn(len(removed))]
				} else {
					id = fmt.Sprintf("d%03d", next)
					next++
				}
				if _, ok := live[id]; ok {
					continue
				}
				v := freshVec()
				live[id] = v
				op.ids = append(op.ids, id)
				op.arena = append(op.arena, v...)
			}
			if len(op.ids) > 0 {
				ops = append(ops, op)
			}
		case p < 70: // remove 1..3 live docs
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			n := 1 + rng.Intn(3)
			op := segOp{kind: opRemove}
			for i := 0; i < n && len(ids) > 0; i++ {
				j := rng.Intn(len(ids))
				op.ids = append(op.ids, ids[j])
				delete(live, ids[j])
				removed = append(removed, ids[j])
				ids = append(ids[:j], ids[j+1:]...)
			}
			ops = append(ops, op)
		case p < 85:
			ops = append(ops, segOp{kind: opSeal})
		default:
			ops = append(ops, segOp{kind: opCompact})
		}
	}
	return ops
}

// runSeq replays ops against a fresh stack and an oracle map, checking
// segmented TopKBatch against a from-scratch monolithic flat index after
// every step. Returns the first divergence (step index and detail), or
// nil when the whole interleaving holds.
func runSeq(cfg segPropConfig, ops []segOp, queries [][]float32, k int) error {
	seg, err := NewSegmented(nil, segPropDim, sealFuncFor(cfg), cfg.maxDelta)
	if err != nil {
		return err
	}
	oracle := map[string][]float32{}
	for step, op := range ops {
		switch op.kind {
		case opAppend:
			var ids []string
			var arena []float32
			for i, id := range op.ids {
				if _, ok := oracle[id]; ok {
					continue // live already: operational no-op (shrink artifact)
				}
				ids = append(ids, id)
				arena = append(arena, op.arena[i*segPropDim:(i+1)*segPropDim]...)
				oracle[id] = op.arena[i*segPropDim : (i+1)*segPropDim]
			}
			if len(ids) == 0 {
				continue
			}
			if err := seg.Append(ids, arena); err != nil {
				return fmt.Errorf("step %d %s: %v", step, op, err)
			}
		case opRemove:
			want := 0
			for _, id := range op.ids {
				if _, ok := oracle[id]; ok {
					delete(oracle, id)
					want++
				}
			}
			if got := seg.Remove(op.ids); got != want {
				return fmt.Errorf("step %d %s: removed %d docs, oracle says %d", step, op, got, want)
			}
		case opSeal:
			if err := seg.Seal(); err != nil {
				return fmt.Errorf("step %d %s: %v", step, op, err)
			}
		case opCompact:
			if err := seg.Compact(); err != nil {
				return fmt.Errorf("step %d %s: %v", step, op, err)
			}
		}
		if err := checkParity(seg, oracle, queries, k); err != nil {
			return fmt.Errorf("step %d %s: %v", step, op, err)
		}
	}
	return nil
}

// checkParity compares the stack's rankings and live-document accounting
// against a monolithic flat index rebuilt from scratch over the oracle.
func checkParity(seg *Segmented, oracle map[string][]float32, queries [][]float32, k int) error {
	if seg.Len() != len(oracle) {
		return fmt.Errorf("Len = %d, oracle has %d live docs", seg.Len(), len(oracle))
	}
	ids := make([]string, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	arena := make([]float32, 0, len(ids)*segPropDim)
	for _, id := range ids {
		if !seg.Has(id) {
			return fmt.Errorf("live doc %s not found by Has", id)
		}
		arena = append(arena, oracle[id]...)
	}
	flat, err := NewIndexArena(ids, arena, segPropDim)
	if err != nil {
		return err
	}
	want := flat.TopKBatch(queries, k)
	got := seg.TopKBatch(queries, k)
	for qi := range queries {
		if len(got[qi]) != len(want[qi]) {
			return fmt.Errorf("query %d: %d results, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range got[qi] {
			if got[qi][i] != want[qi][i] {
				return fmt.Errorf("query %d rank %d: got %v, want %v (bit-identity violated)",
					qi, i, got[qi][i], want[qi][i])
			}
		}
	}
	// Single-query path shares the merge but not the call site.
	if len(queries) > 0 {
		one := seg.TopK(queries[0], k)
		for i := range one {
			if one[i] != want[0][i] {
				return fmt.Errorf("TopK rank %d: got %v, want %v", i, one[i], want[0][i])
			}
		}
	}
	return nil
}

// shrinkSeq greedily minimizes a failing interleaving: repeatedly drop
// one op at a time (scanning back to front) while the failure persists.
// Operational op semantics keep every subsequence valid.
func shrinkSeq(cfg segPropConfig, ops []segOp, queries [][]float32, k int) []segOp {
	shrunk := true
	for shrunk {
		shrunk = false
		for i := len(ops) - 1; i >= 0; i-- {
			cand := make([]segOp, 0, len(ops)-1)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+1:]...)
			if runSeq(cfg, cand, queries, k) != nil {
				ops = cand
				shrunk = true
			}
		}
	}
	return ops
}

// TestSegmentedPropertyParity runs >= 200 seeded interleavings across
// the full kind × shards matrix. On failure it reports the shrunk
// minimal op sequence together with the seed that regenerates it.
func TestSegmentedPropertyParity(t *testing.T) {
	kinds := []string{"flat", "ivf", "sq8", "hnsw"}
	shardCounts := []int{1, 8}
	const itersPerCell = 36 // 4 kinds × 2 shardings × 36 = 288 interleavings
	total := 0
	for _, kind := range kinds {
		for _, shards := range shardCounts {
			cell := fmt.Sprintf("%s/shards=%d", kind, shards)
			t.Run(cell, func(t *testing.T) {
				for iter := 0; iter < itersPerCell; iter++ {
					seed := int64(iter)*9973 + int64(len(kind))*131 + int64(shards)
					rng := rand.New(rand.NewSource(seed))
					cfg := segPropConfig{name: cell, kind: kind, shards: shards}
					if rng.Intn(2) == 0 {
						cfg.maxDelta = 3 + rng.Intn(5) // exercise auto-seal on roughly half the runs
					}
					ops := genOps(rng, 8+rng.Intn(9))
					queries := make([][]float32, 3)
					for qi := range queries {
						q := make([]float32, segPropDim)
						for j := range q {
							q[j] = rng.Float32()*2 - 1
						}
						queries[qi] = q
					}
					k := 1 + rng.Intn(10)
					if err := runSeq(cfg, ops, queries, k); err != nil {
						min := shrinkSeq(cfg, ops, queries, k)
						minErr := runSeq(cfg, min, queries, k)
						t.Fatalf("seed %d (maxDelta=%d, k=%d): %v\nshrunk to %d ops: %v\nshrunk failure: %v",
							seed, cfg.maxDelta, k, err, len(min), min, minErr)
					}
					total++
				}
			})
		}
	}
	if !t.Failed() && total < 200 {
		t.Fatalf("only %d interleavings ran, want >= 200", total)
	}
}

// TestSegmentedCloneIsolation pins the clone contract the serving layer
// depends on: a clone shares sealed segments but owns its delta and
// tombstones, so mutating the clone never changes the parent's results.
func TestSegmentedCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := segPropConfig{kind: "flat", shards: 1}
	seg, err := NewSegmented(nil, segPropDim, sealFuncFor(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 12)
	arena := make([]float32, 0, len(ids)*segPropDim)
	oracle := map[string][]float32{}
	for i := range ids {
		ids[i] = fmt.Sprintf("d%03d", i)
		v := make([]float32, segPropDim)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		arena = append(arena, v...)
		oracle[ids[i]] = v
	}
	if err := seg.Append(ids, arena); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	query := [][]float32{arena[:segPropDim]}

	clone := seg.Clone()
	if clone.Remove([]string{"d003", "d007"}) != 2 {
		t.Fatal("clone remove failed")
	}
	extra := make([]float32, segPropDim)
	extra[0] = 1
	if err := clone.Append([]string{"zz"}, extra); err != nil {
		t.Fatal(err)
	}

	// Parent still serves the original 12 docs, bit-identical to flat.
	if err := checkParity(seg, oracle, query, 5); err != nil {
		t.Fatalf("parent diverged after clone mutation: %v", err)
	}
	// Clone serves the mutated set.
	delete(oracle, "d003")
	delete(oracle, "d007")
	oracle["zz"] = extra
	if err := checkParity(clone, oracle, query, 5); err != nil {
		t.Fatalf("clone diverged: %v", err)
	}
	if seg.Fingerprint() == clone.Fingerprint() {
		t.Error("mutated clone must not share the parent's fingerprint")
	}
}

// TestSegmentedManifestRoundTrip pins SegmentManifest: concatenated
// entries enumerate exactly the live documents, per segment, delta last.
func TestSegmentedManifestRoundTrip(t *testing.T) {
	cfg := segPropConfig{kind: "flat", shards: 1}
	seg, err := NewSegmented(nil, segPropDim, sealFuncFor(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	add := func(ids ...string) {
		arena := make([]float32, len(ids)*segPropDim)
		for i := range arena {
			arena[i] = float32(i%7) - 3
		}
		if err := seg.Append(ids, arena); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "b", "c")
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	add("d", "e")
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	add("f")
	seg.Remove([]string{"b", "e"}) // one overlay tombstone per sealed segment

	manifest := seg.SegmentManifest()
	want := [][]string{{"a", "c"}, {"d"}, {"f"}}
	if len(manifest) != len(want) {
		t.Fatalf("manifest has %d entries, want %d: %v", len(manifest), len(want), manifest)
	}
	for i := range want {
		if strings.Join(manifest[i], ",") != strings.Join(want[i], ",") {
			t.Errorf("segment %d manifest = %v, want %v", i, manifest[i], want[i])
		}
	}
}
