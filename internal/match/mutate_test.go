package match

import (
	"fmt"
	"reflect"
	"testing"
)

// mutVecs builds n deterministic pseudo-random vectors.
func mutVecs(n, dim int, seed uint64) ([]string, [][]float32) {
	ids := make([]string, n)
	vecs := make([][]float32, n)
	rng := seed
	next := func() float32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float32(rng%2000)/1000 - 1
	}
	for i := range ids {
		ids[i] = fmt.Sprintf("d%03d", i)
		v := make([]float32, dim)
		for d := range v {
			v[d] = next()
		}
		vecs[i] = v
	}
	return ids, vecs
}

// flatten packs vectors into one row-major arena.
func flatten(vecs [][]float32, dim int) []float32 {
	arena := make([]float32, len(vecs)*dim)
	for i, v := range vecs {
		copy(arena[i*dim:(i+1)*dim], v)
	}
	return arena
}

// TestFlatAppendRemoveMatchesRebuild: a flat index mutated by appends
// and removals must rank every query exactly like an index built fresh
// over the surviving vectors.
func TestFlatAppendRemoveMatchesRebuild(t *testing.T) {
	const dim = 24
	ids, vecs := mutVecs(60, dim, 7)
	idx, err := NewIndex(ids[:40], vecs[:40], dim)
	if err != nil {
		t.Fatal(err)
	}
	fpVirgin := idx.Fingerprint()
	if err := idx.Append(ids[40:], flatten(vecs[40:], dim)); err != nil {
		t.Fatal(err)
	}
	if idx.Fingerprint() == fpVirgin {
		t.Error("append did not change the fingerprint")
	}
	removed := []string{ids[3], ids[17], ids[45], ids[59]}
	fpAfterAppend := idx.Fingerprint()
	if got := idx.Remove(removed); got != len(removed) {
		t.Fatalf("Remove = %d, want %d", got, len(removed))
	}
	if idx.Remove(removed) != 0 {
		t.Error("double remove must be a no-op")
	}
	if idx.Fingerprint() == fpAfterAppend {
		t.Error("remove did not change the fingerprint")
	}
	if idx.Len() != 56 {
		t.Fatalf("Len = %d, want 56 live", idx.Len())
	}

	dead := map[string]bool{}
	for _, id := range removed {
		dead[id] = true
	}
	var survIDs []string
	var survVecs [][]float32
	for i, id := range ids {
		if !dead[id] {
			survIDs = append(survIDs, id)
			survVecs = append(survVecs, vecs[i])
		}
	}
	fresh, err := NewIndex(survIDs, survVecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range vecs {
		for _, k := range []int{1, 5, 56, 100} {
			got := idx.TopK(q, k)
			want := fresh.TopK(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d k=%d: mutated index diverged from rebuild\ngot:  %v\nwant: %v", qi, k, got, want)
			}
		}
	}
	// Batch path agrees with itself and the rebuild.
	gotBatch := idx.TopKBatch(vecs[:10], 8)
	wantBatch := fresh.TopKBatch(vecs[:10], 8)
	if !reflect.DeepEqual(gotBatch, wantBatch) {
		t.Fatal("mutated batch kernel diverged from rebuild")
	}

	// A removed ID can be re-appended and then surfaces again.
	if err := idx.Append([]string{ids[3]}, flatten(vecs[3:4], dim)); err != nil {
		t.Fatal(err)
	}
	top := idx.TopK(vecs[3], 1)
	if len(top) != 1 || top[0].ID != ids[3] {
		t.Fatalf("re-appended doc not ranked first for its own vector: %v", top)
	}
	// Appending a live duplicate fails.
	if err := idx.Append([]string{ids[5]}, flatten(vecs[5:6], dim)); err == nil {
		t.Error("append of live duplicate must fail")
	}
}

// TestIVFAppendAssignsToNearestCentroid: appended docs join the list of
// their nearest centroid (no re-clustering), removals tombstone in
// place, and an exact-recall IVF stays bit-identical to the mutated
// flat index throughout.
func TestIVFAppendAssignsToNearestCentroid(t *testing.T) {
	const dim = 16
	ids, vecs := mutVecs(80, dim, 11)
	flat, err := NewIndex(ids[:60], vecs[:60], dim)
	if err != nil {
		t.Fatal(err)
	}
	ivf := NewIVF(flat, IVFOptions{Clusters: 6, ExactRecall: true, Seed: 3})
	fp0 := ivf.Fingerprint()
	if err := ivf.Append(ids[60:], flatten(vecs[60:], dim)); err != nil {
		t.Fatal(err)
	}
	if ivf.Fingerprint() == fp0 {
		t.Error("IVF fingerprint unchanged after append")
	}
	listed := 0
	for _, l := range ivf.lists {
		for _, p := range l {
			if p >= 60 {
				listed++
			}
		}
	}
	if listed != 20 {
		t.Fatalf("appended rows in inverted lists = %d, want 20", listed)
	}
	if got := ivf.Remove([]string{ids[0], ids[70]}); got != 2 {
		t.Fatalf("Remove = %d, want 2", got)
	}
	for qi, q := range vecs {
		got := ivf.TopK(q, 10)
		want := flat.TopK(q, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: exact-recall IVF diverged from mutated flat\ngot:  %v\nwant: %v", qi, got, want)
		}
	}
}

// TestSQ8AppendQuantizesNewRows: the quantized index follows appends
// and removals, and with a corpus-covering re-rank pool stays
// bit-identical to the mutated flat index.
func TestSQ8AppendQuantizesNewRows(t *testing.T) {
	const dim = 16
	ids, vecs := mutVecs(50, dim, 23)
	flat, err := NewIndex(ids[:35], vecs[:35], dim)
	if err != nil {
		t.Fatal(err)
	}
	sq := NewIndexSQ8(flat, 1000) // rerank pool covers the corpus: provably exact
	fp0 := sq.Fingerprint()
	if err := sq.Append(ids[35:], flatten(vecs[35:], dim)); err != nil {
		t.Fatal(err)
	}
	if sq.Fingerprint() == fp0 {
		t.Error("SQ8 fingerprint unchanged after append")
	}
	if len(sq.codes) != 50*dim || len(sq.scales) != 50 {
		t.Fatalf("code arena not grown: %d codes, %d scales", len(sq.codes), len(sq.scales))
	}
	if got := sq.Remove([]string{ids[2], ids[40]}); got != 2 {
		t.Fatalf("Remove = %d, want 2", got)
	}
	if sq.scales[2] != 0 || sq.scales[40] != 0 {
		t.Error("removed rows keep non-zero scales")
	}
	for qi, q := range vecs {
		got := sq.TopK(q, 7)
		want := flat.TopK(q, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: full-rerank SQ8 diverged from mutated flat\ngot:  %v\nwant: %v", qi, got, want)
		}
	}
}

// TestCloneIsolation: mutating a clone must not change the original's
// rankings or fingerprint, for all three index kinds.
func TestCloneIsolation(t *testing.T) {
	const dim = 12
	ids, vecs := mutVecs(30, dim, 5)
	flat, err := NewIndex(ids[:20], vecs[:20], dim)
	if err != nil {
		t.Fatal(err)
	}
	ivf := NewIVF(flat, IVFOptions{Clusters: 4, Seed: 1})
	sq := NewIndexSQ8(flat, 0)

	cf := flat.Clone()
	civf := ivf.CloneWithFlat(cf)
	csq := sq.CloneWithFlat(cf)

	wantTop := flat.TopK(vecs[0], 5)
	wantFP := []uint64{flat.Fingerprint(), ivf.Fingerprint(), sq.Fingerprint()}

	if err := cf.Append(ids[20:25], flatten(vecs[20:25], dim)); err != nil {
		t.Fatal(err)
	}
	civf.lists[0] = append(civf.lists[0], 99) // direct list mutation on the clone
	if csq.Remove([]string{ids[1]}) != 1 {
		t.Fatal("clone remove failed")
	}

	if got := flat.TopK(vecs[0], 5); !reflect.DeepEqual(got, wantTop) {
		t.Error("original flat rankings changed after clone mutation")
	}
	if flat.Fingerprint() != wantFP[0] || ivf.Fingerprint() != wantFP[1] || sq.Fingerprint() != wantFP[2] {
		t.Error("original fingerprints changed after clone mutation")
	}
	if flat.Len() != 20 {
		t.Errorf("original flat Len = %d, want 20", flat.Len())
	}
	for _, l := range ivf.lists {
		for _, p := range l {
			if p >= 20 {
				t.Fatal("original IVF lists picked up clone's entries")
			}
		}
	}
}

// TestRemoveBeyondK: removing enough documents that k exceeds the live
// count must shrink rankings instead of surfacing tombstones, on every
// path including blocking and TopKCombined.
func TestRemoveBeyondK(t *testing.T) {
	const dim = 8
	ids, vecs := mutVecs(6, dim, 9)
	idx, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	idx.Remove(ids[:4])
	got := idx.TopK(vecs[0], 6)
	if len(got) != 2 {
		t.Fatalf("TopK over 2 live docs returned %d results: %v", len(got), got)
	}
	for _, s := range got {
		if s.ID == ids[0] || s.ID == ids[1] || s.ID == ids[2] || s.ID == ids[3] {
			t.Fatalf("tombstoned doc surfaced: %v", got)
		}
	}
	comb, err := idx.TopKCombined(other, vecs[0], vecs[0], 0.5, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(comb) != 2 {
		t.Fatalf("TopKCombined over 2 live docs returned %d results: %v", len(comb), comb)
	}
}

// TestIVFAdaptiveProbeCountsLiveCandidates: with removals concentrated
// in the query's nearest partition, the adaptive probe extension must
// count live candidates toward its quota (dead list entries score
// nothing), still returning k results while enough live docs exist.
func TestIVFAdaptiveProbeCountsLiveCandidates(t *testing.T) {
	const dim = 8
	// Two well-separated clusters of 50 docs each.
	ids := make([]string, 100)
	vecs := make([][]float32, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%03d", i)
		v := make([]float32, dim)
		axis := 0
		if i >= 50 {
			axis = 1
		}
		v[axis] = 1
		v[7] = float32(i%13) / 100 // small jitter, keeps the cluster tight
		vecs[i] = v
	}
	flat, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	ivf := NewIVF(flat, IVFOptions{Clusters: 2, Seed: 4}) // NProbe unset: adaptive
	if ivf.NProbe() != 1 {
		t.Fatalf("nprobe = %d, want the 1-of-2 heuristic", ivf.NProbe())
	}
	// Kill 47 of the 50 docs in the query's own cluster.
	ivf.Remove(ids[3:50])
	query := vecs[0]
	got := ivf.TopK(query, 5)
	if len(got) != 5 {
		t.Fatalf("adaptive TopK returned %d results, want 5 (probe quota must count live candidates)", len(got))
	}
	for _, s := range got {
		for _, dead := range ids[3:50] {
			if s.ID == dead {
				t.Fatalf("tombstoned doc %s surfaced", s.ID)
			}
		}
	}
}
