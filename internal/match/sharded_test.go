package match

import (
	"fmt"
	"reflect"
	"testing"
)

// shardedKinds enumerates the wrappable index configurations the parity
// tests cover: the exact scan, IVF under adaptive / strict / exhaustive
// probing, the quantized two-phase scan, and the graph-searched beam.
var shardedKinds = []struct {
	name  string
	build func(flat *Index) VectorIndex
}{
	{"flat", func(flat *Index) VectorIndex { return flat }},
	{"ivf-adaptive", func(flat *Index) VectorIndex {
		return NewIVF(flat, IVFOptions{Clusters: 6, Seed: 3})
	}},
	{"ivf-nprobe", func(flat *Index) VectorIndex {
		return NewIVF(flat, IVFOptions{Clusters: 6, NProbe: 2, Seed: 3})
	}},
	{"ivf-exact", func(flat *Index) VectorIndex {
		return NewIVF(flat, IVFOptions{Clusters: 6, ExactRecall: true, Seed: 3})
	}},
	{"sq8", func(flat *Index) VectorIndex { return NewIndexSQ8(flat, 2) }},
	{"hnsw", func(flat *Index) VectorIndex {
		// Small ef so the graph path (not the exact-scan delegation)
		// carries most k values at this corpus size.
		return NewHNSW(flat, HNSWOptions{M: 4, Ef: 8, EfConstruct: 16, Seed: 7})
	}},
}

// shardedTestIndex builds one wrapped index over n deterministic vectors,
// with vector duplicates injected so exact score ties exercise the ID
// tie-break in the merge.
func shardedTestIndex(t *testing.T, kind int, n, dim int) VectorIndex {
	t.Helper()
	ids, vecs := mutVecs(n, dim, 11)
	for i := 5; i+7 < n; i += 13 {
		vecs[i+7] = vecs[i] // duplicate rows => tied scores
	}
	flat, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	return shardedKinds[kind].build(flat)
}

// assertShardedParity checks TopK and TopKBatch of the sharded wrapper
// against the wrapped index, bit for bit (scores and tie-broken IDs).
func assertShardedParity(t *testing.T, inner VectorIndex, sh *Sharded, queries [][]float32, k int) {
	t.Helper()
	want := inner.TopKBatch(queries, k)
	got := sh.TopKBatch(queries, k)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopKBatch(k=%d, %d shards) diverged:\n got %v\nwant %v",
			k, sh.Shards(), got, want)
	}
	for _, q := range queries {
		if got, want := sh.TopK(q, k), inner.TopK(q, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(k=%d, %d shards) diverged:\n got %v\nwant %v", k, sh.Shards(), got, want)
		}
	}
}

// TestShardedParity: sharded scatter-gather rankings must be
// bit-identical to the wrapped index's across index kinds and shard
// counts — virgin, after appends, and after removals that tombstone
// whole shard regions, including k above the live count.
func TestShardedParity(t *testing.T) {
	const n, dim = 60, 16
	for kind := range shardedKinds {
		for _, shards := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("%s/%dshards", shardedKinds[kind].name, shards), func(t *testing.T) {
				inner := shardedTestIndex(t, kind, n, dim)
				sh, err := NewSharded(inner, shards, 2)
				if err != nil {
					t.Fatal(err)
				}
				_, queryVecs := mutVecs(9, dim, 99)
				flat := flatOf(inner)
				queries := append(queryVecs, flat.Vector(0), flat.Vector(n-1))
				for _, k := range []int{1, 5, n, n + 10} {
					assertShardedParity(t, inner, sh, queries, k)
				}

				// Mutations flow through the wrapper: appends extend the last
				// shard, removals tombstone rows in place.
				appIDs, appVecs := mutVecs(12, dim, 31)
				for i, id := range appIDs {
					appIDs[i] = "app-" + id
				}
				if err := sh.Append(appIDs, flatten(appVecs, dim)); err != nil {
					t.Fatal(err)
				}
				var doomed []string
				for i, id := range inner.IDs() {
					// Tombstone a dense prefix (empties the first shards at
					// high shard counts) plus a scatter of later rows.
					if i < 18 || i%7 == 0 {
						doomed = append(doomed, id)
					}
				}
				if got := sh.Remove(doomed); got != len(doomed) {
					t.Fatalf("Remove = %d, want %d", got, len(doomed))
				}
				for _, k := range []int{1, 5, inner.Len(), inner.Len() + 10} {
					assertShardedParity(t, inner, sh, queries, k)
				}
			})
		}
	}
}

// TestShardedAllDeadProbes pins the IVF corner where every candidate of
// a query's probe set is tombstoned (live == 0): the unsharded path
// falls back to a flat scan, and the sharded plan must answer
// identically via its plan-time direct path.
func TestShardedAllDeadProbes(t *testing.T) {
	const dim = 4
	var ids []string
	var vecs [][]float32
	for i := 0; i < 20; i++ {
		v := make([]float32, dim)
		if i < 10 {
			v[0], v[1] = 1, float32(i)/100 // tight cluster A
		} else {
			v[1], v[0] = 1, float32(i)/100 // tight cluster B
		}
		ids = append(ids, fmt.Sprintf("d%02d", i))
		vecs = append(vecs, v)
	}
	flat, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	ivf := NewIVF(flat, IVFOptions{Clusters: 2, NProbe: 1, Seed: 1})
	sh, err := NewSharded(ivf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Remove(ids[:10]); got != 10 {
		t.Fatalf("Remove = %d, want 10", got)
	}
	// A query inside cluster A probes only tombstoned rows.
	queries := [][]float32{{1, 0.03, 0, 0}, {0, 1, 0.01, 0}}
	assertShardedParity(t, ivf, sh, queries, 5)
}

// TestShardedDegenerate covers empty indexes, empty batches and
// non-positive k: the wrapper must reproduce the unsharded nil-result
// conventions exactly.
func TestShardedDegenerate(t *testing.T) {
	const dim = 8
	empty, err := NewIndex(nil, nil, dim)
	if err != nil {
		t.Fatal(err)
	}
	shEmpty, err := NewSharded(empty, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, dim)
	q[0] = 1
	if got := shEmpty.TopK(q, 3); got != nil {
		t.Errorf("empty-index TopK = %v, want nil", got)
	}
	ids, vecs := mutVecs(5, dim, 2)
	flat, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(flat, 8, 2) // more shards than rows
	if err != nil {
		t.Fatal(err)
	}
	assertShardedParity(t, flat, sh, [][]float32{q, vecs[2]}, 3)
	if got := sh.TopK(q, 0); got != nil {
		t.Errorf("k=0 TopK = %v, want nil", got)
	}
	if got := sh.TopKBatch(nil, 3); len(got) != 0 {
		t.Errorf("empty-batch TopKBatch = %v, want empty", got)
	}
	if _, err := NewSharded(sh, 2, 1); err == nil {
		t.Error("NewSharded over a Sharded index must fail")
	}
}

// TestShardedStats: every scatter task is counted against its shard, so
// after one b-query batch each shard reports one batch of b queries.
func TestShardedStats(t *testing.T) {
	const n, dim = 40, 8
	ids, vecs := mutVecs(n, dim, 5)
	flat, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(flat, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := vecs[:6]
	sh.TopKBatch(queries, 3)
	stats := sh.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(stats))
	}
	for si, st := range stats {
		if st.Batches != 1 || st.Queries != uint64(len(queries)) {
			t.Errorf("shard %d stats = %+v, want {1 %d}", si, st, len(queries))
		}
	}
	if sh.Fingerprint() != flat.Fingerprint() {
		t.Error("sharded fingerprint must equal the wrapped index's")
	}
	clone, err := sh.CloneWithInner(flat.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if clone.Shards() != sh.Shards() {
		t.Errorf("clone shards = %d, want %d", clone.Shards(), sh.Shards())
	}
	for _, st := range clone.ShardStats() {
		if st.Batches != 0 {
			t.Error("clone counters must start at zero")
		}
	}
}
