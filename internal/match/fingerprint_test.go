package match

import "testing"

// fpIndex builds a small flat index for fingerprint tests.
func fpIndex(t *testing.T, n, dim int) *Index {
	t.Helper()
	ids := make([]string, n)
	vecs := make([][]float32, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		v := make([]float32, dim)
		v[i%dim] = 1
		vecs[i] = v
	}
	idx, err := NewIndex(ids, vecs, dim)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestFingerprintDistinguishesConfigurations(t *testing.T) {
	flat := fpIndex(t, 8, 4)
	if got, want := flat.Fingerprint(), fpIndex(t, 8, 4).Fingerprint(); got != want {
		t.Errorf("equal flat configurations disagree: %#x vs %#x", got, want)
	}
	other := fpIndex(t, 9, 4)
	if flat.Fingerprint() == other.Fingerprint() {
		t.Error("flat fingerprint ignores corpus size")
	}

	ivf := NewIVF(flat, IVFOptions{Clusters: 4, NProbe: 2, Seed: 1})
	if ivf.Fingerprint() == flat.Fingerprint() {
		t.Error("IVF fingerprint equals the flat fingerprint")
	}
	same := NewIVF(flat, IVFOptions{Clusters: 4, NProbe: 2, Seed: 1})
	if ivf.Fingerprint() != same.Fingerprint() {
		t.Error("equal IVF configurations disagree")
	}
	for name, o := range map[string]IVFOptions{
		"clusters": {Clusters: 2, NProbe: 2, Seed: 1},
		"nprobe":   {Clusters: 4, NProbe: 3, Seed: 1},
		"adaptive": {Clusters: 4, Seed: 1},
		"seed":     {Clusters: 4, NProbe: 2, Seed: 2},
	} {
		if NewIVF(flat, o).Fingerprint() == ivf.Fingerprint() {
			t.Errorf("IVF fingerprint ignores %s change", name)
		}
	}

	// Every kind tag must keep the kinds pairwise disjoint over the same
	// flat: a cache keyed on the fingerprint must never serve one kind's
	// results for another.
	sq8 := NewIndexSQ8(flat, 2)
	hnsw := NewHNSW(flat, HNSWOptions{Seed: 1})
	fps := map[string]uint64{
		"flat": flat.Fingerprint(),
		"ivf":  ivf.Fingerprint(),
		"sq8":  sq8.Fingerprint(),
		"hnsw": hnsw.Fingerprint(),
	}
	seen := map[uint64]string{}
	for kind, fp := range fps {
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s fingerprints collide: %#x", kind, prev, fp)
		}
		seen[fp] = kind
	}
	if NewHNSW(flat, HNSWOptions{Seed: 1}).Fingerprint() != hnsw.Fingerprint() {
		t.Error("equal HNSW configurations disagree")
	}
}
