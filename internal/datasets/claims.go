package datasets

import (
	"fmt"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// ClaimsConfig sizes the fact-checking text-to-text scenarios (paper §V-C,
// Tables IV and V): a small set of input claims matched against a large
// set of verified claims (facts).
type ClaimsConfig struct {
	Seed int64
	// Facts is the verified-claims pool size.
	Facts int
	// Claims is the number of query claims (each paraphrases one fact).
	Claims int
	// OverlapHigh controls how much surface vocabulary a claim shares with
	// its fact: true for the easier Snopes-like regime (longer claims,
	// more shared tokens), false for the harder Politifact-like regime.
	OverlapHigh      bool
	GeneralSentences int
}

func (c ClaimsConfig) withDefaults() ClaimsConfig {
	if c.Facts <= 0 {
		c.Facts = 1200
	}
	if c.Claims <= 0 {
		c.Claims = 150
	}
	if c.GeneralSentences <= 0 {
		c.GeneralSentences = 4000
	}
	return c
}

type fact struct {
	subject string
	verb    string
	topic   string
	object  string
	country string
	year    int
}

// Claims generates a fact-checking scenario. Facts are templated
// statements; claims paraphrase facts with synonym substitution and token
// dropping, so lexical overlap is partial and pre-trained synonym
// knowledge (the general corpus covers the paraphrase pairs) is genuinely
// useful — the regime where S-BE and supervised rankers are competitive.
func Claims(cfg ClaimsConfig, name string) (*Scenario, error) {
	cfg = cfg.withDefaults()
	r := newRng(cfg.Seed)

	world := make([]fact, cfg.Facts)
	for i := range world {
		world[i] = fact{
			subject: pick(r, claimSubjects),
			verb:    pick(r, claimVerbs),
			topic:   pick(r, claimTopics),
			object:  pick(r, claimObjects),
			country: pick(r, countries),
			year:    2000 + r.Intn(24),
		}
	}

	factTexts := make([]string, len(world))
	factIDs := make([]string, len(world))
	for i, f := range world {
		parts := []string{f.subject, f.verb, f.topic, f.object, "in",
			f.country, "in", fmt.Sprint(f.year)}
		parts = append(parts, pickN(r, generalWords, 3)...)
		factTexts[i] = strings.Join(parts, " ")
		factIDs[i] = fmt.Sprintf("facts:t%d", i)
	}
	facts, err := corpus.NewText("facts", factTexts, factIDs)
	if err != nil {
		return nil, err
	}

	var claimTexts, claimIDs []string
	truth := map[string][]string{}
	for i := 0; i < cfg.Claims; i++ {
		fi := r.Intn(len(world))
		cid := fmt.Sprintf("tweets:p%d", i)
		claimTexts = append(claimTexts, paraphraseClaim(r, world[fi], cfg.OverlapHigh))
		claimIDs = append(claimIDs, cid)
		truth[cid] = []string{factIDs[fi]}
	}
	claims, err := corpus.NewText("tweets", claimTexts, claimIDs)
	if err != nil {
		return nil, err
	}

	// ConceptNet substitute: paraphrase relations, so expansion can bridge
	// a claim's "plummeted" to a fact's "collapsed".
	mem := kb.NewMemory()
	for w, alts := range claimParaphrase {
		for _, a := range alts {
			for _, tok := range strings.Fields(a) {
				if len(tok) > 2 {
					mem.Add(w, "relatedTo", tok)
				}
			}
		}
	}

	return &Scenario{
		Name:    name,
		Task:    TextToText,
		First:   facts,
		Second:  claims,
		Queries: claimIDs,
		Targets: factIDs,
		Truth:   truth,
		KB:      mem,
		Lexicon: kb.NewLexicon(),
		General: GeneralCorpus(cfg.Seed+404, cfg.GeneralSentences),
	}, nil
}

// Snopes builds the easier text-to-text scenario: fewer facts, claims with
// high token overlap (long tweets quoting the fact).
func Snopes(seed int64) (*Scenario, error) {
	return Claims(ClaimsConfig{Seed: seed, Facts: 1100, Claims: 120, OverlapHigh: true}, "snopes")
}

// Politifact builds the harder variant: a larger fact pool and terser
// claims sharing fewer tokens with their fact.
func Politifact(seed int64) (*Scenario, error) {
	return Claims(ClaimsConfig{Seed: seed, Facts: 1700, Claims: 100, OverlapHigh: false}, "politifact")
}

// paraphraseClaim rewrites a fact as a tweet: synonyms replace the verb and
// object, some slots drop, and filler words pad the text.
func paraphraseClaim(r rng, f fact, overlapHigh bool) string {
	keepP := 0.55
	fillerN := 2
	if overlapHigh {
		keepP = 0.85
		fillerN = 5
	}
	var parts []string
	add := func(word string, paraphrasable bool) {
		if r.maybe(keepP) {
			parts = append(parts, word)
			return
		}
		if paraphrasable {
			if alts, ok := claimParaphrase[word]; ok {
				parts = append(parts, pick(r, alts))
			}
		}
	}
	add(f.subject, false)
	add(f.verb, true)
	parts = append(parts, f.topic) // the topic always survives
	add(f.object, true)
	add(f.country, false)
	if r.maybe(0.4) {
		parts = append(parts, fmt.Sprint(f.year))
	}
	parts = append(parts, pickN(r, generalWords, fillerN)...)
	return strings.Join(shuffled(r, parts), " ")
}
