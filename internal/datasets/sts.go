package datasets

import (
	"fmt"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// STSConfig sizes the semantic-textual-similarity scenario (paper §V-C,
// Table VI): sentence pairs with graded similarity 0-5, evaluated as a
// matching task at score thresholds k=2 and k=3.
type STSConfig struct {
	Seed int64
	// Pairs is the number of generated sentence pairs before thresholding.
	Pairs            int
	GeneralSentences int
}

func (c STSConfig) withDefaults() STSConfig {
	if c.Pairs <= 0 {
		c.Pairs = 600
	}
	if c.GeneralSentences <= 0 {
		c.GeneralSentences = 4000
	}
	return c
}

// STSPair is one graded sentence pair.
type STSPair struct {
	Left, Right string
	Score       int // 0 (dissimilar) .. 5 (equivalent)
}

// STSPairs generates graded pairs: the right sentence is derived from the
// left with perturbation strength inversely proportional to the score
// (5 = near copy, 3 = same scene different detail, 0 = unrelated topic).
func STSPairs(cfg STSConfig) []STSPair {
	cfg = cfg.withDefaults()
	r := newRng(cfg.Seed)
	out := make([]STSPair, cfg.Pairs)
	for i := range out {
		score := r.Intn(6)
		topic := pick(r, stsTopics)
		left := stsSentence(r, topic)
		var right string
		switch {
		case score == 5:
			right = left
			if r.maybe(0.5) { // near copy: reorder
				right = strings.Join(shuffled(r, strings.Fields(left)), " ")
			}
		case score >= 3:
			// Same topic, overlapping words, some replaced.
			right = stsPerturb(r, left, topic, 6-score)
		case score == 2:
			// Same topic, mostly different words.
			right = stsSentence(r, topic)
		default:
			// Different topic entirely.
			right = stsSentence(r, pick(r, stsTopics))
		}
		out[i] = STSPair{Left: left, Right: right, Score: score}
	}
	return out
}

func stsSentence(r rng, topic []string) string {
	words := append([]string{}, pickN(r, topic, 3+r.Intn(3))...)
	words = append(words, pickN(r, generalWords, 2+r.Intn(3))...)
	return strings.Join(shuffled(r, words), " ")
}

// stsPerturb replaces `strength` words of the sentence with other topic or
// general words.
func stsPerturb(r rng, sent string, topic []string, strength int) string {
	words := strings.Fields(sent)
	for i := 0; i < strength && len(words) > 0; i++ {
		pos := r.Intn(len(words))
		if r.maybe(0.5) {
			words[pos] = pick(r, topic)
		} else {
			words[pos] = pick(r, generalWords)
		}
	}
	return strings.Join(words, " ")
}

// STS materializes the matching scenario at threshold k: pairs scoring >= k
// are true matches; all right-hand sentences are candidate targets.
// Mirroring the paper, the k=2 dataset is larger than the k=3 one.
func STS(cfg STSConfig, k int) (*Scenario, error) {
	pairs := STSPairs(cfg)
	kept := pairs[:0]
	for _, p := range pairs {
		if p.Score >= k {
			kept = append(kept, p)
		}
	}
	var leftTexts, leftIDs, rightTexts, rightIDs []string
	truth := map[string][]string{}
	for i, p := range kept {
		lid := fmt.Sprintf("left:p%d", i)
		rid := fmt.Sprintf("right:t%d", i)
		leftTexts = append(leftTexts, p.Left)
		leftIDs = append(leftIDs, lid)
		rightTexts = append(rightTexts, p.Right)
		rightIDs = append(rightIDs, rid)
		truth[lid] = []string{rid}
	}
	rights, err := corpus.NewText("right", rightTexts, rightIDs)
	if err != nil {
		return nil, err
	}
	lefts, err := corpus.NewText("left", leftTexts, leftIDs)
	if err != nil {
		return nil, err
	}
	// ConceptNet substitute: topic-word relations.
	mem := kb.NewMemory()
	for _, topic := range stsTopics {
		for i := 0; i+1 < len(topic); i++ {
			mem.Add(topic[i], "relatedTo", topic[i+1])
		}
	}
	return &Scenario{
		Name:    fmt.Sprintf("sts-k%d", k),
		Task:    TextToText,
		First:   rights,
		Second:  lefts,
		Queries: leftIDs,
		Targets: rightIDs,
		Truth:   truth,
		KB:      mem,
		Lexicon: kb.NewLexicon(),
		General: GeneralCorpus(cfg.Seed+505, cfg.withDefaults().GeneralSentences),
	}, nil
}
