package datasets

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// AuditConfig sizes the enterprise audit scenario (paper §V-B, Table III):
// a taxonomy of auditing concepts matched against audit text documents.
type AuditConfig struct {
	Seed int64
	// Level1 is the number of first-level categories under the root.
	Level1 int
	// ConceptsPerCategory bounds the sub-concepts per category subtree.
	ConceptsPerCategory int
	// Documents is the number of audit text documents.
	Documents        int
	GeneralSentences int
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.Level1 <= 0 {
		c.Level1 = 8
	}
	if c.ConceptsPerCategory <= 0 {
		c.ConceptsPerCategory = 14
	}
	if c.Documents <= 0 {
		c.Documents = 200
	}
	if c.GeneralSentences <= 0 {
		c.GeneralSentences = 4000
	}
	return c
}

// Audit generates the taxonomy scenario. Concept labels combine audit
// modifiers and domain terms that the general corpus does not cover, so
// pre-trained substitutes are weak here — the paper's core observation for
// this dataset. Some concepts carry acronyms (e.g. PDCA) whose expansions
// appear in documents, exercised through the lexicon merger.
func Audit(cfg AuditConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	r := newRng(cfg.Seed)

	var nodes []corpus.Node
	rootID := "tax:root"
	nodes = append(nodes, corpus.Node{ID: rootID, Text: "audit"})

	// Deterministic acronym ordering.
	acronyms := make([]string, 0, len(auditAcronyms))
	for a := range auditAcronyms {
		acronyms = append(acronyms, a)
	}
	sort.Strings(acronyms)

	type conceptInfo struct {
		id      string
		label   string
		acronym string
		leaf    bool
	}
	var concepts []conceptInfo

	mods := pickN(r, auditModifiers, cfg.Level1)
	acrIdx := 0
	for li, mod := range mods {
		l1ID := fmt.Sprintf("tax:l1_%d", li)
		nodes = append(nodes, corpus.Node{ID: l1ID, Text: mod + " audit", Parent: rootID})
		// Build a small subtree under each category: chains of depth 1-3.
		parents := []string{l1ID}
		n := cfg.ConceptsPerCategory
		for ci := 0; ci < n; ci++ {
			parent := parents[r.Intn(len(parents))]
			var label, acr string
			if acrIdx < len(acronyms) && r.maybe(0.12) {
				acr = acronyms[acrIdx]
				label = auditAcronyms[acr]
				acrIdx++
			} else {
				label = pick(r, auditConcepts)
				if r.maybe(0.6) {
					label = pick(r, auditModifiers) + " " + label
				}
				if r.maybe(0.3) {
					label = label + " " + pick(r, auditConcepts)
				}
			}
			id := fmt.Sprintf("tax:c%d_%d", li, ci)
			nodes = append(nodes, corpus.Node{ID: id, Text: label, Parent: parent})
			concepts = append(concepts, conceptInfo{id: id, label: label, acronym: acr})
			if r.maybe(0.4) {
				parents = append(parents, id)
			}
		}
	}
	tax, err := corpus.NewStructured("tax", nodes)
	if err != nil {
		return nil, err
	}

	lex := kb.NewLexicon()
	for _, c := range concepts {
		if c.acronym != "" {
			lex.AddSynonyms(c.label, c.acronym)
		}
	}

	// Documents: each references 1-4 concepts (40% one concept, 10% two,
	// rest more, per the paper's annotation distribution) with ambient
	// audit vocabulary that makes everything look alike.
	var docs, docIDs []string
	truth := map[string][]string{}
	for i := 0; i < cfg.Documents; i++ {
		did := fmt.Sprintf("docs:p%d", i)
		var k int
		switch v := r.Float64(); {
		case v < 0.4:
			k = 1
		case v < 0.5:
			k = 2
		default:
			k = 3 + r.Intn(2)
		}
		targets := pickN(r, concepts, k)
		var parts []string
		for _, c := range targets {
			mention := c.label
			if c.acronym != "" && r.maybe(0.6) {
				mention = c.acronym // the PDCA problem
			}
			parts = append(parts, mention)
			truth[did] = append(truth[did], c.id)
		}
		// Ambient domain noise: audit words unrelated to the targets.
		parts = append(parts, "audit")
		parts = append(parts, pickN(r, auditConcepts, 2+r.Intn(3))...)
		parts = append(parts, pickN(r, generalWords, 3+r.Intn(4))...)
		docs = append(docs, strings.Join(shuffled(r, parts), " "))
		docIDs = append(docIDs, did)
	}
	docCorpus, err := corpus.NewText("docs", docs, docIDs)
	if err != nil {
		return nil, err
	}

	// ConceptNet substitute: relatedTo edges between concepts sharing a
	// head term, plus modifier-to-concept associations.
	mem := kb.NewMemory()
	byHead := map[string][]string{}
	for _, c := range concepts {
		fields := strings.Fields(c.label)
		head := fields[len(fields)-1]
		byHead[head] = append(byHead[head], c.label)
		mem.Add(head, "partOf", c.label)
	}
	heads := make([]string, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Strings(heads)
	for _, h := range heads {
		group := byHead[h]
		for i := 0; i+1 < len(group); i++ {
			mem.Add(group[i], "relatedTo", group[i+1])
		}
	}

	targetIDs := make([]string, 0, len(concepts))
	for _, c := range concepts {
		targetIDs = append(targetIDs, c.id)
	}
	return &Scenario{
		Name:    "audit",
		Task:    TextToStructured,
		First:   tax,
		Second:  docCorpus,
		Queries: docIDs,
		Targets: targetIDs,
		Truth:   truth,
		KB:      mem,
		Lexicon: lex,
		General: GeneralCorpus(cfg.Seed+303, cfg.GeneralSentences),
	}, nil
}
