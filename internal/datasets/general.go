package datasets

// GeneralCorpus builds the pre-training corpus for the pretrained-model
// substitutes (Wikipedia2Vec / SentenceBERT stand-ins). It covers generic
// vocabulary — filler words, genre words and their colloquial synonyms,
// political topics and paraphrases, country names, STS topic words and
// person names — with stable co-occurrence structure, but none of the
// entity-specific facts of any scenario world (no movie-to-actor
// bindings). Domain terms like the audit vocabulary appear only rarely and
// in generic contexts, matching how web-scale pre-training covers the
// words but not their domain-specific meaning (§V-F2: "Models pre-trained
// on general corpora do not help much in a domain specific scenario").
func GeneralCorpus(seed int64, sentences int) [][]string {
	r := newRng(seed)
	out := make([][]string, 0, sentences)
	for i := 0; i < sentences; i++ {
		if i%17 == 16 {
			// Sparse, unstructured sightings of domain words: the model
			// knows the tokens, with weak and generic neighbourhoods.
			sent := []string{pick(r, auditConcepts), pick(r, auditModifiers)}
			sent = append(sent, pickN(r, generalWords, 6)...)
			out = append(out, shuffled(r, sent))
			continue
		}
		switch i % 5 {
		case 0: // movie-talk cluster: genre words with their synonyms
			g := pick(r, genres)
			sent := []string{g}
			sent = append(sent, pickN(r, genreSynonyms[g], 2)...)
			sent = append(sent, pickN(r, reviewFiller, 4)...)
			sent = append(sent, pick(r, firstNames), pick(r, lastNames))
			out = append(out, shuffled(r, sent))
		case 1: // politics cluster: topics, verbs and paraphrases co-occur
			v := pick(r, claimObjects)
			sent := []string{pick(r, claimTopics), v, pick(r, claimVerbs)}
			if alts, ok := claimParaphrase[v]; ok {
				sent = append(sent, pick(r, alts))
			}
			sent = append(sent, pickN(r, generalWords, 4)...)
			out = append(out, shuffled(r, sent))
		case 2: // geography cluster
			sent := []string{pick(r, countries), pick(r, countries), pick(r, months)}
			sent = append(sent, pickN(r, generalWords, 5)...)
			out = append(out, shuffled(r, sent))
		case 3: // everyday scenes (STS topics)
			topic := pick(r, stsTopics)
			sent := append([]string{}, pickN(r, topic, 4)...)
			sent = append(sent, pickN(r, generalWords, 3)...)
			out = append(out, shuffled(r, sent))
		default: // plain general text
			out = append(out, pickN(r, generalWords, 8))
		}
	}
	return out
}
