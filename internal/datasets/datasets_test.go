package datasets

import (
	"strings"
	"testing"

	"github.com/tdmatch/tdmatch/internal/corpus"
)

func checkScenarioInvariants(t *testing.T, s *Scenario) {
	t.Helper()
	if s.First == nil || s.Second == nil {
		t.Fatal("nil corpora")
	}
	if len(s.Queries) == 0 || len(s.Targets) == 0 {
		t.Fatal("empty queries or targets")
	}
	targetSet := map[string]bool{}
	for _, id := range s.Targets {
		if _, ok := s.First.Doc(id); !ok && s.Task != TextToStructured {
			t.Errorf("target %s not in first corpus", id)
		}
		targetSet[id] = true
	}
	for _, q := range s.Queries {
		if _, ok := s.Second.Doc(q); !ok {
			t.Errorf("query %s not in second corpus", q)
		}
	}
	for q, ts := range s.Truth {
		if _, ok := s.Second.Doc(q); !ok {
			t.Errorf("truth query %s unknown", q)
		}
		if len(ts) == 0 {
			t.Errorf("truth for %s empty", q)
		}
		for _, tid := range ts {
			if !targetSet[tid] {
				t.Errorf("truth target %s for %s not in Targets", tid, q)
			}
		}
	}
	if s.KB == nil || s.Lexicon == nil {
		t.Error("KB and Lexicon must be non-nil")
	}
	if len(s.General) == 0 {
		t.Error("general corpus empty")
	}
}

func TestIMDbWT(t *testing.T) {
	s, err := IMDb(IMDbConfig{Seed: 1, Movies: 30, WithTitle: true, GeneralSentences: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, s)
	if s.First.Kind != corpus.Table || len(s.First.Columns) != 13 {
		t.Errorf("WT table columns = %d, want 13", len(s.First.Columns))
	}
	if len(s.Queries) != 60 {
		t.Errorf("reviews = %d, want 60", len(s.Queries))
	}
	if s.Task != TextToData {
		t.Errorf("task = %v", s.Task)
	}
	if s.KB.Len() == 0 {
		t.Error("IMDb KB empty")
	}
	if s.Lexicon.Len() == 0 {
		t.Error("IMDb lexicon empty")
	}
}

func TestIMDbNT(t *testing.T) {
	s, err := IMDb(IMDbConfig{Seed: 1, Movies: 20, WithTitle: false, GeneralSentences: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, s)
	if len(s.First.Columns) != 12 {
		t.Errorf("NT table columns = %d, want 12", len(s.First.Columns))
	}
	for _, c := range s.First.Columns {
		if c == "title" {
			t.Error("NT variant must not have a title column")
		}
	}
}

func TestIMDbDeterministic(t *testing.T) {
	a, _ := IMDb(IMDbConfig{Seed: 7, Movies: 10, GeneralSentences: 50})
	b, _ := IMDb(IMDbConfig{Seed: 7, Movies: 10, GeneralSentences: 50})
	for i := range a.Second.Docs {
		if a.Second.Docs[i].Text() != b.Second.Docs[i].Text() {
			t.Fatal("same seed produced different reviews")
		}
	}
	c, _ := IMDb(IMDbConfig{Seed: 8, Movies: 10, GeneralSentences: 50})
	same := true
	for i := range a.Second.Docs {
		if a.Second.Docs[i].Text() != c.Second.Docs[i].Text() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical reviews")
	}
}

func TestIMDbReviewsMentionTheirMovie(t *testing.T) {
	s, err := IMDb(IMDbConfig{Seed: 3, Movies: 25, WithTitle: true, GeneralSentences: 50})
	if err != nil {
		t.Fatal(err)
	}
	// At least 60% of reviews must share a token with their target tuple:
	// matching must be possible but not trivial.
	hits := 0
	for _, q := range s.Queries {
		qd, _ := s.Second.Doc(q)
		td, _ := s.First.Doc(s.Truth[q][0])
		qTokens := map[string]bool{}
		for _, tok := range strings.Fields(strings.ToLower(qd.Text())) {
			qTokens[tok] = true
		}
		shared := false
		for _, tok := range strings.Fields(strings.ToLower(td.Text())) {
			if qTokens[tok] {
				shared = true
				break
			}
		}
		if shared {
			hits++
		}
	}
	if frac := float64(hits) / float64(len(s.Queries)); frac < 0.6 {
		t.Errorf("only %.2f of reviews share tokens with their tuple", frac)
	}
}

func TestCoronaGen(t *testing.T) {
	s, err := Corona(CoronaConfig{Seed: 1, Countries: 10, Months: 6, GenClaims: 40, GeneralSentences: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, s)
	if s.Name != "corona-gen" {
		t.Errorf("name = %s", s.Name)
	}
	if s.First.Len() != 10*6*7 {
		t.Errorf("tuples = %d, want 420", s.First.Len())
	}
	if len(s.Queries) != 40 {
		t.Errorf("claims = %d", len(s.Queries))
	}
}

func TestCoronaUsrHasTypos(t *testing.T) {
	s, err := Corona(CoronaConfig{Seed: 5, Countries: 10, Months: 4, UsrClaims: 40, GeneralSentences: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, s)
	if s.Name != "corona-usr" {
		t.Errorf("name = %s", s.Name)
	}
	// The lexicon must have collected typo synonyms.
	if s.Lexicon.Len() == 0 {
		t.Error("user split produced no typo lexicon entries")
	}
}

func TestCoronaComparativeClaims(t *testing.T) {
	s, err := Corona(CoronaConfig{Seed: 2, Countries: 12, Months: 6, GenClaims: 120, GeneralSentences: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, ts := range s.Truth {
		if len(ts) == 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no comparative (two-row) claims generated")
	}
}

func TestTypoWord(t *testing.T) {
	r := newRng(1)
	for i := 0; i < 50; i++ {
		w := typoWord(r, "france")
		if w == "" {
			t.Fatal("empty typo")
		}
	}
	if typoWord(r, "us") != "us" {
		t.Error("short words must pass through")
	}
}

func TestAudit(t *testing.T) {
	s, err := Audit(AuditConfig{Seed: 1, Level1: 4, ConceptsPerCategory: 8, Documents: 40, GeneralSentences: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, s)
	if s.First.Kind != corpus.Structured {
		t.Fatalf("first corpus kind = %v", s.First.Kind)
	}
	if s.Task != TextToStructured {
		t.Errorf("task = %v", s.Task)
	}
	// Taxonomy paths: every concept reaches the root.
	paths := s.First.Paths()
	for _, id := range s.Targets {
		p := paths[id]
		if len(p) < 3 || p[0] != "tax:root" {
			t.Errorf("concept %s has path %v", id, p)
		}
	}
	// Truth sizes follow the 40%-one-concept distribution loosely.
	ones := 0
	for _, ts := range s.Truth {
		if len(ts) == 1 {
			ones++
		}
	}
	if ones == 0 || ones == len(s.Truth) {
		t.Errorf("degenerate truth-size distribution: %d/%d single", ones, len(s.Truth))
	}
}

func TestAuditAcronymsInLexicon(t *testing.T) {
	s, err := Audit(AuditConfig{Seed: 2, Level1: 6, ConceptsPerCategory: 12, Documents: 30, GeneralSentences: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Lexicon.Len() == 0 {
		t.Skip("no acronym concepts drawn at this seed/size")
	}
	found := false
	for _, p := range s.Lexicon.SynonymPairs() {
		if _, ok := auditAcronyms[p[0]]; ok {
			found = true
		}
	}
	if !found {
		t.Error("lexicon has entries but no acronym pairs")
	}
}

func TestSnopesAndPolitifact(t *testing.T) {
	sn, err := Snopes(1)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, sn)
	po, err := Politifact(1)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, po)
	if po.First.Len() <= sn.First.Len() {
		t.Error("politifact must have the larger fact pool")
	}

	// Overlap asymmetry: snopes claims share more tokens with their fact.
	overlap := func(s *Scenario) float64 {
		total, shared := 0, 0
		for _, q := range s.Queries {
			qd, _ := s.Second.Doc(q)
			fd, _ := s.First.Doc(s.Truth[q][0])
			qt := map[string]bool{}
			for _, tok := range strings.Fields(qd.Text()) {
				qt[tok] = true
			}
			for _, tok := range strings.Fields(fd.Text()) {
				total++
				if qt[tok] {
					shared++
				}
			}
		}
		return float64(shared) / float64(total)
	}
	if overlap(sn) <= overlap(po) {
		t.Errorf("snopes overlap %.3f <= politifact %.3f", overlap(sn), overlap(po))
	}
}

func TestSTSPairsGrading(t *testing.T) {
	pairs := STSPairs(STSConfig{Seed: 1, Pairs: 300})
	if len(pairs) != 300 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Token overlap must increase with score on average.
	overlapByScore := map[int][]float64{}
	for _, p := range pairs {
		lt := map[string]bool{}
		for _, tok := range strings.Fields(p.Left) {
			lt[tok] = true
		}
		shared, total := 0, 0
		for _, tok := range strings.Fields(p.Right) {
			total++
			if lt[tok] {
				shared++
			}
		}
		if total > 0 {
			overlapByScore[p.Score] = append(overlapByScore[p.Score], float64(shared)/float64(total))
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(overlapByScore[5]) <= mean(overlapByScore[0]) {
		t.Errorf("score-5 overlap %.2f <= score-0 overlap %.2f",
			mean(overlapByScore[5]), mean(overlapByScore[0]))
	}
	if mean(overlapByScore[4]) <= mean(overlapByScore[1]) {
		t.Errorf("score-4 overlap %.2f <= score-1 overlap %.2f",
			mean(overlapByScore[4]), mean(overlapByScore[1]))
	}
}

func TestSTSThresholds(t *testing.T) {
	k2, err := STS(STSConfig{Seed: 1, Pairs: 300, GeneralSentences: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, k2)
	k3, err := STS(STSConfig{Seed: 1, Pairs: 300, GeneralSentences: 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkScenarioInvariants(t, k3)
	if len(k3.Queries) >= len(k2.Queries) {
		t.Errorf("k=3 (%d pairs) must be smaller than k=2 (%d)", len(k3.Queries), len(k2.Queries))
	}
}

func TestGeneralCorpus(t *testing.T) {
	g := GeneralCorpus(1, 200)
	if len(g) != 200 {
		t.Fatalf("sentences = %d", len(g))
	}
	vocab := map[string]bool{}
	for _, s := range g {
		if len(s) == 0 {
			t.Fatal("empty sentence")
		}
		for _, w := range s {
			vocab[w] = true
		}
	}
	// Genre synonyms co-occur (pre-trained knowledge the paper exploits).
	if !vocab["comedy"] && !vocab["drama"] {
		t.Error("general corpus missing genre words")
	}
	// Domain-specific audit concepts appear only in rare, generic-context
	// sentences (weak pre-trained coverage, not zero and not structured).
	auditSentences := 0
	for _, s := range g {
		for _, w := range s {
			if w == "materiality" || w == "vouching" || w == "workpaper" ||
				w == "sampling" || w == "ledger" {
				auditSentences++
				break
			}
		}
	}
	if auditSentences > len(g)/8 {
		t.Errorf("audit terms too frequent in general corpus: %d of %d sentences",
			auditSentences, len(g))
	}
}

func TestScenarioTruthSet(t *testing.T) {
	s := &Scenario{Truth: map[string][]string{"q": {"a", "b"}}}
	ts := s.TruthSet("q")
	if !ts["a"] || !ts["b"] || len(ts) != 2 {
		t.Errorf("TruthSet = %v", ts)
	}
	if len(s.TruthSet("missing")) != 0 {
		t.Error("missing query must give empty set")
	}
}

func TestTaskString(t *testing.T) {
	if TextToData.String() == "" || TextToStructured.String() == "" || TextToText.String() == "" {
		t.Error("task names empty")
	}
}

func TestPickHelpers(t *testing.T) {
	r := newRng(1)
	list := []int{1, 2, 3, 4, 5}
	got := pickN(r, list, 3)
	if len(got) != 3 {
		t.Errorf("pickN = %v", got)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Error("pickN returned duplicates")
		}
		seen[v] = true
	}
	all := pickN(r, list, 10)
	if len(all) != 5 {
		t.Errorf("pickN over-request = %v", all)
	}
	sh := shuffled(r, list)
	if len(sh) != 5 {
		t.Errorf("shuffled = %v", sh)
	}
	if &sh[0] == &list[0] {
		t.Error("shuffled must copy")
	}
}
