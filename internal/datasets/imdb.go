package datasets

import (
	"fmt"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// IMDbConfig sizes the movie scenario (paper §V-A, Table I).
type IMDbConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Movies is the number of movies in the table (each gets reviews).
	Movies int
	// ReviewsPerMovie mirrors the paper's two reviews per movie.
	ReviewsPerMovie int
	// WithTitle keeps the title attribute (the WT variant); false drops it
	// (the harder NT variant).
	WithTitle bool
	// GeneralSentences sizes the pre-training corpus substitute.
	GeneralSentences int
}

func (c IMDbConfig) withDefaults() IMDbConfig {
	if c.Movies <= 0 {
		c.Movies = 200
	}
	if c.ReviewsPerMovie <= 0 {
		c.ReviewsPerMovie = 2
	}
	if c.GeneralSentences <= 0 {
		c.GeneralSentences = 4000
	}
	return c
}

// movie is one world entity.
type movie struct {
	title    string
	director string // "first last"
	stars    [2]string
	year     int
	rating   string
	genre    string
	language string
	country  string
	runtime  int
	budget   int
	gross    int
	votes    int
}

// IMDb generates the movie scenario: a movie table (13 attributes with
// title, 12 without) and a review corpus, two reviews per movie. Reviews
// mention entities with surface variation (last names, first-initial
// variants, genre synonyms) and distractor entities from other movies, so
// token overlap alone is ambiguous — the regime the paper targets.
func IMDb(cfg IMDbConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	r := newRng(cfg.Seed)

	// People pools are deliberately smaller than the movie count so the
	// same director and stars appear in several movies — the ambiguity the
	// paper motivates with "an actor named Willis appears in different
	// paragraphs and tuples, but only one tuple is the correct match".
	nDirectors := cfg.Movies/5 + 2
	nStars := cfg.Movies/3 + 4
	directors := make([]string, nDirectors)
	for i := range directors {
		directors[i] = pick(r, firstNames) + " " + pick(r, lastNames)
	}
	stars := make([]string, nStars)
	for i := range stars {
		stars[i] = pick(r, firstNames) + " " + pick(r, lastNames)
	}

	world := make([]movie, cfg.Movies)
	usedTitles := map[string]bool{}
	for i := range world {
		var title string
		for {
			n := 1 + r.Intn(3)
			title = strings.Join(pickN(r, titleWords, n), " ")
			if !usedTitles[title] {
				usedTitles[title] = true
				break
			}
		}
		s1 := pick(r, stars)
		s2 := pick(r, stars)
		for s2 == s1 {
			s2 = pick(r, stars)
		}
		world[i] = movie{
			title:    title,
			director: pick(r, directors),
			stars:    [2]string{s1, s2},
			year:     1960 + r.Intn(64),
			rating:   pick(r, ratings),
			genre:    pick(r, genres),
			language: pick(r, languages),
			country:  pick(r, countries),
			runtime:  80 + r.Intn(110),
			budget:   (1 + r.Intn(200)) * 1000000,
			gross:    (1 + r.Intn(900)) * 1000000,
			votes:    (1 + r.Intn(2000)) * 1000,
		}
	}

	// Table corpus.
	cols := []string{"title", "director", "star1", "star2", "year", "rating",
		"genre", "language", "country", "runtime", "budget", "gross", "votes"}
	if !cfg.WithTitle {
		cols = cols[1:]
	}
	rows := make([][]string, len(world))
	ids := make([]string, len(world))
	for i, m := range world {
		row := []string{m.title, m.director, m.stars[0], m.stars[1],
			fmt.Sprint(m.year), m.rating, m.genre, m.language, m.country,
			fmt.Sprint(m.runtime), fmt.Sprint(m.budget), fmt.Sprint(m.gross),
			fmt.Sprint(m.votes)}
		if !cfg.WithTitle {
			row = row[1:]
		}
		rows[i] = row
		ids[i] = fmt.Sprintf("movies:t%d", i)
	}
	table, err := corpus.NewTable("movies", cols, rows, ids)
	if err != nil {
		return nil, err
	}

	// Review corpus.
	var reviews []string
	var reviewIDs []string
	truth := map[string][]string{}
	for i := range world {
		for k := 0; k < cfg.ReviewsPerMovie; k++ {
			rid := fmt.Sprintf("reviews:p%d_%d", i, k)
			reviews = append(reviews, reviewText(r, world, i))
			reviewIDs = append(reviewIDs, rid)
			truth[rid] = []string{ids[i]}
		}
	}
	text, err := corpus.NewText("reviews", reviews, reviewIDs)
	if err != nil {
		return nil, err
	}

	name := "imdb-nt"
	if cfg.WithTitle {
		name = "imdb-wt"
	}
	return &Scenario{
		Name:    name,
		Task:    TextToData,
		First:   table,
		Second:  text,
		Queries: reviewIDs,
		Targets: ids,
		Truth:   truth,
		KB:      imdbKB(r, world),
		Lexicon: imdbLexicon(world),
		General: GeneralCorpus(cfg.Seed+101, cfg.GeneralSentences),
	}, nil
}

// reviewText writes one review for movie idx: entity mentions with surface
// variation plus filler and distractor mentions. Roughly half the reviews
// never name the title; for those, only the combination of (ambiguous)
// people, genre hints and year disambiguates — the regime where pairwise
// lexical matchers struggle and the joint graph representation pays off.
func reviewText(r rng, world []movie, idx int) string {
	m := world[idx]
	var parts []string

	withTitle := r.maybe(0.5)
	if withTitle {
		if r.maybe(0.7) {
			parts = append(parts, m.title)
		} else {
			tw := strings.Fields(m.title)
			parts = append(parts, pick(r, tw))
		}
	}
	// Director: full name, last name only, or first-initial variant.
	if r.maybe(0.7) || !withTitle {
		parts = append(parts, nameVariant(r, m.director))
	}
	// Stars (at least one in title-free reviews).
	mentioned := 0
	for _, s := range m.stars {
		if r.maybe(0.6) {
			parts = append(parts, nameVariant(r, s))
			mentioned++
		}
	}
	if !withTitle && mentioned == 0 {
		parts = append(parts, nameVariant(r, m.stars[0]))
	}
	// Genre: synonym (the "comedy vs drama" effect) or literal.
	if r.maybe(0.5) {
		parts = append(parts, pick(r, genreSynonyms[m.genre]))
	} else if r.maybe(0.5) {
		parts = append(parts, m.genre)
	}
	// Occasional hard facts.
	if r.maybe(0.35) {
		parts = append(parts, fmt.Sprint(m.year))
	}
	if r.maybe(0.2) {
		parts = append(parts, m.country)
	}
	// Distractors: people from other movies (the ambiguous-Willis case).
	for n := 0; n < 2; n++ {
		if r.maybe(0.5) && len(world) > 1 {
			other := r.Intn(len(world))
			if other == idx {
				other = (other + 1) % len(world)
			}
			parts = append(parts, lastName(world[other].stars[r.Intn(2)]))
		}
	}
	// Filler: generic prose tokens; the intersect filter drops them from
	// the graph while pairwise lexical scorers see them dilute overlap.
	parts = append(parts, pickN(r, reviewFiller, 6+r.Intn(8))...)
	return strings.Join(shuffled(r, parts), " ")
}

// nameVariant renders a person name as "first last", "last", or "f last".
func nameVariant(r rng, full string) string {
	switch r.Intn(3) {
	case 0:
		return full
	case 1:
		return lastName(full)
	default:
		return full[:1] + " " + lastName(full)
	}
}

func lastName(full string) string {
	f := strings.Fields(full)
	return f[len(f)-1]
}

// imdbKB builds the DBpedia substitute: true world facts that the corpora
// do not state, connecting people, titles and genres.
func imdbKB(r rng, world []movie) *kb.Memory {
	m := kb.NewMemory()
	for _, mv := range world {
		m.Add(mv.director, "directorOf", mv.title)
		m.Add(mv.stars[0], "starringOf", mv.title)
		m.Add(mv.stars[1], "starringOf", mv.title)
		m.Add(mv.director, "style", mv.genre)
		m.Add(mv.director, "collaboratedWith", mv.stars[0])
		m.Add(mv.director, "collaboratedWith", mv.stars[1])
		// Last-name aliases bridge review shorthand to full names.
		m.Add(lastName(mv.director), "surnameOf", mv.director)
		m.Add(lastName(mv.stars[0]), "surnameOf", mv.stars[0])
		m.Add(lastName(mv.stars[1]), "surnameOf", mv.stars[1])
		// Noise relations (the >800-relations-per-entity problem, §III-B):
		// spouses and birthplaces that rarely help matching.
		if r.maybe(0.5) {
			m.Add(mv.director, "spouse", pick(r, firstNames)+" "+pick(r, lastNames))
		}
		if r.maybe(0.5) {
			m.Add(mv.stars[0], "birthPlace", pick(r, countries))
		}
	}
	return m
}

// imdbLexicon declares first-initial variants as synonyms of full names,
// the WordNet/Wikipedia2Vec merge cases of §II-C.
func imdbLexicon(world []movie) *kb.Lexicon {
	l := kb.NewLexicon()
	addName := func(full string) {
		fields := strings.Fields(full)
		if len(fields) != 2 {
			return
		}
		l.AddSynonyms(full, full[:1]+" "+fields[1])
	}
	for _, mv := range world {
		addName(mv.director)
		addName(mv.stars[0])
		addName(mv.stars[1])
	}
	return l
}
