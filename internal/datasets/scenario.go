// Package datasets generates the five evaluation scenarios of the paper's
// §V as synthetic equivalents: IMDb (text to data), CoronaCheck (text to
// data, numeric-heavy), Audit (text to structured text), Snopes/Politifact
// (text to text) and STS (graded sentence pairs). Each generator creates a
// closed "world" of entities and facts, derives the two corpora and the
// ground truth from it, and populates the external knowledge base with
// world facts the corpora do not state — mirroring how DBpedia relates to
// the real IMDb. All generation is deterministic given a seed.
package datasets

import (
	"math/rand"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// Task identifies the matching task family, which decides pipeline
// defaults (Skip-gram window 3 for data tasks, CBOW window 15 for text
// tasks, per §V).
type Task uint8

const (
	// TextToData matches text snippets against table tuples.
	TextToData Task = iota
	// TextToStructured matches text documents against taxonomy concepts.
	TextToStructured
	// TextToText matches text snippets against text snippets.
	TextToText
)

// String names the task.
func (t Task) String() string {
	switch t {
	case TextToData:
		return "text-to-data"
	case TextToStructured:
		return "text-to-structured"
	default:
		return "text-to-text"
	}
}

// Scenario is a fully materialized matching task.
type Scenario struct {
	// Name identifies the scenario ("imdb-wt", "corona-gen", ...).
	Name string
	// Task selects pipeline defaults.
	Task Task
	// First and Second are the corpora in graph-creation order; queries
	// come from Second (the text side) and targets from First, matching
	// the paper's tasks (find tuples/concepts/facts for each query text).
	First, Second *corpus.Corpus
	// Queries lists the query document IDs (all in Second).
	Queries []string
	// Targets lists the candidate document IDs (all in First).
	Targets []string
	// Truth maps query IDs to their correct target IDs.
	Truth map[string][]string
	// KB is the external resource for expansion (may be empty, never nil).
	KB *kb.Memory
	// Lexicon holds synonyms/acronyms for node merging (may be empty).
	Lexicon *kb.Lexicon
	// General is the pre-training corpus for the S-BE / Wikipedia2Vec
	// substitutes.
	General [][]string
}

// TruthSet returns the relevant-target set for a query.
func (s *Scenario) TruthSet(query string) map[string]bool {
	out := map[string]bool{}
	for _, t := range s.Truth[query] {
		out[t] = true
	}
	return out
}

// rng wraps math/rand with the deterministic helpers generators need.
type rng struct{ *rand.Rand }

func newRng(seed int64) rng {
	return rng{rand.New(rand.NewSource(seed))}
}

// pick returns a uniform element of list.
func pick[T any](r rng, list []T) T {
	return list[r.Intn(len(list))]
}

// pickN returns n distinct elements (or all when n >= len).
func pickN[T any](r rng, list []T, n int) []T {
	if n >= len(list) {
		out := make([]T, len(list))
		copy(out, list)
		return out
	}
	idx := r.Perm(len(list))[:n]
	out := make([]T, n)
	for i, j := range idx {
		out[i] = list[j]
	}
	return out
}

// maybe returns true with probability p.
func (r rng) maybe(p float64) bool { return r.Float64() < p }

// shuffled returns a shuffled copy.
func shuffled[T any](r rng, list []T) []T {
	out := make([]T, len(list))
	copy(out, list)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
