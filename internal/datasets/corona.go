package datasets

import (
	"fmt"
	"strings"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// CoronaConfig sizes the CoronaCheck scenario (paper §V-A, Table II): a
// numeric-heavy table of per-country daily case statistics matched against
// month-level claim sentences. Country and month alone are ambiguous —
// they select all report days of that month — so the quoted (and usually
// perturbed) case number carries the disambiguating signal, which is why
// numeric bucketing matters here (§V-F2).
type CoronaConfig struct {
	Seed int64
	// Countries and Months bound the table; each (country, month) pair has
	// DaysPerMonth report rows.
	Countries    int
	Months       int
	DaysPerMonth int
	// GenClaims is the number of data-derived claims (the Gen split).
	GenClaims int
	// UsrClaims is the number of noisy user claims (the Usr split):
	// typos in country names and looser phrasing.
	UsrClaims        int
	GeneralSentences int
}

func (c CoronaConfig) withDefaults() CoronaConfig {
	if c.Countries <= 0 {
		c.Countries = 30
	}
	if c.Months <= 0 {
		c.Months = 6
	}
	if c.DaysPerMonth <= 0 {
		c.DaysPerMonth = 7
	}
	if c.GenClaims <= 0 {
		c.GenClaims = 300
	}
	if c.UsrClaims <= 0 {
		c.UsrClaims = 50
	}
	if c.GeneralSentences <= 0 {
		c.GeneralSentences = 4000
	}
	return c
}

type caseRow struct {
	country     string
	month       string
	day         int
	newCases    int
	totalCases  int
	newDeaths   int
	totalDeaths int
}

// Corona generates the CoronaCheck scenario. The Gen split produces claims
// phrased from tuple values with numeric perturbation; the Usr split adds
// country-name typos and looser phrasing.
func Corona(cfg CoronaConfig, userSplit bool) (*Scenario, error) {
	cfg = cfg.withDefaults()
	r := newRng(cfg.Seed)

	countryList := pickN(r, countries, cfg.Countries)
	monthList := months[:min(cfg.Months, len(months))]

	var world []caseRow
	for _, c := range countryList {
		total, totalD := 0, 0
		for _, m := range monthList {
			for d := 0; d < cfg.DaysPerMonth; d++ {
				nc := 100 + r.Intn(99900)
				nd := 10 + r.Intn(4990)
				total += nc
				totalD += nd
				world = append(world, caseRow{
					country: c, month: m, day: 1 + d*(27/cfg.DaysPerMonth+1),
					newCases: nc, totalCases: total,
					newDeaths: nd, totalDeaths: totalD,
				})
			}
		}
	}

	cols := []string{"country", "month", "day", "new_cases", "total_cases", "new_deaths", "total_deaths"}
	rows := make([][]string, len(world))
	ids := make([]string, len(world))
	for i, w := range world {
		rows[i] = []string{w.country, w.month, fmt.Sprint(w.day), fmt.Sprint(w.newCases),
			fmt.Sprint(w.totalCases), fmt.Sprint(w.newDeaths), fmt.Sprint(w.totalDeaths)}
		ids[i] = fmt.Sprintf("cases:t%d", i)
	}
	table, err := corpus.NewTable("cases", cols, rows, ids)
	if err != nil {
		return nil, err
	}

	nClaims := cfg.GenClaims
	if userSplit {
		nClaims = cfg.UsrClaims
	}
	var claims, claimIDs []string
	truth := map[string][]string{}
	lex := kb.NewLexicon()
	for i := 0; i < nClaims; i++ {
		row := r.Intn(len(world))
		cid := fmt.Sprintf("claims:p%d", i)
		text, extraRow := coronaClaim(r, world, row, userSplit, lex)
		claims = append(claims, text)
		claimIDs = append(claimIDs, cid)
		truth[cid] = []string{ids[row]}
		if extraRow >= 0 {
			truth[cid] = append(truth[cid], ids[extraRow])
		}
	}
	text, err := corpus.NewText("claims", claims, claimIDs)
	if err != nil {
		return nil, err
	}

	// ConceptNet-style resource: relations among the metric words claims
	// use ("cases" ~ "infections"), keyed on stemmed forms to match graph
	// labels. Under the default intersect filtering these words never
	// become data nodes (the table holds only countries, months and
	// numbers), so expansion is close to neutral on this scenario — an
	// earlier design with country "neighbor" relations actively hurt by
	// bridging tuples of different countries, which is why the resource
	// deliberately relates only query-side concepts.
	mem := kb.NewMemory()
	addStemmed := func(s, p, o string) {
		mem.Add(textproc.Stem(s), p, textproc.Stem(o))
	}
	addStemmed("cases", "relatedTo", "infections")
	addStemmed("cases", "relatedTo", "confirmed")
	addStemmed("deaths", "relatedTo", "fatalities")
	addStemmed("deaths", "relatedTo", "casualties")
	addStemmed("total", "relatedTo", "cumulative")
	addStemmed("new", "relatedTo", "daily")

	name := "corona-gen"
	if userSplit {
		name = "corona-usr"
	}
	return &Scenario{
		Name:    name,
		Task:    TextToData,
		First:   table,
		Second:  text,
		Queries: claimIDs,
		Targets: ids,
		Truth:   truth,
		KB:      mem,
		Lexicon: lex,
		General: GeneralCorpus(cfg.Seed+202, cfg.GeneralSentences),
	}, nil
}

// coronaClaim phrases one claim about row idx; comparative claims also
// return a second supporting row (the "US higher than China" case).
func coronaClaim(r rng, world []caseRow, idx int, user bool, lex *kb.Lexicon) (string, int) {
	w := world[idx]
	metric, value := pickMetric(r, w)
	country := w.country
	if user && r.maybe(0.5) {
		typo := typoWord(r, country)
		lex.AddSynonyms(country, typo)
		country = typo
	}
	// Numeric perturbation: claims usually quote approximate values
	// (rounded, slightly off), so exact token matches are rare and
	// bucketing must bridge claim and tuple.
	if r.maybe(0.85) {
		value += r.Intn(801) - 400
		if value < 0 {
			value = 0
		}
	}
	var parts []string
	if r.maybe(0.3) && !user {
		// Comparative claim across two countries, same month and metric.
		other := -1
		for try := 0; try < 20; try++ {
			cand := r.Intn(len(world))
			if world[cand].month == w.month && world[cand].country != w.country {
				other = cand
				break
			}
		}
		if other >= 0 {
			parts = []string{metric, "in", country, "higher", "than",
				world[other].country, "in", w.month}
			return strings.Join(parts, " "), other
		}
	}
	templates := [][]string{
		{"number", "of", metric, "in", country, "in", w.month, "reached", fmt.Sprint(value)},
		{metric, "in", country, "during", w.month, "was", fmt.Sprint(value)},
		{country, "reported", fmt.Sprint(value), metric, "in", w.month},
	}
	parts = templates[r.Intn(len(templates))]
	if user {
		parts = append(parts, pickN(r, generalWords, 2+r.Intn(3))...)
	}
	return strings.Join(parts, " "), -1
}

func pickMetric(r rng, w caseRow) (string, int) {
	switch r.Intn(4) {
	case 0:
		return "new cases", w.newCases
	case 1:
		return "total cases", w.totalCases
	case 2:
		return "new deaths", w.newDeaths
	default:
		return "total deaths", w.totalDeaths
	}
}

// typoWord injects a single-character typo (drop, swap or duplicate).
func typoWord(r rng, w string) string {
	if len(w) < 4 {
		return w
	}
	i := 1 + r.Intn(len(w)-2)
	switch r.Intn(3) {
	case 0: // drop
		return w[:i] + w[i+1:]
	case 1: // swap
		b := []byte(w)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	default: // duplicate
		return w[:i] + w[i:i+1] + w[i:]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
