package datasets

// Vocabulary inventories for the synthetic worlds. Each scenario draws
// deterministic entities from these lists; the general corpus (the
// pre-training substitute) covers the generic words but not the
// domain-specific combinations, reproducing the coverage gap between
// pre-trained models and domain corpora that the paper measures.

var firstNames = []string{
	"bruce", "quentin", "samuel", "uma", "john", "harvey", "tim", "ving",
	"brad", "edward", "helena", "meat", "jared", "norton", "marlon", "al",
	"james", "diane", "robert", "talia", "christian", "heath", "aaron",
	"michael", "gary", "morgan", "tom", "bob", "elijah", "ian", "viggo",
	"sean", "liv", "orlando", "cate", "keanu", "laurence", "carrie",
	"hugo", "joe", "leonardo", "ellen", "joseph", "marion", "ken", "jack",
	"kate", "billy", "kathy", "frances", "russell", "ed", "jennifer",
	"paul", "anthony", "jodie", "scott", "ted", "anne", "david", "sigourney",
	"jeff", "sam", "julianne", "steve", "peter", "natalie", "hugh", "sally",
	"daniel", "rachel", "emma", "rupert", "alan", "maggie", "ralph", "gina",
	"denzel", "ethan", "clive", "julia", "vincent", "angela", "forest",
	"sofia", "ryan", "emily", "mark", "amy", "bradley", "alicia", "oscar",
	"lupita", "adam", "scarlett", "chris", "zoe", "karen", "benedict",
}

var lastNames = []string{
	"willis", "tarantino", "jackson", "thurman", "travolta", "keitel",
	"roth", "rhames", "pitt", "norton", "bonham", "loaf", "leto", "shyamalan",
	"brando", "pacino", "caan", "keaton", "duvall", "shire", "bale",
	"ledger", "eckhart", "caine", "oldman", "freeman", "hanks", "gunton",
	"wood", "mckellen", "mortensen", "astin", "tyler", "bloom", "blanchett",
	"reeves", "fishburne", "moss", "weaving", "pantoliano", "dicaprio",
	"page", "gordon", "cotillard", "watanabe", "nicholson", "winslet",
	"crudup", "bates", "mcdormand", "crowe", "harris", "connelly", "bettany",
	"hopkins", "foster", "glenn", "levine", "heche", "fincher", "weaver",
	"bridges", "rockwell", "moore", "buscemi", "sarsgaard", "portman",
	"jackman", "field", "craig", "weisz", "watson", "grint", "rickman",
	"smith", "fiennes", "torres", "washington", "hawke", "owen", "roberts",
	"cassel", "bassett", "whitaker", "coppola", "gosling", "blunt",
	"ruffalo", "adams", "cooper", "vikander", "isaac", "nyongo", "driver",
	"johansson", "pratt", "saldana", "gillan", "cumberbatch",
}

var titleWords = []string{
	"sixth", "sense", "pulp", "fiction", "godfather", "dark", "knight",
	"shawshank", "redemption", "fight", "club", "matrix", "inception",
	"return", "king", "fellowship", "ring", "towers", "silence", "lambs",
	"beautiful", "mind", "gladiator", "departed", "prestige", "memento",
	"alien", "blade", "runner", "seven", "usual", "suspects", "goodfellas",
	"casino", "heat", "taxi", "driver", "raging", "bull", "rocky",
	"terminator", "predator", "jaws", "vertigo", "psycho", "birds",
	"casablanca", "chinatown", "network", "amadeus", "platoon", "unforgiven",
	"braveheart", "titanic", "avatar", "interstellar", "arrival", "whiplash",
	"birdman", "boyhood", "moonlight", "parasite", "joker", "dunkirk",
	"tenet", "oppenheimer", "barbie", "frozen", "coco", "ratatouille",
	"wall", "street", "social", "wolf", "revenant", "martian", "gravity",
}

var genres = []string{
	"drama", "comedy", "thriller", "action", "horror", "romance",
	"western", "musical", "documentary", "animation", "crime", "mystery",
}

// genreSynonyms are review-side ways to refer to a genre without naming it,
// the "Pulp Fiction is reported as Drama but comedy is mentioned" problem.
var genreSynonyms = map[string][]string{
	"drama":       {"dramatic", "moving", "tragedy"},
	"comedy":      {"funny", "hilarious", "comedic"},
	"thriller":    {"tense", "suspenseful", "gripping"},
	"action":      {"explosive", "fast", "adrenaline"},
	"horror":      {"scary", "terrifying", "frightening"},
	"romance":     {"romantic", "love", "tender"},
	"western":     {"frontier", "cowboy", "desert"},
	"musical":     {"songs", "singing", "melodic"},
	"documentary": {"factual", "real", "archive"},
	"animation":   {"animated", "cartoon", "drawn"},
	"crime":       {"heist", "gangster", "underworld"},
	"mystery":     {"puzzle", "enigmatic", "whodunit"},
}

var ratings = []string{"g", "pg", "pg13", "r", "nc17"}

var languages = []string{"english", "french", "italian", "spanish", "german", "japanese", "korean", "mandarin"}

var countries = []string{
	"usa", "france", "italy", "spain", "germany", "japan", "korea", "china",
	"india", "brazil", "mexico", "canada", "australia", "russia", "turkey",
	"iran", "egypt", "nigeria", "kenya", "sweden", "norway", "poland",
	"austria", "belgium", "portugal", "greece", "ireland", "denmark",
	"finland", "hungary", "romania", "chile", "peru", "colombia", "argentina",
	"thailand", "vietnam", "indonesia", "malaysia", "philippines",
}

var months = []string{
	"january", "february", "march", "april", "may", "june",
	"july", "august", "september", "october", "november", "december",
}

// reviewFiller are generic words that appear in reviews and in the general
// corpus; they carry no matching signal.
var reviewFiller = []string{
	"masterpiece", "performance", "scene", "plot", "character", "screen",
	"cinema", "story", "watch", "acting", "script", "dialogue", "ending",
	"beginning", "camera", "music", "score", "visual", "effect", "scenes",
	"audience", "memorable", "boring", "brilliant", "stunning", "weak",
	"pacing", "tone", "atmosphere", "classic", "modern", "style",
}

// claimVerbs / claimObjects feed the fact-checking scenarios.
var claimSubjects = []string{
	"senator", "president", "governor", "mayor", "minister", "candidate",
	"spokesman", "official", "agency", "committee", "company", "union",
	"hospital", "university", "school", "police", "army", "court",
}

var claimVerbs = []string{
	"claimed", "said", "announced", "denied", "reported", "stated",
	"confirmed", "promised", "suggested", "revealed", "admitted", "argued",
}

var claimTopics = []string{
	"taxes", "immigration", "healthcare", "education", "unemployment",
	"inflation", "crime", "energy", "climate", "election", "budget",
	"pension", "housing", "transport", "security", "trade", "wages",
	"tariffs", "debt", "borders", "vaccines", "schools",
}

var claimObjects = []string{
	"increased", "decreased", "doubled", "halved", "stabilized",
	"collapsed", "improved", "worsened", "recovered", "stalled",
}

// claimParaphrase maps fact words to tweet-side paraphrases.
var claimParaphrase = map[string][]string{
	"increased":  {"grew", "rose", "went up"},
	"decreased":  {"fell", "dropped", "went down"},
	"doubled":    {"twice", "two times"},
	"halved":     {"half", "cut in two"},
	"stabilized": {"flat", "steady"},
	"collapsed":  {"crashed", "plummeted"},
	"improved":   {"better", "gains"},
	"worsened":   {"worse", "deteriorated"},
	"recovered":  {"rebound", "bounced back"},
	"stalled":    {"stuck", "frozen"},
	"claimed":    {"says", "asserts"},
	"announced":  {"unveiled", "declared"},
	"denied":     {"rejected", "disputed"},
}

// auditconcepts feed the taxonomy scenario; they are domain-specific and
// deliberately excluded from the general corpus.
var auditConcepts = []string{
	"compliance", "assurance", "materiality", "sampling", "vouching",
	"substantive", "walkthrough", "attestation", "engagement", "fieldwork",
	"workpaper", "misstatement", "disclosure", "provision", "impairment",
	"reconciliation", "segregation", "authorization", "custody", "ledger",
	"journal", "accrual", "deferral", "valuation", "completeness",
	"occurrence", "cutoff", "classification", "existence", "rights",
	"obligations", "governance", "oversight", "remediation", "deficiency",
	"scoping", "benchmark", "rollforward", "confirmation", "observation",
	"inquiry", "reperformance", "recalculation", "procedures", "evidence",
	"documentation", "independence", "skepticism", "judgment", "estimate",
}

var auditModifiers = []string{
	"internal", "external", "financial", "operational", "statutory",
	"interim", "annual", "preliminary", "final", "consolidated",
	"risk", "control", "fraud", "inventory", "revenue", "payroll",
	"treasury", "procurement", "entity", "group",
}

// auditAcronyms map acronyms to their expansions — the PDCA problem of the
// paper's Example 2.
var auditAcronyms = map[string]string{
	"pdca": "plan do check act",
	"icfr": "internal control financial reporting",
	"sox":  "sarbanes oxley",
	"coso": "committee sponsoring organizations",
	"gaap": "generally accepted accounting principles",
	"ifrs": "international financial reporting standards",
	"aml":  "anti money laundering",
	"kyc":  "know your customer",
	"sod":  "segregation of duties",
	"itgc": "information technology general controls",
}

// generalWords pad the general corpus so it behaves like one trained on
// web-scale text: common nouns/verbs with stable co-occurrence patterns.
var generalWords = []string{
	"people", "time", "year", "way", "day", "man", "thing", "woman",
	"life", "child", "world", "school", "state", "family", "student",
	"group", "country", "problem", "hand", "part", "place", "case",
	"week", "company", "system", "program", "question", "work",
	"government", "number", "night", "point", "home", "water", "room",
	"mother", "area", "money", "story", "fact", "month", "lot", "right",
	"study", "book", "eye", "job", "word", "business", "issue", "side",
	"kind", "head", "house", "service", "friend", "father", "power",
	"hour", "game", "line", "end", "member", "law", "car", "city",
	"community", "name", "president", "team", "minute", "idea", "kid",
	"body", "information", "back", "parent", "face", "others", "level",
	"office", "door", "health", "person", "art", "war", "history", "party",
	"result", "change", "morning", "reason", "research", "girl", "guy",
	"moment", "air", "teacher", "force", "education",
}

// stsTopics give each STS sentence a topic frame.
var stsTopics = [][]string{
	{"dog", "running", "park", "grass", "ball", "playing"},
	{"man", "guitar", "playing", "stage", "music", "crowd"},
	{"woman", "cooking", "kitchen", "food", "dinner", "recipe"},
	{"children", "school", "classroom", "reading", "books", "teacher"},
	{"plane", "airport", "landing", "runway", "flight", "passengers"},
	{"train", "station", "platform", "passengers", "departure", "tracks"},
	{"cat", "sleeping", "sofa", "window", "sunlight", "afternoon"},
	{"chef", "restaurant", "plates", "serving", "customers", "meal"},
	{"team", "soccer", "field", "goal", "match", "players"},
	{"car", "road", "driving", "highway", "traffic", "speed"},
	{"boat", "river", "sailing", "water", "fishing", "nets"},
	{"birds", "sky", "flying", "flock", "clouds", "wind"},
}
