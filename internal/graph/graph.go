// Package graph implements the heterogeneous-corpora graph at the core of
// the paper (§II): an undirected, unweighted graph whose data nodes are
// pre-processed terms and whose metadata nodes represent tuples, table
// attributes, text snippets and taxonomy concepts. It also provides the
// node-merging machinery of §II-C (bucketing, lexicon and embedding-based
// synonym merging) and the shortest-path primitives used by compression.
package graph

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes data nodes from the metadata node flavours.
type NodeKind uint8

const (
	// Data nodes represent terms (1..n-gram of processed tokens).
	Data NodeKind = iota
	// Tuple metadata nodes represent table rows.
	Tuple
	// Attribute metadata nodes represent table columns; they add 2-hop
	// paths across the active domain of an attribute.
	Attribute
	// Snippet metadata nodes represent free-text documents.
	Snippet
	// Concept metadata nodes represent structured-text (taxonomy) nodes.
	Concept
	// External nodes are added by graph expansion from a knowledge base.
	External
)

// String returns a short lower-case name for the kind.
func (k NodeKind) String() string {
	switch k {
	case Data:
		return "data"
	case Tuple:
		return "tuple"
	case Attribute:
		return "attribute"
	case Snippet:
		return "snippet"
	case Concept:
		return "concept"
	case External:
		return "external"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMetadata reports whether nodes of this kind represent documents to be
// matched (tuples, snippets, concepts). Attribute nodes are structural
// metadata but are never matched, and are not treated as match endpoints.
func (k NodeKind) IsMetadata() bool {
	return k == Tuple || k == Snippet || k == Concept
}

// Side tells which input corpus a metadata node belongs to.
type Side uint8

const (
	// NoSide marks data, attribute and external nodes.
	NoSide Side = iota
	// First marks metadata of the first corpus.
	First
	// Second marks metadata of the second corpus.
	Second
)

// NodeID indexes a node. IDs are dense and stable for the graph's lifetime;
// removed nodes keep their ID but are skipped by all iteration helpers.
type NodeID int32

// Graph is an undirected, unweighted multigraph-free graph.
// The zero value is not usable; call New.
type Graph struct {
	labels  []string
	kinds   []NodeKind
	sides   []Side
	adj     [][]NodeID
	removed []bool

	// csrOff/csrAdj hold the frozen CSR adjacency (see Freeze): node i's
	// neighbors are csrAdj[csrOff[i]:csrOff[i+1]]. While frozen, adj is
	// nil; any mutation thaws back to per-node slices transparently.
	csrOff []int32
	csrAdj []NodeID

	// The frozen CSR is an immutable sealed segment: PatchEdges on a
	// frozen graph never rewrites it. Appended neighbors live in the
	// ovAdj overlay (keyed by node, appended in patch order) and their
	// edge keys in ovEdges, so patching costs O(patch) instead of
	// O(total edges) and sibling clones can share the CSR arrays.
	// Nodes added while frozen are not in csrOff at all — their
	// adjacency is overlay-only. mergeOverlay folds everything back
	// into one CSR; thaw folds it into per-node slices.
	ovAdj   map[NodeID][]NodeID
	ovEdges map[uint64]struct{}

	dataIndex map[string]NodeID // canonical term -> data/external node
	metaIndex map[string]NodeID // label -> metadata/attribute node

	// edges holds the sealed edge set. After a frozen Clone both
	// siblings share it (edgesShared set on both); any path that must
	// write it calls ownEdges first, paying the O(E) copy only on the
	// rare removal/thaw paths — the delta-ingest hot path writes
	// ovEdges only.
	edges       map[uint64]struct{}
	edgesShared bool
	nRemoved    int
}

// New returns an empty graph with capacity hints.
func New(nodeHint int) *Graph {
	return &Graph{
		labels:    make([]string, 0, nodeHint),
		kinds:     make([]NodeKind, 0, nodeHint),
		sides:     make([]Side, 0, nodeHint),
		adj:       make([][]NodeID, 0, nodeHint),
		removed:   make([]bool, 0, nodeHint),
		dataIndex: make(map[string]NodeID, nodeHint),
		metaIndex: make(map[string]NodeID),
		edges:     make(map[uint64]struct{}, nodeHint*4),
	}
}

// Freeze compacts the per-node adjacency slices into one CSR layout —
// an offsets array plus a single flat neighbor slice — so that walk
// generation and shortest-path scans read sequential memory instead of
// chasing one heap allocation per node. Freezing is idempotent and
// transparent: Neighbors and Degree serve from the CSR, and any later
// mutation (AddEdge, RemoveNode, ...) thaws back to per-node slices
// automatically. The pipeline freezes after compression, right before
// walk generation.
func (g *Graph) Freeze() {
	if g.csrOff != nil {
		// Already frozen: fold any patch overlay so the CSR is current —
		// Freeze's contract is that walks may index the raw arrays.
		g.mergeOverlay()
		return
	}
	total := 0
	off := make([]int32, len(g.adj)+1)
	for i, a := range g.adj {
		off[i] = int32(total)
		total += len(a)
	}
	if int64(total) > int64(1)<<31-1 {
		// CSR offsets are int32; fail loudly instead of silently wrapping
		// (2^31 adjacency entries is ~1 billion edges).
		panic(fmt.Sprintf("graph: %d adjacency entries overflow the CSR int32 offsets", total))
	}
	off[len(g.adj)] = int32(total)
	flat := make([]NodeID, total)
	pos := 0
	for _, a := range g.adj {
		pos += copy(flat[pos:], a)
	}
	g.csrOff, g.csrAdj = off, flat
	g.adj = nil
}

// Frozen reports whether the adjacency currently lives in the compact CSR
// layout built by Freeze.
func (g *Graph) Frozen() bool { return g.csrOff != nil }

// CSR returns the frozen adjacency arrays — node i's neighbors are
// neighbors[offsets[i]:offsets[i+1]] — or (nil, nil) when the graph is
// not frozen or a patch overlay is pending (the raw CSR would then miss
// patched edges; use NeighborParts instead). Hot loops (walk
// generation) index these directly instead of paying the per-step
// Neighbors branch and slice construction. Callers must not mutate the
// returned slices.
func (g *Graph) CSR() (offsets []int32, neighbors []NodeID) {
	if g.hasOverlay() {
		return nil, nil
	}
	return g.csrOff, g.csrAdj
}

// NeighborParts returns id's adjacency as up to two allocation-free
// views: the sealed CSR row and the patch-overlay tail (either may be
// empty). Their concatenation, in that order, is exactly Neighbors(id).
// On a thawed graph the whole list is returned as base. Callers must
// not mutate the returned slices.
func (g *Graph) NeighborParts(id NodeID) (base, overlay []NodeID) {
	if g.csrOff == nil {
		return g.adj[id], nil
	}
	if int(id)+1 < len(g.csrOff) {
		base = g.csrAdj[g.csrOff[id]:g.csrOff[id+1]]
	}
	return base, g.ovAdj[id]
}

// ownEdges makes the sealed edge map private to this graph, copying it
// if a frozen Clone left it shared with a sibling. Every writer of
// g.edges must call it first.
func (g *Graph) ownEdges() {
	if !g.edgesShared {
		return
	}
	own := make(map[uint64]struct{}, len(g.edges))
	for k := range g.edges {
		own[k] = struct{}{}
	}
	g.edges = own
	g.edgesShared = false
}

// hasOverlay reports whether the frozen CSR is extended by a patch
// overlay (appended neighbors or overlay-only nodes).
func (g *Graph) hasOverlay() bool {
	return len(g.ovAdj) > 0 || (g.csrOff != nil && len(g.labels)+1 > len(g.csrOff))
}

// foldOverlayEdges merges the overlay edge keys into the owned sealed
// edge map and drops the overlay adjacency.
func (g *Graph) foldOverlayEdges() {
	g.ownEdges()
	for k := range g.ovEdges {
		g.edges[k] = struct{}{}
	}
	g.ovAdj, g.ovEdges = nil, nil
}

// mergeOverlay folds the patch overlay into a fresh CSR covering every
// node — the compaction step that re-seals a patched frozen graph. Row
// layout matches what repeated thawed AddEdge calls would produce:
// sealed neighbors first, overlay neighbors appended at the row tail in
// patch order, so walk RNG streams see identical neighbor indexing.
func (g *Graph) mergeOverlay() {
	if g.csrOff == nil || !g.hasOverlay() {
		return
	}
	oldOff, oldAdj := g.csrOff, g.csrAdj
	covered := len(oldOff) - 1
	total := len(oldAdj)
	for _, ov := range g.ovAdj {
		total += len(ov)
	}
	if int64(total) > int64(1)<<31-1 {
		panic(fmt.Sprintf("graph: %d adjacency entries overflow the CSR int32 offsets", total))
	}
	newOff := make([]int32, len(g.labels)+1)
	newAdj := make([]NodeID, total)
	pos := 0
	for i := range g.labels {
		newOff[i] = int32(pos)
		if i < covered {
			pos += copy(newAdj[pos:], oldAdj[oldOff[i]:oldOff[i+1]])
		}
		pos += copy(newAdj[pos:], g.ovAdj[NodeID(i)])
	}
	newOff[len(g.labels)] = int32(pos)
	g.csrOff, g.csrAdj = newOff, newAdj
	g.foldOverlayEdges()
}

// MergeOverlay folds any pending patch overlay into the compact CSR
// layout — an explicit compaction point for callers that want walks
// back on the pure-CSR fast path after a burst of patches.
func (g *Graph) MergeOverlay() { g.mergeOverlay() }

// thaw rebuilds the mutable per-node adjacency slices from the CSR
// (folding in any patch overlay) and drops it. Called by every mutating
// method so a frozen graph stays fully functional at the cost of one
// rebuild.
func (g *Graph) thaw() {
	if g.csrOff == nil {
		return
	}
	covered := len(g.csrOff) - 1
	adj := make([][]NodeID, len(g.labels))
	for i := range adj {
		var row []NodeID
		if i < covered {
			row = g.csrAdj[g.csrOff[i]:g.csrOff[i+1]]
		}
		ov := g.ovAdj[NodeID(i)]
		if len(row)+len(ov) > 0 {
			merged := make([]NodeID, 0, len(row)+len(ov))
			adj[i] = append(append(merged, row...), ov...)
		}
	}
	g.adj = adj
	g.csrOff, g.csrAdj = nil, nil
	g.foldOverlayEdges()
}

func (g *Graph) addNode(label string, kind NodeKind, side Side) NodeID {
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, label)
	g.kinds = append(g.kinds, kind)
	g.sides = append(g.sides, side)
	g.removed = append(g.removed, false)
	if g.csrOff != nil {
		// Frozen: the sealed CSR (possibly shared with a clone) is never
		// appended to — the new node's adjacency lives purely in the patch
		// overlay until the next mergeOverlay/thaw. The delta-ingest path
		// adds nodes against the frozen graph and wires their edges with
		// PatchEdges, never paying a thaw.
		return id
	}
	g.adj = append(g.adj, nil)
	return id
}

// EnsureData returns the data node for term, creating it if needed.
func (g *Graph) EnsureData(term string) NodeID {
	if id, ok := g.dataIndex[term]; ok {
		return id
	}
	id := g.addNode(term, Data, NoSide)
	g.dataIndex[term] = id
	return id
}

// EnsureExternal returns the node for an entity added by expansion,
// creating it as an External node if no data node with that label exists.
func (g *Graph) EnsureExternal(label string) NodeID {
	if id, ok := g.dataIndex[label]; ok {
		return id
	}
	id := g.addNode(label, External, NoSide)
	g.dataIndex[label] = id
	return id
}

// AddMeta creates a metadata (or attribute) node with a unique label.
// It returns an error if the label is already taken.
func (g *Graph) AddMeta(label string, kind NodeKind, side Side) (NodeID, error) {
	if kind == Data || kind == External {
		return 0, fmt.Errorf("graph: AddMeta called with kind %v", kind)
	}
	if _, ok := g.metaIndex[label]; ok {
		return 0, fmt.Errorf("graph: duplicate metadata label %q", label)
	}
	id := g.addNode(label, kind, side)
	g.metaIndex[label] = id
	return id, nil
}

// DataNode returns the node for a canonical term.
func (g *Graph) DataNode(term string) (NodeID, bool) {
	id, ok := g.dataIndex[term]
	if ok && g.removed[id] {
		return 0, false
	}
	return id, ok
}

// MetaNode returns the metadata node with the given label.
func (g *Graph) MetaNode(label string) (NodeID, bool) {
	id, ok := g.metaIndex[label]
	if ok && g.removed[id] {
		return 0, false
	}
	return id, ok
}

func edgeKey(a, b NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// hasEdgeKey reports whether the edge key exists in the sealed set or
// the patch overlay.
func (g *Graph) hasEdgeKey(k uint64) bool {
	if _, ok := g.edges[k]; ok {
		return true
	}
	_, ok := g.ovEdges[k]
	return ok
}

// AddEdge inserts the undirected edge {a,b} if not present. Self loops are
// ignored: they add nothing to walks or shortest paths.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b || g.removed[a] || g.removed[b] {
		return
	}
	k := edgeKey(a, b)
	if g.hasEdgeKey(k) {
		return
	}
	g.thaw()
	g.ownEdges()
	g.edges[k] = struct{}{}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// PatchEdges inserts a batch of undirected edges. On a frozen graph the
// new neighbor entries land in the patch overlay — O(patch) work that
// never rewrites the sealed CSR arrays, which stay shared with any
// clones — the "patch" half of the delta path's thaw-or-patch contract.
// On a thawed graph it is a plain AddEdge loop. Self loops, edges
// touching removed nodes and duplicates (within the batch or against
// existing edges) are skipped.
func (g *Graph) PatchEdges(pairs [][2]NodeID) {
	if g.csrOff == nil {
		for _, p := range pairs {
			g.AddEdge(p[0], p[1])
		}
		return
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if a == b || g.removed[a] || g.removed[b] {
			continue
		}
		k := edgeKey(a, b)
		if g.hasEdgeKey(k) {
			continue
		}
		if g.ovEdges == nil {
			g.ovEdges = make(map[uint64]struct{})
		}
		if g.ovAdj == nil {
			g.ovAdj = make(map[NodeID][]NodeID)
		}
		g.ovEdges[k] = struct{}{}
		g.ovAdj[a] = append(g.ovAdj[a], b)
		g.ovAdj[b] = append(g.ovAdj[b], a)
	}
}

// HasEdge reports whether the undirected edge {a,b} exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	return g.hasEdgeKey(edgeKey(a, b))
}

// removeEdgeHalf removes b from a's adjacency list.
func (g *Graph) removeEdgeHalf(a, b NodeID) {
	lst := g.adj[a]
	for i, n := range lst {
		if n == b {
			lst[i] = lst[len(lst)-1]
			g.adj[a] = lst[:len(lst)-1]
			return
		}
	}
}

// RemoveEdge deletes the undirected edge {a,b} if present.
func (g *Graph) RemoveEdge(a, b NodeID) {
	k := edgeKey(a, b)
	if _, ok := g.edges[k]; !ok {
		return
	}
	g.thaw()
	delete(g.edges, k)
	g.removeEdgeHalf(a, b)
	g.removeEdgeHalf(b, a)
}

// RemoveNode deletes the node and all incident edges. The NodeID stays
// allocated (iteration helpers skip it). Deleting many nodes at once is
// much cheaper through RemoveNodes, which compacts each surviving
// adjacency list a single time instead of scanning it once per removed
// edge.
func (g *Graph) RemoveNode(id NodeID) {
	if g.removed[id] {
		return
	}
	g.thaw()
	for _, n := range g.adj[id] {
		delete(g.edges, edgeKey(id, n))
		g.removeEdgeHalf(n, id)
	}
	g.adj[id] = nil
	g.removed[id] = true
	g.nRemoved++
	g.dropFromIndex(id)
}

// dropFromIndex removes a deleted node's label from the lookup maps.
func (g *Graph) dropFromIndex(id NodeID) {
	switch g.kinds[id] {
	case Data, External:
		if g.dataIndex[g.labels[id]] == id {
			delete(g.dataIndex, g.labels[id])
		}
	default:
		delete(g.metaIndex, g.labels[id])
	}
}

// RemoveNodes deletes a batch of nodes and their incident edges in one
// mark-and-compact pass: victims are flagged first, then every surviving
// neighbor's adjacency list is rebuilt once. RemoveNode's per-edge
// removeEdgeHalf scan costs O(deg(neighbor)) per incident edge, which
// goes quadratic around hubs during the expansion/compression cleanup
// loops; the batch form is linear in the total degree touched. Duplicate
// and already-removed IDs are ignored. On a frozen graph the CSR arrays
// are compacted directly (the removal half of the delta path's
// thaw-or-patch contract) instead of thawing.
func (g *Graph) RemoveNodes(ids []NodeID) {
	victim := make([]bool, len(g.labels))
	any := false
	for _, id := range ids {
		if !g.removed[id] {
			victim[id] = true
			any = true
		}
	}
	if !any {
		return
	}
	if g.csrOff != nil {
		// Removal rewrites the CSR anyway, so fold any patch overlay in
		// first and take ownership of the sealed edge map — the O(total)
		// compaction this path always paid.
		g.mergeOverlay()
		g.ownEdges()
		g.removeNodesFrozen(victim)
		return
	}
	dirty := make([]bool, len(g.labels))
	for i, isVictim := range victim {
		if !isVictim {
			continue
		}
		id := NodeID(i)
		for _, n := range g.adj[i] {
			delete(g.edges, edgeKey(id, n))
			if !victim[n] {
				dirty[n] = true
			}
		}
	}
	for i, isDirty := range dirty {
		if !isDirty {
			continue
		}
		src := g.adj[i]
		keep := src[:0]
		for _, n := range src {
			if !victim[n] {
				keep = append(keep, n)
			}
		}
		g.adj[i] = keep
	}
	for i, isVictim := range victim {
		if !isVictim {
			continue
		}
		g.adj[i] = nil
		g.removed[i] = true
		g.nRemoved++
		g.dropFromIndex(NodeID(i))
	}
}

// removeNodesFrozen is RemoveNodes over the frozen CSR: the edge map is
// pruned from the victims' rows, then the offsets and neighbor arrays
// are rebuilt in one pass that drops victim rows and filters victim
// entries out of surviving rows — no thaw, one allocation sweep.
func (g *Graph) removeNodesFrozen(victim []bool) {
	oldOff, oldAdj := g.csrOff, g.csrAdj
	for i, isVictim := range victim {
		if !isVictim {
			continue
		}
		id := NodeID(i)
		for _, n := range oldAdj[oldOff[i]:oldOff[i+1]] {
			delete(g.edges, edgeKey(id, n))
		}
	}
	newOff := make([]int32, len(oldOff))
	newAdj := make([]NodeID, 0, len(oldAdj))
	for i := 0; i < len(oldOff)-1; i++ {
		newOff[i] = int32(len(newAdj))
		if victim[i] {
			continue
		}
		for _, n := range oldAdj[oldOff[i]:oldOff[i+1]] {
			if !victim[n] {
				newAdj = append(newAdj, n)
			}
		}
	}
	newOff[len(newOff)-1] = int32(len(newAdj))
	g.csrOff, g.csrAdj = newOff, newAdj
	for i, isVictim := range victim {
		if !isVictim {
			continue
		}
		g.removed[i] = true
		g.nRemoved++
		g.dropFromIndex(NodeID(i))
	}
}

// MergeData rewires every edge of drop onto keep and removes drop. Future
// lookups of drop's label resolve to keep. Both must be data/external nodes.
func (g *Graph) MergeData(keep, drop NodeID) error {
	if keep == drop {
		return nil
	}
	for _, id := range []NodeID{keep, drop} {
		if k := g.kinds[id]; k != Data && k != External {
			return fmt.Errorf("graph: MergeData on %v node %q", k, g.labels[id])
		}
	}
	neighbors := append([]NodeID(nil), g.Neighbors(drop)...)
	g.RemoveNode(drop)
	for _, n := range neighbors {
		g.AddEdge(keep, n)
	}
	g.dataIndex[g.labels[drop]] = keep
	return nil
}

// Label returns the node label (term text for data nodes, document/column
// ID for metadata).
func (g *Graph) Label(id NodeID) string { return g.labels[id] }

// Kind returns the node kind.
func (g *Graph) Kind(id NodeID) NodeKind { return g.kinds[id] }

// CorpusSide returns which corpus a metadata node belongs to.
func (g *Graph) CorpusSide(id NodeID) Side { return g.sides[id] }

// Removed reports whether the node has been deleted.
func (g *Graph) Removed(id NodeID) bool { return g.removed[id] }

// Neighbors returns the adjacency list of id. The caller must not mutate
// it. On a frozen graph this is a view into the flat CSR neighbor slice;
// when id has patch-overlay neighbors the sealed row and overlay tail
// are merged into a fresh slice (use NeighborParts in hot loops to stay
// allocation-free).
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if g.csrOff != nil {
		base, ov := g.NeighborParts(id)
		if len(ov) == 0 {
			return base
		}
		if len(base) == 0 {
			return ov
		}
		merged := make([]NodeID, 0, len(base)+len(ov))
		return append(append(merged, base...), ov...)
	}
	return g.adj[id]
}

// Degree returns the number of incident edges.
func (g *Graph) Degree(id NodeID) int {
	if g.csrOff != nil {
		d := len(g.ovAdj[id])
		if int(id)+1 < len(g.csrOff) {
			d += int(g.csrOff[id+1] - g.csrOff[id])
		}
		return d
	}
	return len(g.adj[id])
}

// NumNodes returns the number of live nodes.
func (g *Graph) NumNodes() int { return len(g.labels) - g.nRemoved }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return len(g.edges) + len(g.ovEdges) }

// Cap returns the upper bound of node IDs ever allocated (including removed
// ones); useful to size arrays indexed by NodeID.
func (g *Graph) Cap() int { return len(g.labels) }

// Nodes calls fn for every live node in ID order.
func (g *Graph) Nodes(fn func(NodeID)) {
	for i := range g.labels {
		if !g.removed[i] {
			fn(NodeID(i))
		}
	}
}

// MetadataNodes returns the live matchable metadata nodes of the given
// side, in ID order. Side NoSide returns metadata nodes of both sides.
func (g *Graph) MetadataNodes(side Side) []NodeID {
	var out []NodeID
	g.Nodes(func(id NodeID) {
		if !g.kinds[id].IsMetadata() {
			return
		}
		if side == NoSide || g.sides[id] == side {
			out = append(out, id)
		}
	})
	return out
}

// DataNodes returns the live data and external nodes in ID order.
func (g *Graph) DataNodes() []NodeID {
	var out []NodeID
	g.Nodes(func(id NodeID) {
		if g.kinds[id] == Data || g.kinds[id] == External {
			out = append(out, id)
		}
	})
	return out
}

// Edges calls fn once per live undirected edge with a < b ordering.
func (g *Graph) Edges(fn func(a, b NodeID)) {
	keys := make([]uint64, 0, len(g.edges)+len(g.ovEdges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	for k := range g.ovEdges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(NodeID(k>>32), NodeID(uint32(k)))
	}
}

// Clone returns an independent copy of the graph, preserving its frozen
// state. On a frozen graph the sealed CSR arrays and edge map are
// shared with the clone (both immutable until a removal/thaw, which
// copies on write via ownEdges) and only the small patch overlay is
// deep-copied, so cloning a built graph costs O(nodes) for the label
// and index arrays instead of O(nodes + edges). A thawed graph is
// deep-copied.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		labels:    append([]string(nil), g.labels...),
		kinds:     append([]NodeKind(nil), g.kinds...),
		sides:     append([]Side(nil), g.sides...),
		removed:   append([]bool(nil), g.removed...),
		dataIndex: make(map[string]NodeID, len(g.dataIndex)),
		metaIndex: make(map[string]NodeID, len(g.metaIndex)),
		nRemoved:  g.nRemoved,
	}
	if g.csrOff != nil {
		ng.csrOff, ng.csrAdj = g.csrOff, g.csrAdj
		g.edgesShared = true
		ng.edges, ng.edgesShared = g.edges, true
		if g.ovAdj != nil {
			ng.ovAdj = make(map[NodeID][]NodeID, len(g.ovAdj))
			for id, ov := range g.ovAdj {
				ng.ovAdj[id] = append([]NodeID(nil), ov...)
			}
		}
		if g.ovEdges != nil {
			ng.ovEdges = make(map[uint64]struct{}, len(g.ovEdges))
			for k := range g.ovEdges {
				ng.ovEdges[k] = struct{}{}
			}
		}
	} else {
		ng.adj = make([][]NodeID, len(g.adj))
		for i, a := range g.adj {
			ng.adj[i] = append([]NodeID(nil), a...)
		}
		ng.edges = make(map[uint64]struct{}, len(g.edges))
		for k := range g.edges {
			ng.edges[k] = struct{}{}
		}
	}
	for k, v := range g.dataIndex {
		ng.dataIndex[k] = v
	}
	for k, v := range g.metaIndex {
		ng.metaIndex[k] = v
	}
	return ng
}
