package graph

import (
	"fmt"
	"math"
	"sort"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// FilterMode selects how second-corpus terms are filtered during graph
// creation (§II-B and Fig. 9).
type FilterMode uint8

const (
	// FilterIntersect (the paper's technique) creates data nodes from the
	// corpus with fewer distinct tokens first and keeps from the other
	// corpus only terms already in the graph.
	FilterIntersect FilterMode = iota
	// FilterNone creates data nodes for all terms of both corpora
	// ("Normal" in Fig. 9).
	FilterNone
	// FilterTFIDF keeps the top-k TF-IDF tokens of every document before
	// term generation (the baseline technique of Fig. 9).
	FilterTFIDF
)

// String returns the Fig. 9 series name for the mode.
func (m FilterMode) String() string {
	switch m {
	case FilterIntersect:
		return "intersect"
	case FilterNone:
		return "normal"
	case FilterTFIDF:
		return "tfidf"
	}
	return fmt.Sprintf("filter(%d)", uint8(m))
}

// BuildConfig parametrizes Algorithm 1 plus the §II-C/§II-D improvements.
type BuildConfig struct {
	// Pre is the pre-processing applied to every value (stop words,
	// stemming, MaxNGram terms). Zero value => DefaultPreprocessor.
	Pre textproc.Preprocessor
	// Filter selects the data-node filtering technique.
	Filter FilterMode
	// TFIDFTopK is the tokens kept per document under FilterTFIDF
	// (paper sweeps k = 3, 5, 10, 20).
	TFIDFTopK int
	// ConnectMetadata adds edges between hierarchically related metadata
	// nodes of a structured corpus (§II-A). Default true via Build.
	ConnectMetadata bool
	// DisableMetadataEdges turns ConnectMetadata off (used by the §V-F2
	// ablation); separated so the zero config keeps the paper default.
	DisableMetadataEdges bool
	// Bucketing enables Freedman–Diaconis numeric bucketing (§II-C).
	Bucketing bool
	// BucketWidth, when > 0, overrides the Freedman–Diaconis width.
	BucketWidth float64
	// Mergers are applied to the term universe to merge synonym /
	// acronym / typo data nodes (§II-C).
	Mergers []Merger
}

// Result carries the construction artefacts needed by later stages, and
// is the handle the delta path (InsertDocs/RemoveDocs) mutates when
// single documents are ingested into or removed from a built graph.
type Result struct {
	Graph *Graph
	// DocNode maps every document ID to its metadata node.
	DocNode map[string]NodeID
	// AttrNode maps "<corpus>/<column>" to the attribute node.
	AttrNode map[string]NodeID
	// Canon resolves terms to their canonical (merged) form.
	Canon *Canonicalizer
	// Mergers is the effective merger chain (including the numeric
	// Bucketer Build constructs under cfg.Bucketing), retained so the
	// delta path canonicalizes unseen terms exactly like the full build.
	Mergers []Merger
	// Pre is the effective preprocessor after defaulting, retained so
	// delta-ingested documents tokenize identically.
	Pre textproc.Preprocessor
	// PrimaryFirst reports whether the first corpus defined the term
	// vocabulary (always true outside FilterIntersect); the delta path
	// uses it to decide which side may create new data nodes.
	PrimaryFirst bool
	// ConnectMeta records whether hierarchical metadata edges were
	// enabled (ConnectMetadata minus the DisableMetadataEdges ablation),
	// so delta-ingested taxonomy documents wire parent edges exactly
	// when the full build would.
	ConnectMeta bool
	// FilteredTerms counts second-corpus terms dropped by filtering.
	FilteredTerms int
	// TFIDFTopK, when > 0, records that the build ran under FilterTFIDF
	// with this per-document token budget; DF and DFDocs then hold each
	// side's document-frequency statistics (indexed Side-1) so the delta
	// path filters ingested documents with the same scoring. Removals do
	// not decrement DF — the statistics drift slightly until the next
	// full rebuild, like any IDF corpus snapshot.
	TFIDFTopK int
	DF        [2]map[string]int
	DFDocs    [2]int
}

// docTerms holds the processed representation of one document.
type docTerms struct {
	id     string
	parent string
	// perValue holds the term list per value, aligned with columns for
	// tables (so terms connect to their attribute node).
	perValue [][]string
	columns  []string
}

func processCorpus(c *corpus.Corpus, pre textproc.Preprocessor, tfidfTopK int) ([]docTerms, map[string]int) {
	out := make([]docTerms, len(c.Docs))
	var df map[string]int
	var tokensPerDoc [][]string
	if tfidfTopK > 0 {
		// Document frequency over processed single tokens.
		df = make(map[string]int)
		tokensPerDoc = make([][]string, len(c.Docs))
		for i, d := range c.Docs {
			var toks []string
			for _, v := range d.Values {
				toks = append(toks, pre.Tokens(v.Text)...)
			}
			tokensPerDoc[i] = toks
			seen := map[string]struct{}{}
			for _, t := range toks {
				if _, ok := seen[t]; !ok {
					seen[t] = struct{}{}
					df[t]++
				}
			}
		}
	}
	n := len(c.Docs)
	for i, d := range c.Docs {
		var keep map[string]struct{}
		if tfidfTopK > 0 {
			keep = topTFIDF(tokensPerDoc[i], df, n, tfidfTopK)
		}
		out[i] = processDoc(d, pre, keep)
	}
	return out, df
}

// processDoc tokenizes one document into its per-value term lists; keep,
// when non-nil, restricts tokens to the given set (the TF-IDF filter).
// Shared by the full build and the delta insert path.
func processDoc(d corpus.Document, pre textproc.Preprocessor, keep map[string]struct{}) docTerms {
	dt := docTerms{id: d.ID, parent: d.Parent}
	for _, v := range d.Values {
		toks := pre.Tokens(v.Text)
		if keep != nil {
			filtered := toks[:0]
			for _, t := range toks {
				if _, ok := keep[t]; ok {
					filtered = append(filtered, t)
				}
			}
			toks = filtered
		}
		terms := textproc.NGrams(toks, maxN(pre))
		dt.perValue = append(dt.perValue, terms)
		dt.columns = append(dt.columns, v.Column)
	}
	return dt
}

func maxN(pre textproc.Preprocessor) int {
	if pre.MaxNGram <= 0 {
		return 1
	}
	return pre.MaxNGram
}

// topTFIDF returns the tokens with the k highest TF-IDF scores in the doc.
func topTFIDF(tokens []string, df map[string]int, nDocs, k int) map[string]struct{} {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	type scored struct {
		tok   string
		score float64
	}
	list := make([]scored, 0, len(tf))
	for t, f := range tf {
		idf := math.Log(float64(1+nDocs) / float64(1+df[t]))
		list = append(list, scored{t, float64(f) * idf})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].tok < list[j].tok
	})
	if k > len(list) {
		k = len(list)
	}
	out := make(map[string]struct{}, k)
	for _, s := range list[:k] {
		out[s.tok] = struct{}{}
	}
	return out
}

// Build runs Algorithm 1 over two corpora, applying the configured
// filtering and merging. Metadata nodes are created for both corpora; under
// FilterIntersect, data nodes come from the corpus with the smaller
// distinct-token count and the other corpus only connects to existing ones.
func Build(a, b *corpus.Corpus, cfg BuildConfig) (*Result, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("graph: Build requires two corpora")
	}
	pre := cfg.Pre
	if pre.MaxNGram == 0 && !pre.RemoveStopwords && !pre.Stem {
		pre = textproc.DefaultPreprocessor()
	}
	tfidfK := 0
	if cfg.Filter == FilterTFIDF {
		tfidfK = cfg.TFIDFTopK
		if tfidfK <= 0 {
			tfidfK = 10
		}
	}

	docsA, dfA := processCorpus(a, pre, tfidfK)
	docsB, dfB := processCorpus(b, pre, tfidfK)

	// Under intersect filtering, the vocabulary-defining ("primary") corpus
	// is the one with fewer distinct tokens (§II-B).
	primaryIsA := true
	if cfg.Filter == FilterIntersect {
		primaryIsA = a.DistinctTokens(pre) <= b.DistinctTokens(pre)
	}

	// Build the canonicalizer over the term universe.
	var universe []string
	seen := map[string]struct{}{}
	collect := func(docs []docTerms) {
		for _, d := range docs {
			for _, terms := range d.perValue {
				for _, t := range terms {
					if _, ok := seen[t]; !ok {
						seen[t] = struct{}{}
						universe = append(universe, t)
					}
				}
			}
		}
	}
	collect(docsA)
	collect(docsB)

	mergers := cfg.Mergers
	if cfg.Bucketing {
		var bk *Bucketer
		if cfg.BucketWidth > 0 {
			vals := CollectNumeric(universe)
			if len(vals) > 0 {
				min := vals[0]
				for _, v := range vals {
					if v < min {
						min = v
					}
				}
				bk = NewBucketerWidth(min, cfg.BucketWidth)
			}
		} else {
			bk = NewBucketer(CollectNumeric(universe))
		}
		if bk != nil {
			mergers = append([]Merger{bk}, mergers...)
		}
	}
	canon := NewCanonicalizer(universe, mergers...)

	g := New(len(universe) + len(docsA) + len(docsB))
	res := &Result{
		Graph:        g,
		DocNode:      make(map[string]NodeID, len(docsA)+len(docsB)),
		AttrNode:     make(map[string]NodeID),
		Canon:        canon,
		Mergers:      mergers,
		Pre:          pre,
		PrimaryFirst: primaryIsA,
		ConnectMeta:  cfg.ConnectMetadata && !cfg.DisableMetadataEdges,
		TFIDFTopK:    tfidfK,
	}
	if tfidfK > 0 {
		res.DF = [2]map[string]int{dfA, dfB}
		res.DFDocs = [2]int{len(a.Docs), len(b.Docs)}
	}

	addCorpus := func(c *corpus.Corpus, docs []docTerms, side Side, createTerms bool) error {
		kind := kindFor(c)
		// Attribute nodes are shared per column (lines 5-10 of Alg. 1).
		if c.Kind == corpus.Table {
			for _, col := range c.Columns {
				key := c.Name + "/" + col
				if _, ok := res.AttrNode[key]; ok {
					continue
				}
				id, err := g.AddMeta(key, Attribute, side)
				if err != nil {
					return err
				}
				res.AttrNode[key] = id
			}
		}
		for _, d := range docs {
			id, err := g.AddMeta(d.id, kind, side)
			if err != nil {
				return err
			}
			res.DocNode[d.id] = id
		}
		for _, d := range docs {
			id := res.DocNode[d.id]
			// Structured text: connect to parent metadata node (lines 12-16,
			// §II-A), unless the ablation disables it.
			if c.Kind == corpus.Structured && d.parent != "" && cfg.ConnectMetadata && !cfg.DisableMetadataEdges {
				if pid, ok := res.DocNode[d.parent]; ok {
					g.AddEdge(id, pid)
				}
			}
			for vi, terms := range d.perValue {
				var attr NodeID
				hasAttr := false
				if c.Kind == corpus.Table {
					attr, hasAttr = res.AttrNode[c.Name+"/"+d.columns[vi]], true
				}
				for _, t := range terms {
					ct := canon.Canonical(t)
					var tn NodeID
					if createTerms {
						tn = g.EnsureData(ct)
					} else {
						var ok bool
						tn, ok = g.DataNode(ct)
						if !ok {
							res.FilteredTerms++
							continue
						}
					}
					g.AddEdge(id, tn)
					if hasAttr {
						g.AddEdge(attr, tn)
					}
				}
			}
		}
		return nil
	}

	// Creation order: primary corpus first, with term creation; then the
	// other corpus, creating terms only when filtering is off.
	secondaryCreates := cfg.Filter != FilterIntersect
	var err error
	if primaryIsA {
		if err = addCorpus(a, docsA, First, true); err == nil {
			err = addCorpus(b, docsB, Second, secondaryCreates)
		}
	} else {
		if err = addCorpus(b, docsB, Second, true); err == nil {
			err = addCorpus(a, docsA, First, secondaryCreates)
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BuildSingle runs Algorithm 1 for one corpus only (used to grow graphs for
// scaling experiments and for corpora matched against themselves).
func BuildSingle(c *corpus.Corpus, cfg BuildConfig) (*Result, error) {
	empty, err := corpus.NewText(c.Name+"-empty", nil, nil)
	if err != nil {
		return nil, err
	}
	cfg.Filter = FilterNone
	return Build(c, empty, cfg)
}
