package graph

// This file implements the breadth-first shortest-path primitives used by
// the MSP compression algorithm (§III-B): single-source distances and the
// enumeration of all shortest paths between a node pair.

// BFSDistances returns the hop distance from src to every node, -1 when
// unreachable. dist is indexed by NodeID up to g.Cap().
func (g *Graph) BFSDistances(src NodeID) []int32 {
	dist := make([]int32, g.Cap())
	for i := range dist {
		dist[i] = -1
	}
	if g.removed[src] {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// AllShortestPaths enumerates the shortest paths from src to dst, capped at
// maxPaths to bound the (potentially exponential) enumeration; maxPaths <= 0
// means 16, the cap used by our MSP implementation. It returns nil when dst
// is unreachable.
func (g *Graph) AllShortestPaths(src, dst NodeID, maxPaths int) [][]NodeID {
	if maxPaths <= 0 {
		maxPaths = 16
	}
	if g.removed[src] || g.removed[dst] {
		return nil
	}
	if src == dst {
		return [][]NodeID{{src}}
	}
	// Forward BFS from src recording distances.
	dist := g.BFSDistances(src)
	if dist[dst] < 0 {
		return nil
	}
	// Backtrack from dst along strictly-decreasing distances, DFS with cap.
	var paths [][]NodeID
	path := []NodeID{dst}
	var dfs func(cur NodeID)
	dfs = func(cur NodeID) {
		if len(paths) >= maxPaths {
			return
		}
		if cur == src {
			rev := make([]NodeID, len(path))
			for i, n := range path {
				rev[len(path)-1-i] = n
			}
			paths = append(paths, rev)
			return
		}
		for _, nb := range g.Neighbors(cur) {
			if dist[nb] == dist[cur]-1 {
				path = append(path, nb)
				dfs(nb)
				path = path[:len(path)-1]
				if len(paths) >= maxPaths {
					return
				}
			}
		}
	}
	dfs(dst)
	return paths
}

// ShortestPath returns one shortest path between src and dst (nil when
// disconnected).
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	p := g.AllShortestPaths(src, dst, 1)
	if len(p) == 0 {
		return nil
	}
	return p[0]
}

// ConnectedComponent returns the nodes reachable from src (including src).
func (g *Graph) ConnectedComponent(src NodeID) []NodeID {
	dist := g.BFSDistances(src)
	var out []NodeID
	for i, d := range dist {
		if d >= 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}
