package graph

import (
	"reflect"
	"sort"
	"testing"

	"github.com/tdmatch/tdmatch/internal/corpus"
)

// buildFixture constructs a small two-corpus graph for the delta tests.
func buildFixture(t *testing.T, cfg BuildConfig) (*Result, *corpus.Corpus, *corpus.Corpus) {
	t.Helper()
	table, err := corpus.NewTable("movies", []string{"title", "director"},
		[][]string{
			{"The Sixth Sense", "Shyamalan"},
			{"Pulp Fiction", "Tarantino"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := corpus.NewText("reviews", []string{
		"Shyamalan made a tense thriller",
		"a Tarantino movie with sharp dialogue",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(table, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, table, text
}

// neighborsSorted returns the sorted live neighbor list of a node.
func neighborsSorted(g *Graph, id NodeID) []NodeID {
	out := append([]NodeID(nil), g.Neighbors(id)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPatchEdgesMatchesThawedAddEdge pins the thaw-or-patch contract:
// patching edges into a frozen CSR must leave exactly the adjacency a
// thawed AddEdge sequence produces, and must not thaw the graph.
func TestPatchEdgesMatchesThawedAddEdge(t *testing.T) {
	res, _, _ := buildFixture(t, BuildConfig{Filter: FilterNone, ConnectMetadata: true})
	frozen := res.Graph
	frozen.Freeze()
	thawed := frozen.Clone()
	thawed.thaw()

	// New nodes against the frozen graph must not thaw it.
	fa, err := frozen.AddMeta("movies:new", Tuple, First)
	if err != nil {
		t.Fatal(err)
	}
	if !frozen.Frozen() {
		t.Fatal("AddMeta thawed the frozen graph")
	}
	fd := frozen.EnsureData("brandnewterm")
	ta, _ := thawed.AddMeta("movies:new", Tuple, First)
	td := thawed.EnsureData("brandnewterm")
	if fa != ta || fd != td {
		t.Fatalf("node ids diverge: frozen (%d,%d) vs thawed (%d,%d)", fa, fd, ta, td)
	}

	old, _ := frozen.DataNode("tarantino")
	pairs := [][2]NodeID{
		{fa, fd}, {fa, old}, {fa, fd}, // duplicate in batch
		{fd, fd},                      // self loop
		{old, fa},                     // duplicate reversed
	}
	frozen.PatchEdges(pairs)
	if !frozen.Frozen() {
		t.Fatal("PatchEdges thawed the graph")
	}
	for _, p := range pairs {
		thawed.AddEdge(p[0], p[1])
	}

	if frozen.NumEdges() != thawed.NumEdges() || frozen.NumNodes() != thawed.NumNodes() {
		t.Fatalf("sizes diverge: frozen %d/%d vs thawed %d/%d",
			frozen.NumNodes(), frozen.NumEdges(), thawed.NumNodes(), thawed.NumEdges())
	}
	for i := 0; i < frozen.Cap(); i++ {
		id := NodeID(i)
		if !reflect.DeepEqual(neighborsSorted(frozen, id), neighborsSorted(thawed, id)) {
			t.Fatalf("adjacency diverges at node %d (%s): %v vs %v", i, frozen.Label(id),
				neighborsSorted(frozen, id), neighborsSorted(thawed, id))
		}
	}
}

// TestRemoveNodesFrozenMatchesThawed pins the frozen removal path
// against the established thawed mark-and-compact.
func TestRemoveNodesFrozenMatchesThawed(t *testing.T) {
	res, _, _ := buildFixture(t, BuildConfig{Filter: FilterNone, ConnectMetadata: true})
	frozen := res.Graph
	frozen.Freeze()
	thawed := frozen.Clone()
	thawed.thaw()

	victims := []NodeID{res.DocNode["movies:t0"], res.DocNode["reviews:p1"]}
	frozen.RemoveNodes(victims)
	if !frozen.Frozen() {
		t.Fatal("frozen RemoveNodes thawed the graph")
	}
	thawed.RemoveNodes(victims)

	if frozen.NumNodes() != thawed.NumNodes() || frozen.NumEdges() != thawed.NumEdges() {
		t.Fatalf("sizes diverge: %d/%d vs %d/%d",
			frozen.NumNodes(), frozen.NumEdges(), thawed.NumNodes(), thawed.NumEdges())
	}
	for i := 0; i < frozen.Cap(); i++ {
		id := NodeID(i)
		if frozen.Removed(id) != thawed.Removed(id) {
			t.Fatalf("removed flag diverges at node %d", i)
		}
		if frozen.Removed(id) {
			continue
		}
		if !reflect.DeepEqual(neighborsSorted(frozen, id), neighborsSorted(thawed, id)) {
			t.Fatalf("adjacency diverges at node %d: %v vs %v", i,
				neighborsSorted(frozen, id), neighborsSorted(thawed, id))
		}
	}
	if _, ok := frozen.MetaNode("movies:t0"); ok {
		t.Error("removed metadata node still resolvable")
	}
}

// TestInsertDocsWiresTermsAndAttributes checks that a delta insert into
// a frozen graph connects the new tuple to its term and attribute nodes
// exactly like the full build would, and reports the affected set.
func TestInsertDocsWiresTermsAndAttributes(t *testing.T) {
	res, table, _ := buildFixture(t, BuildConfig{Filter: FilterNone, ConnectMetadata: true})
	g := res.Graph
	g.Freeze()
	doc := corpus.Document{ID: "movies:t9", Values: []corpus.Value{
		{Column: "title", Text: "Jackie Brown"},
		{Column: "director", Text: "Tarantino"},
	}}
	if err := table.Append(doc); err != nil {
		t.Fatal(err)
	}
	d, err := res.InsertDocs(table, []corpus.Document{doc}, First, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DocNodes) != 1 {
		t.Fatalf("DocNodes = %v", d.DocNodes)
	}
	meta := d.DocNodes[0]
	if res.DocNode["movies:t9"] != meta {
		t.Error("DocNode map not updated")
	}
	// The known term reuses the existing node; the unseen ones are new.
	old, ok := g.DataNode("tarantino")
	if !ok {
		t.Fatal("existing term node lost")
	}
	if !g.HasEdge(meta, old) {
		t.Error("new doc not connected to existing term node")
	}
	jackie, ok := g.DataNode("jacki")
	if !ok {
		// Stemming may keep the token as-is; accept either surface form.
		jackie, ok = g.DataNode("jackie")
	}
	if !ok || !g.HasEdge(meta, jackie) {
		t.Error("new doc not connected to newly created term node")
	}
	attr, ok := g.MetaNode("movies/director")
	if !ok || !g.HasEdge(attr, old) {
		t.Error("attribute edge missing")
	}
	// Affected covers the new nodes plus the touched existing ones.
	affected := map[NodeID]struct{}{}
	for _, id := range d.Affected {
		affected[id] = struct{}{}
	}
	for _, want := range []NodeID{meta, old, attr} {
		if _, ok := affected[want]; !ok {
			t.Errorf("affected set misses node %d (%s)", want, g.Label(want))
		}
	}
	// Duplicate insert is rejected.
	if _, err := res.InsertDocs(table, []corpus.Document{doc}, First, false); err == nil {
		t.Error("duplicate insert must fail")
	}
}

// TestInsertDocsRespectsFiltering: with createTerms false (the
// non-vocabulary side under intersect filtering), unknown terms are
// dropped and counted instead of creating nodes.
func TestInsertDocsRespectsFiltering(t *testing.T) {
	res, _, text := buildFixture(t, BuildConfig{Filter: FilterIntersect})
	res.Graph.Freeze()
	nodesBefore := res.Graph.NumNodes()
	doc := corpus.Document{ID: "reviews:p9", Values: []corpus.Value{
		{Text: "Tarantino zzzunknownterm qqqanother"},
	}}
	if err := text.Append(doc); err != nil {
		t.Fatal(err)
	}
	d, err := res.InsertDocs(text, []corpus.Document{doc}, Second, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.FilteredTerms == 0 {
		t.Error("unknown terms on the filtered side must be counted as dropped")
	}
	if got := res.Graph.NumNodes(); got != nodesBefore+1 {
		t.Errorf("filtered insert created %d nodes beyond the metadata node", got-nodesBefore-1)
	}
}

// TestInsertDocsLearnsMergedTerms: a new surface form that an existing
// merger canonicalizes must connect to the existing merged node instead
// of minting a duplicate.
func TestInsertDocsLearnsMergedTerms(t *testing.T) {
	table, err := corpus.NewTable("t", []string{"rating"},
		[][]string{{"4.1"}, {"4.3"}, {"8.9"}, {"9.2"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := corpus.NewText("s", []string{"rated 4.2 overall"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(table, text, BuildConfig{Filter: FilterNone, Bucketing: true, BucketWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Graph.Freeze()
	low, ok := res.Graph.DataNode(res.Canon.Canonical("4.1"))
	if !ok {
		t.Fatal("bucketed node for 4.1 missing")
	}
	doc := corpus.Document{ID: "s:new", Values: []corpus.Value{{Text: "scored 4.4 here"}}}
	if err := text.Append(doc); err != nil {
		t.Fatal(err)
	}
	d, err := res.InsertDocs(text, []corpus.Document{doc}, Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Canon.Canonical("4.4"); got != res.Canon.Canonical("4.1") {
		t.Errorf("new numeric term canonicalizes to %q, want the 4.1 bucket %q", got, res.Canon.Canonical("4.1"))
	}
	if !res.Graph.HasEdge(d.DocNodes[0], low) {
		t.Error("new doc not connected to the existing bucket node")
	}
}

// TestRemoveDocsKeepsTermNodes: removing a document deletes its
// metadata node but keeps (now possibly isolated) data nodes for future
// re-ingest.
func TestRemoveDocsKeepsTermNodes(t *testing.T) {
	res, _, _ := buildFixture(t, BuildConfig{Filter: FilterNone})
	res.Graph.Freeze()
	termsBefore := len(res.Graph.DataNodes())
	present := res.RemoveDocs([]string{"reviews:p0", "nosuch:doc"})
	if len(present) != 1 || present[0] != "reviews:p0" {
		t.Fatalf("present = %v", present)
	}
	if _, ok := res.DocNode["reviews:p0"]; ok {
		t.Error("DocNode entry not deleted")
	}
	if got := len(res.Graph.DataNodes()); got != termsBefore {
		t.Errorf("data nodes changed: %d -> %d", termsBefore, got)
	}
	if !res.Graph.Frozen() {
		t.Error("RemoveDocs thawed the graph")
	}
}
