package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection: data
// nodes as ellipses, metadata nodes as boxes colored per kind, external
// (expansion-added) nodes dashed. Intended for the small graphs of worked
// examples; rendering a full scenario graph is possible but unwieldy.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "tdmatch"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [fontsize=10];\n", name); err != nil {
		return err
	}
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	g.Nodes(func(id NodeID) {
		label := strings.ReplaceAll(g.Label(id), `"`, `\"`)
		switch g.Kind(id) {
		case Data:
			write("  n%d [label=\"%s\"];\n", id, label)
		case External:
			write("  n%d [label=\"%s\", style=dashed];\n", id, label)
		case Attribute:
			write("  n%d [label=\"%s\", shape=box, style=filled, fillcolor=lightgray];\n", id, label)
		case Tuple:
			write("  n%d [label=\"%s\", shape=box, style=filled, fillcolor=lightblue];\n", id, label)
		case Snippet:
			write("  n%d [label=\"%s\", shape=box, style=filled, fillcolor=lightyellow];\n", id, label)
		case Concept:
			write("  n%d [label=\"%s\", shape=box, style=filled, fillcolor=lightgreen];\n", id, label)
		}
	})
	g.Edges(func(a, b NodeID) {
		write("  n%d -- n%d;\n", a, b)
	})
	write("}\n")
	return err
}
