package graph

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/tdmatch/tdmatch/internal/textproc"
)

// Bucketer merges numeric data nodes with equal-width binning, using the
// Freedman–Diaconis rule to compute the bucket width (paper §II-C). All
// numeric terms falling in the same bucket map to one canonical label, so
// "1234" and "1250" can bridge a claim and a tuple that report close values.
type Bucketer struct {
	width float64
	min   float64
}

// NewBucketer computes bucket boundaries from the numeric values observed
// in the corpora. It returns nil when fewer than two distinct numeric
// values exist or the Freedman–Diaconis width degenerates to zero (all mass
// in one point), in which cases bucketing would be a no-op.
func NewBucketer(values []float64) *Bucketer {
	if len(values) < 2 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	iqr := quantile(sorted, 0.75) - quantile(sorted, 0.25)
	// Freedman–Diaconis: h = 2 * IQR * n^(-1/3).
	h := 2 * iqr / math.Cbrt(float64(len(sorted)))
	if h <= 0 {
		return nil
	}
	return &Bucketer{width: h, min: sorted[0]}
}

// NewBucketerWidth builds a bucketer with an explicit width, as used by the
// CoronaCheck merging ablation where "equal-width buckets of size 7" gave
// the best results (§V-F2).
func NewBucketerWidth(min, width float64) *Bucketer {
	if width <= 0 {
		return nil
	}
	return &Bucketer{width: width, min: min}
}

// Width returns the bucket width.
func (b *Bucketer) Width() float64 { return b.width }

// quantile returns the linear-interpolated q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Canonical maps a numeric term to its bucket label, e.g. "num#12". Terms
// that do not parse as numbers are returned unchanged.
func (b *Bucketer) Canonical(term string) string {
	if b == nil || !textproc.IsNumeric(term) {
		return term
	}
	v, err := strconv.ParseFloat(term, 64)
	if err != nil {
		return term
	}
	idx := int(math.Floor((v - b.min) / b.width))
	return fmt.Sprintf("num#%d", idx)
}

// Merge implements Merger: every numeric term is mapped to its bucket.
func (b *Bucketer) Merge(terms []string) map[string]string {
	if b == nil {
		return nil
	}
	out := make(map[string]string)
	for _, t := range terms {
		if c := b.Canonical(t); c != t {
			out[t] = c
		}
	}
	return out
}

// CollectNumeric extracts the float values of all numeric single-token
// terms, to feed NewBucketer.
func CollectNumeric(terms []string) []float64 {
	var out []float64
	for _, t := range terms {
		if !textproc.IsNumeric(t) {
			continue
		}
		if v, err := strconv.ParseFloat(t, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}
