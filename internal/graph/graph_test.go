package graph

import (
	"testing"
	"testing/quick"
)

func TestEnsureDataDedup(t *testing.T) {
	g := New(4)
	a := g.EnsureData("willis")
	b := g.EnsureData("willis")
	if a != b {
		t.Errorf("EnsureData created duplicate nodes %d %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
	if g.Label(a) != "willis" || g.Kind(a) != Data {
		t.Errorf("node meta wrong: %q %v", g.Label(a), g.Kind(a))
	}
}

func TestAddMeta(t *testing.T) {
	g := New(4)
	id, err := g.AddMeta("movies:t0", Tuple, First)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind(id) != Tuple || g.CorpusSide(id) != First {
		t.Errorf("meta node wrong: %v %v", g.Kind(id), g.CorpusSide(id))
	}
	if _, err := g.AddMeta("movies:t0", Tuple, First); err == nil {
		t.Error("want error on duplicate metadata label")
	}
	if _, err := g.AddMeta("x", Data, NoSide); err == nil {
		t.Error("want error on AddMeta with Data kind")
	}
}

func TestAddEdgeUndirectedDedup(t *testing.T) {
	g := New(4)
	a := g.EnsureData("a")
	b := g.EnsureData("b")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	g.AddEdge(a, a) // self loop ignored
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d %d, want 1 1", g.Degree(a), g.Degree(b))
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("HasEdge must be symmetric")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	a, b := g.EnsureData("a"), g.EnsureData("b")
	g.AddEdge(a, b)
	g.RemoveEdge(a, b)
	if g.NumEdges() != 0 || g.Degree(a) != 0 || g.Degree(b) != 0 {
		t.Errorf("edge not fully removed: e=%d da=%d db=%d", g.NumEdges(), g.Degree(a), g.Degree(b))
	}
	g.RemoveEdge(a, b) // idempotent
}

func TestRemoveNode(t *testing.T) {
	g := New(4)
	a, b, c := g.EnsureData("a"), g.EnsureData("b"), g.EnsureData("c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.RemoveNode(b)
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("after remove: n=%d e=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.Removed(b) {
		t.Error("Removed(b) = false")
	}
	if _, ok := g.DataNode("b"); ok {
		t.Error("removed node still resolvable")
	}
	if g.Degree(a) != 0 || g.Degree(c) != 0 {
		t.Error("neighbors not cleaned")
	}
	// Re-adding the same term creates a fresh node.
	nb := g.EnsureData("b")
	if nb == b {
		t.Error("EnsureData returned removed node")
	}
}

func TestMergeData(t *testing.T) {
	g := New(8)
	bruce := g.EnsureData("bruce willis")
	bw := g.EnsureData("b willis")
	p1, _ := g.AddMeta("rev:p1", Snippet, Second)
	t1, _ := g.AddMeta("movies:t1", Tuple, First)
	g.AddEdge(t1, bruce)
	g.AddEdge(p1, bw)
	if err := g.MergeData(bruce, bw); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(p1, bruce) {
		t.Error("edge not rewired to kept node")
	}
	if id, ok := g.DataNode("b willis"); !ok || id != bruce {
		t.Errorf("alias lookup = %d %v, want %d", id, ok, bruce)
	}
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	// Merging metadata nodes must fail.
	if err := g.MergeData(p1, t1); err == nil {
		t.Error("want error merging metadata nodes")
	}
	// Self merge is a no-op.
	if err := g.MergeData(bruce, bruce); err != nil {
		t.Errorf("self merge: %v", err)
	}
}

func TestMetadataAndDataNodeListing(t *testing.T) {
	g := New(8)
	g.EnsureData("x")
	g.EnsureExternal("y")
	t1, _ := g.AddMeta("t1", Tuple, First)
	p1, _ := g.AddMeta("p1", Snippet, Second)
	g.AddMeta("attr", Attribute, First)

	first := g.MetadataNodes(First)
	if len(first) != 1 || first[0] != t1 {
		t.Errorf("MetadataNodes(First) = %v", first)
	}
	second := g.MetadataNodes(Second)
	if len(second) != 1 || second[0] != p1 {
		t.Errorf("MetadataNodes(Second) = %v", second)
	}
	all := g.MetadataNodes(NoSide)
	if len(all) != 2 {
		t.Errorf("MetadataNodes(NoSide) = %v", all)
	}
	if len(g.DataNodes()) != 2 {
		t.Errorf("DataNodes = %v", g.DataNodes())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := New(4)
	a, b, c := g.EnsureData("a"), g.EnsureData("b"), g.EnsureData("c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	count := 0
	g.Edges(func(x, y NodeID) {
		count++
		if x >= y {
			t.Errorf("Edges order violated: %d >= %d", x, y)
		}
	})
	if count != 2 {
		t.Errorf("Edges visited %d, want 2", count)
	}
}

func TestClone(t *testing.T) {
	g := New(4)
	a, b := g.EnsureData("a"), g.EnsureData("b")
	g.AddEdge(a, b)
	cp := g.Clone()
	cp.RemoveNode(a)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Error("Clone shares state with original")
	}
	if cp.NumNodes() != 1 {
		t.Error("clone mutation lost")
	}
}

func TestKindHelpers(t *testing.T) {
	if !Tuple.IsMetadata() || !Snippet.IsMetadata() || !Concept.IsMetadata() {
		t.Error("tuple/snippet/concept must be metadata")
	}
	if Data.IsMetadata() || Attribute.IsMetadata() || External.IsMetadata() {
		t.Error("data/attribute/external must not be matchable metadata")
	}
	for _, k := range []NodeKind{Data, Tuple, Attribute, Snippet, Concept, External} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

// Property: after any sequence of edge insertions among n nodes, the sum of
// degrees equals twice the edge count and adjacency is symmetric.
func TestDegreeSumProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New(16)
		ids := make([]NodeID, 16)
		for i := range ids {
			ids[i] = g.EnsureData(string(rune('a' + i)))
		}
		for _, p := range pairs {
			a := ids[int(p>>8)%16]
			b := ids[int(p&0xff)%16]
			g.AddEdge(a, b)
		}
		sum := 0
		g.Nodes(func(id NodeID) {
			sum += g.Degree(id)
			for _, nb := range g.Neighbors(id) {
				if !g.HasEdge(nb, id) {
					t.Fatalf("asymmetric adjacency %d-%d", id, nb)
				}
			}
		})
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreezePreservesAdjacency(t *testing.T) {
	g := New(8)
	ids := make([]NodeID, 6)
	for i := range ids {
		ids[i] = g.EnsureData(string(rune('a' + i)))
	}
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[2], ids[3])
	g.RemoveNode(ids[4]) // removed node must stay neighbor-less when frozen

	type adjSnapshot map[NodeID][]NodeID
	snap := func() adjSnapshot {
		s := adjSnapshot{}
		for i := 0; i < g.Cap(); i++ {
			s[NodeID(i)] = append([]NodeID(nil), g.Neighbors(NodeID(i))...)
		}
		return s
	}
	before := snap()

	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	g.Freeze() // idempotent
	off, flat := g.CSR()
	if off == nil || len(off) != g.Cap()+1 {
		t.Fatalf("CSR offsets length %d, want %d", len(off), g.Cap()+1)
	}
	if len(flat) != int(off[len(off)-1]) {
		t.Fatal("CSR neighbor slice does not match final offset")
	}
	after := snap()
	for id, want := range before {
		got := after[id]
		if len(got) != len(want) {
			t.Fatalf("node %d: frozen degree %d, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d: frozen neighbor %d differs", id, i)
			}
		}
		if g.Degree(id) != len(want) {
			t.Fatalf("node %d: Degree %d, want %d", id, g.Degree(id), len(want))
		}
	}
}

func TestFreezeThawOnMutation(t *testing.T) {
	g := New(4)
	a, b, c := g.EnsureData("a"), g.EnsureData("b"), g.EnsureData("c")
	g.AddEdge(a, b)
	g.Freeze()
	g.AddEdge(b, c) // must thaw transparently
	if g.Frozen() {
		t.Fatal("mutation left the graph frozen")
	}
	if !g.HasEdge(b, c) || g.Degree(b) != 2 {
		t.Fatal("edge added after freeze is missing")
	}
	g.Freeze()
	g.RemoveNode(b)
	if g.Frozen() {
		t.Fatal("RemoveNode left the graph frozen")
	}
	if g.Degree(a) != 0 || g.Degree(c) != 0 {
		t.Fatal("removal after freeze did not drop edges")
	}
	// A frozen clone stays frozen and independent.
	g2 := New(2)
	x, y := g2.EnsureData("x"), g2.EnsureData("y")
	g2.AddEdge(x, y)
	g2.Freeze()
	cp := g2.Clone()
	if !cp.Frozen() {
		t.Fatal("clone of frozen graph is not frozen")
	}
	cp.RemoveNode(x)
	if g2.Degree(y) != 1 || !g2.Frozen() {
		t.Fatal("clone mutation leaked into frozen original")
	}
}

// TestRemoveNodesMatchesSerial checks the batch mark-and-compact removal
// against one-at-a-time RemoveNode on a clone: identical survivors,
// edges, degrees and index lookups.
func TestRemoveNodesMatchesSerial(t *testing.T) {
	build := func() (*Graph, []NodeID) {
		g := New(16)
		ids := make([]NodeID, 10)
		for i := range ids {
			ids[i] = g.EnsureData(string(rune('a' + i)))
		}
		for i := range ids {
			for j := i + 1; j < len(ids); j += i + 1 {
				g.AddEdge(ids[i], ids[j])
			}
		}
		return g, ids
	}
	serial, ids := build()
	batch := serial.Clone()
	victims := []NodeID{ids[1], ids[3], ids[4], ids[3], ids[8]} // includes a duplicate
	for _, v := range []NodeID{ids[1], ids[3], ids[4], ids[8]} {
		serial.RemoveNode(v)
	}
	batch.RemoveNodes(victims)
	if serial.NumNodes() != batch.NumNodes() || serial.NumEdges() != batch.NumEdges() {
		t.Fatalf("size mismatch: serial %d/%d, batch %d/%d",
			serial.NumNodes(), serial.NumEdges(), batch.NumNodes(), batch.NumEdges())
	}
	for i := 0; i < serial.Cap(); i++ {
		id := NodeID(i)
		if serial.Removed(id) != batch.Removed(id) {
			t.Fatalf("node %d removed-state mismatch", id)
		}
		if serial.Degree(id) != batch.Degree(id) {
			t.Fatalf("node %d degree mismatch: %d vs %d", id, serial.Degree(id), batch.Degree(id))
		}
		for _, nb := range serial.Neighbors(id) {
			if !batch.HasEdge(id, nb) {
				t.Fatalf("batch removal lost edge %d-%d", id, nb)
			}
		}
	}
	if _, ok := batch.DataNode("b"); ok {
		t.Fatal("removed node still resolvable by label")
	}
	if _, ok := batch.DataNode("a"); !ok {
		t.Fatal("surviving node lost its label index")
	}
	// Re-removing already-removed nodes is a no-op.
	batch.RemoveNodes(victims)
	if batch.NumNodes() != serial.NumNodes() {
		t.Fatal("idempotent batch removal changed the graph")
	}
}

// Property: removing a random subset of nodes keeps degree-sum consistency.
func TestRemovalConsistencyProperty(t *testing.T) {
	f := func(pairs []uint16, removeMask uint16) bool {
		g := New(16)
		ids := make([]NodeID, 16)
		for i := range ids {
			ids[i] = g.EnsureData(string(rune('a' + i)))
		}
		for _, p := range pairs {
			g.AddEdge(ids[int(p>>8)%16], ids[int(p&0xff)%16])
		}
		for i := 0; i < 16; i++ {
			if removeMask&(1<<i) != 0 {
				g.RemoveNode(ids[i])
			}
		}
		sum := 0
		g.Nodes(func(id NodeID) {
			sum += g.Degree(id)
			if g.Removed(id) {
				t.Fatal("Nodes visited removed node")
			}
		})
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
