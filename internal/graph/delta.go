package graph

import (
	"fmt"
	"sort"

	"github.com/tdmatch/tdmatch/internal/corpus"
)

// This file implements the localized-mutation half of the incremental
// ingest pipeline: inserting or removing single documents against a
// built (typically CSR-frozen) graph. Insertions reuse the full build's
// tokenization (processDoc), term canonicalization (Canonicalizer plus
// the retained merger chain, so new numeric terms land in existing
// buckets) and side policy (only the vocabulary-defining side creates
// data nodes under intersect filtering); edges are wired through
// Graph.PatchEdges so a frozen graph is patched, never thawed.

// Delta reports what an InsertDocs call changed.
type Delta struct {
	// DocNodes are the metadata nodes of the inserted documents, in input
	// order.
	DocNodes []NodeID
	// NewNodes are all nodes created by the insert: the metadata nodes
	// plus any data nodes minted for first-seen terms.
	NewNodes []NodeID
	// Affected is the walk seed set for warm-start training: the new
	// nodes plus every existing node they connect to.
	Affected []NodeID
	// FilteredTerms counts terms dropped because the document's side may
	// not create data nodes (intersect filtering) and the term is unknown.
	FilteredTerms int
}

// InsertDocs adds the documents' metadata nodes and term edges to the
// built graph. c is the corpus the documents now belong to (for its
// kind and, for tables, its column→attribute mapping); side tells which
// corpus side they join. Whether unknown terms create data nodes
// follows the build's filtering policy via createTerms. Documents must
// not already exist in the graph.
func (r *Result) InsertDocs(c *corpus.Corpus, docs []corpus.Document, side Side, createTerms bool) (Delta, error) {
	g := r.Graph
	var d Delta
	kind := kindFor(c)

	// Canonicalize unseen terms through the retained merger chain before
	// any node is created, so a new surface form that merges into an
	// existing node connects there instead of minting a duplicate.
	var unseen []string
	seenNew := map[string]struct{}{}
	terms := make([]docTerms, len(docs))
	for i, doc := range docs {
		// Under FilterTFIDF the delta document gets the same per-document
		// token budget as build documents, scored against the retained
		// document-frequency statistics; the doc's own tokens then join
		// them, so later ingests see an up-to-date corpus snapshot.
		var keep map[string]struct{}
		if r.TFIDFTopK > 0 && side >= First {
			if r.DF[side-1] == nil {
				r.DF[side-1] = make(map[string]int)
			}
			df, nDocs := r.DF[side-1], r.DFDocs[side-1]
			var toks []string
			for _, v := range doc.Values {
				toks = append(toks, r.Pre.Tokens(v.Text)...)
			}
			keep = topTFIDF(toks, df, nDocs, r.TFIDFTopK)
			distinct := map[string]struct{}{}
			for _, t := range toks {
				distinct[t] = struct{}{}
			}
			for t := range distinct {
				df[t]++
			}
			r.DFDocs[side-1]++
		}
		terms[i] = processDoc(doc, r.Pre, keep)
		for _, perValue := range terms[i].perValue {
			for _, t := range perValue {
				if _, known := g.dataIndex[t]; known {
					continue
				}
				if r.Canon.Canonical(t) != t {
					continue
				}
				if _, dup := seenNew[t]; !dup {
					seenNew[t] = struct{}{}
					unseen = append(unseen, t)
				}
			}
		}
	}
	r.Canon.Learn(unseen, r.Mergers...)

	var pairs [][2]NodeID
	touched := map[NodeID]struct{}{}
	for i, doc := range docs {
		if _, exists := r.DocNode[doc.ID]; exists {
			return Delta{}, fmt.Errorf("graph: document %q already present", doc.ID)
		}
		id, err := g.AddMeta(doc.ID, kind, side)
		if err != nil {
			return Delta{}, err
		}
		r.DocNode[doc.ID] = id
		d.DocNodes = append(d.DocNodes, id)
		d.NewNodes = append(d.NewNodes, id)
		if c.Kind == corpus.Structured && doc.Parent != "" && r.ConnectMeta {
			if pid, ok := r.DocNode[doc.Parent]; ok {
				pairs = append(pairs, [2]NodeID{id, pid})
				touched[pid] = struct{}{}
			}
		}
		for vi, valueTerms := range terms[i].perValue {
			var attr NodeID
			hasAttr := false
			if c.Kind == corpus.Table {
				attr, hasAttr = r.AttrNode[c.Name+"/"+terms[i].columns[vi]]
			}
			for _, t := range valueTerms {
				ct := r.Canon.Canonical(t)
				tn, ok := g.DataNode(ct)
				if !ok {
					if !createTerms {
						d.FilteredTerms++
						continue
					}
					tn = g.EnsureData(ct)
					d.NewNodes = append(d.NewNodes, tn)
				}
				pairs = append(pairs, [2]NodeID{id, tn})
				touched[tn] = struct{}{}
				if hasAttr {
					pairs = append(pairs, [2]NodeID{attr, tn})
					touched[attr] = struct{}{}
				}
			}
		}
	}
	g.PatchEdges(pairs)

	d.Affected = append(d.Affected, d.NewNodes...)
	isNew := make(map[NodeID]struct{}, len(d.NewNodes))
	for _, id := range d.NewNodes {
		isNew[id] = struct{}{}
	}
	existing := len(d.Affected)
	for id := range touched {
		if _, ok := isNew[id]; !ok {
			d.Affected = append(d.Affected, id)
		}
	}
	// touched iterates in random map order; sort the appended tail so the
	// walk seed set — and therefore the fine-tune corpus and the resulting
	// vectors — is deterministic for a fixed seed, like the full build.
	tail := d.Affected[existing:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return d, nil
}

// RemoveDocs deletes the documents' metadata nodes (and their incident
// edges) from the built graph, returning the IDs that were actually
// present. Data nodes are kept even when they become isolated: their
// trained rows stay meaningful, so a later re-ingest of similar content
// reconnects to already-trained terms instead of starting cold.
func (r *Result) RemoveDocs(ids []string) []string {
	var present []string
	var victims []NodeID
	for _, id := range ids {
		node, ok := r.DocNode[id]
		if !ok {
			continue
		}
		present = append(present, id)
		victims = append(victims, node)
		delete(r.DocNode, id)
	}
	r.Graph.RemoveNodes(victims)
	return present
}

// kindFor maps a corpus kind to the metadata node kind its documents
// get, mirroring the full build.
func kindFor(c *corpus.Corpus) NodeKind {
	switch c.Kind {
	case corpus.Table:
		return Tuple
	case corpus.Structured:
		return Concept
	default:
		return Snippet
	}
}
