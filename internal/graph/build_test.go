package graph

import (
	"strings"
	"testing"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

func movieFixture(t *testing.T) (*corpus.Corpus, *corpus.Corpus) {
	t.Helper()
	table, err := corpus.NewTable("movies",
		[]string{"title", "director", "star", "rating", "genre"},
		[][]string{
			{"The Sixth Sense", "Shyamalan", "Bruce Willis", "PG", "Thriller"},
			{"Pulp Fiction", "Tarantino", "Bruce Willis", "R", "Drama"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := corpus.NewText("reviews", []string{
		"A comedy by Tarantino starring Willis",
		"Willis sees dead people in this thriller",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return table, text
}

func TestBuildCreatesMetadataForBothCorpora(t *testing.T) {
	table, text := movieFixture(t)
	res, err := Build(table, text, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if len(g.MetadataNodes(First)) != 2 {
		t.Errorf("first-side metadata = %d, want 2 tuples", len(g.MetadataNodes(First)))
	}
	if len(g.MetadataNodes(Second)) != 2 {
		t.Errorf("second-side metadata = %d, want 2 snippets", len(g.MetadataNodes(Second)))
	}
	// Attribute nodes exist per column.
	if len(res.AttrNode) != 5 {
		t.Errorf("attr nodes = %d, want 5", len(res.AttrNode))
	}
	for _, doc := range []string{"movies:t0", "movies:t1", "reviews:p0", "reviews:p1"} {
		if _, ok := res.DocNode[doc]; !ok {
			t.Errorf("missing DocNode for %s", doc)
		}
	}
}

func TestBuildTermEdges(t *testing.T) {
	table, text := movieFixture(t)
	res, err := Build(table, text, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	// "tarantino" appears in tuple t1 and review p0; both metadata nodes
	// must connect to the same data node.
	tn, ok := g.DataNode("tarantino")
	if !ok {
		t.Fatal("no data node for tarantino")
	}
	if !g.HasEdge(res.DocNode["movies:t1"], tn) {
		t.Error("tuple t1 not connected to tarantino")
	}
	if !g.HasEdge(res.DocNode["reviews:p0"], tn) {
		t.Error("review p0 not connected to tarantino")
	}
	// The director attribute node connects to tarantino too (2-hop paths
	// across the active domain, §II).
	attr := res.AttrNode["movies/director"]
	if !g.HasEdge(attr, tn) {
		t.Error("director attribute not connected to tarantino")
	}
}

func TestBuildIntersectFiltering(t *testing.T) {
	table, text := movieFixture(t)
	res, err := Build(table, text, BuildConfig{Filter: FilterIntersect})
	if err != nil {
		t.Fatal(err)
	}
	// The table has fewer distinct tokens than... actually verify direction
	// by behavior: terms exclusive to the larger-vocab corpus are filtered.
	// "dead" and "people" appear only in reviews.
	preA := textproc.DefaultPreprocessor()
	tableTokens := table.DistinctTokens(preA)
	textTokens := text.DistinctTokens(preA)
	g := res.Graph
	if tableTokens <= textTokens {
		if _, ok := g.DataNode("dead"); ok {
			t.Error("review-only term 'dead' must be filtered out")
		}
	}
	if res.FilteredTerms == 0 {
		t.Error("expected some filtered terms")
	}
	// Common term survives.
	if _, ok := g.DataNode("tarantino"); !ok {
		t.Error("shared term tarantino missing")
	}
}

func TestBuildFilterNoneKeepsAll(t *testing.T) {
	table, text := movieFixture(t)
	res, err := Build(table, text, BuildConfig{Filter: FilterNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Graph.DataNode("dead"); !ok {
		t.Error("FilterNone must keep review-only terms")
	}
	if res.FilteredTerms != 0 {
		t.Errorf("FilteredTerms = %d, want 0", res.FilteredTerms)
	}
}

func TestBuildTFIDF(t *testing.T) {
	table, text := movieFixture(t)
	res, err := Build(table, text, BuildConfig{Filter: FilterTFIDF, TFIDFTopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(table, text, BuildConfig{Filter: FilterNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() >= full.Graph.NumNodes() {
		t.Errorf("TFIDF top-2 graph (%d nodes) not smaller than unfiltered (%d)",
			res.Graph.NumNodes(), full.Graph.NumNodes())
	}
}

func TestBuildStructuredParentEdges(t *testing.T) {
	tax, err := corpus.NewStructured("tax", []corpus.Node{
		{ID: "tax:root", Text: "Audit"},
		{ID: "tax:prog", Text: "Audit programme", Parent: "tax:root"},
		{ID: "tax:iso", Text: "ISO 19001", Parent: "tax:prog"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.NewText("docs", []string{"the audit programme requires planning"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(tax, docs, BuildConfig{ConnectMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if !g.HasEdge(res.DocNode["tax:prog"], res.DocNode["tax:root"]) {
		t.Error("missing parent edge root-prog")
	}
	if !g.HasEdge(res.DocNode["tax:iso"], res.DocNode["tax:prog"]) {
		t.Error("missing parent edge prog-iso")
	}

	// Ablation: disabling metadata edges removes them.
	res2, err := Build(tax, docs, BuildConfig{ConnectMetadata: true, DisableMetadataEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Graph.HasEdge(res2.DocNode["tax:prog"], res2.DocNode["tax:root"]) {
		t.Error("metadata edge present despite ablation")
	}
}

func TestBuildWithBucketing(t *testing.T) {
	tbl, err := corpus.NewTable("cases", []string{"country", "deaths"},
		[][]string{{"france", "101"}, {"italy", "103"}, {"spain", "900"}, {"us", "905"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := corpus.NewText("claims", []string{"deaths in france reached 102"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(tbl, txt, BuildConfig{Filter: FilterNone, Bucketing: true, BucketWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 101, 102 and 103 fall in one bucket: claim and tuples connect.
	c101 := res.Canon.Canonical("101")
	c102 := res.Canon.Canonical("102")
	if c101 != c102 {
		t.Errorf("101 and 102 in different buckets: %q %q", c101, c102)
	}
	if c900 := res.Canon.Canonical("900"); c900 == c101 {
		t.Error("900 must not share a bucket with 101")
	}
	if _, ok := res.Graph.DataNode(c101); !ok {
		t.Error("bucket node missing from graph")
	}
}

type staticMerger map[string]string

func (m staticMerger) Merge(terms []string) map[string]string {
	out := map[string]string{}
	for _, t := range terms {
		if to, ok := m[t]; ok {
			out[t] = to
		}
	}
	return out
}

func TestBuildWithSynonymMerger(t *testing.T) {
	table, text := movieFixture(t)
	merger := staticMerger{"willi": "bruce willi"} // stemmed forms
	res, err := Build(table, text, BuildConfig{Filter: FilterNone, Mergers: []Merger{merger}})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	id, ok := g.DataNode("bruce willi")
	if !ok {
		t.Fatal("no canonical node for bruce willi")
	}
	// The review mentions just "Willis"; after merging, review p0 connects
	// to the canonical node.
	if !g.HasEdge(res.DocNode["reviews:p0"], id) {
		t.Error("merged node not connected to review")
	}
	if _, exists := g.DataNode("willi"); exists {
		t.Error("merged term still has its own node")
	}
}

func TestCanonicalizerChains(t *testing.T) {
	terms := []string{"a", "b", "c"}
	m1 := staticMerger{"a": "b"}
	m2 := staticMerger{"b": "c"}
	c := NewCanonicalizer(terms, m1, m2)
	if got := c.Canonical("a"); got != "c" {
		t.Errorf("Canonical(a) = %q, want c (chained)", got)
	}
	if got := c.Canonical("b"); got != "c" {
		t.Errorf("Canonical(b) = %q, want c", got)
	}
	if got := c.Canonical("zz"); got != "zz" {
		t.Errorf("Canonical(zz) = %q, want identity", got)
	}
	if c.Mappings() != 2 {
		t.Errorf("Mappings = %d, want 2", c.Mappings())
	}
	var nilC *Canonicalizer
	if nilC.Canonical("x") != "x" || nilC.Mappings() != 0 {
		t.Error("nil canonicalizer must be identity")
	}
}

func TestBuildSingle(t *testing.T) {
	txt, err := corpus.NewText("t", []string{"alpha beta", "beta gamma"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildSingle(txt, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.MetadataNodes(First)) != 2 {
		t.Errorf("metadata = %d, want 2", len(res.Graph.MetadataNodes(First)))
	}
	if _, ok := res.Graph.DataNode("beta"); !ok {
		t.Error("missing shared data node")
	}
}

func TestBuildNilCorpus(t *testing.T) {
	if _, err := Build(nil, nil, BuildConfig{}); err == nil {
		t.Error("want error for nil corpora")
	}
}

func TestFilterModeString(t *testing.T) {
	for _, m := range []FilterMode{FilterIntersect, FilterNone, FilterTFIDF} {
		if strings.Contains(m.String(), "filter(") {
			t.Errorf("missing name for mode %d", m)
		}
	}
}
