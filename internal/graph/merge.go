package graph

// Merger decides which terms should share one data node (§II-C). Mergers
// return a term → canonical-term map; terms absent from the map stay as
// they are. Implementations include numeric bucketing (Bucketer in this
// package), lexicon merging (kb.Lexicon) for synonyms/acronyms/typos, and
// embedding-similarity merging above a threshold γ (pretrained.Merger).
type Merger interface {
	Merge(terms []string) map[string]string
}

// Canonicalizer resolves a term through a chain of mergers, following
// canonical chains to a fixpoint (a lexicon may map "b willis" to
// "bruce willis" and a bucketer may then leave it alone).
type Canonicalizer struct {
	mapping map[string]string
}

// NewCanonicalizer applies each merger to the term universe in order and
// composes the resulting mappings.
func NewCanonicalizer(terms []string, mergers ...Merger) *Canonicalizer {
	c := &Canonicalizer{mapping: make(map[string]string)}
	current := terms
	for _, m := range mergers {
		if m == nil {
			continue
		}
		step := m.Merge(current)
		if len(step) == 0 {
			continue
		}
		next := make([]string, 0, len(current))
		seen := make(map[string]struct{}, len(current))
		for _, t := range current {
			ct := t
			if to, ok := step[t]; ok && to != t {
				ct = to
				c.addMapping(t, ct)
			}
			if _, ok := seen[ct]; !ok {
				seen[ct] = struct{}{}
				next = append(next, ct)
			}
		}
		current = next
	}
	return c
}

func (c *Canonicalizer) addMapping(from, to string) {
	// Redirect anything already pointing at from.
	for k, v := range c.mapping {
		if v == from {
			c.mapping[k] = to
		}
	}
	c.mapping[from] = to
}

// Learn extends the canonicalizer with terms first seen after
// construction (the delta-ingest path): each merger is applied to the
// new terms in order, the resulting mappings are composed into the
// existing table, and chains are followed to a fixpoint so a new term
// canonicalizes exactly as it would have in a full rebuild (e.g. a new
// numeric value lands in the Bucketer's existing bucket, whose label may
// itself have been merged further).
func (c *Canonicalizer) Learn(terms []string, mergers ...Merger) {
	if c == nil || len(terms) == 0 {
		return
	}
	current := terms
	var learned []string
	for _, m := range mergers {
		if m == nil {
			continue
		}
		step := m.Merge(current)
		if len(step) == 0 {
			continue
		}
		next := make([]string, 0, len(current))
		seen := make(map[string]struct{}, len(current))
		for _, t := range current {
			ct := t
			if to, ok := step[t]; ok && to != t {
				ct = to
				// Direct assignment, not addMapping: its redirect scan
				// walks the whole table looking for entries pointing at t,
				// and nothing can point at a term that was unseen until
				// now — chains formed within this call are flattened by
				// the fixpoint below.
				c.mapping[t] = ct
				learned = append(learned, t)
			}
			if _, ok := seen[ct]; !ok {
				seen[ct] = struct{}{}
				next = append(next, ct)
			}
		}
		current = next
	}
	// Only the mappings learned this call can chain through pre-existing
	// ones (nothing old can point at a term that was unseen until now),
	// so the fixpoint resolution is bounded by the delta, not the table.
	for _, from := range learned {
		c.mapping[from] = c.resolve(c.mapping[from])
	}
}

// resolve follows the mapping chain from t to its terminal form, with a
// small depth bound as a cycle guard (well-formed mergers never cycle).
func (c *Canonicalizer) resolve(t string) string {
	for i := 0; i < 8; i++ {
		next, ok := c.mapping[t]
		if !ok || next == t {
			break
		}
		t = next
	}
	return t
}

// Clone returns an independent copy of the canonicalizer (the ingest
// clone-mutate-swap path learns new terms without touching the served
// model's table).
func (c *Canonicalizer) Clone() *Canonicalizer {
	if c == nil {
		return nil
	}
	m := make(map[string]string, len(c.mapping))
	for k, v := range c.mapping {
		m[k] = v
	}
	return &Canonicalizer{mapping: m}
}

// Canonical resolves a term to its canonical form (itself when unmapped).
func (c *Canonicalizer) Canonical(term string) string {
	if c == nil {
		return term
	}
	if to, ok := c.mapping[term]; ok {
		return to
	}
	return term
}

// Mappings returns the number of non-identity mappings.
func (c *Canonicalizer) Mappings() int {
	if c == nil {
		return 0
	}
	return len(c.mapping)
}
