package graph

// Merger decides which terms should share one data node (§II-C). Mergers
// return a term → canonical-term map; terms absent from the map stay as
// they are. Implementations include numeric bucketing (Bucketer in this
// package), lexicon merging (kb.Lexicon) for synonyms/acronyms/typos, and
// embedding-similarity merging above a threshold γ (pretrained.Merger).
type Merger interface {
	Merge(terms []string) map[string]string
}

// Canonicalizer resolves a term through a chain of mergers, following
// canonical chains to a fixpoint (a lexicon may map "b willis" to
// "bruce willis" and a bucketer may then leave it alone).
type Canonicalizer struct {
	mapping map[string]string
}

// NewCanonicalizer applies each merger to the term universe in order and
// composes the resulting mappings.
func NewCanonicalizer(terms []string, mergers ...Merger) *Canonicalizer {
	c := &Canonicalizer{mapping: make(map[string]string)}
	current := terms
	for _, m := range mergers {
		if m == nil {
			continue
		}
		step := m.Merge(current)
		if len(step) == 0 {
			continue
		}
		next := make([]string, 0, len(current))
		seen := make(map[string]struct{}, len(current))
		for _, t := range current {
			ct := t
			if to, ok := step[t]; ok && to != t {
				ct = to
				c.addMapping(t, ct)
			}
			if _, ok := seen[ct]; !ok {
				seen[ct] = struct{}{}
				next = append(next, ct)
			}
		}
		current = next
	}
	return c
}

func (c *Canonicalizer) addMapping(from, to string) {
	// Redirect anything already pointing at from.
	for k, v := range c.mapping {
		if v == from {
			c.mapping[k] = to
		}
	}
	c.mapping[from] = to
}

// Canonical resolves a term to its canonical form (itself when unmapped).
func (c *Canonicalizer) Canonical(term string) string {
	if c == nil {
		return term
	}
	if to, ok := c.mapping[term]; ok {
		return to
	}
	return term
}

// Mappings returns the number of non-identity mappings.
func (c *Canonicalizer) Mappings() int {
	if c == nil {
		return 0
	}
	return len(c.mapping)
}
