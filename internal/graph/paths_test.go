package graph

import (
	"testing"
	"testing/quick"
)

// chainGraph builds two parallel three-edge paths a-b-c-d and a-x-y-d.
func chainGraph() (*Graph, []NodeID) {
	g := New(8)
	ids := make([]NodeID, 0, 6)
	for _, l := range []string{"a", "b", "c", "d", "x", "y"} {
		ids = append(ids, g.EnsureData(l))
	}
	g.AddEdge(ids[0], ids[1]) // a-b
	g.AddEdge(ids[1], ids[2]) // b-c
	g.AddEdge(ids[2], ids[3]) // c-d
	g.AddEdge(ids[0], ids[4]) // a-x
	g.AddEdge(ids[4], ids[5]) // x-y
	g.AddEdge(ids[5], ids[3]) // y-d
	return g, ids
}

func TestBFSDistances(t *testing.T) {
	g, ids := chainGraph()
	dist := g.BFSDistances(ids[0])
	want := map[string]int32{"a": 0, "b": 1, "c": 2, "d": 3, "x": 1, "y": 2}
	for i, lbl := range []string{"a", "b", "c", "d", "x", "y"} {
		if dist[ids[i]] != want[lbl] {
			t.Errorf("dist[%s] = %d, want %d", lbl, dist[ids[i]], want[lbl])
		}
	}
	lonely := g.EnsureData("lonely")
	if d := g.BFSDistances(ids[0])[lonely]; d != -1 {
		t.Errorf("unreachable dist = %d, want -1", d)
	}
}

func TestAllShortestPaths(t *testing.T) {
	g, ids := chainGraph()
	paths := g.AllShortestPaths(ids[0], ids[3], 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (a-b-c-d and a-x-y-d)", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("path length = %d nodes, want 4", len(p))
		}
		if p[0] != ids[0] || p[len(p)-1] != ids[3] {
			t.Errorf("path endpoints wrong: %v", p)
		}
		// Consecutive nodes must be adjacent.
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Errorf("non-edge %d-%d in path", p[i], p[i+1])
			}
		}
	}
}

func TestAllShortestPathsCap(t *testing.T) {
	g, ids := chainGraph()
	paths := g.AllShortestPaths(ids[0], ids[3], 1)
	if len(paths) != 1 {
		t.Errorf("capped paths = %d, want 1", len(paths))
	}
}

func TestAllShortestPathsSameNode(t *testing.T) {
	g, ids := chainGraph()
	paths := g.AllShortestPaths(ids[0], ids[0], 0)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Errorf("self path = %v", paths)
	}
}

func TestAllShortestPathsDisconnected(t *testing.T) {
	g, ids := chainGraph()
	lonely := g.EnsureData("lonely")
	if p := g.AllShortestPaths(ids[0], lonely, 0); p != nil {
		t.Errorf("disconnected pair returned %v", p)
	}
}

func TestShortestPath(t *testing.T) {
	g, ids := chainGraph()
	p := g.ShortestPath(ids[0], ids[2])
	if len(p) != 3 {
		t.Errorf("ShortestPath length = %d nodes, want 3", len(p))
	}
	if g.ShortestPath(ids[0], g.EnsureData("iso")) != nil {
		t.Error("disconnected ShortestPath must be nil")
	}
}

func TestConnectedComponent(t *testing.T) {
	g, ids := chainGraph()
	g.EnsureData("lonely")
	comp := g.ConnectedComponent(ids[0])
	if len(comp) != 6 {
		t.Errorf("component size = %d, want 6", len(comp))
	}
}

// Property: on random graphs, BFS distance obeys the triangle inequality
// over edges — |dist(u) - dist(v)| <= 1 for every edge (u,v) reachable
// from the source.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New(16)
		ids := make([]NodeID, 12)
		for i := range ids {
			ids[i] = g.EnsureData(string(rune('a' + i)))
		}
		for _, p := range pairs {
			g.AddEdge(ids[int(p>>8)%12], ids[int(p&0xff)%12])
		}
		dist := g.BFSDistances(ids[0])
		ok := true
		g.Edges(func(a, b NodeID) {
			da, db := dist[a], dist[b]
			if da >= 0 && db >= 0 {
				diff := da - db
				if diff < -1 || diff > 1 {
					ok = false
				}
			}
			if (da < 0) != (db < 0) {
				ok = false // one endpoint reachable, the other not: impossible
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every returned shortest path has the BFS distance as its edge
// count, and all returned paths have equal length.
func TestShortestPathLengthProperty(t *testing.T) {
	f := func(pairs []uint16, srcDst uint16) bool {
		g := New(16)
		ids := make([]NodeID, 10)
		for i := range ids {
			ids[i] = g.EnsureData(string(rune('a' + i)))
		}
		for _, p := range pairs {
			g.AddEdge(ids[int(p>>8)%10], ids[int(p&0xff)%10])
		}
		src := ids[int(srcDst>>8)%10]
		dst := ids[int(srcDst&0xff)%10]
		dist := g.BFSDistances(src)
		paths := g.AllShortestPaths(src, dst, 8)
		if dist[dst] < 0 {
			return paths == nil
		}
		for _, p := range paths {
			if int32(len(p)-1) != dist[dst] {
				return false
			}
		}
		return len(paths) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketer(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100, 200}
	b := NewBucketer(vals)
	if b == nil {
		t.Fatal("NewBucketer returned nil")
	}
	if b.Width() <= 0 {
		t.Fatalf("width = %f", b.Width())
	}
	if b.Canonical("abc") != "abc" {
		t.Error("non-numeric term must pass through")
	}
	c1, c2 := b.Canonical("1"), b.Canonical("1.4")
	if c1 == "1" {
		t.Error("numeric term not bucketed")
	}
	_ = c2
}

func TestBucketerDegenerate(t *testing.T) {
	if NewBucketer(nil) != nil {
		t.Error("nil values must give nil bucketer")
	}
	if NewBucketer([]float64{5}) != nil {
		t.Error("single value must give nil bucketer")
	}
	if NewBucketer([]float64{5, 5, 5, 5}) != nil {
		t.Error("zero IQR must give nil bucketer")
	}
	if NewBucketerWidth(0, -1) != nil {
		t.Error("negative width must give nil bucketer")
	}
	var nb *Bucketer
	if nb.Canonical("5") != "5" {
		t.Error("nil bucketer must be identity")
	}
	if nb.Merge([]string{"5"}) != nil {
		t.Error("nil bucketer Merge must be nil")
	}
}

func TestBucketerWidthMonotonic(t *testing.T) {
	b := NewBucketerWidth(0, 10)
	// Bucket index is monotone in the value.
	prev := -1 << 30
	for v := 0; v < 100; v += 3 {
		lbl := b.Canonical(itoa(v))
		var idx int
		if _, err := sscanf(lbl, &idx); err != nil {
			t.Fatalf("bad bucket label %q", lbl)
		}
		if idx < prev {
			t.Fatalf("bucket index decreased: %d after %d", idx, prev)
		}
		prev = idx
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func sscanf(lbl string, idx *int) (int, error) {
	n := 0
	*idx = 0
	for i := len("num#"); i < len(lbl); i++ {
		*idx = *idx*10 + int(lbl[i]-'0')
		n++
	}
	return n, nil
}

func TestCollectNumeric(t *testing.T) {
	vals := CollectNumeric([]string{"42", "abc", "3.5", "pulp fiction", "7"})
	if len(vals) != 3 {
		t.Errorf("CollectNumeric = %v, want 3 values", vals)
	}
}
