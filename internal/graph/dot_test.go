package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(8)
	tuple, _ := g.AddMeta("movies:t0", Tuple, First)
	snip, _ := g.AddMeta("reviews:p0", Snippet, Second)
	attr, _ := g.AddMeta("movies/genre", Attribute, First)
	concept, _ := g.AddMeta("tax:c1", Concept, First)
	d := g.EnsureData(`term "quoted"`)
	ext := g.EnsureExternal("wiki entity")
	g.AddEdge(tuple, d)
	g.AddEdge(snip, d)
	g.AddEdge(attr, d)
	g.AddEdge(d, ext)
	g.AddEdge(concept, d)

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "demo" {`,
		"lightblue",    // tuple
		"lightyellow",  // snippet
		"lightgray",    // attribute
		"lightgreen",   // concept
		"style=dashed", // external
		`\"quoted\"`,   // quote escaping
		"--",           // undirected edges
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, " -- "); got != 5 {
		t.Errorf("edges rendered = %d, want 5", got)
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	g := New(2)
	g.EnsureData("x")
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "tdmatch"`) {
		t.Error("default name not applied")
	}
}
