package wal

import (
	"io"
	"os"
)

// File is the slice of *os.File the log needs, factored into an
// interface so fault injection (MemFS) can model torn writes, failing
// fsync, ENOSPC and crash-at-offset without touching a disk. Writes
// always append at the current offset; Seek is used only to position at
// the recovered tail after Open repairs a torn record.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes buffered writes to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes, discarding a torn tail.
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem seam the log runs on: the real OS filesystem in
// production (OSFS), an in-memory fault-injecting one in tests (MemFS).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (checkpoint swap).
	Rename(oldpath, newpath string) error
	// Remove deletes name; missing files are not an error for the log's
	// purposes (checkpoint cleanup).
	Remove(name string) error
}

// OSFS is the production FS: a thin pass-through to the os package.
type OSFS struct{}

// OpenFile opens a real file.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames a real file.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a real file.
func (OSFS) Remove(name string) error { return os.Remove(name) }
