package wal

import (
	"io"
	"os"
)

// File is the slice of *os.File the log needs, factored into an
// interface so fault injection (MemFS) can model torn writes, failing
// fsync, ENOSPC and crash-at-offset without touching a disk. Writes
// always append at the current offset; Seek is used only to position at
// the recovered tail after Open repairs a torn record.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes buffered writes to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes, discarding a torn tail.
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem seam the log runs on: the real OS filesystem in
// production (OSFS), an in-memory fault-injecting one in tests (MemFS).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (checkpoint swap).
	Rename(oldpath, newpath string) error
	// Remove deletes name; missing files are not an error for the log's
	// purposes (checkpoint cleanup).
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making previously completed
	// renames inside it durable: POSIX only guarantees a rename survives
	// power loss once the parent directory's metadata has reached stable
	// storage. Atomic-replace protocols (snapshot SaveFile, checkpoint
	// swap) must call it after Rename.
	SyncDir(dir string) error
}

// OSFS is the production FS: a thin pass-through to the os package.
type OSFS struct{}

// OpenFile opens a real file.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames a real file.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a real file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir opens the real directory and fsyncs it. Some filesystems
// reject fsync on directories; those errors are surfaced to the caller,
// which may choose to ignore them (the rename already happened).
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
