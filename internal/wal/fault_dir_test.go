package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func memWrite(t *testing.T, fs *MemFS, name string, content []byte) {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRenameVolatileUntilSyncDir pins the directory-durability model:
// with TrackDirSync on, a rename that is not followed by SyncDir is
// undone by Crash (the tmp file reappears, the target reverts), while
// a SyncDir-covered rename survives. This is the failure mode of
// atomic-replace protocols that fsync the file but not its parent.
func TestRenameVolatileUntilSyncDir(t *testing.T) {
	t.Run("uncovered rename lost", func(t *testing.T) {
		fs := NewMemFS()
		fs.TrackDirSync(true)
		memWrite(t, fs, "dir/model", []byte("old"))
		memWrite(t, fs, "dir/model.tmp", []byte("new"))
		if err := fs.Rename("dir/model.tmp", "dir/model"); err != nil {
			t.Fatal(err)
		}
		fs.Crash(0)
		if got := fs.FileBytes("dir/model"); !bytes.Equal(got, []byte("old")) {
			t.Fatalf("target after crash = %q, want the displaced old content", got)
		}
		if got := fs.FileBytes("dir/model.tmp"); !bytes.Equal(got, []byte("new")) {
			t.Fatalf("tmp after crash = %q, want it restored", got)
		}
	})
	t.Run("covered rename survives", func(t *testing.T) {
		fs := NewMemFS()
		fs.TrackDirSync(true)
		memWrite(t, fs, "dir/model", []byte("old"))
		memWrite(t, fs, "dir/model.tmp", []byte("new"))
		if err := fs.Rename("dir/model.tmp", "dir/model"); err != nil {
			t.Fatal(err)
		}
		if err := fs.SyncDir("dir"); err != nil {
			t.Fatal(err)
		}
		fs.Crash(0)
		if got := fs.FileBytes("dir/model"); !bytes.Equal(got, []byte("new")) {
			t.Fatalf("target after crash = %q, want the renamed content", got)
		}
		if fs.FileBytes("dir/model.tmp") != nil {
			t.Fatal("tmp reappeared after a covered rename")
		}
	})
	t.Run("other directories unaffected", func(t *testing.T) {
		fs := NewMemFS()
		fs.TrackDirSync(true)
		memWrite(t, fs, "a/x.tmp", []byte("ax"))
		memWrite(t, fs, "b/y.tmp", []byte("by"))
		if err := fs.Rename("a/x.tmp", "a/x"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("b/y.tmp", "b/y"); err != nil {
			t.Fatal(err)
		}
		if err := fs.SyncDir("a"); err != nil {
			t.Fatal(err)
		}
		fs.Crash(0)
		if fs.FileBytes("a/x") == nil {
			t.Fatal("synced dir a lost its rename")
		}
		if fs.FileBytes("b/y") != nil {
			t.Fatal("unsynced dir b kept its rename")
		}
	})
	t.Run("sync failpoint applies", func(t *testing.T) {
		fs := NewMemFS()
		fs.TrackDirSync(true)
		boom := errors.New("boom")
		fs.SetSyncError(boom)
		if err := fs.SyncDir("dir"); !errors.Is(err, boom) {
			t.Fatalf("SyncDir error = %v, want %v", err, boom)
		}
	})
	t.Run("default model keeps renames durable", func(t *testing.T) {
		fs := NewMemFS()
		memWrite(t, fs, "dir/model.tmp", []byte("new"))
		if err := fs.Rename("dir/model.tmp", "dir/model"); err != nil {
			t.Fatal(err)
		}
		fs.Crash(0)
		if got := fs.FileBytes("dir/model"); !bytes.Equal(got, []byte("new")) {
			t.Fatalf("untracked rename lost on crash: %q", got)
		}
	})
}
